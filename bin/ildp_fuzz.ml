(* ildp_fuzz: seed-sharded differential fuzzing of the DBT against the
   golden Alpha interpreter.

     ildp_fuzz --count 2000 --jobs 4        # 2000 programs, all modes
     ildp_fuzz --minutes 5                  # stop submitting after 5 min
     ildp_fuzz --modes acc/basic/no_pred    # one mode only
     ildp_fuzz --flush-every 3              # inject Vm.flush at boundaries

   Every seed generates one program (Oracle.Gen) which is then executed in
   lockstep (Oracle.Lockstep) under every selected ISA/chaining mode, with
   full architected-state comparison at every translated-segment boundary.
   On divergence the program's block list is minimized with delta
   debugging (Oracle.Shrink) and the offending fragment is reported with
   its disassembly. Seeds are sharded over a Harness.Pool; the JSON
   summary (stdout, or --json FILE) aggregates coverage: trap kinds hit,
   exit reasons seen, fragments formed, dual-RAS traffic.

   Exit status: 0 = no divergence, 1 = divergence(s) found. *)

open Cmdliner

type totals = {
  mutable runs : int;
  mutable retired : int;
  mutable boundaries : int;
  mutable insn_checks : int;
  mutable superblocks : int;
  mutable branch_exits : int;
  mutable pal_exits : int;
  mutable dispatch_misses : int;
  mutable trap_recoveries : int;
  mutable flushes : int;
  mutable dras_hits : int;
  mutable dras_misses : int;
  mutable o_exit : int;
  mutable o_trap : int;
  mutable o_fuel : int;
  mutable t_unaligned : int;
  mutable t_mem_fault : int;
  mutable t_illegal : int;
}

let totals_zero () =
  { runs = 0; retired = 0; boundaries = 0; insn_checks = 0; superblocks = 0;
    branch_exits = 0; pal_exits = 0; dispatch_misses = 0; trap_recoveries = 0;
    flushes = 0; dras_hits = 0; dras_misses = 0; o_exit = 0; o_trap = 0;
    o_fuel = 0; t_unaligned = 0; t_mem_fault = 0; t_illegal = 0 }

let add_cov t (c : Oracle.Lockstep.coverage) =
  t.runs <- t.runs + 1;
  t.retired <- t.retired + c.retired;
  t.boundaries <- t.boundaries + c.boundaries;
  t.insn_checks <- t.insn_checks + c.insn_checks;
  t.superblocks <- t.superblocks + c.superblocks;
  t.branch_exits <- t.branch_exits + c.branch_exits;
  t.pal_exits <- t.pal_exits + c.pal_exits;
  t.dispatch_misses <- t.dispatch_misses + c.dispatch_misses;
  t.trap_recoveries <- t.trap_recoveries + c.trap_recoveries;
  t.flushes <- t.flushes + c.flushes;
  t.dras_hits <- t.dras_hits + c.dras_hits;
  t.dras_misses <- t.dras_misses + c.dras_misses;
  (match c.trap with
  | Some "unaligned" -> t.t_unaligned <- t.t_unaligned + 1
  | Some "mem_fault" -> t.t_mem_fault <- t.t_mem_fault + 1
  | Some "illegal" -> t.t_illegal <- t.t_illegal + 1
  | _ -> ());
  if c.outcome = "fuel" then t.o_fuel <- t.o_fuel + 1
  else if c.trap <> None then t.o_trap <- t.o_trap + 1
  else t.o_exit <- t.o_exit + 1

let merge a b =
  a.runs <- a.runs + b.runs;
  a.retired <- a.retired + b.retired;
  a.boundaries <- a.boundaries + b.boundaries;
  a.insn_checks <- a.insn_checks + b.insn_checks;
  a.superblocks <- a.superblocks + b.superblocks;
  a.branch_exits <- a.branch_exits + b.branch_exits;
  a.pal_exits <- a.pal_exits + b.pal_exits;
  a.dispatch_misses <- a.dispatch_misses + b.dispatch_misses;
  a.trap_recoveries <- a.trap_recoveries + b.trap_recoveries;
  a.flushes <- a.flushes + b.flushes;
  a.dras_hits <- a.dras_hits + b.dras_hits;
  a.dras_misses <- a.dras_misses + b.dras_misses;
  a.o_exit <- a.o_exit + b.o_exit;
  a.o_trap <- a.o_trap + b.o_trap;
  a.o_fuel <- a.o_fuel + b.o_fuel;
  a.t_unaligned <- a.t_unaligned + b.t_unaligned;
  a.t_mem_fault <- a.t_mem_fault + b.t_mem_fault;
  a.t_illegal <- a.t_illegal + b.t_illegal

type report = {
  r_seed : int;
  r_mode : string;
  r_text : string; (* rendered divergence (mismatches + fragment disasm) *)
  r_blocks : int; (* minimized block count *)
  r_source : string; (* minimized program source *)
}

(* One seed under one mode; on divergence, minimize the block list with
   ddmin (the predicate re-runs the oracle on the rendered subset) and
   re-derive the report from the minimized program. *)
let run_seed_mode ~granularity ~threaded ~region ~superops ~flush_every
    ~tcache_max_slots ~warm_start seed mode (prog : Oracle.Gen.program) =
  let go blocks =
    Oracle.Lockstep.run ~granularity ~threaded ~region ~superops ~flush_every
      ~tcache_max_slots ~warm_start ~mode
      (Oracle.Gen.assemble ~blocks prog)
  in
  match go prog.blocks with
  | Oracle.Lockstep.Agree c -> Ok c
  | Oracle.Lockstep.Diverge _ ->
    let still_fails blocks =
      match go blocks with
      | Oracle.Lockstep.Diverge _ -> true
      | Oracle.Lockstep.Agree _ | (exception _) -> false
    in
    let min_blocks = Oracle.Shrink.minimize ~still_fails prog.blocks in
    let d =
      match go min_blocks with
      | Oracle.Lockstep.Diverge d -> d
      | Oracle.Lockstep.Agree _ ->
        (* should not happen: ddmin only returns failing lists *)
        assert false
    in
    Error
      {
        r_seed = seed;
        r_mode = Oracle.Lockstep.mode_name mode;
        r_text = Format.asprintf "%a" Oracle.Lockstep.pp_divergence d;
        r_blocks = List.length min_blocks;
        r_source = Oracle.Gen.source ~blocks:min_blocks prog;
      }

(* A shard of contiguous seeds processed on one worker domain. *)
let run_shard ~gen ~modes ~granularity ~threaded ~region ~superops
    ~flush_every ~tcache_max_slots ~warm_start ~deadline seeds =
  let tot = totals_zero () in
  let reports = ref [] in
  let errors = ref [] in
  let processed = ref 0 in
  List.iter
    (fun seed ->
      if Unix.gettimeofday () < deadline then begin
        incr processed;
        let prog : Oracle.Gen.program = gen ~seed in
        (* rotate flush injection through part of the seed space so the
           flush path is always covered, unless forced via --flush-every *)
        let flush_every =
          if flush_every > 0 then flush_every
          else if seed mod 4 = 0 then 3
          else 0
        in
        List.iter
          (fun mode ->
            match
              run_seed_mode ~granularity ~threaded ~region ~superops
                ~flush_every ~tcache_max_slots ~warm_start seed mode prog
            with
            | Ok c -> add_cov tot c
            | Error r -> reports := r :: !reports
            | exception e ->
              errors :=
                Printf.sprintf "seed %d %s: %s" seed
                  (Oracle.Lockstep.mode_name mode)
                  (Printexc.to_string e)
                :: !errors)
          modes
      end)
    seeds;
  (!processed, tot, List.rev !reports, List.rev !errors)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json oc ~programs ~seed ~count ~jobs ~modes ~threaded ~region
    ~superops ~stress ~warm_start ~tot ~reports ~errors =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"ildp-dbt-fuzz/1\",\n";
  p "  \"engine\": \"%s\",\n"
    (if superops then "superop"
     else if region then "region"
     else if threaded then "threaded"
     else "instrumented");
  p "  \"generator\": \"%s\",\n" (if stress then "stress" else "oracle");
  p "  \"warm_start\": %b,\n" warm_start;
  p "  \"programs\": %d,\n" programs;
  p "  \"seed_range\": [%d, %d],\n" seed (seed + count - 1);
  p "  \"jobs\": %d,\n" jobs;
  p "  \"modes\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun m -> "\"" ^ Oracle.Lockstep.mode_name m ^ "\"")
          modes));
  p "  \"runs\": %d,\n" tot.runs;
  p "  \"divergences\": %d,\n" (List.length reports);
  p "  \"errors\": %d,\n" (List.length errors);
  p "  \"coverage\": {\n";
  p "    \"v_insns_retired\": %d,\n" tot.retired;
  p "    \"boundaries_compared\": %d,\n" tot.boundaries;
  p "    \"insn_checks\": %d,\n" tot.insn_checks;
  p "    \"superblocks\": %d,\n" tot.superblocks;
  p "    \"branch_exits\": %d,\n" tot.branch_exits;
  p "    \"pal_exits\": %d,\n" tot.pal_exits;
  p "    \"dispatch_misses\": %d,\n" tot.dispatch_misses;
  p "    \"trap_recoveries\": %d,\n" tot.trap_recoveries;
  p "    \"flushes\": %d,\n" tot.flushes;
  p "    \"dras_hits\": %d,\n" tot.dras_hits;
  p "    \"dras_misses\": %d,\n" tot.dras_misses;
  p "    \"outcomes\": { \"exit\": %d, \"trap\": %d, \"fuel\": %d },\n"
    tot.o_exit tot.o_trap tot.o_fuel;
  p "    \"traps\": { \"unaligned\": %d, \"mem_fault\": %d, \"illegal\": %d }\n"
    tot.t_unaligned tot.t_mem_fault tot.t_illegal;
  p "  },\n";
  p "  \"reports\": [\n";
  List.iteri
    (fun i r ->
      p
        "    { \"seed\": %d, \"mode\": \"%s\", \"minimized_blocks\": %d,\n\
        \      \"divergence\": \"%s\",\n\
        \      \"source\": \"%s\" }%s\n"
        r.r_seed (json_escape r.r_mode) r.r_blocks (json_escape r.r_text)
        (json_escape r.r_source)
        (if i < List.length reports - 1 then "," else ""))
    reports;
  p "  ],\n";
  p "  \"error_messages\": [%s]\n"
    (String.concat ", "
       (List.map (fun e -> "\"" ^ json_escape e ^ "\"") errors));
  p "}\n"

(* One file per divergence, named so a directory aggregating several fuzz
   arms stays collision-free: the minimized source plus the rendered
   divergence, ready to re-run with `ildp_run FILE.s`. *)
let write_repros dir ~threaded ~region ~superops ~stress ~warm_start reports =
  if reports <> [] then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let arm =
      String.concat ""
        [ (if superops then "-superop" else if region then "-region"
           else if threaded then "-threaded" else "");
          (if stress then "-stress" else "");
          (if warm_start then "-warm" else "") ]
    in
    List.iter
      (fun r ->
        let stem =
          Printf.sprintf "seed%d-%s%s" r.r_seed
            (String.map (function '/' -> '_' | c -> c) r.r_mode)
            arm
        in
        let oc = open_out (Filename.concat dir (stem ^ ".s")) in
        output_string oc r.r_source;
        close_out oc;
        let oc = open_out (Filename.concat dir (stem ^ ".divergence.txt")) in
        Printf.fprintf oc "seed %d mode %s, minimized to %d blocks\n\n%s\n"
          r.r_seed r.r_mode r.r_blocks r.r_text;
        close_out oc)
      reports
  end

let run count seed minutes jobs modes_arg flush_every tcache_cap per_insn
    threaded region superops stress warm_start json_path repro_dir quiet =
  let modes =
    if modes_arg = "all" then Oracle.Lockstep.all_modes
    else
      String.split_on_char ',' modes_arg
      |> List.map (fun name ->
             match Oracle.Lockstep.mode_of_name (String.trim name) with
             | Some m -> m
             | None ->
               Printf.eprintf "unknown mode %S (known: %s)\n" name
                 (String.concat " "
                    (List.map Oracle.Lockstep.mode_name
                       Oracle.Lockstep.all_modes));
               exit 2)
  in
  let granularity =
    if per_insn then Oracle.Lockstep.Per_insn else Oracle.Lockstep.Boundary
  in
  let jobs =
    if jobs > 0 then jobs else Domain.recommended_domain_count ()
  in
  let deadline =
    Unix.gettimeofday ()
    +. (if minutes > 0.0 then minutes *. 60.0 else infinity)
  in
  let gen = if stress then Stress.generate else Oracle.Gen.generate in
  let tcache_max_slots = if tcache_cap > 0 then tcache_cap else max_int in
  let seeds = List.init count (fun i -> seed + i) in
  (* contiguous shards, a few per worker so early finishers stay busy *)
  let n_shards = max 1 (min count (jobs * 4)) in
  let shards = Array.make n_shards [] in
  List.iteri (fun i s -> shards.(i mod n_shards) <- s :: shards.(i mod n_shards)) seeds;
  let t0 = Unix.gettimeofday () in
  let results =
    Harness.Pool.with_pool ~jobs (fun pool ->
        Array.to_list shards
        |> List.map (fun shard ->
               Harness.Pool.submit pool (fun () ->
                   run_shard ~gen ~modes ~granularity ~threaded ~region
                     ~superops ~flush_every ~tcache_max_slots ~warm_start
                     ~deadline (List.rev shard)))
        |> List.map (Harness.Pool.await))
  in
  let tot = totals_zero () in
  let programs = ref 0 in
  let reports = ref [] in
  let errors = ref [] in
  List.iter
    (fun (n, t, rs, es) ->
      programs := !programs + n;
      merge tot t;
      reports := !reports @ rs;
      errors := !errors @ es)
    results;
  let reports = List.sort (fun a b -> compare a.r_seed b.r_seed) !reports in
  let elapsed = Unix.gettimeofday () -. t0 in
  if not quiet then begin
    Printf.eprintf "fuzz: %d programs x %d modes = %d runs in %.1fs (%d jobs)\n"
      !programs (List.length modes) tot.runs elapsed jobs;
    Printf.eprintf
      "fuzz: %d boundaries compared, %d superblocks, %d trap recoveries, %d \
       flushes\n"
      tot.boundaries tot.superblocks tot.trap_recoveries tot.flushes;
    List.iter
      (fun r ->
        Printf.eprintf "\n=== seed %d [%s] (minimized to %d blocks) ===\n%s\n\
                        --- minimized source ---\n%s\n"
          r.r_seed r.r_mode r.r_blocks r.r_text r.r_source)
      reports;
    List.iter (fun e -> Printf.eprintf "ERROR: %s\n" e) !errors
  end;
  let emit oc =
    write_json oc ~programs:!programs ~seed ~count ~jobs ~modes ~threaded
      ~region ~superops ~stress ~warm_start ~tot ~reports ~errors:!errors
  in
  (match json_path with
  | "-" -> emit stdout
  | path ->
    let oc = open_out path in
    emit oc;
    close_out oc);
  Option.iter
    (fun dir ->
      write_repros dir ~threaded ~region ~superops ~stress ~warm_start reports)
    repro_dir;
  if reports <> [] || !errors <> [] then exit 1

let cmd =
  let count =
    Arg.(value & opt int 200 & info [ "count" ] ~doc:"Number of seeds to run.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  let minutes =
    Arg.(value & opt float 0.0 & info [ "minutes" ]
           ~doc:"Wall-clock budget; seeds not started by then are skipped \
                 (0 = unlimited).")
  in
  let jobs =
    Arg.(value & opt int 0 & info [ "jobs" ]
           ~doc:"Worker domains (default: recommended domain count).")
  in
  let modes =
    Arg.(value & opt string "all" & info [ "modes" ]
           ~doc:"Comma-separated mode names, or 'all'.")
  in
  let flush_every =
    Arg.(value & opt int 0 & info [ "flush-every" ]
           ~doc:"Inject Vm.flush every N segment boundaries in every run \
                 (default: every 3rd boundary on a quarter of the seeds).")
  in
  let tcache_cap =
    Arg.(value & opt int 0 & info [ "tcache-cap" ]
           ~doc:"Bound the translation cache to N slots so capacity-policy \
                 whole-cache flushes (and the region/fused invalidations \
                 they force) run under lockstep (0 = unbounded).")
  in
  let per_insn =
    Arg.(value & opt bool true & info [ "per-insn" ]
           ~doc:"Also compare registers after every retired V-ISA \
                 instruction where sound (straightening backend).")
  in
  let threaded =
    Arg.(value & flag & info [ "threaded" ]
           ~doc:"Run the VM sink-less so translated execution takes the \
                 threaded-code engine (boundary granularity only).")
  in
  let region =
    Arg.(value & flag & info [ "region" ]
           ~doc:"Run the VM sink-less under the region tier-up engine with \
                 an aggressive promotion threshold, validating region \
                 compilation, bulk accounting, and invalidation (implies \
                 the sink-less setup of --threaded).")
  in
  let superops =
    Arg.(value & flag & info [ "superops" ]
           ~doc:"Run the VM sink-less under the region engine with superop \
                 block fusion on, validating the fused-closure tier — \
                 specialized block bodies, idiom-template arms, mid-block \
                 fault unwinds — against the golden interpreter (implies \
                 --region).")
  in
  let stress =
    Arg.(value & flag & info [ "stress" ]
           ~doc:"Generate programs with the adversarial stress arms \
                 (flush-storm, megamorphic indirect jumps, deep call \
                 towers) instead of the broad oracle generator.")
  in
  let warm_start =
    Arg.(value & flag & info [ "warm-start" ]
           ~doc:"Save-load-rerun roundtrip: every run first executes cold, \
                 snapshots its translation cache through the full byte \
                 encoding, then the VM under comparison warm-starts from \
                 the snapshot.")
  in
  let json =
    Arg.(value & opt string "-" & info [ "json" ]
           ~doc:"Write the JSON summary to this file ('-' = stdout).")
  in
  let repro_dir =
    Arg.(value & opt (some string) None & info [ "repro-dir" ] ~docv:"DIR"
           ~doc:"On divergence, write each shrunk reproducer (minimized \
                 assembly source + rendered divergence) into $(docv), \
                 created on demand; CI uploads it as a failure artifact.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the stderr summary.")
  in
  Cmd.v
    (Cmd.info "ildp_fuzz"
       ~doc:"Differential fuzzing of the DBT against the Alpha interpreter")
    Term.(
      const run $ count $ seed $ minutes $ jobs $ modes $ flush_every
      $ tcache_cap $ per_insn $ threaded $ region $ superops $ stress
      $ warm_start $ json $ repro_dir $ quiet)

let () = exit (Cmd.eval cmd)
