(* ildp_serve: run the translation service as a self-driving daemon.

     ildp_serve                            # 50 sessions over 4 images
     ildp_serve --sessions 1000 --jobs 8   # heavier load
     ildp_serve --fuel-quota 2000000       # demonstrate clean quota kills
     ildp_serve --spill-dir /tmp/snap      # registry survives restarts
     ildp_serve --json service.json        # machine-readable report

   The daemon admits every session through per-tenant quotas and bounded
   backpressure, warm-starts all but the first session per image from the
   shared snapshot registry, cross-verifies every completed session
   against a serial reference run, and drains in-flight sessions on
   shutdown. Exit status: 0 clean; 1 on any divergence, on a
   single-flight violation, or (under --require-warm-hits) when no
   session warm-started. *)

open Cmdliner

let run sessions images tenants jobs capacity scale seed fuel fuel_quota
    spill_dir json telemetry_json require_warm_hits quiet =
  Option.iter (fun _ -> Obs.set_enabled true) telemetry_json;
  let fmt = Format.std_formatter in
  if not quiet then
    Format.fprintf fmt "ildp_serve: %d sessions, %d images, %d tenants@."
      sessions images tenants;
  let progress = ref 0 in
  let on_progress n =
    progress := !progress + n;
    if (not quiet) && !progress mod 200 = 0 then
      Format.fprintf fmt "  ... %d/%d sessions done@." !progress sessions
  in
  let s =
    Harness.Service_bench.run_load ~sessions ~images ~tenants ~scale ~fuel
      ?tenant_fuel:fuel_quota ?jobs ~capacity ?spill_dir ~seed ~on_progress ()
  in
  Harness.Service_bench.render fmt s;
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      Harness.Service_bench.write_json path
        ~jobs:(Option.value ~default:0 jobs)
        ~scale ~fuel s;
      Printf.printf "wrote %s\n" path)
    json;
  Option.iter
    (fun path ->
      let snap = Obs.collect () in
      Obs.Envelope.write_telemetry path ~jobs:(Option.value ~default:0 jobs)
        snap;
      Printf.printf "wrote %s\n" path)
    telemetry_json;
  if s.divergences > 0 then begin
    prerr_endline "ildp_serve: sessions diverged from the serial reference";
    exit 1
  end;
  (* With a binding fuel quota, a killed builder legitimately makes some
     other session rebuild; with a spill dir, a previous daemon's
     publishes legitimately make cold builds 0. Gate single-flight only
     in the plain configuration. *)
  if fuel_quota = None && spill_dir = None && s.cold_builds <> s.images
  then begin
    Printf.eprintf "ildp_serve: %d cold builds for %d images (single-flight \
                    violated)\n"
      s.cold_builds s.images;
    exit 1
  end;
  if require_warm_hits && s.warm_hits = 0 then begin
    prerr_endline "ildp_serve: no session warm-started from the registry";
    exit 1
  end;
  if not quiet then Format.fprintf fmt "drained cleanly@."

let sessions =
  Arg.(value & opt int 50 & info [ "sessions" ] ~docv:"N"
       ~doc:"Guest sessions to admit.")

let images =
  Arg.(value & opt int 4 & info [ "images" ] ~docv:"N"
       ~doc:"Distinct workload images (first $(docv) of the suite).")

let tenants =
  Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N"
       ~doc:"Tenants sharing the service, round-robin over sessions.")

let jobs =
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N"
       ~doc:"Worker domains (default: recommended domain count).")

let capacity =
  Arg.(value & opt int 32 & info [ "capacity" ] ~docv:"N"
       ~doc:"Max admitted-but-unfinished sessions (admission backpressure).")

let scale =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N"
       ~doc:"Workload scale factor.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
       ~doc:"Arrival-order shuffle seed.")

let fuel =
  Arg.(value & opt int Harness.Service_bench.default_fuel
       & info [ "fuel" ] ~docv:"N" ~doc:"Per-session fuel cap.")

let fuel_quota =
  Arg.(value & opt (some int) None & info [ "fuel-quota" ] ~docv:"N"
       ~doc:"Total per-tenant fuel quota; sessions that exhaust it are \
             killed cleanly mid-run (reported, never a crash).")

let spill_dir =
  Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR"
       ~doc:"Spill published snapshots to $(docv) and consult it on cache \
             misses: a restarted daemon warm-starts from the previous \
             run's publishes.")

let json =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Write the load summary as JSON.")

let telemetry_json =
  Arg.(value & opt (some string) None
       & info [ "telemetry-json" ] ~docv:"FILE"
       ~doc:"Enable telemetry; write service counters/histograms as JSON.")

let require_warm_hits =
  Arg.(value & flag & info [ "require-warm-hits" ]
       ~doc:"Exit 1 unless at least one session warm-started.")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Summary only.")

let cmd =
  let info =
    Cmd.info "ildp_serve"
      ~doc:"translation-as-a-service daemon over the warm-cache registry"
  in
  Cmd.v info
    Term.(
      const run $ sessions $ images $ tenants $ jobs $ capacity $ scale $ seed
      $ fuel $ fuel_quota $ spill_dir $ json $ telemetry_json
      $ require_warm_hits $ quiet)

let () = exit (Cmd.eval cmd)
