(* ildp_run: execute workloads (or MiniC / Alpha-assembly files) under any
   of the simulated systems and report statistics.

     ildp_run gzip                         # DBT, modified ISA, dual-RAS
     ildp_run gzip --isa basic --ildp      # basic ISA + ILDP timing
     ildp_run prog.mc --interp             # plain interpretation
     ildp_run prog.s --straight --ooo      # straightened Alpha + OoO timing
     ildp_run gzip --disasm                # dump translated fragments
     ildp_run gzip mcf vortex --jobs 3     # several programs in parallel

   With several programs, each run is an independent job on a
   Harness.Pool worker domain; reports are buffered and printed in
   command-line order, so output does not depend on --jobs. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_program src scale =
  if Filename.check_suffix src ".mc" then Minic.compile (read_file src)
  else if Filename.check_suffix src ".s" then
    Alpha.Assembler.assemble (read_file src)
  else
    match Workloads.find src with
    | Some w -> Workloads.program ~scale w
    | None -> (
      (* the stress_* names are assembled generator programs, not MiniC *)
      match Stress.find_workload src with
      | Some build -> build ~scale
      | None ->
        Printf.eprintf
          "unknown workload %S (expected one of: %s, or a .mc/.s file)\n" src
          (String.concat " "
             (List.map (fun (w : Workloads.t) -> w.name) Workloads.all
             @ Stress.workload_names));
        exit 2)

let show_outcome buf = function
  | Core.Vm.Exit c -> Printf.bprintf buf "exit code      : %d\n" c
  | Core.Vm.Fault tr ->
    Printf.bprintf buf "trap           : %s\n"
      (Format.asprintf "%a" Alpha.Interp.pp_trap tr)
  | Core.Vm.Out_of_fuel -> Printf.bprintf buf "stopped        : out of fuel\n"

(* Run one program; the whole report goes into [buf] so several runs can
   proceed on worker domains without interleaving their output. *)
let run_one buf src scale isa chaining n_accs engine interp_only straight ildp
    ooo n_pe comm sample disasm fuel save_cache load_cache =
  let prog = load_program src scale in
  let isa = if isa = "basic" then Core.Config.Basic else Core.Config.Modified in
  let chaining =
    match chaining with
    | "no_pred" -> Core.Config.No_pred
    | "sw_pred" -> Core.Config.Sw_pred_no_ras
    | _ -> Core.Config.Sw_pred_ras
  in
  let engine =
    match engine with
    | "matched" -> Core.Config.Matched
    | "region" -> Core.Config.Region
    | _ -> Core.Config.Threaded
  in
  if interp_only then begin
    let st = Alpha.Interp.create prog in
    let m = if ooo then Some (Uarch.Ooo.create ()) else None in
    let outcome =
      match m with
      | Some m -> Alpha.Interp.run_ev ~fuel st ~sink:(Uarch.Ooo.feed m)
      | None -> Alpha.Interp.run ~fuel st
    in
    Buffer.add_string buf (Alpha.Interp.output st);
    (match outcome with
    | Alpha.Interp.Exit c -> Printf.bprintf buf "exit code      : %d\n" c
    | Fault tr ->
      Printf.bprintf buf "trap           : %s\n"
        (Format.asprintf "%a" Alpha.Interp.pp_trap tr)
    | Out_of_fuel -> Printf.bprintf buf "stopped        : out of fuel\n");
    Printf.bprintf buf "V-ISA insns    : %d\n" st.icount;
    Option.iter
      (fun m ->
        Uarch.Ooo.publish_obs m;
        Printf.bprintf buf "cycles         : %d\n" (Uarch.Ooo.cycles m);
        Printf.bprintf buf "V-ISA IPC      : %.3f\n" (Uarch.Ooo.v_ipc m))
      m
  end
  else begin
    let cfg = { Core.Config.default with isa; chaining; n_accs; engine } in
    let kind = if straight then Core.Vm.Straight_only else Core.Vm.Acc in
    let snapshot =
      match load_cache with
      | None -> None
      | Some path -> Some (Persist.Snapshot.read_file path)
    in
    let vm = Core.Vm.create ~cfg ?snapshot ~kind prog in
    let ildp_m =
      if ildp then
        Some
          (Uarch.Ildp.create
             ~params:{ Uarch.Ildp.default_params with n_pe; comm }
             ())
      else None
    in
    let ooo_m = if ooo && straight then Some (Uarch.Ooo.create ()) else None in
    (* --sample-interval wraps the ILDP model in the fast-forward
       sampling controller; 0 keeps the always-on detailed model *)
    let ildp_ctl =
      match ildp_m with
      | Some m when sample > 0 ->
        Some
          (Uarch.Fastfwd.create ~interval:sample ~warm:(Uarch.Ildp.warm m)
             ~feed:(Uarch.Ildp.feed m)
             ~boundary:(fun () -> Uarch.Ildp.boundary m)
             ~cycles:(fun () -> m.Uarch.Ildp.last_commit)
             ())
      | _ -> None
    in
    let sink =
      match (ildp_ctl, ildp_m, ooo_m) with
      | Some c, _, _ -> Some (Uarch.Fastfwd.feed c)
      | None, Some m, _ -> Some (Uarch.Ildp.feed m)
      | None, None, Some m -> Some (Uarch.Ooo.feed m)
      | None, None, None -> None
    in
    let boundary =
      match (ildp_ctl, ildp_m, ooo_m) with
      | Some c, _, _ -> Some (fun () -> Uarch.Fastfwd.boundary c)
      | None, Some m, _ -> Some (fun () -> Uarch.Ildp.boundary m)
      | None, None, Some m -> Some (fun () -> Uarch.Ooo.boundary m)
      | None, None, None -> None
    in
    let outcome = Core.Vm.run ?sink ?boundary ~fuel vm in
    Core.Vm.publish_obs vm;
    Option.iter Uarch.Ildp.publish_obs ildp_m;
    Option.iter Uarch.Ooo.publish_obs ooo_m;
    Buffer.add_string buf (Core.Vm.output vm);
    show_outcome buf outcome;
    Printf.bprintf buf "mode           : %s %s/%s\n"
      (if straight then "straightened-Alpha" else "accumulator-ISA")
      (Core.Config.isa_name isa)
      (Core.Config.chaining_name chaining);
    if engine = Core.Config.Region then
      Printf.bprintf buf "regions        : %d live\n" (Core.Vm.region_count vm);
    Option.iter
      (fun path -> Printf.bprintf buf "warm start     : %s\n" path)
      load_cache;
    Printf.bprintf buf "interp insns   : %d\n" vm.interp_insns;
    Printf.bprintf buf "superblocks    : %d\n" vm.superblocks;
    (match Core.Vm.acc_exec vm with
    | Some ex ->
      Printf.bprintf buf "I-ISA executed : %d (%d copy, %d chain)\n"
        ex.stats.i_exec ex.stats.by_class.(1) ex.stats.by_class.(2);
      Printf.bprintf buf "V-ISA in frags : %d\n" ex.stats.alpha_retired;
      if ex.stats.alpha_retired > 0 then
        Printf.bprintf buf "expansion      : %.3f\n"
          (float_of_int ex.stats.i_exec /. float_of_int ex.stats.alpha_retired)
    | None -> ());
    (match Core.Vm.straight_exec vm with
    | Some ex ->
      Printf.bprintf buf "translated exec: %d\n" ex.stats.i_exec;
      Printf.bprintf buf "V-ISA in frags : %d\n" ex.stats.alpha_retired
    | None -> ());
    (match Core.Vm.acc_ctx vm with
    | Some ctx ->
      Printf.bprintf buf "DBT work/insn  : %.0f\n"
        (Core.Cost.per_translated_insn ctx.cost);
      if disasm then begin
        Printf.bprintf buf "\n--- translation cache ---\n";
        List.iter
          (fun (f : Core.Tcache.frag) ->
            Printf.bprintf buf "fragment @%#x (entered %d times):\n" f.v_start
              f.exec_count;
            for s = f.entry_slot to f.entry_slot + f.n_slots - 1 do
              Printf.bprintf buf "  %5d: %s\n" s
                (Accisa.Disasm.to_string (Core.Tcache.Acc.get ctx.tc s))
            done)
          (Core.Tcache.Acc.fragments ctx.tc)
      end
    | None -> ());
    (match (ildp_ctl, ildp_m) with
    | Some c, Some _ ->
      Uarch.Fastfwd.publish_obs c;
      Printf.bprintf buf "cycles         : %d (sampled, interval %d)\n"
        (Uarch.Fastfwd.cycles c) sample;
      Printf.bprintf buf "V-ISA IPC      : %.3f\n" (Uarch.Fastfwd.v_ipc c);
      Printf.bprintf buf "model skipped  : %.1f%% of insns\n"
        (100.0 *. Uarch.Fastfwd.skip_ratio c)
    | None, Some m ->
      Printf.bprintf buf "cycles         : %d\n" (Uarch.Ildp.cycles m);
      Printf.bprintf buf "V-ISA IPC      : %.3f\n" (Uarch.Ildp.v_ipc m);
      Printf.bprintf buf "native I-IPC   : %.3f\n" (Uarch.Ildp.ipc m)
    | _, None -> ());
    Option.iter
      (fun m ->
        Printf.bprintf buf "cycles         : %d\n" (Uarch.Ooo.cycles m);
        Printf.bprintf buf "V-ISA IPC      : %.3f\n" (Uarch.Ooo.v_ipc m))
      ooo_m;
    Option.iter
      (fun path ->
        Persist.Snapshot.write_file path (Core.Vm.save_snapshot vm);
        Printf.bprintf buf "cache saved    : %s\n" path)
      save_cache
  end

let run srcs scale isa chaining n_accs engine interp_only straight ildp ooo
    n_pe comm sample disasm fuel jobs telemetry save_cache load_cache =
  Option.iter (fun _ -> Obs.set_enabled true) telemetry;
  if (save_cache <> None || load_cache <> None) && List.length srcs > 1 then begin
    Printf.eprintf "--save-cache/--load-cache need exactly one program\n";
    exit 2
  end;
  if (save_cache <> None || load_cache <> None) && interp_only then begin
    Printf.eprintf "--save-cache/--load-cache make no sense with --interp\n";
    exit 2
  end;
  let report src =
    let buf = Buffer.create 1024 in
    run_one buf src scale isa chaining n_accs engine interp_only straight ildp
      ooo n_pe comm sample disasm fuel save_cache load_cache;
    Buffer.contents buf
  in
  let used_jobs = ref 1 in
  (* snapshot problems are user-facing (stale file, wrong flags), not bugs *)
  let report src =
    try report src
    with Persist.Snapshot.Error msg ->
      Printf.eprintf "snapshot error: %s\n" msg;
      exit 3
  in
  (match srcs with
  | [ src ] -> print_string (report src)
  | srcs ->
    (* one job per program; reports print in command-line order *)
    let jobs =
      if jobs > 0 then jobs
      else min (List.length srcs) (Domain.recommended_domain_count ())
    in
    used_jobs := jobs;
    Harness.Pool.with_pool ~jobs (fun pool ->
        srcs
        |> List.map (fun src ->
               (src, Harness.Pool.submit pool (fun () -> report src)))
        |> List.iter (fun (src, fut) ->
               Printf.printf "--- %s ---\n" src;
               print_string (Harness.Pool.await fut))));
  Option.iter
    (fun path ->
      Obs.Envelope.write_telemetry path ~jobs:!used_jobs (Obs.collect ());
      Printf.printf "wrote %s\n" path)
    telemetry

let cmd =
  let srcs =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PROGRAM"
           ~doc:"Workload names, or .mc (MiniC) / .s (Alpha assembly) files. \
                 Several programs run in parallel (see --jobs).")
  in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Workload scale.") in
  let isa =
    Arg.(value & opt string "modified" & info [ "isa" ]
           ~doc:"Target I-ISA: basic or modified.")
  in
  let chaining =
    Arg.(value & opt string "sw_pred_ras" & info [ "chaining" ]
           ~doc:"Chaining: no_pred, sw_pred or sw_pred_ras.")
  in
  let n_accs = Arg.(value & opt int 4 & info [ "accs" ] ~doc:"Logical accumulators.") in
  let engine =
    Arg.(value & opt string "threaded" & info [ "engine" ]
           ~doc:"Sink-less execution engine: threaded, matched, or region \
                 (threaded plus the hot-region tier-up compiler).")
  in
  let interp = Arg.(value & flag & info [ "interp" ] ~doc:"Interpret only (no DBT).") in
  let straight =
    Arg.(value & flag & info [ "straight" ] ~doc:"Code-straightening-only DBT.")
  in
  let ildp = Arg.(value & flag & info [ "ildp" ] ~doc:"Attach the ILDP timing model.") in
  let ooo = Arg.(value & flag & info [ "ooo" ] ~doc:"Attach the superscalar timing model.") in
  let n_pe = Arg.(value & opt int 8 & info [ "pes" ] ~doc:"ILDP processing elements.") in
  let comm = Arg.(value & opt int 0 & info [ "comm" ] ~doc:"ILDP communication latency.") in
  let sample =
    Arg.(value & opt int 0 & info [ "sample-interval" ]
           ~doc:"With --ildp: feed the timing model only a warm-up + detail \
                 window out of every $(docv) committed instructions and \
                 back-charge the rest at the measured rate. 0 (default) \
                 keeps the always-on detailed model.")
  in
  let disasm = Arg.(value & flag & info [ "disasm" ] ~doc:"Dump translated fragments.") in
  let fuel =
    Arg.(value & opt int 200_000_000 & info [ "fuel" ] ~doc:"Instruction budget.")
  in
  let jobs =
    Arg.(value & opt int 0 & info [ "jobs" ]
           ~doc:"Worker domains when running several programs (default: \
                 recommended domain count).")
  in
  let telemetry =
    Arg.(value & opt (some string) None & info [ "telemetry-json" ]
           ~doc:"Enable telemetry and write the counter/span export here.")
  in
  let save_cache =
    Arg.(value & opt (some string) None & info [ "save-cache" ]
           ~doc:"After the run, save the translation cache (with its \
                 hotness profile) as a snapshot here. Single program only.")
  in
  let load_cache =
    Arg.(value & opt (some string) None & info [ "load-cache" ]
           ~doc:"Warm-start the VM from a snapshot saved with --save-cache. \
                 The snapshot must match the program and every translation \
                 flag, or it is rejected. Single program only.")
  in
  Cmd.v
    (Cmd.info "ildp_run" ~doc:"Run programs under the ILDP co-designed VM")
    Term.(
      const run $ srcs $ scale $ isa $ chaining $ n_accs $ engine $ interp
      $ straight $ ildp $ ooo $ n_pe $ comm $ sample $ disasm $ fuel $ jobs
      $ telemetry $ save_cache $ load_cache)

let () = exit (Cmd.eval cmd)
