(* Benchmark harness entry point.

   Default mode regenerates every table and figure of the paper's
   evaluation section over the twelve workloads:

     dune exec bench/main.exe                  # everything, scale 1
     dune exec bench/main.exe -- -e fig8       # one experiment
     dune exec bench/main.exe -- --scale 3     # longer runs
     dune exec bench/main.exe -- --list        # experiment ids

   [--bechamel] instead runs wall-clock microbenchmarks of the DBT pipeline
   itself (translation throughput, interpretation, timing-model feed rate),
   one Bechamel test per stage. *)

let scale = ref 1
let scale_set = ref false (* --scale given explicitly *)
let sample_interval = ref Uarch.Fastfwd.default_interval
let experiment = ref None
let bechamel = ref false
let list_only = ref false
let csv_dir = ref None
let jobs = ref 0 (* 0 = Domain.recommended_domain_count () *)
let bench_json = ref None
let repeats = ref 3
let telemetry_json = ref None
let check_file = ref None
let check_tol = ref 0.10
let save_cache = ref None
let load_cache = ref None
let sessions = ref 1000
let images = ref 4
let service_seed = ref 1

let args =
  [
    ("-e", Arg.String (fun s -> experiment := Some s), "ID run one experiment");
    ("--scale",
     Arg.Int
       (fun n ->
         scale := n;
         scale_set := true),
     "N workload scale factor (default 1; timing-fastfwd defaults to 10)");
    ("--sample-interval", Arg.Set_int sample_interval,
     Printf.sprintf
       "N fast-forward sampling interval in committed instructions \
        (default %d; 0 = always-on detailed model)"
       Uarch.Fastfwd.default_interval);
    ("--jobs", Arg.Set_int jobs,
     "N simulation worker domains (default: recommended domain count)");
    ("--bench-json", Arg.String (fun f -> bench_json := Some f),
     "FILE write per-experiment wall-clock seconds as JSON");
    ("--repeats", Arg.Set_int repeats,
     "N best-of-N timing repeats for functional-throughput (default 3)");
    ("--telemetry-json", Arg.String (fun f -> telemetry_json := Some f),
     "FILE enable telemetry; write counters/spans as JSON (+ .csv sibling)");
    ("--check", Arg.String (fun f -> check_file := Some f),
     "FILE regression-check against a committed baseline; exit 1 on failure");
    ("--check-tol", Arg.Set_float check_tol,
     "T relative tolerance for --check speedup comparisons (default 0.10)");
    ("--save-cache", Arg.String (fun f -> save_cache := Some f),
     "FILE with -e persist: save the first workload's cold snapshot here");
    ("--load-cache", Arg.String (fun f -> load_cache := Some f),
     "FILE with -e persist: warm the first workload from this snapshot \
      (cross-process roundtrip) instead of its in-process encoding");
    ("--sessions", Arg.Set_int sessions,
     "N with -e service-load: guest sessions to drive (default 1000)");
    ("--images", Arg.Set_int images,
     "N with -e service-load: distinct workload images (default 4)");
    ("--seed", Arg.Set_int service_seed,
     "N with -e service-load: arrival-order shuffle seed (default 1)");
    ("--bechamel", Arg.Set bechamel, " run Bechamel microbenchmarks");
    ("--csv", Arg.String (fun d -> csv_dir := Some d),
     "DIR export per-benchmark series as CSV files");
    ("--list", Arg.Set list_only, " list experiment ids");
  ]

let effective_jobs () =
  if !jobs > 0 then !jobs else Domain.recommended_domain_count ()

(* ---------- per-experiment wall-clock JSON ---------- *)

(* Harness timing record, schema version 2: the /1 payload carried inside
   the shared export envelope (whose "jobs" field replaces /1's own). *)
let write_bench_json path ~jobs ~scale timings =
  let module J = Obs.Json in
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 timings in
  let doc =
    Obs.Envelope.wrap ~schema:"ildp-dbt-bench/2" ~jobs
      [ ("recommended_jobs", J.Int (Domain.recommended_domain_count ()));
        ("scale", J.Int scale);
        ("experiments",
         J.List
           (List.map
              (fun (id, secs) ->
                J.Obj [ ("id", J.String id); ("seconds", J.Float secs) ])
              timings));
        ("total_seconds", J.Float total) ]
  in
  (try J.write_file path doc
   with Sys_error msg ->
     Printf.eprintf "cannot write --bench-json output: %s\n" msg;
     exit 1);
  Printf.printf "wrote %s\n" path

(* ---------- Bechamel microbenchmarks ---------- *)

let bench_superblock_translation isa =
  (* translate the gzip workload's hot loop over and over *)
  let w = List.hd Workloads.all in
  let prog = Workloads.program w in
  Bechamel.Test.make
    ~name:(Printf.sprintf "translate (%s ISA)" (Core.Config.isa_name isa))
    (Bechamel.Staged.stage (fun () ->
         let interp = Alpha.Interp.create prog in
         let ctx = Core.Translate.create { Core.Config.default with isa } in
         Core.Translate.map_vm_memory interp.mem;
         (* skip the init code, then form + translate the first hot region *)
         ignore (Alpha.Interp.run ~fuel:20_000 interp);
         let sb, _ =
           Core.Superblock.form ~interp ~max_size:200 ~is_translated:(fun _ -> false) ()
         in
         Core.Translate.translate ctx interp.mem sb))

let bench_interpreter () =
  let w = List.hd Workloads.all in
  let prog = Workloads.program w in
  Bechamel.Test.make ~name:"interpret 10k insns"
    (Bechamel.Staged.stage (fun () ->
         let interp = Alpha.Interp.create prog in
         ignore (Alpha.Interp.run ~fuel:10_000 interp)))

let bench_vm_exec () =
  let w = List.hd Workloads.all in
  let prog = Workloads.program w in
  Bechamel.Test.make ~name:"VM run 100k V-insns (modified ISA)"
    (Bechamel.Staged.stage (fun () ->
         let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
         ignore (Core.Vm.run ~fuel:100_000 vm)))

let bench_ildp_timing () =
  let w = List.hd Workloads.all in
  let prog = Workloads.program w in
  Bechamel.Test.make ~name:"VM + ILDP timing, 100k V-insns"
    (Bechamel.Staged.stage (fun () ->
         let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
         let m = Uarch.Ildp.create () in
         ignore
           (Core.Vm.run ~sink:(Uarch.Ildp.feed m)
              ~boundary:(fun () -> Uarch.Ildp.boundary m)
              ~fuel:100_000 vm)))

let bench_ooo_timing () =
  let w = List.hd Workloads.all in
  let prog = Workloads.program w in
  Bechamel.Test.make ~name:"interp + OoO timing, 100k V-insns"
    (Bechamel.Staged.stage (fun () ->
         let st = Alpha.Interp.create prog in
         let m = Uarch.Ooo.create () in
         ignore (Alpha.Interp.run_ev ~fuel:100_000 st ~sink:(Uarch.Ooo.feed m))))

let run_bechamel () =
  let open Bechamel in
  let benchmarks =
    Test.make_grouped ~name:"ildp_dbt"
      [
        bench_interpreter ();
        bench_superblock_translation Core.Config.Basic;
        bench_superblock_translation Core.Config.Modified;
        bench_vm_exec ();
        bench_ildp_timing ();
        bench_ooo_timing ();
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 2.0) () in
  let clock = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ clock ] benchmarks in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols clock raw in
  (* plain-text report: ns per run for each stage *)
  let rows = ref [] in
  Hashtbl.iter
    (fun name (r : Analyze.OLS.t) ->
      let line =
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> Printf.sprintf "%-45s %14.0f ns/run" name est
        | _ -> Printf.sprintf "%-45s (no estimate)" name
      in
      rows := line :: !rows)
    results;
  List.iter print_endline (List.sort compare !rows)

(* ---------- functional throughput (threaded vs. match engine) ---------- *)

(* Not a paper experiment: wall-clock throughput of the VM's two translated
   execution engines, with full cross-engine state verification. Exit
   status 1 on any divergence, so CI can gate on it (@perf-smoke). *)
let run_throughput fmt ~scale ~repeats =
  let rows = Harness.Throughput.sweep ~scale ~repeats () in
  ignore (Harness.Throughput.render fmt rows);
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      (* jobs=1 vs jobs=4 aggregate rows only for the committed record:
         they re-run the sweep and are not needed for the CI gate *)
      let jobs_rows =
        [
          Harness.Throughput.jobs_sweep ~jobs:1 ~scale ();
          Harness.Throughput.jobs_sweep ~jobs:4 ~scale ();
        ]
      in
      Harness.Throughput.write_json path ~jobs:1 ~scale
        ~fuel:Harness.Throughput.default_fuel ~repeats rows jobs_rows;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if
    List.exists
      (fun (r : Harness.Throughput.row) -> r.mismatches <> [])
      rows
  then begin
    prerr_endline
      "functional-throughput: threaded engine diverged from match engine";
    exit 1
  end

(* ---------- region tier-up throughput (three-way, verified) ---------- *)

(* Not a paper experiment: wall-clock throughput of the region tier-up
   engine against both the instrumented and plain threaded engines, with
   full cross-engine state verification of the region runs. Exit status 1
   on any divergence, so CI can gate on it alongside functional-throughput. *)
let run_region_throughput fmt ~scale ~repeats =
  let rows = Harness.Throughput.region_sweep ~scale ~repeats () in
  ignore (Harness.Throughput.render_region fmt rows);
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      Harness.Throughput.write_region_json path ~jobs:1 ~scale
        ~fuel:Harness.Throughput.default_fuel ~repeats rows;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if
    List.exists
      (fun (r : Harness.Throughput.region_row) -> r.rr_mismatches <> [])
      rows
  then begin
    prerr_endline
      "region-throughput: region engine diverged from match engine";
    exit 1
  end

(* ---------- fast-forward timing (sampled vs full-fidelity ILDP) ---------- *)

(* The timing sweep defaults to 10x workload scale: interval sampling is
   exactly what makes the larger runs affordable, and at scale 1 some
   workloads commit too few translated instructions for the sampled
   estimate to be meaningful. An explicit --scale always wins. *)
let timing_scale () = if !scale_set then !scale else 10

(* Not a paper experiment: sampled vs full-fidelity ILDP timing over the
   workloads, gated on the sampled estimate's accuracy (not speed). Exit
   status 1 on any divergence, so CI can gate on it (@timing-smoke). *)
let run_timing fmt ~scale ~interval =
  let rows = Harness.Fastfwd_bench.sweep ~interval ~scale () in
  let max_err = Harness.Fastfwd_bench.render fmt rows in
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      Harness.Fastfwd_bench.write_json path ~jobs:1 ~scale
        ~fuel:Harness.Fastfwd_bench.default_fuel ~interval rows;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if
    List.exists
      (fun (r : Harness.Fastfwd_bench.row) -> r.mismatches <> [])
      rows
  then begin
    prerr_endline "timing-fastfwd: sampled run diverged from full fidelity";
    exit 1
  end;
  if max_err > Harness.Fastfwd_bench.err_bound then begin
    Printf.eprintf "timing-fastfwd: sampled V-IPC error %.1f%% exceeds %.0f%%\n"
      (100.0 *. max_err)
      (100.0 *. Harness.Fastfwd_bench.err_bound);
    exit 1
  end

(* ---------- persistent-snapshot warm start (cold vs warm) ---------- *)

(* Not a paper experiment: cold-vs-warm start of the VM from a persisted
   translation-cache snapshot, with full cold/warm state verification and
   the translation-phase reduction measured in deterministic cost-model
   units. Exit status 1 on any divergence (@persist-smoke gates on it). *)
let run_persist fmt ~scale =
  let rows, first_bytes =
    try Harness.Persist_bench.sweep ~scale ?load_cache:!load_cache ()
    with Persist.Snapshot.Error msg ->
      Printf.eprintf "snapshot error: %s\n" msg;
      exit 1
  in
  ignore (Harness.Persist_bench.render fmt rows);
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      let oc = open_out_bin path in
      output_string oc first_bytes;
      close_out oc;
      Printf.printf "wrote %s\n" path)
    !save_cache;
  Option.iter
    (fun path ->
      Harness.Persist_bench.write_json path ~jobs:1 ~scale
        ~fuel:Harness.Persist_bench.default_fuel rows;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if
    List.exists
      (fun (r : Harness.Persist_bench.row) ->
        r.mismatches <> [] || r.region_mismatches <> [])
      rows
  then begin
    prerr_endline "persist: warm start diverged from cold start";
    exit 1
  end

(* ---------- translation-service load (1000 sessions, warm cache) ---------- *)

(* Not a paper experiment: a load generator driving many concurrent guest
   sessions through the translation service's shared warm-cache registry,
   every session cross-verified against a serial reference run. Exit
   status 1 on any divergence (@service-smoke gates on it). *)
let run_service_load fmt ~scale =
  let s =
    Harness.Service_bench.run_load ~sessions:!sessions ~images:!images
      ~scale ~jobs:(effective_jobs ()) ~seed:!service_seed ()
  in
  Harness.Service_bench.render fmt s;
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      Harness.Service_bench.write_json path ~jobs:(effective_jobs ()) ~scale
        ~fuel:Harness.Service_bench.default_fuel s;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if s.divergences > 0 then begin
    prerr_endline "service-load: sessions diverged from the serial reference";
    exit 1
  end;
  if s.cold_builds <> s.images then begin
    Printf.eprintf "service-load: %d cold builds for %d images (single-flight \
                    violated)\n"
      s.cold_builds s.images;
    exit 1
  end

(* ---------- quantized NN inference (cross-engine, checksum-verified) ---------- *)

(* Not a paper experiment: the nn_* kernels under all three accumulator
   engines plus the straightening backend, gated on the per-layer
   checksums agreeing everywhere. Exit status 1 on any divergence, so CI
   can gate on it (@nn-smoke). *)
let run_nn fmt ~scale ~repeats =
  let rows = Harness.Nn_bench.sweep ~scale ~repeats () in
  ignore (Harness.Nn_bench.render fmt rows);
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      Harness.Nn_bench.write_json path ~jobs:1 ~scale
        ~fuel:Harness.Nn_bench.default_fuel ~repeats rows;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if List.exists (fun (r : Harness.Nn_bench.row) -> r.mismatches <> []) rows
  then begin
    prerr_endline "nn-inference: engines disagree on NN kernel checksums";
    exit 1
  end

(* ---------- adversarial stress (telemetry-gated, interpreter-verified) ---------- *)

(* Not a paper experiment: the three stress arms against configurations
   chosen to let each hit its target mechanism, with translator-health
   telemetry recorded and every run verified against the golden
   interpreter. Exit status 1 if any arm diverges or misses its target,
   so CI can gate on it (@stress-smoke). *)
let run_stress fmt ~scale =
  let s = Harness.Stress_bench.sweep ~scale () in
  Harness.Stress_bench.render fmt s;
  Format.pp_print_flush fmt ();
  Option.iter
    (fun path ->
      Harness.Stress_bench.write_json path ~jobs:1 ~scale
        ~fuel:Harness.Stress_bench.default_fuel s;
      Printf.printf "wrote %s\n" path)
    !bench_json;
  if
    List.exists
      (fun (r : Harness.Stress_bench.row) -> r.s_mismatches <> [])
      (s.reference :: s.arms)
  then begin
    prerr_endline "stress: a stress arm diverged from the golden interpreter";
    exit 1
  end;
  if not (Harness.Stress_bench.all_targets_met s) then begin
    prerr_endline "stress: an arm no longer hits its target mechanism";
    exit 1
  end

(* Plan -> parallel cache warm -> serial render. The render functions only
   read memoised results, so console output is byte-identical at any job
   count; rows are formatted in the same order as a serial run. *)
let run_experiments fmt exps ~scale =
  let jobs = effective_jobs () in
  Harness.Pool.with_pool ~jobs (fun pool ->
      let timings =
        List.map
          (fun (e : Harness.Experiments.exp) ->
            let t0 = Unix.gettimeofday () in
            Harness.Runner.prewarm ~pool (e.plan ~scale);
            e.render fmt ~scale;
            Format.pp_print_flush fmt ();
            (e.id, Unix.gettimeofday () -. t0))
          exps
      in
      Option.iter
        (fun path -> write_bench_json path ~jobs ~scale timings)
        !bench_json)

(* ---------- special (non-registry) experiments ----------

   Engine/infrastructure gates that live outside the paper-table registry
   in Harness.Experiments: each entry is (id, description, runner), and
   both --list and the -e dispatch are driven from this one table, so an
   experiment added here can never be silently missing from --list. *)
let specials () : (string * string * (Format.formatter -> unit)) list =
  [
    ("functional-throughput",
     "VM execution-engine throughput (threaded vs. match), verified",
     fun fmt -> run_throughput fmt ~scale:!scale ~repeats:!repeats);
    ("region-throughput",
     "region tier-up engine throughput (three-way, verified)",
     fun fmt -> run_region_throughput fmt ~scale:!scale ~repeats:!repeats);
    ("timing-fastfwd",
     "sampled vs full-fidelity ILDP timing, accuracy-gated",
     fun fmt -> run_timing fmt ~scale:(timing_scale ()) ~interval:!sample_interval);
    ("persist",
     "cold vs warm start from a translation-cache snapshot, verified",
     fun fmt -> run_persist fmt ~scale:!scale);
    ("service-load",
     "translation-service session load over the warm-cache registry, verified",
     fun fmt -> run_service_load fmt ~scale:!scale);
    ("nn-inference",
     "quantized NN kernels across all engines and backends, checksum-verified",
     fun fmt -> run_nn fmt ~scale:!scale ~repeats:!repeats);
    ("stress",
     "adversarial stress arms with translator-health telemetry, target-gated",
     fun fmt -> run_stress fmt ~scale:!scale);
  ]

(* ---------- baseline regression check (--check, CI gate) ---------- *)

let run_check path =
  let ids =
    List.map (fun (e : Harness.Experiments.exp) -> e.id) Harness.Experiments.all
  in
  let sweep () = Harness.Throughput.sweep ~scale:!scale ~repeats:!repeats () in
  let region_sweep () =
    Harness.Throughput.region_sweep ~scale:!scale ~repeats:!repeats ()
  in
  let timing_sweep () =
    Harness.Fastfwd_bench.sweep ~interval:!sample_interval
      ~scale:(timing_scale ()) ()
  in
  let service_sweep ~sessions ~images ~seed =
    Harness.Service_bench.run_load ~sessions ~images ~scale:!scale
      ~jobs:(effective_jobs ()) ~seed ()
  in
  let nn_sweep () = Harness.Nn_bench.sweep ~scale:!scale ~repeats:!repeats () in
  let stress_sweep () = Harness.Stress_bench.sweep ~scale:!scale () in
  let r =
    Harness.Check.run ~tol:!check_tol ~ids ~sweep ~region_sweep ~timing_sweep
      ~service_sweep ~nn_sweep ~stress_sweep path
  in
  Printf.printf "check %s (tol ±%.0f%%)\n" path (100.0 *. !check_tol);
  List.iter print_endline r.Harness.Check.lines;
  if not r.Harness.Check.ok then exit 1

let () =
  Arg.parse args (fun _ -> ()) "ILDP DBT benchmark harness";
  (* Telemetry export covers the whole process (including early exits on
     verification failure, which is when a counter dump is most wanted),
     hence the at_exit: worker-domain slabs outlive their domains, so a
     collect at process end still sees every observation. *)
  Option.iter
    (fun path ->
      Obs.set_enabled true;
      at_exit (fun () ->
          let snap = Obs.collect () in
          Obs.Envelope.write_telemetry path ~jobs:(effective_jobs ()) snap;
          let csv = Filename.remove_extension path ^ ".csv" in
          ignore (Harness.Csv.telemetry csv snap);
          Printf.printf "wrote %s\nwrote %s\n" path csv))
    !telemetry_json;
  if !check_file <> None then run_check (Option.get !check_file)
  else if !list_only then begin
    List.iter
      (fun (e : Harness.Experiments.exp) -> Printf.printf "%-8s %s\n" e.id e.desc)
      Harness.Experiments.all;
    List.iter
      (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc)
      (specials ())
  end
  else if !bechamel then run_bechamel ()
  else if !csv_dir <> None then begin
    let dir = Option.get !csv_dir in
    (* warm the runs behind the exported series in parallel, then export *)
    Harness.Pool.with_pool ~jobs:(effective_jobs ()) (fun pool ->
        let plans =
          List.concat_map
            (fun id ->
              match Harness.Experiments.find id with
              | Some e -> e.plan ~scale:!scale
              | None -> [])
            [ "table2"; "fig4"; "fig5"; "fig8"; "fig9" ]
        in
        Harness.Runner.prewarm ~pool plans);
    let files = Harness.Csv.export dir ~scale:!scale in
    List.iter (Printf.printf "wrote %s\n") files
  end
  else begin
    let fmt = Format.std_formatter in
    (* note: the job count is deliberately absent from the banner so that
       output at any --jobs setting is byte-identical *)
    Format.fprintf fmt
      "ILDP DBT evaluation - %d workloads, scale %d@.(workloads: %s)@."
      (List.length Workloads.all) !scale
      (String.concat " " (Harness.Experiments.names ()));
    (match !experiment with
    | Some id -> (
      match
        List.find_opt (fun (sid, _, _) -> sid = id) (specials ())
      with
      | Some (_, _, runner) -> runner fmt
      | None -> (
        match Harness.Experiments.find id with
        | Some e -> run_experiments fmt [ e ] ~scale:!scale
        | None ->
          Format.fprintf fmt "unknown experiment %S; use --list@." id;
          exit 1))
    | None -> run_experiments fmt Harness.Experiments.all ~scale:!scale);
    Format.pp_print_flush fmt ()
  end
