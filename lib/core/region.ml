(* Region selection and block partition for the tier-up compiler.

   A region is the statically-chained neighborhood of one hot fragment:
   starting from the fragment whose [exec_count] crossed
   [Config.region_threshold], we walk unconditional and conditional
   branch targets that land on other fragment entries (patched chain
   branches are plain [Br] by the time we see them, so chain-resolved
   successors come for free) and gather every reached fragment, bounded
   by [region_max_slots] total cache slots and a fixed guest-address
   window around the seed — the libriscv loop-offset rule, which keeps a
   region a loop nest rather than an arbitrary program slice.

   The gathered slot ranges are partitioned into basic blocks (leaders:
   fragment entries, in-region branch targets, and fall-throughs of
   control slots; a block ends at its first control slot). For each
   block we precompute the total V-ISA retirement and per-class
   instruction tallies so the engines can charge statistics in bulk per
   block execution instead of per slot, plus the resolved in-region
   fall-through/taken successor blocks so transfers between blocks skip
   the trampoline entirely.

   This module is engine-independent: the engines describe their cache
   through callbacks and keep the actual closure execution to
   themselves. *)

(* Control shape of one cache slot, as seen by region formation. *)
type ctrl =
  | C_seq (* ordinary slot: executes and falls through *)
  | C_br of int (* unconditional branch to a static slot *)
  | C_bc of int (* conditional branch: taken -> slot, else fall through *)
  | C_dyn (* register-indirect transfer: target known only at run time *)
  | C_dyn_fall (* dynamic transfer on hit, fall-through on miss (Ret_dras) *)
  | C_exit (* always leaves translated code (Call_xlate, PAL) *)
  | C_cond_exit (* leaves translated code when taken, else falls through *)

let n_classes = 4 (* Translate.slot_class arity, mirrored in engine stats *)

(* Guest-address distance (bytes) a successor fragment may sit from the
   seed fragment and still join its region. *)
let v_span_limit = 4096

(* [min_int] marks "no in-region successor on this edge": the engines
   compare it against slot indices (>= 0) and engine exit codes (small
   negatives), neither of which can collide. *)
let no_slot = min_int

type t = {
  entry_slot : int;
  entry_block : int;
  members : (int * int) array; (* sorted, disjoint (start, len) ranges *)
  total_slots : int;
  n_frags : int;
  b_start : int array;
  b_len : int array;
  b_alpha : int array; (* per-block V-ISA retirement total *)
  b_cyc : int array; (* per-block static cycle total (fast-forward tier) *)
  b_cls : int array; (* n_blocks * n_classes, flattened per-class counts *)
  b_fall_slot : int array; (* fall-through slot if it is an in-region
                              block start, else [no_slot] *)
  b_fall_blk : int array;
  b_taken_slot : int array; (* static taken-target slot likewise *)
  b_taken_blk : int array;
}

(* Index of the block whose start slot is exactly [slot], or -1. [b_start]
   is strictly increasing (members are sorted and disjoint, blocks emitted
   in order), so dynamic transfers — DRAS return hits, predicted indirect
   jumps — resolve to an in-region continuation in O(log blocks). *)
let blk_at t slot =
  let b_start = t.b_start in
  let lo = ref 0 and hi = ref (Array.length b_start - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get b_start mid in
    if v = slot then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < slot then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let contains t slot =
  let n = Array.length t.members in
  let rec go i =
    if i >= n then false
    else
      let st, len = t.members.(i) in
      (slot >= st && slot < st + len) || go (i + 1)
  in
  go 0

(* [frag_at slot] describes the fragment whose entry is [slot] as
   [(n_slots, v_start)], or [None] if [slot] is not a promotable
   fragment entry (not an entry at all, or one that already carries its
   own region closure — a region must never call another region's entry
   closure mid-block). *)
let build ~entry ~frag_at ~(ctrl : int -> ctrl) ~(alpha : int -> int)
    ~(cyc : int -> int) ~(cls : int -> int) ~max_slots : t option =
  match frag_at entry with
  | None -> None
  | Some (n0, _) when n0 <= 0 || n0 > max_slots -> None
  | Some (n0, v0) ->
    (* breadth-first gather over static chain successors *)
    let members = ref [ (entry, n0) ] in
    let total = ref n0 in
    let in_members s =
      List.exists (fun (st, len) -> s >= st && s < st + len) !members
    in
    let queue = Queue.create () in
    Queue.add (entry, n0) queue;
    while not (Queue.is_empty queue) do
      let s0, len = Queue.pop queue in
      for s = s0 to s0 + len - 1 do
        let tgt = match ctrl s with C_br x | C_bc x -> x | _ -> -1 in
        if tgt >= 0 && not (in_members tgt) then
          match frag_at tgt with
          | Some (n, v)
            when n > 0 && !total + n <= max_slots
                 && abs (v - v0) <= v_span_limit ->
            members := (tgt, n) :: !members;
            total := !total + n;
            Queue.add (tgt, n) queue
          | _ -> ()
      done
    done;
    let members = Array.of_list (List.sort compare !members) in
    let n_frags = Array.length members in
    let in_region s =
      let rec go i =
        if i >= n_frags then false
        else
          let st, len = members.(i) in
          (s >= st && s < st + len) || go (i + 1)
      in
      go 0
    in
    (* block leaders *)
    let leader = Hashtbl.create 64 in
    Array.iter
      (fun (st, len) ->
        Hashtbl.replace leader st ();
        for s = st to st + len - 1 do
          match ctrl s with
          | C_seq -> ()
          | C_br x | C_bc x ->
            if in_region x then Hashtbl.replace leader x ();
            if in_region (s + 1) then Hashtbl.replace leader (s + 1) ()
          | C_dyn | C_dyn_fall | C_exit | C_cond_exit ->
            if in_region (s + 1) then Hashtbl.replace leader (s + 1) ()
        done)
      members;
    (* partition each member range into blocks *)
    let rev_starts = ref [] and rev_ends = ref [] in
    Array.iter
      (fun (st, len) ->
        let fin = st + len - 1 in
        let s = ref st in
        while !s <= fin do
          let b0 = !s in
          let e = ref b0 in
          while
            !e < fin && ctrl !e = C_seq && not (Hashtbl.mem leader (!e + 1))
          do
            incr e
          done;
          rev_starts := b0 :: !rev_starts;
          rev_ends := !e :: !rev_ends;
          s := !e + 1
        done)
      members;
    let b_start = Array.of_list (List.rev !rev_starts) in
    let ends = Array.of_list (List.rev !rev_ends) in
    let n_blocks = Array.length b_start in
    let blk_of = Hashtbl.create 64 in
    Array.iteri (fun i s -> Hashtbl.replace blk_of s i) b_start;
    let b_len = Array.init n_blocks (fun i -> ends.(i) - b_start.(i) + 1) in
    let b_alpha = Array.make n_blocks 0 in
    let b_cyc = Array.make n_blocks 0 in
    let b_cls = Array.make (n_blocks * n_classes) 0 in
    let b_fall_slot = Array.make n_blocks no_slot in
    let b_fall_blk = Array.make n_blocks (-1) in
    let b_taken_slot = Array.make n_blocks no_slot in
    let b_taken_blk = Array.make n_blocks (-1) in
    for b = 0 to n_blocks - 1 do
      let s0 = b_start.(b) and fin = ends.(b) in
      for s = s0 to fin do
        b_alpha.(b) <- b_alpha.(b) + alpha s;
        b_cyc.(b) <- b_cyc.(b) + cyc s;
        let c = cls s in
        b_cls.((b * n_classes) + c) <- b_cls.((b * n_classes) + c) + 1
      done;
      let fall, taken =
        match ctrl fin with
        | C_seq | C_dyn_fall | C_cond_exit -> (fin + 1, no_slot)
        | C_br x -> (no_slot, x)
        | C_bc x -> (fin + 1, x)
        | C_dyn | C_exit -> (no_slot, no_slot)
      in
      (match Hashtbl.find_opt blk_of fall with
      | Some i ->
        b_fall_slot.(b) <- fall;
        b_fall_blk.(b) <- i
      | None -> ());
      match Hashtbl.find_opt blk_of taken with
      | Some i ->
        b_taken_slot.(b) <- taken;
        b_taken_blk.(b) <- i
      | None -> ()
    done;
    Some
      {
        entry_slot = entry;
        entry_block = Hashtbl.find blk_of entry;
        members;
        total_slots = !total;
        n_frags;
        b_start;
        b_len;
        b_alpha;
        b_cyc;
        b_cls;
        b_fall_slot;
        b_fall_blk;
        b_taken_slot;
        b_taken_blk;
      }
