module Vec = Machine.Vec
module Memory = Machine.Memory
module I = Accisa.Insn

(* Alpha -> accumulator-I-ISA translation (paper Section 3.3).

   One forward pass over the decomposed superblock nodes performs strand
   formation and linear-scan accumulator assignment simultaneously, emitting
   I-ISA instructions in original program order:

   - a node with no local (accumulator-carried) input starts a strand; if it
     has two global register inputs, one is first loaded with a
     copy-from-GPR that initiates the strand;
   - a node with one local input continues that strand;
   - a node with two local inputs keeps the strand chosen by the paper's
     heuristic (temp producer first, else the longer strand) and demotes the
     other value to a spill global;
   - when the translator runs out of accumulators, the least-recently-used
     live strand is terminated: its value is copied to its architected GPR
     (or a VM scratch register for decomposition temps), freeing the
     accumulator.

   Architected-state maintenance differs by target format:
   - basic ISA: values classified as needing a save (Fig. 7's global
     classes) get an explicit copy-to-GPR right after production; values
     held only in an accumulator are "dirty" and are copied out before the
     accumulator is overwritten whenever a potentially-excepting instruction
     lies ahead of the value's death (Section 2.2); PEI-table entries record
     the live accumulator-to-register map;
   - modified ISA: every producing instruction embeds its destination GPR
     ([gdst]); values needing inter-strand/inter-fragment communication are
     additionally marked as operational-GPR writes ([gopr]). *)

(* ---------- VM register and memory conventions ---------- *)

let vr_arg = 32 (* dispatch argument: target V-address *)
let vr_tmp = 33 (* dispatch temp *)
let scratch_home_base = 48 (* spilled-temp homes, 8 registers *)
let n_scratch_homes = 8

let table_base = 0x1000000
let table_bits = 14
let table_mask = (1 lsl table_bits) - 1
let table_bytes = 16 * ((1 lsl table_bits) + 2)

type slot_class = C_core | C_copy | C_chain | C_prologue

let class_id = function C_core -> 0 | C_copy -> 1 | C_chain -> 2 | C_prologue -> 3

(* Static cycle pricer for the fast-forward timing tier: maps a fragment's
   synthesized straight-line event sequence to its per-slot cycle cost
   under (ooo, ildp). Injected by the VM (Uarch.Fastfwd.annotate in
   practice) so [core] stays independent of the timing models. *)
type annotator = Machine.Ev.t array -> int array * int array

type ctx = {
  cfg : Config.t;
  tc : Tcache.Acc.t;
  exits : Exitr.reason Vec.t;
  cost : Cost.t;
  slot_alpha : int Vec.t; (* V-ISA instructions retired by this slot *)
  slot_class : int Vec.t;
  slot_cyc_ooo : int Vec.t; (* static cycle cost per slot, Ooo model *)
  slot_cyc_ildp : int Vec.t; (* static cycle cost per slot, Ildp model *)
  annotate : annotator option;
  unique_vpcs : (int, unit) Hashtbl.t; (* distinct V-addresses translated *)
  mutable dispatch_slot : int;
  mutable n_copy : int; (* state/spill/split copy instructions emitted *)
  mutable n_chain : int; (* chaining instructions emitted *)
  mutable n_spills : int; (* strand terminations from accumulator pressure *)
  mutable n_splits : int; (* two-global copy-from-GPR splits *)
}

let emit ?(strand_start = false) ?(alpha = 0) ctx cls insn =
  Cost.tick ctx.cost Cost.emit_per_insn;
  (match cls with
  | C_copy -> ctx.n_copy <- ctx.n_copy + 1
  | C_chain -> ctx.n_chain <- ctx.n_chain + 1
  | _ -> ());
  let slot = Tcache.Acc.push ~strand_start ctx.tc insn in
  Vec.push ctx.slot_alpha alpha;
  Vec.push ctx.slot_class (class_id cls);
  Vec.push ctx.slot_cyc_ooo 0;
  Vec.push ctx.slot_cyc_ildp 0;
  slot

(* ---------- shared dispatch code (paper Section 3.2) ----------

   ABI: the target V-address is in [vr_arg]. Two linear probes of a 16-byte
   { tag = V-address; value = entry slot } open-addressed table held in
   VM-private simulated memory; a double miss exits to the translator. The
   probe-0 hit path costs 12 instructions, a probe-1 hit 22, on the scale of
   the paper's "the dispatch code takes 20 instructions". *)

let hash_of_v v = (v lsr 2) land table_mask

let entry_addr v probe = table_base + (16 * ((hash_of_v v + probe) land table_mask))

(* Install a fragment entry into the in-memory dispatch table. *)
let dispatch_install mem ~v ~slot =
  let try_probe p =
    let a = entry_addr v p in
    let tag = Memory.get_i64 mem a in
    if Int64.equal tag 0L || Int64.equal tag (Int64.of_int v) then begin
      Memory.set_i64 mem a (Int64.of_int v);
      Memory.set_i64 mem (a + 8) (Int64.of_int slot);
      true
    end
    else false
  in
  if not (try_probe 0 || try_probe 1) then begin
    (* both probes taken by other addresses: evict probe 0 (rare; the
       evicted fragment falls back to translator-assisted dispatch) *)
    let a = entry_addr v 0 in
    Memory.set_i64 mem a (Int64.of_int v);
    Memory.set_i64 mem (a + 8) (Int64.of_int slot)
  end

let dacc a = { I.dacc = a; gdst = None; gopr = false }

let emit_dispatch ctx =
  let e ?strand_start insn = emit ?strand_start ctx C_chain insn in
  let first = Tcache.Acc.n_slots ctx.tc in
  (* probe 0: hash, load tag, compare *)
  ignore (e ~strand_start:true (I.Alu { op = Srl; d = dacc 0; a = Sgpr vr_arg; b = Simm 2L }));
  ignore (e (I.Alu { op = And_; d = dacc 0; a = Sacc 0; b = Simm (Int64.of_int table_mask) }));
  ignore (e (I.Alu { op = Sll; d = dacc 0; a = Sacc 0; b = Simm 4L }));
  ignore (e (I.Alu { op = Addq; d = dacc 0; a = Sacc 0; b = Simm (Int64.of_int table_base) }));
  ignore (e (I.Copy_to_gpr { g = vr_tmp; a = 0 }));
  ignore (e (I.Load { width = W8; signed = false; d = dacc 0; base = Sacc 0; disp = 0 }));
  ignore (e (I.Alu { op = Xor; d = dacc 0; a = Sacc 0; b = Sgpr vr_arg }));
  let b0 = e (I.Bc { cond = Ne; v = Sacc 0; target = 0 (* patched below *) }) in
  ignore (e ~strand_start:true (I.Copy_from_gpr { d = dacc 0; g = vr_tmp }));
  ignore (e (I.Alu { op = Addq; d = dacc 0; a = Sacc 0; b = Simm 8L }));
  ignore (e (I.Load { width = W8; signed = false; d = dacc 0; base = Sacc 0; disp = 0 }));
  ignore (e (I.Jmp_ind { v = Sacc 0 }));
  (* probe 1 *)
  let p1 = Tcache.Acc.n_slots ctx.tc in
  Tcache.Acc.patch ctx.tc b0 (I.Bc { cond = Ne; v = Sacc 0; target = p1 });
  ignore (e ~strand_start:true (I.Copy_from_gpr { d = dacc 0; g = vr_tmp }));
  ignore (e (I.Alu { op = Addq; d = dacc 0; a = Sacc 0; b = Simm 16L }));
  ignore (e (I.Copy_to_gpr { g = vr_tmp; a = 0 }));
  ignore (e (I.Load { width = W8; signed = false; d = dacc 0; base = Sacc 0; disp = 0 }));
  ignore (e (I.Alu { op = Xor; d = dacc 0; a = Sacc 0; b = Sgpr vr_arg }));
  let b1 = e (I.Bc { cond = Ne; v = Sacc 0; target = 0 (* patched below *) }) in
  ignore (e ~strand_start:true (I.Copy_from_gpr { d = dacc 0; g = vr_tmp }));
  ignore (e (I.Alu { op = Addq; d = dacc 0; a = Sacc 0; b = Simm 8L }));
  ignore (e (I.Load { width = W8; signed = false; d = dacc 0; base = Sacc 0; disp = 0 }));
  ignore (e (I.Jmp_ind { v = Sacc 0 }));
  (* miss *)
  let miss = Tcache.Acc.n_slots ctx.tc in
  Tcache.Acc.patch ctx.tc b1 (I.Bc { cond = Ne; v = Sacc 0; target = miss });
  let exit_id = Vec.length ctx.exits in
  Vec.push ctx.exits Exitr.R_dispatch_miss;
  ignore (e (I.Call_xlate { exit_id }));
  ctx.dispatch_slot <- first

let create ?annotate cfg =
  let ctx =
    {
      cfg;
      tc = Tcache.Acc.create ();
      exits = Vec.create ~dummy:Exitr.R_dispatch_miss;
      cost = Cost.create ();
      slot_alpha = Vec.create ~dummy:0;
      slot_class = Vec.create ~dummy:0;
      slot_cyc_ooo = Vec.create ~dummy:0;
      slot_cyc_ildp = Vec.create ~dummy:0;
      annotate;
      unique_vpcs = Hashtbl.create 1024;
      dispatch_slot = 0;
      n_copy = 0;
      n_chain = 0;
      n_spills = 0;
      n_splits = 0;
    }
  in
  emit_dispatch ctx;
  ctx

(* Map the dispatch table into the simulated address space. *)
let map_vm_memory mem = Memory.map mem ~addr:table_base ~len:table_bytes

(* Flush the translation cache (paper Section 4.1: Dynamo flushes on phase
   change so that new, better fragments can form). Drops all fragments and
   patches, clears the in-memory dispatch table, and re-emits the shared
   dispatch code. Statistics and translation-cost accounting accumulate
   across flushes. *)
let flush ctx mem =
  Tcache.Acc.clear ctx.tc;
  Vec.clear ctx.exits;
  Vec.clear ctx.slot_alpha;
  Vec.clear ctx.slot_class;
  Vec.clear ctx.slot_cyc_ooo;
  Vec.clear ctx.slot_cyc_ildp;
  Memory.fill_zero mem ~addr:table_base ~len:table_bytes;
  emit_dispatch ctx

(* Price a sealed fragment's slots under both timing models (fast-forward
   tier). The slots are replayed as a straight-line sequence: branches
   not-taken with a fall-through target, loads at a constant address — the
   warmed, well-predicted static cost. Mispredicts, cache misses and
   inter-fragment effects stay dynamic corrections charged by the
   execution engines. Later patches (call-translator -> direct branch)
   keep the annotation computed here: both forms price as one
   fall-through control slot. *)
let annotate_frag ctx (frag : Tcache.frag) =
  match ctx.annotate with
  | None -> ()
  | Some annotate ->
    let evs =
      Array.init frag.n_slots (fun k ->
          let s = frag.entry_slot + k in
          let insn = Tcache.Acc.get ctx.tc s in
          let pc = Tcache.Acc.addr_of ctx.tc s in
          Accisa.Trace.ev
            ~strand_start:(Tcache.Acc.starts_strand ctx.tc s)
            ~alpha_count:(Vec.get ctx.slot_alpha s)
            ~pc ~ea:0 ~taken:false
            ~target:(pc + Accisa.Size.bytes insn)
            insn)
    in
    let ooo, ildp = annotate evs in
    for k = 0 to frag.n_slots - 1 do
      Vec.set ctx.slot_cyc_ooo (frag.entry_slot + k) ooo.(k);
      Vec.set ctx.slot_cyc_ildp (frag.entry_slot + k) ildp.(k)
    done

(* ---------- per-superblock translation ---------- *)

exception Translate_bug of string

(* Telemetry: per-backend translation counters; the sizing histogram is
   fed with the superblock's V-ISA instruction count before expansion. *)
let c_superblocks = Obs.counter "translate.acc.superblocks"
let c_emitted = Obs.counter "translate.acc.emitted_slots"

(* Top bound doubled past max_superblock (200) so oversized formations at
   raised scales land in a real bucket; [.saturated] counts any clipping. *)
let h_sb_insns =
  Obs.histogram "translate.superblock_v_insns"
    ~bounds:[| 2; 4; 8; 16; 32; 64; 128; 200; 400 |]

let translate ctx mem (sb : Superblock.t) =
  if Array.length sb.entries = 0 then ()
  else begin
    Obs.bump c_superblocks 1;
    Obs.observe h_sb_insns (Array.length sb.entries);
    let nodes = Node.decompose ~fuse_mem:ctx.cfg.fuse_mem sb in
    let usage = Usage.analyze nodes in
    let n = Array.length nodes in
    Cost.tick ctx.cost (n * (Cost.usage_per_node + Cost.strand_per_node));
    let modified = ctx.cfg.isa = Config.Modified in
    (* --- per-def facts --- *)
    let uses_left = Array.make n 0 in
    let home = Array.make n (-1) in (* GPR holding the value, -1 = none *)
    let def_acc = Array.make n (-1) in
    let def_slot = Array.make n (-1) in
    let def_reg = Array.make n (-1) in (* architected dest reg, -1 = temp *)
    let pei_between = Array.make n false in
    let is_temp_def = Array.make n false in
    Array.iteri
      (fun i d ->
        match d with
        | Some (di : Usage.def_info) -> uses_left.(i) <- List.length di.users
        | None -> ())
      usage.defs;
    Array.iteri
      (fun i (nd : Node.t) ->
        match nd.dst with
        | Dreg r -> def_reg.(i) <- r
        | Dtmp _ -> is_temp_def.(i) <- true
        | Dnone -> ())
      nodes;
    (* PEIs in (def, redef] decide whether a dying accumulator-only value
       must be copied out for trap recoverability *)
    let pei_pre = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      pei_pre.(i + 1) <- pei_pre.(i) + if Node.is_pei nodes.(i) then 1 else 0
    done;
    let redef = Array.make n (-1) in
    let cur = Array.make 32 (-1) in
    Array.iteri
      (fun i (nd : Node.t) ->
        match nd.dst with
        | Dreg r ->
          if cur.(r) >= 0 then redef.(cur.(r)) <- i;
          cur.(r) <- i
        | _ -> ())
      nodes;
    for i = 0 to n - 1 do
      pei_between.(i) <-
        (if redef.(i) < 0 then pei_pre.(n) - pei_pre.(i + 1) > 0
         else pei_pre.(redef.(i) + 1) - pei_pre.(i + 1) > 0)
    done;
    (* --- accumulator state --- *)
    let nacc = ctx.cfg.n_accs in
    let tip = Array.make nacc (-1) in
    let dirty = Array.make nacc (-1) in (* arch reg whose only copy is here *)
    let touch = Array.make nacc 0 in
    let strand_len = Array.make nacc 0 in
    let reg_dirty_acc = Array.make 32 (-1) in
    let clock = ref 0 in
    let scratch_next = ref 0 in
    let save_needed i =
      match usage.defs.(i) with Some di -> di.save_needed | None -> false
    in
    let acc_linked i =
      match usage.defs.(i) with Some di -> Usage.acc_linked di | None -> false
    in
    let clear_dirty a =
      if dirty.(a) >= 0 then begin
        reg_dirty_acc.(dirty.(a)) <- -1;
        dirty.(a) <- -1
      end
    in
    (* Set gopr on an already-emitted producing instruction (modified ISA
       spill: the architected write becomes an operational one). *)
    let set_gopr slot =
      let upgrade (d : I.dst) = { d with gopr = true } in
      let insn =
        match Tcache.Acc.get ctx.tc slot with
        | I.Alu r -> I.Alu { r with d = upgrade r.d }
        | I.Cmov_test r -> I.Cmov_test { r with d = upgrade r.d }
        | I.Cmov_sel r -> I.Cmov_sel { r with d = upgrade r.d }
        | I.Load r -> I.Load { r with d = upgrade r.d }
        | I.Copy_from_gpr r -> I.Copy_from_gpr { r with d = upgrade r.d }
        | I.Lta r -> I.Lta { r with d = upgrade r.d }
        | i -> i
      in
      Tcache.Acc.patch ctx.tc slot insn
    in
    (* Give def [d] a GPR home (demotion / spill). Returns the home GPR.
       Must be called while the value is still in its accumulator unless a
       home already exists. *)
    let materialize d =
      if home.(d) >= 0 then home.(d)
      else begin
        let g =
          if def_reg.(d) >= 0 then def_reg.(d)
          else begin
            (* decomposition temp: home in a VM scratch register *)
            let g = scratch_home_base + (!scratch_next mod n_scratch_homes) in
            incr scratch_next;
            g
          end
        in
        if modified && def_reg.(d) >= 0 then
          (* the architected write already exists; make it operational *)
          set_gopr def_slot.(d)
        else begin
          let a = def_acc.(d) in
          if a < 0 || tip.(a) <> d then
            raise (Translate_bug "materialize: value no longer in accumulator");
          ignore (emit ctx C_copy (I.Copy_to_gpr { g; a }));
          clear_dirty a
        end;
        home.(d) <- g;
        g
      end
    in
    (* Terminate the strand living in [a] (eviction or natural death),
       preserving recoverability and any pending readers. *)
    let free_acc a =
      let d = tip.(a) in
      if d >= 0 then begin
        if uses_left.(d) > 0 then begin
          ctx.n_spills <- ctx.n_spills + 1;
          ignore (materialize d)
        end
        else if dirty.(a) >= 0 && pei_between.(d) then begin
          (* copy-before-overwrite for precise traps (Section 2.2) *)
          ignore (emit ctx C_copy (I.Copy_to_gpr { g = dirty.(a); a }));
          home.(d) <- dirty.(a)
        end;
        clear_dirty a;
        tip.(a) <- -1
      end
    in
    let alloc_acc ~exclude =
      (* rotate over free accumulators (least-recently-touched first): with
         more logical accumulators, independent strands get distinct ids and
         can engage distinct PEs — the effect behind the paper's
         8-accumulator experiment *)
      let free = ref (-1) in
      for a = nacc - 1 downto 0 do
        if tip.(a) < 0 && (!free < 0 || touch.(a) < touch.(!free)) then free := a
      done;
      if !free >= 0 then !free
      else begin
        (* victim: least-recently-touched, preferring non-temp tips, never
           an accumulator involved in the current node *)
        let best = ref (-1) in
        let score a =
          (if is_temp_def.(tip.(a)) then 1_000_000_000 else 0) + touch.(a)
        in
        for a = nacc - 1 downto 0 do
          if not (List.mem a exclude) && (!best < 0 || score a < score !best)
          then best := a
        done;
        if !best < 0 then raise (Translate_bug "no allocatable accumulator");
        free_acc !best;
        !best
      end
    in
    (* Prepare accumulator [a] to be overwritten by a strand continuation:
       the old tip is consumed by the continuing instruction itself, but
       other pending readers or trap recoverability may need the value in a
       GPR first. [own_reads] is how many of the current node's sources read
       the old tip. *)
    let pre_overwrite a ~own_reads =
      let d = tip.(a) in
      if d >= 0 then begin
        if uses_left.(d) > own_reads then ignore (materialize d)
        else if dirty.(a) >= 0 && pei_between.(d) then begin
          ignore (emit ctx C_copy (I.Copy_to_gpr { g = dirty.(a); a }));
          home.(d) <- dirty.(a)
        end;
        clear_dirty a
      end
    in
    (* --- fragment bookkeeping --- *)
    let entry_slot = Tcache.Acc.n_slots ctx.tc in
    let frag = Tcache.Acc.install ctx.tc ~v_start:sb.start_pc ~entry_slot in
    Array.iter
      (fun d ->
        match d with
        | Some (di : Usage.def_info) ->
          frag.cat_count.(Tcache.cat_index di.category) <-
            frag.cat_count.(Tcache.cat_index di.category) + 1
        | None -> ())
      usage.defs;
    let v_insns = ref 0 in
    Array.iter
      (fun (e : Superblock.entry) ->
        if not (Superblock.is_nop e.insn) then begin
          incr v_insns;
          Hashtbl.replace ctx.unique_vpcs e.pc ()
        end)
      sb.entries;
    frag.v_insns <- !v_insns;
    frag.v_bytes <- 4 * !v_insns;
    Cost.(ctx.cost.translated_insns <- ctx.cost.translated_insns + !v_insns);
    dispatch_install mem ~v:sb.start_pc ~slot:entry_slot;
    (* prologue: embed the V-ISA base address (Section 2.2) *)
    ignore (emit ctx C_prologue (I.Set_vbase { vaddr = sb.start_pc }));
    (* V-ISA retirement credit, accumulated across straightened-away
       branches and attached to the next retiring instruction *)
    let pending_alpha = ref 0 in
    let take_alpha () =
      let a = !pending_alpha in
      pending_alpha := 0;
      a
    in
    (* --- exit emission helpers --- *)
    let new_exit v_target =
      let id = Vec.length ctx.exits in
      Vec.push ctx.exits (Exitr.R_branch v_target);
      id
    in
    let emit_cond_exit ?(cls = C_chain) cond v ~v_target =
      Cost.tick ctx.cost Cost.chain_per_exit;
      let alpha = take_alpha () in
      match Tcache.Acc.lookup ctx.tc v_target with
      | Some entry ->
        ignore (emit ~alpha ctx cls (I.Bc { cond; v; target = entry }))
      | None ->
        let exit_id = new_exit v_target in
        let slot = emit ~alpha ctx cls (I.Call_xlate_cond { cond; v; exit_id }) in
        Tcache.Acc.on_translate ctx.tc v_target (fun entry ->
            Tcache.Acc.patch ctx.tc slot (I.Bc { cond; v; target = entry }))
    in
    let emit_uncond_exit ?(cls = C_chain) ~v_target () =
      Cost.tick ctx.cost Cost.chain_per_exit;
      let alpha = take_alpha () in
      match Tcache.Acc.lookup ctx.tc v_target with
      | Some entry -> ignore (emit ~alpha ctx cls (I.Br { target = entry }))
      | None ->
        let exit_id = new_exit v_target in
        let slot = emit ~alpha ctx cls (I.Call_xlate { exit_id }) in
        Tcache.Acc.on_translate ctx.tc v_target (fun entry ->
            Tcache.Acc.patch ctx.tc slot (I.Br { target = entry }))
    in
    (* move an arbitrary operand into the dispatch argument register *)
    let move_to_vr0 (v : I.src) =
      match v with
      | Sacc a -> ignore (emit ctx C_chain (I.Copy_to_gpr { g = vr_arg; a }))
      | Sgpr g when g = vr_arg -> ()
      | Sgpr g ->
        let a = alloc_acc ~exclude:[] in
        ignore (emit ~strand_start:true ctx C_chain (I.Copy_from_gpr { d = dacc a; g }));
        ignore (emit ctx C_chain (I.Copy_to_gpr { g = vr_arg; a }))
      | Simm value ->
        let a = alloc_acc ~exclude:[] in
        ignore (emit ~strand_start:true ctx C_chain (I.Lta { d = dacc a; value }));
        ignore (emit ctx C_chain (I.Copy_to_gpr { g = vr_arg; a }))
    in
    let emit_dispatch_jump v =
      move_to_vr0 v;
      ignore (emit ~alpha:(take_alpha ()) ctx C_chain (I.Br { target = ctx.dispatch_slot }))
    in
    (* software target prediction: 3-instruction compare-and-branch using
       load-embedded-target-address, then dispatch on mismatch *)
    let emit_sw_pred v ~v_pred =
      Cost.tick ctx.cost Cost.chain_per_exit;
      let vg =
        match v with
        | I.Sgpr g -> g
        | I.Sacc a ->
          ignore (emit ctx C_chain (I.Copy_to_gpr { g = vr_arg; a }));
          vr_arg
        | I.Simm _ -> raise (Translate_bug "indirect jump on immediate")
      in
      let a = alloc_acc ~exclude:[] in
      ignore
        (emit ~strand_start:true ctx C_chain
           (I.Lta { d = dacc a; value = Int64.of_int v_pred }));
      ignore
        (emit ctx C_chain (I.Alu { op = Xor; d = dacc a; a = Sacc a; b = Sgpr vg }));
      emit_cond_exit Eq (I.Sacc a) ~v_target:v_pred;
      emit_dispatch_jump (I.Sgpr vg)
    in
    (* --- destination construction --- *)
    let mk_dst i acc =
      if modified && def_reg.(i) >= 0 then
        {
          I.dacc = acc;
          gdst = Some def_reg.(i);
          gopr =
            (match usage.defs.(i) with
            | Some di -> Usage.needs_operational di
            | None -> false);
        }
      else dacc acc
    in
    (* after emitting a producing node: state maintenance *)
    let finish_def i acc ~fresh slot =
      def_slot.(i) <- slot;
      tip.(acc) <- i;
      def_acc.(i) <- acc;
      incr clock;
      touch.(acc) <- !clock;
      strand_len.(acc) <- (if fresh then 1 else strand_len.(acc) + 1);
      let r = def_reg.(i) in
      if r >= 0 then begin
        (* this def supersedes the previous value of r *)
        if reg_dirty_acc.(r) >= 0 then clear_dirty reg_dirty_acc.(r);
        if modified then home.(i) <- r
        else if save_needed i then begin
          ignore (emit ctx C_copy (I.Copy_to_gpr { g = r; a = acc }));
          home.(i) <- r
        end
        else begin
          dirty.(acc) <- r;
          reg_dirty_acc.(r) <- acc
        end
      end;
      if uses_left.(i) = 0 then free_acc acc
    in
    (* record a PEI-table entry for the instruction at [slot] *)
    let add_pei slot v_pc =
      let map = ref [] in
      for a = 0 to nacc - 1 do
        if dirty.(a) >= 0 then map := (a, dirty.(a)) :: !map
      done;
      Tcache.Acc.add_pei ctx.tc slot
        { Tcache.pei_v_pc = v_pc; acc_map = Array.of_list !map }
    in
    (* --- operand resolution --- *)
    let resolve i k (v : Node.value) : I.src * int option =
      let of_def d =
        if acc_linked d && def_acc.(d) >= 0 && tip.(def_acc.(d)) = d then
          (I.Sacc def_acc.(d), Some d)
        else (I.Sgpr (materialize d), Some d)
      in
      match v with
      | Vimm x -> (I.Simm x, None)
      | Vreg r -> (
        match usage.src_defs.(i).(k) with
        | None -> (I.Sgpr r, None) (* live-in global *)
        | Some d -> of_def d)
      | Vtmp _ -> (
        match usage.src_defs.(i).(k) with
        | Some d -> of_def d
        | None -> raise (Translate_bug "unresolved temp"))
    in
    (* consumption after the instruction is emitted; [keep] is the
       accumulator taken over by the node's own output, never freed here *)
    let consume ~keep ops =
      Array.iter
        (fun (_, d_opt) ->
          match d_opt with
          | None -> ()
          | Some d ->
            uses_left.(d) <- uses_left.(d) - 1;
            if
              uses_left.(d) = 0 && def_acc.(d) >= 0
              && tip.(def_acc.(d)) = d
              && def_acc.(d) <> keep
            then free_acc def_acc.(d))
        ops
    in
    (* Strand choice among resolved operands (paper Section 3.3): at most
       one source keeps its accumulator; with two distinct strands the
       heuristic keeps the temp producer's, else the longer one, and the
       other value is demoted to a spill global. *)
    let plan_strand (ops : (I.src * int option) array) =
      let acc_ops =
        Array.to_list ops
        |> List.filter_map (fun (s, d) ->
               match (s, d) with I.Sacc a, Some d -> Some (a, d) | _ -> None)
      in
      let distinct = List.sort_uniq compare (List.map fst acc_ops) in
      match distinct with
      | [] -> (ops, None)
      | [ a ] -> (ops, Some a)
      | a1 :: a2 :: _ ->
        let d1 = tip.(a1) and d2 = tip.(a2) in
        let keep, demote =
          if is_temp_def.(d1) && not (is_temp_def.(d2)) then (a1, d2)
          else if is_temp_def.(d2) && not (is_temp_def.(d1)) then (a2, d1)
          else if strand_len.(a1) >= strand_len.(a2) then (a1, d2)
          else (a2, d1)
        in
        let g = materialize demote in
        let ops' =
          Array.map
            (fun (s, d) ->
              match (s, d) with
              | I.Sacc a, Some dd when dd = demote && a <> keep -> (I.Sgpr g, d)
              | o -> o)
            ops
        in
        (ops', Some keep)
    in
    (* Basic-ISA GPR-destination form (Section 2.1, "one GPR, either as a
       source or a destination"): a value with no accumulator-linked
       consumers whose sources name no GPR writes its architected register
       directly — no accumulator, no copy. *)
    let gpr_dest_ok i (ops : (I.src * int option) array) =
      (not modified) && def_reg.(i) >= 0 && save_needed i
      && (not (acc_linked i && uses_left.(i) > 0))
      && not
           (Array.exists
              (fun (s, _) -> match s with I.Sgpr _ -> true | _ -> false)
              ops)
    in
    (* For producing nodes: pick the output accumulator, inserting a
       copy-from-GPR split when the node would otherwise name two GPRs.
       [cont] comes from a prior {!plan_strand} pass over [ops]. *)
    let assign_output i (ops : (I.src * int option) array) cont =
      ignore i;
      match cont with
      | Some a ->
        let own_reads =
          Array.to_list ops
          |> List.filter (fun (s, d) ->
                 match (s, d) with
                 | I.Sacc a', Some d -> a' = a && d = tip.(a)
                 | _ -> false)
          |> List.length
        in
        pre_overwrite a ~own_reads;
        (ops, a, false)
      | None ->
        let gpr_idxs =
          Array.to_list (Array.mapi (fun k (s, _) -> (k, s)) ops)
          |> List.filter_map (fun (k, s) ->
                 match s with I.Sgpr _ -> Some k | _ -> None)
        in
        let acc = alloc_acc ~exclude:[] in
        (match gpr_idxs with
        | k1 :: _ :: _ ->
          (* two globals: break the first out with a copy-from-GPR that
             initiates the strand *)
          ctx.n_splits <- ctx.n_splits + 1;
          let g = match fst ops.(k1) with I.Sgpr g -> g | _ -> assert false in
          ignore
            (emit ~strand_start:true ctx C_copy (I.Copy_from_gpr { d = dacc acc; g }));
          ops.(k1) <- (I.Sacc acc, snd ops.(k1))
        | _ -> ());
        (ops, acc, true)
    in
    (* --- main scan --- *)
    let last = n - 1 in
    let v_continue = sb.entries.(Array.length sb.entries - 1).next_pc in
    let block_done = ref false in
    Array.iteri
      (fun i (nd : Node.t) ->
        if not !block_done then begin
          if nd.last_of_insn then incr pending_alpha;
          let ops () = Array.mapi (fun k v -> resolve i k v) nd.srcs in
          let producing ?(pei = false) mk =
            let ops, cont = plan_strand (ops ()) in
            (* the value this node's destination register held stops being
               architecturally current HERE: clear its dirty status before
               [consume] can emit a (now stale) copy-before-overwrite *)
            let clear_redefined () =
              let r = def_reg.(i) in
              if r >= 0 && reg_dirty_acc.(r) >= 0 then
                clear_dirty reg_dirty_acc.(r)
            in
            if gpr_dest_ok i ops then begin
              (* GPR-destination form: terminate without an accumulator *)
              let r = def_reg.(i) in
              let d = { I.dacc = -1; gdst = Some r; gopr = false } in
              let slot = emit ~alpha:(take_alpha ()) ctx C_core (mk ops d) in
              if pei then add_pei slot nd.v_pc;
              clear_redefined ();
              consume ~keep:(-1) ops;
              def_slot.(i) <- slot;
              home.(i) <- r
            end
            else begin
              let ops, acc, fresh = assign_output i ops cont in
              let slot =
                emit ~strand_start:fresh ~alpha:(take_alpha ()) ctx C_core
                  (mk ops (mk_dst i acc))
              in
              if pei then add_pei slot nd.v_pc;
              clear_redefined ();
              consume ~keep:acc ops;
              finish_def i acc ~fresh slot
            end
          in
          match nd.kind with
          | K_op op ->
            producing (fun ops d ->
                I.Alu { op; d; a = fst ops.(0); b = fst ops.(1) })
          | K_cmov_test cond ->
            producing (fun ops d ->
                I.Cmov_test { cond; d; cv = fst ops.(0); old = fst ops.(1) })
          | K_cmov_sel ->
            producing (fun ops d ->
                match fst ops.(0) with
                | I.Sacc _ -> I.Cmov_sel { d; p = fst ops.(0); nv = fst ops.(1) }
                | _ -> raise (Translate_bug "cmov predicate left its accumulator"))
          | K_load (width, signed, disp) ->
            producing ~pei:true (fun ops d ->
                I.Load { width; signed; d; base = fst ops.(0); disp })
          | K_store (width, disp) ->
            let ops, _ = plan_strand (ops ()) in
            (* a store may still name two GPRs: split the value side *)
            let value =
              match (fst ops.(0), fst ops.(1)) with
              | I.Sgpr g1, I.Sgpr _ ->
                ctx.n_splits <- ctx.n_splits + 1;
                let a = alloc_acc ~exclude:[] in
                ignore
                  (emit ~strand_start:true ctx C_copy
                     (I.Copy_from_gpr { d = dacc a; g = g1 }));
                I.Sacc a
              | v, _ -> v
            in
            let slot =
              emit ~alpha:(take_alpha ()) ctx C_core
                (I.Store { width; value; base = fst ops.(1); disp })
            in
            add_pei slot nd.v_pc;
            consume ~keep:(-1) ops
          | K_pal _ ->
            let exit_id = Vec.length ctx.exits in
            Vec.push ctx.exits (Exitr.R_pal nd.v_pc);
            (* the PAL instruction itself retires in the interpreter on
               reentry, not here: leave its own credit (always pending at
               this point) out of the slot so it is not counted twice *)
            let slot =
              emit ~alpha:(take_alpha () - 1) ctx C_core (I.Call_xlate { exit_id })
            in
            add_pei slot nd.v_pc;
            block_done := true
          | K_br bk -> (
            match bk with
            | B_cond { cond; taken; v_taken; v_fall; ends } ->
              let ops = ops () in
              let v = fst ops.(0) in
              if ends then begin
                emit_cond_exit ~cls:C_core cond v ~v_target:v_taken;
                consume ~keep:(-1) ops;
                emit_uncond_exit ~v_target:v_fall ();
                block_done := true
              end
              else begin
                let cond, v_target =
                  if taken then
                    (* reverse so the hot path falls through *)
                    ( (match cond with
                      | Alpha.Insn.Eq -> Alpha.Insn.Ne
                      | Ne -> Eq | Lt -> Ge | Ge -> Lt
                      | Le -> Gt | Gt -> Le | Lbc -> Lbs | Lbs -> Lbc),
                      v_fall )
                  else (cond, v_taken)
                in
                emit_cond_exit ~cls:C_core cond v ~v_target;
                consume ~keep:(-1) ops
              end
            | B_uncond { v_target } ->
              (* straightened away unless it ends the block; its retirement
                 credit stays in [pending_alpha] *)
              if i = last then begin
                emit_uncond_exit ~cls:C_core ~v_target ();
                block_done := true
              end
            | B_call { v_target; v_ret; ret_reg } ->
              let slot =
                emit ~alpha:(take_alpha ()) ctx C_core
                  (I.Push_dras { g = ret_reg; v_ret; i_ret = -1 })
              in
              Tcache.Acc.on_translate ctx.tc v_ret (fun entry ->
                  Tcache.Acc.patch ctx.tc slot
                    (I.Push_dras { g = ret_reg; v_ret; i_ret = entry }));
              home.(i) <- ret_reg;
              def_slot.(i) <- slot;
              if reg_dirty_acc.(ret_reg) >= 0 then clear_dirty reg_dirty_acc.(ret_reg);
              if i = last then begin
                emit_uncond_exit ~v_target ();
                block_done := true
              end
            | B_jmp { v_ret; v_actual } ->
              let ops = ops () in
              let v = fst ops.(0) in
              (match v_ret with
              | Some (vr, ret_reg) ->
                let slot =
                  emit ~alpha:(take_alpha ()) ctx C_core
                    (I.Push_dras { g = ret_reg; v_ret = vr; i_ret = -1 })
                in
                home.(i) <- ret_reg;
                def_slot.(i) <- slot;
                if reg_dirty_acc.(ret_reg) >= 0 then
                  clear_dirty reg_dirty_acc.(ret_reg);
                Tcache.Acc.on_translate ctx.tc vr (fun entry ->
                    Tcache.Acc.patch ctx.tc slot
                      (I.Push_dras { g = ret_reg; v_ret = vr; i_ret = entry }))
              | None -> ());
              consume ~keep:(-1) ops;
              (match ctx.cfg.chaining with
              | Config.No_pred -> emit_dispatch_jump v
              | Config.Sw_pred_no_ras | Config.Sw_pred_ras ->
                emit_sw_pred v ~v_pred:v_actual);
              block_done := true
            | B_ret { v_actual } ->
              let ops = ops () in
              let v = fst ops.(0) in
              consume ~keep:(-1) ops;
              (match ctx.cfg.chaining with
              | Config.No_pred -> emit_dispatch_jump v
              | Config.Sw_pred_no_ras -> emit_sw_pred v ~v_pred:v_actual
              | Config.Sw_pred_ras ->
                ignore (emit ~alpha:(take_alpha ()) ctx C_core (I.Ret_dras { v }));
                emit_dispatch_jump v);
              block_done := true)
        end)
      nodes;
    if not !block_done then emit_uncond_exit ~v_target:v_continue ();
    Tcache.Acc.seal ctx.tc frag;
    annotate_frag ctx frag;
    Obs.bump c_emitted frag.n_slots;
    Cost.tick ctx.cost (frag.n_slots * Cost.install_per_insn)
  end
