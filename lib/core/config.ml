(* DBT system configuration (paper Section 4.1 defaults). *)

(* Target instruction-set format, paper Sections 2.1 and 2.3. *)
type isa = Basic | Modified

(* Fragment chaining implementation, paper Section 4.3:
   - [No_pred]: every register-indirect transfer goes through the shared
     dispatch code;
   - [Sw_pred_no_ras]: translation-time software target prediction
     (compare-and-branch) for all indirect transfers including returns;
   - [Sw_pred_ras]: software prediction for indirect jumps plus the
     dual-address hardware RAS for returns (the paper's baseline). *)
type chaining = No_pred | Sw_pred_no_ras | Sw_pred_ras

(* Translated-code execution engine:
   - [Threaded]: direct-threaded code — every cache slot is compiled into a
     specialized closure at first use and [run] is a tight trampoline. No
     per-instruction events, so it is the functional-mode (sink-less) path;
   - [Matched]: the instrumented variant-match engine. Attaching a timing
     sink always selects it regardless of this field, since only it emits
     per-instruction events; forcing it here gives a sink-free baseline for
     throughput comparisons.
   - [Region]: the threaded engine plus a second compilation tier: once a
     fragment's [exec_count] crosses [region_threshold], its static chain
     graph (Br/Bc successors, including patched chain branches) is
     collapsed into one region executed with direct intra-region block
     transfers — no trampoline between slots, retirement/fuel/by_class
     charged in bulk per block from precomputed tallies. Observationally
     identical to [Threaded]; attaching a sink still selects [Matched]. *)
type engine = Threaded | Matched | Region

type t = {
  isa : isa;
  chaining : chaining;
  hot_threshold : int; (* interpretations before a candidate becomes hot *)
  max_superblock : int; (* maximum V-ISA instructions per superblock *)
  n_accs : int; (* logical accumulators *)
  stop_at_translated : bool;
  (* end superblock formation on reaching an existing fragment entry
     (Dynamo-style linking: less tail duplication, shorter fragments).
     The paper's ending conditions do not include this; default off. *)
  fuse_mem : bool;
  (* keep the displacement inside I-ISA memory instructions instead of
     splitting address computation into a separate instruction — the
     expansion-reducing option the paper discusses in Section 4.5
     ("this puts more pressure on decoding hardware but reduces pressure
     on fetch and reorder buffer mechanisms"). Default off (Section 2.1's
     addressing modes perform no computation). *)
  engine : engine;
  (* execution engine for sink-less translated execution; see {!engine} *)
  region_threshold : int;
  (* fragment-entry count that promotes a fragment's chain graph to a
     region (engine = Region only) *)
  region_max_slots : int;
  (* upper bound on total cache slots gathered into one region *)
  superops : bool;
  (* third compilation tier (engine = Region only): when a region is
     promoted, fuse each basic block's slot chain into one specialized
     closure — no per-slot indirect calls — applying profile-mined idiom
     templates (see {!Superop}). Observationally identical to the
     unfused region tier; default on. *)
  tcache_max_slots : int;
  (* translation-cache capacity in I-ISA slots. When a translation pushes
     the cache past this bound the VM flushes everything Dynamo-style
     (fragments, regions, fused blocks, chain patches, RAS) and rebuilds
     from the interpreter — the real-VM policy an unbounded cache never
     exercises. Default [max_int]: effectively unbounded, the historical
     behaviour. *)
}

let default =
  {
    isa = Modified;
    chaining = Sw_pred_ras;
    hot_threshold = 50;
    max_superblock = 200;
    n_accs = 4;
    stop_at_translated = false;
    fuse_mem = false;
    engine = Threaded;
    region_threshold = 100;
    region_max_slots = 1024;
    superops = true;
    tcache_max_slots = max_int;
  }

(* Process-wide telemetry switch (an alias of [Obs.enabled], so flipping
   either name flips both). Off by default: every instrumentation point in
   the VM, the translators, the caches and the engines degrades to one
   load-and-branch, and all simulation output is byte-identical to an
   uninstrumented build. *)
let telemetry : bool ref = Obs.enabled

let isa_name = function Basic -> "basic" | Modified -> "modified"

let engine_name = function
  | Threaded -> "threaded"
  | Matched -> "matched"
  | Region -> "region"

let chaining_name = function
  | No_pred -> "no_pred"
  | Sw_pred_no_ras -> "sw_pred.no_ras"
  | Sw_pred_ras -> "sw_pred.ras"

(* Snapshot fingerprint (lib/persist): every configuration field that
   changes what the translator emits or how translated code executes must
   appear here, so that a persisted translation cache can never be loaded
   under a configuration it was not produced by. [backend] is the VM kind
   ("acc"/"straight"), [image_digest] identifies the workload image. *)
let fingerprint cfg ~backend ~image_digest : Persist.Snapshot.fingerprint =
  {
    fp_backend = backend;
    fp_isa = isa_name cfg.isa;
    fp_chaining = chaining_name cfg.chaining;
    fp_engine = engine_name cfg.engine;
    fp_n_accs = cfg.n_accs;
    fp_hot_threshold = cfg.hot_threshold;
    fp_max_superblock = cfg.max_superblock;
    fp_stop_at_translated = cfg.stop_at_translated;
    fp_fuse_mem = cfg.fuse_mem;
    fp_region_threshold = cfg.region_threshold;
    fp_region_max_slots = cfg.region_max_slots;
    fp_superops = cfg.superops;
    fp_tcache_max_slots = cfg.tcache_max_slots;
    fp_image_digest = image_digest;
  }
