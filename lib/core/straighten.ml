module Vec = Machine.Vec
module Memory = Machine.Memory
module A = Alpha.Insn

(* Code-straightening-only translator: Alpha -> straightened Alpha.

   The paper's third DBT/simulator (Section 4.1): superblocks are formed
   exactly as for the accumulator ISAs, but instructions are emitted
   near-verbatim — only branches are retargeted/reversed, NOPs and
   straightened-away unconditional branches are dropped, and chaining code
   is added. This isolates the effect of code straightening plus fragment
   chaining from the accumulator-ISA effects (Figs. 4-6).

   Register discipline: translated chaining code borrows AT (r28) and GP
   (r29), which the OSF Alpha ABI reserves for the assembler and the global
   pointer; guest workloads in this repository never hold live values there
   (checked at translation time). GP carries the dynamic target V-address
   into the shared dispatch code.

   Control-flow convention inside the translation cache: branch fields of
   Bc/Br and the register value consumed by Jump hold *absolute slot
   indices*, not byte displacements (see {!Exec_straight}). *)

let at = Alpha.Reg.at (* chain scratch *)
let gp = Alpha.Reg.gp (* dispatch argument: target V-address *)

type ctx = {
  cfg : Config.t;
  tc : Tcache.Straight.t;
  exits : Exitr.reason Vec.t;
  cost : Cost.t;
  slot_alpha : int Vec.t;
  slot_class : int Vec.t; (* Translate.slot_class ids *)
  slot_cyc_ooo : int Vec.t; (* static cycle cost per slot, Ooo model *)
  slot_cyc_ildp : int Vec.t; (* static cycle cost per slot, Ildp model *)
  annotate : Translate.annotator option;
  unique_vpcs : (int, unit) Hashtbl.t;
  mutable dispatch_slot : int;
  mutable n_chain : int;
}

let emit ?(alpha = 0) ctx cls insn =
  Cost.tick ctx.cost Cost.emit_per_insn;
  (match cls with Translate.C_chain -> ctx.n_chain <- ctx.n_chain + 1 | _ -> ());
  let slot = Tcache.Straight.push ctx.tc insn in
  Vec.push ctx.slot_alpha alpha;
  Vec.push ctx.slot_class (Translate.class_id cls);
  Vec.push ctx.slot_cyc_ooo 0;
  Vec.push ctx.slot_cyc_ildp 0;
  slot

let hi_lo v =
  let v64 = Int64.of_int v in
  let lo = Int64.shift_right (Int64.shift_left (Int64.logand v64 0xffffL) 48) 48 in
  let hi = Int64.shift_right (Int64.sub v64 lo) 16 in
  (Int64.to_int hi, Int64.to_int lo)

(* Shared Alpha dispatch: two-probe lookup of the same in-memory table as
   the accumulator backend (Translate.table_base). Spills V0/T0 to the VM
   scratch page to gain working registers — the realistic cost a DBT on a
   conventional ISA pays (cf. the 15-instruction lookup of [6]). *)
let emit_dispatch ctx =
  let e insn = emit ctx Translate.C_chain insn in
  let sc_hi, sc_lo = hi_lo Alpha.Program.vm_scratch in
  let tb_hi, tb_lo = hi_lo Translate.table_base in
  let first = Tcache.Straight.n_slots ctx.tc in
  let keep_bits = 64 - Translate.table_bits in
  let v0 = 0 and t0 = 1 in
  let probe ~offset ~miss_placeholder =
    (* tag compare at table offset; on hit jump; returns slot of the miss
       branch to patch *)
    ignore (e (A.Mem (Ldq, t0, offset, v0)));
    ignore (e (A.Opr (Cmpeq, t0, Rb gp, t0)));
    let miss = e (A.Bc (Eq, t0, miss_placeholder)) in
    ignore (e (A.Mem (Ldq, gp, offset + 8, v0)));
    ignore (e (A.Mem (Ldah, at, sc_hi, 31)));
    ignore (e (A.Mem (Ldq, v0, sc_lo, at)));
    ignore (e (A.Mem (Ldq, t0, sc_lo + 8, at)));
    ignore (e (A.Jump (Jmp, 31, gp)));
    miss
  in
  (* prologue: spill v0/t0, hash, entry address *)
  ignore (e (A.Mem (Ldah, at, sc_hi, 31)));
  ignore (e (A.Mem (Stq, v0, sc_lo, at)));
  ignore (e (A.Mem (Stq, t0, sc_lo + 8, at)));
  ignore (e (A.Opr (Srl, gp, Imm 2, v0)));
  ignore (e (A.Opr (Sll, v0, Imm keep_bits, v0)));
  ignore (e (A.Opr (Srl, v0, Imm keep_bits, v0)));
  ignore (e (A.Opr (Sll, v0, Imm 4, v0)));
  ignore (e (A.Mem (Ldah, t0, tb_hi, 31)));
  (match tb_lo with
  | 0 -> ignore (e (A.Opr (Addq, v0, Rb t0, v0)))
  | _ ->
    ignore (e (A.Mem (Lda, t0, tb_lo, t0)));
    ignore (e (A.Opr (Addq, v0, Rb t0, v0))));
  let m0 = probe ~offset:0 ~miss_placeholder:0 in
  let p1 = Tcache.Straight.n_slots ctx.tc in
  Tcache.Straight.patch ctx.tc m0 (A.Bc (Eq, t0, p1));
  let m1 = probe ~offset:16 ~miss_placeholder:0 in
  let miss = Tcache.Straight.n_slots ctx.tc in
  Tcache.Straight.patch ctx.tc m1 (A.Bc (Eq, t0, miss));
  (* miss: restore and exit to the VM (dynamic target still in GP) *)
  ignore (e (A.Mem (Ldah, at, sc_hi, 31)));
  ignore (e (A.Mem (Ldq, v0, sc_lo, at)));
  ignore (e (A.Mem (Ldq, t0, sc_lo + 8, at)));
  let exit_id = Vec.length ctx.exits in
  Vec.push ctx.exits Exitr.R_dispatch_miss;
  ignore (e (A.Call_xlate exit_id));
  ctx.dispatch_slot <- first

let create ?annotate cfg =
  let ctx =
    {
      cfg;
      tc = Tcache.Straight.create ();
      exits = Vec.create ~dummy:Exitr.R_dispatch_miss;
      cost = Cost.create ();
      slot_alpha = Vec.create ~dummy:0;
      slot_class = Vec.create ~dummy:0;
      slot_cyc_ooo = Vec.create ~dummy:0;
      slot_cyc_ildp = Vec.create ~dummy:0;
      annotate;
      unique_vpcs = Hashtbl.create 1024;
      dispatch_slot = 0;
      n_chain = 0;
    }
  in
  emit_dispatch ctx;
  ctx

(* Flush the straightened-code cache (cf. Translate.flush). *)
let flush ctx mem =
  Tcache.Straight.clear ctx.tc;
  Vec.clear ctx.exits;
  Vec.clear ctx.slot_alpha;
  Vec.clear ctx.slot_class;
  Vec.clear ctx.slot_cyc_ooo;
  Vec.clear ctx.slot_cyc_ildp;
  Memory.fill_zero mem ~addr:Translate.table_base ~len:Translate.table_bytes;
  emit_dispatch ctx

(* Price a sealed fragment under both timing models (fast-forward tier;
   cf. Translate.annotate_frag): straight-line replay, branches not-taken,
   loads at a constant address. *)
let annotate_frag ctx (frag : Tcache.frag) =
  match ctx.annotate with
  | None -> ()
  | Some annotate ->
    let evs =
      Array.init frag.n_slots (fun k ->
          let s = frag.entry_slot + k in
          let insn = Tcache.Straight.get ctx.tc s in
          let pc = Tcache.Straight.addr_of ctx.tc s in
          Alpha.Trace.ev_of_exec
            ~alpha_count:(Vec.get ctx.slot_alpha s)
            ~pc ~insn ~taken:false ~target:(pc + 4) ~ea:0 ())
    in
    let ooo, ildp = annotate evs in
    for k = 0 to frag.n_slots - 1 do
      Vec.set ctx.slot_cyc_ooo (frag.entry_slot + k) ooo.(k);
      Vec.set ctx.slot_cyc_ildp (frag.entry_slot + k) ildp.(k)
    done

exception Reserved_register of int

(* Guest code must not hold live values in the VM's borrowed registers. *)
let check_regs (insn : A.t) =
  let bad r = r = at || r = gp in
  if List.exists bad (A.srcs insn) then raise (Reserved_register at);
  match A.dest insn with Some r when bad r -> raise (Reserved_register r) | _ -> ()

let c_superblocks = Obs.counter "translate.straight.superblocks"
let c_emitted = Obs.counter "translate.straight.emitted_slots"

let translate ctx mem (sb : Superblock.t) =
  if Array.length sb.entries = 0 then ()
  else begin
    Obs.bump c_superblocks 1;
    let entries = sb.entries in
    let n = Array.length entries in
    Cost.tick ctx.cost (n * Cost.usage_per_node);
    let entry_slot = Tcache.Straight.n_slots ctx.tc in
    let frag = Tcache.Straight.install ctx.tc ~v_start:sb.start_pc ~entry_slot in
    let v_insns = ref 0 in
    Array.iter
      (fun (e : Superblock.entry) ->
        if not (Superblock.is_nop e.insn) then begin
          incr v_insns;
          Hashtbl.replace ctx.unique_vpcs e.pc ()
        end)
      entries;
    frag.v_insns <- !v_insns;
    frag.v_bytes <- 4 * !v_insns;
    Cost.(ctx.cost.translated_insns <- ctx.cost.translated_insns + !v_insns);
    Translate.dispatch_install mem ~v:sb.start_pc ~slot:entry_slot;
    ignore (emit ctx Translate.C_prologue (A.Set_vbase sb.start_pc));
    let pending_alpha = ref 0 in
    let take_alpha () =
      let a = !pending_alpha in
      pending_alpha := 0;
      a
    in
    let new_exit v_target =
      let id = Vec.length ctx.exits in
      Vec.push ctx.exits (Exitr.R_branch v_target);
      id
    in
    let emit_cond_exit ?(cls = Translate.C_core) cond ra ~v_target =
      Cost.tick ctx.cost Cost.chain_per_exit;
      let alpha = take_alpha () in
      match Tcache.Straight.lookup ctx.tc v_target with
      | Some entry -> ignore (emit ~alpha ctx cls (A.Bc (cond, ra, entry)))
      | None ->
        let exit_id = new_exit v_target in
        let slot = emit ~alpha ctx cls (A.Call_xlate_cond (cond, ra, exit_id)) in
        Tcache.Straight.on_translate ctx.tc v_target (fun entry ->
            Tcache.Straight.patch ctx.tc slot (A.Bc (cond, ra, entry)))
    in
    let emit_uncond_exit ?(cls = Translate.C_chain) ~v_target () =
      Cost.tick ctx.cost Cost.chain_per_exit;
      let alpha = take_alpha () in
      match Tcache.Straight.lookup ctx.tc v_target with
      | Some entry -> ignore (emit ~alpha ctx cls (A.Br (31, entry)))
      | None ->
        let exit_id = new_exit v_target in
        let slot = emit ~alpha ctx cls (A.Call_xlate exit_id) in
        Tcache.Straight.on_translate ctx.tc v_target (fun entry ->
            Tcache.Straight.patch ctx.tc slot (A.Br (31, entry)))
    in
    let emit_dispatch_jump rb =
      ignore (emit ctx Translate.C_chain (A.Opr (Bis, rb, Rb rb, gp)));
      ignore
        (emit ~alpha:(take_alpha ()) ctx Translate.C_chain
           (A.Br (31, ctx.dispatch_slot)))
    in
    (* 6-instruction software target prediction (cf. [6]) *)
    let emit_sw_pred rb ~v_pred =
      Cost.tick ctx.cost Cost.chain_per_exit;
      let hi, lo = hi_lo v_pred in
      ignore (emit ctx Translate.C_chain (A.Mem (Ldah, at, hi, 31)));
      ignore (emit ctx Translate.C_chain (A.Mem (Lda, at, lo, at)));
      ignore (emit ctx Translate.C_chain (A.Opr (Cmpeq, at, Rb rb, at)));
      (* the jump's retirement credit must ride on the compare-and-branch
         slot, which executes on both paths — a prediction hit transfers
         straight to the chained entry and never reaches the dispatch jump
         below (cf. emit_sw_pred in Translate, which credits the Bc) *)
      let alpha = take_alpha () in
      (match Tcache.Straight.lookup ctx.tc v_pred with
      | Some entry ->
        ignore (emit ~alpha ctx Translate.C_chain (A.Bc (Ne, at, entry)))
      | None ->
        let exit_id = new_exit v_pred in
        let slot =
          emit ~alpha ctx Translate.C_chain (A.Call_xlate_cond (Ne, at, exit_id))
        in
        Tcache.Straight.on_translate ctx.tc v_pred (fun entry ->
            Tcache.Straight.patch ctx.tc slot (A.Bc (Ne, at, entry))));
      emit_dispatch_jump rb
    in
    let last = n - 1 in
    let v_continue = entries.(n - 1).next_pc in
    let block_done = ref false in
    Array.iteri
      (fun i (e : Superblock.entry) ->
        if not !block_done then begin
          if not (Superblock.is_nop e.insn) then incr pending_alpha;
          check_regs e.insn;
          match e.insn with
          | _ when Superblock.is_nop e.insn -> () (* NOPs dropped *)
          | Mem _ as insn ->
            let slot = emit ~alpha:(take_alpha ()) ctx Translate.C_core insn in
            if A.is_pei insn then
              Tcache.Straight.add_pei ctx.tc slot
                { Tcache.pei_v_pc = e.pc; acc_map = [||] }
          | Opr _ as insn ->
            ignore (emit ~alpha:(take_alpha ()) ctx Translate.C_core insn)
          | Bc (cond, ra, disp) ->
            let v_taken = e.pc + 4 + (4 * disp) and v_fall = e.pc + 4 in
            let ends = e.taken && e.next_pc <= e.pc in
            if ends then begin
              emit_cond_exit cond ra ~v_target:v_taken;
              emit_uncond_exit ~v_target:v_fall ();
              block_done := true
            end
            else if e.taken then begin
              let ncond : A.cond =
                match cond with
                | Eq -> Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt
                | Le -> Gt | Gt -> Le | Lbc -> Lbs | Lbs -> Lbc
              in
              emit_cond_exit ncond ra ~v_target:v_fall
            end
            else emit_cond_exit cond ra ~v_target:v_taken
          | Br (31, disp) ->
            (* straightened away unless it ends the block *)
            if i = last then begin
              emit_uncond_exit ~cls:Translate.C_core
                ~v_target:(e.pc + 4 + (4 * disp))
                ();
              block_done := true
            end
          | Br (ra, disp) | Bsr (ra, disp) ->
            let v_ret = e.pc + 4 in
            let slot =
              emit ~alpha:(take_alpha ()) ctx Translate.C_core
                (A.Push_dras (ra, v_ret, -1))
            in
            Tcache.Straight.on_translate ctx.tc v_ret (fun entry ->
                Tcache.Straight.patch ctx.tc slot (A.Push_dras (ra, v_ret, entry)));
            if i = last then begin
              emit_uncond_exit ~v_target:(e.pc + 4 + (4 * disp)) ();
              block_done := true
            end
          | Jump (kind, ra, rb) ->
            (if kind = Jsr || (kind <> Ret && ra <> 31) then begin
               let v_ret = e.pc + 4 in
               let slot =
                 emit ~alpha:(take_alpha ()) ctx Translate.C_core
                   (A.Push_dras (ra, v_ret, -1))
               in
               Tcache.Straight.on_translate ctx.tc v_ret (fun entry ->
                   Tcache.Straight.patch ctx.tc slot (A.Push_dras (ra, v_ret, entry)))
             end);
            (match (kind, ctx.cfg.chaining) with
            | Ret, Config.Sw_pred_ras ->
              ignore
                (emit ~alpha:(take_alpha ()) ctx Translate.C_core (A.Ret_dras rb));
              emit_dispatch_jump rb
            | _, Config.No_pred -> emit_dispatch_jump rb
            | _, (Config.Sw_pred_no_ras | Config.Sw_pred_ras) ->
              emit_sw_pred rb ~v_pred:e.next_pc);
            block_done := true
          | Call_pal _ ->
            let exit_id = Vec.length ctx.exits in
            Vec.push ctx.exits (Exitr.R_pal e.pc);
            (* the PAL instruction retires in the interpreter on reentry,
               not here — keep its own credit out of the exit slot *)
            ignore
              (emit ~alpha:(take_alpha () - 1) ctx Translate.C_core
                 (A.Call_xlate exit_id));
            block_done := true
          | Lta _ | Push_dras _ | Ret_dras _ | Call_xlate _ | Call_xlate_cond _
          | Set_vbase _ ->
            invalid_arg "straighten: VM instruction in V-ISA code"
        end)
      entries;
    if not !block_done then emit_uncond_exit ~v_target:v_continue ();
    Tcache.Straight.seal ctx.tc frag;
    annotate_frag ctx frag;
    Obs.bump c_emitted frag.n_slots;
    Cost.tick ctx.cost (frag.n_slots * Cost.install_per_insn)
  end
