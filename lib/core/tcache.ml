module Vec = Machine.Vec

(* Translation cache: translated code, fragment metadata, the PC-translation
   map, pending patch sites, and PEI tables (paper Sections 2.2, 3.1, 3.2).

   Parameterised over the target instruction type: the accumulator backends
   store {!Accisa.Insn.t}, the code-straightening-only backend stores
   {!Alpha.Insn.t}. Code lives in a flat slot array; control-flow targets in
   translated code are slot indices. The parallel [addr] array carries each
   slot's byte address in the I-address space (slots have different encoded
   sizes in the I-ISA), which is what the timing models' I-cache and BTB
   see.

   Patching ("a patch is performed", Section 3.2) is expressed as closures
   registered against an untranslated V-address: installing a fragment for
   that address runs the closures with the new entry slot, replacing
   call-translator instructions with direct branches and completing
   push-dual-RAS pairs. *)

type pei = {
  pei_v_pc : int; (* V-ISA address of the potentially-excepting insn *)
  acc_map : (int * int) array;
  (* accumulators holding the architecturally-current value of a register
     at this point: (accumulator, architected register) pairs *)
}

type frag = {
  id : int;
  entry_slot : int;
  v_start : int;
  mutable n_slots : int;
  mutable v_insns : int; (* V-ISA instructions covered (NOPs excluded) *)
  mutable v_bytes : int; (* static V-ISA bytes covered *)
  mutable i_bytes : int; (* static translated bytes *)
  mutable exec_count : int; (* times entered *)
  mutable region_state : int;
  (* region tier-up bookkeeping, owned by the execution engines and never
     persisted: 0 = slot-granular, 1 = promoted (a region closure is
     installed at [entry_slot]), 2 = promotion declined (too cold to
     retry, or the entry already sits inside another live region). Frag
     records are rebuilt on flush and restore, so the state dies with the
     generation it described. *)
  cat_count : int array; (* per-Usage.category static node counts *)
}

let n_categories = 7

(* Telemetry (shared by both backend instantiations; the accumulator and
   straightening caches aggregate into the same names — one VM only ever
   owns one kind). All sites are load-and-branch when telemetry is off. *)
let c_installs = Obs.counter "tcache.installs"
let c_flushes = Obs.counter "tcache.flushes"
let c_patches = Obs.counter "tcache.patches"
let c_lookup_hits = Obs.counter "tcache.lookup_hits"
let c_lookup_misses = Obs.counter "tcache.lookup_misses"
let c_slots_hw = Obs.max_gauge "tcache.slots_high_water"
let c_frags_hw = Obs.max_gauge "tcache.frags_high_water"

(* Top bound sized for 10-100x workload scales; the companion
   [tcache.frag_slots.saturated] counter reports any residual clipping. *)
let h_frag_slots =
  Obs.histogram "tcache.frag_slots"
    ~bounds:[| 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048 |]

let cat_index : Usage.category -> int = function
  | Temp -> 0
  | No_user -> 1
  | Local -> 2
  | No_user_global -> 3
  | Local_global -> 4
  | Comm_global -> 5
  | Liveout_global -> 6

module Make (C : sig
  type insn

  val bytes : insn -> int
  val dummy : insn
end) =
struct
  type t = {
    code : C.insn Vec.t;
    addr : int Vec.t; (* byte address of each slot *)
    strand_start : bool Vec.t; (* slot begins a new strand (ILDP steering) *)
    frags : frag Vec.t;
    entry_ix : int Vec.t;
    (* per-slot fragment id when the slot is a fragment entry, -1 otherwise:
       the O(1) entry map the execution engines probe on taken transfers *)
    mutable next_entry : int;
    (* fragment id to stamp on the next pushed slot ([install] always
       precedes the push of its entry slot), -1 when none is pending *)
    patch_log : int Vec.t; (* slots patched since the last [clear] *)
    mutable gen : int;
    (* generation, bumped by [clear]: compiled-code caches that shadow the
       slot array key their validity on it *)
    by_ventry : (int, int) Hashtbl.t; (* V-address -> entry slot *)
    peis : (int, pei) Hashtbl.t; (* slot -> PEI record *)
    pending : (int, (int -> unit) list) Hashtbl.t;
    (* V-address -> patch closures to run when it gets translated *)
    base : int; (* byte address of slot 0 *)
    mutable next_addr : int;
  }

  let create ?(base = 0x4000_0000) () =
    {
      code = Vec.create ~dummy:C.dummy;
      addr = Vec.create ~dummy:0;
      strand_start = Vec.create ~dummy:false;
      frags = Vec.create ~dummy:{
        id = -1; entry_slot = 0; v_start = 0; n_slots = 0; v_insns = 0;
        v_bytes = 0; i_bytes = 0; exec_count = 0; region_state = 0;
        cat_count = [||] };
      entry_ix = Vec.create ~dummy:(-1);
      next_entry = -1;
      patch_log = Vec.create ~dummy:0;
      gen = 0;
      by_ventry = Hashtbl.create 256;
      peis = Hashtbl.create 256;
      pending = Hashtbl.create 256;
      base;
      next_addr = base;
    }

  let n_slots t = Vec.length t.code
  let generation t = t.gen

  (* Append one instruction; returns its slot. *)
  let push ?(strand_start = false) t insn =
    let slot = Vec.length t.code in
    Vec.push t.code insn;
    Vec.push t.addr t.next_addr;
    Vec.push t.strand_start strand_start;
    Vec.push t.entry_ix t.next_entry;
    t.next_entry <- -1;
    t.next_addr <- t.next_addr + C.bytes insn;
    Obs.set_max c_slots_hw (slot + 1);
    slot

  let get t slot = Vec.get t.code slot
  let addr_of t slot = Vec.get t.addr slot
  let starts_strand t slot = Vec.get t.strand_start slot

  (* In-place patch. The byte layout is stable because every patch replaces
     an instruction with one of the same encoded size (checked). The patch
     log lets compiled-code caches recompile exactly the rewritten slots. *)
  let patch t slot insn =
    assert (C.bytes insn = C.bytes (Vec.get t.code slot));
    Vec.set t.code slot insn;
    Vec.push t.patch_log slot;
    Obs.bump c_patches 1

  let patch_count t = Vec.length t.patch_log
  let patched_slot t i = Vec.get t.patch_log i

  let lookup t v_addr =
    let r = Hashtbl.find_opt t.by_ventry v_addr in
    (match r with
    | Some _ -> Obs.bump c_lookup_hits 1
    | None -> Obs.bump c_lookup_misses 1);
    r

  let is_translated t v_addr = Hashtbl.mem t.by_ventry v_addr

  (* O(1), allocation-free entry probe: fragment id of [slot] when it is a
     fragment entry, -1 otherwise (including out-of-range slots). *)
  let frag_id_of_entry t slot =
    if slot >= 0 && slot < Vec.length t.entry_ix then Vec.get t.entry_ix slot
    else -1

  let frag_by_id t id = Vec.get t.frags id

  let frag_of_entry t entry_slot =
    let id = frag_id_of_entry t entry_slot in
    if id >= 0 then Some (Vec.get t.frags id) else None

  (* Register a patch closure to run when [v_addr] gets translated; runs
     immediately if it already is. *)
  let on_translate t v_addr f =
    match Hashtbl.find_opt t.by_ventry v_addr with
    | Some entry -> f entry
    | None ->
      let old = Option.value ~default:[] (Hashtbl.find_opt t.pending v_addr) in
      Hashtbl.replace t.pending v_addr (f :: old)

  let add_pei t slot pei = Hashtbl.replace t.peis slot pei
  let pei_at t slot = Hashtbl.find_opt t.peis slot

  (* Declare a new fragment entry: binds the V-address, creates metadata,
     and fires any pending patches against this address. *)
  let install t ~v_start ~entry_slot =
    (* the entry-index stamp below relies on the entry slot being the very
       next slot pushed — which is how both translators call us *)
    assert (entry_slot = Vec.length t.code);
    let f =
      {
        id = Vec.length t.frags;
        entry_slot;
        v_start;
        n_slots = 0;
        v_insns = 0;
        v_bytes = 0;
        i_bytes = 0;
        exec_count = 0;
        region_state = 0;
        cat_count = Array.make n_categories 0;
      }
    in
    Vec.push t.frags f;
    Obs.bump c_installs 1;
    Obs.set_max c_frags_hw (f.id + 1);
    Hashtbl.replace t.by_ventry v_start entry_slot;
    t.next_entry <- f.id;
    (match Hashtbl.find_opt t.pending v_start with
    | Some patches ->
      Hashtbl.remove t.pending v_start;
      List.iter (fun p -> p entry_slot) patches
    | None -> ());
    f

  (* Finish a fragment: record its slot extent and static sizes. *)
  let seal t (f : frag) =
    f.n_slots <- Vec.length t.code - f.entry_slot;
    let b = ref 0 in
    for s = f.entry_slot to Vec.length t.code - 1 do
      b := !b + C.bytes (Vec.get t.code s)
    done;
    f.i_bytes <- !b;
    Obs.observe h_frag_slots f.n_slots

  (* Flush: drop all fragments, code, patches and PEI tables (paper
     Section 4.1's Dynamo-style cache flush). The byte-address space
     restarts at [base]. *)
  let clear t =
    Obs.bump c_flushes 1;
    Vec.clear t.code;
    Vec.clear t.addr;
    Vec.clear t.strand_start;
    Vec.clear t.frags;
    Vec.clear t.entry_ix;
    (* [reset], not [clear]: the patch log fills during a generation and
       empties here, so retaining its high-water capacity across repeated
       flush cycles would leak the largest generation's allocation forever *)
    Vec.reset t.patch_log;
    t.next_entry <- -1;
    t.gen <- t.gen + 1;
    Hashtbl.reset t.by_ventry;
    Hashtbl.reset t.peis;
    Hashtbl.reset t.pending;
    t.next_addr <- t.base

  let patch_log_capacity t = Vec.capacity t.patch_log
  let pei_list t = Hashtbl.fold (fun slot p acc -> (slot, p) :: acc) t.peis []

  (* Reload the cache from snapshot contents (Persist subsystem). Like
     [clear] this starts a new generation — compiled-closure shadows key
     their validity on [gen] and must recompile from the restored slots —
     but it is not a flush: no flush telemetry, and the caller provides the
     complete replacement state. Slot byte addresses are recomputed from
     [base]; they are a deterministic function of the slot sequence, which
     is why the snapshot does not carry them. Pending patch closures are
     not restorable (they capture translator state); an unpatched
     call-translator slot safely exits to the VM, which re-registers the
     patch when the target translates again. *)
  let restore t ~code ~frags ~peis =
    Vec.clear t.code;
    Vec.clear t.addr;
    Vec.clear t.strand_start;
    Vec.clear t.frags;
    Vec.clear t.entry_ix;
    Vec.reset t.patch_log;
    t.next_entry <- -1;
    t.gen <- t.gen + 1;
    Hashtbl.reset t.by_ventry;
    Hashtbl.reset t.peis;
    Hashtbl.reset t.pending;
    t.next_addr <- t.base;
    Array.iter
      (fun (insn, strand_start) -> ignore (push ~strand_start t insn))
      code;
    Array.iter
      (fun (f : frag) ->
        assert (f.id = Vec.length t.frags);
        Vec.push t.frags f;
        Hashtbl.replace t.by_ventry f.v_start f.entry_slot;
        Vec.set t.entry_ix f.entry_slot f.id;
        Obs.set_max c_frags_hw (f.id + 1))
      frags;
    List.iter (fun (slot, p) -> Hashtbl.replace t.peis slot p) peis

  let fragments t = Vec.to_list t.frags

  (* Aggregate static translated bytes across all fragments. *)
  let total_i_bytes t =
    List.fold_left (fun acc f -> acc + f.i_bytes) 0 (fragments t)

  let total_v_bytes t =
    List.fold_left (fun acc f -> acc + f.v_bytes) 0 (fragments t)
end

module Acc = Make (struct
  type insn = Accisa.Insn.t

  let bytes = Accisa.Size.bytes
  let dummy = Accisa.Insn.Br { target = 0 }
end)

module Straight = Make (struct
  type insn = Alpha.Insn.t

  let bytes _ = 4
  let dummy = Alpha.Insn.Br (31, 0)
end)
