module Memory = Machine.Memory
module Vec = Machine.Vec
module A = Alpha.Insn

(* Functional execution engine for straightened-Alpha translated code.

   Shares the interpreter's architected register file and memory. Control
   convention inside the translation cache: Bc/Br immediate fields and the
   register consumed by Jump hold absolute slot indices (see
   {!Straighten}). *)

type stats = {
  mutable i_exec : int;
  by_class : int array;
  mutable alpha_retired : int;
  mutable frag_enters : int;
  mutable ret_dras_hits : int;
  mutable ret_dras_misses : int;
}

type t = {
  ctx : Straighten.ctx;
  interp : Alpha.Interp.t;
  dras : Machine.Dual_ras.t;
  mutable vbase : int;
  stats : stats;
}

type exit =
  | X_reason of Exitr.reason
  | X_trap_recovered
  | X_fuel

let create ctx interp =
  Translate.map_vm_memory interp.Alpha.Interp.mem;
  {
    ctx;
    interp;
    dras = Machine.Dual_ras.create ();
    vbase = 0;
    stats =
      {
        i_exec = 0;
        by_class = Array.make 4 0;
        alpha_retired = 0;
        frag_enters = 0;
        ret_dras_hits = 0;
        ret_dras_misses = 0;
      };
  }

(* Dynamic dispatch-miss target lives in GP by convention. *)
let dispatch_target t = Int64.to_int (Alpha.Interp.get t.interp Straighten.gp)

let addr_mask = 0x3fffffffffff

exception Unaligned_s of int

let run ?sink ?(fuel = max_int) t ~entry : exit =
  let tc = t.ctx.tc in
  let get r = Alpha.Interp.get t.interp r in
  let set r v = Alpha.Interp.set t.interp r v in
  let mem = t.interp.mem in
  let budget = ref fuel in
  (match Tcache.Straight.frag_of_entry tc entry with
  | Some f ->
    f.exec_count <- f.exec_count + 1;
    t.stats.frag_enters <- t.stats.frag_enters + 1
  | None -> ());
  let slot = ref entry in
  let result = ref None in
  while !result = None do
    let s = !slot in
    let insn = Tcache.Straight.get tc s in
    let alpha = Vec.get t.ctx.slot_alpha s in
    t.stats.i_exec <- t.stats.i_exec + 1;
    t.stats.by_class.(Vec.get t.ctx.slot_class s) <-
      t.stats.by_class.(Vec.get t.ctx.slot_class s) + 1;
    t.stats.alpha_retired <- t.stats.alpha_retired + alpha;
    budget := !budget - alpha;
    let next = ref (s + 1) in
    let taken = ref false in
    let ea = ref 0 in
    let dras_hit = ref false in
    (try
       (match insn with
       | A.Mem (Lda, ra, disp, rb) -> set ra (Int64.add (get rb) (Int64.of_int disp))
       | A.Mem (Ldah, ra, disp, rb) ->
         set ra (Int64.add (get rb) (Int64.of_int (disp * 65536)))
       | A.Mem (op, ra, disp, rb) ->
         let addr = (Int64.to_int (get rb) + disp) land addr_mask in
         ea := addr;
         let width =
           match op with
           | Ldq | Stq -> 8
           | Ldl | Stl -> 4
           | Ldwu | Stw -> 2
           | _ -> 1
         in
         if addr land (width - 1) <> 0 then raise (Unaligned_s addr);
         (match op with
         | Ldq -> set ra (Memory.get_i64 mem addr)
         | Ldl ->
           set ra (Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem addr))))
         | Ldwu -> set ra (Int64.of_int (Memory.get_u16 mem addr))
         | Ldbu -> set ra (Int64.of_int (Memory.get_u8 mem addr))
         | Stq -> Memory.set_i64 mem addr (get ra)
         | Stl -> Memory.set_u32 mem addr (Int64.to_int (Int64.logand (get ra) 0xffffffffL))
         | Stw -> Memory.set_u16 mem addr (Int64.to_int (Int64.logand (get ra) 0xffffL))
         | Stb -> Memory.set_u8 mem addr (Int64.to_int (Int64.logand (get ra) 0xffL))
         | Lda | Ldah -> assert false)
       | A.Opr (op, ra, operand, rc) ->
         let b = match operand with A.Rb r -> get r | Imm i -> Int64.of_int i in
         if A.is_cmov insn then begin
           if A.cond_true (A.cmov_cond op) (get ra) then set rc b
         end
         else set rc (A.eval_op op (get ra) b)
       | A.Br (_, target) ->
         taken := true;
         next := target
       | A.Bc (c, ra, target) ->
         if A.cond_true c (get ra) then begin
           taken := true;
           next := target
         end
       | A.Jump (_, _, rb) ->
         taken := true;
         next := Int64.to_int (get rb)
       | A.Lta (ra, v) -> set ra (Int64.of_int v)
       | A.Push_dras (ra, v_ret, i_ret) ->
         set ra (Int64.of_int v_ret);
         (* negative [i_ret]: unpatched push, return point untranslated *)
         if t.ctx.cfg.chaining = Config.Sw_pred_ras then
           Machine.Dual_ras.push t.dras ~v_addr:v_ret
             ~i_addr:(if i_ret >= 0 then Some i_ret else None)
       | A.Ret_dras rb -> (
         let v_actual = Int64.to_int (get rb) in
         match Machine.Dual_ras.pop_verify t.dras ~v_actual with
         | Some i ->
           dras_hit := true;
           t.stats.ret_dras_hits <- t.stats.ret_dras_hits + 1;
           taken := true;
           next := i
         | None -> t.stats.ret_dras_misses <- t.stats.ret_dras_misses + 1)
       | A.Set_vbase v -> t.vbase <- v
       | A.Call_xlate exit_id ->
         result := Some (X_reason (Vec.get t.ctx.exits exit_id))
       | A.Call_xlate_cond (c, ra, exit_id) ->
         if A.cond_true c (get ra) then begin
           taken := true;
           result := Some (X_reason (Vec.get t.ctx.exits exit_id))
         end
       | A.Bsr _ | A.Call_pal _ ->
         failwith "exec_straight: untranslatable instruction in cache");
       if !taken && !result = None then begin
         match Tcache.Straight.frag_of_entry tc !next with
         | Some f ->
           f.exec_count <- f.exec_count + 1;
           t.stats.frag_enters <- t.stats.frag_enters + 1
         | None -> ()
       end
     with
    | Memory.Fault _ | Unaligned_s _ -> (
      (* the faulting V-ISA instruction does not commit here (the VM
         re-executes it by interpretation) — take back its retirement
         credit; see the matching comment in Exec_acc *)
      t.stats.alpha_retired <- t.stats.alpha_retired - 1;
      budget := !budget + 1;
      match Tcache.Straight.pei_at tc s with
      | Some pei ->
        t.interp.pc <- pei.Tcache.pei_v_pc;
        result := Some X_trap_recovered
      | None -> failwith "exec_straight: fault at a slot with no PEI entry"));
    (match sink with
    | Some (f : Machine.Ev.t -> unit) ->
      let base = Tcache.Straight.addr_of tc 0 in
      let addr sl = base + (4 * sl) in
      f
        (Alpha.Trace.ev_of_exec ~dras_hit:!dras_hit ~alpha_count:alpha
           ~pc:(addr s) ~insn ~taken:!taken
           ~target:(if !result <> None then addr s + 4 else addr !next)
           ~ea:!ea ())
    | None -> ());
    if !result = None then begin
      if !budget <= 0 then result := Some X_fuel else slot := !next
    end
  done;
  Option.get !result
