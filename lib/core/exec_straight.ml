module Memory = Machine.Memory
module Vec = Machine.Vec
module A = Alpha.Insn

(* Functional execution engines for straightened-Alpha translated code.

   Shares the interpreter's architected register file and memory. Control
   convention inside the translation cache: Bc/Br immediate fields and the
   register consumed by Jump hold absolute slot indices (see
   {!Straighten}).

   Mirrors {!Exec_acc}: a threaded-code engine (slots compiled to
   specialized closures, tight trampoline) for sink-less runs, and the
   instrumented variant-match engine whenever a timing sink is attached or
   {!Config.t.engine} forces [Matched]. *)

type stats = {
  mutable i_exec : int;
  by_class : int array;
  mutable alpha_retired : int;
  mutable st_cycles : int;
  (* static cycle cost charged (fast-forward tier): sum of the executed
     slots' translation-time Ooo annotations, 0 without an annotator *)
  mutable frag_enters : int;
  mutable ret_dras_hits : int;
  mutable ret_dras_misses : int;
}

type t = {
  ctx : Straighten.ctx;
  interp : Alpha.Interp.t;
  dras : Machine.Dual_ras.t;
  mutable vbase : int;
  stats : stats;
  (* --- threaded-code engine state (see Exec_acc) --- *)
  mutable ops : op array;
  mutable alphas : int array;
  mutable classes : int array;
  mutable cycs : int array; (* per-slot static Ooo cycles, ops-parallel *)
  mutable ops_len : int;
  mutable ops_gen : int;
  mutable patch_mark : int;
  mutable budget : int;
  (* --- region tier-up state (see Exec_acc) --- *)
  mutable rthreshold : int;
  mutable regions : regionc list;
}

and op = t -> int

and regionc = { rg : Region.t; r_orig : op }

type exit =
  | X_reason of Exitr.reason
  | X_trap_recovered
  | X_fuel

let create ctx interp =
  Translate.map_vm_memory interp.Alpha.Interp.mem;
  {
    ctx;
    interp;
    dras = Machine.Dual_ras.create ();
    vbase = 0;
    stats =
      {
        i_exec = 0;
        by_class = Array.make 4 0;
        alpha_retired = 0;
        st_cycles = 0;
        frag_enters = 0;
        ret_dras_hits = 0;
        ret_dras_misses = 0;
      };
    ops = [||];
    alphas = [||];
    classes = [||];
    cycs = [||];
    ops_len = 0;
    ops_gen = -1;
    patch_mark = 0;
    budget = 0;
    rthreshold = max_int;
    regions = [];
  }

(* Dynamic dispatch-miss target lives in GP by convention. *)
let dispatch_target t = Int64.to_int (Alpha.Interp.get t.interp Straighten.gp)

let addr_mask = 0x3fffffffffff

exception Unaligned_s of int

(* ---------- threaded-code engine: slot compilation ---------- *)

let ret_trap = -1
let ret_exit exit_id = -(exit_id + 2)

(* Compile-time operand location: r31 reads as zero and discards writes,
   every other register is a direct cell of the shared register array. *)
type loc = L_reg of int | L_const of int64

let check_reg r =
  if r < 0 || r > 31 then invalid_arg "exec_straight: register out of range"

let reg_loc r =
  check_reg r;
  if r = Alpha.Reg.zero then L_const 0L else L_reg r

let operand_loc = function
  | A.Rb r -> reg_loc r
  | A.Imm i -> L_const (Int64.of_int i)

(* Write cell; [None] when the write is architecturally discarded. *)
let wreg_loc r =
  check_reg r;
  if r = Alpha.Reg.zero then None else Some r

(* Closure forms, for the generic arms. *)
let get_fn t r : unit -> int64 =
  match reg_loc r with
  | L_const v -> fun () -> v
  | L_reg i ->
    let regs = t.interp.regs in
    fun () -> Array.unsafe_get regs i

let set_fn t r : (int64 -> unit) option =
  match wreg_loc r with
  | None -> None
  | Some i ->
    let regs = t.interp.regs in
    Some (fun v -> Array.unsafe_set regs i v)

let wr_fn t r : int64 -> unit =
  match set_fn t r with Some f -> f | None -> fun _ -> ()

(* Cold fault path; see the matching comment in Exec_acc. The whole
   static cycle cost of the slot is refunded (unlike the single
   retirement credit): the interpreter re-execution is charged at full
   fidelity by the dynamic-correction path. *)
let faulted t s =
  t.stats.alpha_retired <- t.stats.alpha_retired - 1;
  t.budget <- t.budget + 1;
  t.stats.st_cycles <- t.stats.st_cycles - Array.unsafe_get t.cycs s;
  match Tcache.Straight.pei_at t.ctx.tc s with
  | Some pei ->
    t.interp.pc <- pei.Tcache.pei_v_pc;
    ret_trap
  | None -> failwith "exec_straight: fault at a slot with no PEI entry"

(* ---------- region tier-up (second compilation tier) ---------- *)

(* Telemetry: same names as Exec_acc (one VM owns one backend kind). *)
let c_region_compiles = Obs.counter "engine.region_compiles"
let c_region_exits = Obs.counter "engine.region_exits"
let c_region_invalidations = Obs.counter "engine.region_invalidations"

(* Top bound matches the default [region_max_slots] cap (1024); the
   [.saturated] counter reports clipping under a raised cap. *)
let h_region_slots =
  Obs.histogram "engine.region_slots"
    ~bounds:[| 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let sp_region = Obs.span "compile_region"

let ctrl_of_insn : A.t -> Region.ctrl = function
  | A.Br (_, target) -> Region.C_br target
  | A.Bc (_, _, target) -> Region.C_bc target
  | A.Jump _ -> Region.C_dyn
  | A.Ret_dras _ -> Region.C_dyn_fall
  | A.Call_xlate _ -> Region.C_exit
  | A.Call_xlate_cond _ -> Region.C_cond_exit
  | A.Bsr _ | A.Call_pal _ -> Region.C_exit
  | _ -> Region.C_seq

(* Bulk accounting, fault unwind, the region runner, promotion and
   invalidation mirror Exec_acc — see the comments there. *)
let unwind_region_suffix t (rg : Region.t) b s =
  let st = t.stats in
  let fin = rg.b_start.(b) + rg.b_len.(b) - 1 in
  for sl = s + 1 to fin do
    let a = Array.unsafe_get t.alphas sl in
    st.i_exec <- st.i_exec - 1;
    let c = Array.unsafe_get t.classes sl in
    st.by_class.(c) <- st.by_class.(c) - 1;
    st.alpha_retired <- st.alpha_retired - a;
    st.st_cycles <- st.st_cycles - Array.unsafe_get t.cycs sl;
    t.budget <- t.budget + a
  done

let run_region t (rg : Region.t) (orig : op) b0 : int =
  let ops = t.ops in
  let entry = rg.entry_slot in
  let b_start = rg.b_start and b_len = rg.b_len and b_alpha = rg.b_alpha in
  let b_cyc = rg.b_cyc and b_cls = rg.b_cls in
  let b_fall_slot = rg.b_fall_slot and b_fall_blk = rg.b_fall_blk in
  let b_taken_slot = rg.b_taken_slot and b_taken_blk = rg.b_taken_blk in
  let st = t.stats in
  let by_class = st.by_class in
  let rec block b =
    let ba = Array.unsafe_get b_alpha b in
    if t.budget <= ba then begin
      Obs.bump c_region_exits 1;
      Array.unsafe_get b_start b
    end
    else begin
      t.budget <- t.budget - ba;
      st.i_exec <- st.i_exec + Array.unsafe_get b_len b;
      st.alpha_retired <- st.alpha_retired + ba;
      st.st_cycles <- st.st_cycles + Array.unsafe_get b_cyc b;
      let base = b * Region.n_classes in
      for c = 0 to Region.n_classes - 1 do
        Array.unsafe_set by_class c
          (Array.unsafe_get by_class c + Array.unsafe_get b_cls (base + c))
      done;
      let s0 = Array.unsafe_get b_start b in
      slots b s0 (s0 + Array.unsafe_get b_len b - 1)
    end
  and slots b s fin =
    let op = if s = entry then orig else Array.unsafe_get ops s in
    let n = op t in
    if s >= fin then dispatch b n
    else if n = s + 1 then slots b (s + 1) fin
    else begin
      unwind_region_suffix t rg b s;
      Obs.bump c_region_exits 1;
      n
    end
  and dispatch b n =
    if n = Array.unsafe_get b_fall_slot b then
      block (Array.unsafe_get b_fall_blk b)
    else if n = Array.unsafe_get b_taken_slot b then
      block (Array.unsafe_get b_taken_blk b)
    else if n >= 0 then begin
      (* dynamic transfer (DRAS return hit, predicted indirect jump):
         continue in-region when the target is a block start *)
      let bi = Region.blk_at rg n in
      if bi >= 0 then block bi
      else begin
        Obs.bump c_region_exits 1;
        n
      end
    end
    else begin
      Obs.bump c_region_exits 1;
      n
    end
  in
  block b0

let make_region_op t (rg : Region.t) (orig : op) : op =
  let eb = rg.entry_block in
  let e_alpha = t.alphas.(rg.entry_slot) in
  let e_cls = t.classes.(rg.entry_slot) in
  let e_cyc = t.cycs.(rg.entry_slot) in
  let entry_guard = rg.b_alpha.(eb) - e_alpha in
  fun t ->
    if t.budget <= entry_guard then orig t
    else begin
      let st = t.stats in
      st.i_exec <- st.i_exec - 1;
      st.by_class.(e_cls) <- st.by_class.(e_cls) - 1;
      st.alpha_retired <- st.alpha_retired - e_alpha;
      st.st_cycles <- st.st_cycles - e_cyc;
      t.budget <- t.budget + e_alpha;
      run_region t rg orig eb
    end

let slot_in_live_region t slot =
  List.exists (fun rc -> Region.contains rc.rg slot) t.regions

let promote t (f : Tcache.frag) =
  if f.region_state <> 0 then ()
  else if slot_in_live_region t f.entry_slot then f.region_state <- 2
  else begin
    let tc = t.ctx.tc in
    let built =
      Obs.with_span sp_region (fun () ->
          Region.build ~entry:f.entry_slot
            ~frag_at:(fun slot ->
              match Tcache.Straight.frag_of_entry tc slot with
              | Some g when g.region_state <> 1 -> Some (g.n_slots, g.v_start)
              | _ -> None)
            ~ctrl:(fun s -> ctrl_of_insn (Tcache.Straight.get tc s))
            ~alpha:(fun s -> t.alphas.(s))
            ~cyc:(fun s -> t.cycs.(s))
            ~cls:(fun s -> t.classes.(s))
            ~max_slots:t.ctx.cfg.region_max_slots)
    in
    match built with
    | None -> f.region_state <- 2
    | Some rg ->
      let orig = t.ops.(f.entry_slot) in
      t.ops.(f.entry_slot) <- make_region_op t rg orig;
      t.regions <- { rg; r_orig = orig } :: t.regions;
      f.region_state <- 1;
      Obs.bump c_region_compiles 1;
      Obs.observe h_region_slots rg.total_slots
  end

let invalidate_regions_at t sl =
  match t.regions with
  | [] -> ()
  | regions ->
    let stale, live =
      List.partition (fun rc -> Region.contains rc.rg sl) regions
    in
    if stale <> [] then begin
      List.iter
        (fun rc ->
          t.ops.(rc.rg.Region.entry_slot) <- rc.r_orig;
          (match
             Tcache.Straight.frag_of_entry t.ctx.tc rc.rg.Region.entry_slot
           with
          | Some f -> f.region_state <- 0
          | None -> ());
          Obs.bump c_region_invalidations 1)
        stale;
      t.regions <- live
    end

(* Single source of truth for fragment-entry accounting (see Exec_acc). *)
let enter_fragment t (f : Tcache.frag) =
  f.exec_count <- f.exec_count + 1;
  t.stats.frag_enters <- t.stats.frag_enters + 1;
  if f.exec_count >= t.rthreshold && f.region_state = 0 then promote t f

let enter_dynamic t target =
  let tc = t.ctx.tc in
  let id = Tcache.Straight.frag_id_of_entry tc target in
  if id >= 0 then enter_fragment t (Tcache.Straight.frag_by_id tc id)

let check_slot t n =
  if n < 0 || n >= t.ops_len then
    invalid_arg "exec_straight: indirect transfer to an invalid slot";
  n

let check_static t ~slot target =
  if target < 0 || target >= Tcache.Straight.n_slots t.ctx.tc then
    invalid_arg
      (Printf.sprintf "exec_straight: slot %d branches to invalid slot %d"
         slot target)

(* Compile one cache slot to its work closure; per-slot statistics and the
   budget decrement live in the trampoline (see Exec_acc). *)
let compile t s : op =
  let tc = t.ctx.tc in
  let insn = Tcache.Straight.get tc s in
  let st = t.stats in
  let next = s + 1 in
  let regs = t.interp.regs in
  match insn with
    | A.Mem (((Lda | Ldah) as op), ra, disp, rb) -> (
      let d =
        Int64.of_int (match op with Ldah -> disp * 65536 | _ -> disp)
      in
      match (wreg_loc ra, reg_loc rb) with
      | None, _ -> fun _ -> next
      | Some ia, L_reg ib ->
        fun _ ->
          Array.unsafe_set regs ia (Int64.add (Array.unsafe_get regs ib) d);
          next
      | Some ia, L_const cb ->
        let v = Int64.add cb d in
        fun _ ->
          Array.unsafe_set regs ia v;
          next)
    | A.Mem (((Ldq | Ldl | Ldwu | Ldbu) as op), ra, disp, rb) -> (
      let mem = t.interp.mem in
      let amask =
        match op with Ldq -> 7 | Ldl -> 3 | Ldwu -> 1 | _ -> 0
      in
      let ld : int -> int64 =
        match op with
        | Ldq -> Memory.get_i64 mem
        | Ldl ->
          fun a ->
            Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem a)))
        | Ldwu -> fun a -> Int64.of_int (Memory.get_u16 mem a)
        | _ -> fun a -> Int64.of_int (Memory.get_u8 mem a)
      in
      match (wreg_loc ra, reg_loc rb) with
      | Some ia, L_reg ib ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get regs ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              Array.unsafe_set regs ia v;
              next
            | exception Memory.Fault _ -> faulted t s)
      | dst, base ->
        (* rare shapes (zero base / discarded destination); faults and
           alignment checks must still surface *)
        let gb =
          match base with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        let w =
          match dst with
          | Some i -> fun v -> Array.unsafe_set regs i v
          | None -> fun _ -> ()
        in
        fun t ->
          let addr = (Int64.to_int (gb ()) + disp) land addr_mask in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              w v;
              next
            | exception Memory.Fault _ -> faulted t s))
    | A.Mem (((Stq | Stl | Stw | Stb) as op), ra, disp, rb) -> (
      let mem = t.interp.mem in
      let amask = match op with Stq -> 7 | Stl -> 3 | Stw -> 1 | _ -> 0 in
      let st_ : int -> int64 -> unit =
        match op with
        | Stq -> Memory.set_i64 mem
        | Stl ->
          fun a v ->
            Memory.set_u32 mem a (Int64.to_int (Int64.logand v 0xffffffffL))
        | Stw ->
          fun a v -> Memory.set_u16 mem a (Int64.to_int (Int64.logand v 0xffffL))
        | _ ->
          fun a v -> Memory.set_u8 mem a (Int64.to_int (Int64.logand v 0xffL))
      in
      match (reg_loc ra, reg_loc rb) with
      | L_reg iv, L_reg ib ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get regs ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match st_ addr (Array.unsafe_get regs iv) with
            | () -> next
            | exception Memory.Fault _ -> faulted t s)
      | value, base ->
        let gv =
          match value with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        let gb =
          match base with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        fun t ->
          let addr = (Int64.to_int (gb ()) + disp) land addr_mask in
          if addr land amask <> 0 then faulted t s
          else (
            match st_ addr (gv ()) with
            | () -> next
            | exception Memory.Fault _ -> faulted t s))
    | A.Opr (op, ra, operand, rc) -> (
      if A.is_cmov insn then
        let c = Alpha.Insn.cond_fn (A.cmov_cond op) in
        let gra = get_fn t ra in
        let gb : unit -> int64 =
          match operand_loc operand with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        match wreg_loc rc with
        | None -> fun _ -> next
        | Some ic ->
          fun _ ->
            if c (gra ()) then Array.unsafe_set regs ic (gb ());
            next
      else
        let f = Alpha.Insn.eval_fn op in
        match (wreg_loc rc, reg_loc ra, operand_loc operand) with
        | None, _, _ -> fun _ -> next
        | Some ic, L_reg ia, L_reg ib ->
          fun _ ->
            Array.unsafe_set regs ic
              (f (Array.unsafe_get regs ia) (Array.unsafe_get regs ib));
            next
        | Some ic, L_reg ia, L_const cb ->
          fun _ ->
            Array.unsafe_set regs ic (f (Array.unsafe_get regs ia) cb);
            next
        | Some ic, L_const ca, L_reg ib ->
          fun _ ->
            Array.unsafe_set regs ic (f ca (Array.unsafe_get regs ib));
            next
        | Some ic, L_const ca, L_const cb ->
          let v = f ca cb in
          fun _ ->
            Array.unsafe_set regs ic v;
            next)
    | A.Br (_, target) -> (
      check_static t ~slot:s target;
      match Tcache.Straight.frag_of_entry tc target with
      | Some f ->
        fun t ->
          enter_fragment t f;
          target
      | None -> fun _ -> target)
    | A.Bc (c, ra, target) -> (
      check_static t ~slot:s target;
      let cf = Alpha.Insn.cond_fn c in
      match (Tcache.Straight.frag_of_entry tc target, reg_loc ra) with
      | Some f, L_reg ia ->
        fun t ->
          if cf (Array.unsafe_get regs ia) then begin
            enter_fragment t f;
            target
          end
          else next
      | Some f, L_const cv ->
        let tk = cf cv in
        fun t ->
          if tk then begin
            enter_fragment t f;
            target
          end
          else next
      | None, L_reg ia ->
        fun _ -> if cf (Array.unsafe_get regs ia) then target else next
      | None, L_const cv -> if cf cv then fun _ -> target else fun _ -> next)
    | A.Jump (_, _, rb) ->
      let grb = get_fn t rb in
      fun t ->
        let n = check_slot t (Int64.to_int (grb ())) in
        enter_dynamic t n;
        n
    | A.Lta (ra, v) ->
      let w = wr_fn t ra in
      let v = Int64.of_int v in
      fun _ ->
        w v;
        next
    | A.Push_dras (ra, v_ret, i_ret) ->
      let w = wr_fn t ra in
      let vr = Int64.of_int v_ret in
      (match t.ctx.cfg.chaining with
      | Config.Sw_pred_ras ->
        (* negative [i_ret]: unpatched push, return point untranslated *)
        let i_opt = if i_ret >= 0 then Some i_ret else None in
        let dras = t.dras in
        fun _ ->
          w vr;
          Machine.Dual_ras.push dras ~v_addr:v_ret ~i_addr:i_opt;
          next
      | Config.No_pred | Config.Sw_pred_no_ras ->
        fun _ ->
          w vr;
          next)
    | A.Ret_dras rb ->
      let grb = get_fn t rb in
      let dras = t.dras in
      fun t -> (
        match
          Machine.Dual_ras.pop_verify dras ~v_actual:(Int64.to_int (grb ()))
        with
        | Some i ->
          st.ret_dras_hits <- st.ret_dras_hits + 1;
          let i = check_slot t i in
          enter_dynamic t i;
          i
        | None ->
          st.ret_dras_misses <- st.ret_dras_misses + 1;
          next)
    | A.Set_vbase v ->
      fun t ->
        t.vbase <- v;
        next
    | A.Call_xlate exit_id ->
      let code = ret_exit exit_id in
      fun _ -> code
    | A.Call_xlate_cond (c, ra, exit_id) ->
      let cf = Alpha.Insn.cond_fn c in
      let gra = get_fn t ra in
      let code = ret_exit exit_id in
      fun _ -> if cf (gra ()) then code else next
    | A.Bsr _ | A.Call_pal _ ->
      fun _ -> failwith "exec_straight: untranslatable instruction in cache"

let uncompiled_op : op = fun _ -> failwith "exec_straight: uncompiled slot"

(* Telemetry: same names as Exec_acc (one VM owns one engine kind). *)
let c_compiles = Obs.counter "engine.compiled_slots"
let c_replays = Obs.counter "engine.patch_replays"
let sp_compile = Obs.span "compile_to_closure"

let sync_ops t =
  let tc = t.ctx.tc in
  let gen = Tcache.Straight.generation tc in
  if t.ops_gen <> gen then begin
    t.ops <- [||];
    t.ops_len <- 0;
    t.patch_mark <- 0;
    t.ops_gen <- gen;
    (* the compiled prefix the regions indexed into is gone wholesale *)
    t.regions <- []
  end;
  let n = Tcache.Straight.n_slots tc in
  if n > Array.length t.ops then begin
    let cap = ref (max 1024 (Array.length t.ops)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let grown = Array.make !cap uncompiled_op in
    Array.blit t.ops 0 grown 0 t.ops_len;
    t.ops <- grown;
    let ga = Array.make !cap 0 and gc = Array.make !cap 0 in
    let gy = Array.make !cap 0 in
    Array.blit t.alphas 0 ga 0 t.ops_len;
    Array.blit t.classes 0 gc 0 t.ops_len;
    Array.blit t.cycs 0 gy 0 t.ops_len;
    t.alphas <- ga;
    t.classes <- gc;
    t.cycs <- gy
  end;
  let m = Tcache.Straight.patch_count tc in
  if n > t.ops_len || m > t.patch_mark then
    Obs.with_span sp_compile (fun () ->
        Obs.bump c_compiles (n - t.ops_len);
        for sl = t.ops_len to n - 1 do
          Array.unsafe_set t.ops sl (compile t sl);
          Array.unsafe_set t.alphas sl (Vec.get t.ctx.slot_alpha sl);
          Array.unsafe_set t.classes sl (Vec.get t.ctx.slot_class sl);
          Array.unsafe_set t.cycs sl (Vec.get t.ctx.slot_cyc_ooo sl)
        done;
        t.ops_len <- n;
        (* drop regions covering a patched slot before recompiling it *)
        for i = t.patch_mark to m - 1 do
          invalidate_regions_at t (Tcache.Straight.patched_slot tc i)
        done;
        for i = t.patch_mark to m - 1 do
          let sl = Tcache.Straight.patched_slot tc i in
          if sl < n then begin
            t.ops.(sl) <- compile t sl;
            Obs.bump c_replays 1
          end
        done;
        t.patch_mark <- m)

(* Warm start: pay closure compilation for every restored cache slot up
   front instead of on the first [run] after a snapshot load.
   [hot_entries] feeds the snapshot's hotness profile into region
   tier-up (see Exec_acc). *)
let prewarm ?(hot_entries = []) t =
  sync_ops t;
  List.iter
    (fun slot ->
      match Tcache.Straight.frag_of_entry t.ctx.tc slot with
      | Some f -> promote t f
      | None -> ())
    hot_entries

let region_count t = List.length t.regions

let run_threaded ?(fuel = max_int) t ~entry : exit =
  t.rthreshold <-
    (match t.ctx.cfg.engine with
    | Config.Region -> t.ctx.cfg.region_threshold
    | Config.Threaded | Config.Matched -> max_int);
  sync_ops t;
  if entry < 0 || entry >= t.ops_len then
    invalid_arg "exec_straight: entry is not a translated slot";
  t.budget <- fuel;
  enter_dynamic t entry;
  let ops = t.ops and alphas = t.alphas and classes = t.classes in
  let cycs = t.cycs in
  let st = t.stats in
  let by_class = st.by_class in
  let rec loop slot =
    st.i_exec <- st.i_exec + 1;
    let cls = Array.unsafe_get classes slot in
    Array.unsafe_set by_class cls (Array.unsafe_get by_class cls + 1);
    let a = Array.unsafe_get alphas slot in
    st.alpha_retired <- st.alpha_retired + a;
    st.st_cycles <- st.st_cycles + Array.unsafe_get cycs slot;
    t.budget <- t.budget - a;
    let n = (Array.unsafe_get ops slot) t in
    if n >= 0 then if t.budget <= 0 then X_fuel else loop n
    else if n = ret_trap then X_trap_recovered
    else X_reason (Vec.get t.ctx.exits (-n - 2))
  in
  loop entry

(* ---------- instrumented (match-based) engine ---------- *)

let run_instrumented ?sink ?(fuel = max_int) t ~entry : exit =
  let tc = t.ctx.tc in
  let get r = Alpha.Interp.get t.interp r in
  let set r v = Alpha.Interp.set t.interp r v in
  let mem = t.interp.mem in
  let budget = ref fuel in
  (* sink-attached runs must stay slot-granular: no region promotion *)
  t.rthreshold <- max_int;
  (match Tcache.Straight.frag_of_entry tc entry with
  | Some f -> enter_fragment t f
  | None -> ());
  let slot = ref entry in
  let result = ref None in
  let running () = match !result with None -> true | Some _ -> false in
  while running () do
    let s = !slot in
    let insn = Tcache.Straight.get tc s in
    let alpha = Vec.get t.ctx.slot_alpha s in
    t.stats.i_exec <- t.stats.i_exec + 1;
    t.stats.by_class.(Vec.get t.ctx.slot_class s) <-
      t.stats.by_class.(Vec.get t.ctx.slot_class s) + 1;
    t.stats.alpha_retired <- t.stats.alpha_retired + alpha;
    t.stats.st_cycles <- t.stats.st_cycles + Vec.get t.ctx.slot_cyc_ooo s;
    budget := !budget - alpha;
    let next = ref (s + 1) in
    let taken = ref false in
    let ea = ref 0 in
    let dras_hit = ref false in
    (try
       (match insn with
       | A.Mem (Lda, ra, disp, rb) -> set ra (Int64.add (get rb) (Int64.of_int disp))
       | A.Mem (Ldah, ra, disp, rb) ->
         set ra (Int64.add (get rb) (Int64.of_int (disp * 65536)))
       | A.Mem (op, ra, disp, rb) ->
         let addr = (Int64.to_int (get rb) + disp) land addr_mask in
         ea := addr;
         let width =
           match op with
           | Ldq | Stq -> 8
           | Ldl | Stl -> 4
           | Ldwu | Stw -> 2
           | _ -> 1
         in
         if addr land (width - 1) <> 0 then raise (Unaligned_s addr);
         (match op with
         | Ldq -> set ra (Memory.get_i64 mem addr)
         | Ldl ->
           set ra (Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem addr))))
         | Ldwu -> set ra (Int64.of_int (Memory.get_u16 mem addr))
         | Ldbu -> set ra (Int64.of_int (Memory.get_u8 mem addr))
         | Stq -> Memory.set_i64 mem addr (get ra)
         | Stl -> Memory.set_u32 mem addr (Int64.to_int (Int64.logand (get ra) 0xffffffffL))
         | Stw -> Memory.set_u16 mem addr (Int64.to_int (Int64.logand (get ra) 0xffffL))
         | Stb -> Memory.set_u8 mem addr (Int64.to_int (Int64.logand (get ra) 0xffL))
         | Lda | Ldah -> assert false)
       | A.Opr (op, ra, operand, rc) ->
         let b = match operand with A.Rb r -> get r | Imm i -> Int64.of_int i in
         if A.is_cmov insn then begin
           if A.cond_true (A.cmov_cond op) (get ra) then set rc b
         end
         else set rc (A.eval_op op (get ra) b)
       | A.Br (_, target) ->
         taken := true;
         next := target
       | A.Bc (c, ra, target) ->
         if A.cond_true c (get ra) then begin
           taken := true;
           next := target
         end
       | A.Jump (_, _, rb) ->
         taken := true;
         next := Int64.to_int (get rb)
       | A.Lta (ra, v) -> set ra (Int64.of_int v)
       | A.Push_dras (ra, v_ret, i_ret) -> (
         set ra (Int64.of_int v_ret);
         (* negative [i_ret]: unpatched push, return point untranslated *)
         match t.ctx.cfg.chaining with
         | Config.Sw_pred_ras ->
           Machine.Dual_ras.push t.dras ~v_addr:v_ret
             ~i_addr:(if i_ret >= 0 then Some i_ret else None)
         | Config.No_pred | Config.Sw_pred_no_ras -> ())
       | A.Ret_dras rb -> (
         let v_actual = Int64.to_int (get rb) in
         match Machine.Dual_ras.pop_verify t.dras ~v_actual with
         | Some i ->
           dras_hit := true;
           t.stats.ret_dras_hits <- t.stats.ret_dras_hits + 1;
           taken := true;
           next := i
         | None -> t.stats.ret_dras_misses <- t.stats.ret_dras_misses + 1)
       | A.Set_vbase v -> t.vbase <- v
       | A.Call_xlate exit_id ->
         result := Some (X_reason (Vec.get t.ctx.exits exit_id))
       | A.Call_xlate_cond (c, ra, exit_id) ->
         if A.cond_true c (get ra) then begin
           taken := true;
           result := Some (X_reason (Vec.get t.ctx.exits exit_id))
         end
       | A.Bsr _ | A.Call_pal _ ->
         failwith "exec_straight: untranslatable instruction in cache");
       if !taken && running () then begin
         match Tcache.Straight.frag_of_entry tc !next with
         | Some f -> enter_fragment t f
         | None -> ()
       end
     with
    | Memory.Fault _ | Unaligned_s _ -> (
      (* the faulting V-ISA instruction does not commit here (the VM
         re-executes it by interpretation) — take back its retirement
         credit and the slot's whole static cycle cost; see the matching
         comment in Exec_acc *)
      t.stats.alpha_retired <- t.stats.alpha_retired - 1;
      t.stats.st_cycles <- t.stats.st_cycles - Vec.get t.ctx.slot_cyc_ooo s;
      budget := !budget + 1;
      match Tcache.Straight.pei_at tc s with
      | Some pei ->
        t.interp.pc <- pei.Tcache.pei_v_pc;
        result := Some X_trap_recovered
      | None -> failwith "exec_straight: fault at a slot with no PEI entry"));
    (match sink with
    | Some (f : Machine.Ev.t -> unit) ->
      let base = Tcache.Straight.addr_of tc 0 in
      let addr sl = base + (4 * sl) in
      f
        (Alpha.Trace.ev_of_exec ~dras_hit:!dras_hit ~alpha_count:alpha
           ~pc:(addr s) ~insn ~taken:!taken
           ~target:
             (match !result with
             | Some _ -> addr s + 4
             | None -> addr !next)
           ~ea:!ea ())
    | None -> ());
    if running () then begin
      if !budget <= 0 then result := Some X_fuel else slot := !next
    end
  done;
  Option.get !result

(* ---------- engine selection (see Exec_acc) ---------- *)

let run ?sink ?(fuel = max_int) t ~entry : exit =
  match sink with
  | Some _ -> run_instrumented ?sink ~fuel t ~entry
  | None -> (
    match t.ctx.cfg.engine with
    | Config.Threaded | Config.Region -> run_threaded ~fuel t ~entry
    | Config.Matched -> run_instrumented ~fuel t ~entry)
