module Memory = Machine.Memory
module Vec = Machine.Vec
module A = Alpha.Insn

(* Functional execution engines for straightened-Alpha translated code.

   Shares the interpreter's architected register file and memory. Control
   convention inside the translation cache: Bc/Br immediate fields and the
   register consumed by Jump hold absolute slot indices (see
   {!Straighten}).

   Mirrors {!Exec_acc}: a threaded-code engine (slots compiled to
   specialized closures, tight trampoline) for sink-less runs, and the
   instrumented variant-match engine whenever a timing sink is attached or
   {!Config.t.engine} forces [Matched]. *)

type stats = {
  mutable i_exec : int;
  by_class : int array;
  mutable alpha_retired : int;
  mutable st_cycles : int;
  (* static cycle cost charged (fast-forward tier): sum of the executed
     slots' translation-time Ooo annotations, 0 without an annotator *)
  mutable frag_enters : int;
  mutable ret_dras_hits : int;
  mutable ret_dras_misses : int;
}

type t = {
  ctx : Straighten.ctx;
  interp : Alpha.Interp.t;
  dras : Machine.Dual_ras.t;
  mutable vbase : int;
  stats : stats;
  (* --- threaded-code engine state (see Exec_acc) --- *)
  mutable ops : op array;
  mutable alphas : int array;
  mutable classes : int array;
  mutable cycs : int array; (* per-slot static Ooo cycles, ops-parallel *)
  mutable ops_len : int;
  mutable ops_gen : int;
  mutable patch_mark : int;
  mutable budget : int;
  (* --- region tier-up state (see Exec_acc) --- *)
  mutable rthreshold : int;
  mutable regions : regionc list;
  (* --- superop tier state (see Exec_acc) --- *)
  mutable idioms : Superop.table option;
}

and op = t -> int

and regionc = { rg : Region.t; r_orig : op; r_bops : op array }

type exit =
  | X_reason of Exitr.reason
  | X_trap_recovered
  | X_fuel

let create ctx interp =
  Translate.map_vm_memory interp.Alpha.Interp.mem;
  {
    ctx;
    interp;
    dras = Machine.Dual_ras.create ();
    vbase = 0;
    stats =
      {
        i_exec = 0;
        by_class = Array.make 4 0;
        alpha_retired = 0;
        st_cycles = 0;
        frag_enters = 0;
        ret_dras_hits = 0;
        ret_dras_misses = 0;
      };
    ops = [||];
    alphas = [||];
    classes = [||];
    cycs = [||];
    ops_len = 0;
    ops_gen = -1;
    patch_mark = 0;
    budget = 0;
    rthreshold = max_int;
    regions = [];
    idioms = None;
  }

(* Dynamic dispatch-miss target lives in GP by convention. *)
let dispatch_target t = Int64.to_int (Alpha.Interp.get t.interp Straighten.gp)

let addr_mask = 0x3fffffffffff

exception Unaligned_s of int

(* ---------- threaded-code engine: slot compilation ---------- *)

let ret_trap = -1
let ret_exit exit_id = -(exit_id + 2)

(* Compile-time operand location: r31 reads as zero and discards writes,
   every other register is a direct cell of the shared register array. *)
type loc = L_reg of int | L_const of int64

let check_reg r =
  if r < 0 || r > 31 then invalid_arg "exec_straight: register out of range"

let reg_loc r =
  check_reg r;
  if r = Alpha.Reg.zero then L_const 0L else L_reg r

let operand_loc = function
  | A.Rb r -> reg_loc r
  | A.Imm i -> L_const (Int64.of_int i)

(* Write cell; [None] when the write is architecturally discarded. *)
let wreg_loc r =
  check_reg r;
  if r = Alpha.Reg.zero then None else Some r

(* Closure forms, for the generic arms. *)
let get_fn t r : unit -> int64 =
  match reg_loc r with
  | L_const v -> fun () -> v
  | L_reg i ->
    let regs = t.interp.regs in
    fun () -> Array.unsafe_get regs i

let set_fn t r : (int64 -> unit) option =
  match wreg_loc r with
  | None -> None
  | Some i ->
    let regs = t.interp.regs in
    Some (fun v -> Array.unsafe_set regs i v)

let wr_fn t r : int64 -> unit =
  match set_fn t r with Some f -> f | None -> fun _ -> ()

(* Cold fault path; see the matching comment in Exec_acc. The whole
   static cycle cost of the slot is refunded (unlike the single
   retirement credit): the interpreter re-execution is charged at full
   fidelity by the dynamic-correction path. *)
let faulted t s =
  t.stats.alpha_retired <- t.stats.alpha_retired - 1;
  t.budget <- t.budget + 1;
  t.stats.st_cycles <- t.stats.st_cycles - Array.unsafe_get t.cycs s;
  match Tcache.Straight.pei_at t.ctx.tc s with
  | Some pei ->
    t.interp.pc <- pei.Tcache.pei_v_pc;
    ret_trap
  | None -> failwith "exec_straight: fault at a slot with no PEI entry"

(* ---------- region tier-up (second compilation tier) ---------- *)

(* Telemetry: same names as Exec_acc (one VM owns one backend kind). *)
let c_region_compiles = Obs.counter "engine.region_compiles"
let c_region_exits = Obs.counter "engine.region_exits"
let c_region_invalidations = Obs.counter "engine.region_invalidations"

(* Top bound matches the default [region_max_slots] cap (1024); the
   [.saturated] counter reports clipping under a raised cap. *)
let h_region_slots =
  Obs.histogram "engine.region_slots"
    ~bounds:[| 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let sp_region = Obs.span "compile_region"

let ctrl_of_insn : A.t -> Region.ctrl = function
  | A.Br (_, target) -> Region.C_br target
  | A.Bc (_, _, target) -> Region.C_bc target
  | A.Jump _ -> Region.C_dyn
  | A.Ret_dras _ -> Region.C_dyn_fall
  | A.Call_xlate _ -> Region.C_exit
  | A.Call_xlate_cond _ -> Region.C_cond_exit
  | A.Bsr _ | A.Call_pal _ -> Region.C_exit
  | _ -> Region.C_seq

(* Bulk accounting, fault unwind, the region runner, promotion and
   invalidation mirror Exec_acc — see the comments there. *)
let unwind_region_suffix t (rg : Region.t) b s =
  let st = t.stats in
  let fin = rg.b_start.(b) + rg.b_len.(b) - 1 in
  for sl = s + 1 to fin do
    let a = Array.unsafe_get t.alphas sl in
    st.i_exec <- st.i_exec - 1;
    let c = Array.unsafe_get t.classes sl in
    st.by_class.(c) <- st.by_class.(c) - 1;
    st.alpha_retired <- st.alpha_retired - a;
    st.st_cycles <- st.st_cycles - Array.unsafe_get t.cycs sl;
    t.budget <- t.budget + a
  done

let run_region t (rg : Region.t) (orig : op) b0 : int =
  let ops = t.ops in
  let entry = rg.entry_slot in
  let b_start = rg.b_start and b_len = rg.b_len and b_alpha = rg.b_alpha in
  let b_cyc = rg.b_cyc and b_cls = rg.b_cls in
  let b_fall_slot = rg.b_fall_slot and b_fall_blk = rg.b_fall_blk in
  let b_taken_slot = rg.b_taken_slot and b_taken_blk = rg.b_taken_blk in
  let st = t.stats in
  let by_class = st.by_class in
  let rec block b =
    let ba = Array.unsafe_get b_alpha b in
    if t.budget <= ba then begin
      Obs.bump c_region_exits 1;
      Array.unsafe_get b_start b
    end
    else begin
      t.budget <- t.budget - ba;
      st.i_exec <- st.i_exec + Array.unsafe_get b_len b;
      st.alpha_retired <- st.alpha_retired + ba;
      st.st_cycles <- st.st_cycles + Array.unsafe_get b_cyc b;
      let base = b * Region.n_classes in
      for c = 0 to Region.n_classes - 1 do
        Array.unsafe_set by_class c
          (Array.unsafe_get by_class c + Array.unsafe_get b_cls (base + c))
      done;
      let s0 = Array.unsafe_get b_start b in
      slots b s0 (s0 + Array.unsafe_get b_len b - 1)
    end
  and slots b s fin =
    let op = if s = entry then orig else Array.unsafe_get ops s in
    let n = op t in
    if s >= fin then dispatch b n
    else if n = s + 1 then slots b (s + 1) fin
    else begin
      unwind_region_suffix t rg b s;
      Obs.bump c_region_exits 1;
      n
    end
  and dispatch b n =
    if n = Array.unsafe_get b_fall_slot b then
      block (Array.unsafe_get b_fall_blk b)
    else if n = Array.unsafe_get b_taken_slot b then
      block (Array.unsafe_get b_taken_blk b)
    else if n >= 0 then begin
      (* dynamic transfer (DRAS return hit, predicted indirect jump):
         continue in-region when the target is a block start *)
      let bi = Region.blk_at rg n in
      if bi >= 0 then block bi
      else begin
        Obs.bump c_region_exits 1;
        n
      end
    end
    else begin
      Obs.bump c_region_exits 1;
      n
    end
  in
  block b0

(* ---------- superop tier (third compilation tier, see Exec_acc) ---------- *)

(* Telemetry: same names as Exec_acc (one VM owns one backend kind). *)
let c_superop_fusions = Obs.counter "engine.superop_fusions"
let c_superop_idiom_hits = Obs.counter "engine.superop_idiom_hits"

let h_fused_slots =
  Obs.histogram "engine.fused_block_slots"
    ~bounds:[| 1; 2; 4; 8; 16; 32; 64; 128 |]

(* Slot shape for idiom mining (see {!Superop}). Lda/Ldah are shaped as
   adds — the straightened backend compiles them as register+displacement
   arithmetic, not as memory accesses. *)
let shape_of_insn (insn : A.t) : Superop.shape =
  match insn with
  | A.Mem ((Lda | Ldah), _, _, rb) ->
    let m = 1 lor if rb = Alpha.Reg.zero then 2 else 0 in
    Superop.Sh_alu (Superop.A_add, m)
  | A.Mem (Ldq, _, _, _) -> Superop.Sh_load (8, false)
  | A.Mem (Ldl, _, _, _) -> Superop.Sh_load (4, true)
  | A.Mem (Ldwu, _, _, _) -> Superop.Sh_load (2, false)
  | A.Mem (Ldbu, _, _, _) -> Superop.Sh_load (1, false)
  | A.Mem (Stq, _, _, _) -> Superop.Sh_store 8
  | A.Mem (Stl, _, _, _) -> Superop.Sh_store 4
  | A.Mem (Stw, _, _, _) -> Superop.Sh_store 2
  | A.Mem (Stb, _, _, _) -> Superop.Sh_store 1
  | A.Opr (op, ra, operand, _) ->
    if A.is_cmov insn then Superop.Sh_cmov
    else
      let ca = ra = Alpha.Reg.zero in
      let cb =
        match operand with A.Imm _ -> true | A.Rb r -> r = Alpha.Reg.zero
      in
      Superop.Sh_alu
        ( Superop.aluk_of_op3 op,
          (if ca then 2 else 0) lor if cb then 1 else 0 )
  | A.Lta _ -> Superop.Sh_move
  | A.Bc _ -> Superop.Sh_bc
  | A.Br _ | A.Jump _ | A.Ret_dras _ | A.Call_xlate _ | A.Call_xlate_cond _
  | A.Bsr _ | A.Call_pal _ ->
    Superop.Sh_ctl
  | A.Set_vbase _ | A.Push_dras _ -> Superop.Sh_misc

(* Lazy profile mining / table installation — see Exec_acc. *)
let mine_idioms t : Superop.table =
  let tc = t.ctx.tc in
  let profiles =
    List.filter_map
      (fun (f : Tcache.frag) ->
        if f.exec_count <= 0 || f.n_slots <= 0 then None
        else
          Some
            ( Array.init f.n_slots (fun i ->
                  shape_of_insn (Tcache.Straight.get tc (f.entry_slot + i))),
              f.exec_count ))
      (Tcache.Straight.fragments tc)
  in
  Superop.mine profiles

let idiom_table t =
  match t.idioms with
  | Some tbl -> tbl
  | None ->
    let tbl = mine_idioms t in
    t.idioms <- Some tbl;
    tbl

let set_idiom_table t tbl = t.idioms <- Some tbl

(* Fused entry closure — see Exec_acc: fused blocks chain by direct
   mutually tail-recursive calls, each head owns its strict budget
   check, and every exit path bumps the region-exit counter itself. *)
let make_region_op t (rg : Region.t) (orig : op) (bops : op array) : op =
  let eb = rg.entry_block in
  let e_alpha = t.alphas.(rg.entry_slot) in
  let e_cls = t.classes.(rg.entry_slot) in
  let e_cyc = t.cycs.(rg.entry_slot) in
  let entry_guard = rg.b_alpha.(eb) - e_alpha in
  let fused = Array.length bops > 0 in
  fun t ->
    if t.budget <= entry_guard then orig t
    else begin
      let st = t.stats in
      st.i_exec <- st.i_exec - 1;
      st.by_class.(e_cls) <- st.by_class.(e_cls) - 1;
      st.alpha_retired <- st.alpha_retired - e_alpha;
      st.st_cycles <- st.st_cycles - e_cyc;
      t.budget <- t.budget + e_alpha;
      if fused then (Array.unsafe_get bops eb) t else run_region t rg orig eb
    end

let slot_in_live_region t slot =
  List.exists (fun rc -> Region.contains rc.rg slot) t.regions

let invalidate_regions_at t sl =
  match t.regions with
  | [] -> ()
  | regions ->
    let stale, live =
      List.partition (fun rc -> Region.contains rc.rg sl) regions
    in
    if stale <> [] then begin
      List.iter
        (fun rc ->
          t.ops.(rc.rg.Region.entry_slot) <- rc.r_orig;
          (match
             Tcache.Straight.frag_of_entry t.ctx.tc rc.rg.Region.entry_slot
           with
          | Some f -> f.region_state <- 0
          | None -> ());
          Obs.bump c_region_invalidations 1)
        stale;
      t.regions <- live
    end

(* Promotion with superop fusion; mirrors Exec_acc (see the comments
   there — the mutual recursion exists because a fused compare+branch
   terminal performs fragment-entry accounting itself). *)
let rec promote t (f : Tcache.frag) =
  if f.region_state <> 0 then ()
  else if slot_in_live_region t f.entry_slot then f.region_state <- 2
  else begin
    let tc = t.ctx.tc in
    let built =
      Obs.with_span sp_region (fun () ->
          Region.build ~entry:f.entry_slot
            ~frag_at:(fun slot ->
              match Tcache.Straight.frag_of_entry tc slot with
              | Some g when g.region_state <> 1 -> Some (g.n_slots, g.v_start)
              | _ -> None)
            ~ctrl:(fun s -> ctrl_of_insn (Tcache.Straight.get tc s))
            ~alpha:(fun s -> t.alphas.(s))
            ~cyc:(fun s -> t.cycs.(s))
            ~cls:(fun s -> t.classes.(s))
            ~max_slots:t.ctx.cfg.region_max_slots)
    in
    match built with
    | None -> f.region_state <- 2
    | Some rg ->
      let orig = t.ops.(f.entry_slot) in
      let bops =
        if t.ctx.cfg.superops then fuse_region t rg orig else [||]
      in
      t.ops.(f.entry_slot) <- make_region_op t rg orig bops;
      t.regions <- { rg; r_orig = orig; r_bops = bops } :: t.regions;
      f.region_state <- 1;
      Obs.bump c_region_compiles 1;
      Obs.observe h_region_slots rg.total_slots
  end

and fuse_region t (rg : Region.t) (orig : op) : op array =
  let tbl = idiom_table t in
  let nb = Array.length rg.Region.b_start in
  let bops = Array.make nb (fun (_ : t) -> 0) in
  for b = 0 to nb - 1 do
    bops.(b) <- fuse_block t rg tbl orig bops b
  done;
  Obs.bump c_superop_fusions nb;
  bops

(* Fuse one block into a specialized closure chain; structure and
   accounting mirror Exec_acc.fuse_block. Backend differences: operand
   cells live in the architected register file, Lda/Ldah normalize to
   adds, conditional moves stay on their compiled ops, and the fault
   repair has no accumulator map to apply. *)
and fuse_block t (rg : Region.t) (tbl : Superop.table) (orig : op)
    (heads : op array) b : op =
  let tc = t.ctx.tc in
  let regs = t.interp.regs in
  let mem = t.interp.mem in
  let s0 = rg.b_start.(b) and len = rg.b_len.(b) in
  let fin = s0 + len - 1 in
  let nfin = fin + 1 in
  let entry = rg.entry_slot in
  let fall_slot = rg.b_fall_slot.(b) and fall_blk = rg.b_fall_blk.(b) in
  let taken_slot = rg.b_taken_slot.(b) and taken_blk = rg.b_taken_blk.(b) in
  let dispatch_term t n =
    if n = fall_slot then (Array.unsafe_get heads fall_blk) t
    else if n = taken_slot then (Array.unsafe_get heads taken_blk) t
    else if n >= 0 then begin
      let bi = Region.blk_at rg n in
      if bi >= 0 then (Array.unsafe_get heads bi) t
      else begin
        Obs.bump c_region_exits 1;
        n
      end
    end
    else begin
      Obs.bump c_region_exits 1;
      n
    end
  in
  let insn_at sl = Tcache.Straight.get tc sl in
  let shapes = Array.init len (fun i -> shape_of_insn (insn_at (s0 + i))) in
  let suf_n = Array.make len 0 and suf_a = Array.make len 0 in
  let suf_y = Array.make len 0 in
  let suf_c = Array.make (len * 4) 0 in
  for i = len - 2 downto 0 do
    let sl = s0 + i + 1 in
    suf_n.(i) <- suf_n.(i + 1) + 1;
    suf_a.(i) <- suf_a.(i + 1) + t.alphas.(sl);
    suf_y.(i) <- suf_y.(i + 1) + t.cycs.(sl);
    let base = i * 4 and pbase = (i + 1) * 4 in
    for c = 0 to 3 do
      suf_c.(base + c) <- suf_c.(pbase + c)
    done;
    let cc = t.classes.(sl) in
    suf_c.(base + cc) <- suf_c.(base + cc) + 1
  done;
  let make_fault i : op =
    let sl = s0 + i in
    let my_cyc = t.cycs.(sl) in
    let k = suf_n.(i) and sa = suf_a.(i) and sy = suf_y.(i) in
    let c0 = suf_c.(i * 4) and c1 = suf_c.((i * 4) + 1) in
    let c2 = suf_c.((i * 4) + 2) and c3 = suf_c.((i * 4) + 3) in
    match Tcache.Straight.pei_at tc sl with
    | None ->
      fun _ -> failwith "exec_straight: fault at a slot with no PEI entry"
    | Some pei ->
      let v_pc = pei.Tcache.pei_v_pc in
      fun t ->
        let st = t.stats in
        st.i_exec <- st.i_exec - k;
        st.alpha_retired <- st.alpha_retired - 1 - sa;
        st.st_cycles <- st.st_cycles - my_cyc - sy;
        t.budget <- t.budget + 1 + sa;
        let by = st.by_class in
        by.(0) <- by.(0) - c0;
        by.(1) <- by.(1) - c1;
        by.(2) <- by.(2) - c2;
        by.(3) <- by.(3) - c3;
        t.interp.pc <- v_pc;
        Obs.bump c_region_exits 1;
        ret_trap
  in
  let make_unwind i : t -> unit =
    let k = suf_n.(i) and sa = suf_a.(i) and sy = suf_y.(i) in
    let c0 = suf_c.(i * 4) and c1 = suf_c.((i * 4) + 1) in
    let c2 = suf_c.((i * 4) + 2) and c3 = suf_c.((i * 4) + 3) in
    fun t ->
      let st = t.stats in
      st.i_exec <- st.i_exec - k;
      st.alpha_retired <- st.alpha_retired - sa;
      st.st_cycles <- st.st_cycles - sy;
      t.budget <- t.budget + sa;
      let by = st.by_class in
      by.(0) <- by.(0) - c0;
      by.(1) <- by.(1) - c1;
      by.(2) <- by.(2) - c2;
      by.(3) <- by.(3) - c3;
      Obs.bump c_region_exits 1
  in
  let sink64 = [| 0L |] and sinkb = [| false |] in
  let cell = function L_reg i -> (regs, i) | L_const v -> ([| v |], 0) in
  let norm_wreg r =
    match wreg_loc r with
    | Some i -> (regs, i)
    | None -> (sink64, 0)
  in
  let mov_alu (xa, ia) (xd, id_) : Superop.ualu =
    {
      Superop.u_mov = true;
      u_f = (fun a _ -> a);
      u_xa = xa;
      u_ia = ia;
      u_xb = sink64;
      u_ib = 0;
      u_xd = xd;
      u_id = id_;
      u_wp = false;
      u_xp = sinkb;
      u_ip = 0;
      u_we = false;
      u_xe = sink64;
      u_ie = 0;
    }
  in
  let bin_alu f (xa, ia) (xb, ib) (xd, id_) : Superop.ualu =
    {
      Superop.u_mov = false;
      u_f = f;
      u_xa = xa;
      u_ia = ia;
      u_xb = xb;
      u_ib = ib;
      u_xd = xd;
      u_id = id_;
      u_wp = false;
      u_xp = sinkb;
      u_ip = 0;
      u_we = false;
      u_xe = sink64;
      u_ie = 0;
    }
  in
  let micro_at i : t Superop.micro =
    let sl = s0 + i in
    let insn = insn_at sl in
    match insn with
    | A.Mem (((Lda | Ldah) as op), ra, disp, rb) -> (
      let d = Int64.of_int (match op with Ldah -> disp * 65536 | _ -> disp) in
      let dst = norm_wreg ra in
      match reg_loc rb with
      | L_const cb -> Superop.M_alu (mov_alu ([| Int64.add cb d |], 0) dst)
      | L_reg ib ->
        Superop.M_alu (bin_alu Int64.add (regs, ib) ([| d |], 0) dst))
    | A.Mem (((Ldq | Ldl | Ldwu | Ldbu) as op), ra, disp, rb) ->
      let amask = match op with Ldq -> 7 | Ldl -> 3 | Ldwu -> 1 | _ -> 0 in
      let ld : Memory.t -> int -> int64 =
        match op with
        | Ldq -> Memory.get_i64
        | Ldl ->
          fun m a ->
            Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 m a)))
        | Ldwu -> fun m a -> Int64.of_int (Memory.get_u16 m a)
        | _ -> fun m a -> Int64.of_int (Memory.get_u8 m a)
      in
      let xb, ib = cell (reg_loc rb) in
      let xd, id_ = norm_wreg ra in
      Superop.M_ld
        {
          Superop.l_ld = ld;
          l_amask = amask;
          l_xb = xb;
          l_ib = ib;
          l_disp = disp;
          l_mem = mem;
          l_xd = xd;
          l_id = id_;
          l_wp = false;
          l_xp = sinkb;
          l_ip = 0;
          l_we = false;
          l_xe = sink64;
          l_ie = 0;
        }
    | A.Mem (((Stq | Stl | Stw | Stb) as op), ra, disp, rb) ->
      let amask = match op with Stq -> 7 | Stl -> 3 | Stw -> 1 | _ -> 0 in
      let st_ : Memory.t -> int -> int64 -> unit =
        match op with
        | Stq -> Memory.set_i64
        | Stl ->
          fun m a v ->
            Memory.set_u32 m a (Int64.to_int (Int64.logand v 0xffffffffL))
        | Stw ->
          fun m a v ->
            Memory.set_u16 m a (Int64.to_int (Int64.logand v 0xffffL))
        | _ ->
          fun m a v -> Memory.set_u8 m a (Int64.to_int (Int64.logand v 0xffL))
      in
      let xv, iv = cell (reg_loc ra) in
      let xb, ib = cell (reg_loc rb) in
      Superop.M_st
        {
          Superop.s_st = st_;
          s_amask = amask;
          s_xv = xv;
          s_iv = iv;
          s_xb = xb;
          s_ib = ib;
          s_disp = disp;
          s_mem = mem;
        }
    | A.Opr (op, ra, operand, rc) when not (A.is_cmov insn) -> (
      let dst = norm_wreg rc in
      match (reg_loc ra, operand_loc operand) with
      | L_const ca, L_const cb ->
        Superop.M_alu (mov_alu ([| (Alpha.Insn.eval_fn op) ca cb |], 0) dst)
      | la, lb ->
        Superop.M_alu (bin_alu (Alpha.Insn.eval_fn op) (cell la) (cell lb) dst)
      )
    | A.Lta (ra, v) ->
      Superop.M_alu (mov_alu ([| Int64.of_int v |], 0) (norm_wreg ra))
    | _ ->
      (* cmov, vbase, dual-RAS push: keep the slot's compiled op *)
      Superop.M_op (if sl = entry then orig else Array.unsafe_get t.ops sl)
  in
  let last_is_seq =
    match ctrl_of_insn (insn_at fin) with Region.C_seq -> true | _ -> false
  in
  let n_mids = if last_is_seq then len else len - 1 in
  let micros = Array.init n_mids micro_at in
  let term_plain : op =
    if last_is_seq then fun t -> dispatch_term t nfin
    else
      let top = if fin = entry then orig else Array.unsafe_get t.ops fin in
      fun t -> dispatch_term t (top t)
  in
  let mids_end, term, bc_fused =
    if last_is_seq || n_mids = 0 then (n_mids, term_plain, false)
    else
      match (insn_at fin, micros.(n_mids - 1)) with
      | A.Bc (c, ra, target), Superop.M_alu u
        when u.Superop.u_xd == regs
             && u.Superop.u_id = ra
             && Superop.enabled tbl shapes ~pos:(len - 2) ~len:2 ->
        let cf = Alpha.Insn.cond_fn c in
        let seg : op =
          match Tcache.Straight.frag_of_entry tc target with
          | Some f ->
            fun t ->
              Superop.alu_step u;
              if cf (Array.unsafe_get regs ra) then begin
                enter_fragment t f;
                dispatch_term t target
              end
              else dispatch_term t nfin
          | None ->
            fun t ->
              Superop.alu_step u;
              dispatch_term t
                (if cf (Array.unsafe_get regs ra) then target else nfin)
        in
        (n_mids - 1, seg, true)
      | _ -> (n_mids, term_plain, false)
  in
  let body, hits =
    Superop.fuse_segments tbl shapes micros ~mids_end
      ~next_of:(fun i -> s0 + i + 1)
      ~fh:make_fault ~unw:make_unwind ~term
  in
  let hits = if bc_fused then hits + 1 else hits in
  if hits > 0 then Obs.bump c_superop_idiom_hits hits;
  Obs.observe h_fused_slots len;
  let ba = rg.b_alpha.(b) and bcyc = rg.b_cyc.(b) in
  let base = b * Region.n_classes in
  let n0 = rg.b_cls.(base) and n1 = rg.b_cls.(base + 1) in
  let n2 = rg.b_cls.(base + 2) and n3 = rg.b_cls.(base + 3) in
  let blen = len in
  fun t ->
    if t.budget <= ba then begin
      Obs.bump c_region_exits 1;
      s0
    end
    else begin
      t.budget <- t.budget - ba;
      let st = t.stats in
      st.i_exec <- st.i_exec + blen;
      st.alpha_retired <- st.alpha_retired + ba;
      st.st_cycles <- st.st_cycles + bcyc;
      let by = st.by_class in
      Array.unsafe_set by 0 (Array.unsafe_get by 0 + n0);
      Array.unsafe_set by 1 (Array.unsafe_get by 1 + n1);
      Array.unsafe_set by 2 (Array.unsafe_get by 2 + n2);
      Array.unsafe_set by 3 (Array.unsafe_get by 3 + n3);
      body t
    end

(* Single source of truth for fragment-entry accounting (see Exec_acc). *)
and enter_fragment t (f : Tcache.frag) =
  f.exec_count <- f.exec_count + 1;
  t.stats.frag_enters <- t.stats.frag_enters + 1;
  if f.exec_count >= t.rthreshold && f.region_state = 0 then promote t f

let enter_dynamic t target =
  let tc = t.ctx.tc in
  let id = Tcache.Straight.frag_id_of_entry tc target in
  if id >= 0 then enter_fragment t (Tcache.Straight.frag_by_id tc id)

let check_slot t n =
  if n < 0 || n >= t.ops_len then
    invalid_arg "exec_straight: indirect transfer to an invalid slot";
  n

let check_static t ~slot target =
  if target < 0 || target >= Tcache.Straight.n_slots t.ctx.tc then
    invalid_arg
      (Printf.sprintf "exec_straight: slot %d branches to invalid slot %d"
         slot target)

(* Compile one cache slot to its work closure; per-slot statistics and the
   budget decrement live in the trampoline (see Exec_acc). *)
let compile t s : op =
  let tc = t.ctx.tc in
  let insn = Tcache.Straight.get tc s in
  let st = t.stats in
  let next = s + 1 in
  let regs = t.interp.regs in
  match insn with
    | A.Mem (((Lda | Ldah) as op), ra, disp, rb) -> (
      let d =
        Int64.of_int (match op with Ldah -> disp * 65536 | _ -> disp)
      in
      match (wreg_loc ra, reg_loc rb) with
      | None, _ -> fun _ -> next
      | Some ia, L_reg ib ->
        fun _ ->
          Array.unsafe_set regs ia (Int64.add (Array.unsafe_get regs ib) d);
          next
      | Some ia, L_const cb ->
        let v = Int64.add cb d in
        fun _ ->
          Array.unsafe_set regs ia v;
          next)
    | A.Mem (((Ldq | Ldl | Ldwu | Ldbu) as op), ra, disp, rb) -> (
      let mem = t.interp.mem in
      let amask =
        match op with Ldq -> 7 | Ldl -> 3 | Ldwu -> 1 | _ -> 0
      in
      let ld : int -> int64 =
        match op with
        | Ldq -> Memory.get_i64 mem
        | Ldl ->
          fun a ->
            Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem a)))
        | Ldwu -> fun a -> Int64.of_int (Memory.get_u16 mem a)
        | _ -> fun a -> Int64.of_int (Memory.get_u8 mem a)
      in
      match (wreg_loc ra, reg_loc rb) with
      | Some ia, L_reg ib ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get regs ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              Array.unsafe_set regs ia v;
              next
            | exception Memory.Fault _ -> faulted t s)
      | dst, base ->
        (* rare shapes (zero base / discarded destination); faults and
           alignment checks must still surface *)
        let gb =
          match base with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        let w =
          match dst with
          | Some i -> fun v -> Array.unsafe_set regs i v
          | None -> fun _ -> ()
        in
        fun t ->
          let addr = (Int64.to_int (gb ()) + disp) land addr_mask in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              w v;
              next
            | exception Memory.Fault _ -> faulted t s))
    | A.Mem (((Stq | Stl | Stw | Stb) as op), ra, disp, rb) -> (
      let mem = t.interp.mem in
      let amask = match op with Stq -> 7 | Stl -> 3 | Stw -> 1 | _ -> 0 in
      let st_ : int -> int64 -> unit =
        match op with
        | Stq -> Memory.set_i64 mem
        | Stl ->
          fun a v ->
            Memory.set_u32 mem a (Int64.to_int (Int64.logand v 0xffffffffL))
        | Stw ->
          fun a v -> Memory.set_u16 mem a (Int64.to_int (Int64.logand v 0xffffL))
        | _ ->
          fun a v -> Memory.set_u8 mem a (Int64.to_int (Int64.logand v 0xffL))
      in
      match (reg_loc ra, reg_loc rb) with
      | L_reg iv, L_reg ib ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get regs ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match st_ addr (Array.unsafe_get regs iv) with
            | () -> next
            | exception Memory.Fault _ -> faulted t s)
      | value, base ->
        let gv =
          match value with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        let gb =
          match base with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        fun t ->
          let addr = (Int64.to_int (gb ()) + disp) land addr_mask in
          if addr land amask <> 0 then faulted t s
          else (
            match st_ addr (gv ()) with
            | () -> next
            | exception Memory.Fault _ -> faulted t s))
    | A.Opr (op, ra, operand, rc) -> (
      if A.is_cmov insn then
        let c = Alpha.Insn.cond_fn (A.cmov_cond op) in
        let gra = get_fn t ra in
        let gb : unit -> int64 =
          match operand_loc operand with
          | L_reg i -> fun () -> Array.unsafe_get regs i
          | L_const v -> fun () -> v
        in
        match wreg_loc rc with
        | None -> fun _ -> next
        | Some ic ->
          fun _ ->
            if c (gra ()) then Array.unsafe_set regs ic (gb ());
            next
      else
        let f = Alpha.Insn.eval_fn op in
        match (wreg_loc rc, reg_loc ra, operand_loc operand) with
        | None, _, _ -> fun _ -> next
        | Some ic, L_reg ia, L_reg ib ->
          fun _ ->
            Array.unsafe_set regs ic
              (f (Array.unsafe_get regs ia) (Array.unsafe_get regs ib));
            next
        | Some ic, L_reg ia, L_const cb ->
          fun _ ->
            Array.unsafe_set regs ic (f (Array.unsafe_get regs ia) cb);
            next
        | Some ic, L_const ca, L_reg ib ->
          fun _ ->
            Array.unsafe_set regs ic (f ca (Array.unsafe_get regs ib));
            next
        | Some ic, L_const ca, L_const cb ->
          let v = f ca cb in
          fun _ ->
            Array.unsafe_set regs ic v;
            next)
    | A.Br (_, target) -> (
      check_static t ~slot:s target;
      match Tcache.Straight.frag_of_entry tc target with
      | Some f ->
        fun t ->
          enter_fragment t f;
          target
      | None -> fun _ -> target)
    | A.Bc (c, ra, target) -> (
      check_static t ~slot:s target;
      let cf = Alpha.Insn.cond_fn c in
      match (Tcache.Straight.frag_of_entry tc target, reg_loc ra) with
      | Some f, L_reg ia ->
        fun t ->
          if cf (Array.unsafe_get regs ia) then begin
            enter_fragment t f;
            target
          end
          else next
      | Some f, L_const cv ->
        let tk = cf cv in
        fun t ->
          if tk then begin
            enter_fragment t f;
            target
          end
          else next
      | None, L_reg ia ->
        fun _ -> if cf (Array.unsafe_get regs ia) then target else next
      | None, L_const cv -> if cf cv then fun _ -> target else fun _ -> next)
    | A.Jump (_, _, rb) ->
      let grb = get_fn t rb in
      fun t ->
        let n = check_slot t (Int64.to_int (grb ())) in
        enter_dynamic t n;
        n
    | A.Lta (ra, v) ->
      let w = wr_fn t ra in
      let v = Int64.of_int v in
      fun _ ->
        w v;
        next
    | A.Push_dras (ra, v_ret, i_ret) ->
      let w = wr_fn t ra in
      let vr = Int64.of_int v_ret in
      (match t.ctx.cfg.chaining with
      | Config.Sw_pred_ras ->
        (* negative [i_ret]: unpatched push, return point untranslated *)
        let i_opt = if i_ret >= 0 then Some i_ret else None in
        let dras = t.dras in
        fun _ ->
          w vr;
          Machine.Dual_ras.push dras ~v_addr:v_ret ~i_addr:i_opt;
          next
      | Config.No_pred | Config.Sw_pred_no_ras ->
        fun _ ->
          w vr;
          next)
    | A.Ret_dras rb ->
      let grb = get_fn t rb in
      let dras = t.dras in
      fun t -> (
        match
          Machine.Dual_ras.pop_verify dras ~v_actual:(Int64.to_int (grb ()))
        with
        | Some i ->
          st.ret_dras_hits <- st.ret_dras_hits + 1;
          let i = check_slot t i in
          enter_dynamic t i;
          i
        | None ->
          st.ret_dras_misses <- st.ret_dras_misses + 1;
          next)
    | A.Set_vbase v ->
      fun t ->
        t.vbase <- v;
        next
    | A.Call_xlate exit_id ->
      let code = ret_exit exit_id in
      fun _ -> code
    | A.Call_xlate_cond (c, ra, exit_id) ->
      let cf = Alpha.Insn.cond_fn c in
      let gra = get_fn t ra in
      let code = ret_exit exit_id in
      fun _ -> if cf (gra ()) then code else next
    | A.Bsr _ | A.Call_pal _ ->
      fun _ -> failwith "exec_straight: untranslatable instruction in cache"

let uncompiled_op : op = fun _ -> failwith "exec_straight: uncompiled slot"

(* Telemetry: same names as Exec_acc (one VM owns one engine kind). *)
let c_compiles = Obs.counter "engine.compiled_slots"
let c_replays = Obs.counter "engine.patch_replays"
let sp_compile = Obs.span "compile_to_closure"

let sync_ops t =
  let tc = t.ctx.tc in
  let gen = Tcache.Straight.generation tc in
  if t.ops_gen <> gen then begin
    t.ops <- [||];
    t.ops_len <- 0;
    t.patch_mark <- 0;
    t.ops_gen <- gen;
    (* the compiled prefix the regions indexed into is gone wholesale *)
    t.regions <- []
  end;
  let n = Tcache.Straight.n_slots tc in
  if n > Array.length t.ops then begin
    let cap = ref (max 1024 (Array.length t.ops)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let grown = Array.make !cap uncompiled_op in
    Array.blit t.ops 0 grown 0 t.ops_len;
    t.ops <- grown;
    let ga = Array.make !cap 0 and gc = Array.make !cap 0 in
    let gy = Array.make !cap 0 in
    Array.blit t.alphas 0 ga 0 t.ops_len;
    Array.blit t.classes 0 gc 0 t.ops_len;
    Array.blit t.cycs 0 gy 0 t.ops_len;
    t.alphas <- ga;
    t.classes <- gc;
    t.cycs <- gy
  end;
  let m = Tcache.Straight.patch_count tc in
  if n > t.ops_len || m > t.patch_mark then
    Obs.with_span sp_compile (fun () ->
        Obs.bump c_compiles (n - t.ops_len);
        for sl = t.ops_len to n - 1 do
          Array.unsafe_set t.ops sl (compile t sl);
          Array.unsafe_set t.alphas sl (Vec.get t.ctx.slot_alpha sl);
          Array.unsafe_set t.classes sl (Vec.get t.ctx.slot_class sl);
          Array.unsafe_set t.cycs sl (Vec.get t.ctx.slot_cyc_ooo sl)
        done;
        t.ops_len <- n;
        (* drop regions covering a patched slot before recompiling it *)
        for i = t.patch_mark to m - 1 do
          invalidate_regions_at t (Tcache.Straight.patched_slot tc i)
        done;
        for i = t.patch_mark to m - 1 do
          let sl = Tcache.Straight.patched_slot tc i in
          if sl < n then begin
            t.ops.(sl) <- compile t sl;
            Obs.bump c_replays 1
          end
        done;
        t.patch_mark <- m)

(* Warm start: pay closure compilation for every restored cache slot up
   front instead of on the first [run] after a snapshot load.
   [hot_entries] feeds the snapshot's hotness profile into region
   tier-up (see Exec_acc). *)
let prewarm ?(hot_entries = []) t =
  sync_ops t;
  List.iter
    (fun slot ->
      match Tcache.Straight.frag_of_entry t.ctx.tc slot with
      | Some f -> promote t f
      | None -> ())
    hot_entries

let region_count t = List.length t.regions

(* Number of live fused blocks across all regions (see Exec_acc). *)
let fused_block_count t =
  List.fold_left (fun acc rc -> acc + Array.length rc.r_bops) 0 t.regions

let run_threaded ?(fuel = max_int) t ~entry : exit =
  t.rthreshold <-
    (match t.ctx.cfg.engine with
    | Config.Region -> t.ctx.cfg.region_threshold
    | Config.Threaded | Config.Matched -> max_int);
  sync_ops t;
  if entry < 0 || entry >= t.ops_len then
    invalid_arg "exec_straight: entry is not a translated slot";
  t.budget <- fuel;
  enter_dynamic t entry;
  let ops = t.ops and alphas = t.alphas and classes = t.classes in
  let cycs = t.cycs in
  let st = t.stats in
  let by_class = st.by_class in
  let rec loop slot =
    st.i_exec <- st.i_exec + 1;
    let cls = Array.unsafe_get classes slot in
    Array.unsafe_set by_class cls (Array.unsafe_get by_class cls + 1);
    let a = Array.unsafe_get alphas slot in
    st.alpha_retired <- st.alpha_retired + a;
    st.st_cycles <- st.st_cycles + Array.unsafe_get cycs slot;
    t.budget <- t.budget - a;
    let n = (Array.unsafe_get ops slot) t in
    if n >= 0 then if t.budget <= 0 then X_fuel else loop n
    else if n = ret_trap then X_trap_recovered
    else X_reason (Vec.get t.ctx.exits (-n - 2))
  in
  loop entry

(* ---------- instrumented (match-based) engine ---------- *)

let run_instrumented ?sink ?(fuel = max_int) t ~entry : exit =
  let tc = t.ctx.tc in
  let get r = Alpha.Interp.get t.interp r in
  let set r v = Alpha.Interp.set t.interp r v in
  let mem = t.interp.mem in
  let budget = ref fuel in
  (* sink-attached runs must stay slot-granular: no region promotion *)
  t.rthreshold <- max_int;
  (match Tcache.Straight.frag_of_entry tc entry with
  | Some f -> enter_fragment t f
  | None -> ());
  let slot = ref entry in
  let result = ref None in
  let running () = match !result with None -> true | Some _ -> false in
  while running () do
    let s = !slot in
    let insn = Tcache.Straight.get tc s in
    let alpha = Vec.get t.ctx.slot_alpha s in
    t.stats.i_exec <- t.stats.i_exec + 1;
    t.stats.by_class.(Vec.get t.ctx.slot_class s) <-
      t.stats.by_class.(Vec.get t.ctx.slot_class s) + 1;
    t.stats.alpha_retired <- t.stats.alpha_retired + alpha;
    t.stats.st_cycles <- t.stats.st_cycles + Vec.get t.ctx.slot_cyc_ooo s;
    budget := !budget - alpha;
    let next = ref (s + 1) in
    let taken = ref false in
    let ea = ref 0 in
    let dras_hit = ref false in
    (try
       (match insn with
       | A.Mem (Lda, ra, disp, rb) -> set ra (Int64.add (get rb) (Int64.of_int disp))
       | A.Mem (Ldah, ra, disp, rb) ->
         set ra (Int64.add (get rb) (Int64.of_int (disp * 65536)))
       | A.Mem (op, ra, disp, rb) ->
         let addr = (Int64.to_int (get rb) + disp) land addr_mask in
         ea := addr;
         let width =
           match op with
           | Ldq | Stq -> 8
           | Ldl | Stl -> 4
           | Ldwu | Stw -> 2
           | _ -> 1
         in
         if addr land (width - 1) <> 0 then raise (Unaligned_s addr);
         (match op with
         | Ldq -> set ra (Memory.get_i64 mem addr)
         | Ldl ->
           set ra (Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem addr))))
         | Ldwu -> set ra (Int64.of_int (Memory.get_u16 mem addr))
         | Ldbu -> set ra (Int64.of_int (Memory.get_u8 mem addr))
         | Stq -> Memory.set_i64 mem addr (get ra)
         | Stl -> Memory.set_u32 mem addr (Int64.to_int (Int64.logand (get ra) 0xffffffffL))
         | Stw -> Memory.set_u16 mem addr (Int64.to_int (Int64.logand (get ra) 0xffffL))
         | Stb -> Memory.set_u8 mem addr (Int64.to_int (Int64.logand (get ra) 0xffL))
         | Lda | Ldah -> assert false)
       | A.Opr (op, ra, operand, rc) ->
         let b = match operand with A.Rb r -> get r | Imm i -> Int64.of_int i in
         if A.is_cmov insn then begin
           if A.cond_true (A.cmov_cond op) (get ra) then set rc b
         end
         else set rc (A.eval_op op (get ra) b)
       | A.Br (_, target) ->
         taken := true;
         next := target
       | A.Bc (c, ra, target) ->
         if A.cond_true c (get ra) then begin
           taken := true;
           next := target
         end
       | A.Jump (_, _, rb) ->
         taken := true;
         next := Int64.to_int (get rb)
       | A.Lta (ra, v) -> set ra (Int64.of_int v)
       | A.Push_dras (ra, v_ret, i_ret) -> (
         set ra (Int64.of_int v_ret);
         (* negative [i_ret]: unpatched push, return point untranslated *)
         match t.ctx.cfg.chaining with
         | Config.Sw_pred_ras ->
           Machine.Dual_ras.push t.dras ~v_addr:v_ret
             ~i_addr:(if i_ret >= 0 then Some i_ret else None)
         | Config.No_pred | Config.Sw_pred_no_ras -> ())
       | A.Ret_dras rb -> (
         let v_actual = Int64.to_int (get rb) in
         match Machine.Dual_ras.pop_verify t.dras ~v_actual with
         | Some i ->
           dras_hit := true;
           t.stats.ret_dras_hits <- t.stats.ret_dras_hits + 1;
           taken := true;
           next := i
         | None -> t.stats.ret_dras_misses <- t.stats.ret_dras_misses + 1)
       | A.Set_vbase v -> t.vbase <- v
       | A.Call_xlate exit_id ->
         result := Some (X_reason (Vec.get t.ctx.exits exit_id))
       | A.Call_xlate_cond (c, ra, exit_id) ->
         if A.cond_true c (get ra) then begin
           taken := true;
           result := Some (X_reason (Vec.get t.ctx.exits exit_id))
         end
       | A.Bsr _ | A.Call_pal _ ->
         failwith "exec_straight: untranslatable instruction in cache");
       if !taken && running () then begin
         match Tcache.Straight.frag_of_entry tc !next with
         | Some f -> enter_fragment t f
         | None -> ()
       end
     with
    | Memory.Fault _ | Unaligned_s _ -> (
      (* the faulting V-ISA instruction does not commit here (the VM
         re-executes it by interpretation) — take back its retirement
         credit and the slot's whole static cycle cost; see the matching
         comment in Exec_acc *)
      t.stats.alpha_retired <- t.stats.alpha_retired - 1;
      t.stats.st_cycles <- t.stats.st_cycles - Vec.get t.ctx.slot_cyc_ooo s;
      budget := !budget + 1;
      match Tcache.Straight.pei_at tc s with
      | Some pei ->
        t.interp.pc <- pei.Tcache.pei_v_pc;
        result := Some X_trap_recovered
      | None -> failwith "exec_straight: fault at a slot with no PEI entry"));
    (match sink with
    | Some (f : Machine.Ev.t -> unit) ->
      let base = Tcache.Straight.addr_of tc 0 in
      let addr sl = base + (4 * sl) in
      f
        (Alpha.Trace.ev_of_exec ~dras_hit:!dras_hit ~alpha_count:alpha
           ~pc:(addr s) ~insn ~taken:!taken
           ~target:
             (match !result with
             | Some _ -> addr s + 4
             | None -> addr !next)
           ~ea:!ea ())
    | None -> ());
    if running () then begin
      if !budget <= 0 then result := Some X_fuel else slot := !next
    end
  done;
  Option.get !result

(* ---------- engine selection (see Exec_acc) ---------- *)

let run ?sink ?(fuel = max_int) t ~entry : exit =
  match sink with
  | Some _ -> run_instrumented ?sink ~fuel t ~entry
  | None -> (
    match t.ctx.cfg.engine with
    | Config.Threaded | Config.Region -> run_threaded ~fuel t ~entry
    | Config.Matched -> run_instrumented ~fuel t ~entry)
