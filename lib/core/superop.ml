(* Superop tier: profile-mined idiom tables for block fusion.

   The region tier (lib/core/region.ml) removed the trampoline between
   slots but still pays one indirect OCaml call per cache slot inside a
   block. The superop tier collapses whole basic blocks into single
   specialized closures; on top of the generic straight-line fusion the
   engines apply hand-specialized templates to multi-slot idioms
   (load-op-store chains, address-computation ladders, compare+branch
   pairs).

   Which idioms deserve a template is not guessed: this module mines the
   per-fragment execution-count profiles for recurring slot-shape n-grams
   and ranks them by dynamic weight. At fuse time the ranked table steers
   segmentation — windows matching a mined idiom claim fusion first, and
   the remaining slots fall back to generic straight-line arms — and is
   persisted in the snapshot (format v4), so a warm start fuses with the
   profile's idioms immediately instead of re-deriving them from a cold
   cache.

   Like {!Region}, this module is engine-independent: the engines map
   their cache slots onto the small {!shape} alphabet below (losing
   operand identity but keeping operation class and operand kinds) and
   keep the actual closure templates to themselves. *)

(* Operation class of an ALU slot. Coarser than {!Alpha.Insn.op3}: idiom
   mining needs "address add", "compare", "shift" — the template picked at
   fuse time re-specializes on the concrete operator anyway. *)
type aluk = A_add | A_logic | A_shift | A_cmp | A_mul | A_other

(* Shape of one cache slot, the n-gram alphabet. [Sh_alu]'s second field
   is the operand-kind mask: bit 0 set when operand b is a compile-time
   constant, bit 1 likewise for operand a — `addq acc, #8` and
   `addq acc, gpr` are different idioms with different templates. *)
type shape =
  | Sh_alu of aluk * int
  | Sh_move (* register/accumulator copies, load-target-address *)
  | Sh_cmov (* conditional-move test or select *)
  | Sh_load of int * bool (* width in bytes, signed *)
  | Sh_store of int (* width in bytes *)
  | Sh_bc (* conditional branch *)
  | Sh_ctl (* any other control slot (br, jmp, ret, exit) *)
  | Sh_misc (* remaining sequential slots (vbase, dual-RAS push) *)

let aluk_code = function
  | A_add -> 0
  | A_logic -> 1
  | A_shift -> 2
  | A_cmp -> 3
  | A_mul -> 4
  | A_other -> 5

let aluk_of_code = function
  | 0 -> Some A_add
  | 1 -> Some A_logic
  | 2 -> Some A_shift
  | 3 -> Some A_cmp
  | 4 -> Some A_mul
  | 5 -> Some A_other
  | _ -> None

let aluk_of_op3 (op : Alpha.Insn.op3) =
  match op with
  | Addl | Addq | Subl | Subq | S4addl | S4addq | S8addl | S8addq | S4subl
  | S4subq | S8subl | S8subq ->
    A_add
  | And_ | Bic | Bis | Ornot | Xor | Eqv -> A_logic
  | Sll | Srl | Sra | Extbl | Extwl | Extll | Extql | Extwh | Extlh | Extqh
  | Insbl | Inswl | Insll | Insql | Mskbl | Mskwl | Mskll | Mskql | Zap
  | Zapnot | Sextb | Sextw ->
    A_shift
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule | Cmpbge -> A_cmp
  | Mull | Mulq | Umulh -> A_mul
  | Ctpop | Ctlz | Cttz | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt
  | Cmovlbs | Cmovlbc ->
    A_other

let width_code = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> -1
let width_of_code = function 0 -> 1 | 1 -> 2 | 2 -> 4 | 3 -> 8 | _ -> -1

(* Stable integer coding, the persisted form. Every code fits 6 bits so a
   4-gram packs into one int key. *)
let to_code = function
  | Sh_alu (k, m) -> (aluk_code k * 4) + (m land 3)
  | Sh_move -> 32
  | Sh_cmov -> 33
  | Sh_load (w, signed) ->
    let wc = width_code w in
    if wc < 0 then invalid_arg "Superop.to_code: bad load width";
    40 + (wc * 2) + (if signed then 1 else 0)
  | Sh_store w ->
    let wc = width_code w in
    if wc < 0 then invalid_arg "Superop.to_code: bad store width";
    48 + wc
  | Sh_bc -> 56
  | Sh_ctl -> 57
  | Sh_misc -> 58

let of_code c =
  if c >= 0 && c < 24 then
    match aluk_of_code (c / 4) with
    | Some k -> Some (Sh_alu (k, c land 3))
    | None -> None
  else if c = 32 then Some Sh_move
  else if c = 33 then Some Sh_cmov
  else if c >= 40 && c < 48 then
    Some (Sh_load (width_of_code ((c - 40) / 2), (c - 40) land 1 = 1))
  else if c >= 48 && c < 52 then Some (Sh_store (width_of_code (c - 48)))
  else if c = 56 then Some Sh_bc
  else if c = 57 then Some Sh_ctl
  else if c = 58 then Some Sh_misc
  else None

let shape_name = function
  | Sh_alu (k, m) ->
    let kn =
      match k with
      | A_add -> "add"
      | A_logic -> "logic"
      | A_shift -> "shift"
      | A_cmp -> "cmp"
      | A_mul -> "mul"
      | A_other -> "alu?"
    in
    let oper i = if m land i <> 0 then "#" else "r" in
    Printf.sprintf "%s.%s%s" kn (oper 2) (oper 1)
  | Sh_move -> "mov"
  | Sh_cmov -> "cmov"
  | Sh_load (w, signed) -> Printf.sprintf "ld%d%s" w (if signed then "s" else "")
  | Sh_store w -> Printf.sprintf "st%d" w
  | Sh_bc -> "bc"
  | Sh_ctl -> "ctl"
  | Sh_misc -> "misc"

let pattern_name p = String.concat ";" (Array.to_list (Array.map shape_name p))

(* ---------- n-gram mining ---------- *)

type idiom = { pattern : shape array; weight : int }
type table = idiom array

let max_gram = 4

(* One int key per n-gram: 6 bits per shape code, length disambiguated by
   a leading 1 marker bit. *)
let key_of (p : shape array) ~pos ~len =
  let k = ref 1 in
  for i = pos to pos + len - 1 do
    k := (!k * 64) + to_code p.(i)
  done;
  !k

(* Mine the ranked idiom table from per-fragment profiles: every
   contiguous shape window of length 2..[max_n] inside a fragment counts
   its fragment's execution weight (windows never span fragments —
   neither does a fused block). Ranking is fully deterministic: dynamic
   weight descending, then longer patterns first (so [longest_match]
   prefers them at equal evidence), then code-lexicographic. Windows
   containing non-fusable shapes ([Sh_ctl] anywhere but last, [Sh_misc]
   anywhere) are skipped — no template could ever fire on them. *)
let mine ?(max_n = max_gram) ?(top = 32) (profiles : (shape array * int) list) :
    table =
  let max_n = max 2 (min max_n max_gram) in
  let weights : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  let patterns : (int, shape array) Hashtbl.t = Hashtbl.create 256 in
  let fusable ~last = function
    | Sh_misc -> false
    | Sh_ctl -> false
    | Sh_bc -> last
    | _ -> true
  in
  List.iter
    (fun (shapes, w) ->
      if w > 0 then
        let n = Array.length shapes in
        for pos = 0 to n - 2 do
          let len = ref 2 in
          while !len <= max_n && pos + !len <= n do
            let l = !len in
            let ok = ref true in
            for i = pos to pos + l - 1 do
              if not (fusable ~last:(i = pos + l - 1) shapes.(i)) then
                ok := false
            done;
            if !ok then begin
              let key = key_of shapes ~pos ~len:l in
              match Hashtbl.find_opt weights key with
              | Some r -> r := !r + w
              | None ->
                Hashtbl.replace weights key (ref w);
                Hashtbl.replace patterns key (Array.sub shapes pos l)
            end;
            incr len
          done
        done)
    profiles;
  let all =
    Hashtbl.fold
      (fun key w acc ->
        { pattern = Hashtbl.find patterns key; weight = !w } :: acc)
      weights []
  in
  let codes i = Array.to_list (Array.map to_code i.pattern) in
  let ranked =
    List.sort
      (fun a b ->
        let c = compare b.weight a.weight in
        if c <> 0 then c
        else
          let c = compare (Array.length b.pattern) (Array.length a.pattern) in
          if c <> 0 then c else compare (codes a) (codes b))
      all
  in
  Array.of_list (List.filteri (fun i _ -> i < top) ranked)

(* ---------- fuse-time lookup ---------- *)

let pattern_matches (p : shape array) (shapes : shape array) ~pos =
  let len = Array.length p in
  pos + len <= Array.length shapes
  &&
  let rec go i = i >= len || (p.(i) = shapes.(pos + i) && go (i + 1)) in
  go 0

let enabled (tbl : table) (shapes : shape array) ~pos ~len =
  Array.exists
    (fun i -> Array.length i.pattern = len && pattern_matches i.pattern shapes ~pos)
    tbl

(* Longest enabled idiom starting at [pos], capped to [max_len]; 0 when
   no mined idiom matches there. *)
let longest_match (tbl : table) (shapes : shape array) ~pos ~max_len =
  let best = ref 0 in
  Array.iter
    (fun i ->
      let len = Array.length i.pattern in
      if len > !best && len <= max_len && pattern_matches i.pattern shapes ~pos
      then best := len)
    tbl;
  !best

(* ---------- persistence (snapshot format v4) ---------- *)

let encode_table (tbl : table) : (int array * int) array =
  Array.map (fun i -> (Array.map to_code i.pattern, i.weight)) tbl

(* [None] on any malformed row: unknown shape code, pattern length outside
   [2, max_gram], or a negative weight — the snapshot loader turns that
   into a clean rejection rather than fusing garbage. *)
let decode_table (rows : (int array * int) array) : table option =
  let decode_row (codes, weight) =
    let len = Array.length codes in
    if len < 2 || len > max_gram || weight < 0 then None
    else
      let shapes = Array.map of_code codes in
      if Array.exists Option.is_none shapes then None
      else Some { pattern = Array.map Option.get shapes; weight }
  in
  let rows = Array.map decode_row rows in
  if Array.exists Option.is_none rows then None
  else Some (Array.map Option.get rows)

let pp fmt (tbl : table) =
  Array.iteri
    (fun i idm ->
      Format.fprintf fmt "%2d. %-28s weight %d@." (i + 1)
        (pattern_name idm.pattern) idm.weight)
    tbl

(* ---------- fused-segment machinery ----------

   Shared by both engines. A fused block is one closure built from
   normalized micro-operations: at fuse time every source and destination
   is resolved to a concrete array cell, constants become one-element
   cells, and the per-slot compiled closures disappear. The engine
   supplies the micros, the per-slot fault handlers (which fold the
   block's bulk-statistics refund into one specialized unwind) and the
   terminal; this module supplies the planner and the closure templates.

   The micro records are engine-agnostic on purpose: an accumulator write
   is "store value, clear predicate, echo to a GPR cell", with per-leg
   write flags resolved at fuse time — the straightened backend simply
   clears the predicate/echo flags, making one template set serve both
   executors without paying for legs it does not have. *)

(* Normalized ALU/move micro: v = f a b (or v = a when [u_mov]); then
   dst <- v; pred <- false when [u_wp]; echo <- v when [u_we]. Dead legs
   still point at sink cells, but the write flags let the step skip them
   entirely — an [int64 array] store is a pointer store with a write
   barrier, so a dead echo write is far from free. *)
type ualu = {
  u_mov : bool;
  u_f : int64 -> int64 -> int64; (* unused when [u_mov] *)
  u_xa : int64 array;
  u_ia : int;
  u_xb : int64 array;
  u_ib : int;
  u_xd : int64 array;
  u_id : int;
  u_wp : bool;
  u_xp : bool array;
  u_ip : int;
  u_we : bool;
  u_xe : int64 array;
  u_ie : int;
}

(* Normalized load: addr = (base + disp) & addr-space mask, alignment
   checked against [l_amask], then the same triple write as [ualu]. *)
type uld = {
  l_ld : Machine.Memory.t -> int -> int64;
  l_amask : int;
  l_xb : int64 array;
  l_ib : int;
  l_disp : int;
  l_mem : Machine.Memory.t;
  l_xd : int64 array;
  l_id : int;
  l_wp : bool;
  l_xp : bool array;
  l_ip : int;
  l_we : bool;
  l_xe : int64 array;
  l_ie : int;
}

(* Normalized store. *)
type ust = {
  s_st : Machine.Memory.t -> int -> int64 -> unit;
  s_amask : int;
  s_xv : int64 array;
  s_iv : int;
  s_xb : int64 array;
  s_ib : int;
  s_disp : int;
  s_mem : Machine.Memory.t;
}

(* One cache slot inside a fused block: a normalized micro, or the slot's
   ordinary compiled closure when no normalization exists (cmov,
   dual-RAS push, vbase). ['t] is the engine state threaded through
   compiled ops. *)
type 't micro = M_alu of ualu | M_ld of uld | M_st of ust | M_op of ('t -> int)

(* Guest address-space mask, shared with the engines' compiled ops. *)
let addr_mask = (1 lsl 46) - 1

let[@inline] alu_step (u : ualu) =
  let a = Array.unsafe_get u.u_xa u.u_ia in
  let v = if u.u_mov then a else u.u_f a (Array.unsafe_get u.u_xb u.u_ib) in
  Array.unsafe_set u.u_xd u.u_id v;
  if u.u_wp then Array.unsafe_set u.u_xp u.u_ip false;
  if u.u_we then Array.unsafe_set u.u_xe u.u_ie v

(* Memory steps signal both misalignment and unmapped addresses as
   {!Machine.Memory.Fault}; the templates route either to the slot's
   specialized fault handler. *)
let[@inline] ld_step (l : uld) =
  let addr =
    (Int64.to_int (Array.unsafe_get l.l_xb l.l_ib) + l.l_disp) land addr_mask
  in
  if addr land l.l_amask <> 0 then raise (Machine.Memory.Fault addr);
  let v = l.l_ld l.l_mem addr in
  Array.unsafe_set l.l_xd l.l_id v;
  if l.l_wp then Array.unsafe_set l.l_xp l.l_ip false;
  if l.l_we then Array.unsafe_set l.l_xe l.l_ie v

let[@inline] st_step (s : ust) =
  let addr =
    (Int64.to_int (Array.unsafe_get s.s_xb s.s_ib) + s.s_disp) land addr_mask
  in
  if addr land s.s_amask <> 0 then raise (Machine.Memory.Fault addr);
  s.s_st s.s_mem addr (Array.unsafe_get s.s_xv s.s_iv)

(* ---------- closure templates ----------

   Single-micro segments (always applied — straight-line fusion needs no
   profile evidence) and multi-micro idiom arms, gated by the mined
   table. Kind strings: R = alu/move, L = load, S = store, O = fallback.
   Each arm tail-calls its continuation [k]. *)

let s_r u k t =
  alu_step u;
  k t

let s_l l fh k t =
  match ld_step l with
  | () -> k t
  | exception Machine.Memory.Fault _ -> fh t

let s_s s fh k t =
  match st_step s with
  | () -> k t
  | exception Machine.Memory.Fault _ -> fh t

(* Fallback: run the slot's ordinary compiled closure. Anything but
   fall-through means the op trapped or exited after refunding its own
   slot; the engine-supplied [unw] takes back the never-executed suffix
   and the code escapes to the fused driver's dispatch. *)
let s_o sop nx unw k t =
  let n = sop t in
  if n = nx then k t
  else begin
    unw t;
    n
  end

let s_rr u1 u2 k t =
  alu_step u1;
  alu_step u2;
  k t

let s_rrr u1 u2 u3 k t =
  alu_step u1;
  alu_step u2;
  alu_step u3;
  k t

let s_rrrr u1 u2 u3 u4 k t =
  alu_step u1;
  alu_step u2;
  alu_step u3;
  alu_step u4;
  k t

(* Pure ALU/move runs beyond the mining window — address-computation
   ladders routinely run 5-8 slots, and a run of [R]s can never fault, so
   fusing past [max_gram] costs nothing in unwind complexity. *)
let s_r5 u1 u2 u3 u4 u5 k t =
  alu_step u1;
  alu_step u2;
  alu_step u3;
  alu_step u4;
  alu_step u5;
  k t

let s_r6 u1 u2 u3 u4 u5 u6 k t =
  alu_step u1;
  alu_step u2;
  alu_step u3;
  alu_step u4;
  alu_step u5;
  alu_step u6;
  k t

let s_r7 u1 u2 u3 u4 u5 u6 u7 k t =
  alu_step u1;
  alu_step u2;
  alu_step u3;
  alu_step u4;
  alu_step u5;
  alu_step u6;
  alu_step u7;
  k t

let s_r8 u1 u2 u3 u4 u5 u6 u7 u8 k t =
  alu_step u1;
  alu_step u2;
  alu_step u3;
  alu_step u4;
  alu_step u5;
  alu_step u6;
  alu_step u7;
  alu_step u8;
  k t

let s_lr l u fh k t =
  match ld_step l with
  | () ->
    alu_step u;
    k t
  | exception Machine.Memory.Fault _ -> fh t

let s_rl u l fh k t =
  alu_step u;
  match ld_step l with
  | () -> k t
  | exception Machine.Memory.Fault _ -> fh t

let s_rs u s fh k t =
  alu_step u;
  match st_step s with
  | () -> k t
  | exception Machine.Memory.Fault _ -> fh t

let s_sr s u fh k t =
  match st_step s with
  | () ->
    alu_step u;
    k t
  | exception Machine.Memory.Fault _ -> fh t

let s_ls l s fhl fhs k t =
  match ld_step l with
  | exception Machine.Memory.Fault _ -> fhl t
  | () -> (
    match st_step s with
    | () -> k t
    | exception Machine.Memory.Fault _ -> fhs t)

let s_rrs u1 u2 s fh k t =
  alu_step u1;
  alu_step u2;
  match st_step s with
  | () -> k t
  | exception Machine.Memory.Fault _ -> fh t

let s_rrl u1 u2 l fh k t =
  alu_step u1;
  alu_step u2;
  match ld_step l with
  | () -> k t
  | exception Machine.Memory.Fault _ -> fh t

let s_lrr l u1 u2 fh k t =
  match ld_step l with
  | () ->
    alu_step u1;
    alu_step u2;
    k t
  | exception Machine.Memory.Fault _ -> fh t

let s_lrs l u s fhl fhs k t =
  match ld_step l with
  | exception Machine.Memory.Fault _ -> fhl t
  | () -> (
    alu_step u;
    match st_step s with
    | () -> k t
    | exception Machine.Memory.Fault _ -> fhs t)

let s_rls u l s fhl fhs k t =
  alu_step u;
  match ld_step l with
  | exception Machine.Memory.Fault _ -> fhl t
  | () -> (
    match st_step s with
    | () -> k t
    | exception Machine.Memory.Fault _ -> fhs t)

(* ---------- segment planner and chain emitter ---------- *)

let kind_of = function M_alu _ -> 'R' | M_ld _ -> 'L' | M_st _ -> 'S' | M_op _ -> 'O'

(* Kind strings with a hand-specialized multi-micro arm. Pure-[R] runs
   extend past [max_gram]: they cannot fault, so long ALU ladders fuse
   whole without any extra unwind machinery. *)
let arm_kinds =
  [ "RR"; "RRR"; "RRRR"; "RRRRR"; "RRRRRR"; "RRRRRRR"; "RRRRRRRR"; "LR";
    "RL"; "RS"; "SR"; "LS"; "RRS"; "RRL"; "LRR"; "LRS"; "RLS" ]

(* Longest implemented arm of any kind (the pure-[R] ladder). *)
let max_arm = 8

let has_arm ks = List.mem ks arm_kinds

let kinds_at (micros : 't micro array) off len =
  String.init len (fun j -> kind_of micros.(off + j))

(* Greedy forward segmentation of the block's mid-slots. At each offset
   prefer the longest window that both matches a mined idiom and has an
   implemented arm — profile-hot shapes claim fusion first — and fall
   back to the longest window with an implemented arm, so straight-line
   runs still fuse when the miner has not seen their shape. Else a
   single-micro segment. Returns (offset, length) pairs in block
   order. *)
let plan (tbl : table) (shapes : shape array) (micros : 't micro array)
    ~mids_end =
  let pick i =
    let room = mids_end - i in
    let rec mined l =
      if l < 2 then 0
      else if enabled tbl shapes ~pos:i ~len:l && has_arm (kinds_at micros i l)
      then l
      else mined (l - 1)
    in
    match mined (min max_gram room) with
    | 0 ->
      let rec armed l =
        if l < 2 then 1
        else if has_arm (kinds_at micros i l) then l
        else armed (l - 1)
      in
      armed (min max_arm room)
    | l -> l
  in
  let rec go i acc =
    if i >= mids_end then List.rev acc
    else
      let l = pick i in
      go (i + l) ((i, l) :: acc)
  in
  go 0 []

let emit_one (m : 't micro) fh nx unw k =
  match m with
  | M_alu u -> s_r u k
  | M_ld l -> s_l l fh k
  | M_st s -> s_s s fh k
  | M_op sop -> s_o sop nx unw k

let emit_arm (micros : 't micro array) off ks (fh : int -> 't -> int) k =
  let u j = match micros.(off + j) with M_alu u -> u | _ -> assert false in
  let ld j = match micros.(off + j) with M_ld l -> l | _ -> assert false in
  let st j = match micros.(off + j) with M_st s -> s | _ -> assert false in
  match ks with
  | "RR" -> s_rr (u 0) (u 1) k
  | "RRR" -> s_rrr (u 0) (u 1) (u 2) k
  | "RRRR" -> s_rrrr (u 0) (u 1) (u 2) (u 3) k
  | "RRRRR" -> s_r5 (u 0) (u 1) (u 2) (u 3) (u 4) k
  | "RRRRRR" -> s_r6 (u 0) (u 1) (u 2) (u 3) (u 4) (u 5) k
  | "RRRRRRR" -> s_r7 (u 0) (u 1) (u 2) (u 3) (u 4) (u 5) (u 6) k
  | "RRRRRRRR" -> s_r8 (u 0) (u 1) (u 2) (u 3) (u 4) (u 5) (u 6) (u 7) k
  | "LR" -> s_lr (ld 0) (u 1) (fh off) k
  | "RL" -> s_rl (u 0) (ld 1) (fh (off + 1)) k
  | "RS" -> s_rs (u 0) (st 1) (fh (off + 1)) k
  | "SR" -> s_sr (st 0) (u 1) (fh off) k
  | "LS" -> s_ls (ld 0) (st 1) (fh off) (fh (off + 1)) k
  | "RRS" -> s_rrs (u 0) (u 1) (st 2) (fh (off + 2)) k
  | "RRL" -> s_rrl (u 0) (u 1) (ld 2) (fh (off + 2)) k
  | "LRR" -> s_lrr (ld 0) (u 1) (u 2) (fh off) k
  | "LRS" -> s_lrs (ld 0) (u 1) (st 2) (fh off) (fh (off + 2)) k
  | "RLS" -> s_rls (u 0) (ld 1) (st 2) (fh (off + 1)) (fh (off + 2)) k
  | _ -> assert false

(* Build the fused body for mid-slots [0, mids_end) ending in [term]:
   plan the segmentation, then emit back-to-front so every segment
   captures its continuation directly. [fh i] / [unw i] are the
   engine's specialized fault handler / suffix unwind for the slot at
   block offset [i]; [next_of i] is that slot's fall-through slot index.
   Returns the chain head plus the number of idiom arms applied. *)
let fuse_segments (tbl : table) (shapes : shape array)
    (micros : 't micro array) ~mids_end ~(next_of : int -> int)
    ~(fh : int -> 't -> int) ~(unw : int -> 't -> unit) ~(term : 't -> int) =
  let segs = plan tbl shapes micros ~mids_end in
  let hits =
    List.length
      (List.filter
         (fun (off, l) -> l > 1 && enabled tbl shapes ~pos:off ~len:l)
         segs)
  in
  let body =
    List.fold_left
      (fun k (off, l) ->
        if l = 1 then emit_one micros.(off) (fh off) (next_of off) (unw off) k
        else emit_arm micros off (kinds_at micros off l) fh k)
      term (List.rev segs)
  in
  (body, hits)
