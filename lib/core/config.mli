(** DBT system configuration (paper Section 4.1 defaults). *)

(** Target instruction-set format, paper Sections 2.1 and 2.3. *)
type isa = Basic | Modified

(** Fragment chaining implementation, paper Section 4.3:
    - [No_pred]: every register-indirect transfer goes through the shared
      dispatch code;
    - [Sw_pred_no_ras]: translation-time software target prediction
      (compare-and-branch) for all indirect transfers including returns;
    - [Sw_pred_ras]: software prediction for indirect jumps plus the
      dual-address hardware RAS for returns (the paper's baseline). *)
type chaining = No_pred | Sw_pred_no_ras | Sw_pred_ras

(** Translated-code execution engine for sink-less (functional) runs:
    - [Threaded]: direct-threaded code — each cache slot compiled into a
      specialized closure, executed by a tight trampoline (the default);
    - [Matched]: the instrumented variant-match engine, also always used
      when a timing sink is attached (it alone emits per-instruction
      events). Forcing it here gives a sink-free throughput baseline;
    - [Region]: the threaded engine plus a second compilation tier — hot
      fragments' chain graphs are collapsed into single closures with
      direct intra-region block transfers and bulk retirement/fuel
      accounting (see {!Region}). Observationally identical to
      [Threaded]; a sink still forces [Matched]. *)
type engine = Threaded | Matched | Region

type t = {
  isa : isa;
  chaining : chaining;
  hot_threshold : int;  (** interpretations before a candidate becomes hot *)
  max_superblock : int;  (** maximum V-ISA instructions per superblock *)
  n_accs : int;  (** logical accumulators (4 in the paper, 8 in Fig. 9) *)
  stop_at_translated : bool;
      (** end superblock formation on reaching an existing fragment entry
          (Dynamo-style linking). Not among the paper's ending conditions;
          default off. *)
  fuse_mem : bool;
      (** keep displacements inside I-ISA memory instructions instead of
          splitting address computation — the Section 4.5 option.
          Default off. *)
  engine : engine;
      (** execution engine for sink-less translated execution
          (default [Threaded]). *)
  region_threshold : int;
      (** fragment-entry count that promotes a fragment's chain graph to
          a region under [engine = Region] (default 100). Warm starts
          promote immediately from the snapshot's hotness profile. *)
  region_max_slots : int;
      (** upper bound on total cache slots per region (default 1024);
          successors are also bounded by a fixed guest-address window. *)
  superops : bool;
      (** third compilation tier (under [engine = Region]): fuse each
          promoted block's slot chain into one specialized closure with
          profile-mined idiom templates (see {!Superop}). Observationally
          identical to the unfused region tier; default on. *)
  tcache_max_slots : int;
      (** translation-cache capacity in I-ISA slots: exceeding it after a
          translation triggers a Dynamo-style whole-cache flush (fragments,
          regions, fused blocks, chain patches, RAS) and a rebuild from the
          interpreter. Default [max_int] — effectively unbounded. *)
}

val default : t
(** Modified ISA, dual-RAS chaining, threshold 50, superblock 200, 4
    accumulators — the paper's baseline. *)

val telemetry : bool ref
(** Process-wide telemetry switch, an alias of {!Obs.enabled}: when
    false (the default) every instrumentation point costs one
    load-and-branch and simulation output is byte-identical to an
    uninstrumented build; when true, counters/histograms/spans
    accumulate in the {!Obs} registry for [--telemetry-json] export. *)

val isa_name : isa -> string
val chaining_name : chaining -> string
val engine_name : engine -> string

val fingerprint :
  t -> backend:string -> image_digest:string -> Persist.Snapshot.fingerprint
(** The snapshot compatibility fingerprint for this configuration: every
    field that changes what the translator emits or how translated code
    executes, plus the VM [backend] name ("acc"/"straight") and the
    workload [image_digest]. {!Core.Vm.create}[ ~snapshot] refuses any
    snapshot whose stored fingerprint differs in any field. *)
