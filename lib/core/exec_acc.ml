module Memory = Machine.Memory
module Vec = Machine.Vec
module I = Accisa.Insn

(* Functional execution engines for translated accumulator-ISA code.

   Architected Alpha registers are shared with the interpreter's register
   file (the VM keeps one architected state); accumulators, VM scratch
   registers and the dual-address RAS belong to this engine. Execution
   proceeds slot by slot through the translation cache until a
   call-translator instruction (or a fuel bound) hands control back to the
   VM.

   Two engines execute the same cache:

   - the {e threaded-code} engine (default when no timing sink is
     attached): every cache slot is compiled once into a specialized OCaml
     closure — operand reads, the destination write and the ALU operation
     are resolved to direct array accesses at compile time — and [run] is a
     tight [(Array.unsafe_get ops slot) t] trampoline. A compiled op
     returns the next slot index, or a negative exit sentinel (see
     [ret_trap]/[ret_exit]);
   - the {e instrumented} engine: a per-slot variant match that streams one
     {!Machine.Ev.t} per committed instruction into the timing sink. It is
     selected whenever a sink is attached (only it produces events), or
     when {!Config.t.engine} forces [Matched].

   Both engines maintain the same statistics record, execute the same
   value functions, and are asserted byte-identical by the differential
   tests and the lockstep oracle.

   Precise traps: a memory fault inside a fragment looks up the PEI table
   entry for the faulting slot, restores any architected values still live
   in accumulators via the recorded accumulator map, sets the interpreter's
   PC to the V-ISA instruction, and reports [X_trap_recovered]; the VM then
   re-executes that instruction by interpretation, which raises the
   architectural trap with fully precise state. *)

type stats = {
  mutable i_exec : int; (* I-ISA instructions executed *)
  by_class : int array; (* per Translate.slot_class *)
  mutable alpha_retired : int; (* V-ISA instructions retired in fragments *)
  mutable st_cycles : int;
  (* static cycle cost charged (fast-forward tier): the sum of the
     executed slots' translation-time Ildp annotations, 0 when the VM was
     built without an annotator *)
  mutable frag_enters : int;
  mutable ret_dras_hits : int;
  mutable ret_dras_misses : int;
}

type t = {
  ctx : Translate.ctx;
  interp : Alpha.Interp.t; (* shares architected registers and memory *)
  scratch : int64 array; (* VM registers 32..63 *)
  accs : int64 array;
  preds : bool array; (* conditional-move predicate flag per accumulator *)
  dras : Machine.Dual_ras.t;
  mutable vbase : int;
  stats : stats;
  (* --- threaded-code engine state --- *)
  mutable ops : op array; (* compiled slots [0, ops_len) *)
  mutable alphas : int array; (* per-slot V-ISA retirement, ops-parallel *)
  mutable classes : int array; (* per-slot Translate.slot_class, ops-parallel *)
  mutable cycs : int array; (* per-slot static Ildp cycles, ops-parallel *)
  mutable ops_len : int;
  mutable ops_gen : int; (* Tcache generation the compiled prefix shadows *)
  mutable patch_mark : int; (* patch-log entries already recompiled *)
  mutable budget : int; (* V-ISA retirement budget of the current run *)
  (* --- region tier-up state --- *)
  mutable rthreshold : int;
  (* promotion threshold of the engine currently driving execution:
     [cfg.region_threshold] while the Region trampoline runs, [max_int]
     everywhere else so the instrumented/sink paths never promote *)
  mutable regions : regionc list; (* live regions, for patch invalidation *)
  (* --- superop tier state --- *)
  mutable idioms : Superop.table option;
  (* ranked idiom table gating multi-slot fusion templates: mined lazily
     from the cache's execution-count profile at the first promotion, or
     installed from a snapshot before prewarm. Deliberately survives cache
     flushes — idioms describe the workload, not one cache generation. *)
}

and op = t -> int

and regionc = {
  rg : Region.t;
  r_orig : op; (* the entry slot's slot-granular op, restored on
                  invalidation and used for the entry inside the region *)
  r_bops : op array;
      (* fused per-block closures (superop tier), [||] when the region
         runs unfused; dropped with the region on invalidation *)
}

type exit =
  | X_reason of Exitr.reason
  | X_trap_recovered (* interpreter PC set to the faulting V-instruction *)
  | X_fuel

let create ctx interp =
  Translate.map_vm_memory interp.Alpha.Interp.mem;
  {
    ctx;
    interp;
    scratch = Array.make 32 0L;
    accs = Array.make 8 0L;
    preds = Array.make 8 false;
    dras = Machine.Dual_ras.create ();
    vbase = 0;
    stats =
      {
        i_exec = 0;
        by_class = Array.make 4 0;
        alpha_retired = 0;
        st_cycles = 0;
        frag_enters = 0;
        ret_dras_hits = 0;
        ret_dras_misses = 0;
      };
    ops = [||];
    alphas = [||];
    classes = [||];
    cycs = [||];
    ops_len = 0;
    ops_gen = -1;
    patch_mark = 0;
    budget = 0;
    rthreshold = max_int;
    regions = [];
    idioms = None;
  }

let get_g t g =
  if g < 32 then Alpha.Interp.get t.interp g else t.scratch.(g - 32)

let set_g t g v =
  if g < 32 then Alpha.Interp.set t.interp g v else t.scratch.(g - 32) <- v

let src_val t : I.src -> int64 = function
  | Sacc a -> t.accs.(a)
  | Sgpr g -> get_g t g
  | Simm v -> v

let write_dst t (d : I.dst) v =
  if d.dacc >= 0 then begin
    t.accs.(d.dacc) <- v;
    t.preds.(d.dacc) <- false
  end;
  match d.gdst with Some g -> set_g t g v | None -> ()

(* The dispatch argument register holds the dynamic target V-address when
   the dispatch code misses. *)
let dispatch_target t = Int64.to_int (get_g t Translate.vr_arg)

let addr_mask = 0x3fffffffffff

exception Unaligned_acc of int (* address *)

let load_val mem width signed addr =
  match (width : I.width), signed with
  | W8, _ -> Memory.get_i64 mem addr
  | W4, true ->
    Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem addr)))
  | W4, false -> Int64.of_int (Memory.get_u32 mem addr)
  | W2, _ -> Int64.of_int (Memory.get_u16 mem addr)
  | W1, _ -> Int64.of_int (Memory.get_u8 mem addr)

let store_val mem width addr v =
  match (width : I.width) with
  | W8 -> Memory.set_i64 mem addr v
  | W4 -> Memory.set_u32 mem addr (Int64.to_int (Int64.logand v 0xffffffffL))
  | W2 -> Memory.set_u16 mem addr (Int64.to_int (Int64.logand v 0xffffL))
  | W1 -> Memory.set_u8 mem addr (Int64.to_int (Int64.logand v 0xffL))

(* Apply the PEI-table accumulator map: architected values still living only
   in accumulators are written back to the register file. *)
let apply_pei_map t slot =
  match Tcache.Acc.pei_at t.ctx.tc slot with
  | Some pei ->
    Array.iter
      (fun (a, r) -> Alpha.Interp.set t.interp r t.accs.(a))
      pei.Tcache.acc_map;
    Some pei.pei_v_pc
  | None -> None

(* ---------- threaded-code engine: slot compilation ---------- *)

(* Exit protocol of a compiled op: a return value >= 0 is the next slot;
   [ret_trap] reports a completed PEI repair (interpreter PC already set);
   [ret_exit id] names an entry of [ctx.exits]. *)
let ret_trap = -1
let ret_exit exit_id = -(exit_id + 2)

(* Compile-time operand and destination shapes. After r31 and bounds
   resolution every operand is a constant or one (array, index) cell, and
   every destination is one of four store shapes; the specialized closures
   built from these touch no variants and allocate nothing at run time. *)
type loc = L_arr of int64 array * int | L_const of int64

type wshape =
  | W_acc of int (* accumulator only *)
  | W_acc_gpr of int * int64 array * int (* accumulator + embedded GPR *)
  | W_gpr of int64 array * int (* GPR only *)
  | W_discard (* r31 or no destination at all *)

let src_loc t : I.src -> loc = function
  | Sacc a ->
    if a < 0 || a >= Array.length t.accs then
      invalid_arg "exec_acc: accumulator out of range";
    L_arr (t.accs, a)
  | Sgpr g ->
    if g < 0 || g > 63 then invalid_arg "exec_acc: GPR out of range";
    if g = Alpha.Reg.zero then L_const 0L
    else if g < 32 then L_arr (t.interp.regs, g)
    else L_arr (t.scratch, g - 32)
  | Simm v -> L_const v

(* GPR write cell; [None] when the write is architecturally discarded. *)
let gpr_loc t g =
  if g < 0 || g > 63 then invalid_arg "exec_acc: GPR out of range";
  if g = Alpha.Reg.zero then None
  else if g < 32 then Some (t.interp.regs, g)
  else Some (t.scratch, g - 32)

let dst_shape t (d : I.dst) =
  let acc = d.dacc in
  let gpr = Option.bind d.gdst (gpr_loc t) in
  if acc >= 0 then begin
    if acc >= Array.length t.accs then
      invalid_arg "exec_acc: accumulator out of range";
    match gpr with
    | Some (x, i) -> W_acc_gpr (acc, x, i)
    | None -> W_acc acc
  end
  else match gpr with Some (x, i) -> W_gpr (x, i) | None -> W_discard

(* Closure forms of the shapes, for the generic (cold-ish) arms. *)
let src_fn t s : unit -> int64 =
  match src_loc t s with
  | L_arr (x, i) -> fun () -> Array.unsafe_get x i
  | L_const v -> fun () -> v

let gpr_set_fn t g : (int64 -> unit) option =
  match gpr_loc t g with
  | Some (x, i) -> Some (fun v -> Array.unsafe_set x i v)
  | None -> None

let dst_fn t (d : I.dst) : int64 -> unit =
  match dst_shape t d with
  | W_acc acc ->
    let accs = t.accs and preds = t.preds in
    fun v ->
      Array.unsafe_set accs acc v;
      Array.unsafe_set preds acc false
  | W_acc_gpr (acc, x, i) ->
    let accs = t.accs and preds = t.preds in
    fun v ->
      Array.unsafe_set accs acc v;
      Array.unsafe_set preds acc false;
      Array.unsafe_set x i v
  | W_gpr (x, i) -> fun v -> Array.unsafe_set x i v
  | W_discard -> fun _ -> ()

(* Cold path shared by every compiled load/store: the faulting V-ISA
   instruction does not commit here — the VM re-executes it by
   interpretation — so take back the one retirement credit its slot claimed
   for it (credits for earlier straightened-away instructions folded into
   the same slot did commit and stay counted). *)
let faulted t s =
  t.stats.alpha_retired <- t.stats.alpha_retired - 1;
  t.budget <- t.budget + 1;
  (* unlike the single retirement credit above, the slot's whole static
     cycle cost is refunded: the interpreter re-execution is charged at
     full fidelity by the caller's dynamic-correction path, so leaving any
     static share behind would double-charge the faulting instruction *)
  t.stats.st_cycles <- t.stats.st_cycles - Array.unsafe_get t.cycs s;
  match apply_pei_map t s with
  | Some v_pc ->
    t.interp.pc <- v_pc;
    ret_trap
  | None -> failwith "exec_acc: fault at a slot with no PEI entry"

(* ---------- region tier-up (second compilation tier) ---------- *)

(* Telemetry (names shared with Exec_straight, like the compile metrics
   below: one VM only ever owns one backend). *)
let c_region_compiles = Obs.counter "engine.region_compiles"
let c_region_exits = Obs.counter "engine.region_exits"
let c_region_invalidations = Obs.counter "engine.region_invalidations"

(* Top bound matches the default [region_max_slots] cap (1024); the
   [.saturated] counter reports clipping under a raised cap. *)
let h_region_slots =
  Obs.histogram "engine.region_slots"
    ~bounds:[| 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let sp_region = Obs.span "compile_region"

let ctrl_of_insn : I.t -> Region.ctrl = function
  | I.Br { target } -> Region.C_br target
  | I.Bc { target; _ } -> Region.C_bc target
  | I.Jmp_ind _ -> Region.C_dyn
  | I.Ret_dras _ -> Region.C_dyn_fall
  | I.Call_xlate _ -> Region.C_exit
  | I.Call_xlate_cond _ -> Region.C_cond_exit
  | _ -> Region.C_seq

(* A fault at slot [s] of block [b]: the slots after [s] were charged in
   bulk at block entry but never ran — take their statistics back and
   refund their retirement budget. (The faulting slot's own one-credit
   refund was already performed by [faulted] inside the op.) *)
let unwind_region_suffix t (rg : Region.t) b s =
  let st = t.stats in
  let fin = rg.b_start.(b) + rg.b_len.(b) - 1 in
  for sl = s + 1 to fin do
    let a = Array.unsafe_get t.alphas sl in
    st.i_exec <- st.i_exec - 1;
    let c = Array.unsafe_get t.classes sl in
    st.by_class.(c) <- st.by_class.(c) - 1;
    st.alpha_retired <- st.alpha_retired - a;
    st.st_cycles <- st.st_cycles - Array.unsafe_get t.cycs sl;
    t.budget <- t.budget + a
  done

(* Execute region [rg] from block [b0], charging statistics in bulk at
   block entry — one budget subtraction and a handful of adds per block,
   precomputed to equal exactly what the slot-granular trampoline would
   have charged across the block's slots. A block only runs when the
   remaining budget strictly covers it — bulk execution can therefore
   never overrun a fuel stop the slot-granular engine would have taken;
   on a short budget we return the block-start slot (budget still
   positive) and the trampoline resumes slot-granularly. The return value
   follows the compiled-op protocol. *)
let run_region t (rg : Region.t) (orig : op) b0 : int =
  let ops = t.ops in
  let entry = rg.entry_slot in
  let b_start = rg.b_start and b_len = rg.b_len and b_alpha = rg.b_alpha in
  let b_cyc = rg.b_cyc and b_cls = rg.b_cls in
  let b_fall_slot = rg.b_fall_slot and b_fall_blk = rg.b_fall_blk in
  let b_taken_slot = rg.b_taken_slot and b_taken_blk = rg.b_taken_blk in
  let st = t.stats in
  let by_class = st.by_class in
  let rec block b =
    let ba = Array.unsafe_get b_alpha b in
    if t.budget <= ba then begin
      Obs.bump c_region_exits 1;
      Array.unsafe_get b_start b
    end
    else begin
      t.budget <- t.budget - ba;
      st.i_exec <- st.i_exec + Array.unsafe_get b_len b;
      st.alpha_retired <- st.alpha_retired + ba;
      st.st_cycles <- st.st_cycles + Array.unsafe_get b_cyc b;
      let base = b * Region.n_classes in
      for c = 0 to Region.n_classes - 1 do
        Array.unsafe_set by_class c
          (Array.unsafe_get by_class c + Array.unsafe_get b_cls (base + c))
      done;
      let s0 = Array.unsafe_get b_start b in
      slots b s0 (s0 + Array.unsafe_get b_len b - 1)
    end
  and slots b s fin =
    let op = if s = entry then orig else Array.unsafe_get ops s in
    let n = op t in
    if s >= fin then dispatch b n
    else if n = s + 1 then slots b (s + 1) fin
    else begin
      (* mid-block ops either fall through or fault: [n] is [ret_trap] *)
      unwind_region_suffix t rg b s;
      Obs.bump c_region_exits 1;
      n
    end
  and dispatch b n =
    if n = Array.unsafe_get b_fall_slot b then
      block (Array.unsafe_get b_fall_blk b)
    else if n = Array.unsafe_get b_taken_slot b then
      block (Array.unsafe_get b_taken_blk b)
    else if n >= 0 then begin
      (* dynamic transfer (DRAS return hit, predicted indirect jump):
         continue in-region when the target is a block start *)
      let bi = Region.blk_at rg n in
      if bi >= 0 then block bi
      else begin
        Obs.bump c_region_exits 1;
        n
      end
    end
    else begin
      Obs.bump c_region_exits 1;
      n
    end
  in
  block b0

(* ---------- superop tier (third compilation tier) ---------- *)

(* Telemetry (names shared with Exec_straight, same reasoning as above). *)
let c_superop_fusions = Obs.counter "engine.superop_fusions"
let c_superop_idiom_hits = Obs.counter "engine.superop_idiom_hits"

let h_fused_slots =
  Obs.histogram "engine.fused_block_slots"
    ~bounds:[| 1; 2; 4; 8; 16; 32; 64; 128 |]

(* Slot shape for idiom mining (see {!Superop}): operation class plus
   operand-kind mask, dropping operand identity. Pure — safe to apply to
   any translated slot at any time. *)
let shape_of_insn (insn : I.t) : Superop.shape =
  let const : I.src -> bool = function
    | I.Simm _ -> true
    | I.Sgpr g -> g = Alpha.Reg.zero
    | I.Sacc _ -> false
  in
  match insn with
  | I.Alu { op; a; b; _ } ->
    let m = (if const a then 2 else 0) lor (if const b then 1 else 0) in
    Superop.Sh_alu (Superop.aluk_of_op3 op, m)
  | I.Cmov_test _ | I.Cmov_sel _ -> Superop.Sh_cmov
  | I.Load { width; signed; _ } ->
    Superop.Sh_load (I.bytes_of_width width, signed)
  | I.Store { width; _ } -> Superop.Sh_store (I.bytes_of_width width)
  | I.Lta _ | I.Copy_to_gpr _ | I.Copy_from_gpr _ -> Superop.Sh_move
  | I.Bc _ -> Superop.Sh_bc
  | I.Br _ | I.Jmp_ind _ | I.Ret_dras _ | I.Call_xlate _
  | I.Call_xlate_cond _ ->
    Superop.Sh_ctl
  | I.Set_vbase _ | I.Push_dras _ -> Superop.Sh_misc

(* Mine the ranked idiom table from the cache's per-fragment execution
   counts (every translated fragment that ran contributes its shape
   sequence at its dynamic weight). Lazy: the first promotion — or a
   snapshot save — pays it once; a warm start installs the persisted
   table instead and fuses immediately. *)
let mine_idioms t : Superop.table =
  let tc = t.ctx.tc in
  let profiles =
    List.filter_map
      (fun (f : Tcache.frag) ->
        if f.exec_count <= 0 || f.n_slots <= 0 then None
        else
          Some
            ( Array.init f.n_slots (fun i ->
                  shape_of_insn (Tcache.Acc.get tc (f.entry_slot + i))),
              f.exec_count ))
      (Tcache.Acc.fragments tc)
  in
  Superop.mine profiles

let idiom_table t =
  match t.idioms with
  | Some tbl -> tbl
  | None ->
    let tbl = mine_idioms t in
    t.idioms <- Some tbl;
    tbl

(* Install a (decoded, validated) idiom table — the snapshot warm-start
   path, called before [prewarm] so restored hot regions fuse with the
   profile's idioms. *)
let set_idiom_table t tbl = t.idioms <- Some tbl

(* The closure installed at a promoted fragment's entry slot. The
   trampoline has already charged the entry slot's statistics and budget
   when it calls us, so bulk execution first takes that charge back; when
   the budget cannot strictly cover even the entry block we bail to the
   original op, keeping slot-granular semantics (and guaranteeing
   progress: a bailed entry never re-enters the region with more fuel).
   The fused tier has no central driver loop: each fused block head
   performs its own strict budget check, each fused terminal dispatches
   its in-region successors by direct (mutually tail-recursive) calls
   into the sibling heads, and every exit path — budget bail, memory
   fault, off-region target — bumps the region-exit counter itself, so
   the single bump per exit is preserved without re-crossing a
   dispatcher. *)
let make_region_op t (rg : Region.t) (orig : op) (bops : op array) : op =
  let eb = rg.entry_block in
  let e_alpha = t.alphas.(rg.entry_slot) in
  let e_cls = t.classes.(rg.entry_slot) in
  let e_cyc = t.cycs.(rg.entry_slot) in
  let entry_guard = rg.b_alpha.(eb) - e_alpha in
  let fused = Array.length bops > 0 in
  fun t ->
    if t.budget <= entry_guard then orig t
    else begin
      let st = t.stats in
      st.i_exec <- st.i_exec - 1;
      st.by_class.(e_cls) <- st.by_class.(e_cls) - 1;
      st.alpha_retired <- st.alpha_retired - e_alpha;
      st.st_cycles <- st.st_cycles - e_cyc;
      t.budget <- t.budget + e_alpha;
      if fused then (Array.unsafe_get bops eb) t else run_region t rg orig eb
    end

let slot_in_live_region t slot =
  List.exists (fun rc -> Region.contains rc.rg slot) t.regions

(* Restore the slot-granular entry op of every region containing a patched
   slot: a patch rewrites that slot's control shape, so the precomputed
   block structure is stale. Promotion state returns to 0 — the fragment
   re-promotes on its next entry with the post-patch chain graph. *)
let invalidate_regions_at t sl =
  match t.regions with
  | [] -> ()
  | regions ->
    let stale, live =
      List.partition (fun rc -> Region.contains rc.rg sl) regions
    in
    if stale <> [] then begin
      List.iter
        (fun rc ->
          t.ops.(rc.rg.Region.entry_slot) <- rc.r_orig;
          (match Tcache.Acc.frag_of_entry t.ctx.tc rc.rg.Region.entry_slot with
          | Some f -> f.region_state <- 0
          | None -> ());
          Obs.bump c_region_invalidations 1)
        stale;
      t.regions <- live
    end

(* Promote [f]'s chain graph to a region: build the block structure,
   fuse each block into a superop closure when the tier is enabled,
   install the region closure at the fragment entry, and remember it all
   for patch invalidation. Declines (for the rest of this cache
   generation) when the entry already sits inside a live region — a
   region must never call another region's entry closure mid-block, and
   the slot is already region-accelerated anyway. Mutually recursive
   with [fuse_block]: a fused compare+branch terminal performs
   fragment-entry accounting itself, which is where promotion fires. *)
let rec promote t (f : Tcache.frag) =
  if f.region_state <> 0 then ()
  else if slot_in_live_region t f.entry_slot then f.region_state <- 2
  else begin
    let tc = t.ctx.tc in
    let built =
      Obs.with_span sp_region (fun () ->
          Region.build ~entry:f.entry_slot
            ~frag_at:(fun slot ->
              match Tcache.Acc.frag_of_entry tc slot with
              | Some g when g.region_state <> 1 -> Some (g.n_slots, g.v_start)
              | _ -> None)
            ~ctrl:(fun s -> ctrl_of_insn (Tcache.Acc.get tc s))
            ~alpha:(fun s -> t.alphas.(s))
            ~cyc:(fun s -> t.cycs.(s))
            ~cls:(fun s -> t.classes.(s))
            ~max_slots:t.ctx.cfg.region_max_slots)
    in
    match built with
    | None -> f.region_state <- 2
    | Some rg ->
      let orig = t.ops.(f.entry_slot) in
      let bops =
        if t.ctx.cfg.superops then fuse_region t rg orig else [||]
      in
      t.ops.(f.entry_slot) <- make_region_op t rg orig bops;
      t.regions <- { rg; r_orig = orig; r_bops = bops } :: t.regions;
      f.region_state <- 1;
      Obs.bump c_region_compiles 1;
      Obs.observe h_region_slots rg.total_slots
  end

(* Fuse every block of a freshly built region into one specialized
   closure. Safe to capture per-slot ops and metadata: a live region's
   members never gain another live region's entry op, patches invalidate
   the region before recompiling any member slot, and a generation bump
   drops all regions wholesale. The array is knotted: every block's
   fused terminal captures [bops] itself and dispatches successors
   through it, so intra-region transfers are direct mutually
   tail-recursive calls between the fused heads. *)
and fuse_region t (rg : Region.t) (orig : op) : op array =
  let tbl = idiom_table t in
  let nb = Array.length rg.Region.b_start in
  let bops = Array.make nb (fun (_ : t) -> 0) in
  for b = 0 to nb - 1 do
    bops.(b) <- fuse_block t rg tbl orig bops b
  done;
  Obs.bump c_superop_fusions nb;
  bops

(* Fuse block [b] of region [rg]: normalize each mid-block slot to a
   micro-operation with fuse-time-resolved operand cells, segment the
   micro sequence against the mined idiom table, and emit one closure
   chain (see {!Superop}). The block's bulk statistics charge is folded
   into the head with fuse-time constants; a memory fault mid-chain runs
   a specialized cold closure merging [faulted] with the
   never-executed-suffix unwind — observationally identical, charge for
   charge, to the slot-granular region path. *)
and fuse_block t (rg : Region.t) (tbl : Superop.table) (orig : op)
    (heads : op array) b : op =
  let tc = t.ctx.tc in
  let s0 = rg.b_start.(b) and len = rg.b_len.(b) in
  let fin = s0 + len - 1 in
  let nfin = fin + 1 in
  let entry = rg.entry_slot in
  (* terminal dispatch: resolve an in-region successor to its fused head
     and transfer by direct (tail) call; anything else leaves the region
     with the single exit bump. Comparison order matches the slot-
     granular driver exactly — [Region.no_slot] is [min_int], so absent
     edges can never collide with trap or exit codes. *)
  let fall_slot = rg.b_fall_slot.(b) and fall_blk = rg.b_fall_blk.(b) in
  let taken_slot = rg.b_taken_slot.(b) and taken_blk = rg.b_taken_blk.(b) in
  let dispatch_term t n =
    if n = fall_slot then (Array.unsafe_get heads fall_blk) t
    else if n = taken_slot then (Array.unsafe_get heads taken_blk) t
    else if n >= 0 then begin
      let bi = Region.blk_at rg n in
      if bi >= 0 then (Array.unsafe_get heads bi) t
      else begin
        Obs.bump c_region_exits 1;
        n
      end
    end
    else begin
      Obs.bump c_region_exits 1;
      n
    end
  in
  let insn_at sl = Tcache.Acc.get tc sl in
  let shapes = Array.init len (fun i -> shape_of_insn (insn_at (s0 + i))) in
  (* never-executed-suffix tallies for the fault unwinds: index [i]
     covers block offsets [i+1, len) *)
  let suf_n = Array.make len 0 and suf_a = Array.make len 0 in
  let suf_y = Array.make len 0 in
  let suf_c = Array.make (len * 4) 0 in
  for i = len - 2 downto 0 do
    let sl = s0 + i + 1 in
    suf_n.(i) <- suf_n.(i + 1) + 1;
    suf_a.(i) <- suf_a.(i + 1) + t.alphas.(sl);
    suf_y.(i) <- suf_y.(i + 1) + t.cycs.(sl);
    let base = i * 4 and pbase = (i + 1) * 4 in
    for c = 0 to 3 do
      suf_c.(base + c) <- suf_c.(pbase + c)
    done;
    let cc = t.classes.(sl) in
    suf_c.(base + cc) <- suf_c.(base + cc) + 1
  done;
  (* merged [faulted] + suffix repair for a memory micro at block offset
     [i]: refund the faulting instruction's retirement credit and its
     slot's whole static cycles, take back the bulk-charged statistics of
     the suffix, apply the PEI map. A fault always leaves the region, so
     this closure owns the single region-exit bump. *)
  let make_fault i : op =
    let sl = s0 + i in
    let my_cyc = t.cycs.(sl) in
    let k = suf_n.(i) and sa = suf_a.(i) and sy = suf_y.(i) in
    let c0 = suf_c.(i * 4) and c1 = suf_c.((i * 4) + 1) in
    let c2 = suf_c.((i * 4) + 2) and c3 = suf_c.((i * 4) + 3) in
    match Tcache.Acc.pei_at tc sl with
    | None -> fun _ -> failwith "exec_acc: fault at a slot with no PEI entry"
    | Some pei ->
      let map = pei.Tcache.acc_map and v_pc = pei.pei_v_pc in
      fun t ->
        let st = t.stats in
        st.i_exec <- st.i_exec - k;
        st.alpha_retired <- st.alpha_retired - 1 - sa;
        st.st_cycles <- st.st_cycles - my_cyc - sy;
        t.budget <- t.budget + 1 + sa;
        let by = st.by_class in
        by.(0) <- by.(0) - c0;
        by.(1) <- by.(1) - c1;
        by.(2) <- by.(2) - c2;
        by.(3) <- by.(3) - c3;
        Array.iter
          (fun (a, r) -> Alpha.Interp.set t.interp r t.accs.(a))
          map;
        t.interp.pc <- v_pc;
        Obs.bump c_region_exits 1;
        ret_trap
  in
  (* suffix-only unwind for the fallback micro: the slot's own compiled
     op already refunded its own credit (or exited cleanly). An
     unexpected return from a fallback op leaves the region, so the
     unwind also bumps the exit counter. *)
  let make_unwind i : t -> unit =
    let k = suf_n.(i) and sa = suf_a.(i) and sy = suf_y.(i) in
    let c0 = suf_c.(i * 4) and c1 = suf_c.((i * 4) + 1) in
    let c2 = suf_c.((i * 4) + 2) and c3 = suf_c.((i * 4) + 3) in
    fun t ->
      let st = t.stats in
      st.i_exec <- st.i_exec - k;
      st.alpha_retired <- st.alpha_retired - sa;
      st.st_cycles <- st.st_cycles - sy;
      t.budget <- t.budget + sa;
      let by = st.by_class in
      by.(0) <- by.(0) - c0;
      by.(1) <- by.(1) - c1;
      by.(2) <- by.(2) - c2;
      by.(3) <- by.(3) - c3;
      Obs.bump c_region_exits 1
  in
  (* micro normalization: every write becomes dst <- v; pred <- false;
     echo <- v against concrete cells, with dead legs aimed at per-block
     sink cells and constant operands frozen into one-element cells *)
  let mem = t.interp.mem in
  let sink64 = [| 0L |] and sinkb = [| false |] in
  let cell = function L_arr (x, i) -> (x, i) | L_const v -> ([| v |], 0) in
  let norm_dst d =
    match dst_shape t d with
    | W_acc a -> (t.accs, a, true, t.preds, a, false, sink64, 0)
    | W_acc_gpr (a, x, i) -> (t.accs, a, true, t.preds, a, true, x, i)
    | W_gpr (x, i) -> (x, i, false, sinkb, 0, false, sink64, 0)
    | W_discard -> (sink64, 0, false, sinkb, 0, false, sink64, 0)
  in
  let mov_alu (xa, ia) (xd, id_, wp, xp, ip, we, xe, ie) : Superop.ualu =
    {
      Superop.u_mov = true;
      u_f = (fun a _ -> a);
      u_xa = xa;
      u_ia = ia;
      u_xb = sink64;
      u_ib = 0;
      u_xd = xd;
      u_id = id_;
      u_wp = wp;
      u_xp = xp;
      u_ip = ip;
      u_we = we;
      u_xe = xe;
      u_ie = ie;
    }
  in
  let micro_at i : t Superop.micro =
    let sl = s0 + i in
    match insn_at sl with
    | I.Alu { op; d; a; b } -> (
      let dst = norm_dst d in
      match (src_loc t a, src_loc t b) with
      | L_const ca, L_const cb ->
        Superop.M_alu (mov_alu ([| (Alpha.Insn.eval_fn op) ca cb |], 0) dst)
      | la, lb ->
        let xa, ia = cell la and xb, ib = cell lb in
        let xd, id_, wp, xp, ip, we, xe, ie = dst in
        Superop.M_alu
          {
            Superop.u_mov = false;
            u_f = Alpha.Insn.eval_fn op;
            u_xa = xa;
            u_ia = ia;
            u_xb = xb;
            u_ib = ib;
            u_xd = xd;
            u_id = id_;
            u_wp = wp;
            u_xp = xp;
            u_ip = ip;
            u_we = we;
            u_xe = xe;
            u_ie = ie;
          })
    | I.Lta { d; value } ->
      Superop.M_alu (mov_alu ([| value |], 0) (norm_dst d))
    | I.Copy_from_gpr { d; g } ->
      Superop.M_alu (mov_alu (cell (src_loc t (I.Sgpr g))) (norm_dst d))
    | I.Copy_to_gpr { g; a } ->
      (* GPR-only write: the accumulator and its predicate are untouched *)
      let src = cell (src_loc t (I.Sacc a)) in
      let dst =
        match gpr_loc t g with
        | Some (x, i) -> (x, i, false, sinkb, 0, false, sink64, 0)
        | None -> (sink64, 0, false, sinkb, 0, false, sink64, 0)
      in
      Superop.M_alu (mov_alu src dst)
    | I.Load { width; signed; d; base; disp } ->
      let amask = I.bytes_of_width width - 1 in
      let ld : Memory.t -> int -> int64 =
        match (width, signed) with
        | I.W8, _ -> Memory.get_i64
        | I.W4, true ->
          fun m a ->
            Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 m a)))
        | I.W4, false -> fun m a -> Int64.of_int (Memory.get_u32 m a)
        | I.W2, _ -> fun m a -> Int64.of_int (Memory.get_u16 m a)
        | I.W1, _ -> fun m a -> Int64.of_int (Memory.get_u8 m a)
      in
      let xb, ib = cell (src_loc t base) in
      let xd, id_, wp, xp, ip, we, xe, ie = norm_dst d in
      Superop.M_ld
        {
          Superop.l_ld = ld;
          l_amask = amask;
          l_xb = xb;
          l_ib = ib;
          l_disp = disp;
          l_mem = mem;
          l_xd = xd;
          l_id = id_;
          l_wp = wp;
          l_xp = xp;
          l_ip = ip;
          l_we = we;
          l_xe = xe;
          l_ie = ie;
        }
    | I.Store { width; value; base; disp } ->
      let amask = I.bytes_of_width width - 1 in
      let st_ : Memory.t -> int -> int64 -> unit =
        match width with
        | I.W8 -> Memory.set_i64
        | I.W4 ->
          fun m a v ->
            Memory.set_u32 m a (Int64.to_int (Int64.logand v 0xffffffffL))
        | I.W2 ->
          fun m a v ->
            Memory.set_u16 m a (Int64.to_int (Int64.logand v 0xffffL))
        | I.W1 ->
          fun m a v -> Memory.set_u8 m a (Int64.to_int (Int64.logand v 0xffL))
      in
      let xv, iv = cell (src_loc t value) in
      let xb, ib = cell (src_loc t base) in
      Superop.M_st
        {
          Superop.s_st = st_;
          s_amask = amask;
          s_xv = xv;
          s_iv = iv;
          s_xb = xb;
          s_ib = ib;
          s_disp = disp;
          s_mem = mem;
        }
    | _ ->
      (* cmov pair, vbase, dual-RAS push: keep the slot's compiled op *)
      Superop.M_op (if sl = entry then orig else Array.unsafe_get t.ops sl)
  in
  let last_is_seq =
    match ctrl_of_insn (insn_at fin) with Region.C_seq -> true | _ -> false
  in
  let n_mids = if last_is_seq then len else len - 1 in
  let micros = Array.init n_mids micro_at in
  let term_plain : op =
    if last_is_seq then fun t -> dispatch_term t nfin
    else
      let top = if fin = entry then orig else Array.unsafe_get t.ops fin in
      fun t -> dispatch_term t (top t)
  in
  (* compare+branch terminal fusion: when the mined table contains the
     (alu, bc) 2-gram ending this block and the branch tests exactly the
     accumulator the preceding micro writes, fold both into the terminal
     — the loop latch costs one closure call instead of two *)
  let mids_end, term, bc_fused =
    if last_is_seq || n_mids = 0 then (n_mids, term_plain, false)
    else
      match (insn_at fin, micros.(n_mids - 1)) with
      | I.Bc { cond; v = I.Sacc va; target }, Superop.M_alu u
        when u.Superop.u_xd == t.accs
             && u.Superop.u_id = va
             && Superop.enabled tbl shapes ~pos:(len - 2) ~len:2 ->
        let c = Alpha.Insn.cond_fn cond in
        let accs = t.accs in
        let seg : op =
          match Tcache.Acc.frag_of_entry tc target with
          | Some f ->
            fun t ->
              Superop.alu_step u;
              if c (Array.unsafe_get accs va) then begin
                enter_fragment t f;
                dispatch_term t target
              end
              else dispatch_term t nfin
          | None ->
            fun t ->
              Superop.alu_step u;
              dispatch_term t
                (if c (Array.unsafe_get accs va) then target else nfin)
        in
        (n_mids - 1, seg, true)
      | _ -> (n_mids, term_plain, false)
  in
  let body, hits =
    Superop.fuse_segments tbl shapes micros ~mids_end
      ~next_of:(fun i -> s0 + i + 1)
      ~fh:make_fault ~unw:make_unwind ~term
  in
  let hits = if bc_fused then hits + 1 else hits in
  if hits > 0 then Obs.bump c_superop_idiom_hits hits;
  Obs.observe h_fused_slots len;
  (* block head: the strict budget check (bail to the trampoline at this
     block's start slot when fuel cannot cover the whole block), then the
     bulk statistics charge with fuse-time constants *)
  let ba = rg.b_alpha.(b) and bcyc = rg.b_cyc.(b) in
  let base = b * Region.n_classes in
  let n0 = rg.b_cls.(base) and n1 = rg.b_cls.(base + 1) in
  let n2 = rg.b_cls.(base + 2) and n3 = rg.b_cls.(base + 3) in
  let blen = len in
  fun t ->
    if t.budget <= ba then begin
      Obs.bump c_region_exits 1;
      s0
    end
    else begin
      t.budget <- t.budget - ba;
      let st = t.stats in
    st.i_exec <- st.i_exec + blen;
    st.alpha_retired <- st.alpha_retired + ba;
    st.st_cycles <- st.st_cycles + bcyc;
    let by = st.by_class in
      Array.unsafe_set by 0 (Array.unsafe_get by 0 + n0);
      Array.unsafe_set by 1 (Array.unsafe_get by 1 + n1);
      Array.unsafe_set by 2 (Array.unsafe_get by 2 + n2);
      Array.unsafe_set by 3 (Array.unsafe_get by 3 + n3);
      body t
    end

(* Single source of truth for fragment-entry accounting; region tier-up
   promotion hangs off it. [rthreshold] is [cfg.region_threshold] only
   while the Region engine drives the trampoline — every other path
   (Threaded, Matched, sink-attached instrumented runs) keeps it at
   [max_int] so promotion never fires there. *)
and enter_fragment t (f : Tcache.frag) =
  f.exec_count <- f.exec_count + 1;
  t.stats.frag_enters <- t.stats.frag_enters + 1;
  if f.exec_count >= t.rthreshold && f.region_state = 0 then promote t f

(* Fragment-entry accounting for a dynamic (register-valued) transfer
   target: O(1) probe of the cache's slot-indexed entry map. *)
let enter_dynamic t target =
  let tc = t.ctx.tc in
  let id = Tcache.Acc.frag_id_of_entry tc target in
  if id >= 0 then enter_fragment t (Tcache.Acc.frag_by_id tc id)

(* Dynamic transfer targets are validated here so the trampoline's
   unchecked [ops] indexing stays safe; static targets are validated at
   compile time. *)
let check_slot t n =
  if n < 0 || n >= t.ops_len then
    invalid_arg "exec_acc: indirect transfer to an invalid slot";
  n

let check_static t ~slot target =
  if target < 0 || target >= Tcache.Acc.n_slots t.ctx.tc then
    invalid_arg
      (Printf.sprintf "exec_acc: slot %d branches to invalid slot %d" slot
         target)

(* Compile one cache slot into its specialized closure. Runs after
   translation of the current region is complete, so every static branch
   target exists and the entry status of every existing slot is final
   (entries are declared before their slot is pushed; patches and flushes
   trigger recompilation through the patch log / generation counter). *)
(* Compile one cache slot to its work closure; per-slot statistics and the
   budget decrement live in the trampoline (plain array reads), so the hot
   path pays exactly one indirect call per executed slot. *)
let compile t s : op =
  let tc = t.ctx.tc in
  let insn = Tcache.Acc.get tc s in
  let st = t.stats in
  let next = s + 1 in
  match insn with
    | I.Alu { op; d; a; b } -> (
      let f = Alpha.Insn.eval_fn op in
      let accs = t.accs and preds = t.preds in
      (* fully flattened: one specialized closure per (destination shape x
         operand shapes); the hot path is a handful of unchecked array
         accesses around the pre-matched operator *)
      match (dst_shape t d, src_loc t a, src_loc t b) with
      | W_acc acc, L_arr (xa, ia), L_arr (xb, ib) ->
        fun _ ->
          Array.unsafe_set accs acc
            (f (Array.unsafe_get xa ia) (Array.unsafe_get xb ib));
          Array.unsafe_set preds acc false;
          next
      | W_acc acc, L_arr (xa, ia), L_const cb ->
        fun _ ->
          Array.unsafe_set accs acc (f (Array.unsafe_get xa ia) cb);
          Array.unsafe_set preds acc false;
          next
      | W_acc acc, L_const ca, L_arr (xb, ib) ->
        fun _ ->
          Array.unsafe_set accs acc (f ca (Array.unsafe_get xb ib));
          Array.unsafe_set preds acc false;
          next
      | W_acc acc, L_const ca, L_const cb ->
        let v = f ca cb in
        fun _ ->
          Array.unsafe_set accs acc v;
          Array.unsafe_set preds acc false;
          next
      | W_acc_gpr (acc, xd, id_), L_arr (xa, ia), L_arr (xb, ib) ->
        fun _ ->
          let v = f (Array.unsafe_get xa ia) (Array.unsafe_get xb ib) in
          Array.unsafe_set accs acc v;
          Array.unsafe_set preds acc false;
          Array.unsafe_set xd id_ v;
          next
      | W_acc_gpr (acc, xd, id_), L_arr (xa, ia), L_const cb ->
        fun _ ->
          let v = f (Array.unsafe_get xa ia) cb in
          Array.unsafe_set accs acc v;
          Array.unsafe_set preds acc false;
          Array.unsafe_set xd id_ v;
          next
      | W_acc_gpr (acc, xd, id_), L_const ca, L_arr (xb, ib) ->
        fun _ ->
          let v = f ca (Array.unsafe_get xb ib) in
          Array.unsafe_set accs acc v;
          Array.unsafe_set preds acc false;
          Array.unsafe_set xd id_ v;
          next
      | W_acc_gpr (acc, xd, id_), L_const ca, L_const cb ->
        let v = f ca cb in
        fun _ ->
          Array.unsafe_set accs acc v;
          Array.unsafe_set preds acc false;
          Array.unsafe_set xd id_ v;
          next
      | W_gpr (xd, id_), L_arr (xa, ia), L_arr (xb, ib) ->
        fun _ ->
          Array.unsafe_set xd id_
            (f (Array.unsafe_get xa ia) (Array.unsafe_get xb ib));
          next
      | W_gpr (xd, id_), L_arr (xa, ia), L_const cb ->
        fun _ ->
          Array.unsafe_set xd id_ (f (Array.unsafe_get xa ia) cb);
          next
      | W_gpr (xd, id_), L_const ca, L_arr (xb, ib) ->
        fun _ ->
          Array.unsafe_set xd id_ (f ca (Array.unsafe_get xb ib));
          next
      | W_gpr (xd, id_), L_const ca, L_const cb ->
        let v = f ca cb in
        fun _ ->
          Array.unsafe_set xd id_ v;
          next
      | W_discard, _, _ -> fun _ -> next)
    | I.Cmov_test { cond; d; cv; old } ->
      let c = Alpha.Insn.cond_fn cond in
      let gcv = src_fn t cv and gold = src_fn t old in
      let w = dst_fn t d in
      let da = d.dacc and preds = t.preds in
      if da < 0 || da >= Array.length preds then
        invalid_arg "exec_acc: cmov-test without an accumulator destination";
      fun _ ->
        let p = c (gcv ()) in
        w (gold ());
        Array.unsafe_set preds da p;
        next
    | I.Cmov_sel { d; p; nv } ->
      let pa = match p with I.Sacc a -> a | _ -> assert false in
      if pa < 0 || pa >= Array.length t.preds then
        invalid_arg "exec_acc: cmov-sel predicate out of range";
      let gnv = src_fn t nv in
      let w = dst_fn t d in
      let preds = t.preds and accs = t.accs in
      fun _ ->
        w
          (if Array.unsafe_get preds pa then gnv ()
           else Array.unsafe_get accs pa);
        next
    | I.Load { width; signed; d; base; disp } -> (
      let mem = t.interp.mem in
      let amask = I.bytes_of_width width - 1 in
      let ld : int -> int64 =
        match width, signed with
        | I.W8, _ -> Memory.get_i64 mem
        | I.W4, true ->
          fun a ->
            Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem a)))
        | I.W4, false -> fun a -> Int64.of_int (Memory.get_u32 mem a)
        | I.W2, _ -> fun a -> Int64.of_int (Memory.get_u16 mem a)
        | I.W1, _ -> fun a -> Int64.of_int (Memory.get_u8 mem a)
      in
      let accs = t.accs and preds = t.preds in
      match (dst_shape t d, src_loc t base) with
      | W_acc acc, L_arr (xb, ib) ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get xb ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              Array.unsafe_set accs acc v;
              Array.unsafe_set preds acc false;
              next
            | exception Memory.Fault _ -> faulted t s)
      | W_acc_gpr (acc, xd, id_), L_arr (xb, ib) ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get xb ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              Array.unsafe_set accs acc v;
              Array.unsafe_set preds acc false;
              Array.unsafe_set xd id_ v;
              next
            | exception Memory.Fault _ -> faulted t s)
      | W_gpr (xd, id_), L_arr (xb, ib) ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get xb ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | v ->
              Array.unsafe_set xd id_ v;
              next
            | exception Memory.Fault _ -> faulted t s)
      | W_discard, L_arr (xb, ib) ->
        (* value discarded; address faults must still surface *)
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get xb ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match ld addr with
            | _ -> next
            | exception Memory.Fault _ -> faulted t s)
      | shape, L_const cb ->
        let addr = (Int64.to_int cb + disp) land addr_mask in
        let w = dst_fn t d in
        ignore shape;
        if addr land amask <> 0 then fun t -> faulted t s
        else
          fun t ->
            (match ld addr with
            | v ->
              w v;
              next
            | exception Memory.Fault _ -> faulted t s))
    | I.Store { width; value; base; disp } -> (
      let mem = t.interp.mem in
      let amask = I.bytes_of_width width - 1 in
      let st_ : int -> int64 -> unit =
        match width with
        | I.W8 -> Memory.set_i64 mem
        | I.W4 ->
          fun a v ->
            Memory.set_u32 mem a (Int64.to_int (Int64.logand v 0xffffffffL))
        | I.W2 ->
          fun a v -> Memory.set_u16 mem a (Int64.to_int (Int64.logand v 0xffffL))
        | I.W1 ->
          fun a v -> Memory.set_u8 mem a (Int64.to_int (Int64.logand v 0xffL))
      in
      match (src_loc t value, src_loc t base) with
      | L_arr (xv, iv), L_arr (xb, ib) ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get xb ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match st_ addr (Array.unsafe_get xv iv) with
            | () -> next
            | exception Memory.Fault _ -> faulted t s)
      | L_const cv, L_arr (xb, ib) ->
        fun t ->
          let addr =
            (Int64.to_int (Array.unsafe_get xb ib) + disp) land addr_mask
          in
          if addr land amask <> 0 then faulted t s
          else (
            match st_ addr cv with
            | () -> next
            | exception Memory.Fault _ -> faulted t s)
      | gv_loc, L_const cb ->
        let gv =
          match gv_loc with
          | L_arr (x, i) -> fun () -> Array.unsafe_get x i
          | L_const v -> fun () -> v
        in
        let addr = (Int64.to_int cb + disp) land addr_mask in
        if addr land amask <> 0 then fun t -> faulted t s
        else
          fun t ->
            (match st_ addr (gv ()) with
            | () -> next
            | exception Memory.Fault _ -> faulted t s))
    | I.Copy_to_gpr { g; a } ->
      if a < 0 || a >= Array.length t.accs then
        invalid_arg "exec_acc: accumulator out of range";
      let accs = t.accs in
      (match gpr_set_fn t g with
      | Some set ->
        fun _ ->
          set (Array.unsafe_get accs a);
          next
      | None -> fun _ -> next)
    | I.Copy_from_gpr { d; g } ->
      let gr = src_fn t (I.Sgpr g) in
      let w = dst_fn t d in
      fun _ ->
        w (gr ());
        next
    | I.Br { target } -> (
      check_static t ~slot:s target;
      (* entry status is static: resolve the fragment at compile time *)
      match Tcache.Acc.frag_of_entry tc target with
      | Some f ->
        fun t ->
          enter_fragment t f;
          target
      | None -> fun _ -> target)
    | I.Bc { cond; v; target } -> (
      check_static t ~slot:s target;
      let c = Alpha.Insn.cond_fn cond in
      match (Tcache.Acc.frag_of_entry tc target, src_loc t v) with
      | Some f, L_arr (x, i) ->
        fun t ->
          if c (Array.unsafe_get x i) then begin
            enter_fragment t f;
            target
          end
          else next
      | Some f, L_const cv ->
        let tk = c cv in
        fun t ->
          if tk then begin
            enter_fragment t f;
            target
          end
          else next
      | None, L_arr (x, i) ->
        fun _ -> if c (Array.unsafe_get x i) then target else next
      | None, L_const cv ->
        if c cv then fun _ -> target else fun _ -> next)
    | I.Jmp_ind { v } ->
      let gv = src_fn t v in
      fun t ->
        let n = check_slot t (Int64.to_int (gv ())) in
        enter_dynamic t n;
        n
    | I.Lta { d; value } ->
      let w = dst_fn t d in
      fun _ ->
        w value;
        next
    | I.Set_vbase { vaddr } ->
      fun t ->
        t.vbase <- vaddr;
        next
    | I.Push_dras { g; v_ret; i_ret } ->
      let vr = Int64.of_int v_ret in
      let set =
        match gpr_set_fn t g with Some f -> f | None -> fun _ -> ()
      in
      (match t.ctx.cfg.chaining with
      | Config.Sw_pred_ras ->
        (* an unpatched push (return point untranslated at emission time)
           encodes its missing target as a negative immediate *)
        let i_opt = if i_ret >= 0 then Some i_ret else None in
        let dras = t.dras in
        fun _ ->
          set vr;
          Machine.Dual_ras.push dras ~v_addr:v_ret ~i_addr:i_opt;
          next
      | Config.No_pred | Config.Sw_pred_no_ras ->
        fun _ ->
          set vr;
          next)
    | I.Ret_dras { v } ->
      let gv = src_fn t v in
      let dras = t.dras in
      fun t -> (
        match
          Machine.Dual_ras.pop_verify dras ~v_actual:(Int64.to_int (gv ()))
        with
        | Some i ->
          st.ret_dras_hits <- st.ret_dras_hits + 1;
          let i = check_slot t i in
          enter_dynamic t i;
          i
        | None ->
          (* stale/unpatched pair or empty stack: fall through to the
             dispatch path that follows every dual-RAS return *)
          st.ret_dras_misses <- st.ret_dras_misses + 1;
          next)
    | I.Call_xlate { exit_id } -> (
      let code = ret_exit exit_id in
      (* architected values still in accumulators (PAL exits) *)
      match Tcache.Acc.pei_at tc s with
      | Some pei ->
        let map = pei.Tcache.acc_map in
        fun t ->
          Array.iter
            (fun (a, r) -> Alpha.Interp.set t.interp r t.accs.(a))
            map;
          code
      | None -> fun _ -> code)
    | I.Call_xlate_cond { cond; v; exit_id } ->
      let c = Alpha.Insn.cond_fn cond in
      let gv = src_fn t v in
      let code = ret_exit exit_id in
      fun _ -> if c (gv ()) then code else next

let uncompiled_op : op = fun _ -> failwith "exec_acc: uncompiled slot"

(* Telemetry (names shared with Exec_straight: a VM owns one engine, so
   the registry aggregates whichever backend ran). *)
let c_compiles = Obs.counter "engine.compiled_slots"
let c_replays = Obs.counter "engine.patch_replays"
let sp_compile = Obs.span "compile_to_closure"

(* Lazily (re)build the compiled-op shadow of the translation cache: reset
   on cache flush (generation bump), compile newly pushed slots, then
   recompile every slot patched since the last sync (chaining patches
   rewrite call-translator slots into direct branches). *)
let sync_ops t =
  let tc = t.ctx.tc in
  let gen = Tcache.Acc.generation tc in
  if t.ops_gen <> gen then begin
    t.ops <- [||];
    t.ops_len <- 0;
    t.patch_mark <- 0;
    t.ops_gen <- gen;
    (* the compiled prefix the regions indexed into is gone wholesale *)
    t.regions <- []
  end;
  let n = Tcache.Acc.n_slots tc in
  if n > Array.length t.ops then begin
    let cap = ref (max 1024 (Array.length t.ops)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let grown = Array.make !cap uncompiled_op in
    Array.blit t.ops 0 grown 0 t.ops_len;
    t.ops <- grown;
    let ga = Array.make !cap 0 and gc = Array.make !cap 0 in
    let gy = Array.make !cap 0 in
    Array.blit t.alphas 0 ga 0 t.ops_len;
    Array.blit t.classes 0 gc 0 t.ops_len;
    Array.blit t.cycs 0 gy 0 t.ops_len;
    t.alphas <- ga;
    t.classes <- gc;
    t.cycs <- gy
  end;
  (* compile fresh slots first so late patches to them recompile below *)
  let m = Tcache.Acc.patch_count tc in
  if n > t.ops_len || m > t.patch_mark then
    Obs.with_span sp_compile (fun () ->
        Obs.bump c_compiles (n - t.ops_len);
        for sl = t.ops_len to n - 1 do
          Array.unsafe_set t.ops sl (compile t sl);
          Array.unsafe_set t.alphas sl (Vec.get t.ctx.slot_alpha sl);
          Array.unsafe_set t.classes sl (Vec.get t.ctx.slot_class sl);
          Array.unsafe_set t.cycs sl (Vec.get t.ctx.slot_cyc_ildp sl)
        done;
        t.ops_len <- n;
        (* a patch rewrites a slot's control shape: drop any region whose
           block structure covered it before recompiling, so a region
           entry op is never overwritten by a stale original *)
        for i = t.patch_mark to m - 1 do
          invalidate_regions_at t (Tcache.Acc.patched_slot tc i)
        done;
        for i = t.patch_mark to m - 1 do
          let sl = Tcache.Acc.patched_slot tc i in
          if sl < n then begin
            t.ops.(sl) <- compile t sl;
            Obs.bump c_replays 1
          end
        done;
        t.patch_mark <- m)

(* Warm start: pay closure compilation for every restored cache slot up
   front instead of on the first [run] after a snapshot load.
   [hot_entries] (fragment entry slots, hottest first) feeds the
   snapshot's hotness profile into region tier-up: the loader passes
   every fragment whose persisted [exec_count] crossed the region
   threshold, so known-hot loops run region-compiled from the first warm
   instruction. *)
let prewarm ?(hot_entries = []) t =
  sync_ops t;
  List.iter
    (fun slot ->
      match Tcache.Acc.frag_of_entry t.ctx.tc slot with
      | Some f -> promote t f
      | None -> ())
    hot_entries

let region_count t = List.length t.regions

(* Number of live fused blocks across all regions (0 under
   [cfg.superops = false]); tests assert invalidation drops them. *)
let fused_block_count t =
  List.fold_left (fun acc rc -> acc + Array.length rc.r_bops) 0 t.regions

(* Threaded-code trampoline. Statistics and the budget decrement happen
   here, before the op runs (the fault path refunds the faulting
   instruction's credit). The budget check mirrors the instrumented
   engine's ordering: an exit taken on the very slot that exhausts the
   budget wins over [X_fuel]. *)
let run_threaded ?(fuel = max_int) t ~entry : exit =
  t.rthreshold <-
    (match t.ctx.cfg.engine with
    | Config.Region -> t.ctx.cfg.region_threshold
    | Config.Threaded | Config.Matched -> max_int);
  sync_ops t;
  if entry < 0 || entry >= t.ops_len then
    invalid_arg "exec_acc: entry is not a translated slot";
  t.budget <- fuel;
  enter_dynamic t entry;
  let ops = t.ops and alphas = t.alphas and classes = t.classes in
  let cycs = t.cycs in
  let st = t.stats in
  let by_class = st.by_class in
  let rec loop slot =
    st.i_exec <- st.i_exec + 1;
    let cls = Array.unsafe_get classes slot in
    Array.unsafe_set by_class cls (Array.unsafe_get by_class cls + 1);
    let a = Array.unsafe_get alphas slot in
    st.alpha_retired <- st.alpha_retired + a;
    st.st_cycles <- st.st_cycles + Array.unsafe_get cycs slot;
    t.budget <- t.budget - a;
    let n = (Array.unsafe_get ops slot) t in
    if n >= 0 then if t.budget <= 0 then X_fuel else loop n
    else if n = ret_trap then X_trap_recovered
    else X_reason (Vec.get t.ctx.exits (-n - 2))
  in
  loop entry

(* ---------- instrumented (match-based) engine ---------- *)

(* Execute from [entry] (a slot) until a VM exit. [fuel] bounds the number
   of V-ISA instructions retired. *)
let run_instrumented ?sink ?(fuel = max_int) t ~entry : exit =
  let tc = t.ctx.tc in
  let budget = ref fuel in
  (* sink-attached runs must stay slot-granular: no region promotion *)
  t.rthreshold <- max_int;
  (match Tcache.Acc.frag_of_entry tc entry with
  | Some f -> enter_fragment t f
  | None -> ());
  let slot = ref entry in
  let result = ref None in
  let running () = match !result with None -> true | Some _ -> false in
  while running () do
    let s = !slot in
    let insn = Tcache.Acc.get tc s in
    let alpha = Vec.get t.ctx.slot_alpha s in
    t.stats.i_exec <- t.stats.i_exec + 1;
    t.stats.by_class.(Vec.get t.ctx.slot_class s) <-
      t.stats.by_class.(Vec.get t.ctx.slot_class s) + 1;
    t.stats.alpha_retired <- t.stats.alpha_retired + alpha;
    t.stats.st_cycles <- t.stats.st_cycles + Vec.get t.ctx.slot_cyc_ildp s;
    budget := !budget - alpha;
    let next = ref (s + 1) in
    let taken = ref false in
    let ea = ref 0 in
    let dras_hit = ref false in
    (try
       (match insn with
       | I.Alu { op; d; a; b } ->
         write_dst t d (Alpha.Insn.eval_op op (src_val t a) (src_val t b))
       | I.Cmov_test { cond; d; cv; old } ->
         let p = Alpha.Insn.cond_true cond (src_val t cv) in
         write_dst t d (src_val t old);
         t.preds.(d.dacc) <- p
       | I.Cmov_sel { d; p; nv } ->
         let pa = match p with I.Sacc a -> a | _ -> assert false in
         let v = if t.preds.(pa) then src_val t nv else t.accs.(pa) in
         write_dst t d v
       | I.Load { width; signed; d; base; disp } ->
         let addr = (Int64.to_int (src_val t base) + disp) land addr_mask in
         ea := addr;
         if addr land (I.bytes_of_width width - 1) <> 0 then
           raise (Unaligned_acc addr);
         write_dst t d (load_val t.interp.mem width signed addr)
       | I.Store { width; value; base; disp } ->
         let addr = (Int64.to_int (src_val t base) + disp) land addr_mask in
         ea := addr;
         if addr land (I.bytes_of_width width - 1) <> 0 then
           raise (Unaligned_acc addr);
         store_val t.interp.mem width addr (src_val t value)
       | I.Copy_to_gpr { g; a } -> set_g t g t.accs.(a)
       | I.Copy_from_gpr { d; g } -> write_dst t d (get_g t g)
       | I.Br { target } ->
         taken := true;
         next := target
       | I.Bc { cond; v; target } ->
         if Alpha.Insn.cond_true cond (src_val t v) then begin
           taken := true;
           next := target
         end
       | I.Jmp_ind { v } ->
         taken := true;
         next := Int64.to_int (src_val t v)
       | I.Lta { d; value } -> write_dst t d value
       | I.Set_vbase { vaddr } -> t.vbase <- vaddr
       | I.Push_dras { g; v_ret; i_ret } -> (
         set_g t g (Int64.of_int v_ret);
         (* an unpatched push (return point untranslated at emission time)
            encodes its missing target as a negative immediate *)
         match t.ctx.cfg.chaining with
         | Config.Sw_pred_ras ->
           Machine.Dual_ras.push t.dras ~v_addr:v_ret
             ~i_addr:(if i_ret >= 0 then Some i_ret else None)
         | Config.No_pred | Config.Sw_pred_no_ras -> ())
       | I.Ret_dras { v } -> (
         let v_actual = Int64.to_int (src_val t v) in
         match Machine.Dual_ras.pop_verify t.dras ~v_actual with
         | Some i ->
           dras_hit := true;
           t.stats.ret_dras_hits <- t.stats.ret_dras_hits + 1;
           taken := true;
           next := i
         | None ->
           (* stale/unpatched pair or empty stack: fall through to the
              dispatch path that follows every dual-RAS return *)
           t.stats.ret_dras_misses <- t.stats.ret_dras_misses + 1)
       | I.Call_xlate { exit_id } ->
         (* architected values still in accumulators (PAL exits) *)
         ignore (apply_pei_map t s);
         result := Some (X_reason (Vec.get t.ctx.exits exit_id))
       | I.Call_xlate_cond { cond; v; exit_id } ->
         if Alpha.Insn.cond_true cond (src_val t v) then begin
           taken := true;
           result := Some (X_reason (Vec.get t.ctx.exits exit_id))
         end);
       (* fragment-entry accounting for chained transfers *)
       if !taken && running () then begin
         match Tcache.Acc.frag_of_entry tc !next with
         | Some f -> enter_fragment t f
         | None -> ()
       end
     with
    | Memory.Fault _ | Unaligned_acc _ -> (
      (* The faulting V-ISA instruction does not commit here — the VM
         re-executes it by interpretation — so take back the one
         retirement credit this slot claimed for it. (Credits for earlier
         straightened-away instructions folded into the same slot did
         commit on the way in and stay counted.) The slot's whole static
         cycle cost is refunded — the interpreter re-execution is charged
         at full fidelity, cf. [faulted]. *)
      t.stats.alpha_retired <- t.stats.alpha_retired - 1;
      t.stats.st_cycles <- t.stats.st_cycles - Vec.get t.ctx.slot_cyc_ildp s;
      budget := !budget + 1;
      match apply_pei_map t s with
      | Some v_pc ->
        t.interp.pc <- v_pc;
        result := Some X_trap_recovered
      | None -> failwith "exec_acc: fault at a slot with no PEI entry"));
    (match sink with
    | Some (f : Machine.Ev.t -> unit) ->
      f
        (Accisa.Trace.ev ~dras_hit:!dras_hit
           ~strand_start:(Tcache.Acc.starts_strand tc s)
           ~alpha_count:alpha ~pc:(Tcache.Acc.addr_of tc s) ~ea:!ea
           ~taken:!taken
           ~target:
             (match !result with
             | Some _ -> Tcache.Acc.addr_of tc s + 4
             | None -> Tcache.Acc.addr_of tc !next)
           insn)
    | None -> ());
    if running () then begin
      if !budget <= 0 then result := Some X_fuel else slot := !next
    end
  done;
  Option.get !result

(* ---------- engine selection ---------- *)

(* A timing sink needs per-instruction events, which only the instrumented
   engine produces; sink-less runs take the threaded path unless the
   configuration pins the match engine (throughput baselines). *)
let run ?sink ?(fuel = max_int) t ~entry : exit =
  match sink with
  | Some _ -> run_instrumented ?sink ~fuel t ~entry
  | None -> (
    match t.ctx.cfg.engine with
    | Config.Threaded | Config.Region -> run_threaded ~fuel t ~entry
    | Config.Matched -> run_instrumented ~fuel t ~entry)
