module Memory = Machine.Memory
module Vec = Machine.Vec
module I = Accisa.Insn

(* Functional execution engine for translated accumulator-ISA code.

   Architected Alpha registers are shared with the interpreter's register
   file (the VM keeps one architected state); accumulators, VM scratch
   registers and the dual-address RAS belong to this engine. Execution
   proceeds slot by slot through the translation cache until a
   call-translator instruction (or a fuel bound) hands control back to the
   VM, optionally streaming one {!Machine.Ev.t} per committed instruction
   into a timing sink.

   Precise traps: a memory fault inside a fragment looks up the PEI table
   entry for the faulting slot, restores any architected values still live
   in accumulators via the recorded accumulator map, sets the interpreter's
   PC to the V-ISA instruction, and reports [X_trap_recovered]; the VM then
   re-executes that instruction by interpretation, which raises the
   architectural trap with fully precise state. *)

type stats = {
  mutable i_exec : int; (* I-ISA instructions executed *)
  by_class : int array; (* per Translate.slot_class *)
  mutable alpha_retired : int; (* V-ISA instructions retired in fragments *)
  mutable frag_enters : int;
  mutable ret_dras_hits : int;
  mutable ret_dras_misses : int;
}

type t = {
  ctx : Translate.ctx;
  interp : Alpha.Interp.t; (* shares architected registers and memory *)
  scratch : int64 array; (* VM registers 32..63 *)
  accs : int64 array;
  preds : bool array; (* conditional-move predicate flag per accumulator *)
  dras : Machine.Dual_ras.t;
  mutable vbase : int;
  stats : stats;
}

type exit =
  | X_reason of Exitr.reason
  | X_trap_recovered (* interpreter PC set to the faulting V-instruction *)
  | X_fuel

let create ctx interp =
  Translate.map_vm_memory interp.Alpha.Interp.mem;
  {
    ctx;
    interp;
    scratch = Array.make 32 0L;
    accs = Array.make 8 0L;
    preds = Array.make 8 false;
    dras = Machine.Dual_ras.create ();
    vbase = 0;
    stats =
      {
        i_exec = 0;
        by_class = Array.make 4 0;
        alpha_retired = 0;
        frag_enters = 0;
        ret_dras_hits = 0;
        ret_dras_misses = 0;
      };
  }

let get_g t g =
  if g < 32 then Alpha.Interp.get t.interp g else t.scratch.(g - 32)

let set_g t g v =
  if g < 32 then Alpha.Interp.set t.interp g v else t.scratch.(g - 32) <- v

let src_val t : I.src -> int64 = function
  | Sacc a -> t.accs.(a)
  | Sgpr g -> get_g t g
  | Simm v -> v

let write_dst t (d : I.dst) v =
  if d.dacc >= 0 then begin
    t.accs.(d.dacc) <- v;
    t.preds.(d.dacc) <- false
  end;
  match d.gdst with Some g -> set_g t g v | None -> ()

(* The dispatch argument register holds the dynamic target V-address when
   the dispatch code misses. *)
let dispatch_target t = Int64.to_int (get_g t Translate.vr_arg)

let addr_mask = 0x3fffffffffff

exception Unaligned_acc of int (* address *)

let load_val mem width signed addr =
  match (width : I.width), signed with
  | W8, _ -> Memory.get_i64 mem addr
  | W4, true ->
    Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 mem addr)))
  | W4, false -> Int64.of_int (Memory.get_u32 mem addr)
  | W2, _ -> Int64.of_int (Memory.get_u16 mem addr)
  | W1, _ -> Int64.of_int (Memory.get_u8 mem addr)

let store_val mem width addr v =
  match (width : I.width) with
  | W8 -> Memory.set_i64 mem addr v
  | W4 -> Memory.set_u32 mem addr (Int64.to_int (Int64.logand v 0xffffffffL))
  | W2 -> Memory.set_u16 mem addr (Int64.to_int (Int64.logand v 0xffffL))
  | W1 -> Memory.set_u8 mem addr (Int64.to_int (Int64.logand v 0xffL))

(* Apply the PEI-table accumulator map: architected values still living only
   in accumulators are written back to the register file. *)
let apply_pei_map t slot =
  match Tcache.Acc.pei_at t.ctx.tc slot with
  | Some pei ->
    Array.iter
      (fun (a, r) -> Alpha.Interp.set t.interp r t.accs.(a))
      pei.Tcache.acc_map;
    Some pei.pei_v_pc
  | None -> None

(* Execute from [entry] (a slot) until a VM exit. [fuel] bounds the number
   of V-ISA instructions retired. *)
let run ?sink ?(fuel = max_int) t ~entry : exit =
  let tc = t.ctx.tc in
  let budget = ref fuel in
  (match Tcache.Acc.frag_of_entry tc entry with
  | Some f ->
    f.exec_count <- f.exec_count + 1;
    t.stats.frag_enters <- t.stats.frag_enters + 1
  | None -> ());
  let slot = ref entry in
  let result = ref None in
  while !result = None do
    let s = !slot in
    let insn = Tcache.Acc.get tc s in
    let alpha = Vec.get t.ctx.slot_alpha s in
    t.stats.i_exec <- t.stats.i_exec + 1;
    t.stats.by_class.(Vec.get t.ctx.slot_class s) <-
      t.stats.by_class.(Vec.get t.ctx.slot_class s) + 1;
    t.stats.alpha_retired <- t.stats.alpha_retired + alpha;
    budget := !budget - alpha;
    let next = ref (s + 1) in
    let taken = ref false in
    let ea = ref 0 in
    let dras_hit = ref false in
    (try
       (match insn with
       | I.Alu { op; d; a; b } ->
         write_dst t d (Alpha.Insn.eval_op op (src_val t a) (src_val t b))
       | I.Cmov_test { cond; d; cv; old } ->
         let p = Alpha.Insn.cond_true cond (src_val t cv) in
         write_dst t d (src_val t old);
         t.preds.(d.dacc) <- p
       | I.Cmov_sel { d; p; nv } ->
         let pa = match p with I.Sacc a -> a | _ -> assert false in
         let v = if t.preds.(pa) then src_val t nv else t.accs.(pa) in
         write_dst t d v
       | I.Load { width; signed; d; base; disp } ->
         let addr = (Int64.to_int (src_val t base) + disp) land addr_mask in
         ea := addr;
         if addr land (I.bytes_of_width width - 1) <> 0 then
           raise (Unaligned_acc addr);
         write_dst t d (load_val t.interp.mem width signed addr)
       | I.Store { width; value; base; disp } ->
         let addr = (Int64.to_int (src_val t base) + disp) land addr_mask in
         ea := addr;
         if addr land (I.bytes_of_width width - 1) <> 0 then
           raise (Unaligned_acc addr);
         store_val t.interp.mem width addr (src_val t value)
       | I.Copy_to_gpr { g; a } -> set_g t g t.accs.(a)
       | I.Copy_from_gpr { d; g } -> write_dst t d (get_g t g)
       | I.Br { target } ->
         taken := true;
         next := target
       | I.Bc { cond; v; target } ->
         if Alpha.Insn.cond_true cond (src_val t v) then begin
           taken := true;
           next := target
         end
       | I.Jmp_ind { v } ->
         taken := true;
         next := Int64.to_int (src_val t v)
       | I.Lta { d; value } -> write_dst t d value
       | I.Set_vbase { vaddr } -> t.vbase <- vaddr
       | I.Push_dras { g; v_ret; i_ret } ->
         set_g t g (Int64.of_int v_ret);
         (* an unpatched push (return point untranslated at emission time)
            encodes its missing target as a negative immediate *)
         if t.ctx.cfg.chaining = Config.Sw_pred_ras then
           Machine.Dual_ras.push t.dras ~v_addr:v_ret
             ~i_addr:(if i_ret >= 0 then Some i_ret else None)
       | I.Ret_dras { v } -> (
         let v_actual = Int64.to_int (src_val t v) in
         match Machine.Dual_ras.pop_verify t.dras ~v_actual with
         | Some i ->
           dras_hit := true;
           t.stats.ret_dras_hits <- t.stats.ret_dras_hits + 1;
           taken := true;
           next := i
         | None ->
           (* stale/unpatched pair or empty stack: fall through to the
              dispatch path that follows every dual-RAS return *)
           t.stats.ret_dras_misses <- t.stats.ret_dras_misses + 1)
       | I.Call_xlate { exit_id } ->
         (* architected values still in accumulators (PAL exits) *)
         ignore (apply_pei_map t s);
         result := Some (X_reason (Vec.get t.ctx.exits exit_id))
       | I.Call_xlate_cond { cond; v; exit_id } ->
         if Alpha.Insn.cond_true cond (src_val t v) then begin
           taken := true;
           result := Some (X_reason (Vec.get t.ctx.exits exit_id))
         end);
       (* fragment-entry accounting for chained transfers *)
       if !taken && !result = None then begin
         match Tcache.Acc.frag_of_entry tc !next with
         | Some f ->
           f.exec_count <- f.exec_count + 1;
           t.stats.frag_enters <- t.stats.frag_enters + 1
         | None -> ()
       end
     with
    | Memory.Fault _ | Unaligned_acc _ -> (
      (* The faulting V-ISA instruction does not commit here — the VM
         re-executes it by interpretation — so take back the one
         retirement credit this slot claimed for it. (Credits for earlier
         straightened-away instructions folded into the same slot did
         commit on the way in and stay counted.) *)
      t.stats.alpha_retired <- t.stats.alpha_retired - 1;
      budget := !budget + 1;
      match apply_pei_map t s with
      | Some v_pc ->
        t.interp.pc <- v_pc;
        result := Some X_trap_recovered
      | None -> failwith "exec_acc: fault at a slot with no PEI entry"));
    (match sink with
    | Some (f : Machine.Ev.t -> unit) ->
      f
        (Accisa.Trace.ev ~dras_hit:!dras_hit
           ~strand_start:(Tcache.Acc.starts_strand tc s)
           ~alpha_count:alpha ~pc:(Tcache.Acc.addr_of tc s) ~ea:!ea
           ~taken:!taken
           ~target:
             (if !result <> None then Tcache.Acc.addr_of tc s + 4
              else Tcache.Acc.addr_of tc !next)
           insn)
    | None -> ());
    if !result = None then begin
      if !budget <= 0 then result := Some X_fuel else slot := !next
    end
  done;
  Option.get !result
