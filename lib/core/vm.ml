(* The co-designed VM runtime: interpret/profile -> translate -> execute
   (paper Fig. 1 and Section 3.1).

   The VM owns one architected state (the interpreter's registers + memory,
   shared with the execution engine). Control moves between three modes:

   - interpretation, with trace-start-candidate counters bumped on arrival
     via candidate edges (register-indirect jump targets, backward
     conditional-branch targets, fragment exit targets);
   - superblock formation + translation when a candidate crosses the hot
     threshold (formation itself advances the program, MRET-style);
   - translated-code execution whenever the current PC has a fragment.

   Timing simulation (when a sink is attached) sees only translated-code
   events, and is notified at every mode-switch boundary so it can drain
   its pipeline — exactly the paper's measurement methodology. *)

type kind = Acc | Straight_only

type backend =
  | B_acc of Translate.ctx * Exec_acc.t
  | B_straight of Straighten.ctx * Exec_straight.t

(* How a translated-execution segment ended. Recorded just before the
   [boundary] callback fires, so boundary observers (timing models, the
   differential oracle, coverage accounting) can tell what kind of
   mode-switch they are looking at. *)
type seg =
  | Seg_branch of int  (* fragment exit to an untranslated V-PC *)
  | Seg_pal of int  (* CALL_PAL: VM re-enters the interpreter *)
  | Seg_dispatch_miss  (* dispatch-table miss on an indirect target *)
  | Seg_trap_recovered  (* PEI repair: precise state rebuilt, retry next *)
  | Seg_fuel  (* instruction budget ran out mid-fragment *)

type seg_stats = {
  mutable branch_exits : int;
  mutable pal_exits : int;
  mutable dispatch_misses : int;
  mutable trap_recoveries : int;
  mutable fuel_stops : int;
  mutable flushes : int;
  mutable capacity_flushes : int;  (* flushes forced by tcache_max_slots *)
  mutable region_invalidations : int;  (* promoted regions killed by those *)
  mutable fused_invalidations : int;  (* fused blocks killed by those *)
}

type t = {
  cfg : Config.t;
  prog : Alpha.Program.t; (* retained for the snapshot image digest *)
  interp : Alpha.Interp.t;
  backend : backend;
  counters : (int, int) Hashtbl.t;
  mutable fuel : int;
  mutable interp_insns : int; (* dynamically interpreted V-ISA instructions *)
  mutable superblocks : int;
  segs : seg_stats;
  mutable last_seg : seg option; (* most recent segment end, for observers *)
}

(* Telemetry spans, one per VM phase. Segment-boundary frequency at most
   (never per instruction), and pure load-and-branch while disabled. *)
let sp_translate = Obs.span "translate"
let sp_execute = Obs.span "execute"
let sp_reentry = Obs.span "interp_reentry"
let sp_flush = Obs.span "flush"

(* [create] proper lives below with the snapshot machinery (the [?snapshot]
   path needs the save/restore helpers); this builds the cold state.
   [?annotate] is the fast-forward tier's static cycle annotator
   (typically [Uarch.Fastfwd.annotate]), injected as a closure so [Core]
   never links against the timing models. *)
let create_cold ?annotate ~cfg ~kind prog =
  let interp = Alpha.Interp.create prog in
  let backend =
    match kind with
    | Acc ->
      let ctx = Translate.create ?annotate cfg in
      B_acc (ctx, Exec_acc.create ctx interp)
    | Straight_only ->
      let ctx = Straighten.create ?annotate cfg in
      B_straight (ctx, Exec_straight.create ctx interp)
  in
  { cfg; prog; interp; backend; counters = Hashtbl.create 512; fuel = max_int;
    interp_insns = 0; superblocks = 0;
    segs =
      { branch_exits = 0; pal_exits = 0; dispatch_misses = 0;
        trap_recoveries = 0; fuel_stops = 0; flushes = 0;
        capacity_flushes = 0; region_invalidations = 0;
        fused_invalidations = 0 };
    last_seg = None }

let cost t =
  match t.backend with
  | B_acc (ctx, _) -> ctx.cost
  | B_straight (ctx, _) -> ctx.cost

let is_translated t pc =
  match t.backend with
  | B_acc (ctx, _) -> Tcache.Acc.is_translated ctx.tc pc
  | B_straight (ctx, _) -> Tcache.Straight.is_translated ctx.tc pc

let entry_of t pc =
  match t.backend with
  | B_acc (ctx, _) -> Tcache.Acc.lookup ctx.tc pc
  | B_straight (ctx, _) -> Tcache.Straight.lookup ctx.tc pc

let translate t sb =
  t.superblocks <- t.superblocks + 1;
  Obs.with_span sp_translate (fun () ->
      match t.backend with
      | B_acc (ctx, _) -> Translate.translate ctx t.interp.mem sb
      | B_straight (ctx, _) -> Straighten.translate ctx t.interp.mem sb)

type outcome = Exit of int | Fault of Alpha.Interp.trap | Out_of_fuel

(* Flush the translation cache and restart profiling — the paper's
   Section 4.1 notes that a Dynamo-style flush lets sub-optimal fragments
   (formed from early-phase paths) be rebuilt. Architected state is
   untouched; the dual-address RAS is cleared because its I-addresses died
   with the cache. Safe only between VM steps (the run loop re-enters
   translated code through fresh lookups). *)
let flush t =
  Obs.with_span sp_flush (fun () ->
      (match t.backend with
      | B_acc (ctx, ex) ->
        Translate.flush ctx t.interp.mem;
        Machine.Dual_ras.clear ex.Exec_acc.dras
      | B_straight (ctx, ex) ->
        Straighten.flush ctx t.interp.mem;
        Machine.Dual_ras.clear ex.Exec_straight.dras);
      Hashtbl.reset t.counters;
      t.segs.flushes <- t.segs.flushes + 1)

let dual_ras t =
  match t.backend with
  | B_acc (_, ex) -> ex.Exec_acc.dras
  | B_straight (_, ex) -> ex.Exec_straight.dras

(* Capacity policy (Dynamo-style): a bounded translation cache is flushed
   wholesale the moment a translation pushes it past the configured slot
   budget — fragments, promoted regions and fused blocks all die together
   and the VM rebuilds from the interpreter's profile. Checked after each
   translation (between VM steps, where a flush is safe). The invalidation
   counts are recorded here, at flush time, because the dead regions/fused
   blocks are no longer observable once [flush] returns. *)
let capacity_flush_check t =
  if t.cfg.tcache_max_slots < max_int then begin
    let slots =
      match t.backend with
      | B_acc (ctx, _) -> Tcache.Acc.n_slots ctx.tc
      | B_straight (ctx, _) -> Tcache.Straight.n_slots ctx.tc
    in
    if slots > t.cfg.tcache_max_slots then begin
      let regions, fused =
        match t.backend with
        | B_acc (_, ex) ->
          (Exec_acc.region_count ex, Exec_acc.fused_block_count ex)
        | B_straight (_, ex) ->
          (Exec_straight.region_count ex, Exec_straight.fused_block_count ex)
      in
      t.segs.capacity_flushes <- t.segs.capacity_flushes + 1;
      t.segs.region_invalidations <- t.segs.region_invalidations + regions;
      t.segs.fused_invalidations <- t.segs.fused_invalidations + fused;
      flush t
    end
  end

(* The dual-address RAS is a hardware structure: it observes calls and
   returns executed by the VM's interpreter too (in the real co-designed VM
   the interpreter itself is translated code whose call/return helpers push
   proper pairs). Pushes use the current translation of the return address
   when one exists. *)
let interp_ras_update t (info : Alpha.Interp.exec_info) =
  match t.cfg.chaining with
  | Config.No_pred | Config.Sw_pred_no_ras -> ()
  | Config.Sw_pred_ras -> (
    let dras = dual_ras t in
    match info.insn with
    | Bsr _ | Jump (Jsr, _, _) ->
      let v_ret = info.xpc + 4 in
      Machine.Dual_ras.push dras ~v_addr:v_ret ~i_addr:(entry_of t v_ret)
    | Br (ra, _) when ra <> 31 ->
      let v_ret = info.xpc + 4 in
      Machine.Dual_ras.push dras ~v_addr:v_ret ~i_addr:(entry_of t v_ret)
    | Jump (Ret, _, _) ->
      ignore (Machine.Dual_ras.pop_verify dras ~v_actual:info.next_pc)
    | _ -> ())

(* Every single V-ISA instruction the VM interprets — in the profiling loop,
   on post-PAL reentry, on post-trap-recovery retry — must go through this
   helper so that cost units, the interpreted-instruction counters, the fuel
   budget and the dual-address RAS advance identically on all three paths.
   (The reentry paths once performed a bare [Alpha.Interp.step] and silently
   drifted from the profiling loop's accounting.) *)
let interp_step_accounted t =
  let r = Alpha.Interp.step t.interp in
  (match r with
  | Alpha.Interp.Step info ->
    (* counted only when the instruction retires, keeping all three
       counters (cost model, [t.interp_insns], the interpreter's own
       [icount]) in exact agreement *)
    Cost.tick_interp (cost t) Cost.interp_step;
    (cost t).interp_insns <- (cost t).interp_insns + 1;
    t.interp_insns <- t.interp_insns + 1;
    t.fuel <- t.fuel - 1;
    interp_ras_update t info
  | Halted _ | Trapped _ -> ());
  r

(* Run the program under the VM. [sink] receives translated-code events;
   [boundary] fires at every translated-execution segment end. *)
let run ?sink ?boundary ?(fuel = max_int) t : outcome =
  t.fuel <- fuel;
  let notify_boundary () = match boundary with Some f -> f () | None -> () in
  (* [candidate] is true when the current interpreter PC was reached through
     a candidate-making edge. *)
  let candidate = ref true (* the program entry is a jump target *) in
  let result = ref None in
  (* Hoisted out of [exec_translated] so the segment-rate dispatch below
     allocates no closure while telemetry is off (the span thunk is only
     built when the switch is on). *)
  let exec_backend entry =
    match t.backend with
    | B_acc (_, ex) ->
      let before = ex.stats.alpha_retired in
      let r = Exec_acc.run ?sink ~fuel:t.fuel ex ~entry in
      t.fuel <- t.fuel - (ex.stats.alpha_retired - before);
      (match r with
      | Exec_acc.X_reason reason -> `Reason reason
      | Exec_acc.X_trap_recovered -> `Trap_recovered
      | Exec_acc.X_fuel -> `Fuel)
    | B_straight (_, ex) ->
      let before = ex.stats.alpha_retired in
      let r = Exec_straight.run ?sink ~fuel:t.fuel ex ~entry in
      t.fuel <- t.fuel - (ex.stats.alpha_retired - before);
      (match r with
      | Exec_straight.X_reason reason -> `Reason reason
      | Exec_straight.X_trap_recovered -> `Trap_recovered
      | Exec_straight.X_fuel -> `Fuel)
  in
  let exec_translated entry =
    let exit_ =
      if Obs.on () then Obs.with_span sp_execute (fun () -> exec_backend entry)
      else exec_backend entry
    in
    let seg =
      match exit_ with
      | `Reason (Exitr.R_branch v) ->
        t.segs.branch_exits <- t.segs.branch_exits + 1;
        Seg_branch v
      | `Reason (Exitr.R_pal v) ->
        t.segs.pal_exits <- t.segs.pal_exits + 1;
        Seg_pal v
      | `Reason Exitr.R_dispatch_miss ->
        t.segs.dispatch_misses <- t.segs.dispatch_misses + 1;
        Seg_dispatch_miss
      | `Trap_recovered ->
        t.segs.trap_recoveries <- t.segs.trap_recoveries + 1;
        Seg_trap_recovered
      | `Fuel ->
        t.segs.fuel_stops <- t.segs.fuel_stops + 1;
        Seg_fuel
    in
    t.last_seg <- Some seg;
    notify_boundary ();
    exit_
  in
  let dispatch_target () =
    match t.backend with
    | B_acc (_, ex) -> Exec_acc.dispatch_target ex
    | B_straight (_, ex) -> Exec_straight.dispatch_target ex
  in
  let interp_one () =
    match interp_step_accounted t with
    | Halted c -> result := Some (Exit c)
    | Trapped tr -> result := Some (Fault tr)
    | Step info ->
      candidate :=
        (match info.insn with
        | Jump _ -> true
        | Bc _ | Br _ | Bsr _ -> info.taken && info.next_pc <= info.xpc
        | _ -> false)
  in
  (* Reentry paths (post-PAL, post-trap-recovery) interpret exactly one
     instruction; the next PC is sequential, never a candidate edge. *)
  let reentry_step () = interp_step_accounted t in
  let interp_reentry () =
    match Obs.with_span sp_reentry reentry_step with
    | Halted c -> result := Some (Exit c)
    | Trapped tr -> result := Some (Fault tr)
    | Step _ -> candidate := false
  in
  let running () = match !result with None -> true | Some _ -> false in
  while running () do
    if t.fuel <= 0 then result := Some Out_of_fuel
    else begin
      let pc = t.interp.pc in
      match entry_of t pc with
      | Some entry -> (
        match exec_translated entry with
        | `Reason (Exitr.R_branch v) ->
          t.interp.pc <- v;
          candidate := true
        | `Reason (Exitr.R_pal v_pc) ->
          t.interp.pc <- v_pc;
          interp_reentry ()
        | `Reason Exitr.R_dispatch_miss ->
          t.interp.pc <- dispatch_target ();
          candidate := true
        | `Trap_recovered ->
          (* re-execute the faulting V-ISA instruction by interpretation;
             it raises the architectural trap with precise state (or, if
             the retry succeeds because state was repaired, continues) *)
          interp_reentry ()
        | `Fuel -> result := Some Out_of_fuel)
      | None ->
        if !candidate then begin
          Cost.tick (cost t) Cost.profile_lookup;
          let c = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counters pc) in
          Hashtbl.replace t.counters pc c;
          if c >= t.cfg.hot_threshold then begin
            let before = t.interp.icount in
            let sb, stop =
              Superblock.form
                ~on_step:(interp_ras_update t)
                ~interp:t.interp ~max_size:t.cfg.max_superblock
                ~is_translated:
                  (if t.cfg.stop_at_translated then is_translated t
                   else fun _ -> false)
                ()
            in
            let formed = t.interp.icount - before in
            t.interp_insns <- t.interp_insns + formed;
            t.fuel <- t.fuel - formed;
            Cost.tick_interp (cost t) (formed * Cost.interp_step);
            (cost t).interp_insns <- (cost t).interp_insns + formed;
            (match stop with
            | Superblock.Stop_end ->
              translate t sb;
              capacity_flush_check t
            | Superblock.Stop_halt c -> result := Some (Exit c)
            | Superblock.Stop_trap tr -> result := Some (Fault tr));
            candidate := true
          end
          else begin
            candidate := false;
            interp_one ()
          end
        end
        else interp_one ()
    end
  done;
  Option.get !result

(* ---------- accessors used by tests and the harness ---------- *)

let output t = Alpha.Interp.output t.interp
let reg_checksum t = Alpha.Interp.reg_checksum t.interp
let memory t = t.interp.mem

let acc_exec t =
  match t.backend with B_acc (_, ex) -> Some ex | B_straight _ -> None

let straight_exec t =
  match t.backend with B_straight (_, ex) -> Some ex | B_acc _ -> None

let region_count t =
  match t.backend with
  | B_acc (_, ex) -> Exec_acc.region_count ex
  | B_straight (_, ex) -> Exec_straight.region_count ex

let fused_block_count t =
  match t.backend with
  | B_acc (_, ex) -> Exec_acc.fused_block_count ex
  | B_straight (_, ex) -> Exec_straight.fused_block_count ex

let acc_ctx t =
  match t.backend with B_acc (ctx, _) -> Some ctx | B_straight _ -> None

let straight_ctx t =
  match t.backend with B_straight (ctx, _) -> Some ctx | B_acc _ -> None

(* ---------- telemetry publication ---------- *)

(* The hot paths keep their hand-rolled statistics structs — they are
   what the lockstep oracle's exact-accounting invariants check — and a
   finished run folds them into the registry here, so the telemetry
   export is a view over oracle-validated numbers rather than a second,
   independently drifting set of increments. Call once per completed
   [run]; callers that run a VM several times (repeats) publish each. *)

let c_runs = Obs.counter "vm.runs"
let c_interp_insns = Obs.counter "vm.interp_insns"
let c_superblocks = Obs.counter "vm.superblocks"
let c_seg_branch = Obs.counter "vm.seg.branch_exits"
let c_seg_pal = Obs.counter "vm.seg.pal_exits"
let c_seg_dmiss = Obs.counter "vm.seg.dispatch_misses"
let c_seg_trap = Obs.counter "vm.seg.trap_recoveries"
let c_seg_fuel = Obs.counter "vm.seg.fuel_stops"
let c_flushes = Obs.counter "vm.flushes"
let c_capacity_flushes = Obs.counter "vm.capacity_flushes"
let c_region_invalidations = Obs.counter "vm.flush.region_invalidations"
let c_fused_invalidations = Obs.counter "vm.flush.fused_invalidations"
let c_cost_xunits = Obs.counter "cost.translate_units"
let c_cost_iunits = Obs.counter "cost.interp_units"
let c_cost_xinsns = Obs.counter "cost.translated_insns"
let c_cost_iinsns = Obs.counter "cost.interp_insns"
let c_i_exec = Obs.counter "engine.i_exec"
let c_alpha = Obs.counter "engine.alpha_retired"
let c_frag_enters = Obs.counter "engine.frag_enters"
let c_dras_hits = Obs.counter "engine.ret_dras_hits"
let c_dras_misses = Obs.counter "engine.ret_dras_misses"
let c_dras_overflows = Obs.counter "engine.dras_overflows"

let c_class =
  [|
    Obs.counter "engine.class.core";
    Obs.counter "engine.class.copy";
    Obs.counter "engine.class.chain";
    Obs.counter "engine.class.prologue";
  |]

let c_spills = Obs.counter "translate.acc.spills"
let c_splits = Obs.counter "translate.acc.splits"
let c_i_bytes = Obs.counter "tcache.i_bytes"

let publish_obs t =
  if Obs.on () then begin
    Obs.bump c_runs 1;
    Obs.bump c_interp_insns t.interp_insns;
    Obs.bump c_superblocks t.superblocks;
    Obs.bump c_seg_branch t.segs.branch_exits;
    Obs.bump c_seg_pal t.segs.pal_exits;
    Obs.bump c_seg_dmiss t.segs.dispatch_misses;
    Obs.bump c_seg_trap t.segs.trap_recoveries;
    Obs.bump c_seg_fuel t.segs.fuel_stops;
    Obs.bump c_flushes t.segs.flushes;
    Obs.bump c_capacity_flushes t.segs.capacity_flushes;
    Obs.bump c_region_invalidations t.segs.region_invalidations;
    Obs.bump c_fused_invalidations t.segs.fused_invalidations;
    let cost = cost t in
    Obs.bump c_cost_xunits cost.Cost.translate_units;
    Obs.bump c_cost_iunits cost.Cost.interp_units;
    Obs.bump c_cost_xinsns cost.Cost.translated_insns;
    Obs.bump c_cost_iinsns cost.Cost.interp_insns;
    let i_exec, by_class, alpha, enters, dh, dm =
      match t.backend with
      | B_acc (_, ex) ->
        let s = ex.Exec_acc.stats in
        ( s.i_exec, s.by_class, s.alpha_retired, s.frag_enters,
          s.ret_dras_hits, s.ret_dras_misses )
      | B_straight (_, ex) ->
        let s = ex.Exec_straight.stats in
        ( s.i_exec, s.by_class, s.alpha_retired, s.frag_enters,
          s.ret_dras_hits, s.ret_dras_misses )
    in
    Obs.bump c_i_exec i_exec;
    Obs.bump c_alpha alpha;
    Obs.bump c_frag_enters enters;
    Obs.bump c_dras_hits dh;
    Obs.bump c_dras_misses dm;
    Obs.bump c_dras_overflows (dual_ras t).Machine.Dual_ras.overflows;
    Array.iteri (fun i c -> Obs.bump c_class.(i) c) by_class;
    match t.backend with
    | B_acc (ctx, _) ->
      Obs.bump c_spills ctx.Translate.n_spills;
      Obs.bump c_splits ctx.Translate.n_splits;
      Obs.bump c_i_bytes (Tcache.Acc.total_i_bytes ctx.Translate.tc)
    | B_straight (ctx, _) ->
      Obs.bump c_i_bytes (Tcache.Straight.total_i_bytes ctx.Straighten.tc)
  end

(* ---------- persistent snapshots: save / warm start ---------- *)

(* A snapshot (lib/persist) captures the whole translation cache plus the
   per-fragment execution counts. Loading one into a fresh VM restores the
   cache with the generation counter advanced (so the threaded engines
   recompile their closure shadows from the restored slots), rebuilds the
   in-memory dispatch table with the profile's hottest fragments installed
   last (they win the probe-0 collision policy), and optionally pays the
   closure compilation up front. Pending patch closures are deliberately
   not persisted: an unpatched call-translator slot merely exits to the VM,
   which re-dispatches — slower, never wrong. *)

module Vec = Machine.Vec

let c_persist_saves = Obs.counter "persist.saves"
let c_persist_loads = Obs.counter "persist.loads"
let c_persist_slots = Obs.counter "persist.restored_slots"
let c_persist_prewarmed = Obs.counter "persist.prewarmed_frags"

let backend_name t =
  match t.backend with B_acc _ -> "acc" | B_straight _ -> "straight"

(* Hex MD5 over everything that defines the guest image: section bases and
   bytes plus the entry point. Two programs with the same digest produce
   the same superblocks, so a cache keyed on it can never leak fragments
   across workloads. *)
let image_digest (prog : Alpha.Program.t) =
  let b = Buffer.create (String.length prog.text.bytes + 64) in
  Buffer.add_string b (string_of_int prog.text.base);
  Buffer.add_char b '|';
  Buffer.add_string b prog.text.bytes;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int prog.data.base);
  Buffer.add_char b '|';
  Buffer.add_string b prog.data.bytes;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int prog.entry);
  Digest.to_hex (Digest.string (Buffer.contents b))

let fingerprint t =
  Config.fingerprint t.cfg ~backend:(backend_name t)
    ~image_digest:(image_digest t.prog)

let conv_frag (f : Tcache.frag) : Persist.Snapshot.frag =
  { f_id = f.id; f_entry_slot = f.entry_slot; f_v_start = f.v_start;
    f_n_slots = f.n_slots; f_v_insns = f.v_insns; f_v_bytes = f.v_bytes;
    f_i_bytes = f.i_bytes; f_exec_count = f.exec_count;
    f_cat_count = Array.copy f.cat_count }

(* Restored fragments restart execution accounting at zero: the persisted
   count is the *profile* that drove prewarming, not live state. *)
let unconv_frag (f : Persist.Snapshot.frag) : Tcache.frag =
  { id = f.f_id; entry_slot = f.f_entry_slot; v_start = f.f_v_start;
    n_slots = f.f_n_slots; v_insns = f.f_v_insns; v_bytes = f.f_v_bytes;
    i_bytes = f.f_i_bytes; exec_count = 0; region_state = 0;
    cat_count = Array.copy f.f_cat_count }

let conv_exit : Exitr.reason -> Persist.Snapshot.exit_reason = function
  | Exitr.R_branch v -> X_branch v
  | Exitr.R_pal v -> X_pal v
  | Exitr.R_dispatch_miss -> X_dispatch_miss

let unconv_exit : Persist.Snapshot.exit_reason -> Exitr.reason = function
  | X_branch v -> Exitr.R_branch v
  | X_pal v -> Exitr.R_pal v
  | X_dispatch_miss -> Exitr.R_dispatch_miss

let vec_to_array v = Array.init (Vec.length v) (Vec.get v)

let refill_vec v xs =
  Vec.clear v;
  Array.iter (Vec.push v) xs

let build_cache ~slots ~frags ~peis ~exits ~slot_alpha ~slot_class
    ~slot_cyc_ooo ~slot_cyc_ildp ~dispatch_slot ~unique_vpcs ~idioms :
    _ Persist.Snapshot.cache =
  {
    slots;
    frags = Array.of_list (List.map conv_frag frags);
    peis =
      (* sorted by slot: Hashtbl fold order is not deterministic, snapshot
         bytes must be *)
      Array.of_list
        (List.map
           (fun (slot, (p : Tcache.pei)) ->
             { Persist.Snapshot.p_slot = slot; p_v_pc = p.pei_v_pc;
               p_acc_map = Array.copy p.acc_map })
           (List.sort (fun (a, _) (b, _) -> compare a b) peis));
    exits = Array.map conv_exit (vec_to_array exits);
    slot_alpha = vec_to_array slot_alpha;
    slot_class = vec_to_array slot_class;
    slot_cyc_ooo = vec_to_array slot_cyc_ooo;
    slot_cyc_ildp = vec_to_array slot_cyc_ildp;
    dispatch_slot;
    unique_vpcs =
      Array.of_list
        (List.sort compare
           (Hashtbl.fold (fun k () acc -> k :: acc) unique_vpcs []));
    idioms;
  }

let save_snapshot t : Persist.Snapshot.t =
  Obs.bump c_persist_saves 1;
  let body =
    match t.backend with
    | B_acc (ctx, ex) ->
      let tc = ctx.Translate.tc in
      let n = Tcache.Acc.n_slots tc in
      let slots =
        Array.init n (fun sl ->
            (Tcache.Acc.get tc sl, Tcache.Acc.starts_strand tc sl))
      in
      Persist.Snapshot.B_acc
        (build_cache ~slots ~frags:(Tcache.Acc.fragments tc)
           ~peis:(Tcache.Acc.pei_list tc) ~exits:ctx.exits
           ~slot_alpha:ctx.slot_alpha ~slot_class:ctx.slot_class
           ~slot_cyc_ooo:ctx.slot_cyc_ooo ~slot_cyc_ildp:ctx.slot_cyc_ildp
           ~dispatch_slot:ctx.dispatch_slot ~unique_vpcs:ctx.unique_vpcs
           ~idioms:(Superop.encode_table (Exec_acc.idiom_table ex)))
    | B_straight (ctx, ex) ->
      let tc = ctx.Straighten.tc in
      let n = Tcache.Straight.n_slots tc in
      let slots =
        Array.init n (fun sl ->
            (Tcache.Straight.get tc sl, Tcache.Straight.starts_strand tc sl))
      in
      Persist.Snapshot.B_straight
        (build_cache ~slots ~frags:(Tcache.Straight.fragments tc)
           ~peis:(Tcache.Straight.pei_list tc) ~exits:ctx.exits
           ~slot_alpha:ctx.slot_alpha ~slot_class:ctx.slot_class
           ~slot_cyc_ooo:ctx.slot_cyc_ooo ~slot_cyc_ildp:ctx.slot_cyc_ildp
           ~dispatch_slot:ctx.dispatch_slot ~unique_vpcs:ctx.unique_vpcs
           ~idioms:(Superop.encode_table (Exec_straight.idiom_table ex)))
  in
  { fingerprint = fingerprint t; body }

let reject fmt =
  Printf.ksprintf
    (fun s -> raise (Persist.Snapshot.Error ("snapshot rejected: " ^ s)))
    fmt

(* Structural sanity over a decoded cache before any of it is installed:
   the CRC catches corruption of the bytes, this catches a snapshot that
   decodes cleanly but cannot describe a consistent cache. *)
let check_cache (c : _ Persist.Snapshot.cache) =
  let n = Array.length c.slots in
  if Array.length c.slot_alpha <> n || Array.length c.slot_class <> n then
    reject "per-slot metadata (%d alpha, %d class) does not match %d slots"
      (Array.length c.slot_alpha)
      (Array.length c.slot_class)
      n;
  if Array.length c.slot_cyc_ooo <> n || Array.length c.slot_cyc_ildp <> n then
    reject "per-slot cycle annotations (%d ooo, %d ildp) do not match %d slots"
      (Array.length c.slot_cyc_ooo)
      (Array.length c.slot_cyc_ildp)
      n;
  Array.iteri
    (fun i (f : Persist.Snapshot.frag) ->
      if f.f_id <> i then reject "fragment ids not dense (%d at index %d)" f.f_id i;
      if f.f_entry_slot < 0 || f.f_entry_slot >= n then
        reject "fragment %d entry slot %d out of range [0, %d)" i f.f_entry_slot n)
    c.frags;
  Array.iter
    (fun (p : Persist.Snapshot.pei) ->
      if p.p_slot < 0 || p.p_slot >= n then
        reject "PEI slot %d out of range [0, %d)" p.p_slot n)
    c.peis;
  if c.dispatch_slot < 0 || c.dispatch_slot >= n then
    reject "dispatch slot %d out of range [0, %d)" c.dispatch_slot n;
  if Option.is_none (Superop.decode_table c.idioms) then
    reject
      "idiom table is malformed (unknown shape code, bad n-gram length, or \
       negative weight)"

(* The persisted idiom table (validated above) installed on the engine
   before prewarm, so warm-start region promotion fuses with the profile's
   idioms instead of re-mining from restored-but-never-executed fragments
   (whose live exec counts are all zero). An empty table means the save-side
   cache had nothing hot; the engine then mines on demand as usual. *)
let restore_idioms set ex (c : _ Persist.Snapshot.cache) =
  match Superop.decode_table c.idioms with
  | Some tbl when Array.length tbl > 0 -> set ex tbl
  | _ -> ()

let restore_peis (c : _ Persist.Snapshot.cache) =
  Array.to_list
    (Array.map
       (fun (p : Persist.Snapshot.pei) ->
         (p.p_slot, { Tcache.pei_v_pc = p.p_v_pc; acc_map = Array.copy p.p_acc_map }))
       c.peis)

(* Rebuild the in-memory dispatch table: every fragment in id order, then
   the [prewarm_top] hottest (by persisted execution count) re-installed in
   ascending hotness, so on probe collisions the hottest entry owns probe 0
   — the profile-guided part of the warm start. Returns how many fragments
   got priority treatment. *)
let reinstall_dispatch t (c : _ Persist.Snapshot.cache) ~prewarm_top =
  let mem = t.interp.mem in
  Machine.Memory.fill_zero mem ~addr:Translate.table_base
    ~len:Translate.table_bytes;
  Array.iter
    (fun (f : Persist.Snapshot.frag) ->
      Translate.dispatch_install mem ~v:f.f_v_start ~slot:f.f_entry_slot)
    c.frags;
  let hot = Array.copy c.frags in
  Array.sort
    (fun (a : Persist.Snapshot.frag) (b : Persist.Snapshot.frag) ->
      compare (b.f_exec_count, a.f_id) (a.f_exec_count, b.f_id))
    hot;
  let n = min prewarm_top (Array.length hot) in
  for i = n - 1 downto 0 do
    let f = hot.(i) in
    Translate.dispatch_install mem ~v:f.f_v_start ~slot:f.f_entry_slot
  done;
  n

(* Under the Region engine, a warm start promotes from the snapshot's
   hotness profile: every fragment whose persisted execution count crossed
   the region threshold is region-compiled at load time (hottest first, so
   overlap resolution favors the hottest loops) — the restored live
   [exec_count] stays 0 as always. *)
let hot_region_entries t (c : _ Persist.Snapshot.cache) =
  if t.cfg.engine <> Config.Region then []
  else
    Array.to_list c.frags
    |> List.filter (fun (f : Persist.Snapshot.frag) ->
           f.f_exec_count >= t.cfg.region_threshold)
    |> List.sort
         (fun (a : Persist.Snapshot.frag) (b : Persist.Snapshot.frag) ->
           compare (b.f_exec_count, a.f_id) (a.f_exec_count, b.f_id))
    |> List.map (fun (f : Persist.Snapshot.frag) -> f.f_entry_slot)

let load_snapshot t ~prewarm_top (snap : Persist.Snapshot.t) =
  let want = fingerprint t in
  (match Persist.Snapshot.fingerprint_mismatches ~got:snap.fingerprint ~want with
  | [] -> ()
  | ms -> reject "%s" (String.concat "; " ms));
  let prewarmed, slots =
    match (t.backend, snap.body) with
    | B_acc (ctx, ex), Persist.Snapshot.B_acc c ->
      check_cache c;
      Tcache.Acc.restore ctx.Translate.tc ~code:c.slots
        ~frags:(Array.map unconv_frag c.frags) ~peis:(restore_peis c);
      refill_vec ctx.exits (Array.map unconv_exit c.exits);
      refill_vec ctx.slot_alpha c.slot_alpha;
      refill_vec ctx.slot_class c.slot_class;
      refill_vec ctx.slot_cyc_ooo c.slot_cyc_ooo;
      refill_vec ctx.slot_cyc_ildp c.slot_cyc_ildp;
      ctx.dispatch_slot <- c.dispatch_slot;
      Hashtbl.reset ctx.unique_vpcs;
      Array.iter (fun v -> Hashtbl.replace ctx.unique_vpcs v ()) c.unique_vpcs;
      let n = reinstall_dispatch t c ~prewarm_top in
      restore_idioms Exec_acc.set_idiom_table ex c;
      (match t.cfg.engine with
      | Config.Threaded -> Exec_acc.prewarm ex
      | Config.Region ->
        Exec_acc.prewarm ~hot_entries:(hot_region_entries t c) ex
      | Config.Matched -> ());
      (n, Array.length c.slots)
    | B_straight (ctx, ex), Persist.Snapshot.B_straight c ->
      check_cache c;
      Tcache.Straight.restore ctx.Straighten.tc ~code:c.slots
        ~frags:(Array.map unconv_frag c.frags) ~peis:(restore_peis c);
      refill_vec ctx.exits (Array.map unconv_exit c.exits);
      refill_vec ctx.slot_alpha c.slot_alpha;
      refill_vec ctx.slot_class c.slot_class;
      refill_vec ctx.slot_cyc_ooo c.slot_cyc_ooo;
      refill_vec ctx.slot_cyc_ildp c.slot_cyc_ildp;
      ctx.dispatch_slot <- c.dispatch_slot;
      Hashtbl.reset ctx.unique_vpcs;
      Array.iter (fun v -> Hashtbl.replace ctx.unique_vpcs v ()) c.unique_vpcs;
      let n = reinstall_dispatch t c ~prewarm_top in
      restore_idioms Exec_straight.set_idiom_table ex c;
      (match t.cfg.engine with
      | Config.Threaded -> Exec_straight.prewarm ex
      | Config.Region ->
        Exec_straight.prewarm ~hot_entries:(hot_region_entries t c) ex
      | Config.Matched -> ());
      (n, Array.length c.slots)
    | _ ->
      (* unreachable through [fingerprint_mismatches] unless the file was
         hand-crafted with an inconsistent backend/body pair *)
      reject "body does not match the %s backend" (backend_name t)
  in
  Obs.bump c_persist_loads 1;
  Obs.bump c_persist_slots slots;
  Obs.bump c_persist_prewarmed prewarmed

(* [prewarm_top] bounds how many fragments get dispatch-table priority on
   a warm start; closure compilation covers every restored slot. *)
let create ?(cfg = Config.default) ?annotate ?snapshot ?(prewarm_top = 8)
    ~kind prog =
  let t = create_cold ?annotate ~cfg ~kind prog in
  (match snapshot with
  | None -> ()
  | Some snap -> load_snapshot t ~prewarm_top snap);
  t
