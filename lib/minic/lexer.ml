(* MiniC lexer: hand-written, positions tracked for error messages. *)

type token =
  | INT of int64
  | IDENT of string
  | STR of string
  | KW of string (* int byte func if else while for switch case default
                    break continue return print putc *)
  | PUNCT of string (* ( ) { } [ ] ; , : = == != <= >= < > + - * / % & | ^
                       << >> && || ! ~ *)
  | EOF

exception Error of { line : int; msg : string }

let keywords =
  [ "int"; "byte"; "func"; "if"; "else"; "while"; "for"; "switch"; "case";
    "default"; "break"; "continue"; "return"; "print"; "putc" ]

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }

let fail t fmt =
  Printf.ksprintf (fun msg -> raise (Error { line = t.line; msg })) fmt

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r') ->
    t.pos <- t.pos + 1;
    skip_ws t
  | Some '\n' ->
    t.pos <- t.pos + 1;
    t.line <- t.line + 1;
    skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
    while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
      t.pos <- t.pos + 1
    done;
    skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
    t.pos <- t.pos + 2;
    let rec go () =
      if t.pos + 1 >= String.length t.src then fail t "unterminated comment"
      else if t.src.[t.pos] = '*' && t.src.[t.pos + 1] = '/' then t.pos <- t.pos + 2
      else begin
        if t.src.[t.pos] = '\n' then t.line <- t.line + 1;
        t.pos <- t.pos + 1;
        go ()
      end
    in
    go ();
    skip_ws t
  | _ -> ()

(* Longest-match punctuation. *)
let puncts4 = [ ">>>=" ]
let puncts3 = [ ">>>"; "<<="; ">>=" ]

let puncts2 =
  [ "=="; "!="; "<="; ">="; "<<"; ">>"; "&&"; "||"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^=" ]

let puncts1 = "(){}[];,:=<>+-*/%&|^!~"

let next t : token * int =
  skip_ws t;
  let line = t.line in
  if t.pos >= String.length t.src then (EOF, line)
  else begin
    let c = t.src.[t.pos] in
    if is_digit c then begin
      let start = t.pos in
      if
        c = '0'
        && t.pos + 1 < String.length t.src
        && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
      then begin
        t.pos <- t.pos + 2;
        while
          t.pos < String.length t.src
          && (is_digit t.src.[t.pos]
             || (Char.lowercase_ascii t.src.[t.pos] >= 'a'
                && Char.lowercase_ascii t.src.[t.pos] <= 'f'))
        do
          t.pos <- t.pos + 1
        done
      end
      else
        while t.pos < String.length t.src && is_digit t.src.[t.pos] do
          t.pos <- t.pos + 1
        done;
      match Int64.of_string_opt (String.sub t.src start (t.pos - start)) with
      | Some v -> (INT v, line)
      | None -> fail t "bad integer literal"
    end
    else if is_id_start c then begin
      let start = t.pos in
      while t.pos < String.length t.src && is_id t.src.[t.pos] do
        t.pos <- t.pos + 1
      done;
      let s = String.sub t.src start (t.pos - start) in
      if List.mem s keywords then (KW s, line) else (IDENT s, line)
    end
    else if c = '\'' then begin
      if t.pos + 2 >= String.length t.src then fail t "bad char literal";
      let ch, len =
        if t.src.[t.pos + 1] = '\\' then
          ( (match t.src.[t.pos + 2] with
            | 'n' -> '\n'
            | 't' -> '\t'
            | '0' -> '\000'
            | c -> c),
            4 )
        else (t.src.[t.pos + 1], 3)
      in
      if t.src.[t.pos + len - 1] <> '\'' then fail t "bad char literal";
      t.pos <- t.pos + len;
      (INT (Int64.of_int (Char.code ch)), line)
    end
    else if c = '"' then begin
      let b = Buffer.create 16 in
      t.pos <- t.pos + 1;
      while t.pos < String.length t.src && t.src.[t.pos] <> '"' do
        if t.src.[t.pos] = '\\' && t.pos + 1 < String.length t.src then begin
          (match t.src.[t.pos + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> Buffer.add_char b c);
          t.pos <- t.pos + 2
        end
        else begin
          Buffer.add_char b t.src.[t.pos];
          t.pos <- t.pos + 1
        end
      done;
      if t.pos >= String.length t.src then fail t "unterminated string";
      t.pos <- t.pos + 1;
      (STR (Buffer.contents b), line)
    end
    else begin
      let slice n =
        if t.pos + n - 1 < String.length t.src then String.sub t.src t.pos n
        else ""
      in
      let four = slice 4 and three = slice 3 and two = slice 2 in
      if List.mem four puncts4 then begin
        t.pos <- t.pos + 4;
        (PUNCT four, line)
      end
      else if List.mem three puncts3 then begin
        t.pos <- t.pos + 3;
        (PUNCT three, line)
      end
      else if List.mem two puncts2 then begin
        t.pos <- t.pos + 2;
        (PUNCT two, line)
      end
      else if String.contains puncts1 c then begin
        t.pos <- t.pos + 1;
        (PUNCT (String.make 1 c), line)
      end
      else fail t "unexpected character %C" c
    end
  end

(* Tokenize the whole input. *)
let tokenize src =
  let t = create src in
  let rec go acc =
    match next t with
    | EOF, line -> List.rev ((EOF, line) :: acc)
    | tok -> go (tok :: acc)
  in
  go []
