(* MiniC -> Alpha assembly code generator.

   Conventions (OSF-flavoured):
   - arguments in a0..a5, result in v0, RA in ra;
   - scalar locals live in callee-saved s0..s5, overflowing to stack slots;
   - expression evaluation uses the caller-saved temporaries t0..t11 as a
     register stack (an expression deeper than 12 is rejected — no workload
     comes close);
   - AT and GP are never touched: the code-straightening DBT borrows them;
   - [switch] with >= 3 cases compiles to a jump table (register-indirect
     jump), function tables to indirect calls via PV — the workloads'
     source of JMP/JSR traffic;
   - [/] and [%] call the runtime divide (Alpha has no divide instruction).

   Frame layout (fixed size per function):
     0        saved ra
     8..48    saved s0..s5
     56..183  stack-resident locals (16)
     184..279 expression spills across calls (12)
   *)

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let temps = Alpha.Reg.temps (* 12 caller-saved temporaries *)
let n_temps = Array.length temps
let saved = Alpha.Reg.saved (* s0..s5 *)
let frame_size = 288
let local_stack_base = 56
let max_stack_locals = 16
let spill_base = 184

type gkind = K_scalar | K_iarray | K_barray | K_functab

type loc = L_reg of int | L_stack of int (* frame offset *)

type ctx = {
  out : Buffer.t;
  globals : (string, gkind) Hashtbl.t;
  func_names : (string, int) Hashtbl.t; (* name -> arity *)
  mutable label : int;
}

type fctx = {
  c : ctx;
  env : (string, loc) Hashtbl.t;
  mutable n_sregs : int;
  mutable n_stack : int;
  ret_label : string;
  mutable breaks : string list;
  mutable continues : string list;
}

let emit c fmt = Printf.ksprintf (fun s -> Buffer.add_string c.out ("  " ^ s ^ "\n")) fmt
let label c fmt = Printf.ksprintf (fun s -> Buffer.add_string c.out (s ^ ":\n")) fmt

let fresh c prefix =
  c.label <- c.label + 1;
  Printf.sprintf "__%s_%d" prefix c.label

let reg_name = Alpha.Reg.to_string

(* temp register for evaluation-stack depth [d] *)
let treg d =
  if d >= n_temps then fail "expression too deep (needs %d temporaries)" (d + 1)
  else temps.(d)

let declare f name =
  if Hashtbl.mem f.env name then fail "duplicate local %S" name;
  let loc =
    if f.n_sregs < Array.length saved then begin
      let r = saved.(f.n_sregs) in
      f.n_sregs <- f.n_sregs + 1;
      L_reg r
    end
    else if f.n_stack < max_stack_locals then begin
      let off = local_stack_base + (8 * f.n_stack) in
      f.n_stack <- f.n_stack + 1;
      L_stack off
    end
    else fail "too many locals in function"
  in
  Hashtbl.replace f.env name loc;
  loc

let lookup f name =
  match Hashtbl.find_opt f.env name with
  | Some l -> Some l
  | None -> None

(* ---------- expressions ----------

   [gen_expr f d e] leaves the value in [treg d].

   [operand f d ~allow_imm e] returns an operand string for [e] without
   copying register-resident locals into temporaries: a local in a
   callee-saved register is named directly (safe: expression evaluation
   never writes locals, and calls preserve both callee-saved registers and
   the live temporaries below them), and a small constant becomes an Alpha
   literal when the position allows one. Anything else evaluates into
   [treg d]. This is what keeps the generated code close to what a real
   compiler would emit. *)

let rec operand f d ~allow_imm (e : Ast.expr) : string =
  match e with
  | Ast.Var x -> (
    match lookup f x with
    | Some (L_reg r) -> reg_name r
    | _ ->
      gen_expr f d e;
      reg_name (treg d))
  | Ast.Int v when allow_imm && Int64.compare v 0L >= 0 && Int64.compare v 255L <= 0
    ->
    Int64.to_string v
  | _ ->
    gen_expr f d e;
    reg_name (treg d)

and gen_expr f d (e : Ast.expr) =
  let c = f.c in
  let rd = reg_name (treg d) in
  match e with
  | Int v -> emit c "ldiq %s, %Ld" rd v
  | Var x -> (
    match lookup f x with
    | Some (L_reg r) -> emit c "mov %s, %s" (reg_name r) rd
    | Some (L_stack off) -> emit c "ldq %s, %d(sp)" rd off
    | None -> (
      match Hashtbl.find_opt c.globals x with
      | Some K_scalar ->
        emit c "la %s, %s" rd x;
        emit c "ldq %s, 0(%s)" rd rd
      | Some (K_iarray | K_barray | K_functab) ->
        (* array name used as a value: its base address *)
        emit c "la %s, %s" rd x
      | None -> fail "undefined variable %S" x))
  | Index (x, i) -> (
    let ri = operand f d ~allow_imm:false i in
    let ra = reg_name (treg (d + 1)) in
    match Hashtbl.find_opt c.globals x with
    | Some (K_iarray | K_functab) ->
      emit c "la %s, %s" ra x;
      emit c "s8addq %s, %s, %s" ri ra rd;
      emit c "ldq %s, 0(%s)" rd rd
    | Some K_barray ->
      emit c "la %s, %s" ra x;
      emit c "addq %s, %s, %s" ri ra rd;
      emit c "ldbu %s, 0(%s)" rd rd
    | Some K_scalar -> fail "%S is not an array" x
    | None -> fail "undefined array %S" x)
  | Un (Neg, e) ->
    gen_expr f d e;
    emit c "subq zero, %s, %s" rd rd
  | Un (Not, e) ->
    gen_expr f d e;
    emit c "cmpeq %s, 0, %s" rd rd
  | Un (Bnot, e) ->
    gen_expr f d e;
    emit c "ornot zero, %s, %s" rd rd
  | Bin (Land, a, b) ->
    let lf = fresh c "andf" and le = fresh c "ande" in
    gen_expr f d a;
    emit c "beq %s, %s" rd lf;
    gen_expr f d b;
    emit c "cmpeq %s, 0, %s" rd rd;
    emit c "xor %s, 1, %s" rd rd;
    emit c "br %s" le;
    label c "%s" lf;
    emit c "clr %s" rd;
    label c "%s" le
  | Bin (Lor, a, b) ->
    let lt = fresh c "ort" and le = fresh c "ore" in
    gen_expr f d a;
    emit c "bne %s, %s" rd lt;
    gen_expr f d b;
    emit c "cmpeq %s, 0, %s" rd rd;
    emit c "xor %s, 1, %s" rd rd;
    emit c "br %s" le;
    label c "%s" lt;
    emit c "ldiq %s, 1" rd;
    label c "%s" le
  | Bin ((Div | Mod) as op, a, b) ->
    gen_expr f d a;
    gen_expr f (d + 1) b;
    gen_runtime_call f d (if op = Div then "__divq" else "__remq")
  | Bin (op, a, b) -> gen_binop f d rd op a b
  | Call ("sel", [ cond; a; b ]) ->
    (* builtin conditional select: sel(c, a, b) = c ? a : b, compiled to a
       conditional move (CMOVNE) — the workloads' source of CMOV traffic *)
    gen_expr f d cond;
    gen_expr f (d + 1) a;
    gen_expr f (d + 2) b;
    emit c "cmovne %s, %s, %s" rd (reg_name (treg (d + 1))) (reg_name (treg (d + 2)));
    emit c "mov %s, %s" (reg_name (treg (d + 2))) rd
  | Call ("sel", _) -> fail "sel expects exactly 3 arguments"
  | Call (name, args) ->
    (match Hashtbl.find_opt c.func_names name with
    | Some arity when arity <> List.length args ->
      fail "%S expects %d arguments" name arity
    | Some _ -> ()
    | None -> fail "undefined function %S" name);
    gen_call f d ~args ~invoke:(fun () -> emit c "bsr ra, %s" name)
  | Call_indirect (table, idx, args) ->
    (match Hashtbl.find_opt c.globals table with
    | Some K_functab -> ()
    | _ -> fail "%S is not a function table" table);
    (* the table address/index are evaluated as an extra hidden argument *)
    gen_expr f d idx;
    let rt = reg_name (treg (d + 1)) in
    emit c "la %s, %s" rt table;
    emit c "s8addq %s, %s, %s" rd rt rd;
    emit c "ldq %s, 0(%s)" rd rd;
    (* rd now holds the function address; treat it as a saved value *)
    gen_call f (d + 1) ~args ~invoke:(fun () ->
        emit c "mov %s, pv" rd;
        emit c "jsr ra, (pv)");
    emit c "mov %s, %s" (reg_name (treg (d + 1))) rd

(* simple (non-short-circuit, non-divide) binary operator, result into the
   register named [rd] *)
and gen_binop f d rd (op : Ast.binop) a b =
  let c = f.c in
  let ra = operand f d ~allow_imm:false a in
  (* [b] may evaluate into treg (d+1) — never clobbers [ra], which is
     either a callee-saved local or treg d *)
  let simple ?(imm_ok = true) mnem =
    let rb = operand f (d + 1) ~allow_imm:imm_ok b in
    emit c "%s %s, %s, %s" mnem ra rb rd
  in
  match op with
  | Add -> simple "addq"
  | Sub -> simple "subq"
  | Mul -> simple "mulq"
  | And -> simple "and"
  | Or -> simple "bis"
  | Xor -> simple "xor"
  | Shl -> simple "sll"
  | Shr -> simple "sra"
  | Lshr -> simple "srl"
  | Eq -> simple "cmpeq"
  | Ne ->
    simple "cmpeq";
    emit c "xor %s, 1, %s" rd rd
  | Lt -> simple "cmplt"
  | Le -> simple "cmple"
  | Gt ->
    (* swapped operand order: the literal position moves to the left, so
       force a register *)
    let rb = operand f (d + 1) ~allow_imm:false b in
    emit c "cmplt %s, %s, %s" rb ra rd
  | Ge ->
    let rb = operand f (d + 1) ~allow_imm:false b in
    emit c "cmple %s, %s, %s" rb ra rd
  | Div | Mod | Land | Lor -> assert false

(* function call with arguments evaluated at depths d.. and live
   temporaries below [d] saved across the call *)
and gen_call f d ~args ~invoke =
  let c = f.c in
  if List.length args > 6 then fail "at most 6 arguments";
  List.iteri (fun i a -> gen_expr f (d + i) a) args;
  (* save live evaluation temporaries t0..t(d-1) *)
  for k = 0 to d - 1 do
    emit c "stq %s, %d(sp)" (reg_name (treg k)) (spill_base + (8 * k))
  done;
  List.iteri
    (fun i _ -> emit c "mov %s, %s" (reg_name (treg (d + i))) (reg_name (Alpha.Reg.arg i)))
    args;
  invoke ();
  emit c "mov v0, %s" (reg_name (treg d));
  for k = 0 to d - 1 do
    emit c "ldq %s, %d(sp)" (reg_name (treg k)) (spill_base + (8 * k))
  done

and gen_runtime_call f d name =
  (* binary runtime helper: operands already at depths d, d+1 *)
  let c = f.c in
  for k = 0 to d - 1 do
    emit c "stq %s, %d(sp)" (reg_name (treg k)) (spill_base + (8 * k))
  done;
  emit c "mov %s, a0" (reg_name (treg d));
  emit c "mov %s, a1" (reg_name (treg (d + 1)));
  emit c "bsr ra, %s" name;
  emit c "mov v0, %s" (reg_name (treg d));
  for k = 0 to d - 1 do
    emit c "ldq %s, %d(sp)" (reg_name (treg k)) (spill_base + (8 * k))
  done

(* ---------- statements ---------- *)

let rec gen_stmt f (s : Ast.stmt) =
  let c = f.c in
  match s with
  | Decl (x, init) -> (
    let loc = declare f x in
    match init with
    | None -> (
      match loc with
      | L_reg r -> emit c "clr %s" (reg_name r)
      | L_stack off -> emit c "stq zero, %d(sp)" off)
    | Some e -> (
      gen_expr f 0 e;
      match loc with
      | L_reg r -> emit c "mov %s, %s" (reg_name (treg 0)) (reg_name r)
      | L_stack off -> emit c "stq %s, %d(sp)" (reg_name (treg 0)) off))
  | Assign (x, e) -> (
    match lookup f x with
    | Some (L_reg r) -> (
      (* evaluate straight into the local's register where possible *)
      match e with
      | Ast.Int v -> emit c "ldiq %s, %Ld" (reg_name r) v
      | Ast.Var y when lookup f y <> None -> (
        match lookup f y with
        | Some (L_reg ry) -> emit c "mov %s, %s" (reg_name ry) (reg_name r)
        | Some (L_stack off) -> emit c "ldq %s, %d(sp)" (reg_name r) off
        | None -> assert false)
      | Ast.Bin (((Div | Mod | Land | Lor) as _op), _, _) ->
        gen_expr f 0 e;
        emit c "mov %s, %s" (reg_name (treg 0)) (reg_name r)
      | Ast.Bin (op, a, b) -> gen_binop f 0 (reg_name r) op a b
      | _ ->
        gen_expr f 0 e;
        emit c "mov %s, %s" (reg_name (treg 0)) (reg_name r))
    | Some (L_stack off) ->
      gen_expr f 0 e;
      emit c "stq %s, %d(sp)" (reg_name (treg 0)) off
    | None -> (
      match Hashtbl.find_opt c.globals x with
      | Some K_scalar ->
        gen_expr f 0 e;
        emit c "la %s, %s" (reg_name (treg 1)) x;
        emit c "stq %s, 0(%s)" (reg_name (treg 0)) (reg_name (treg 1))
      | _ -> fail "undefined variable %S" x))
  | Store (x, i, e) -> (
    let ri = operand f 0 ~allow_imm:false i in
    let rv = operand f 1 ~allow_imm:false e in
    let ra = reg_name (treg 2) in
    match Hashtbl.find_opt c.globals x with
    | Some K_iarray ->
      emit c "la %s, %s" ra x;
      emit c "s8addq %s, %s, %s" ri ra ra;
      emit c "stq %s, 0(%s)" rv ra
    | Some K_barray ->
      emit c "la %s, %s" ra x;
      emit c "addq %s, %s, %s" ri ra ra;
      emit c "stb %s, 0(%s)" rv ra
    | _ -> fail "undefined array %S" x)
  | If (cond, th, el) ->
    let lelse = fresh c "else" and lend = fresh c "endif" in
    gen_expr f 0 cond;
    emit c "beq %s, %s" (reg_name (treg 0)) (if el = [] then lend else lelse);
    List.iter (gen_stmt f) th;
    if el <> [] then begin
      emit c "br %s" lend;
      label c "%s" lelse;
      List.iter (gen_stmt f) el
    end;
    label c "%s" lend
  | While (cond, body) ->
    (* bottom-test loop: one backward conditional branch per iteration,
       the shape optimising compilers emit *)
    let ltest = fresh c "wtest" and lbody = fresh c "wbody" and lend = fresh c "wend" in
    f.breaks <- lend :: f.breaks;
    f.continues <- ltest :: f.continues;
    emit c "br %s" ltest;
    label c "%s" lbody;
    List.iter (gen_stmt f) body;
    label c "%s" ltest;
    gen_expr f 0 cond;
    emit c "bne %s, %s" (reg_name (treg 0)) lbody;
    label c "%s" lend;
    f.breaks <- List.tl f.breaks;
    f.continues <- List.tl f.continues
  | For (init, cond, step, body) ->
    let lbody = fresh c "fbody" and lstep = fresh c "fstep" and ltest = fresh c "ftest" in
    let lend = fresh c "fend" in
    Option.iter (gen_stmt f) init;
    f.breaks <- lend :: f.breaks;
    f.continues <- lstep :: f.continues;
    emit c "br %s" ltest;
    label c "%s" lbody;
    List.iter (gen_stmt f) body;
    label c "%s" lstep;
    Option.iter (gen_stmt f) step;
    label c "%s" ltest;
    (match cond with
    | Some e ->
      gen_expr f 0 e;
      emit c "bne %s, %s" (reg_name (treg 0)) lbody
    | None -> emit c "br %s" lbody);
    label c "%s" lend;
    f.breaks <- List.tl f.breaks;
    f.continues <- List.tl f.continues
  | Switch (e, cases, default) -> gen_switch f e cases default
  | Return e ->
    gen_expr f 0 e;
    emit c "mov %s, v0" (reg_name (treg 0));
    emit c "br %s" f.ret_label
  | Expr e -> gen_expr f 0 e
  | Print e ->
    gen_expr f 0 e;
    emit c "mov %s, a0" (reg_name (treg 0));
    emit c "call_pal 2"
  | Putc e ->
    gen_expr f 0 e;
    emit c "mov %s, a0" (reg_name (treg 0));
    emit c "call_pal 1"
  | Break -> (
    match f.breaks with
    | l :: _ -> emit c "br %s" l
    | [] -> fail "break outside loop")
  | Continue -> (
    match f.continues with
    | l :: _ -> emit c "br %s" l
    | [] -> fail "continue outside loop")

and gen_switch f e cases default =
  let c = f.c in
  if cases = [] then List.iter (gen_stmt f) default
  else begin
    let vals = List.map fst cases in
    let lo = List.fold_left min (List.hd vals) vals in
    let hi = List.fold_left max (List.hd vals) vals in
    let span = Int64.to_int (Int64.sub hi lo) + 1 in
    let dense = span <= (4 * List.length cases) + 4 && span <= 512 in
    let lend = fresh c "swend" and ldef = fresh c "swdef" in
    gen_expr f 0 e;
    let rv = reg_name (treg 0) in
    if dense && List.length cases >= 3 then begin
      (* jump table: the workloads' source of register-indirect jumps *)
      let tname = fresh c "swtab" in
      let case_labels = List.map (fun (v, _) -> (v, fresh c "case")) cases in
      let rt = reg_name (treg 1) in
      if not (Int64.equal lo 0L) then
        if Int64.compare lo 0L > 0 && Int64.compare lo 255L <= 0 then
          emit c "subq %s, %Ld, %s" rv lo rv
        else begin
          emit c "ldiq %s, %Ld" rt lo;
          emit c "subq %s, %s, %s" rv rt rv
        end;
      if span <= 255 then emit c "cmpult %s, %d, %s" rv span rt
      else begin
        emit c "ldiq %s, %d" rt span;
        emit c "cmpult %s, %s, %s" rv rt rt
      end;
      emit c "beq %s, %s" rt ldef;
      emit c "la %s, %s" rt tname;
      emit c "s8addq %s, %s, %s" rv rt rv;
      emit c "ldq %s, 0(%s)" rv rv;
      emit c "jmp (%s)" rv;
      List.iter
        (fun (v, body) ->
          label c "%s" (List.assoc v case_labels);
          List.iter (gen_stmt f) body;
          emit c "br %s" lend)
        cases;
      label c "%s" ldef;
      List.iter (gen_stmt f) default;
      label c "%s" lend;
      (* the table itself *)
      Buffer.add_string c.out "  .data\n  .align 8\n";
      label c "%s" tname;
      for i = 0 to span - 1 do
        let v = Int64.add lo (Int64.of_int i) in
        let target =
          match List.assoc_opt v case_labels with Some l -> l | None -> ldef
        in
        Buffer.add_string c.out (Printf.sprintf "  .quad %s\n" target)
      done;
      Buffer.add_string c.out "  .text\n"
    end
    else begin
      (* sparse: compare-and-branch chain *)
      let rt = reg_name (treg 1) in
      let labelled = List.map (fun (v, body) -> (v, body, fresh c "scase")) cases in
      List.iter
        (fun (v, _, l) ->
          emit c "ldiq %s, %Ld" rt v;
          emit c "cmpeq %s, %s, %s" rv rt rt;
          emit c "bne %s, %s" rt l)
        labelled;
      emit c "br %s" ldef;
      List.iter
        (fun (_, body, l) ->
          label c "%s" l;
          List.iter (gen_stmt f) body;
          emit c "br %s" lend)
        labelled;
      label c "%s" ldef;
      List.iter (gen_stmt f) default;
      label c "%s" lend
    end
  end

(* ---------- toplevel ---------- *)

let gen_func c (fn : Ast.func) =
  let f =
    {
      c;
      env = Hashtbl.create 16;
      n_sregs = 0;
      n_stack = 0;
      ret_label = Printf.sprintf "__%s_ret" fn.name;
      breaks = [];
      continues = [];
    }
  in
  label c "%s" fn.name;
  emit c "lda sp, -%d(sp)" frame_size;
  emit c "stq ra, 0(sp)";
  Array.iteri (fun i r -> emit c "stq %s, %d(sp)" (reg_name r) (8 + (8 * i))) saved;
  List.iteri
    (fun i p ->
      match declare f p with
      | L_reg r -> emit c "mov %s, %s" (reg_name (Alpha.Reg.arg i)) (reg_name r)
      | L_stack off -> emit c "stq %s, %d(sp)" (reg_name (Alpha.Reg.arg i)) off)
    fn.params;
  List.iter (gen_stmt f) fn.body;
  emit c "clr v0" (* fall-off-the-end returns 0 *);
  label c "%s" f.ret_label;
  emit c "ldq ra, 0(sp)";
  Array.iteri (fun i r -> emit c "ldq %s, %d(sp)" (reg_name r) (8 + (8 * i))) saved;
  emit c "lda sp, %d(sp)" frame_size;
  emit c "ret"

let gen_globals c (globals : Ast.global list) =
  Buffer.add_string c.out "  .data\n  .align 8\n";
  List.iter
    (fun (g : Ast.global) ->
      match g with
      | Gscalar (name, v) ->
        label c "%s" name;
        Buffer.add_string c.out (Printf.sprintf "  .quad %Ld\n" v)
      | Garray (name, n, init) ->
        label c "%s" name;
        List.iter
          (fun v -> Buffer.add_string c.out (Printf.sprintf "  .quad %Ld\n" v))
          init;
        let rest = n - List.length init in
        if rest < 0 then fail "too many initialisers for %S" name;
        if rest > 0 then Buffer.add_string c.out (Printf.sprintf "  .space %d\n" (8 * rest))
      | Gbytes (name, n, init) ->
        Buffer.add_string c.out "  .align 8\n";
        label c "%s" name;
        (match init with
        | Some s ->
          Buffer.add_string c.out (Printf.sprintf "  .ascii %S\n" s);
          if n > String.length s then
            Buffer.add_string c.out (Printf.sprintf "  .space %d\n" (n - String.length s))
        | None -> Buffer.add_string c.out (Printf.sprintf "  .space %d\n" n))
      | Gfuncs (name, fs) ->
        label c "%s" name;
        List.iter
          (fun fname -> Buffer.add_string c.out (Printf.sprintf "  .quad %s\n" fname))
          fs)
    globals

(* Compile a parsed program to Alpha assembly source. *)
let compile (p : Ast.program) : string =
  let c =
    { out = Buffer.create 4096; globals = Hashtbl.create 32;
      func_names = Hashtbl.create 32; label = 0 }
  in
  List.iter
    (fun (g : Ast.global) ->
      let name, kind =
        match g with
        | Gscalar (n, _) -> (n, K_scalar)
        | Garray (n, _, _) -> (n, K_iarray)
        | Gbytes (n, _, _) -> (n, K_barray)
        | Gfuncs (n, _) -> (n, K_functab)
      in
      if Hashtbl.mem c.globals name then fail "duplicate global %S" name;
      Hashtbl.replace c.globals name kind)
    p.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem c.func_names f.name then fail "duplicate function %S" f.name;
      Hashtbl.replace c.func_names f.name (List.length f.params))
    p.funcs;
  if not (Hashtbl.mem c.func_names "main") then fail "missing function main";
  Buffer.add_string c.out Runtime.startup;
  Buffer.add_string c.out "  .text\n";
  List.iter (gen_func c) p.funcs;
  Buffer.add_string c.out Runtime.divide;
  gen_globals c p.globals;
  Buffer.contents c.out
