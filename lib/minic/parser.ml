(* MiniC recursive-descent parser with precedence climbing. *)

exception Error of { line : int; msg : string }

type t = { mutable toks : (Lexer.token * int) list }

let fail t fmt =
  let line = match t.toks with (_, l) :: _ -> l | [] -> 0 in
  Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

let peek t = match t.toks with (tok, _) :: _ -> tok | [] -> Lexer.EOF

let advance t = match t.toks with _ :: rest -> t.toks <- rest | [] -> ()

let eat t tok =
  if peek t = tok then advance t
  else
    fail t "expected %s"
      (match tok with
      | Lexer.PUNCT p -> Printf.sprintf "%S" p
      | Lexer.KW k -> Printf.sprintf "keyword %S" k
      | _ -> "token")

let eat_punct t p = eat t (Lexer.PUNCT p)

let ident t =
  match peek t with
  | Lexer.IDENT x ->
    advance t;
    x
  | _ -> fail t "expected identifier"

let int_lit t =
  match peek t with
  | Lexer.INT v ->
    advance t;
    v
  | Lexer.PUNCT "-" -> (
    advance t;
    match peek t with
    | Lexer.INT v ->
      advance t;
      Int64.neg v
    | _ -> fail t "expected integer")
  | _ -> fail t "expected integer"

(* precedence: higher binds tighter *)
let binop_of = function
  | "||" -> Some (Ast.Lor, 1)
  | "&&" -> Some (Ast.Land, 2)
  | "|" -> Some (Ast.Or, 3)
  | "^" -> Some (Ast.Xor, 4)
  | "&" -> Some (Ast.And, 5)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | ">>>" -> Some (Ast.Lshr, 8)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Mod, 10)
  | _ -> None

(* compound assignment [x op= e]: desugared by the parser *)
let compound_of = function
  | "+=" -> Some Ast.Add
  | "-=" -> Some Ast.Sub
  | "*=" -> Some Ast.Mul
  | "/=" -> Some Ast.Div
  | "%=" -> Some Ast.Mod
  | "&=" -> Some Ast.And
  | "|=" -> Some Ast.Or
  | "^=" -> Some Ast.Xor
  | "<<=" -> Some Ast.Shl
  | ">>=" -> Some Ast.Shr
  | ">>>=" -> Some Ast.Lshr
  | _ -> None

let rec expr t = binary t 1

and binary t min_prec =
  let lhs = ref (unary t) in
  let continue_ = ref true in
  while !continue_ do
    match peek t with
    | Lexer.PUNCT p -> (
      match binop_of p with
      | Some (op, prec) when prec >= min_prec ->
        advance t;
        let rhs = binary t (prec + 1) in
        lhs := Ast.Bin (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and unary t =
  match peek t with
  | Lexer.PUNCT "-" ->
    advance t;
    Ast.Un (Neg, unary t)
  | Lexer.PUNCT "!" ->
    advance t;
    Ast.Un (Not, unary t)
  | Lexer.PUNCT "~" ->
    advance t;
    Ast.Un (Bnot, unary t)
  | _ -> primary t

and primary t =
  match peek t with
  | Lexer.INT v ->
    advance t;
    Ast.Int v
  | Lexer.PUNCT "(" ->
    advance t;
    let e = expr t in
    eat_punct t ")";
    e
  | Lexer.IDENT x -> (
    advance t;
    match peek t with
    | Lexer.PUNCT "(" ->
      advance t;
      Ast.Call (x, args t)
    | Lexer.PUNCT "[" -> (
      advance t;
      let i = expr t in
      eat_punct t "]";
      match peek t with
      | Lexer.PUNCT "(" ->
        advance t;
        Ast.Call_indirect (x, i, args t)
      | _ -> Ast.Index (x, i))
    | _ -> Ast.Var x)
  | _ -> fail t "expected expression"

and args t =
  if peek t = Lexer.PUNCT ")" then begin
    advance t;
    []
  end
  else begin
    let rec go acc =
      let e = expr t in
      match peek t with
      | Lexer.PUNCT "," ->
        advance t;
        go (e :: acc)
      | Lexer.PUNCT ")" ->
        advance t;
        List.rev (e :: acc)
      | _ -> fail t "expected ',' or ')'"
    in
    go []
  end

let rec block t =
  eat_punct t "{";
  let rec go acc =
    if peek t = Lexer.PUNCT "}" then begin
      advance t;
      List.rev acc
    end
    else go (stmt t :: acc)
  in
  go []

and simple_stmt t : Ast.stmt =
  (* assignment / declaration / expression, no trailing ';' *)
  match (peek t, t.toks) with
  | Lexer.KW "int", _ ->
    advance t;
    let x = ident t in
    if peek t = Lexer.PUNCT "=" then begin
      advance t;
      Ast.Decl (x, Some (expr t))
    end
    else Ast.Decl (x, None)
  | Lexer.IDENT x, _ :: (Lexer.PUNCT "=", _) :: _ ->
    advance t;
    advance t;
    Ast.Assign (x, expr t)
  | Lexer.IDENT x, _ :: (Lexer.PUNCT p, _) :: _ when compound_of p <> None ->
    advance t;
    advance t;
    Ast.Assign (x, Ast.Bin (Option.get (compound_of p), Ast.Var x, expr t))
  | Lexer.IDENT x, _ :: (Lexer.PUNCT "[", _) :: _ -> (
    advance t;
    advance t;
    let i = expr t in
    eat_punct t "]";
    match peek t with
    | Lexer.PUNCT "=" ->
      advance t;
      Ast.Store (x, i, expr t)
    | Lexer.PUNCT p when compound_of p <> None ->
      (* [i] is duplicated into the load; fine for the side-effect-free
         index expressions MiniC workloads use *)
      advance t;
      Ast.Store
        (x, i, Ast.Bin (Option.get (compound_of p), Ast.Index (x, i), expr t))
    | Lexer.PUNCT "(" ->
      advance t;
      Ast.Expr (Ast.Call_indirect (x, i, args t))
    | _ -> fail t "expected '=' or '(' after index")
  | _ -> Ast.Expr (expr t)

and stmt t : Ast.stmt =
  match peek t with
  | Lexer.KW "if" ->
    advance t;
    eat_punct t "(";
    let c = expr t in
    eat_punct t ")";
    let th = block t in
    let el =
      if peek t = Lexer.KW "else" then begin
        advance t;
        if peek t = Lexer.KW "if" then [ stmt t ] else block t
      end
      else []
    in
    Ast.If (c, th, el)
  | Lexer.KW "while" ->
    advance t;
    eat_punct t "(";
    let c = expr t in
    eat_punct t ")";
    Ast.While (c, block t)
  | Lexer.KW "for" ->
    advance t;
    eat_punct t "(";
    let init =
      if peek t = Lexer.PUNCT ";" then None else Some (simple_stmt t)
    in
    eat_punct t ";";
    let cond = if peek t = Lexer.PUNCT ";" then None else Some (expr t) in
    eat_punct t ";";
    let step =
      if peek t = Lexer.PUNCT ")" then None else Some (simple_stmt t)
    in
    eat_punct t ")";
    Ast.For (init, cond, step, block t)
  | Lexer.KW "switch" ->
    advance t;
    eat_punct t "(";
    let e = expr t in
    eat_punct t ")";
    eat_punct t "{";
    let cases = ref [] in
    let default = ref [] in
    let rec stmts_until_break acc =
      match peek t with
      | Lexer.KW "break" ->
        advance t;
        eat_punct t ";";
        List.rev acc
      | Lexer.PUNCT "}" | Lexer.KW "case" | Lexer.KW "default" -> List.rev acc
      | _ -> stmts_until_break (stmt t :: acc)
    in
    let rec go () =
      match peek t with
      | Lexer.KW "case" ->
        advance t;
        let v = int_lit t in
        eat_punct t ":";
        cases := (v, stmts_until_break []) :: !cases;
        go ()
      | Lexer.KW "default" ->
        advance t;
        eat_punct t ":";
        default := stmts_until_break [];
        go ()
      | Lexer.PUNCT "}" -> advance t
      | _ -> fail t "expected 'case', 'default' or '}'"
    in
    go ();
    Ast.Switch (e, List.rev !cases, !default)
  | Lexer.KW "return" ->
    advance t;
    let e = expr t in
    eat_punct t ";";
    Ast.Return e
  | Lexer.KW "print" ->
    advance t;
    let e = expr t in
    eat_punct t ";";
    Ast.Print e
  | Lexer.KW "putc" ->
    advance t;
    let e = expr t in
    eat_punct t ";";
    Ast.Putc e
  | Lexer.KW "break" ->
    advance t;
    eat_punct t ";";
    Ast.Break
  | Lexer.KW "continue" ->
    advance t;
    eat_punct t ";";
    Ast.Continue
  | _ ->
    let s = simple_stmt t in
    eat_punct t ";";
    s

let global t : Ast.global option =
  match peek t with
  | Lexer.KW "func" ->
    advance t;
    let name = ident t in
    eat_punct t "[";
    (match peek t with Lexer.INT _ -> advance t | _ -> ());
    eat_punct t "]";
    eat_punct t "=";
    eat_punct t "{";
    let rec go acc =
      let f = ident t in
      match peek t with
      | Lexer.PUNCT "," ->
        advance t;
        go (f :: acc)
      | Lexer.PUNCT "}" ->
        advance t;
        List.rev (f :: acc)
      | _ -> fail t "expected ',' or '}'"
    in
    let fs = go [] in
    eat_punct t ";";
    Some (Ast.Gfuncs (name, fs))
  | Lexer.KW "byte" ->
    advance t;
    let name = ident t in
    eat_punct t "[";
    let n = Int64.to_int (int_lit t) in
    eat_punct t "]";
    let init =
      if peek t = Lexer.PUNCT "=" then begin
        advance t;
        match peek t with
        | Lexer.STR s ->
          advance t;
          Some s
        | _ -> fail t "expected string initialiser"
      end
      else None
    in
    eat_punct t ";";
    Some (Ast.Gbytes (name, n, init))
  | Lexer.KW "int" -> (
    (* lookahead: "int name (" is a function, handled by the caller *)
    match t.toks with
    | _ :: (Lexer.IDENT _, _) :: (Lexer.PUNCT "(", _) :: _ -> None
    | _ ->
      advance t;
      let name = ident t in
      if peek t = Lexer.PUNCT "[" then begin
        advance t;
        let n = Int64.to_int (int_lit t) in
        eat_punct t "]";
        let init =
          if peek t = Lexer.PUNCT "=" then begin
            advance t;
            eat_punct t "{";
            let rec go acc =
              let v = int_lit t in
              match peek t with
              | Lexer.PUNCT "," ->
                advance t;
                go (v :: acc)
              | Lexer.PUNCT "}" ->
                advance t;
                List.rev (v :: acc)
              | _ -> fail t "expected ',' or '}'"
            in
            go []
          end
          else []
        in
        eat_punct t ";";
        Some (Ast.Garray (name, n, init))
      end
      else begin
        let v = if peek t = Lexer.PUNCT "=" then (advance t; int_lit t) else 0L in
        eat_punct t ";";
        Some (Ast.Gscalar (name, v))
      end)
  | _ -> None

let func t : Ast.func =
  eat t (Lexer.KW "int");
  let name = ident t in
  eat_punct t "(";
  let params =
    if peek t = Lexer.PUNCT ")" then begin
      advance t;
      []
    end
    else begin
      let rec go acc =
        eat t (Lexer.KW "int");
        let p = ident t in
        match peek t with
        | Lexer.PUNCT "," ->
          advance t;
          go (p :: acc)
        | Lexer.PUNCT ")" ->
          advance t;
          List.rev (p :: acc)
        | _ -> fail t "expected ',' or ')'"
      in
      go []
    end
  in
  if List.length params > 6 then fail t "at most 6 parameters";
  { Ast.name; params; body = block t }

let parse src : Ast.program =
  let t = { toks = Lexer.tokenize src } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match peek t with
    | Lexer.EOF -> ()
    | _ -> (
      match global t with
      | Some g ->
        globals := g :: !globals;
        go ()
      | None ->
        funcs := func t :: !funcs;
        go ())
  in
  go ();
  { globals = List.rev !globals; funcs = List.rev !funcs }
