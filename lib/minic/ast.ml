(* MiniC abstract syntax.

   A small C-like language, rich enough to author the SPEC-INT-analogue
   workloads the way the paper's workloads were authored in C: 64-bit
   integer scalars, global int/byte arrays, functions with up to six
   arguments, control flow including [switch] (compiled to a jump table,
   i.e. register-indirect jumps) and function-pointer tables (indirect
   calls). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr | Lshr (* >> is arithmetic, >>> logical *)
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor (* short-circuit *)

type unop = Neg | Not (* logical *) | Bnot (* bitwise *)

type expr =
  | Int of int64
  | Var of string
  | Index of string * expr (* array element *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | Call_indirect of string * expr * expr list (* table[idx](args) *)

type stmt =
  | Decl of string * expr option (* int x = e; *)
  | Assign of string * expr
  | Store of string * expr * expr (* a[i] = e; *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Switch of expr * (int64 * stmt list) list * stmt list (* cases, default *)
  | Return of expr
  | Expr of expr
  | Print of expr (* decimal + newline, PAL putint *)
  | Putc of expr
  | Break
  | Continue

type global =
  | Gscalar of string * int64 (* int g = k; *)
  | Garray of string * int * int64 list (* int a[n] = {...}; *)
  | Gbytes of string * int * string option (* byte b[n]; optional init *)
  | Gfuncs of string * string list (* func tab[] = { f, g, ... }; *)

type func = { name : string; params : string list; body : stmt list }

type program = { globals : global list; funcs : func list }
