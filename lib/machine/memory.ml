(* Sparse little-endian byte-addressable memory with explicit mapping.

   The simulated machine's physical memory. Backed by 64 KiB chunks that must
   be explicitly [map]ped before use; an access to an unmapped chunk raises
   [Fault], which the Alpha interpreter and the DBT runtime turn into a
   precise memory trap. This gives us a realistic "unmapped page" trap source
   for the precise-trap experiments. *)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

exception Fault of int
(** [Fault addr] is raised on any access to an unmapped address. *)

type t = {
  chunks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;  (* accounting, used by tests *)
  mutable writes : int;
  (* Optional write-set tracking: when [track_dirty] is on, every store
     records its chunk index in [dirty]. Off by default so the hot
     simulation path pays only a branch; the differential oracle turns it
     on to confine per-boundary memory comparison to written pages. *)
  mutable track_dirty : bool;
  dirty : (int, unit) Hashtbl.t;
}

let create () =
  {
    chunks = Hashtbl.create 64;
    reads = 0;
    writes = 0;
    track_dirty = false;
    dirty = Hashtbl.create 16;
  }

let copy t =
  let chunks = Hashtbl.create (Hashtbl.length t.chunks) in
  Hashtbl.iter (fun k v -> Hashtbl.replace chunks k (Bytes.copy v)) t.chunks;
  {
    chunks;
    reads = t.reads;
    writes = t.writes;
    track_dirty = t.track_dirty;
    dirty = Hashtbl.copy t.dirty;
  }

let set_dirty_tracking t on = t.track_dirty <- on
let clear_dirty t = Hashtbl.reset t.dirty

let dirty_chunks t =
  Hashtbl.fold (fun c () acc -> c :: acc) t.dirty [] |> List.sort compare

let chunk_bytes t c = Hashtbl.find_opt t.chunks c

let mark t addr =
  if t.track_dirty then Hashtbl.replace t.dirty (addr lsr chunk_bits) ()

(* Map every chunk overlapping [addr, addr+len). Freshly mapped chunks are
   zero-filled. Mapping an already-mapped chunk is a no-op. *)
let map t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr chunk_bits and last = (addr + len - 1) lsr chunk_bits in
    for c = first to last do
      if not (Hashtbl.mem t.chunks c) then
        Hashtbl.replace t.chunks c (Bytes.make chunk_size '\000')
    done
  end

let is_mapped t addr = Hashtbl.mem t.chunks (addr lsr chunk_bits)

let chunk_of t addr =
  match Hashtbl.find_opt t.chunks (addr lsr chunk_bits) with
  | Some b -> b
  | None -> raise (Fault addr)

(* Single-byte accessors; multi-byte accessors decompose at chunk borders
   (rare) and use fast Bytes primitives within a chunk. *)

let get_u8 t addr =
  t.reads <- t.reads + 1;
  Char.code (Bytes.unsafe_get (chunk_of t addr) (addr land (chunk_size - 1)))

let set_u8 t addr v =
  t.writes <- t.writes + 1;
  mark t addr;
  Bytes.unsafe_set (chunk_of t addr) (addr land (chunk_size - 1))
    (Char.unsafe_chr (v land 0xff))

let in_chunk addr width = addr land (chunk_size - 1) <= chunk_size - width

let get_u16 t addr =
  if in_chunk addr 2 then begin
    t.reads <- t.reads + 1;
    Bytes.get_uint16_le (chunk_of t addr) (addr land (chunk_size - 1))
  end
  else get_u8 t addr lor (get_u8 t (addr + 1) lsl 8)

let set_u16 t addr v =
  if in_chunk addr 2 then begin
    t.writes <- t.writes + 1;
    mark t addr;
    Bytes.set_uint16_le (chunk_of t addr) (addr land (chunk_size - 1)) (v land 0xffff)
  end
  else begin
    set_u8 t addr v;
    set_u8 t (addr + 1) (v lsr 8)
  end

let get_u32 t addr =
  if in_chunk addr 4 then begin
    t.reads <- t.reads + 1;
    Int32.to_int (Bytes.get_int32_le (chunk_of t addr) (addr land (chunk_size - 1)))
    land 0xffffffff
  end
  else get_u16 t addr lor (get_u16 t (addr + 2) lsl 16)

let set_u32 t addr v =
  if in_chunk addr 4 then begin
    t.writes <- t.writes + 1;
    mark t addr;
    Bytes.set_int32_le (chunk_of t addr) (addr land (chunk_size - 1))
      (Int32.of_int (v land 0xffffffff))
  end
  else begin
    set_u16 t addr v;
    set_u16 t (addr + 2) (v lsr 16)
  end

let get_i64 t addr =
  if in_chunk addr 8 then begin
    t.reads <- t.reads + 1;
    Bytes.get_int64_le (chunk_of t addr) (addr land (chunk_size - 1))
  end
  else
    Int64.logor
      (Int64.of_int (get_u32 t addr))
      (Int64.shift_left (Int64.of_int (get_u32 t (addr + 4))) 32)

let set_i64 t addr v =
  if in_chunk addr 8 then begin
    t.writes <- t.writes + 1;
    mark t addr;
    Bytes.set_int64_le (chunk_of t addr) (addr land (chunk_size - 1)) v
  end
  else begin
    set_u32 t addr (Int64.to_int (Int64.logand v 0xffffffffL));
    set_u32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical v 32))
  end

(* Zero a mapped range (used when the VM flushes its dispatch table). *)
let fill_zero t ~addr ~len =
  let i = ref 0 in
  while !i < len do
    if len - !i >= 8 && in_chunk (addr + !i) 8 then begin
      set_i64 t (addr + !i) 0L;
      i := !i + 8
    end
    else begin
      set_u8 t (addr + !i) 0;
      incr i
    end
  done

(* Bulk write used by the program loader. *)
let blit_string t ~addr s =
  String.iteri (fun i c -> set_u8 t (addr + i) (Char.code c)) s

(* FNV-1a checksum over a mapped range; used by tests to compare final memory
   images between execution modes. *)
let checksum t ~addr ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to len - 1 do
    let b = if is_mapped t (addr + i) then get_u8 t (addr + i) else 0 in
    h := Int64.mul (Int64.logxor !h (Int64.of_int b)) 0x100000001b3L
  done;
  !h
