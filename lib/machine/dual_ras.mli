(** Dual-address return address stack — the paper's proposed co-designed VM
    hardware feature (Section 3.2).

    Each entry pairs a V-ISA (source) return address with the I-ISA
    (translated-code) address at which execution should resume. A
    push-dual-RAS instruction pushes the pair; a dual-RAS return pops it,
    verifies the V-address against the architected return register, and on
    a match jumps straight to the popped I-address. *)

type entry = { v_addr : int; i_addr : int option }
(** [i_addr = None] records a call whose return point has no translated
    target: the slot keeps call/return nesting aligned, but a verifying
    pop cannot jump anywhere and is counted as a miss. *)

type t = {
  buf : entry array;
  mutable top : int;
  mutable depth : int;
  mutable pushes : int;
  mutable pops : int;
  mutable hits : int;
  mutable overflows : int;
      (** pushes that evicted a live entry (stack already at capacity) *)
}

val create : ?entries:int -> unit -> t
(** 8 entries by default (Table 1). *)

val clear : t -> unit

val push : t -> v_addr:int -> i_addr:int option -> unit
(** Push a pair; beyond capacity the oldest entry is overwritten. *)

val pop_verify : t -> v_actual:int -> int option
(** Pop and verify against the actual V-ISA return address. [Some i_addr]
    when the prediction verifies against a live target; [None] when the
    stack was empty, the pair is stale, or the pushed return point had no
    translation (only the [Some] case counts as a hit). *)

val hit_rate : t -> float
