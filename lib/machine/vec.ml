(* Minimal growable array (OCaml 5.1 predates stdlib Dynarray).

   Used for the translation cache's code and metadata arrays, which grow
   monotonically as fragments are installed and support in-place patching. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let initial_capacity = 16

let create ~dummy = { data = Array.make initial_capacity dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let clear t = t.len <- 0

let reset t =
  t.len <- 0;
  if Array.length t.data > initial_capacity then
    t.data <- Array.make initial_capacity t.dummy

let capacity t = Array.length t.data

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc
