(* Dual-address return address stack — the paper's proposed co-designed VM
   hardware feature (Section 3.2).

   Each entry pairs a V-ISA (source) return address with the I-ISA
   (translated-code) address at which execution should resume. A
   [push-dual-RAS] instruction pushes the pair; a dual-RAS return pops it,
   compares the predicted V-address against the architected return-address
   register, and on a match jumps straight to the popped I-address. On a
   mismatch control falls through to chaining code that reaches the shared
   dispatch. *)

(* [i_addr = None] records a call whose return point has no translation
   (yet): the pair still occupies a stack slot so call/return nesting stays
   aligned, but a verifying pop cannot produce a target and reports a miss.
   (An earlier version stored a [-1] sentinel integer here and relied on
   every consumer filtering it out; the option makes the "no target" case
   impossible to mistake for a live I-address.) *)
type entry = { v_addr : int; i_addr : int option }

type t = {
  buf : entry array;
  mutable top : int;
  mutable depth : int;
  mutable pushes : int;
  mutable pops : int;
  mutable hits : int;
  mutable overflows : int;
}

let create ?(entries = 8) () =
  {
    buf = Array.make entries { v_addr = 0; i_addr = None };
    top = 0;
    depth = 0;
    pushes = 0;
    pops = 0;
    hits = 0;
    overflows = 0;
  }

let clear t =
  t.top <- 0;
  t.depth <- 0

let push t ~v_addr ~i_addr =
  t.pushes <- t.pushes + 1;
  if t.depth = Array.length t.buf then t.overflows <- t.overflows + 1;
  t.buf.(t.top) <- { v_addr; i_addr };
  t.top <- (t.top + 1) mod Array.length t.buf;
  t.depth <- min (t.depth + 1) (Array.length t.buf)

(* Pop and verify against the actual V-ISA return address held in the return
   register. Returns [Some i_addr] when the prediction verifies (the common
   case), [None] when the stack was empty, the pair is stale, or the pushed
   return point had no translated target. Only a usable target counts as a
   hit — a verified pair without an I-address still falls through to the
   dispatch, which is a miss as far as the hardware is concerned. *)
let pop_verify t ~v_actual =
  t.pops <- t.pops + 1;
  if t.depth = 0 then None
  else begin
    t.top <- (t.top + Array.length t.buf - 1) mod Array.length t.buf;
    t.depth <- t.depth - 1;
    let e = t.buf.(t.top) in
    match e.i_addr with
    | Some i when e.v_addr = v_actual ->
      t.hits <- t.hits + 1;
      Some i
    | _ -> None
  end

let hit_rate t =
  if t.pops = 0 then 1.0 else float_of_int t.hits /. float_of_int t.pops
