(** Sparse little-endian byte-addressable memory with explicit mapping.

    The simulated machine's physical memory, backed by 64 KiB chunks that
    must be explicitly {!map}ped before use. Accessing an unmapped chunk
    raises {!Fault}, which the Alpha interpreter and the DBT runtime turn
    into a precise memory trap. *)

exception Fault of int
(** [Fault addr] is raised on any access to an unmapped address. *)

type t = {
  chunks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;  (** access accounting, used by tests *)
  mutable writes : int;
  mutable track_dirty : bool;  (** when on, stores record their chunk *)
  dirty : (int, unit) Hashtbl.t;
}

val chunk_bits : int
(** log2 of the chunk (page) size; chunk index of address [a] is
    [a lsr chunk_bits]. *)

val create : unit -> t

val set_dirty_tracking : t -> bool -> unit
(** Enable or disable write-set tracking. Off by default: the hot
    simulation path then pays only a branch per store. The differential
    oracle enables it so per-boundary memory comparison can be confined
    to pages actually written. *)

val dirty_chunks : t -> int list
(** Chunk indices written since tracking was enabled (or last
    {!clear_dirty}), sorted ascending. *)

val clear_dirty : t -> unit

val chunk_bytes : t -> int -> Bytes.t option
(** Backing bytes of a chunk by index, if mapped. Treat as read-only. *)

val copy : t -> t
(** Deep copy (used by tests to snapshot a memory image). *)

val map : t -> addr:int -> len:int -> unit
(** Map every chunk overlapping [addr, addr+len). Freshly mapped chunks are
    zero-filled; remapping is a no-op. *)

val is_mapped : t -> int -> bool

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit
(** Little-endian accessors of each width. Multi-byte accesses may straddle
    chunk boundaries. All raise {!Fault} on unmapped addresses. *)

val fill_zero : t -> addr:int -> len:int -> unit
(** Zero a mapped range (used when the VM flushes its dispatch table). *)

val blit_string : t -> addr:int -> string -> unit
(** Bulk write, used by the program loader. *)

val checksum : t -> addr:int -> len:int -> int64
(** FNV-1a hash over a range (unmapped bytes read as zero); used by tests
    to compare final memory images between execution modes. *)
