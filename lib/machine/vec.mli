(** Minimal growable array (OCaml 5.1 predates stdlib [Dynarray]).

    Backs the translation cache's code and metadata arrays, which grow
    monotonically as fragments are installed and support in-place
    patching. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
(** Reset to length zero (capacity retained). *)

val reset : 'a t -> unit
(** Reset to length zero and drop the backing storage to the initial
    capacity. For vectors with episodic growth (the translation cache's
    patch log grows during a generation and empties on flush), [clear]
    would pin the high-water allocation forever; [reset] returns it. *)

val capacity : 'a t -> int
(** Current backing-array size (>= [length]). *)

val push : 'a t -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
