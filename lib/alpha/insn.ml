(* Alpha instruction set (integer subset) plus co-designed VM extensions.

   The conventional constructors cover the integer subset SPEC INT code
   needs: loads/stores of all widths, LDA/LDAH, the operate-format
   arithmetic/logical/shift/byte/multiply/conditional-move groups, direct
   branches, register-indirect jumps, and CALL_PAL. They encode and decode
   to/from the genuine Alpha 32-bit formats (see {!Encode}/{!Decode}).

   The VM extension constructors (LTA, PUSH-DRAS, RET-DRAS, CALL-XLATE,
   SET-VBASE) are the special instructions of Section 3.2 of the paper. They
   appear only in translated code held in the translation cache (never in
   simulated V-ISA memory), so they have no 32-bit memory encoding. *)

type reg = Reg.t

type mem_op = Ldq | Ldl | Ldwu | Ldbu | Stq | Stl | Stw | Stb | Lda | Ldah

type op3 =
  | Addl | Addq | Subl | Subq
  | S4addl | S4addq | S8addl | S8addq | S4subl | S4subq | S8subl | S8subq
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule | Cmpbge
  | And_ | Bic | Bis | Ornot | Xor | Eqv
  | Sll | Srl | Sra
  | Extbl | Extwl | Extll | Extql | Extwh | Extlh | Extqh
  | Insbl | Inswl | Insll | Insql
  | Mskbl | Mskwl | Mskll | Mskql
  | Zap | Zapnot
  | Mull | Mulq | Umulh
  | Sextb | Sextw
  | Ctpop | Ctlz | Cttz (* EV67 CIX count extensions *)
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc

type operand = Rb of reg | Imm of int (* unsigned literal 0..255 *)

type cond = Eq | Ne | Lt | Ge | Le | Gt | Lbc | Lbs

type jkind = Jmp | Jsr | Ret

type t =
  | Mem of mem_op * reg * int * reg (* op ra, disp(rb); disp signed 16-bit *)
  | Opr of op3 * reg * operand * reg (* op ra, rb|#lit, rc *)
  | Br of reg * int (* ra <- pc+4; pc <- pc+4 + 4*disp *)
  | Bsr of reg * int
  | Bc of cond * reg * int (* conditional branch on ra *)
  | Jump of jkind * reg * reg (* ra <- pc+4; pc <- rb land ~3 *)
  | Call_pal of int
  (* --- co-designed VM extensions --- *)
  | Lta of reg * int (* load-embedded-target-address: ra <- addr *)
  | Push_dras of reg * int * int (* ra <- v_ret; dual-RAS push (v_ret,i_ret) *)
  | Ret_dras of reg (* dual-RAS return; V-address checked against rb *)
  | Call_xlate of int (* unconditional exit to the translator (exit id) *)
  | Call_xlate_cond of cond * reg * int (* exit if condition met (exit id) *)
  | Set_vbase of int (* record V-ISA address of the translation group *)

(* ---------- classification ---------- *)

let is_load = function
  | Mem ((Ldq | Ldl | Ldwu | Ldbu), _, _, _) -> true
  | _ -> false

let is_store = function
  | Mem ((Stq | Stl | Stw | Stb), _, _, _) -> true
  | _ -> false

let is_cmov = function
  | Opr
      ( (Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc),
        _, _, _ ) ->
    true
  | _ -> false

let is_control = function
  | Br _ | Bsr _ | Bc _ | Jump _ | Ret_dras _ | Call_xlate _
  | Call_xlate_cond _ ->
    true
  | _ -> false

let is_mul = function Opr ((Mull | Mulq | Umulh), _, _, _) -> true | _ -> false

(* Potentially excepting instruction: can raise a precise V-ISA trap.
   In this machine those are the memory accesses (unmapped-address faults)
   and CALL_PAL (system entry). *)
let is_pei = function
  | Mem ((Ldq | Ldl | Ldwu | Ldbu | Stq | Stl | Stw | Stb), _, _, _) -> true
  | Call_pal _ -> true
  | _ -> false

let cmov_cond = function
  | Cmoveq -> Eq | Cmovne -> Ne | Cmovlt -> Lt | Cmovge -> Ge
  | Cmovle -> Le | Cmovgt -> Gt | Cmovlbs -> Lbs | Cmovlbc -> Lbc
  | _ -> invalid_arg "cmov_cond"

(* Registers read. [Reg.zero] is included when it appears syntactically; the
   consumers filter it where it matters. *)
let srcs = function
  | Mem ((Lda | Ldah), _, _, rb) -> [ rb ]
  | Mem ((Ldq | Ldl | Ldwu | Ldbu), _, _, rb) -> [ rb ]
  | Mem (_, ra, _, rb) -> [ ra; rb ] (* store: value, base *)
  | Opr (op, ra, rb, rc) ->
    let base = match rb with Rb r -> [ ra; r ] | Imm _ -> [ ra ] in
    if is_cmov (Opr (op, ra, rb, rc)) then base @ [ rc ] else base
  | Br _ | Bsr _ -> []
  | Bc (_, ra, _) -> [ ra ]
  | Jump (_, _, rb) -> [ rb ]
  | Call_pal _ -> []
  | Lta _ -> []
  | Push_dras _ -> []
  | Ret_dras rb -> [ rb ]
  | Call_xlate _ -> []
  | Call_xlate_cond (_, ra, _) -> [ ra ]
  | Set_vbase _ -> []

(* Register written, if any ([Reg.zero] writes are discarded at execution). *)
let dest = function
  | Mem ((Ldq | Ldl | Ldwu | Ldbu | Lda | Ldah), ra, _, _) -> Some ra
  | Mem (_, _, _, _) -> None
  | Opr (_, _, _, rc) -> Some rc
  | Br (ra, _) | Bsr (ra, _) -> if ra = Reg.zero then None else Some ra
  | Bc _ -> None
  | Jump (_, ra, _) -> if ra = Reg.zero then None else Some ra
  | Call_pal _ -> None
  | Lta (ra, _) -> Some ra
  | Push_dras (ra, _, _) -> if ra = Reg.zero then None else Some ra
  | Ret_dras _ | Call_xlate _ | Call_xlate_cond _ | Set_vbase _ -> None

(* ---------- operator semantics ----------

   Shared by the Alpha interpreter and (after translation) the I-ISA
   execution engine: translation re-maps operands but reuses these exact
   value functions, which is what makes the "same architected results"
   invariant testable. *)

let sext32 v = Int64.of_int32 (Int64.to_int32 v)
let sext8 v = Int64.shift_right (Int64.shift_left v 56) 56
let sext16 v = Int64.shift_right (Int64.shift_left v 48) 48

let umulh a b =
  (* high 64 bits of the unsigned 128-bit product, by 32-bit limbs *)
  let mask = 0xffffffffL in
  let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid =
    Int64.add
      (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh mask))
      (Int64.logand hl mask)
  in
  Int64.add
    (Int64.add hh (Int64.shift_right_logical mid 32))
    (Int64.add (Int64.shift_right_logical lh 32) (Int64.shift_right_logical hl 32))

let cond_true c v =
  match c with
  | Eq -> Int64.equal v 0L
  | Ne -> not (Int64.equal v 0L)
  | Lt -> Int64.compare v 0L < 0
  | Ge -> Int64.compare v 0L >= 0
  | Le -> Int64.compare v 0L <= 0
  | Gt -> Int64.compare v 0L > 0
  | Lbc -> Int64.logand v 1L = 0L
  | Lbs -> Int64.logand v 1L = 1L

let bool64 b = if b then 1L else 0L
let byte_shift b = Int64.to_int (Int64.logand b 7L) * 8

(* [eval_op op a b] for every non-conditional-move operate. Conditional moves
   are three-input and are handled by their decomposition (see core.Node). *)
let eval_op op a b =
  match op with
  | Addl -> sext32 (Int64.add a b)
  | Addq -> Int64.add a b
  | Subl -> sext32 (Int64.sub a b)
  | Subq -> Int64.sub a b
  | S4addl -> sext32 (Int64.add (Int64.mul a 4L) b)
  | S4addq -> Int64.add (Int64.mul a 4L) b
  | S8addl -> sext32 (Int64.add (Int64.mul a 8L) b)
  | S8addq -> Int64.add (Int64.mul a 8L) b
  | S4subl -> sext32 (Int64.sub (Int64.mul a 4L) b)
  | S4subq -> Int64.sub (Int64.mul a 4L) b
  | S8subl -> sext32 (Int64.sub (Int64.mul a 8L) b)
  | S8subq -> Int64.sub (Int64.mul a 8L) b
  | Cmpeq -> bool64 (Int64.equal a b)
  | Cmplt -> bool64 (Int64.compare a b < 0)
  | Cmple -> bool64 (Int64.compare a b <= 0)
  | Cmpult -> bool64 (Int64.unsigned_compare a b < 0)
  | Cmpule -> bool64 (Int64.unsigned_compare a b <= 0)
  | And_ -> Int64.logand a b
  | Bic -> Int64.logand a (Int64.lognot b)
  | Bis -> Int64.logor a b
  | Ornot -> Int64.logor a (Int64.lognot b)
  | Xor -> Int64.logxor a b
  | Eqv -> Int64.logxor a (Int64.lognot b)
  | Sll -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Srl -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Sra -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | Extbl -> Int64.logand (Int64.shift_right_logical a (byte_shift b)) 0xffL
  | Extwl -> Int64.logand (Int64.shift_right_logical a (byte_shift b)) 0xffffL
  | Extll ->
    Int64.logand (Int64.shift_right_logical a (byte_shift b)) 0xffffffffL
  | Extql -> Int64.shift_right_logical a (byte_shift b)
  | Extwh ->
    Int64.logand (Int64.shift_left a ((64 - byte_shift b) land 63)) 0xffffL
  | Extlh ->
    Int64.logand (Int64.shift_left a ((64 - byte_shift b) land 63)) 0xffffffffL
  | Extqh -> Int64.shift_left a ((64 - byte_shift b) land 63)
  | Insbl -> Int64.shift_left (Int64.logand a 0xffL) (byte_shift b)
  | Inswl -> Int64.shift_left (Int64.logand a 0xffffL) (byte_shift b)
  | Insll -> Int64.shift_left (Int64.logand a 0xffffffffL) (byte_shift b)
  | Insql -> Int64.shift_left a (byte_shift b)
  | Mskbl ->
    Int64.logand a (Int64.lognot (Int64.shift_left 0xffL (byte_shift b)))
  | Mskwl ->
    Int64.logand a (Int64.lognot (Int64.shift_left 0xffffL (byte_shift b)))
  | Mskll ->
    Int64.logand a (Int64.lognot (Int64.shift_left 0xffffffffL (byte_shift b)))
  | Mskql ->
    Int64.logand a (Int64.lognot (Int64.shift_left (-1L) (byte_shift b)))
  | Cmpbge ->
    (* per-byte unsigned a >= b, result mask in the low 8 bits *)
    let m = ref 0L in
    for i = 0 to 7 do
      let ba = Int64.logand (Int64.shift_right_logical a (8 * i)) 0xffL in
      let bb = Int64.logand (Int64.shift_right_logical b (8 * i)) 0xffL in
      if Int64.unsigned_compare ba bb >= 0 then
        m := Int64.logor !m (Int64.of_int (1 lsl i))
    done;
    !m
  | Zap ->
    let msk = Int64.to_int (Int64.logand b 0xffL) in
    let keep = ref 0L in
    for i = 0 to 7 do
      if msk land (1 lsl i) = 0 then
        keep := Int64.logor !keep (Int64.shift_left 0xffL (i * 8))
    done;
    Int64.logand a !keep
  | Zapnot ->
    let m = Int64.to_int (Int64.logand b 0xffL) in
    let keep = ref 0L in
    for i = 0 to 7 do
      if m land (1 lsl i) <> 0 then
        keep := Int64.logor !keep (Int64.shift_left 0xffL (i * 8))
    done;
    Int64.logand a !keep
  | Mull -> sext32 (Int64.mul a b)
  | Mulq -> Int64.mul a b
  | Umulh -> umulh a b
  | Sextb -> sext8 b
  | Sextw -> sext16 b
  | Ctpop ->
    let n = ref 0 and v = ref b in
    for _ = 0 to 63 do
      n := !n + Int64.to_int (Int64.logand !v 1L);
      v := Int64.shift_right_logical !v 1
    done;
    Int64.of_int !n
  | Ctlz ->
    let n = ref 0 and v = ref b in
    (try
       for _ = 0 to 63 do
         if Int64.logand !v Int64.min_int <> 0L then raise Exit;
         incr n;
         v := Int64.shift_left !v 1
       done
     with Exit -> ());
    Int64.of_int !n
  | Cttz ->
    let n = ref 0 and v = ref b in
    (try
       for _ = 0 to 63 do
         if Int64.logand !v 1L <> 0L then raise Exit;
         incr n;
         v := Int64.shift_right_logical !v 1
       done
     with Exit -> ());
    Int64.of_int !n
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc ->
    invalid_arg "eval_op: conditional move needs three operands"

(* ---------- pre-matched operator closures ----------

   The threaded-code execution engines resolve the operator once per
   translated slot, at fragment-compile time, and then call straight into
   the operation body on every execution. [cond_fn]/[eval_fn] return the
   exact same value functions as [cond_true]/[eval_op] — the loop-based
   rarities simply close over [eval_op] — so the "same architected
   results" invariant is unchanged. *)

let cond_fn c : int64 -> bool =
  match c with
  | Eq -> fun v -> Int64.equal v 0L
  | Ne -> fun v -> not (Int64.equal v 0L)
  | Lt -> fun v -> Int64.compare v 0L < 0
  | Ge -> fun v -> Int64.compare v 0L >= 0
  | Le -> fun v -> Int64.compare v 0L <= 0
  | Gt -> fun v -> Int64.compare v 0L > 0
  | Lbc -> fun v -> Int64.equal (Int64.logand v 1L) 0L
  | Lbs -> fun v -> Int64.equal (Int64.logand v 1L) 1L

let eval_fn op : int64 -> int64 -> int64 =
  match op with
  | Addl -> fun a b -> sext32 (Int64.add a b)
  | Addq -> Int64.add
  | Subl -> fun a b -> sext32 (Int64.sub a b)
  | Subq -> Int64.sub
  | S4addl -> fun a b -> sext32 (Int64.add (Int64.mul a 4L) b)
  | S4addq -> fun a b -> Int64.add (Int64.mul a 4L) b
  | S8addl -> fun a b -> sext32 (Int64.add (Int64.mul a 8L) b)
  | S8addq -> fun a b -> Int64.add (Int64.mul a 8L) b
  | S4subl -> fun a b -> sext32 (Int64.sub (Int64.mul a 4L) b)
  | S4subq -> fun a b -> Int64.sub (Int64.mul a 4L) b
  | S8subl -> fun a b -> sext32 (Int64.sub (Int64.mul a 8L) b)
  | S8subq -> fun a b -> Int64.sub (Int64.mul a 8L) b
  | Cmpeq -> fun a b -> bool64 (Int64.equal a b)
  | Cmplt -> fun a b -> bool64 (Int64.compare a b < 0)
  | Cmple -> fun a b -> bool64 (Int64.compare a b <= 0)
  | Cmpult -> fun a b -> bool64 (Int64.unsigned_compare a b < 0)
  | Cmpule -> fun a b -> bool64 (Int64.unsigned_compare a b <= 0)
  | And_ -> Int64.logand
  | Bic -> fun a b -> Int64.logand a (Int64.lognot b)
  | Bis -> Int64.logor
  | Ornot -> fun a b -> Int64.logor a (Int64.lognot b)
  | Xor -> Int64.logxor
  | Eqv -> fun a b -> Int64.logxor a (Int64.lognot b)
  | Sll -> fun a b -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Srl ->
    fun a b -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Sra -> fun a b -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | Mull -> fun a b -> sext32 (Int64.mul a b)
  | Mulq -> Int64.mul
  | Umulh -> umulh
  | Sextb -> fun _ b -> sext8 b
  | Sextw -> fun _ b -> sext16 b
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc ->
    invalid_arg "eval_fn: conditional move needs three operands"
  | Extbl | Extwl | Extll | Extql | Extwh | Extlh | Extqh | Insbl | Inswl
  | Insll | Insql | Mskbl | Mskwl | Mskll | Mskql | Zap | Zapnot | Cmpbge
  | Ctpop | Ctlz | Cttz ->
    eval_op op
