(* Fast-forward timing benchmark: sampled vs full-fidelity ILDP timing
   over the twelve workloads, plus the static-annotation tier.

   Three timed arms per workload, all over the acc backend:

   - full fidelity: every translated-code event feeds the detailed Ildp
     model — the reference cycle count;
   - sampled: the same model behind the {!Uarch.Fastfwd} interval
     controller, which feeds only warm-up + detail windows and
     back-charges the skipped remainder at the measured rate;
   - static tier: a sink-less threaded-engine run with translation-time
     cycle annotation, whose bulk-charged [st_cycles] is reported as the
     zero-event estimate. Reported, never gated: it prices warmed,
     well-predicted straight-line code, so it bounds the detailed count
     from below by construction.

   A fourth, untimed arm runs the controller with [interval = 0] at
   scale 1 and demands its cycle count equal the wrapped model's exactly
   — the sampling-off lockstep invariant. [--check] gates on the
   per-workload sampled-vs-full IPC error and on that invariant, not on
   any wall-clock quantity. *)

type arm = {
  outcome : string;
  cycles : int;
  alpha : int; (* V-ISA instructions retired in translated mode *)
  secs : float;
}

let default_fuel = 100_000_000

(* The sampled run must stay within this relative V-IPC error of the
   full-fidelity run; recorded in the baseline so the gate and the
   committed record cannot drift apart. *)
let err_bound = 0.05

let v_ipc (a : arm) = float_of_int a.alpha /. float_of_int (max 1 a.cycles)

let outcome_string = function
  | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
  | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
  | Core.Vm.Out_of_fuel -> "fuel"

(* One instrumented VM run with the given sink/boundary; [alpha] is
   accumulated here rather than read from the model so full, sampled and
   probe arms count retirement identically. *)
let timed_run ~scale ~fuel ~sink ~boundary ~cycles w =
  let prog = Workloads.program ~scale w in
  let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
  let alpha = ref 0 in
  let sink ev =
    alpha := !alpha + ev.Machine.Ev.alpha_count;
    sink ev
  in
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Vm.run ~sink ~boundary ~fuel vm in
  let secs = Unix.gettimeofday () -. t0 in
  { outcome = outcome_string outcome; cycles = cycles (); alpha = !alpha; secs }

let run_full ~scale ~fuel w =
  let m = Uarch.Ildp.create () in
  timed_run ~scale ~fuel ~sink:(Uarch.Ildp.feed m)
    ~boundary:(fun () -> Uarch.Ildp.boundary m)
    ~cycles:(fun () -> Uarch.Ildp.cycles m)
    w

let sampling_ctl ?interval ?warmup ?detail m =
  Uarch.Fastfwd.create ?interval ?warmup ?detail ~warm:(Uarch.Ildp.warm m)
    ~feed:(Uarch.Ildp.feed m)
    ~boundary:(fun () -> Uarch.Ildp.boundary m)
    ~cycles:(fun () -> m.Uarch.Ildp.last_commit)
    ()

let run_sampled ~interval ~scale ~fuel w =
  let m = Uarch.Ildp.create () in
  let ctl = sampling_ctl ~interval m in
  timed_run ~scale ~fuel ~sink:(Uarch.Fastfwd.feed ctl)
    ~boundary:(fun () -> Uarch.Fastfwd.boundary ctl)
    ~cycles:(fun () -> Uarch.Fastfwd.cycles ctl)
    w

(* Sampling-off lockstep probe: with [interval = 0] the controller must
   agree with the wrapped model cycle-for-cycle. Scale 1 — the invariant
   is structural, not statistical. *)
let run_exact_probe ~fuel w =
  let m = Uarch.Ildp.create () in
  let ctl = sampling_ctl ~interval:0 m in
  let r =
    timed_run ~scale:1 ~fuel ~sink:(Uarch.Fastfwd.feed ctl)
      ~boundary:(fun () -> Uarch.Fastfwd.boundary ctl)
      ~cycles:(fun () -> Uarch.Fastfwd.cycles ctl)
      w
  in
  (r, r.cycles = Uarch.Ildp.cycles m)

(* Static tier: threaded engine, no sink, translation-time annotation;
   the engines bulk-charge the per-slot costs as [st_cycles]. *)
let run_static ~scale ~fuel w =
  let prog = Workloads.program ~scale w in
  let cfg = { Core.Config.default with engine = Core.Config.Threaded } in
  let vm =
    Core.Vm.create ~cfg
      ~annotate:(fun evs -> Uarch.Fastfwd.annotate evs)
      ~kind:Core.Vm.Acc prog
  in
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Vm.run ~fuel vm in
  let secs = Unix.gettimeofday () -. t0 in
  let ex = Option.get (Core.Vm.acc_exec vm) in
  { outcome = outcome_string outcome;
    cycles = ex.stats.st_cycles;
    alpha = ex.stats.alpha_retired;
    secs }

type row = {
  name : string;
  full : arm;
  sampled : arm;
  static_ : arm;
  exact_ok : bool;
  mismatches : string list;
}

let err r = Float.abs ((v_ipc r.sampled /. v_ipc r.full) -. 1.0)
let speedup r = r.full.secs /. r.sampled.secs

(* The sampled run may only differ from the full run in cycle count —
   outcome and retirement are functional state the sink cannot touch. *)
let verify ~(full : arm) ~(sampled : arm) ~exact_ok =
  let ms = ref [] in
  if sampled.outcome <> full.outcome then
    ms :=
      Printf.sprintf "outcome: %s vs %s" sampled.outcome full.outcome :: !ms;
  if sampled.alpha <> full.alpha then
    ms := Printf.sprintf "alpha_retired: %d vs %d" sampled.alpha full.alpha :: !ms;
  if not exact_ok then
    ms := "interval=0 controller diverged from wrapped model" :: !ms;
  List.rev !ms

let sweep ?(interval = Uarch.Fastfwd.default_interval) ?(scale = 1)
    ?(fuel = default_fuel) () =
  List.map
    (fun (w : Workloads.t) ->
      let full = run_full ~scale ~fuel w in
      let sampled = run_sampled ~interval ~scale ~fuel w in
      let static_ = run_static ~scale ~fuel w in
      let _, exact_ok = run_exact_probe ~fuel w in
      { name = w.name; full; sampled; static_; exact_ok;
        mismatches = verify ~full ~sampled ~exact_ok })
    Workloads.all

let render fmt rows =
  Format.fprintf fmt
    "Fast-forward timing (ILDP model, sampled vs full fidelity)@.";
  Format.fprintf fmt "%-12s %12s %12s %7s %7s %6s %8s %8s  %s@." "workload"
    "cyc(full)" "cyc(sampled)" "vIPC" "vIPC'" "err%" "static" "speedup"
    "check";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %12d %12d %7.3f %7.3f %5.1f%% %8.3f %7.2fx  %s@."
        r.name r.full.cycles r.sampled.cycles (v_ipc r.full) (v_ipc r.sampled)
        (100.0 *. err r) (v_ipc r.static_) (speedup r)
        (if r.mismatches = [] then "ok" else String.concat "; " r.mismatches))
    rows;
  let max_err = List.fold_left (fun a r -> Float.max a (err r)) 0.0 rows in
  Format.fprintf fmt "%-12s max err %.1f%% (bound %.0f%%), geomean speedup %.2fx@."
    "summary" (100.0 *. max_err) (100.0 *. err_bound)
    (Runner.geomean (List.map speedup rows));
  max_err

let schema = "ildp-dbt-timing/1"

let json_of_row r =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.name);
      ("outcome", J.String r.full.outcome);
      ("alpha", J.Int r.full.alpha);
      ("cycles_full", J.Int r.full.cycles);
      ("cycles_sampled", J.Int r.sampled.cycles);
      ("v_ipc_full", J.Float (v_ipc r.full));
      ("v_ipc_sampled", J.Float (v_ipc r.sampled));
      ("err", J.Float (err r));
      ("exact_ok", J.Bool r.exact_ok);
      ("st_cycles", J.Int r.static_.cycles);
      ("st_v_ipc", J.Float (v_ipc r.static_));
      ("full_secs", J.Float r.full.secs);
      ("sampled_secs", J.Float r.sampled.secs);
      ("speedup", J.Float (speedup r));
      ("verified", J.Bool (r.mismatches = [])) ]

let to_json ~jobs ~scale ~fuel ~interval rows =
  let module J = Obs.Json in
  Obs.Envelope.wrap ~schema ~jobs
    [ ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("interval", J.Int interval);
      ("warmup", J.Int Uarch.Fastfwd.default_warmup);
      ("detail", J.Int Uarch.Fastfwd.default_detail);
      ("err_bound", J.Float err_bound);
      ("workloads", J.List (List.map json_of_row rows));
      ("max_err", J.Float (List.fold_left (fun a r -> Float.max a (err r)) 0.0 rows));
      ("geomean_speedup", J.Float (Runner.geomean (List.map speedup rows))) ]

let write_json path ~jobs ~scale ~fuel ~interval rows =
  Obs.Json.write_file path (to_json ~jobs ~scale ~fuel ~interval rows)
