(* CI regression checker behind [bench/main.exe --check FILE].

   Dispatches on the baseline's "schema" field:

   - "ildp-dbt-exec-bench/*": re-runs the functional-throughput sweep and
     gates on it — every baseline workload must still exist, still verify
     (matched vs threaded engines byte-identical), and the geomean
     threaded/matched speedup must not regress below [1 - tol] of the
     baseline's. Speedups are ratios of two timings taken on the same
     machine in the same process, so they transfer across hosts in a way
     absolute MIPS never could; per-workload speedups still jitter with
     scheduling, which is why only the geomean is gated and individual
     deviations are reported as notes.
   - "ildp-dbt-timing/*": re-runs the fast-forward timing sweep and gates
     on accuracy — sampled-vs-full V-IPC error within the baseline's
     recorded bound on every workload, and exact agreement with sampling
     off — never on wall-clock speed.
   - "ildp-dbt-bench/*": structural check only — the experiment id set
     recorded in the baseline must equal the harness's current registry
     (catches silently dropped experiments). Wall-clock totals are
     machine-dependent and never gated.

   Both versions of each schema parse: /1 files predate the export
   envelope, /2 files carry it. *)

type outcome = {
  ok : bool;
  lines : string list; (* human-readable report, one finding per line *)
}

let failf ok lines fmt =
  Printf.ksprintf
    (fun s ->
      ok := false;
      lines := ("FAIL " ^ s) :: !lines)
    fmt

let notef lines fmt = Printf.ksprintf (fun s -> lines := ("note " ^ s) :: !lines) fmt
let okf lines fmt = Printf.ksprintf (fun s -> lines := ("ok   " ^ s) :: !lines) fmt

(* ---- shared relative-tolerance gates ----

   Every numeric gate in this file compares a current value against a
   baseline as the relative deviation |current/baseline - 1| versus
   [tol]. [rel_exceeds] is the per-row form (symmetric, note-only at the
   call sites). [rel_direction] classifies the headline geomean, and the
   gate built on it is deliberately asymmetric: falling below the
   baseline by more than [tol] is a CI failure, while exceeding it is
   only ever a note suggesting a baseline refresh — a result that got
   *better* must never fail the build. Non-positive baselines never
   gate. *)

let rel_exceeds ~tol ~base current =
  base > 0.0 && Float.abs ((current /. base) -. 1.0) > tol

type direction = Below | Within | Above

let rel_direction ~tol ~base current =
  if base <= 0.0 then Within
  else if current < base *. (1.0 -. tol) then Below
  else if current > base *. (1.0 +. tol) then Above
  else Within

let gate_geomean ~ok ~lines ~tol ~what ~base current =
  match rel_direction ~tol ~base current with
  | Below ->
    failf ok lines "%s regressed: %.3fx below baseline %.3fx by more than %.0f%%"
      what current base (100.0 *. tol)
  | Above ->
    notef lines
      "%s %.3fx exceeds baseline %.3fx by more than %.0f%%; consider \
       refreshing the baseline"
      what current base (100.0 *. tol)
  | Within ->
    okf lines "%s %.3fx within ±%.0f%% of baseline %.3fx" what current
      (100.0 *. tol) base

(* ---- exec-bench ---- *)

type base_row = { b_name : string; b_speedup : float; b_verified : bool }

let parse_exec_baseline doc =
  let module J = Obs.Json in
  let ( let* ) = Option.bind in
  let* wl = J.member "workloads" doc in
  let* wl = J.to_list wl in
  let* rows =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* b_name = Option.bind (J.member "name" w) J.to_str in
        let* b_speedup = Option.bind (J.member "speedup" w) J.to_float in
        let* b_verified = Option.bind (J.member "verified" w) J.to_bool in
        Some ({ b_name; b_speedup; b_verified } :: acc))
      (Some []) wl
  in
  let* gm = Option.bind (J.member "geomean_speedup" doc) J.to_float in
  Some (List.rev rows, gm)

let check_exec ~tol doc (rows : Throughput.row list) =
  let ok = ref true and lines = ref [] in
  (match parse_exec_baseline doc with
  | None -> failf ok lines "baseline: malformed exec-bench document"
  | Some (base, base_gm) ->
    List.iter
      (fun b ->
        match List.find_opt (fun (r : Throughput.row) -> r.name = b.b_name) rows with
        | None -> failf ok lines "%s: in baseline but not in current sweep" b.b_name
        | Some r ->
          if r.mismatches <> [] then
            failf ok lines "%s: engines disagree: %s" b.b_name
              (String.concat "; " r.mismatches)
          else begin
            let s = Throughput.speedup r in
            if rel_exceeds ~tol ~base:b.b_speedup s then
              notef lines "%s: speedup %.2fx vs baseline %.2fx (>±%.0f%%)"
                b.b_name s b.b_speedup (100.0 *. tol)
          end;
          if not b.b_verified then
            failf ok lines "%s: baseline itself is marked unverified" b.b_name)
      base;
    List.iter
      (fun (r : Throughput.row) ->
        if not (List.exists (fun b -> b.b_name = r.name) base) then
          notef lines "%s: new workload, absent from baseline" r.name)
      rows;
    let gm = Runner.geomean (List.map Throughput.speedup rows) in
    gate_geomean ~ok ~lines ~tol ~what:"geomean speedup" ~base:base_gm gm);
  { ok = !ok; lines = List.rev !lines }

(* ---- region tier-up bench ---- *)

(* Same shape as the exec-bench gate, for BENCH_region.json: re-runs the
   three-way region sweep, demands every workload still verify (region vs
   instrumented engines byte-identical in all statistics), and gates two
   geomeans against the baseline: region/matched over the full suite, and
   region/threaded over the loop-dominated subset (the superop tier's
   headline). Baselines predating [geomean_vs_threaded_loop] simply skip
   the second gate. The full-suite vs-threaded ratio stays note-only: on
   mixed workloads it sits near 1.0 and its jitter would make a gate
   flaky. *)
let check_region ~tol doc (rows : Throughput.region_row list) =
  let ok = ref true and lines = ref [] in
  (match parse_exec_baseline doc with
  | None -> failf ok lines "baseline: malformed region-bench document"
  | Some (base, base_gm) ->
    List.iter
      (fun b ->
        match
          List.find_opt
            (fun (r : Throughput.region_row) -> r.rr_name = b.b_name)
            rows
        with
        | None ->
          failf ok lines "%s: in baseline but not in current sweep" b.b_name
        | Some r ->
          if r.rr_mismatches <> [] then
            failf ok lines "%s: region engine diverged: %s" b.b_name
              (String.concat "; " r.rr_mismatches)
          else begin
            let s = Throughput.region_speedup r in
            if rel_exceeds ~tol ~base:b.b_speedup s then
              notef lines "%s: speedup %.2fx vs baseline %.2fx (>±%.0f%%)"
                b.b_name s b.b_speedup (100.0 *. tol)
          end;
          if not b.b_verified then
            failf ok lines "%s: baseline itself is marked unverified" b.b_name)
      base;
    List.iter
      (fun (r : Throughput.region_row) ->
        if not (List.exists (fun b -> b.b_name = r.rr_name) base) then
          notef lines "%s: new workload, absent from baseline" r.rr_name)
      rows;
    let gm = Runner.geomean (List.map Throughput.region_speedup rows) in
    gate_geomean ~ok ~lines ~tol ~what:"geomean region speedup" ~base:base_gm gm;
    let module J = Obs.Json in
    match Option.bind (J.member "geomean_vs_threaded_loop" doc) J.to_float with
    | None -> () (* baseline predates the superop tier's loop-subset gate *)
    | Some base_loop ->
      let cur =
        match List.filter Throughput.is_loop rows with
        | [] -> 1.0
        | loops ->
          Runner.geomean (List.map Throughput.region_vs_threaded loops)
      in
      gate_geomean ~ok ~lines ~tol
        ~what:"geomean vs-threaded (loop subset)" ~base:base_loop cur);
  { ok = !ok; lines = List.rev !lines }

(* ---- fast-forward timing bench ---- *)

(* Gate for BENCH_timing.json: re-runs the fast-forward sweep and fails
   on *accuracy*, not speed — every workload's sampled-vs-full V-IPC
   error must stay within the baseline's recorded [err_bound], and the
   interval=0 controller must agree with the wrapped model exactly (the
   sampling-off lockstep invariant). Wall-clock speedup is compared
   against the baseline as a note only. *)
let check_timing ~tol doc (rows : Fastfwd_bench.row list) =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  let bound =
    Option.value ~default:Fastfwd_bench.err_bound
      (Option.bind (J.member "err_bound" doc) J.to_float)
  in
  (match Option.bind (J.member "workloads" doc) J.to_list with
  | None | Some [] ->
    failf ok lines "baseline: malformed timing document (no workloads)"
  | Some base ->
    List.iter
      (fun b ->
        let name =
          Option.value ~default:"?" (Option.bind (J.member "name" b) J.to_str)
        in
        match
          List.find_opt (fun (r : Fastfwd_bench.row) -> r.name = name) rows
        with
        | None -> failf ok lines "%s: in baseline but not in current sweep" name
        | Some r ->
          if r.mismatches <> [] then
            failf ok lines "%s: sampled run diverged: %s" name
              (String.concat "; " r.mismatches)
          else begin
            let e = Fastfwd_bench.err r in
            if e > bound then
              failf ok lines "%s: sampled V-IPC error %.1f%% exceeds %.0f%%"
                name (100.0 *. e) (100.0 *. bound);
            if not r.exact_ok then
              failf ok lines
                "%s: interval=0 cycle total diverged from full fidelity" name;
            match Option.bind (J.member "speedup" b) J.to_float with
            | Some bs when rel_exceeds ~tol ~base:bs (Fastfwd_bench.speedup r) ->
              notef lines "%s: speedup %.2fx vs baseline %.2fx (>±%.0f%%)" name
                (Fastfwd_bench.speedup r) bs (100.0 *. tol)
            | _ -> ()
          end;
        match Option.bind (J.member "verified" b) J.to_bool with
        | Some false ->
          failf ok lines "%s: baseline itself is marked unverified" name
        | Some true | None -> ())
      base;
    List.iter
      (fun (r : Fastfwd_bench.row) ->
        if
          not
            (List.exists
               (fun b ->
                 Option.bind (J.member "name" b) J.to_str = Some r.name)
               base)
        then notef lines "%s: new workload, absent from baseline" r.name)
      rows;
    if !ok then
      okf lines "all %d workloads within %.0f%% sampled V-IPC error, exact at \
                 interval=0"
        (List.length rows) (100.0 *. bound));
  { ok = !ok; lines = List.rev !lines }

(* ---- harness bench ---- *)

let check_harness doc ~ids =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  (match Option.bind (J.member "experiments" doc) J.to_list with
  | None -> failf ok lines "baseline: malformed harness document (no experiments)"
  | Some exps ->
    let base_ids =
      List.filter_map (fun e -> Option.bind (J.member "id" e) J.to_str) exps
    in
    List.iter
      (fun id ->
        if not (List.mem id ids) then
          failf ok lines "experiment %S in baseline but no longer registered" id)
      base_ids;
    List.iter
      (fun id ->
        if not (List.mem id base_ids) then
          notef lines "experiment %S registered but absent from baseline" id)
      ids;
    if !ok then
      okf lines "all %d baseline experiments still registered"
        (List.length base_ids));
  { ok = !ok; lines = List.rev !lines }

(* ---- persist bench ---- *)

(* Structural check of a BENCH_persist.json baseline: every recorded
   workload must have verified (cold and warm runs observationally
   identical) and shown a positive translation-phase reduction. No re-run:
   the numbers are deterministic cost-model units, so a stale-but-green
   baseline cannot mask a live regression — the snapshot-roundtrip CI job
   regenerates and gates the live path. *)
let check_persist doc =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  (match Option.bind (J.member "workloads" doc) J.to_list with
  | None -> failf ok lines "baseline: malformed persist document (no workloads)"
  | Some [] -> failf ok lines "baseline: persist document has no workloads"
  | Some rows ->
    List.iter
      (fun row ->
        let name =
          Option.value ~default:"?"
            (Option.bind (J.member "name" row) J.to_str)
        in
        (match Option.bind (J.member "verified" row) J.to_bool with
        | Some true -> ()
        | Some false ->
          failf ok lines "%s: baseline marked unverified (cold/warm diverged)"
            name
        | None -> failf ok lines "%s: missing \"verified\" field" name);
        (match
           Option.bind (J.member "translate_reduction" row) J.to_float
         with
        | Some r when r > 0.0 -> ()
        | Some r ->
          failf ok lines "%s: translation-phase reduction %.3f not positive"
            name r
        | None -> failf ok lines "%s: missing \"translate_reduction\" field" name);
        (* region warm-start verification; absent in pre-region baselines *)
        (match Option.bind (J.member "region_verified" row) J.to_bool with
        | Some false ->
          failf ok lines
            "%s: baseline region warm start marked unverified" name
        | Some true | None -> ());
        match Option.bind (J.member "fingerprint" row) (J.member "image_digest") with
        | Some _ -> ()
        | None -> failf ok lines "%s: missing fingerprint.image_digest" name)
      rows;
    if !ok then
      okf lines "all %d persist workloads verified with positive reduction"
        (List.length rows));
  { ok = !ok; lines = List.rev !lines }

(* ---- service bench ---- *)

(* Gate for BENCH_service.json: structural invariants on the baseline
   (zero divergences; single-flight means cold builds == images; the
   warm-hit rate is then exactly (sessions - images)/sessions), plus a
   live re-run of the load at the baseline's images/seed whose
   divergence count must be zero and whose translation-work reduction —
   deterministic cost-model units, host-independent — must not regress
   below the baseline. Throughput (sessions/sec) is machine-dependent
   and compared as a note only. *)
let check_service ~tol doc (service_sweep : sessions:int -> images:int ->
                            seed:int -> Service_bench.summary) =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  let int_f name = Option.bind (J.member name doc) J.to_int in
  let float_f name = Option.bind (J.member name doc) J.to_float in
  (match
     ( int_f "sessions",
       int_f "images",
       int_f "divergences",
       int_f "cold_builds",
       float_f "warm_hit_rate",
       float_f "translate_reduction" )
   with
  | Some sessions, Some images, Some div, Some cold, Some whr, Some red ->
    if div <> 0 then failf ok lines "baseline recorded %d divergences" div;
    if cold <> images then
      failf ok lines
        "baseline cold builds %d != images %d (single-flight violated)" cold
        images;
    let expect =
      float_of_int (sessions - images) /. float_of_int (max 1 sessions)
    in
    if Float.abs (whr -. expect) > 1e-9 then
      failf ok lines
        "baseline warm-hit rate %.4f != single-flight expectation %.4f" whr
        expect;
    if red <= 0.0 then
      failf ok lines "baseline translate reduction %.3f not positive" red;
    let seed = Option.value ~default:1 (int_f "seed") in
    let live = service_sweep ~sessions ~images ~seed in
    if live.Service_bench.divergences <> 0 then
      failf ok lines "live load: %d divergences" live.divergences;
    if live.cold_builds <> live.images then
      failf ok lines "live load: cold builds %d != images %d"
        live.cold_builds live.images;
    if live.warm_hits + live.cold_builds <> live.sessions then
      failf ok lines "live load: %d of %d sessions missing"
        (live.sessions - live.warm_hits - live.cold_builds)
        live.sessions;
    gate_geomean ~ok ~lines ~tol ~what:"service translate reduction"
      ~base:red live.translate_reduction;
    (match float_f "sessions_per_sec" with
    | Some base_sps when rel_exceeds ~tol ~base:base_sps live.sessions_per_sec
      ->
      notef lines
        "throughput %.1f sessions/sec vs baseline %.1f (>±%.0f%%, \
         machine-dependent)"
        live.sessions_per_sec base_sps (100.0 *. tol)
    | _ -> ());
    if !ok then
      okf lines
        "%d live sessions over %d images: 0 divergences, %d warm hits"
        live.sessions live.images live.warm_hits
  | _ -> failf ok lines "baseline: malformed service document");
  { ok = !ok; lines = List.rev !lines }

(* ---- NN inference bench ---- *)

(* Gate for BENCH_nn.json: re-runs the NN sweep and demands every kernel
   still verify (all three accumulator engines byte-identical in state
   and statistics, the straightening backend identical in guest output)
   and — the strongest gate available — that the per-layer checksums the
   kernel prints match the baseline exactly. The checksums fold every
   requantized activation, are deterministic, and are host-independent,
   so any translation regression in the fixed-point matmul path fails
   here even if it happens to agree across engines. Speedups follow the
   exec-bench convention: geomean gated, per-kernel deviations noted. *)
let check_nn ~tol doc (rows : Nn_bench.row list) =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  (match Option.bind (J.member "workloads" doc) J.to_list with
  | None | Some [] ->
    failf ok lines "baseline: malformed nn document (no workloads)"
  | Some base ->
    List.iter
      (fun b ->
        let name =
          Option.value ~default:"?" (Option.bind (J.member "name" b) J.to_str)
        in
        match List.find_opt (fun (r : Nn_bench.row) -> r.name = name) rows with
        | None -> failf ok lines "%s: in baseline but not in current sweep" name
        | Some r ->
          if r.mismatches <> [] then
            failf ok lines "%s: engines disagree: %s" name
              (String.concat "; " r.mismatches);
          (match
             Option.bind (J.member "checksums" b) J.to_list
             |> Option.map (List.filter_map J.to_int)
           with
          | Some cs when cs <> r.checksums ->
            failf ok lines "%s: checksums [%s] vs baseline [%s]" name
              (String.concat " " (List.map string_of_int r.checksums))
              (String.concat " " (List.map string_of_int cs))
          | Some _ -> ()
          | None -> failf ok lines "%s: baseline has no checksums" name);
          (match Option.bind (J.member "speedup" b) J.to_float with
          | Some bs when rel_exceeds ~tol ~base:bs (Nn_bench.speedup r) ->
            notef lines "%s: speedup %.2fx vs baseline %.2fx (>±%.0f%%)" name
              (Nn_bench.speedup r) bs (100.0 *. tol)
          | _ -> ());
          match Option.bind (J.member "verified" b) J.to_bool with
          | Some false ->
            failf ok lines "%s: baseline itself is marked unverified" name
          | Some true | None -> ())
      base;
    List.iter
      (fun (r : Nn_bench.row) ->
        if
          not
            (List.exists
               (fun b -> Option.bind (J.member "name" b) J.to_str = Some r.name)
               base)
        then notef lines "%s: new kernel, absent from baseline" r.name)
      rows;
    (match Option.bind (J.member "geomean_speedup" doc) J.to_float with
    | Some base_gm ->
      let gm = Runner.geomean (List.map Nn_bench.speedup rows) in
      gate_geomean ~ok ~lines ~tol ~what:"geomean nn speedup" ~base:base_gm gm
    | None -> ());
    if !ok then
      okf lines "all %d NN kernels verified with baseline-exact checksums"
        (List.length rows));
  { ok = !ok; lines = List.rev !lines }

(* ---- stress bench ---- *)

(* Gate for BENCH_stress.json: re-runs the three stress arms live and
   fails unless (a) every arm still agrees with the golden interpreter,
   and (b) every arm still hits its structural target — flush-storm
   forces capacity flushes that kill regions and fused blocks,
   megamorphic keeps chain-class share at least 4x the gzip reference
   with more dispatch misses, call-tower overflows the dual RAS and
   drags its hit rate below gzip's. Counter magnitudes are deterministic
   but config-sensitive, so they are compared as notes, not failures. *)
let check_stress ~tol doc (s : Stress_bench.sweep_result) =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  (match Option.bind (J.member "arms" doc) J.to_list with
  | None | Some [] ->
    failf ok lines "baseline: malformed stress document (no arms)"
  | Some base ->
    List.iter
      (fun arm ->
        let name = Stress.arm_name arm in
        match
          Option.bind
            (Option.bind (J.member "targets" doc) (J.member name))
            J.to_bool
        with
        | Some true -> ()
        | Some false ->
          failf ok lines "baseline itself records target %S missed" name
        | None -> failf ok lines "baseline: no target record for %S" name)
      Stress.all_arms;
    List.iter
      (fun b ->
        let name =
          Option.value ~default:"?" (Option.bind (J.member "name" b) J.to_str)
        in
        match
          List.find_opt (fun (r : Stress_bench.row) -> r.s_name = name) s.arms
        with
        | None -> failf ok lines "%s: in baseline but not in current sweep" name
        | Some r ->
          if r.s_mismatches <> [] then
            failf ok lines "%s: diverged from golden interpreter: %s" name
              (String.concat "; " r.s_mismatches);
          (match Option.bind (J.member "v_insns" b) J.to_int with
          | Some bv when bv <> r.s_retired ->
            notef lines "%s: retired %d vs baseline %d" name r.s_retired bv
          | _ -> ());
          match Option.bind (J.member "chain_share" b) J.to_float with
          | Some bs
            when rel_exceeds ~tol ~base:bs r.s_chain_share && bs > 0.01 ->
            notef lines "%s: chain share %.1f%% vs baseline %.1f%%" name
              (100.0 *. r.s_chain_share) (100.0 *. bs)
          | _ -> ())
      base;
    List.iter
      (fun arm ->
        if not (Stress_bench.target_met s arm) then
          failf ok lines "live run: %s no longer hits its target"
            (Stress.arm_name arm))
      Stress.all_arms;
    if s.reference.s_mismatches <> [] then
      failf ok lines "reference workload diverged: %s"
        (String.concat "; " s.reference.s_mismatches);
    if !ok then
      okf lines
        "all %d stress arms verified against the interpreter, all targets hit"
        (List.length s.arms));
  { ok = !ok; lines = List.rev !lines }

(* ---- dispatch ---- *)

let prefixed p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Runs the appropriate check for [path]. [sweep] / [region_sweep] /
   [timing_sweep] produce the current rows on demand (only the matching
   branch pays for its sweep); [ids] is the current experiment registry. *)
let run ~tol ~ids ~sweep ~region_sweep ~timing_sweep ~service_sweep ~nn_sweep
    ~stress_sweep path =
  match Obs.Json.parse_file path with
  | Error e -> { ok = false; lines = [ Printf.sprintf "FAIL %s: %s" path e ] }
  | Ok doc -> (
    match Obs.Envelope.schema_of doc with
    | Some s when prefixed "ildp-dbt-exec-bench/" s -> check_exec ~tol doc (sweep ())
    | Some s when prefixed "ildp-dbt-region/" s ->
      check_region ~tol doc (region_sweep ())
    | Some s when prefixed "ildp-dbt-timing/" s ->
      check_timing ~tol doc (timing_sweep ())
    | Some s when prefixed "ildp-dbt-bench/" s -> check_harness doc ~ids
    | Some s when prefixed "ildp-dbt-persist/" s -> check_persist doc
    | Some s when prefixed "ildp-dbt-service/" s ->
      check_service ~tol doc service_sweep
    | Some s when prefixed "ildp-dbt-nn/" s -> check_nn ~tol doc (nn_sweep ())
    | Some s when prefixed "ildp-dbt-stress/" s ->
      check_stress ~tol doc (stress_sweep ())
    | Some s -> { ok = false; lines = [ Printf.sprintf "FAIL unknown schema %S" s ] }
    | None -> { ok = false; lines = [ "FAIL baseline has no \"schema\" field" ] })
