(* CI regression checker behind [bench/main.exe --check FILE].

   Dispatches on the baseline's "schema" field:

   - "ildp-dbt-exec-bench/*": re-runs the functional-throughput sweep and
     gates on it — every baseline workload must still exist, still verify
     (matched vs threaded engines byte-identical), and the geomean
     threaded/matched speedup must not regress below [1 - tol] of the
     baseline's. Speedups are ratios of two timings taken on the same
     machine in the same process, so they transfer across hosts in a way
     absolute MIPS never could; per-workload speedups still jitter with
     scheduling, which is why only the geomean is gated and individual
     deviations are reported as notes.
   - "ildp-dbt-bench/*": structural check only — the experiment id set
     recorded in the baseline must equal the harness's current registry
     (catches silently dropped experiments). Wall-clock totals are
     machine-dependent and never gated.

   Both versions of each schema parse: /1 files predate the export
   envelope, /2 files carry it. *)

type outcome = {
  ok : bool;
  lines : string list; (* human-readable report, one finding per line *)
}

let failf ok lines fmt =
  Printf.ksprintf
    (fun s ->
      ok := false;
      lines := ("FAIL " ^ s) :: !lines)
    fmt

let notef lines fmt = Printf.ksprintf (fun s -> lines := ("note " ^ s) :: !lines) fmt
let okf lines fmt = Printf.ksprintf (fun s -> lines := ("ok   " ^ s) :: !lines) fmt

(* ---- exec-bench ---- *)

type base_row = { b_name : string; b_speedup : float; b_verified : bool }

let parse_exec_baseline doc =
  let module J = Obs.Json in
  let ( let* ) = Option.bind in
  let* wl = J.member "workloads" doc in
  let* wl = J.to_list wl in
  let* rows =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* b_name = Option.bind (J.member "name" w) J.to_str in
        let* b_speedup = Option.bind (J.member "speedup" w) J.to_float in
        let* b_verified = Option.bind (J.member "verified" w) J.to_bool in
        Some ({ b_name; b_speedup; b_verified } :: acc))
      (Some []) wl
  in
  let* gm = Option.bind (J.member "geomean_speedup" doc) J.to_float in
  Some (List.rev rows, gm)

let check_exec ~tol doc (rows : Throughput.row list) =
  let ok = ref true and lines = ref [] in
  (match parse_exec_baseline doc with
  | None -> failf ok lines "baseline: malformed exec-bench document"
  | Some (base, base_gm) ->
    List.iter
      (fun b ->
        match List.find_opt (fun (r : Throughput.row) -> r.name = b.b_name) rows with
        | None -> failf ok lines "%s: in baseline but not in current sweep" b.b_name
        | Some r ->
          if r.mismatches <> [] then
            failf ok lines "%s: engines disagree: %s" b.b_name
              (String.concat "; " r.mismatches)
          else begin
            let s = Throughput.speedup r in
            if b.b_speedup > 0.0 && Float.abs (s /. b.b_speedup -. 1.0) > tol then
              notef lines "%s: speedup %.2fx vs baseline %.2fx (>±%.0f%%)"
                b.b_name s b.b_speedup (100.0 *. tol)
          end;
          if not b.b_verified then
            failf ok lines "%s: baseline itself is marked unverified" b.b_name)
      base;
    List.iter
      (fun (r : Throughput.row) ->
        if not (List.exists (fun b -> b.b_name = r.name) base) then
          notef lines "%s: new workload, absent from baseline" r.name)
      rows;
    let gm = Runner.geomean (List.map Throughput.speedup rows) in
    if base_gm > 0.0 && gm < base_gm *. (1.0 -. tol) then
      failf ok lines "geomean speedup regressed: %.3fx < %.3fx - %.0f%%" gm
        base_gm (100.0 *. tol)
    else if base_gm > 0.0 && gm > base_gm *. (1.0 +. tol) then
      notef lines
        "geomean speedup %.3fx exceeds baseline %.3fx + %.0f%%; consider \
         refreshing the baseline"
        gm base_gm (100.0 *. tol)
    else okf lines "geomean speedup %.3fx within ±%.0f%% of baseline %.3fx" gm
        (100.0 *. tol) base_gm);
  { ok = !ok; lines = List.rev !lines }

(* ---- region tier-up bench ---- *)

(* Same shape as the exec-bench gate, for BENCH_region.json: re-runs the
   three-way region sweep, demands every workload still verify (region vs
   instrumented engines byte-identical in all statistics), and gates the
   geomean region/matched speedup against the baseline. The
   region-vs-threaded ratio is reported but not gated: on short workloads
   it sits near 1.0 and its jitter would make the gate flaky. *)
let check_region ~tol doc (rows : Throughput.region_row list) =
  let ok = ref true and lines = ref [] in
  (match parse_exec_baseline doc with
  | None -> failf ok lines "baseline: malformed region-bench document"
  | Some (base, base_gm) ->
    List.iter
      (fun b ->
        match
          List.find_opt
            (fun (r : Throughput.region_row) -> r.rr_name = b.b_name)
            rows
        with
        | None ->
          failf ok lines "%s: in baseline but not in current sweep" b.b_name
        | Some r ->
          if r.rr_mismatches <> [] then
            failf ok lines "%s: region engine diverged: %s" b.b_name
              (String.concat "; " r.rr_mismatches)
          else begin
            let s = Throughput.region_speedup r in
            if b.b_speedup > 0.0 && Float.abs (s /. b.b_speedup -. 1.0) > tol
            then
              notef lines "%s: speedup %.2fx vs baseline %.2fx (>±%.0f%%)"
                b.b_name s b.b_speedup (100.0 *. tol)
          end;
          if not b.b_verified then
            failf ok lines "%s: baseline itself is marked unverified" b.b_name)
      base;
    List.iter
      (fun (r : Throughput.region_row) ->
        if not (List.exists (fun b -> b.b_name = r.rr_name) base) then
          notef lines "%s: new workload, absent from baseline" r.rr_name)
      rows;
    let gm = Runner.geomean (List.map Throughput.region_speedup rows) in
    if base_gm > 0.0 && gm < base_gm *. (1.0 -. tol) then
      failf ok lines "geomean region speedup regressed: %.3fx < %.3fx - %.0f%%"
        gm base_gm (100.0 *. tol)
    else if base_gm > 0.0 && gm > base_gm *. (1.0 +. tol) then
      notef lines
        "geomean region speedup %.3fx exceeds baseline %.3fx + %.0f%%; \
         consider refreshing the baseline"
        gm base_gm (100.0 *. tol)
    else
      okf lines "geomean region speedup %.3fx within ±%.0f%% of baseline %.3fx"
        gm (100.0 *. tol) base_gm);
  { ok = !ok; lines = List.rev !lines }

(* ---- harness bench ---- *)

let check_harness doc ~ids =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  (match Option.bind (J.member "experiments" doc) J.to_list with
  | None -> failf ok lines "baseline: malformed harness document (no experiments)"
  | Some exps ->
    let base_ids =
      List.filter_map (fun e -> Option.bind (J.member "id" e) J.to_str) exps
    in
    List.iter
      (fun id ->
        if not (List.mem id ids) then
          failf ok lines "experiment %S in baseline but no longer registered" id)
      base_ids;
    List.iter
      (fun id ->
        if not (List.mem id base_ids) then
          notef lines "experiment %S registered but absent from baseline" id)
      ids;
    if !ok then
      okf lines "all %d baseline experiments still registered"
        (List.length base_ids));
  { ok = !ok; lines = List.rev !lines }

(* ---- persist bench ---- *)

(* Structural check of a BENCH_persist.json baseline: every recorded
   workload must have verified (cold and warm runs observationally
   identical) and shown a positive translation-phase reduction. No re-run:
   the numbers are deterministic cost-model units, so a stale-but-green
   baseline cannot mask a live regression — the snapshot-roundtrip CI job
   regenerates and gates the live path. *)
let check_persist doc =
  let module J = Obs.Json in
  let ok = ref true and lines = ref [] in
  (match Option.bind (J.member "workloads" doc) J.to_list with
  | None -> failf ok lines "baseline: malformed persist document (no workloads)"
  | Some [] -> failf ok lines "baseline: persist document has no workloads"
  | Some rows ->
    List.iter
      (fun row ->
        let name =
          Option.value ~default:"?"
            (Option.bind (J.member "name" row) J.to_str)
        in
        (match Option.bind (J.member "verified" row) J.to_bool with
        | Some true -> ()
        | Some false ->
          failf ok lines "%s: baseline marked unverified (cold/warm diverged)"
            name
        | None -> failf ok lines "%s: missing \"verified\" field" name);
        (match
           Option.bind (J.member "translate_reduction" row) J.to_float
         with
        | Some r when r > 0.0 -> ()
        | Some r ->
          failf ok lines "%s: translation-phase reduction %.3f not positive"
            name r
        | None -> failf ok lines "%s: missing \"translate_reduction\" field" name);
        (* region warm-start verification; absent in pre-region baselines *)
        (match Option.bind (J.member "region_verified" row) J.to_bool with
        | Some false ->
          failf ok lines
            "%s: baseline region warm start marked unverified" name
        | Some true | None -> ());
        match Option.bind (J.member "fingerprint" row) (J.member "image_digest") with
        | Some _ -> ()
        | None -> failf ok lines "%s: missing fingerprint.image_digest" name)
      rows;
    if !ok then
      okf lines "all %d persist workloads verified with positive reduction"
        (List.length rows));
  { ok = !ok; lines = List.rev !lines }

(* ---- dispatch ---- *)

let prefixed p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Runs the appropriate check for [path]. [sweep] / [region_sweep] produce
   the current throughput rows on demand (only the matching branch pays
   for its sweep); [ids] is the current experiment registry. *)
let run ~tol ~ids ~sweep ~region_sweep path =
  match Obs.Json.parse_file path with
  | Error e -> { ok = false; lines = [ Printf.sprintf "FAIL %s: %s" path e ] }
  | Ok doc -> (
    match Obs.Envelope.schema_of doc with
    | Some s when prefixed "ildp-dbt-exec-bench/" s -> check_exec ~tol doc (sweep ())
    | Some s when prefixed "ildp-dbt-region/" s ->
      check_region ~tol doc (region_sweep ())
    | Some s when prefixed "ildp-dbt-bench/" s -> check_harness doc ~ids
    | Some s when prefixed "ildp-dbt-persist/" s -> check_persist doc
    | Some s -> { ok = false; lines = [ Printf.sprintf "FAIL unknown schema %S" s ] }
    | None -> { ok = false; lines = [ "FAIL baseline has no \"schema\" field" ] })
