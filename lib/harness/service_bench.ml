module Daemon = Service.Daemon
module Registry = Service.Registry

(* Load generator for the translation service.

   Drives [sessions] guest sessions over [images] distinct workload
   images through one [Daemon.t], in a seeded-shuffled arrival order so
   cold and warm requests for every image interleave. The single-flight
   registry means exactly one session per image pays translation; every
   other session must warm-start, replay deterministically (zero new
   superblocks) and finish in the same architected state as a serial
   reference run of that image — every session is cross-checked against
   the reference output, register checksum and exit code.

   Headline metrics: warm-hit rate and the translation-work reduction in
   deterministic cost-model units (both host-independent, both gated by
   [check --check]); wall-clock throughput (sessions/sec) and latency
   percentiles ride along as notes. *)

type image_ref = {
  i_name : string;
  i_prog : Alpha.Program.t;
  i_outcome : string;  (* "exit:N" / "trap:..." / "fuel" *)
  i_output : string;
  i_checksum : int64;
}

type image_row = {
  r_name : string;
  r_sessions : int;
  r_cold_xunits : int;  (* translate units paid by this image's cold run *)
  r_warm_xunits : int;  (* total residual units across its warm runs *)
  r_mean_cold_ms : float;
  r_mean_warm_ms : float;
  r_divergences : int;
}

type summary = {
  sessions : int;
  images : int;
  seed : int;
  divergences : int;
  warm_hits : int;
  cold_builds : int;
  build_waits : int;
  quota_kills : int;
  rejected : int;
  warm_hit_rate : float;
  translate_reduction : float;
      (* 1 - mean warm session xunits / mean cold session xunits *)
  wall_secs : float;
  sessions_per_sec : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  rows : image_row list;
}

let default_fuel = 100_000_000

(* Curated image pool for the load generator. The default four-image mix
   deliberately spans workload classes — loop-dominated compression
   (gzip), a quantized NN inference kernel (nn_mlp), branchy compilation
   (gcc), and pointer-chasing (mcf) — so the shared warm cache serves
   heterogeneous images rather than whichever workloads happen to lead
   the registry. Larger image counts extend with the rest of the registry
   in order. *)
let image_pool () =
  let curated = [ "gzip"; "nn_mlp"; "gcc"; "mcf" ] in
  List.filter_map Workloads.find curated
  @ List.filter
      (fun (w : Workloads.t) -> not (List.mem w.name curated))
      Workloads.all

(* Serial reference: each image cold, standalone, same config and fuel as
   the service sessions — the ground truth every session must match. *)
let reference ~cfg ~scale ~fuel (w : Workloads.t) =
  let prog = Workloads.program ~scale w in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let outcome = Core.Vm.run ~fuel vm in
  {
    i_name = w.name;
    i_prog = prog;
    i_outcome =
      (match outcome with
      | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
      | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
      | Core.Vm.Out_of_fuel -> "fuel");
    i_output = Core.Vm.output vm;
    i_checksum = Core.Vm.reg_checksum vm;
  }

let reason_string = function
  | Daemon.S_exit c -> Printf.sprintf "exit:%d" c
  | Daemon.S_fault m -> m
  | Daemon.S_fuel -> "fuel"
  | Daemon.S_quota -> "quota"
  | Daemon.S_cancelled -> "cancelled"

let verify_final (img : image_ref) (r : Daemon.result) =
  let ms = ref [] in
  if reason_string r.s_reason <> img.i_outcome then
    ms :=
      Printf.sprintf "outcome %s vs %s" (reason_string r.s_reason)
        img.i_outcome
      :: !ms;
  if r.s_output <> img.i_output then ms := "output differs" :: !ms;
  if r.s_checksum <> img.i_checksum then
    ms :=
      Printf.sprintf "reg_checksum %#Lx vs %#Lx" r.s_checksum img.i_checksum
      :: !ms;
  if r.s_warm && r.s_superblocks <> 0 then
    ms :=
      Printf.sprintf "warm session formed %d superblocks" r.s_superblocks
      :: !ms;
  List.rev !ms

(* Divergence messages for one session result against its reference.
   Quota-killed and shutdown-cancelled sessions are not compared: they
   stopped early by design (tracked by the quota_kills/cancelled
   counters), so they have no final state to check. *)
let verify (img : image_ref) (r : Daemon.result) =
  match r.s_reason with
  | Daemon.S_quota | Daemon.S_cancelled -> []
  | Daemon.S_exit _ | Daemon.S_fault _ | Daemon.S_fuel -> verify_final img r

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run_load ?(sessions = 1000) ?(images = 4) ?(tenants = 4) ?(scale = 1)
    ?(fuel = default_fuel) ?tenant_fuel ?jobs ?capacity ?spill_dir ?(seed = 1)
    ?(on_progress = fun _ -> ()) () =
  let cfg = Core.Config.default in
  let pool = image_pool () in
  let images = max 1 (min images (List.length pool)) in
  let refs =
    List.filteri (fun i _ -> i < images) pool
    |> List.map (reference ~cfg ~scale ~fuel)
    |> Array.of_list
  in
  (* Arrival order: round-robin over images, then a seeded Fisher-Yates
     shuffle, so warm requests for an image race both its builder and
     each other while several images are in flight at once. *)
  let order = Array.init sessions (fun i -> i mod images) in
  let rng = Machine.Rng.create seed in
  for i = sessions - 1 downto 1 do
    let j = Machine.Rng.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  (* By default every load tenant gets ample fuel — quota kills are a
     correctness feature, not part of the throughput story — but
     [?tenant_fuel] (ildp_serve --fuel-quota) caps it to demonstrate
     clean mid-run quota kills under load. *)
  let quota =
    {
      Daemon.q_fuel =
        (match tenant_fuel with Some q -> q | None -> fuel * sessions);
      q_image_bytes = max_int;
    }
  in
  let tenants = max 1 tenants in
  let tenant_names = List.init tenants (Printf.sprintf "tenant-%d") in
  let svc =
    Daemon.create ~cfg ?jobs ?capacity ?spill_dir
      ~tenants:(List.map (fun n -> (n, quota)) tenant_names)
      ()
  in
  let t0 = Unix.gettimeofday () in
  (* submit all (the service's admission control throttles us), then
     redeem; [handles] keeps (image index, session) pairs in order *)
  let handles =
    Array.mapi
      (fun i img_idx ->
        let img = refs.(img_idx) in
        let rq =
          {
            Daemon.rq_tenant = List.nth tenant_names (i mod tenants);
            rq_label = Printf.sprintf "s%04d-%s" i img.i_name;
            rq_prog = img.i_prog;
            rq_fuel = fuel;
          }
        in
        match Daemon.submit svc rq with
        | Ok session -> (img_idx, Some session)
        | Error _ -> (img_idx, None))
      order
  in
  let results =
    Array.map
      (fun (img_idx, session) ->
        let r = Option.map Daemon.wait session in
        on_progress 1;
        (img_idx, r))
      handles
  in
  Daemon.shutdown svc;
  let wall_secs = Unix.gettimeofday () -. t0 in
  let stats = Daemon.stats svc in
  (* aggregate per image *)
  let rows =
    Array.to_list
      (Array.mapi
         (fun img_idx img ->
           let mine =
             Array.to_list results
             |> List.filter_map (fun (i, r) ->
                    if i = img_idx then r else None)
           in
           let cold, warm =
             List.partition (fun (r : Daemon.result) -> not r.s_warm) mine
           in
           let sum_x rs =
             List.fold_left
               (fun a (r : Daemon.result) -> a + r.s_translate_units)
               0 rs
           in
           let mean_ms rs =
             match rs with
             | [] -> 0.0
             | _ ->
               List.fold_left
                 (fun a (r : Daemon.result) -> a +. r.s_latency_ms)
                 0.0 rs
               /. float_of_int (List.length rs)
           in
           let divergences =
             List.fold_left
               (fun a r -> a + List.length (verify img r))
               0 mine
           in
           {
             r_name = img.i_name;
             r_sessions = List.length mine;
             r_cold_xunits = sum_x cold;
             r_warm_xunits = sum_x warm;
             r_mean_cold_ms = mean_ms cold;
             r_mean_warm_ms = mean_ms warm;
             r_divergences = divergences;
           })
         refs)
  in
  let completed =
    Array.to_list results |> List.filter_map (fun (_, r) -> r)
  in
  let warm_hits =
    List.length (List.filter (fun (r : Daemon.result) -> r.s_warm) completed)
  in
  let cold_builds = List.length completed - warm_hits in
  let cold_x =
    List.fold_left
      (fun a (r : Daemon.result) ->
        if r.s_warm then a else a + r.s_translate_units)
      0 completed
  in
  let warm_x =
    List.fold_left
      (fun a (r : Daemon.result) ->
        if r.s_warm then a + r.s_translate_units else a)
      0 completed
  in
  let translate_reduction =
    if cold_builds = 0 || warm_hits = 0 || cold_x <= 0 then 0.0
    else
      1.0
      -. float_of_int warm_x /. float_of_int warm_hits
         /. (float_of_int cold_x /. float_of_int cold_builds)
  in
  let latencies =
    List.map (fun (r : Daemon.result) -> r.s_latency_ms) completed
    |> Array.of_list
  in
  Array.sort compare latencies;
  let divergences =
    List.fold_left (fun a (r : image_row) -> a + r.r_divergences) 0 rows
  in
  {
    sessions;
    images;
    seed;
    divergences;
    warm_hits;
    cold_builds;
    build_waits = stats.registry.Registry.build_waits;
    quota_kills = stats.quota_kills;
    rejected = stats.rejected;
    warm_hit_rate = float_of_int warm_hits /. float_of_int (max 1 sessions);
    translate_reduction;
    wall_secs;
    sessions_per_sec = float_of_int sessions /. wall_secs;
    p50_ms = percentile latencies 0.50;
    p95_ms = percentile latencies 0.95;
    p99_ms = percentile latencies 0.99;
    rows;
  }

let render fmt (s : summary) =
  Format.fprintf fmt
    "Translation service load (%d sessions, %d images, seed %d)@." s.sessions
    s.images s.seed;
  Format.fprintf fmt "%-12s %8s %11s %11s %10s %10s  %s@." "image" "sessions"
    "cold_xunit" "warm_xunit" "cold_ms" "warm_ms" "check";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %8d %11d %11d %10.2f %10.2f  %s@." r.r_name
        r.r_sessions r.r_cold_xunits r.r_warm_xunits r.r_mean_cold_ms
        r.r_mean_warm_ms
        (if r.r_divergences = 0 then "ok"
         else Printf.sprintf "%d divergences" r.r_divergences))
    s.rows;
  Format.fprintf fmt
    "warm-hit rate %.1f%% (%d warm / %d cold), translate reduction %.1f%%@."
    (100.0 *. s.warm_hit_rate) s.warm_hits s.cold_builds
    (100.0 *. s.translate_reduction);
  Format.fprintf fmt
    "%.1f sessions/sec (%.2fs wall), latency p50 %.2fms p95 %.2fms p99 \
     %.2fms@."
    s.sessions_per_sec s.wall_secs s.p50_ms s.p95_ms s.p99_ms;
  if s.divergences > 0 then
    Format.fprintf fmt "FAIL: %d divergences@." s.divergences

let schema = "ildp-dbt-service/1"

let json_of_row (r : image_row) =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.r_name);
      ("sessions", J.Int r.r_sessions);
      ("cold_xunits", J.Int r.r_cold_xunits);
      ("warm_xunits", J.Int r.r_warm_xunits);
      ("mean_cold_ms", J.Float r.r_mean_cold_ms);
      ("mean_warm_ms", J.Float r.r_mean_warm_ms);
      ("divergences", J.Int r.r_divergences) ]

let to_json ~jobs ~scale ~fuel (s : summary) =
  let module J = Obs.Json in
  Obs.Envelope.wrap ~schema ~jobs
    [ ("sessions", J.Int s.sessions);
      ("images", J.Int s.images);
      ("seed", J.Int s.seed);
      ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("divergences", J.Int s.divergences);
      ("warm_hits", J.Int s.warm_hits);
      ("cold_builds", J.Int s.cold_builds);
      ("build_waits", J.Int s.build_waits);
      ("quota_kills", J.Int s.quota_kills);
      ("rejected", J.Int s.rejected);
      ("warm_hit_rate", J.Float s.warm_hit_rate);
      ("translate_reduction", J.Float s.translate_reduction);
      ("wall_secs", J.Float s.wall_secs);
      ("sessions_per_sec", J.Float s.sessions_per_sec);
      ("p50_ms", J.Float s.p50_ms);
      ("p95_ms", J.Float s.p95_ms);
      ("p99_ms", J.Float s.p99_ms);
      ("per_image", J.List (List.map json_of_row s.rows)) ]

let write_json path ~jobs ~scale ~fuel s =
  Obs.Json.write_file path (to_json ~jobs ~scale ~fuel s)
