(* Re-export of the worker pool, which moved to the dependency-free
   [Taskpool] library so the translation service (lib/service) can
   schedule sessions over the same pool without a library cycle
   (harness -> service -> taskpool). Every [Harness.Pool] call site is
   source- and type-compatible with [Taskpool.Pool]. *)
include Taskpool.Pool
