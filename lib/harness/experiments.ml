(* Reproduction drivers: one function per table/figure of the paper's
   evaluation section. Each prints the same rows/series the paper reports;
   EXPERIMENTS.md records paper-vs-measured for each. *)

let pf = Format.fprintf

let names () = List.map (fun (w : Workloads.t) -> w.name) Workloads.all

let header fmt title =
  pf fmt "@.=== %s ===@.@." title

let row_rule fmt widths =
  List.iter (fun w -> pf fmt "%s" (String.make w '-')) widths;
  pf fmt "@."

(* ---------- Table 1: microarchitecture parameters (configuration) ------ *)

let table1 fmt ~scale:_ =
  header fmt "Table 1: microarchitecture parameters (as simulated)";
  let o = Uarch.Ooo.default_params in
  let i = Uarch.Ildp.default_params in
  pf fmt "%-26s | %-34s | %-34s@." "" "out-of-order superscalar" "ILDP";
  row_rule fmt [ 27; 37; 35 ];
  let line k a b = pf fmt "%-26s | %-34s | %-34s@." k a b in
  line "branch prediction"
    "16K x 2-bit gshare, 12-bit history" "same";
  line "" "512-entry 4-way BTB, 8-entry RAS" "same + dual-address RAS";
  line "fetch redirect" (Printf.sprintf "%d cycles" o.redirect) "same";
  line "I-cache"
    (Printf.sprintf "%dKB direct, %dB lines, <=%d BBs" (o.icache_size / 1024)
       o.icache_line o.max_blocks)
    "same";
  line "D-cache"
    (Printf.sprintf "%dKB %d-way, %dB lines, %d cycles" (o.mem.l1_size / 1024)
       o.mem.l1_ways o.mem.l1_line o.mem.l1_lat)
    "same or 8KB 2-way; replicated/PE";
  line "L2"
    (Printf.sprintf "%dMB %d-way, %d cycles" (o.mem.l2_size / 1024 / 1024)
       o.mem.l2_ways o.mem.l2_lat)
    "same";
  line "memory" (Printf.sprintf "%d cycles" o.mem.mem_lat) "same";
  line "reorder buffer" (Printf.sprintf "%d Alpha insns" o.rob)
    (Printf.sprintf "%d ILDP insns" i.rob);
  line "decode/retire" (Printf.sprintf "%d/cycle" o.width)
    (Printf.sprintf "%d/cycle" i.width);
  line "issue" (Printf.sprintf "window %d, %d/cycle" o.rob o.width)
    "FIFO heads, 1/PE/cycle";
  line "execution" "4 symmetric FUs" "4/6/8 PEs";
  line "communication" "0 cycles" "0 or 2 cycles global"

(* ---------- Table 2: translated instruction statistics ---------- *)

let table2 fmt ~scale =
  header fmt
    "Table 2: translated instruction statistics (B = basic ISA, M = modified)";
  pf fmt
    "%-10s | %13s | %13s | %13s | %13s@." "benchmark"
    "rel dyn insns" "% copy insns" "rel st. bytes" "DBT work/insn";
  pf fmt "%-10s | %6s %6s | %6s %6s | %6s %6s | %13s@." "" "B" "M" "B" "M" "B"
    "M" "";
  row_rule fmt [ 11; 15; 15; 15; 15 ];
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let b = Runner.acc ~isa:Core.Config.Basic ~scale w in
        let m = Runner.acc ~isa:Core.Config.Modified ~scale w in
        let rel (r : Runner.acc_out) =
          float_of_int r.a_i_exec /. float_of_int (max 1 r.a_alpha)
        in
        let copy (r : Runner.acc_out) =
          100.0 *. float_of_int r.a_copies /. float_of_int (max 1 r.a_i_exec)
        in
        let bytes (r : Runner.acc_out) =
          float_of_int r.a_i_bytes /. float_of_int (max 1 r.a_v_bytes)
        in
        (w.name, rel b, rel m, copy b, copy m, bytes b, bytes m, m.a_dbt_work))
      Workloads.all
  in
  List.iter
    (fun (n, rb, rm, cb, cm, bb, bm, work) ->
      pf fmt "%-10s | %6.2f %6.2f | %6.1f %6.1f | %6.2f %6.2f | %13.0f@." n rb
        rm cb cm bb bm work)
    rows;
  let avg f = Runner.mean (List.map f rows) in
  pf fmt "%-10s | %6.2f %6.2f | %6.1f %6.1f | %6.2f %6.2f | %13.0f@." "Avg."
    (avg (fun (_, x, _, _, _, _, _, _) -> x))
    (avg (fun (_, _, x, _, _, _, _, _) -> x))
    (avg (fun (_, _, _, x, _, _, _, _) -> x))
    (avg (fun (_, _, _, _, x, _, _, _) -> x))
    (avg (fun (_, _, _, _, _, x, _, _) -> x))
    (avg (fun (_, _, _, _, _, _, x, _) -> x))
    (avg (fun (_, _, _, _, _, _, _, x) -> x))

(* ---------- Fig. 4: mispredictions per 1000 instructions ---------- *)

let fig4 fmt ~scale =
  header fmt
    "Fig. 4: branch/jump mispredictions per 1000 instructions\n\
     (code-straightening-only DBT on the superscalar model)";
  pf fmt "%-10s | %9s | %9s | %14s | %11s@." "benchmark" "original" "no_pred"
    "sw_pred.no_ras" "sw_pred.ras";
  row_rule fmt [ 11; 11; 11; 16; 13 ];
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let orig = (Runner.original ~scale w).mpki in
        let np = (Runner.straight ~chaining:Core.Config.No_pred ~scale w).s_t.mpki in
        let sw =
          (Runner.straight ~chaining:Core.Config.Sw_pred_no_ras ~scale w).s_t.mpki
        in
        let ras =
          (Runner.straight ~chaining:Core.Config.Sw_pred_ras ~scale w).s_t.mpki
        in
        (w.name, orig, np, sw, ras))
      Workloads.all
  in
  List.iter
    (fun (n, o, np, sw, ras) ->
      pf fmt "%-10s | %9.2f | %9.2f | %14.2f | %11.2f@." n o np sw ras)
    rows;
  let avg f = Runner.mean (List.map f rows) in
  pf fmt "%-10s | %9.2f | %9.2f | %14.2f | %11.2f@." "Avg."
    (avg (fun (_, x, _, _, _) -> x))
    (avg (fun (_, _, x, _, _) -> x))
    (avg (fun (_, _, _, x, _) -> x))
    (avg (fun (_, _, _, _, x) -> x))

(* ---------- Fig. 5: relative instruction count from chaining ---------- *)

let fig5 fmt ~scale =
  header fmt
    "Fig. 5: relative dynamic instruction count of straightened+chained code\n\
     (straightened Alpha instructions / original Alpha instructions)";
  pf fmt "%-10s | %9s | %14s | %11s@." "benchmark" "no_pred" "sw_pred.no_ras"
    "sw_pred.ras";
  row_rule fmt [ 11; 11; 16; 13 ];
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let rel ch =
          let s = Runner.straight ~chaining:ch ~scale w in
          float_of_int s.s_i_exec /. float_of_int (max 1 s.s_alpha)
        in
        ( w.name,
          rel Core.Config.No_pred,
          rel Core.Config.Sw_pred_no_ras,
          rel Core.Config.Sw_pred_ras ))
      Workloads.all
  in
  List.iter
    (fun (n, a, b, c) -> pf fmt "%-10s | %9.3f | %14.3f | %11.3f@." n a b c)
    rows;
  let avg f = Runner.mean (List.map f rows) in
  pf fmt "%-10s | %9.3f | %14.3f | %11.3f@." "Avg."
    (avg (fun (_, x, _, _) -> x))
    (avg (fun (_, _, x, _) -> x))
    (avg (fun (_, _, _, x) -> x))

(* ---------- Fig. 6: code straightening and hardware RAS ---------- *)

let fig6 fmt ~scale =
  header fmt
    "Fig. 6: IPC impact of code straightening and H/W RAS (superscalar model)";
  pf fmt "%-10s | %12s | %14s | %10s | %14s@." "benchmark" "orig, no RAS"
    "strght, no RAS" "orig, RAS" "strght, dualRAS";
  row_rule fmt [ 11; 14; 16; 12; 16 ];
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let o_nr = (Runner.original ~use_ras:false ~scale w).v_ipc in
        let s_nr =
          (Runner.straight ~chaining:Core.Config.Sw_pred_no_ras ~scale w).s_t.v_ipc
        in
        let o_r = (Runner.original ~scale w).v_ipc in
        let s_r =
          (Runner.straight ~chaining:Core.Config.Sw_pred_ras ~scale w).s_t.v_ipc
        in
        (w.name, o_nr, s_nr, o_r, s_r))
      Workloads.all
  in
  List.iter
    (fun (n, a, b, c, d) ->
      pf fmt "%-10s | %12.3f | %14.3f | %10.3f | %14.3f@." n a b c d)
    rows;
  let gm f = Runner.geomean (List.map f rows) in
  pf fmt "%-10s | %12.3f | %14.3f | %10.3f | %14.3f@." "Geomean"
    (gm (fun (_, x, _, _, _) -> x))
    (gm (fun (_, _, x, _, _) -> x))
    (gm (fun (_, _, _, x, _) -> x))
    (gm (fun (_, _, _, _, x) -> x));
  (* the paper's "bail-out" observation: improvement over the original
     (with RAS), excluding benchmarks where straightening loses *)
  let gains =
    List.filter_map
      (fun (_, _, _, o_r, s_r) -> if s_r > o_r then Some (s_r /. o_r) else None)
      rows
  in
  pf fmt
    "@.straightening gain where it wins (the paper's bail-out view): %+.1f%%  \
     (%d/%d benchmarks improve)@."
    (100.0 *. (Runner.geomean gains -. 1.0))
    (List.length gains) (List.length rows)

(* ---------- Fig. 7: output register value usage ---------- *)

let fig7 fmt ~scale =
  header fmt
    "Fig. 7: output register value usage (dynamic %, over translated \
     superblocks)";
  let cats =
    [ Core.Usage.Temp; No_user; Local; No_user_global; Local_global;
      Comm_global; Liveout_global ]
  in
  pf fmt "%-10s |" "benchmark";
  List.iter (fun c -> pf fmt " %9s |" (Core.Usage.category_name c)) cats;
  pf fmt "@.";
  row_rule fmt [ 11; 12 * List.length cats ];
  let all_rows =
    List.map
      (fun (w : Workloads.t) ->
        let r = Runner.acc ~isa:Core.Config.Modified ~scale w in
        (w.name, r.a_cat_dyn))
      Workloads.all
  in
  List.iter
    (fun (n, dist) ->
      pf fmt "%-10s |" n;
      List.iter
        (fun c -> pf fmt " %8.1f%% |" (100.0 *. dist.(Core.Tcache.cat_index c)))
        cats;
      pf fmt "@.")
    all_rows;
  pf fmt "%-10s |" "Avg.";
  List.iter
    (fun c ->
      let avg =
        Runner.mean
          (List.map (fun (_, d) -> 100.0 *. d.(Core.Tcache.cat_index c)) all_rows)
      in
      pf fmt " %8.1f%% |" avg)
    cats;
  pf fmt "@.";
  let avg_of sel =
    Runner.mean
      (List.map
         (fun (_, d) ->
           100.0 *. List.fold_left (fun a c -> a +. d.(Core.Tcache.cat_index c)) 0.0 sel)
         all_rows)
  in
  pf fmt
    "@.global outputs, modified ISA (liveout+comm)          : %5.1f%%@."
    (avg_of [ Core.Usage.Comm_global; Liveout_global ]);
  pf fmt
    "global outputs incl. basic-ISA save classes (paper ~40%%): %5.1f%%@."
    (avg_of
       [ Core.Usage.Comm_global; Liveout_global; Local_global; No_user_global ])

(* ---------- Fig. 8: IPC comparison ---------- *)

let ildp_base n_pe comm l1 n_accs : Uarch.Ildp.params =
  let mem =
    if l1 = `Small then Machine.Memhier.small_l1 Machine.Memhier.default_cfg
    else Machine.Memhier.default_cfg
  in
  ignore n_accs;
  { Uarch.Ildp.default_params with n_pe; comm; mem }

let fig8 fmt ~scale =
  header fmt
    "Fig. 8: V-ISA IPC comparison (ILDP: 8 PEs, 32KB L1, 0-cycle comm)";
  pf fmt "%-10s | %9s | %12s | %10s | %10s | %12s@." "benchmark" "orig s-s"
    "straight s-s" "ILDP basic" "ILDP modif" "native I-IPC";
  row_rule fmt [ 11; 11; 14; 12; 12; 14 ];
  let params = ildp_base 8 0 `Big 4 in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let o = (Runner.original ~scale w).v_ipc in
        let s =
          (Runner.straight ~chaining:Core.Config.Sw_pred_ras ~scale w).s_t.v_ipc
        in
        let b = Runner.acc ~isa:Core.Config.Basic ~ildp:params ~scale w in
        let m = Runner.acc ~isa:Core.Config.Modified ~ildp:params ~scale w in
        ( w.name,
          o,
          s,
          (Option.get b.a_t).v_ipc,
          (Option.get m.a_t).v_ipc,
          (Option.get m.a_t).ipc ))
      Workloads.all
  in
  List.iter
    (fun (n, o, s, b, m, ni) ->
      pf fmt "%-10s | %9.3f | %12.3f | %10.3f | %10.3f | %12.3f@." n o s b m ni)
    rows;
  let gm f = Runner.geomean (List.map f rows) in
  let go = gm (fun (_, x, _, _, _, _) -> x)
  and gs = gm (fun (_, _, x, _, _, _) -> x)
  and gb = gm (fun (_, _, _, x, _, _) -> x)
  and gm_ = gm (fun (_, _, _, _, x, _) -> x)
  and gn = gm (fun (_, _, _, _, _, x) -> x) in
  pf fmt "%-10s | %9.3f | %12.3f | %10.3f | %10.3f | %12.3f@." "Geomean" go gs
    gb gm_ gn;
  pf fmt "@.modified-ISA IPC cost vs straightened superscalar: %.1f%%@."
    (100.0 *. (1.0 -. (gm_ /. gs)))

(* ---------- Fig. 9: IPC over machine parameters ---------- *)

let fig9_configs =
  [
    ("8 accs, 8PE 32KB c0", 8, ildp_base 8 0 `Big 8);
    ("4 accs, 8PE 32KB c0", 4, ildp_base 8 0 `Big 4);
    ("4 accs, 8PE  8KB c0", 4, ildp_base 8 0 `Small 4);
    ("4 accs, 8PE  8KB c2", 4, ildp_base 8 2 `Small 4);
    ("4 accs, 6PE 32KB c0", 4, ildp_base 6 0 `Big 4);
    ("4 accs, 4PE 32KB c0", 4, ildp_base 4 0 `Big 4);
  ]

let fig9 fmt ~scale =
  header fmt "Fig. 9: ILDP (modified ISA) V-IPC over machine parameters";
  let configs = fig9_configs in
  pf fmt "%-10s |" "benchmark";
  List.iter (fun (n, _, _) -> pf fmt " %19s |" n) configs;
  pf fmt "@.";
  row_rule fmt [ 11; 22 * List.length configs ];
  let table =
    List.map
      (fun (w : Workloads.t) ->
        ( w.name,
          List.map
            (fun (_, n_accs, params) ->
              let r =
                Runner.acc ~isa:Core.Config.Modified ~n_accs ~ildp:params ~scale w
              in
              (Option.get r.a_t).v_ipc)
            configs ))
      Workloads.all
  in
  List.iter
    (fun (n, vals) ->
      pf fmt "%-10s |" n;
      List.iter (fun v -> pf fmt " %19.3f |" v) vals;
      pf fmt "@.")
    table;
  pf fmt "%-10s |" "Geomean";
  let gms =
    List.mapi
      (fun i _ -> Runner.geomean (List.map (fun (_, vs) -> List.nth vs i) table))
      configs
  in
  List.iter (fun v -> pf fmt " %19.3f |" v) gms;
  pf fmt "@.";
  (match gms with
  | [ a8; base; small; comm2; pe6; pe4 ] ->
    pf fmt "@.8 accumulators vs 4      : %+5.1f%%@." (100.0 *. ((a8 /. base) -. 1.0));
    pf fmt "8KB replicated L1 vs 32KB: %+5.1f%%@." (100.0 *. ((small /. base) -. 1.0));
    pf fmt "2-cycle comm vs 0 (8KB)  : %+5.1f%%@." (100.0 *. ((comm2 /. small) -. 1.0));
    pf fmt "6 PEs vs 8               : %+5.1f%%@." (100.0 *. ((pe6 /. base) -. 1.0));
    pf fmt "4 PEs vs 8               : %+5.1f%%@." (100.0 *. ((pe4 /. base) -. 1.0))
  | _ -> ())

(* ---------- Section 4.2: translation overhead ---------- *)

let sec42 fmt ~scale =
  header fmt
    "Section 4.2: DBT work units per translated V-ISA instruction\n\
     (one unit models one host instruction; cf. paper avg 1125, DAISY 4000+)";
  pf fmt "%-10s | %12s | %12s | %10s | %12s@." "benchmark" "work/insn"
    "translated" "fragments" "interp insns";
  row_rule fmt [ 11; 14; 14; 12; 14 ];
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let r = Runner.acc ~isa:Core.Config.Modified ~scale w in
        (w.name, r.a_dbt_work, r.a_alpha, r.a_frags, r.a_interp))
      Workloads.all
  in
  List.iter
    (fun (n, work, alpha, frags, interp) ->
      pf fmt "%-10s | %12.0f | %12d | %10d | %12d@." n work alpha frags interp)
    rows;
  pf fmt "%-10s | %12.0f |@." "Avg."
    (Runner.mean (List.map (fun (_, w, _, _, _) -> w) rows))

(* ---------- ablations of the design choices DESIGN.md calls out ---------- *)

(* Section 4.5: "One way to deal with this instruction count expansion is to
   not split memory instructions into two." *)
let abl_fuse fmt ~scale =
  header fmt
    "Ablation (Section 4.5): fused memory addressing vs split address calc\n\
     (modified ISA, ILDP 8 PEs; expansion and V-IPC per benchmark)";
  pf fmt "%-10s | %11s | %11s | %10s | %10s@." "benchmark" "expand split"
    "expand fused" "IPC split" "IPC fused";
  row_rule fmt [ 11; 13; 13; 12; 12 ];
  let params = ildp_base 8 0 `Big 4 in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let s = Runner.acc ~ildp:params ~scale w in
        let f = Runner.acc ~fuse_mem:true ~ildp:params ~scale w in
        let ex (r : Runner.acc_out) =
          float_of_int r.a_i_exec /. float_of_int (max 1 r.a_alpha)
        in
        (w.name, ex s, ex f, (Option.get s.a_t).v_ipc, (Option.get f.a_t).v_ipc))
      Workloads.all
  in
  List.iter
    (fun (n, a, b, c, d) ->
      pf fmt "%-10s | %11.3f | %11.3f | %10.3f | %10.3f@." n a b c d)
    rows;
  let gm f = Runner.geomean (List.map f rows) in
  pf fmt "%-10s | %11.3f | %11.3f | %10.3f | %10.3f@." "Geomean"
    (gm (fun (_, x, _, _, _) -> x))
    (gm (fun (_, _, x, _, _) -> x))
    (gm (fun (_, _, _, x, _) -> x))
    (gm (fun (_, _, _, _, x) -> x))

(* Section 4.1: "We also experimented with superblock size of 50 and found
   it is not large enough to provide performance benefits from code
   straightening." *)
let abl_sbsize fmt ~scale =
  header fmt
    "Ablation (Section 4.1): maximum superblock size (modified ISA, ILDP)";
  pf fmt "%-10s | %8s | %8s | %8s@." "benchmark" "size 50" "size 200" "size 400";
  row_rule fmt [ 11; 10; 10; 10 ];
  let params = ildp_base 8 0 `Big 4 in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let ipc n =
          (Option.get (Runner.acc ~max_superblock:n ~ildp:params ~scale w).a_t)
            .v_ipc
        in
        (w.name, ipc 50, ipc 200, ipc 400))
      Workloads.all
  in
  List.iter
    (fun (n, a, b, c) -> pf fmt "%-10s | %8.3f | %8.3f | %8.3f@." n a b c)
    rows;
  let gm f = Runner.geomean (List.map f rows) in
  pf fmt "%-10s | %8.3f | %8.3f | %8.3f@." "Geomean"
    (gm (fun (_, x, _, _) -> x))
    (gm (fun (_, _, x, _) -> x))
    (gm (fun (_, _, _, x) -> x))

(* Hot threshold: interpretation/translation balance (Section 4.1 uses 50). *)
let abl_threshold fmt ~scale =
  header fmt "Ablation: hot threshold (interpreted fraction and fragments)";
  pf fmt "%-10s | %14s | %14s | %14s@." "benchmark" "thr 10" "thr 50" "thr 200";
  pf fmt "%-10s | %6s %7s | %6s %7s | %6s %7s@." "" "int%" "frags" "int%"
    "frags" "int%" "frags";
  row_rule fmt [ 11; 16; 16; 16 ];
  List.iter
    (fun (w : Workloads.t) ->
      let cell thr =
        let r = Runner.acc ~hot_threshold:thr ~scale w in
        let pct =
          100.0
          *. float_of_int r.a_interp
          /. float_of_int (max 1 (r.a_interp + r.a_alpha))
        in
        (pct, r.a_frags)
      in
      let p10, f10 = cell 10 and p50, f50 = cell 50 and p200, f200 = cell 200 in
      pf fmt "%-10s | %5.1f%% %7d | %5.1f%% %7d | %5.1f%% %7d@." w.name p10 f10
        p50 f50 p200 f200)
    Workloads.all

(* Dynamo-style fragment linking (end formation at existing fragments)
   versus the paper's pure ending conditions. *)
let abl_linking fmt ~scale =
  header fmt
    "Ablation: superblock formation stops at existing fragments (Dynamo\n\
     linking) vs the paper's ending rules only";
  pf fmt "%-10s | %12s | %12s | %12s | %12s@." "benchmark" "bytes paper"
    "bytes linked" "IPC paper" "IPC linked";
  row_rule fmt [ 11; 14; 14; 14; 14 ];
  let params = ildp_base 8 0 `Big 4 in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let p = Runner.acc ~ildp:params ~scale w in
        let l = Runner.acc ~stop_at_translated:true ~ildp:params ~scale w in
        let bytes (r : Runner.acc_out) =
          float_of_int r.a_i_bytes /. float_of_int (max 1 r.a_v_bytes)
        in
        (w.name, bytes p, bytes l, (Option.get p.a_t).v_ipc, (Option.get l.a_t).v_ipc))
      Workloads.all
  in
  List.iter
    (fun (n, a, b, c, d) ->
      pf fmt "%-10s | %12.3f | %12.3f | %12.3f | %12.3f@." n a b c d)
    rows;
  let gm f = Runner.geomean (List.map f rows) in
  pf fmt "%-10s | %12.3f | %12.3f | %12.3f | %12.3f@." "Geomean"
    (gm (fun (_, x, _, _, _) -> x))
    (gm (fun (_, _, x, _, _) -> x))
    (gm (fun (_, _, _, x, _) -> x))
    (gm (fun (_, _, _, _, x) -> x))

(* ---------- run plans ----------

   Each experiment declares the full set of simulation runs its render
   needs, as Runner.req values. The scheduler (bench/main.exe --jobs N)
   warms every cache in parallel from the plan, then calls the render
   function, which only hits warm caches — so console/CSV output is
   byte-identical at any job count. A plan that misses a run is not a
   correctness bug (the render simply computes it on demand, serially);
   it only costs parallelism. *)

let all_w f = List.concat_map f Workloads.all

let plan_none ~scale:_ = []

let plan_table2 ~scale =
  all_w (fun w ->
      [
        Runner.req_acc ~isa:Core.Config.Basic ~scale w;
        Runner.req_acc ~isa:Core.Config.Modified ~scale w;
      ])

let plan_fig4 ~scale =
  all_w (fun w ->
      Runner.req_original ~scale w
      :: List.map
           (fun ch -> Runner.req_straight ~chaining:ch ~scale w)
           [ Core.Config.No_pred; Core.Config.Sw_pred_no_ras; Core.Config.Sw_pred_ras ])

let plan_fig5 ~scale =
  all_w (fun w ->
      List.map
        (fun ch -> Runner.req_straight ~chaining:ch ~scale w)
        [ Core.Config.No_pred; Core.Config.Sw_pred_no_ras; Core.Config.Sw_pred_ras ])

let plan_fig6 ~scale =
  all_w (fun w ->
      [
        Runner.req_original ~use_ras:false ~scale w;
        Runner.req_straight ~chaining:Core.Config.Sw_pred_no_ras ~scale w;
        Runner.req_original ~scale w;
        Runner.req_straight ~chaining:Core.Config.Sw_pred_ras ~scale w;
      ])

let plan_fig7 ~scale =
  all_w (fun w -> [ Runner.req_acc ~isa:Core.Config.Modified ~scale w ])

let plan_fig8 ~scale =
  let params = ildp_base 8 0 `Big 4 in
  all_w (fun w ->
      [
        Runner.req_original ~scale w;
        Runner.req_straight ~chaining:Core.Config.Sw_pred_ras ~scale w;
        Runner.req_acc ~isa:Core.Config.Basic ~ildp:params ~scale w;
        Runner.req_acc ~isa:Core.Config.Modified ~ildp:params ~scale w;
      ])

let plan_fig9 ~scale =
  all_w (fun w ->
      List.map
        (fun (_, n_accs, params) ->
          Runner.req_acc ~isa:Core.Config.Modified ~n_accs ~ildp:params ~scale w)
        fig9_configs)

let plan_sec42 = plan_fig7

let plan_abl_fuse ~scale =
  let params = ildp_base 8 0 `Big 4 in
  all_w (fun w ->
      [
        Runner.req_acc ~ildp:params ~scale w;
        Runner.req_acc ~fuse_mem:true ~ildp:params ~scale w;
      ])

let plan_abl_sbsize ~scale =
  let params = ildp_base 8 0 `Big 4 in
  all_w (fun w ->
      List.map
        (fun n -> Runner.req_acc ~max_superblock:n ~ildp:params ~scale w)
        [ 50; 200; 400 ])

let plan_abl_threshold ~scale =
  all_w (fun w ->
      List.map (fun thr -> Runner.req_acc ~hot_threshold:thr ~scale w) [ 10; 50; 200 ])

let plan_abl_linking ~scale =
  let params = ildp_base 8 0 `Big 4 in
  all_w (fun w ->
      [
        Runner.req_acc ~ildp:params ~scale w;
        Runner.req_acc ~stop_at_translated:true ~ildp:params ~scale w;
      ])

(* ---------- registry ---------- *)

type exp = {
  id : string;
  desc : string;
  plan : scale:int -> Runner.req list;
  render : Format.formatter -> scale:int -> unit;
}

let all : exp list =
  [
    { id = "table1"; desc = "microarchitecture parameters"; plan = plan_none;
      render = table1 };
    { id = "table2"; desc = "translated instruction statistics";
      plan = plan_table2; render = table2 };
    { id = "fig4"; desc = "mispredictions per 1000 instructions";
      plan = plan_fig4; render = fig4 };
    { id = "fig5"; desc = "relative instruction count from chaining";
      plan = plan_fig5; render = fig5 };
    { id = "fig6"; desc = "code straightening and H/W RAS IPC";
      plan = plan_fig6; render = fig6 };
    { id = "fig7"; desc = "output register value usage"; plan = plan_fig7;
      render = fig7 };
    { id = "fig8"; desc = "IPC comparison"; plan = plan_fig8; render = fig8 };
    { id = "fig9"; desc = "IPC over machine parameters"; plan = plan_fig9;
      render = fig9 };
    { id = "sec42"; desc = "translation overhead"; plan = plan_sec42;
      render = sec42 };
    { id = "abl_fuse"; desc = "ablation: fused memory addressing (Sec 4.5)";
      plan = plan_abl_fuse; render = abl_fuse };
    { id = "abl_sbsize"; desc = "ablation: superblock size (Sec 4.1)";
      plan = plan_abl_sbsize; render = abl_sbsize };
    { id = "abl_threshold"; desc = "ablation: hot threshold";
      plan = plan_abl_threshold; render = abl_threshold };
    { id = "abl_linking"; desc = "ablation: Dynamo fragment linking";
      plan = plan_abl_linking; render = abl_linking };
  ]

let run_all fmt ~scale =
  List.iter (fun e -> e.render fmt ~scale) all

let find id = List.find_opt (fun e -> e.id = id) all
