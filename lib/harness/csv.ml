(* CSV export of the per-benchmark series behind each figure/table, for
   plotting outside the harness (bench/main.exe --csv DIR). One file per
   experiment, one row per workload, headers matching the paper's series. *)

let write_file dir name header rows =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  path

let f3 x = Printf.sprintf "%.3f" x
let f1 x = Printf.sprintf "%.1f" x

let table2 dir ~scale =
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let b = Runner.acc ~isa:Core.Config.Basic ~scale w in
        let m = Runner.acc ~isa:Core.Config.Modified ~scale w in
        let rel (r : Runner.acc_out) =
          float_of_int r.a_i_exec /. float_of_int (max 1 r.a_alpha)
        in
        let copy (r : Runner.acc_out) =
          100.0 *. float_of_int r.a_copies /. float_of_int (max 1 r.a_i_exec)
        in
        let bytes (r : Runner.acc_out) =
          float_of_int r.a_i_bytes /. float_of_int (max 1 r.a_v_bytes)
        in
        [ w.name; f3 (rel b); f3 (rel m); f1 (copy b); f1 (copy m);
          f3 (bytes b); f3 (bytes m); Printf.sprintf "%.0f" m.a_dbt_work ])
      Workloads.all
  in
  write_file dir "table2.csv"
    [ "benchmark"; "rel_dyn_B"; "rel_dyn_M"; "copy_pct_B"; "copy_pct_M";
      "rel_bytes_B"; "rel_bytes_M"; "dbt_work" ]
    rows

let fig4 dir ~scale =
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        [ w.name;
          f3 (Runner.original ~scale w).mpki;
          f3 (Runner.straight ~chaining:Core.Config.No_pred ~scale w).s_t.mpki;
          f3 (Runner.straight ~chaining:Core.Config.Sw_pred_no_ras ~scale w).s_t.mpki;
          f3 (Runner.straight ~chaining:Core.Config.Sw_pred_ras ~scale w).s_t.mpki ])
      Workloads.all
  in
  write_file dir "fig4.csv"
    [ "benchmark"; "original"; "no_pred"; "sw_pred_no_ras"; "sw_pred_ras" ]
    rows

let fig5 dir ~scale =
  let rel ch w =
    let s = Runner.straight ~chaining:ch ~scale w in
    f3 (float_of_int s.Runner.s_i_exec /. float_of_int (max 1 s.s_alpha))
  in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        [ w.name; rel Core.Config.No_pred w; rel Core.Config.Sw_pred_no_ras w;
          rel Core.Config.Sw_pred_ras w ])
      Workloads.all
  in
  write_file dir "fig5.csv"
    [ "benchmark"; "no_pred"; "sw_pred_no_ras"; "sw_pred_ras" ]
    rows

let fig8 dir ~scale =
  let params = { Uarch.Ildp.default_params with n_pe = 8; comm = 0 } in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let b = Runner.acc ~isa:Core.Config.Basic ~ildp:params ~scale w in
        let m = Runner.acc ~isa:Core.Config.Modified ~ildp:params ~scale w in
        [ w.name;
          f3 (Runner.original ~scale w).v_ipc;
          f3 (Runner.straight ~chaining:Core.Config.Sw_pred_ras ~scale w).s_t.v_ipc;
          f3 (Option.get b.a_t).v_ipc;
          f3 (Option.get m.a_t).v_ipc;
          f3 (Option.get m.a_t).ipc ])
      Workloads.all
  in
  write_file dir "fig8.csv"
    [ "benchmark"; "orig_ss"; "straight_ss"; "ildp_basic"; "ildp_modified";
      "native_i_ipc" ]
    rows

let fig9 dir ~scale =
  let cfgs =
    [ ("acc8_pe8_32k_c0", 8, 8, 0, false); ("acc4_pe8_32k_c0", 4, 8, 0, false);
      ("acc4_pe8_8k_c0", 4, 8, 0, true); ("acc4_pe8_8k_c2", 4, 8, 2, true);
      ("acc4_pe6_32k_c0", 4, 6, 0, false); ("acc4_pe4_32k_c0", 4, 4, 0, false) ]
  in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        w.name
        :: List.map
             (fun (_, n_accs, n_pe, comm, small) ->
               let mem =
                 if small then Machine.Memhier.small_l1 Machine.Memhier.default_cfg
                 else Machine.Memhier.default_cfg
               in
               let params = { Uarch.Ildp.default_params with n_pe; comm; mem } in
               let r = Runner.acc ~n_accs ~ildp:params ~scale w in
               f3 (Option.get r.a_t).v_ipc)
             cfgs)
      Workloads.all
  in
  write_file dir "fig9.csv" ("benchmark" :: List.map (fun (n, _, _, _, _) -> n) cfgs) rows

(* RFC 4180 quoting for fields the harness does not control: telemetry
   names are free-form strings picked at instrumentation sites, and a
   comma or quote in one would shift every column after it. *)
let escape s =
  if
    String.exists
      (function ',' | '"' | '\n' | '\r' -> true | _ -> false)
      s
  then "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Flat summary of a telemetry snapshot, written next to the JSON export
   ([--telemetry-json FILE] also writes [FILE]'s [.csv] sibling). One row
   per counter and span, one per histogram bucket; the [seconds] column is
   populated only for spans. *)
let telemetry path (snap : Obs.snapshot) =
  let oc = open_out path in
  output_string oc "kind,name,value,seconds\n";
  List.iter
    (fun (n, v) -> Printf.fprintf oc "counter,%s,%d,\n" (escape n) v)
    snap.Obs.counters;
  List.iter
    (fun (n, bounds, counts) ->
      Array.iteri
        (fun i c ->
          let b =
            if i < Array.length bounds then Printf.sprintf "le%d" bounds.(i)
            else "overflow"
          in
          Printf.fprintf oc "histogram,%s,%d,\n"
            (escape (Printf.sprintf "%s[%s]" n b))
            c)
        counts)
    snap.Obs.histograms;
  List.iter
    (fun (n, count, secs) ->
      Printf.fprintf oc "span,%s,%d,%.6f\n" (escape n) count secs)
    snap.Obs.spans;
  close_out oc;
  path

(* Write every exportable series; returns the file list. *)
let export dir ~scale =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  [ table2 dir ~scale; fig4 dir ~scale; fig5 dir ~scale; fig8 dir ~scale;
    fig9 dir ~scale ]
