(* Re-export of the single-flight memo table from [Taskpool] (see
   pool.ml for why it moved). *)
include Taskpool.Memo
