(* Adversarial stress benchmark: the three {!Stress} arms run against the
   DBT under configurations chosen to let each arm hit its target, and
   the row records translator-health telemetry proving it did:

   - flush-storm runs under the region engine with superop fusion on, an
     aggressive promotion threshold, and a small translation-cache bound
     — so phase migration drives the cache past capacity repeatedly and
     each capacity flush kills live regions and fused blocks
     (capacity_flushes / region_invalidations / fused_invalidations);
   - megamorphic runs under the threaded engine — its ever-changing
     indirect-jump targets defeat software target prediction, ballooning
     the chain-class instruction share and dispatch misses versus the
     gzip reference row measured under the identical configuration;
   - call-tower runs under the threaded engine — towers 16–24 deep
     against the 8-entry dual RAS overflow the stack every iteration
     (dras_overflows) and drag the return hit rate far below gzip's.

   Every run is differentially verified against the golden Alpha
   interpreter (outcome, console output, full register checksum), so the
   stressors prove robustness, not just survival. Counters are
   deterministic; [--check] gates on the targets still being hit. *)

type row = {
  s_name : string;
  s_outcome : string;
  s_retired : int;
  s_slots : int;  (* I-ISA slots live in the translation cache at exit *)
  s_secs : float;
  s_flushes : int;
  s_capacity_flushes : int;
  s_region_invalidations : int;
  s_fused_invalidations : int;
  s_dispatch_misses : int;
  s_chain_share : float;  (* chain-class I-ISA instructions / i_exec *)
  s_dras_hits : int;
  s_dras_misses : int;
  s_dras_overflows : int;
  s_dras_hit_rate : float;
  s_mismatches : string list;  (* vs the golden interpreter *)
}

let default_fuel = 100_000_000

(* Fixed generator seed: the bench measures the translator under a known
   adversary, not generator variance (ildp_fuzz --stress covers that). *)
let gen_seed = 7

(* Translation-cache bound for the flush-storm row: small enough that a
   few phase migrations overflow it, large enough to hold any single
   phase's fragments (so forward progress is never starved). *)
let flush_cap = 128

let hot_threshold = 10

type spec = {
  prog : Alpha.Program.t;
  cfg : Core.Config.t;
}

let arm_spec arm ~scale =
  let iters = 256 * max 1 scale in
  let prog = Oracle.Gen.assemble (Stress.single ~iters arm ~seed:gen_seed) in
  let cfg =
    match arm with
    | Stress.Flush_storm ->
      { Core.Config.default with
        engine = Core.Config.Region; superops = true; region_threshold = 4;
        hot_threshold; tcache_max_slots = flush_cap }
    | Stress.Megamorphic | Stress.Call_tower ->
      { Core.Config.default with engine = Core.Config.Threaded; hot_threshold }
  in
  { prog; cfg }

(* gzip under the megamorphic/call-tower configuration: the well-behaved
   reference whose chain share and RAS hit rate the stressors must beat. *)
let reference_spec ~scale =
  let w = List.find (fun (w : Workloads.t) -> w.name = "gzip") Workloads.all in
  { prog = Workloads.program ~scale w;
    cfg =
      { Core.Config.default with engine = Core.Config.Threaded; hot_threshold } }

let run_spec ~name ~fuel { prog; cfg } =
  let golden = Alpha.Interp.create prog in
  let golden_outcome =
    match Alpha.Interp.run ~fuel golden with
    | Alpha.Interp.Exit c -> Printf.sprintf "exit:%d" c
    | Alpha.Interp.Fault tr ->
      Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
    | Alpha.Interp.Out_of_fuel -> "fuel"
  in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Vm.run ~fuel vm in
  let secs = Unix.gettimeofday () -. t0 in
  let outcome =
    match outcome with
    | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
    | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
    | Core.Vm.Out_of_fuel -> "fuel"
  in
  let ms = ref [] in
  if outcome <> golden_outcome then
    ms := Printf.sprintf "outcome %s vs golden %s" outcome golden_outcome :: !ms;
  if Core.Vm.output vm <> Alpha.Interp.output golden then
    ms := "console output differs from golden" :: !ms;
  if Core.Vm.reg_checksum vm <> Alpha.Interp.reg_checksum golden then
    ms := "register checksum differs from golden" :: !ms;
  let ex = Option.get (Core.Vm.acc_exec vm) in
  let st = ex.Core.Exec_acc.stats in
  let dras = Core.Vm.dual_ras vm in
  let segs = vm.Core.Vm.segs in
  {
    s_name = name;
    s_outcome = outcome;
    s_retired = st.alpha_retired + vm.interp_insns;
    s_slots =
      (match vm.Core.Vm.backend with
      | Core.Vm.B_acc (ctx, _) -> Core.Tcache.Acc.n_slots ctx.Core.Translate.tc
      | Core.Vm.B_straight (ctx, _) ->
        Core.Tcache.Straight.n_slots ctx.Core.Straighten.tc);
    s_secs = secs;
    s_flushes = segs.flushes;
    s_capacity_flushes = segs.capacity_flushes;
    s_region_invalidations = segs.region_invalidations;
    s_fused_invalidations = segs.fused_invalidations;
    s_dispatch_misses = segs.dispatch_misses;
    s_chain_share =
      float_of_int st.by_class.(2) /. float_of_int (max 1 st.i_exec);
    s_dras_hits = st.ret_dras_hits;
    s_dras_misses = st.ret_dras_misses;
    s_dras_overflows = dras.Machine.Dual_ras.overflows;
    s_dras_hit_rate =
      (let total = st.ret_dras_hits + st.ret_dras_misses in
       if total = 0 then 0.0
       else float_of_int st.ret_dras_hits /. float_of_int total);
    s_mismatches = List.rev !ms;
  }

type sweep_result = {
  arms : row list;  (* flush-storm, megamorphic, call-tower *)
  reference : row;  (* gzip, same config as the threaded-engine arms *)
}

let sweep ?(scale = 1) ?(fuel = default_fuel) () =
  let arms =
    List.map
      (fun arm ->
        run_spec ~name:(Stress.arm_name arm) ~fuel (arm_spec arm ~scale))
      Stress.all_arms
  in
  let reference = run_spec ~name:"gzip" ~fuel (reference_spec ~scale) in
  { arms; reference }

let find_arm s name = List.find (fun r -> r.s_name = name) s.arms

(* Each arm's structural target: the stressor must demonstrably hit the
   mechanism it aims at, not merely terminate correctly. *)
let target_met s = function
  | Stress.Flush_storm ->
    let r = find_arm s "flush-storm" in
    r.s_capacity_flushes > 0 && r.s_region_invalidations > 0
    && r.s_fused_invalidations > 0
  | Stress.Megamorphic ->
    let r = find_arm s "megamorphic" in
    r.s_chain_share >= 4.0 *. s.reference.s_chain_share
    && r.s_chain_share >= 0.25
    && r.s_dispatch_misses > s.reference.s_dispatch_misses
  | Stress.Call_tower ->
    (* absolute bound: a call-balanced reference may execute no hot
       returns at all, making a relative comparison vacuous *)
    let r = find_arm s "call-tower" in
    r.s_dras_overflows > 0
    && r.s_dras_hits + r.s_dras_misses > 0
    && r.s_dras_hit_rate < 0.75

let all_targets_met s = List.for_all (target_met s) Stress.all_arms

let render fmt s =
  Format.fprintf fmt
    "Adversarial stress (telemetry vs the gzip reference, \
     interpreter-verified)@.";
  Format.fprintf fmt "%-12s %9s %6s %6s %6s %7s %7s %8s %9s %7s  %s@." "arm"
    "retired" "slots" "flush" "capfl" "reginv" "fusinv" "chain%" "overflow"
    "ras%" "check";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-12s %9d %6d %6d %6d %7d %7d %7.1f%% %9d %6.1f%%  %s@." r.s_name
        r.s_retired r.s_slots r.s_flushes r.s_capacity_flushes
        r.s_region_invalidations
        r.s_fused_invalidations
        (100.0 *. r.s_chain_share)
        r.s_dras_overflows
        (100.0 *. r.s_dras_hit_rate)
        (if r.s_mismatches = [] then "ok"
         else String.concat "; " r.s_mismatches))
    (s.arms @ [ s.reference ]);
  List.iter
    (fun arm ->
      Format.fprintf fmt "target %-12s %s@." (Stress.arm_name arm)
        (if target_met s arm then "hit" else "MISSED"))
    Stress.all_arms

let schema = "ildp-dbt-stress/1"

let json_of_row r =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.s_name);
      ("outcome", J.String r.s_outcome);
      ("v_insns", J.Int r.s_retired);
      ("slots", J.Int r.s_slots);
      ("secs", J.Float r.s_secs);
      ("flushes", J.Int r.s_flushes);
      ("capacity_flushes", J.Int r.s_capacity_flushes);
      ("region_invalidations", J.Int r.s_region_invalidations);
      ("fused_invalidations", J.Int r.s_fused_invalidations);
      ("dispatch_misses", J.Int r.s_dispatch_misses);
      ("chain_share", J.Float r.s_chain_share);
      ("dras_hits", J.Int r.s_dras_hits);
      ("dras_misses", J.Int r.s_dras_misses);
      ("dras_overflows", J.Int r.s_dras_overflows);
      ("dras_hit_rate", J.Float r.s_dras_hit_rate);
      ("verified", J.Bool (r.s_mismatches = [])) ]

let to_json ~jobs ~scale ~fuel s =
  let module J = Obs.Json in
  Obs.Envelope.wrap ~schema ~jobs
    [ ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("seed", J.Int gen_seed);
      ("flush_cap", J.Int flush_cap);
      ("hot_threshold", J.Int hot_threshold);
      ("arms", J.List (List.map json_of_row s.arms));
      ("reference", json_of_row s.reference);
      ("targets",
       J.Obj
         (List.map
            (fun arm ->
              (Stress.arm_name arm, J.Bool (target_met s arm)))
            Stress.all_arms)) ]

let write_json path ~jobs ~scale ~fuel s =
  Obs.Json.write_file path (to_json ~jobs ~scale ~fuel s)
