(** Alias of {!Taskpool.Memo}; see {!Harness.Pool} for why the
    implementation lives in [Taskpool]. *)

include module type of struct
  include Taskpool.Memo
end
