(* Quantized-NN inference benchmark: the nn_* workloads run under every
   translated-execution engine (instrumented match, threaded, region) on
   the accumulator backend plus the code-straightening backend, and the
   per-layer checksums the kernels print are the verified guest output.

   The checksums fold every requantized activation into the PAL console,
   so a single flipped bit anywhere in a fixed-point matmul — a mistrans-
   lated multiply, a wrong shift in requantization, a clamped-vs-unclamped
   ReLU — changes the printed output. [verify] therefore demands
   byte-identical console output (and, between the accumulator engines,
   identical statistics) across all four runs; the straightening backend
   is held to output/outcome equality only, since its internal statistics
   are legitimately different.

   Headline metric is the same whole-VM V-ISA MIPS as the functional-
   throughput sweep, per engine, with threaded/matched and region/matched
   speedups gated by [--check] against BENCH_nn.json. *)

type straight_result = {
  st_outcome : string;
  st_output : string;
  st_retired : int;
  st_secs : float;
}

type row = {
  name : string;
  checksums : int list;  (* per-layer checksums parsed from PAL output *)
  matched : Throughput.run_result;
  threaded : Throughput.run_result;
  region : Throughput.run_result;
  straight : straight_result;
  mismatches : string list;
}

let default_fuel = Throughput.default_fuel

(* The NN suite is every registry workload named nn_*. *)
let nn_workloads () =
  List.filter
    (fun (w : Workloads.t) ->
      String.length w.name > 3 && String.sub w.name 0 3 = "nn_")
    Workloads.all

(* Whitespace-separated decimal integers on the PAL console. *)
let parse_checksums output =
  String.split_on_char '\n' output
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map int_of_string_opt

let run_straight ?(scale = 1) ?(fuel = default_fuel) (w : Workloads.t) =
  let prog = Workloads.program ~scale w in
  let vm = Core.Vm.create ~kind:Core.Vm.Straight_only prog in
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Vm.run ~fuel vm in
  let secs = Unix.gettimeofday () -. t0 in
  let ex = Option.get (Core.Vm.straight_exec vm) in
  {
    st_outcome =
      (match outcome with
      | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
      | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
      | Core.Vm.Out_of_fuel -> "fuel");
    st_output = Core.Vm.output vm;
    st_retired = ex.stats.alpha_retired + vm.interp_insns;
    st_secs = secs;
  }

let verify ~(matched : Throughput.run_result) ~threaded ~region ~straight =
  let ms = ref [] in
  List.iter
    (fun (tag, m) ->
      List.iter (fun s -> ms := (tag ^ " " ^ s) :: !ms) m)
    [ ("threaded:", Throughput.verify ~matched ~threaded);
      ("region:", Throughput.verify ~matched ~threaded:region) ];
  if straight.st_outcome <> matched.outcome then
    ms :=
      Printf.sprintf "straight: outcome %s vs %s" straight.st_outcome
        matched.outcome
      :: !ms;
  if straight.st_output <> matched.output then
    ms := "straight: checksum output differs" :: !ms;
  (* an NN kernel must actually emit per-layer checksums *)
  if List.length (parse_checksums matched.output) < 3 then
    ms := "fewer than 3 checksum values on the console" :: !ms;
  List.rev !ms

let sweep ?(scale = 1) ?(fuel = default_fuel) ?(repeats = 3) () =
  List.map
    (fun (w : Workloads.t) ->
      let run engine () = Throughput.run_once ~engine ~scale ~fuel w in
      let matched = Throughput.best ~repeats (run Core.Config.Matched) in
      let threaded = Throughput.best ~repeats (run Core.Config.Threaded) in
      let region = Throughput.best ~repeats (run Core.Config.Region) in
      let straight = run_straight ~scale ~fuel w in
      {
        name = w.name;
        checksums = parse_checksums matched.output;
        matched;
        threaded;
        region;
        straight;
        mismatches = verify ~matched ~threaded ~region ~straight;
      })
    (nn_workloads ())

let speedup r = Throughput.mips r.threaded /. Throughput.mips r.matched
let region_speedup r = Throughput.mips r.region /. Throughput.mips r.matched
let straight_mips r =
  float_of_int r.straight.st_retired /. r.straight.st_secs /. 1e6

let render fmt rows =
  Format.fprintf fmt
    "Quantized NN inference (whole-VM V-ISA MIPS, per-layer checksums \
     verified)@.";
  Format.fprintf fmt "%-10s %10s %10s %10s %10s  %-28s %s@." "kernel"
    "matched" "threaded" "region" "straight" "checksums" "check";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %10.2f %10.2f %10.2f %10.2f  %-28s %s@."
        r.name
        (Throughput.mips r.matched)
        (Throughput.mips r.threaded)
        (Throughput.mips r.region)
        (straight_mips r)
        (String.concat " " (List.map string_of_int r.checksums))
        (if r.mismatches = [] then "ok" else String.concat "; " r.mismatches))
    rows;
  let gm = Runner.geomean (List.map speedup rows) in
  Format.fprintf fmt "%-10s %10s %9.2fx %9.2fx@." "geomean" "" gm
    (Runner.geomean (List.map region_speedup rows));
  gm

let schema = "ildp-dbt-nn/1"

let json_of_row r =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.name);
      ("outcome", J.String r.threaded.outcome);
      ("checksums", J.List (List.map (fun c -> J.Int c) r.checksums));
      ("v_insns", J.Int (Throughput.retired r.threaded));
      ("match_mips", J.Float (Throughput.mips r.matched));
      ("threaded_mips", J.Float (Throughput.mips r.threaded));
      ("region_mips", J.Float (Throughput.mips r.region));
      ("straight_mips", J.Float (straight_mips r));
      ("speedup", J.Float (speedup r));
      ("region_speedup", J.Float (region_speedup r));
      ("verified", J.Bool (r.mismatches = [])) ]

let to_json ~jobs ~scale ~fuel ~repeats rows =
  let module J = Obs.Json in
  Obs.Envelope.wrap ~schema ~jobs
    [ ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("repeats", J.Int repeats);
      ("workloads", J.List (List.map json_of_row rows));
      ("geomean_speedup", J.Float (Runner.geomean (List.map speedup rows)));
      ("geomean_region_speedup",
       J.Float (Runner.geomean (List.map region_speedup rows))) ]

let write_json path ~jobs ~scale ~fuel ~repeats rows =
  Obs.Json.write_file path (to_json ~jobs ~scale ~fuel ~repeats rows)
