(** Alias of {!Taskpool.Pool} (the implementation moved there so
    [lib/service] can use it without a library cycle); kept here so
    existing [Harness.Pool] references keep working, with full type
    equality. *)

include module type of struct
  include Taskpool.Pool
end
