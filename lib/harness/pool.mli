(** Fixed-size worker pool over stdlib [Domain]s.

    Jobs submitted with [submit] are executed by [size t] worker domains in
    FIFO order; [await] blocks until the job's result (or exception) is
    available. Exceptions raised by a job are re-raised, with their
    original backtrace, in every domain that awaits its future.

    A pool of size 1 still runs jobs on a single dedicated worker domain,
    so the execution environment is identical at every [--jobs] setting;
    determinism of results must come from the jobs themselves (all
    simulation runs here are deterministic and share no mutable state). *)

type t

type 'a future

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [max 1 jobs] worker domains.
    Default: [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job. Raises [Invalid_argument] on a shut-down pool. *)

val await : 'a future -> 'a
(** Block until the job completes; returns its value or re-raises its
    exception. May be called from any domain, any number of times. *)

val shutdown : t -> unit
(** Finish all queued jobs, then join the workers. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    also on exception. *)
