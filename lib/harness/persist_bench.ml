(* Cold-vs-warm start benchmark for persistent translation-cache
   snapshots.

   Each workload runs twice: cold (empty cache, the usual
   interpret/profile/translate ramp) and warm (a VM built from the cold
   run's snapshot, pushed through the full byte encoding so the codec and
   CRC are on the measured path). The two runs must finish in identical
   architected state — output, register checksum, outcome — and the warm
   run must form zero new superblocks: deterministic replay means the
   restored cache already covers every hot region.

   The headline metric is the translation-phase reduction measured in the
   deterministic DBT cost model (translate units spent warm vs cold), so
   the console report is byte-identical across hosts; wall-clock seconds
   for both runs ride along in the JSON export only. *)

type run_out = {
  outcome : string;
  output : string;
  checksum : int64;
  superblocks : int;
  interp_insns : int;
  translate_units : int;
  secs : float;
}

let default_fuel = 100_000_000

let run_vm ?snapshot ~fuel ~prog () =
  let vm = Core.Vm.create ?snapshot ~kind:Core.Vm.Acc prog in
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Vm.run ~fuel vm in
  let secs = Unix.gettimeofday () -. t0 in
  Core.Vm.publish_obs vm;
  ( vm,
    {
      outcome =
        (match outcome with
        | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
        | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
        | Core.Vm.Out_of_fuel -> "fuel");
      output = Core.Vm.output vm;
      checksum = Core.Vm.reg_checksum vm;
      superblocks = vm.superblocks;
      interp_insns = vm.interp_insns;
      translate_units = (Core.Vm.cost vm).Core.Cost.translate_units;
      secs;
    } )

type row = {
  name : string;
  fingerprint : Persist.Snapshot.fingerprint;
  snapshot_bytes : int;
  frags : int;
  slots : int;
  cold : run_out;
  warm : run_out;
  mismatches : string list;
  region_prewarmed : int;
      (* regions promoted straight from the snapshot's hotness profile by
         a region-engine warm start, before executing any instruction *)
  region_mismatches : string list; (* region warm vs region cold *)
}

(* Fraction of cold-start translation-phase work the warm start avoided,
   in deterministic cost-model units. *)
let reduction r =
  if r.cold.translate_units <= 0 then 0.0
  else
    1.0
    -. (float_of_int r.warm.translate_units
       /. float_of_int r.cold.translate_units)

let verify ~(cold : run_out) ~(warm : run_out) =
  let ms = ref [] in
  let chk name got want =
    if got <> want then ms := Printf.sprintf "%s: %s vs %s" name got want :: !ms
  in
  chk "outcome" warm.outcome cold.outcome;
  chk "output" warm.output cold.output;
  chk "reg_checksum"
    (Printf.sprintf "%#Lx" warm.checksum)
    (Printf.sprintf "%#Lx" cold.checksum);
  (* deterministic replay: the restored cache already holds every hot
     region, so a warm run may never form a superblock *)
  if warm.superblocks <> 0 then
    ms := Printf.sprintf "warm run formed %d superblocks" warm.superblocks :: !ms;
  if cold.superblocks > 0 && warm.translate_units >= cold.translate_units then
    ms :=
      Printf.sprintf "no translation-phase reduction (%d warm vs %d cold)"
        warm.translate_units cold.translate_units
      :: !ms;
  List.rev !ms

(* Region tier-up warm start, measured separately because the snapshot
   fingerprint covers the engine: a region-engine cold run's snapshot
   carries the same hotness profile, and a warm start from it must
   promote the known-hot fragments to regions at load time — before
   executing a single guest instruction — then replay to an identical
   final state. Returns (regions live right after load, mismatches). *)
let region_warm ~scale ~fuel (w : Workloads.t) =
  let prog = Workloads.program ~scale w in
  let cfg = { Core.Config.default with engine = Core.Config.Region } in
  let cold_vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  ignore (Core.Vm.run ~fuel cold_vm : Core.Vm.outcome);
  let snap =
    Persist.Snapshot.of_string
      (Persist.Snapshot.to_string (Core.Vm.save_snapshot cold_vm))
  in
  let warm_vm = Core.Vm.create ~cfg ~snapshot:snap ~kind:Core.Vm.Acc prog in
  let prewarmed = Core.Vm.region_count warm_vm in
  ignore (Core.Vm.run ~fuel warm_vm : Core.Vm.outcome);
  let ms = ref [] in
  if Core.Vm.output warm_vm <> Core.Vm.output cold_vm then
    ms := "region warm: output differs" :: !ms;
  if Core.Vm.reg_checksum warm_vm <> Core.Vm.reg_checksum cold_vm then
    ms := "region warm: register checksum differs" :: !ms;
  if warm_vm.superblocks <> 0 then
    ms :=
      Printf.sprintf "region warm run formed %d superblocks"
        warm_vm.superblocks
      :: !ms;
  (prewarmed, List.rev !ms)

(* [ext_snapshot]: snapshot bytes saved by an earlier process
   (bench --load-cache), used instead of this run's own encoding for the
   matching workload — a cross-process roundtrip on the measured path. *)
let run_workload ?(scale = 1) ?(fuel = default_fuel) ?ext_snapshot
    (w : Workloads.t) =
  let prog = Workloads.program ~scale w in
  let cold_vm, cold = run_vm ~fuel ~prog () in
  let snap = Core.Vm.save_snapshot cold_vm in
  let bytes = Persist.Snapshot.to_string snap in
  let loaded =
    match ext_snapshot with
    | Some s -> Persist.Snapshot.of_string s
    | None -> Persist.Snapshot.of_string bytes
  in
  let frags, slots =
    match loaded.Persist.Snapshot.body with
    | Persist.Snapshot.B_acc c ->
      (Array.length c.frags, Array.length c.slots)
    | Persist.Snapshot.B_straight c ->
      (Array.length c.frags, Array.length c.slots)
  in
  let _, warm = run_vm ~snapshot:loaded ~fuel ~prog () in
  let region_prewarmed, region_mismatches = region_warm ~scale ~fuel w in
  ( {
      name = w.name;
      fingerprint = loaded.Persist.Snapshot.fingerprint;
      snapshot_bytes = String.length bytes;
      frags;
      slots;
      cold;
      warm;
      mismatches = verify ~cold ~warm;
      region_prewarmed;
      region_mismatches;
    },
    bytes )

let sweep ?(scale = 1) ?(fuel = default_fuel) ?load_cache () =
  let ext =
    Option.map
      (fun path ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s)
      load_cache
  in
  let first_bytes = ref None in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        (* an external snapshot can only match one workload's image digest;
           apply it to the first (the one --save-cache writes) *)
        let ext_snapshot =
          match (ext, Workloads.all) with
          | Some s, w0 :: _ when w0.name = w.name -> Some s
          | _ -> None
        in
        let row, bytes = run_workload ~scale ~fuel ?ext_snapshot w in
        if !first_bytes = None then first_bytes := Some bytes;
        row)
      Workloads.all
  in
  (rows, Option.get !first_bytes)

let render fmt rows =
  Format.fprintf fmt
    "Persistent-snapshot warm start (cost-model translate units)@.";
  Format.fprintf fmt "%-12s %9s %6s %11s %11s %10s %8s  %s@." "workload"
    "snapKB" "frags" "cold_xunit" "warm_xunit" "reduction" "rgn@load" "check";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %9.1f %6d %11d %11d %9.1f%% %8d  %s@." r.name
        (float_of_int r.snapshot_bytes /. 1024.0)
        r.frags r.cold.translate_units r.warm.translate_units
        (100.0 *. reduction r)
        r.region_prewarmed
        (match r.mismatches @ r.region_mismatches with
        | [] -> "ok"
        | ms -> String.concat "; " ms))
    rows;
  let mean =
    List.fold_left (fun a r -> a +. reduction r) 0.0 rows
    /. float_of_int (max 1 (List.length rows))
  in
  Format.fprintf fmt "%-12s %9s %6s %11s %11s %9.1f%%@." "mean" "" "" "" ""
    (100.0 *. mean);
  mean

let schema = "ildp-dbt-persist/1"

let json_of_fp (fp : Persist.Snapshot.fingerprint) =
  let module J = Obs.Json in
  J.Obj
    [ ("backend", J.String fp.fp_backend);
      ("isa", J.String fp.fp_isa);
      ("chaining", J.String fp.fp_chaining);
      ("engine", J.String fp.fp_engine);
      ("n_accs", J.Int fp.fp_n_accs);
      ("hot_threshold", J.Int fp.fp_hot_threshold);
      ("max_superblock", J.Int fp.fp_max_superblock);
      ("stop_at_translated", J.Bool fp.fp_stop_at_translated);
      ("fuse_mem", J.Bool fp.fp_fuse_mem);
      ("region_threshold", J.Int fp.fp_region_threshold);
      ("region_max_slots", J.Int fp.fp_region_max_slots);
      ("superops", J.Bool fp.fp_superops);
      ("tcache_max_slots", J.Int fp.fp_tcache_max_slots);
      ("image_digest", J.String fp.fp_image_digest) ]

(* Inverse of {!json_of_fp}, used by the roundtrip tests: the JSON view of
   a fingerprint must survive print/parse exactly. *)
let fp_of_json doc =
  let module J = Obs.Json in
  let ( let* ) = Option.bind in
  let* fp_backend = Option.bind (J.member "backend" doc) J.to_str in
  let* fp_isa = Option.bind (J.member "isa" doc) J.to_str in
  let* fp_chaining = Option.bind (J.member "chaining" doc) J.to_str in
  let* fp_engine = Option.bind (J.member "engine" doc) J.to_str in
  let* fp_n_accs = Option.bind (J.member "n_accs" doc) J.to_int in
  let* fp_hot_threshold = Option.bind (J.member "hot_threshold" doc) J.to_int in
  let* fp_max_superblock =
    Option.bind (J.member "max_superblock" doc) J.to_int
  in
  let* fp_stop_at_translated =
    Option.bind (J.member "stop_at_translated" doc) J.to_bool
  in
  let* fp_fuse_mem = Option.bind (J.member "fuse_mem" doc) J.to_bool in
  let* fp_region_threshold =
    Option.bind (J.member "region_threshold" doc) J.to_int
  in
  let* fp_region_max_slots =
    Option.bind (J.member "region_max_slots" doc) J.to_int
  in
  let* fp_superops = Option.bind (J.member "superops" doc) J.to_bool in
  let* fp_tcache_max_slots =
    Option.bind (J.member "tcache_max_slots" doc) J.to_int
  in
  let* fp_image_digest = Option.bind (J.member "image_digest" doc) J.to_str in
  Some
    {
      Persist.Snapshot.fp_backend;
      fp_isa;
      fp_chaining;
      fp_engine;
      fp_n_accs;
      fp_hot_threshold;
      fp_max_superblock;
      fp_stop_at_translated;
      fp_fuse_mem;
      fp_region_threshold;
      fp_region_max_slots;
      fp_superops;
      fp_tcache_max_slots;
      fp_image_digest;
    }

let json_of_row r =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.name);
      ("fingerprint", json_of_fp r.fingerprint);
      ("snapshot_bytes", J.Int r.snapshot_bytes);
      ("frags", J.Int r.frags);
      ("slots", J.Int r.slots);
      ("cold_outcome", J.String r.cold.outcome);
      ("cold_superblocks", J.Int r.cold.superblocks);
      ("cold_interp_insns", J.Int r.cold.interp_insns);
      ("cold_translate_units", J.Int r.cold.translate_units);
      ("cold_secs", J.Float r.cold.secs);
      ("warm_superblocks", J.Int r.warm.superblocks);
      ("warm_interp_insns", J.Int r.warm.interp_insns);
      ("warm_translate_units", J.Int r.warm.translate_units);
      ("warm_secs", J.Float r.warm.secs);
      ("translate_reduction", J.Float (reduction r));
      ("region_prewarmed", J.Int r.region_prewarmed);
      ("region_verified", J.Bool (r.region_mismatches = []));
      ("verified", J.Bool (r.mismatches = [])) ]

let to_json ~jobs ~scale ~fuel rows =
  let module J = Obs.Json in
  let mean =
    List.fold_left (fun a r -> a +. reduction r) 0.0 rows
    /. float_of_int (max 1 (List.length rows))
  in
  Obs.Envelope.wrap ~schema ~jobs
    [ ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("workloads", J.List (List.map json_of_row rows));
      ("mean_translate_reduction", J.Float mean) ]

let write_json path ~jobs ~scale ~fuel rows =
  Obs.Json.write_file path (to_json ~jobs ~scale ~fuel rows)
