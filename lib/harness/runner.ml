(* Shared experiment runners.

   Each runner executes one workload under one system configuration and
   collects the statistics the experiments need. Results are memoised per
   (workload, configuration, scale) so experiments that share a
   configuration (e.g. the Fig. 6 and Fig. 8 baselines) reuse runs within
   one process.

   The memo tables are domain-safe and single-flight (Memo): a run
   requested concurrently by several experiments is simulated exactly
   once, which is what lets the plan/prewarm phase below warm every cache
   from a Pool of worker domains. Individual simulations share no mutable
   state — each run builds its own interpreter, VM, translation cache and
   timing model — so runs are independent jobs, exactly the trace-driven
   SimpleScalar-style methodology shape. *)

type timing = {
  cycles : int;
  insns : int; (* instructions committed by the timing model *)
  alpha : int; (* V-ISA instructions those represent *)
  v_ipc : float;
  ipc : float;
  mpki : float; (* mispredictions per 1000 committed instructions *)
  misfetch_pki : float;
}

let fuel = 100_000_000

(* Telemetry: one span per runner kind (whole-simulation wall clock, as
   seen by the worker domain that ran it) and a count of raw — i.e.
   memo-missed — runs. Each raw run also folds its VM/timing-model stat
   structs into the registry, so registry totals are per unique
   simulation: the Memo tables are single-flight, which is what makes
   collected counts identical at any [--jobs] setting. *)
let sp_orig = Obs.span "run.original"
let sp_straight = Obs.span "run.straight"
let sp_acc = Obs.span "run.acc"
let c_orig = Obs.counter "runner.runs.original"
let c_straight = Obs.counter "runner.runs.straight"
let c_acc = Obs.counter "runner.runs.acc"

let timing_of_ooo (m : Uarch.Ooo.t) =
  {
    cycles = Uarch.Ooo.cycles m;
    insns = m.n;
    alpha = m.alpha;
    v_ipc = Uarch.Ooo.v_ipc m;
    ipc = Uarch.Ooo.ipc m;
    mpki = Uarch.Pred.mpki m.pred ~insns:m.n;
    misfetch_pki =
      1000.0 *. float_of_int m.pred.misfetches /. float_of_int (max 1 m.n);
  }

let timing_of_ildp (m : Uarch.Ildp.t) =
  {
    cycles = Uarch.Ildp.cycles m;
    insns = m.n;
    alpha = m.alpha;
    v_ipc = Uarch.Ildp.v_ipc m;
    ipc = Uarch.Ildp.ipc m;
    mpki = Uarch.Pred.mpki m.pred ~insns:m.n;
    misfetch_pki =
      1000.0 *. float_of_int m.pred.misfetches /. float_of_int (max 1 m.n);
  }

(* ---------- original (native Alpha on the superscalar model) ---------- *)

let original_raw ~use_ras w ~scale =
  Obs.with_span sp_orig @@ fun () ->
  Obs.bump c_orig 1;
  let prog = Workloads.program ~scale w in
  let st = Alpha.Interp.create prog in
  let m = Uarch.Ooo.create ~use_ras () in
  (match Alpha.Interp.run_ev ~fuel st ~sink:(Uarch.Ooo.feed m) with
  | Alpha.Interp.Exit _ -> ()
  | Fault tr ->
    failwith (Format.asprintf "%s (original): %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (w.name ^ ": out of fuel"));
  Uarch.Ooo.publish_obs m;
  timing_of_ooo m

(* ---------- code-straightening-only DBT on the superscalar model ------- *)

type straight_out = {
  s_t : timing;
  s_i_exec : int; (* translated instructions executed *)
  s_alpha : int; (* V-ISA instructions retired in translated mode *)
  s_interp : int; (* instructions interpreted instead *)
  s_frags : int;
  s_dbt_work : float;
}

let straight_raw ~chaining w ~scale =
  Obs.with_span sp_straight @@ fun () ->
  Obs.bump c_straight 1;
  let prog = Workloads.program ~scale w in
  let cfg = { Core.Config.default with chaining } in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Straight_only prog in
  let m = Uarch.Ooo.create () in
  (match
     Core.Vm.run ~sink:(Uarch.Ooo.feed m)
       ~boundary:(fun () -> Uarch.Ooo.boundary m)
       ~fuel vm
   with
  | Core.Vm.Exit _ -> ()
  | Fault tr ->
    failwith (Format.asprintf "%s (straight): %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (w.name ^ ": out of fuel"));
  Core.Vm.publish_obs vm;
  Uarch.Ooo.publish_obs m;
  let ex = Option.get (Core.Vm.straight_exec vm) in
  let ctx = Option.get (Core.Vm.straight_ctx vm) in
  {
    s_t = timing_of_ooo m;
    s_i_exec = ex.stats.i_exec;
    s_alpha = ex.stats.alpha_retired;
    s_interp = vm.interp_insns;
    s_frags = List.length (Core.Tcache.Straight.fragments ctx.tc);
    s_dbt_work = Core.Cost.per_translated_insn ctx.cost;
  }

(* ---------- accumulator-ISA DBT, optionally on the ILDP model ---------- *)

type acc_out = {
  a_t : timing option;
  a_i_exec : int;
  a_alpha : int;
  a_interp : int;
  a_copies : int; (* copy-class instructions executed *)
  a_chain : int; (* chain-class instructions executed *)
  a_i_bytes : int; (* static translated bytes *)
  a_v_bytes : int; (* static V-ISA bytes of distinct translated insns *)
  a_dbt_work : float;
  a_frags : int;
  a_spills : int;
  a_splits : int;
  a_dras_hit : float;
  a_cat_dyn : float array; (* dynamic usage-category distribution *)
}

let acc_raw ?(isa = Core.Config.Modified) ?(chaining = Core.Config.Sw_pred_ras)
    ?(n_accs = 4) ?(fuse_mem = false) ?(stop_at_translated = false)
    ?(max_superblock = 200) ?(hot_threshold = 50) ?ildp w ~scale =
  Obs.with_span sp_acc @@ fun () ->
  Obs.bump c_acc 1;
  let prog = Workloads.program ~scale w in
  let cfg =
    {
      Core.Config.default with
      isa;
      chaining;
      n_accs;
      fuse_mem;
      stop_at_translated;
      max_superblock;
      hot_threshold;
    }
  in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let m = Option.map (fun params -> Uarch.Ildp.create ~params ()) ildp in
  let sink = Option.map (fun m -> Uarch.Ildp.feed m) m in
  let boundary = Option.map (fun m () -> Uarch.Ildp.boundary m) m in
  (match Core.Vm.run ?sink ?boundary ~fuel vm with
  | Core.Vm.Exit _ -> ()
  | Fault tr ->
    failwith (Format.asprintf "%s (acc): %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (w.name ^ ": out of fuel"));
  Core.Vm.publish_obs vm;
  Option.iter Uarch.Ildp.publish_obs m;
  let ex = Option.get (Core.Vm.acc_exec vm) in
  let ctx = Option.get (Core.Vm.acc_ctx vm) in
  let frags = Core.Tcache.Acc.fragments ctx.tc in
  (* dynamic usage-category distribution: per-fragment static counts
     weighted by execution counts *)
  let cat = Array.make Core.Tcache.n_categories 0.0 in
  List.iter
    (fun (f : Core.Tcache.frag) ->
      Array.iteri
        (fun i c -> cat.(i) <- cat.(i) +. float_of_int (c * f.exec_count))
        f.cat_count)
    frags;
  let total_cat = Array.fold_left ( +. ) 0.0 cat in
  let cat_dyn =
    Array.map (fun c -> if total_cat > 0.0 then c /. total_cat else 0.0) cat
  in
  {
    a_t = Option.map timing_of_ildp m;
    a_i_exec = ex.stats.i_exec;
    a_alpha = ex.stats.alpha_retired;
    a_interp = vm.interp_insns;
    a_copies = ex.stats.by_class.(1);
    a_chain = ex.stats.by_class.(2);
    a_i_bytes = Core.Tcache.Acc.total_i_bytes ctx.tc;
    a_v_bytes = 4 * Hashtbl.length ctx.unique_vpcs;
    a_dbt_work = Core.Cost.per_translated_insn ctx.cost;
    a_frags = List.length frags;
    a_spills = ctx.n_spills;
    a_splits = ctx.n_splits;
    a_dras_hit =
      (let h = ex.stats.ret_dras_hits and m' = ex.stats.ret_dras_misses in
       if h + m' = 0 then 1.0 else float_of_int h /. float_of_int (h + m'));
    a_cat_dyn = cat_dyn;
  }

(* ---------- memoisation ---------- *)

(* The acc key is a structural record, not a formatted string: the old
   Printf.sprintf key ran on every lookup and was collision-prone on '/'
   in workload names. The ILDP parameters enter via the projection that
   actually distinguishes configurations in this study (PE count,
   communication latency, L1 size), matching the experiment sweeps. *)
type ildp_key = { k_n_pe : int; k_comm : int; k_l1 : int }

type acc_key = {
  k_name : string;
  k_isa : Core.Config.isa;
  k_chaining : Core.Config.chaining;
  k_n_accs : int;
  k_fuse_mem : bool;
  k_stop : bool;
  k_max_sb : int;
  k_hot : int;
  k_ildp : ildp_key option;
  k_scale : int;
}

let ildp_key_of (p : Uarch.Ildp.params) =
  { k_n_pe = p.n_pe; k_comm = p.comm; k_l1 = p.mem.l1_size }

let acc_key_of ~isa ~chaining ~n_accs ~fuse_mem ~stop_at_translated
    ~max_superblock ~hot_threshold ~ildp ~scale (w : Workloads.t) =
  {
    k_name = w.name;
    k_isa = isa;
    k_chaining = chaining;
    k_n_accs = n_accs;
    k_fuse_mem = fuse_mem;
    k_stop = stop_at_translated;
    k_max_sb = max_superblock;
    k_hot = hot_threshold;
    k_ildp = Option.map ildp_key_of ildp;
    k_scale = scale;
  }

let orig_cache : (string * bool * int, timing) Memo.t = Memo.create 64
let straight_cache : (string * Core.Config.chaining * int, straight_out) Memo.t =
  Memo.create 64
let acc_cache : (acc_key, acc_out) Memo.t = Memo.create 64

let reset_caches () =
  Memo.clear orig_cache;
  Memo.clear straight_cache;
  Memo.clear acc_cache

let original ?(use_ras = true) ?(scale = 1) w =
  Memo.find_or_compute orig_cache (w.Workloads.name, use_ras, scale) (fun () ->
      original_raw ~use_ras w ~scale)

let straight ?(chaining = Core.Config.Sw_pred_ras) ?(scale = 1) w =
  Memo.find_or_compute straight_cache (w.Workloads.name, chaining, scale)
    (fun () -> straight_raw ~chaining w ~scale)

let acc ?(isa = Core.Config.Modified) ?(chaining = Core.Config.Sw_pred_ras)
    ?(n_accs = 4) ?(fuse_mem = false) ?(stop_at_translated = false)
    ?(max_superblock = 200) ?(hot_threshold = 50) ?ildp ?(scale = 1) w =
  let key =
    acc_key_of ~isa ~chaining ~n_accs ~fuse_mem ~stop_at_translated
      ~max_superblock ~hot_threshold ~ildp ~scale w
  in
  Memo.find_or_compute acc_cache key (fun () ->
      acc_raw ~isa ~chaining ~n_accs ~fuse_mem ~stop_at_translated
        ~max_superblock ~hot_threshold ?ildp w ~scale)

(* ---------- run requests (the experiments' plan phase) ---------- *)

(* A [req] names one memoisable simulation run. Experiments declare their
   full run set as a plan; [prewarm] dedups the plan and warms every cache
   from the worker pool, after which rendering hits only warm caches and
   is byte-identical at any job count. *)

type req =
  | R_orig of { w : Workloads.t; use_ras : bool; scale : int }
  | R_straight of { w : Workloads.t; chaining : Core.Config.chaining; scale : int }
  | R_acc of {
      w : Workloads.t;
      isa : Core.Config.isa;
      chaining : Core.Config.chaining;
      n_accs : int;
      fuse_mem : bool;
      stop_at_translated : bool;
      max_superblock : int;
      hot_threshold : int;
      ildp : Uarch.Ildp.params option;
      scale : int;
    }

let req_original ?(use_ras = true) ?(scale = 1) w = R_orig { w; use_ras; scale }

let req_straight ?(chaining = Core.Config.Sw_pred_ras) ?(scale = 1) w =
  R_straight { w; chaining; scale }

let req_acc ?(isa = Core.Config.Modified) ?(chaining = Core.Config.Sw_pred_ras)
    ?(n_accs = 4) ?(fuse_mem = false) ?(stop_at_translated = false)
    ?(max_superblock = 200) ?(hot_threshold = 50) ?ildp ?(scale = 1) w =
  R_acc
    {
      w;
      isa;
      chaining;
      n_accs;
      fuse_mem;
      stop_at_translated;
      max_superblock;
      hot_threshold;
      ildp;
      scale;
    }

(* Closure-free key for deduplication (Workloads.t holds a closure, so
   structural comparison of reqs themselves is off the table). *)
type req_key =
  | K_orig of (string * bool * int)
  | K_straight of (string * Core.Config.chaining * int)
  | K_acc of acc_key

let key_of_req = function
  | R_orig { w; use_ras; scale } -> K_orig (w.Workloads.name, use_ras, scale)
  | R_straight { w; chaining; scale } ->
    K_straight (w.Workloads.name, chaining, scale)
  | R_acc
      {
        w;
        isa;
        chaining;
        n_accs;
        fuse_mem;
        stop_at_translated;
        max_superblock;
        hot_threshold;
        ildp;
        scale;
      } ->
    K_acc
      (acc_key_of ~isa ~chaining ~n_accs ~fuse_mem ~stop_at_translated
         ~max_superblock ~hot_threshold ~ildp ~scale w)

let run_req = function
  | R_orig { w; use_ras; scale } -> ignore (original ~use_ras ~scale w)
  | R_straight { w; chaining; scale } -> ignore (straight ~chaining ~scale w)
  | R_acc
      {
        w;
        isa;
        chaining;
        n_accs;
        fuse_mem;
        stop_at_translated;
        max_superblock;
        hot_threshold;
        ildp;
        scale;
      } ->
    ignore
      (acc ~isa ~chaining ~n_accs ~fuse_mem ~stop_at_translated ~max_superblock
         ~hot_threshold ?ildp ~scale w)

let dedup reqs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let k = key_of_req r in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    reqs

(* Warm every cache entry a plan needs, in parallel over [pool]. Awaits
   all jobs; the first failure (in submission order) is re-raised after
   every job has settled, so no worker is left running a stale job. *)
let prewarm ~pool reqs =
  let reqs = dedup reqs in
  let futs = List.map (fun r -> Pool.submit pool (fun () -> run_req r)) reqs in
  let first_error =
    List.fold_left
      (fun err fut ->
        match Pool.await fut with
        | () -> err
        | exception e -> (
          let bt = Printexc.get_raw_backtrace () in
          match err with None -> Some (e, bt) | Some _ -> err))
      None futs
  in
  match first_error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* geometric mean, the usual summary for IPC-like ratios *)
let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
         /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
