(* Functional-throughput benchmark: translated execution speed of the VM
   itself (no timing model attached), measured in V-ISA MIPS over the
   twelve workloads.

   Each workload runs twice under identical configurations except for
   {!Core.Config.t.engine}: once on the instrumented variant-match engine
   ([Matched]) and once on the threaded-code engine ([Threaded]). The two
   runs must finish in byte-identical architected state with identical
   statistics — [verify] checks that — which doubles as an end-to-end
   differential test of the closure-compiled path at full workload scale.

   The headline metric is whole-VM throughput: every architecturally
   retired V-ISA instruction (interpreted + translated) divided by
   wall-clock seconds. That is the quantity a functional-mode user of the
   DBT experiences; fragment-only rates would flatter the engines by
   hiding profiling and translation time. *)

type run_result = {
  outcome : string;
  output : string; (* PAL console output *)
  checksum : int64; (* architected register checksum *)
  i_exec : int;
  by_class : int array;
  alpha : int; (* V-ISA instructions retired in translated mode *)
  st_cycles : int; (* bulk-charged static cycles; 0 without an annotator *)
  frag_enters : int;
  dras_hits : int;
  dras_misses : int;
  interp_insns : int;
  superblocks : int;
  hot_cover : float; (* see [hot_cover] below *)
  secs : float;
}

let default_fuel = 100_000_000

(* Hot-loop concentration: the fraction of translated V-ISA execution
   (entry-count-weighted guest instructions) spent in the eight hottest
   fragments. Loop-dominated workloads concentrate execution in a few hot
   loop bodies — exactly the shape the region/superop tiers accelerate —
   while call-heavy or branchy ones spread it across many lukewarm
   fragments. The profile is a property of the workload, not the engine:
   fragment entry counts are part of the cross-engine verified state. *)
let hot_frags = 8

let hot_cover vm =
  let weight (f : Core.Tcache.frag) =
    float_of_int f.exec_count *. float_of_int f.v_insns
  in
  let frags =
    match (Core.Vm.acc_ctx vm, Core.Vm.straight_ctx vm) with
    | Some ctx, _ -> Core.Tcache.Acc.fragments ctx.Core.Translate.tc
    | None, Some ctx -> Core.Tcache.Straight.fragments ctx.Core.Straighten.tc
    | None, None -> []
  in
  let ws = List.sort (fun a b -> compare b a) (List.map weight frags) in
  let total = List.fold_left ( +. ) 0.0 ws in
  if total <= 0.0 then 0.0
  else
    let rec take n acc = function
      | w :: tl when n > 0 -> take (n - 1) (acc +. w) tl
      | _ -> acc
    in
    take hot_frags 0.0 ws /. total

let run_once ~engine ?(scale = 1) ?(fuel = default_fuel) (w : Workloads.t) =
  let prog = Workloads.program ~scale w in
  let cfg = { Core.Config.default with engine } in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Vm.run ~fuel vm in
  let secs = Unix.gettimeofday () -. t0 in
  let outcome =
    match outcome with
    | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
    | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
    | Core.Vm.Out_of_fuel -> "fuel"
  in
  Core.Vm.publish_obs vm;
  let ex = Option.get (Core.Vm.acc_exec vm) in
  {
    outcome;
    output = Core.Vm.output vm;
    checksum = Core.Vm.reg_checksum vm;
    i_exec = ex.stats.i_exec;
    by_class = Array.copy ex.stats.by_class;
    alpha = ex.stats.alpha_retired;
    st_cycles = ex.stats.st_cycles;
    frag_enters = ex.stats.frag_enters;
    dras_hits = ex.stats.ret_dras_hits;
    dras_misses = ex.stats.ret_dras_misses;
    interp_insns = vm.interp_insns;
    superblocks = vm.superblocks;
    hot_cover = hot_cover vm;
    secs;
  }

(* V-ISA instructions architecturally retired by the run. *)
let retired r = r.alpha + r.interp_insns
let mips r = float_of_int (retired r) /. r.secs /. 1e6

(* Everything except wall-clock time must agree between the engines. *)
let verify ~(matched : run_result) ~(threaded : run_result) =
  let ms = ref [] in
  let chk name got want =
    if got <> want then ms := Printf.sprintf "%s: %s vs %s" name got want :: !ms
  in
  let chki name got want =
    chk name (string_of_int got) (string_of_int want)
  in
  chk "outcome" threaded.outcome matched.outcome;
  chk "output" threaded.output matched.output;
  chk "reg_checksum"
    (Printf.sprintf "%#Lx" threaded.checksum)
    (Printf.sprintf "%#Lx" matched.checksum);
  chki "i_exec" threaded.i_exec matched.i_exec;
  Array.iteri
    (fun i c -> chki (Printf.sprintf "by_class.(%d)" i) threaded.by_class.(i) c)
    matched.by_class;
  chki "alpha_retired" threaded.alpha matched.alpha;
  chki "st_cycles" threaded.st_cycles matched.st_cycles;
  chki "frag_enters" threaded.frag_enters matched.frag_enters;
  chki "ret_dras_hits" threaded.dras_hits matched.dras_hits;
  chki "ret_dras_misses" threaded.dras_misses matched.dras_misses;
  chki "interp_insns" threaded.interp_insns matched.interp_insns;
  chki "superblocks" threaded.superblocks matched.superblocks;
  List.rev !ms

type row = {
  name : string;
  matched : run_result; (* best-of-repeats timing *)
  threaded : run_result;
  mismatches : string list;
}

let speedup r = mips r.threaded /. mips r.matched

(* Best-of-N wall clock; the simulations are deterministic, so state and
   statistics are identical across repeats and only timing varies. *)
let best ~repeats f =
  let r0 = f () in
  let best = ref r0 in
  for _ = 2 to repeats do
    let r = f () in
    if r.secs < !best.secs then best := r
  done;
  !best

let sweep ?(scale = 1) ?(fuel = default_fuel) ?(repeats = 3) () =
  List.map
    (fun (w : Workloads.t) ->
      let matched =
        best ~repeats (fun () -> run_once ~engine:Core.Config.Matched ~scale ~fuel w)
      in
      let threaded =
        best ~repeats (fun () ->
            run_once ~engine:Core.Config.Threaded ~scale ~fuel w)
      in
      { name = w.name; matched; threaded; mismatches = verify ~matched ~threaded })
    Workloads.all

type jobs_row = { jobs : int; wall_secs : float; agg_mips : float }

(* Aggregate threaded-engine throughput with the workload sweep sharded
   over a worker pool — the experiment harness's usage pattern. *)
let jobs_sweep ~jobs ?(scale = 1) ?(fuel = default_fuel) () =
  let t0 = Unix.gettimeofday () in
  let results =
    Pool.with_pool ~jobs (fun pool ->
        Workloads.all
        |> List.map (fun w ->
               Pool.submit pool (fun () ->
                   run_once ~engine:Core.Config.Threaded ~scale ~fuel w))
        |> List.map Pool.await)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let total = List.fold_left (fun a r -> a + retired r) 0 results in
  { jobs; wall_secs = wall; agg_mips = float_of_int total /. wall /. 1e6 }

let render fmt rows =
  Format.fprintf fmt
    "Functional throughput (whole-VM V-ISA MIPS, translated execution)@.";
  Format.fprintf fmt "%-12s %12s %12s %10s %10s  %s@." "workload" "matched"
    "threaded" "speedup" "xlated%" "check";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %12.2f %12.2f %9.2fx %9.1f%%  %s@." r.name
        (mips r.matched) (mips r.threaded) (speedup r)
        (100.0 *. float_of_int r.threaded.alpha
        /. float_of_int (max 1 (retired r.threaded)))
        (if r.mismatches = [] then "ok"
         else String.concat "; " r.mismatches))
    rows;
  let gm = Runner.geomean (List.map speedup rows) in
  Format.fprintf fmt "%-12s %12s %12s %9.2fx@." "geomean" "" "" gm;
  gm

(* Baseline schema, version 2: same per-workload fields as /1 but carried
   inside the shared {!Obs.Envelope}, and the pool-scaling series renamed
   from "jobs" (which the envelope now claims) to "jobs_sweep". The
   [--check] reader accepts both versions. *)
let schema = "ildp-dbt-exec-bench/2"

let json_of_row r =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.name);
      ("outcome", J.String r.threaded.outcome);
      ("v_insns", J.Int (retired r.threaded));
      ("translated_alpha", J.Int r.threaded.alpha);
      ("interp_insns", J.Int r.threaded.interp_insns);
      ("match_secs", J.Float r.matched.secs);
      ("match_mips", J.Float (mips r.matched));
      ("threaded_secs", J.Float r.threaded.secs);
      ("threaded_mips", J.Float (mips r.threaded));
      ("speedup", J.Float (speedup r));
      ("verified", J.Bool (r.mismatches = [])) ]

let to_json ~jobs ~scale ~fuel ~repeats rows jobs_rows =
  let module J = Obs.Json in
  Obs.Envelope.wrap ~schema ~jobs
    [ ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("repeats", J.Int repeats);
      ("workloads", J.List (List.map json_of_row rows));
      ("geomean_speedup", J.Float (Runner.geomean (List.map speedup rows)));
      ("jobs_sweep",
       J.List
         (List.map
            (fun (j : jobs_row) ->
              J.Obj
                [ ("jobs", J.Int j.jobs);
                  ("wall_secs", J.Float j.wall_secs);
                  ("agg_mips", J.Float j.agg_mips) ])
            jobs_rows)) ]

let write_json path ~jobs ~scale ~fuel ~repeats rows jobs_rows =
  Obs.Json.write_file path (to_json ~jobs ~scale ~fuel ~repeats rows jobs_rows)

(* ---------- region tier-up sweep ---------- *)

(* Three-way sweep for the region tier-up engine: each workload runs under
   the instrumented, threaded, and region engines. The region run must be
   observationally identical to the instrumented one ([verify], all
   statistics), and its headline is the same whole-VM MIPS metric plus the
   speedup over both other engines — the tier-up claim is precisely that
   region beats threaded on loop-dominated workloads while staying exact. *)

type region_row = {
  rr_name : string;
  rr_matched : run_result;
  rr_threaded : run_result;
  rr_region : run_result;
  rr_mismatches : string list; (* region vs matched *)
}

let region_speedup r = mips r.rr_region /. mips r.rr_matched
let region_vs_threaded r = mips r.rr_region /. mips r.rr_threaded

(* The loop-dominated subset: workloads whose [hot_cover] says at least
   90% of translated execution sits in the [hot_frags] hottest fragments.
   The tier-up claim is specifically about this subset — the region and
   superop compilers specialize hot loop bodies, so their headline gate
   ([geomean_vs_threaded_loop] in the JSON) is taken over it, while the
   full-suite geomean is still reported and regression-checked. *)
let loop_threshold = 0.9

let is_loop r = r.rr_region.hot_cover >= loop_threshold

let region_sweep ?(scale = 1) ?(fuel = default_fuel) ?(repeats = 3) () =
  List.map
    (fun (w : Workloads.t) ->
      let matched =
        best ~repeats (fun () ->
            run_once ~engine:Core.Config.Matched ~scale ~fuel w)
      in
      let threaded =
        best ~repeats (fun () ->
            run_once ~engine:Core.Config.Threaded ~scale ~fuel w)
      in
      let region =
        best ~repeats (fun () ->
            run_once ~engine:Core.Config.Region ~scale ~fuel w)
      in
      {
        rr_name = w.name;
        rr_matched = matched;
        rr_threaded = threaded;
        rr_region = region;
        rr_mismatches = verify ~matched ~threaded:region;
      })
    Workloads.all

let render_region fmt rows =
  Format.fprintf fmt
    "Region tier-up throughput (whole-VM V-ISA MIPS, translated execution)@.";
  Format.fprintf fmt "%-12s %10s %10s %10s %9s %9s %6s  %s@." "workload"
    "matched" "threaded" "region" "vs match" "vs thrd" "cover" "check";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %10.2f %10.2f %10.2f %8.2fx %8.2fx %5.0f%%%s  %s@."
        r.rr_name (mips r.rr_matched) (mips r.rr_threaded) (mips r.rr_region)
        (region_speedup r) (region_vs_threaded r)
        (100.0 *. r.rr_region.hot_cover)
        (if is_loop r then "*" else " ")
        (if r.rr_mismatches = [] then "ok"
         else String.concat "; " r.rr_mismatches))
    rows;
  let gm = Runner.geomean (List.map region_speedup rows) in
  Format.fprintf fmt "%-12s %10s %10s %10s %8.2fx %8.2fx@." "geomean" "" "" ""
    gm
    (Runner.geomean (List.map region_vs_threaded rows));
  (match List.filter is_loop rows with
  | [] -> ()
  | loops ->
    Format.fprintf fmt "%-12s %10s %10s %10s %8s %8.2fx  (%d workloads)@."
      "loop subset" "" "" "" ""
      (Runner.geomean (List.map region_vs_threaded loops))
      (List.length loops));
  gm

let region_schema = "ildp-dbt-region/1"

let json_of_region_row r =
  let module J = Obs.Json in
  J.Obj
    [ ("name", J.String r.rr_name);
      ("outcome", J.String r.rr_region.outcome);
      ("v_insns", J.Int (retired r.rr_region));
      ("translated_alpha", J.Int r.rr_region.alpha);
      ("interp_insns", J.Int r.rr_region.interp_insns);
      ("match_mips", J.Float (mips r.rr_matched));
      ("threaded_mips", J.Float (mips r.rr_threaded));
      ("region_mips", J.Float (mips r.rr_region));
      ("speedup", J.Float (region_speedup r));
      ("vs_threaded", J.Float (region_vs_threaded r));
      ("hot_cover", J.Float r.rr_region.hot_cover);
      ("loop", J.Bool (is_loop r));
      ("verified", J.Bool (r.rr_mismatches = [])) ]

let region_to_json ~jobs ~scale ~fuel ~repeats rows =
  let module J = Obs.Json in
  Obs.Envelope.wrap ~schema:region_schema ~jobs
    [ ("scale", J.Int scale);
      ("fuel", J.Int fuel);
      ("repeats", J.Int repeats);
      ("workloads", J.List (List.map json_of_region_row rows));
      ("geomean_speedup",
       J.Float (Runner.geomean (List.map region_speedup rows)));
      ("geomean_vs_threaded",
       J.Float (Runner.geomean (List.map region_vs_threaded rows)));
      ("geomean_vs_threaded_loop",
       J.Float
         (match List.filter is_loop rows with
         | [] -> 1.0
         | loops -> Runner.geomean (List.map region_vs_threaded loops))) ]

let write_region_json path ~jobs ~scale ~fuel ~repeats rows =
  Obs.Json.write_file path (region_to_json ~jobs ~scale ~fuel ~repeats rows)
