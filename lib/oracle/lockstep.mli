(** Lockstep differential oracle: golden interpreter vs. the DBT VM.

    Runs a reference {!Alpha.Interp} alongside a {!Core.Vm} over the same
    program and compares full architected state — registers, PAL output,
    and written memory pages — at every translated-segment boundary (the
    VM's [boundary] hook), and optionally after every retired V-ISA
    instruction. The synchronization invariant is exact: at any segment
    boundary the VM has architecturally retired
    [vm.interp.icount + alpha_retired] V-ISA instructions, so the
    reference is single-stepped to that count and the two states must be
    bit-identical (modulo AT/GP, which the straightening DBT borrows, and
    VM-private memory: the dispatch table and scratch page).

    Boundary granularity is sufficient under the paper's precise-state
    rules: inside a fragment architected state may legitimately lag
    (deferred basic-format copies, split conditional moves), but every VM
    exit — including trap recovery through the PEI tables — must present
    precise state. Per-instruction comparison is therefore only sound for
    the code-straightening backend and is restricted to it. *)

type mode = {
  kind : Core.Vm.kind;
  isa : Core.Config.isa;
  chaining : Core.Config.chaining;
  fuse_mem : bool;
}

val all_modes : mode list
(** Every backend/ISA/chaining combination the DBT supports: the six
    accumulator modes, two fused-addressing variants, and the three
    straightening modes — 11 in total. *)

val mode_name : mode -> string
val mode_of_name : string -> mode option

type granularity =
  | Boundary  (** compare at translated-segment boundaries (always sound) *)
  | Per_insn
      (** additionally compare registers after every retired V-ISA
          instruction; honored only for [Straight_only] (see above),
          silently degraded to [Boundary] for accumulator backends *)

type coverage = {
  retired : int;  (** V-ISA instructions architecturally retired *)
  boundaries : int;  (** segment boundaries compared *)
  insn_checks : int;  (** per-instruction comparisons performed *)
  superblocks : int;
  branch_exits : int;
  pal_exits : int;
  dispatch_misses : int;
  trap_recoveries : int;
  flushes : int;
  dras_hits : int;
  dras_misses : int;
  outcome : string;  (** ["exit:N"], ["trap:KIND"] or ["fuel"] *)
  trap : string option;  (** trap kind when the program faulted *)
}

type divergence = {
  d_mode : string;
  where : string;  (** which comparison point caught it *)
  retired : int;  (** V-ISA retirement count at that point *)
  mismatches : Snapshot.mismatch list;
  frag_disasm : string option;
      (** disassembly of the fragment containing the last executed
          translated instruction *)
  v_range : (int * int) option;  (** that fragment's (v_start, v_insns) *)
}

type result = Agree of coverage | Diverge of divergence

val run :
  ?granularity:granularity ->
  ?threaded:bool ->
  ?region:bool ->
  ?superops:bool ->
  ?flush_every:int ->
  ?fuel:int ->
  ?hot_threshold:int ->
  ?tcache_max_slots:int ->
  ?warm_start:bool ->
  ?corrupt:(int -> Core.Vm.t -> unit) ->
  mode:mode ->
  Alpha.Program.t ->
  result
(** Execute [prog] under [mode] with the reference in lockstep.
    [threaded] (default false) runs the VM without an event sink so
    translated execution takes the threaded-code engine — the oracle then
    validates that engine instead of the instrumented one, at the cost of
    per-instruction granularity and fragment-disassembly context in
    divergence reports. [region] (default false) additionally selects
    [Core.Config.Region] with an aggressive promotion threshold (4
    fragment entries), so the oracle validates the region tier-up
    compiler — bulk accounting, direct intra-region transfers, and
    region invalidation on flush/patch — against the golden interpreter;
    it implies the sink-less setup of [threaded]. [region] alone pins
    [Core.Config.superops] off so the slot-granular tier-2 arm stays
    covered; [superops] (default false) implies [region] and turns the
    fused superop tier on, validating block fusion — specialized closure
    emission, idiom-template arms, mid-block fault unwinds — against the
    golden interpreter. [flush_every] > 0
    injects a {!Core.Vm.flush}
    every that many segment boundaries (default 0 = never).
    [hot_threshold] defaults to 10 so short programs reach translated
    code. [tcache_max_slots] (default unbounded) bounds the translation
    cache, so capacity-policy flushes — including the region and fused
    invalidations they force — run under lockstep verification too. [warm_start] (default false) first runs a throwaway VM cold to
    completion, saves its translation cache through the full
    {!Persist.Snapshot} byte encoding, and builds the VM under comparison
    from that snapshot — proving warm start observationally identical to
    cold. [corrupt], a test hook, runs after the comparison at each
    boundary (1-based index) and may mutate VM state to prove the oracle
    catches it. *)

val pp_divergence : Format.formatter -> divergence -> unit
