module Rng = Machine.Rng

(* Block-structured random program generator. See the interface. *)

type block = {
  text : string list;
  procs : string list;
  data : string list;
}

type program = {
  seed : int;
  iters : int;
  blocks : block list;
}

(* Registers the generator plays with — never sp/ra/at/gp, and never the
   scaffolding registers: fp (buffer base), t8 (loop counter), t9/t10
   (arm-local scratch), t11 (checksum). Same pool as [test_random]. *)
let pool = [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 16; 17; 18; 19 |]
let () = assert (not (Array.exists (fun r -> r = 15 || r >= 22) pool))
let reg rng = Alpha.Reg.to_string pool.(Rng.int rng (Array.length pool))

let ops2 =
  [| "addq"; "subq"; "addl"; "subl"; "xor"; "and"; "bis"; "bic"; "s4addq";
     "s8addq"; "cmpeq"; "cmplt"; "cmpule"; "cmpbge"; "sll"; "srl"; "sra";
     "zap"; "zapnot"; "extbl"; "extwl"; "insbl"; "mskbl"; "eqv"; "ornot" |]

let cmovs = [| "cmoveq"; "cmovne"; "cmovlt"; "cmovge" |]
let unary = [| "ctpop"; "ctlz"; "cttz"; "sextb"; "sextw" |]

let alu_line rng =
  match Rng.int rng 8 with
  | 0 | 1 | 2 | 3 ->
    let op = ops2.(Rng.int rng (Array.length ops2)) in
    if Rng.bool rng then
      Printf.sprintf "%s %s, %s, %s" op (reg rng) (reg rng) (reg rng)
    else Printf.sprintf "%s %s, %d, %s" op (reg rng) (Rng.int rng 64) (reg rng)
  | 4 -> Printf.sprintf "mulq %s, %d, %s" (reg rng) (1 + Rng.int rng 100) (reg rng)
  | 5 ->
    Printf.sprintf "%s %s, %s, %s"
      cmovs.(Rng.int rng (Array.length cmovs))
      (reg rng) (reg rng) (reg rng)
  | 6 -> Printf.sprintf "%s %s, %s" unary.(Rng.int rng 5) (reg rng) (reg rng)
  | _ ->
    let op = ops2.(Rng.int rng (Array.length ops2)) in
    Printf.sprintf "%s %s, %s, %s" op (reg rng) (reg rng) (reg rng)

let alu_lines rng n = List.init n (fun _ -> alu_line rng)

(* Each arm constructor takes a program-unique id for its labels. *)

let arm_alu rng _k = { text = alu_lines rng (3 + Rng.int rng 6); procs = []; data = [] }

(* masked in-bounds quad/byte accesses against the 2304-byte data buffer *)
let arm_mem rng _k =
  let quad r =
    [ Printf.sprintf "and %s, 127, t10" r; "s8addq t10, fp, t10";
      (if Rng.bool rng then Printf.sprintf "ldq %s, 0(t10)" (reg rng)
       else Printf.sprintf "stq %s, 0(t10)" (reg rng)) ]
  in
  let byte r =
    [ Printf.sprintf "and %s, 255, t10" r; "addq t10, fp, t10";
      (if Rng.bool rng then Printf.sprintf "ldbu %s, 0(t10)" (reg rng)
       else Printf.sprintf "stb %s, 0(t10)" (reg rng)) ]
  in
  let text =
    (if Rng.bool rng then quad (reg rng) else byte (reg rng))
    @ alu_lines rng (1 + Rng.int rng 2)
  in
  { text; procs = []; data = [] }

(* forward diamond *)
let arm_diamond rng k =
  let l = Printf.sprintf "dia%d" k in
  let cond = [| "beq"; "bne"; "blt"; "bge"; "blbc"; "blbs" |] in
  let text =
    [ Printf.sprintf "%s %s, %s" cond.(Rng.int rng 6) (reg rng) l ]
    @ alu_lines rng (1 + Rng.int rng 3)
    @ [ l ^ ":" ]
  in
  { text; procs = []; data = [] }

(* call chain of depth [d]; depths beyond 8 overflow the dual RAS, so
   returns must still verify architecturally through the dispatch path *)
let arm_call rng k =
  let d = if Rng.int rng 4 = 0 then 9 + Rng.int rng 4 else 1 + Rng.int rng 3 in
  let fn i = Printf.sprintf "fn%d_%d" k i in
  let procs =
    List.concat
      (List.init d (fun i ->
           [ fn i ^ ":"; "subq sp, 16, sp"; "stq ra, 8(sp)" ]
           @ alu_lines rng (1 + Rng.int rng 2)
           @ (if i + 1 < d then [ Printf.sprintf "bsr ra, %s" (fn (i + 1)) ]
              else [])
           @ [ "ldq ra, 8(sp)"; "addq sp, 16, sp"; "ret" ]))
  in
  { text = [ Printf.sprintf "bsr ra, %s" (fn 0) ]; procs; data = [] }

(* indirect jump through a computed table of code labels *)
let arm_jump_table rng k =
  let case i = Printf.sprintf "jt%dc%d" k i in
  let done_ = Printf.sprintf "jt%dd" k in
  let table = Printf.sprintf "jt%d" k in
  let text =
    [ Printf.sprintf "and %s, 3, t10" (reg rng);
      Printf.sprintf "la t9, %s" table;
      "s8addq t10, t9, t10";
      "ldq t10, 0(t10)";
      "jmp (t10)" ]
    @ List.concat
        (List.init 4 (fun i ->
             [ case i ^ ":" ]
             @ alu_lines rng (1 + Rng.int rng 2)
             @ if i < 3 then [ Printf.sprintf "br %s" done_ ] else []))
    @ [ done_ ^ ":" ]
  in
  let data =
    [ "  .align 8"; table ^ ":" ]
    @ List.init 4 (fun i -> Printf.sprintf "  .quad %s" (case i))
  in
  { text; procs = []; data }

(* mid-loop PAL call: forces a pal exit + interpreter reentry every
   iteration once the loop is translated *)
let arm_pal rng _k =
  let text =
    if Rng.bool rng then
      [ Printf.sprintf "and %s, 63, t9" (reg rng); "addq t9, 48, t9";
        "mov t9, a0"; "call_pal 1" ]
    else [ Printf.sprintf "mov %s, a0" (reg rng); "call_pal 2" ]
  in
  { text; procs = []; data = [] }

(* Trap-seeking arms, firing on a late iteration (the counter [t8] counts
   down to 1). Two shapes. The {e hot} shape keeps the faulting
   instruction on the hot path — its effective address (or jump target)
   is computed from the gate flag, so it is benign on every iteration but
   one; by then the loop is translated, and the fault must repair through
   the PEI tables and re-enter the interpreter. The {e cold} shape hides
   the faulting body behind a rarely-taken branch, so the fault happens
   off-trace in the interpreter instead. The trap ends the program; at
   most one per program. *)
let arm_trap rng k =
  let gate = 1 + Rng.int rng 8 in
  let flag = Printf.sprintf "cmpeq t8, %d, t9" gate in
  if Rng.int rng 4 > 0 then begin
    let mk text data = { text; procs = []; data } in
    match Rng.int rng 5 with
    | 0 -> mk [ flag; "addq t9, fp, t10"; "ldq t9, 0(t10)" ] [] (* unaligned *)
    | 1 ->
      mk [ flag; "addq t9, fp, t10"; Printf.sprintf "stq %s, 0(t10)" (reg rng) ] []
    | 2 ->
      (* flag << 23 pushes the address past the stack: unmapped load *)
      mk [ flag; "sll t9, 23, t10"; "addq t10, fp, t10"; "ldq t10, 0(t10)" ] []
    | 3 ->
      mk
        [ flag; "sll t9, 23, t10"; "addq t10, fp, t10";
          Printf.sprintf "stq %s, 0(t10)" (reg rng) ]
        []
    | _ ->
      (* indirect jump whose table sends the gate iteration into data *)
      let cont = Printf.sprintf "tr%dc" k in
      let tab = Printf.sprintf "tr%dt" k in
      mk
        [ flag; Printf.sprintf "la t10, %s" tab; "s8addq t9, t10, t10";
          "ldq t10, 0(t10)"; "jmp (t10)"; cont ^ ":" ]
        [ "  .align 8"; tab ^ ":"; Printf.sprintf "  .quad %s" cont;
          "  .quad buf" ]
  end
  else begin
    let skip = Printf.sprintf "sk%d" k in
    let body =
      match Rng.int rng 5 with
      | 0 -> [ "ldq t9, 1(fp)" ] (* unaligned load *)
      | 1 -> [ Printf.sprintf "stq %s, 2(fp)" (reg rng) ] (* unaligned store *)
      | 2 -> [ "ldiq t9, 0x900000"; "ldq t10, 0(t9)" ] (* unmapped load *)
      | 3 ->
        [ "ldiq t9, 0x900000"; Printf.sprintf "stq %s, 0(t9)" (reg rng) ]
        (* unmapped store *)
      | _ -> [ "la t9, buf"; "jmp (t9)" ] (* jump into data: illegal *)
    in
    let text =
      [ flag; Printf.sprintf "beq t9, %s" skip ] @ body @ [ skip ^ ":" ]
    in
    { text; procs = []; data = [] }
  end

let generate ~seed =
  let rng = Rng.create seed in
  let iters = 40 + Rng.int rng 120 in
  let n_blocks = 3 + Rng.int rng 6 in
  let trap_used = ref false in
  let blocks =
    List.init n_blocks (fun k ->
        match Rng.int rng 100 with
        | x when x < 30 -> arm_alu rng k
        | x when x < 45 -> arm_mem rng k
        | x when x < 55 -> arm_diamond rng k
        | x when x < 67 -> arm_call rng k
        | x when x < 77 -> arm_jump_table rng k
        | x when x < 84 -> arm_pal rng k
        | _ ->
          if !trap_used then arm_alu rng k
          else begin
            trap_used := true;
            arm_trap rng k
          end)
  in
  { seed; iters; blocks }

let source ?blocks p =
  let blocks = Option.value ~default:p.blocks blocks in
  let b = Buffer.create 2048 in
  let add s = Buffer.add_string b ("  " ^ s ^ "\n") in
  let raw s = Buffer.add_string b (s ^ "\n") in
  raw "  .text";
  raw "_start:";
  add "la fp, buf";
  Array.iteri
    (fun i r ->
      add (Printf.sprintf "ldiq %s, %d" (Alpha.Reg.to_string r) ((i * 77) + 13)))
    pool;
  add (Printf.sprintf "ldiq t8, %d" p.iters);
  raw "loop:";
  List.iter
    (fun blk ->
      List.iter
        (fun l -> if String.length l > 0 && l.[String.length l - 1] = ':' then raw l else add l)
        blk.text)
    blocks;
  add "subq t8, 1, t8";
  add "bne t8, loop";
  (* fold the register pool into a checksum and print it *)
  add "clr t11";
  Array.iter
    (fun r -> add (Printf.sprintf "xor t11, %s, t11" (Alpha.Reg.to_string r)))
    pool;
  add "mov t11, a0";
  add "call_pal 2";
  add "clr v0";
  add "call_pal 0";
  List.iter
    (fun blk ->
      List.iter
        (fun l -> if String.length l > 0 && l.[String.length l - 1] = ':' then raw l else add l)
        blk.procs)
    blocks;
  raw "  .data";
  raw "  .align 8";
  raw "buf:";
  raw "  .space 2304";
  List.iter (fun blk -> List.iter raw blk.data) blocks;
  Buffer.contents b

let assemble ?blocks p = Alpha.Assembler.assemble (source ?blocks p)
