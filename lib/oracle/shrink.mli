(** Delta debugging (Zeller–Hildebrandt ddmin) over a failing input list.

    Used by the oracle to minimize a diverging program's block list before
    reporting, so the fragment disassembly in the report covers as little
    code as possible. Generic: nothing here knows about programs. *)

val minimize :
  ?max_tests:int -> still_fails:('a list -> bool) -> 'a list -> 'a list
(** [minimize ~still_fails xs] returns a (locally) 1-minimal sublist of
    [xs] on which [still_fails] holds, preserving element order. If
    [still_fails xs] is false, returns [xs] unchanged. [still_fails] is
    invoked at most [max_tests] (default 400) times; on budget exhaustion
    the best list found so far is returned. *)
