(** Randomized Alpha program generator for the differential oracle.

    A widened version of the structured generator in [test_random]: on top
    of ALU/conditional-move/masked-memory/diamond bodies it emits
    trap-seeking arms (gated unaligned and unmapped accesses, jumps into
    the data section), indirect jumps through computed tables, deep
    call/return chains that overflow the 8-entry dual RAS, and mid-loop
    PAL calls that force interpreter reentry.

    Programs are built from independent {e blocks} — each block carries
    its loop-body text plus any procedures and data it needs, with labels
    unique per block — so a delta-debugging shrinker can drop any subset
    of blocks and still render a valid program. All programs terminate: a
    counted loop bounds execution, and a trap arm (at most one per
    program, firing on a late iteration so the loop is translated first)
    ends it early with an architectural trap. *)

type block = {
  text : string list;  (** lines inside the loop body *)
  procs : string list;  (** procedure definitions placed after exit *)
  data : string list;  (** data-section lines *)
}

type program = {
  seed : int;
  iters : int;  (** loop trip count *)
  blocks : block list;
}

val generate : seed:int -> program
(** Deterministic in [seed]. *)

val pool : int array
(** Registers the generator plays with — never sp/ra/at/gp/fp and never
    the loop scaffolding (t8 counter, t9/t10 scratch, t11 checksum).
    Exposed so companion generators (the {!Stress} arms) stay inside the
    same safe set. *)

val reg : Machine.Rng.t -> string
(** A random register name drawn from [pool]. *)

val alu_lines : Machine.Rng.t -> int -> string list
(** [n] random two/three-operand ALU, conditional-move and unary lines
    over [pool] — the shared filler for arm bodies. *)

val source : ?blocks:block list -> program -> string
(** Render assembly source using [blocks] (default: all of the program's
    blocks). Any subset of the original blocks renders a valid program. *)

val assemble : ?blocks:block list -> program -> Alpha.Program.t
(** [source] piped through the assembler. Raises [Alpha.Assembler.Error]
    if the generator emitted bad assembly (a generator bug). *)
