module Memory = Machine.Memory

(* Architected-state snapshots and diffs over the Alpha interpreter state.
   See the interface for the comparison rules. *)

type t = {
  pc : int;
  icount : int;
  regs : int64 array;
  out_len : int;
  pages : (int * int64) list;
}

type mismatch =
  | Reg of { r : int; got : int64; want : int64 }
  | Pc of { got : int; want : int }
  | Output of { got : string; want : string }
  | Mem of { addr : int; got : int; want : int }
  | Page of { chunk : int; got : int64 option; want : int64 option }
  | Retire of { got : int; want : int }
  | Outcome of { got : string; want : string }

(* FNV-1a over a page's bytes (unmapped page digests to the empty hash). *)
let page_digest (b : Bytes.t) =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length b - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        0x100000001b3L
  done;
  !h

let default_except = [ Alpha.Reg.at; Alpha.Reg.gp ]

let capture ?(is_private = fun _ -> false) (st : Alpha.Interp.t) =
  let pages =
    Memory.dirty_chunks st.mem
    |> List.filter_map (fun c ->
           if is_private c then None
           else
             match Memory.chunk_bytes st.mem c with
             | Some b -> Some (c, page_digest b)
             | None -> None)
  in
  {
    pc = st.pc;
    icount = st.icount;
    regs = Array.map (Alpha.Interp.get st) (Array.init 32 Fun.id);
    out_len = String.length (Alpha.Interp.output st);
    pages;
  }

let diff_regs ~except got_reg want_reg =
  let ms = ref [] in
  for r = 30 downto 0 do
    if not (List.mem r except) then begin
      let g = got_reg r and w = want_reg r in
      if not (Int64.equal g w) then ms := Reg { r; got = g; want = w } :: !ms
    end
  done;
  !ms

(* Strip the common prefix so the report shows where the streams fork. *)
let diff_output got want =
  if String.equal got want then []
  else begin
    let n = min (String.length got) (String.length want) in
    let i = ref 0 in
    while !i < n && got.[!i] = want.[!i] do
      incr i
    done;
    let tail s = String.sub s !i (String.length s - !i) in
    [ Output { got = tail got; want = tail want } ]
  end

let diff ~got ~want =
  let ms =
    diff_regs ~except:default_except
      (fun r -> got.regs.(r))
      (fun r -> want.regs.(r))
  in
  let ms =
    if got.pc <> want.pc then Pc { got = got.pc; want = want.pc } :: ms else ms
  in
  let ms =
    if got.out_len <> want.out_len then
      Output
        { got = Printf.sprintf "<%d bytes>" got.out_len;
          want = Printf.sprintf "<%d bytes>" want.out_len }
      :: ms
    else ms
  in
  let pages_tbl ps =
    let h = Hashtbl.create 16 in
    List.iter (fun (c, d) -> Hashtbl.replace h c d) ps;
    h
  in
  let gp = pages_tbl got.pages and wp = pages_tbl want.pages in
  let chunks =
    List.sort_uniq compare (List.map fst got.pages @ List.map fst want.pages)
  in
  let page_ms =
    List.filter_map
      (fun c ->
        let g = Hashtbl.find_opt gp c and w = Hashtbl.find_opt wp c in
        if g = w then None else Some (Page { chunk = c; got = g; want = w }))
      chunks
  in
  ms @ page_ms

(* ---------- live comparison ---------- *)

let zero_page = Bytes.make Memory.(1 lsl chunk_bits) '\000'

(* First mismatching byte of a page under "unmapped reads as zero". *)
let first_byte_diff ~chunk a b =
  let a = Option.value ~default:zero_page a
  and b = Option.value ~default:zero_page b in
  if Bytes.equal a b then None
  else begin
    let n = Bytes.length a in
    let i = ref 0 in
    while !i < n && Bytes.get a !i = Bytes.get b !i do
      incr i
    done;
    Some
      (Mem
         {
           addr = (chunk lsl Memory.chunk_bits) + !i;
           got = Char.code (Bytes.get a !i);
           want = Char.code (Bytes.get b !i);
         })
  end

let diff_live ?(except = default_except) ?(is_private = fun _ -> false)
    ?(pc = false) ~mem ~(got : Alpha.Interp.t) ~(want : Alpha.Interp.t) () =
  let ms =
    diff_regs ~except (Alpha.Interp.get got) (Alpha.Interp.get want)
  in
  let ms =
    if pc && got.pc <> want.pc then Pc { got = got.pc; want = want.pc } :: ms
    else ms
  in
  let ms =
    ms @ diff_output (Alpha.Interp.output got) (Alpha.Interp.output want)
  in
  let chunks =
    match mem with
    | `None -> []
    | `Dirty ->
      List.sort_uniq compare
        (Memory.dirty_chunks got.mem @ Memory.dirty_chunks want.mem)
    | `Full ->
      let keys m = Hashtbl.fold (fun c _ acc -> c :: acc) m.Memory.chunks [] in
      List.sort_uniq compare (keys got.mem @ keys want.mem)
  in
  let mem_ms =
    (* report only the first divergent byte — one is enough to localize *)
    List.fold_left
      (fun acc c ->
        match acc with
        | Some _ -> acc
        | None ->
          if is_private c then None
          else
            first_byte_diff ~chunk:c
              (Memory.chunk_bytes got.mem c)
              (Memory.chunk_bytes want.mem c))
      None chunks
  in
  ms @ Option.to_list mem_ms

(* ---------- printing ---------- *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '\n' -> "\\n"
         | c when Char.code c < 32 || Char.code c > 126 ->
           Printf.sprintf "\\x%02x" (Char.code c)
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let pp_mismatch fmt = function
  | Reg { r; got; want } ->
    Format.fprintf fmt "reg %s: vm=%#Lx ref=%#Lx" Alpha.Reg.names.(r) got want
  | Pc { got; want } -> Format.fprintf fmt "pc: vm=%#x ref=%#x" got want
  | Output { got; want } ->
    Format.fprintf fmt "output forks: vm=%S.. ref=%S.."
      (escape (String.sub got 0 (min 16 (String.length got))))
      (escape (String.sub want 0 (min 16 (String.length want))))
  | Mem { addr; got; want } ->
    Format.fprintf fmt "mem[%#x]: vm=%#x ref=%#x" addr got want
  | Page { chunk; got; want } ->
    let d = function
      | Some h -> Printf.sprintf "%#Lx" h
      | None -> "<never written>"
    in
    Format.fprintf fmt "page %#x digest: vm=%s ref=%s"
      (chunk lsl Memory.chunk_bits) (d got) (d want)
  | Retire { got; want } ->
    Format.fprintf fmt
      "reference ended after %d retired insns, VM claims %d — control-flow \
       divergence"
      want got
  | Outcome { got; want } ->
    Format.fprintf fmt "outcome: vm=%s ref=%s" got want

let mismatch_to_string m = Format.asprintf "%a" pp_mismatch m

let pp fmt t =
  Format.fprintf fmt "pc=%#x icount=%d out=%dB@\n" t.pc t.icount t.out_len;
  for r = 0 to 30 do
    if not (Int64.equal t.regs.(r) 0L) then
      Format.fprintf fmt "  %-4s= %#Lx@\n" Alpha.Reg.names.(r) t.regs.(r)
  done;
  List.iter
    (fun (c, d) ->
      Format.fprintf fmt "  page %#x digest %#Lx@\n" (c lsl Memory.chunk_bits) d)
    t.pages
