(** Architected-state snapshots and diffs over {!Alpha.Interp}.

    The differential oracle's comparison layer. Two forms:

    - {!capture} / {!diff} — a self-contained snapshot (registers, PC,
      retired-instruction count, PAL output length, and an FNV-1a digest
      per written memory page) that can be stored and compared later;
    - {!diff_live} — a direct comparison of two live interpreter states,
      byte-precise on memory, used by the lockstep runner at every
      translated-segment boundary.

    Register comparisons skip AT (r28) and GP (r29) by default: the OSF
    ABI reserves them between calls and the code-straightening DBT borrows
    them for chaining code, so no conforming guest holds live values there
    (same rule as [Alpha.Interp.reg_checksum]). R31 is architecturally
    zero and never compared. *)

type t = {
  pc : int;
  icount : int;  (** retired V-ISA instructions *)
  regs : int64 array;  (** the 32 architected registers, copied *)
  out_len : int;  (** PAL output bytes produced so far *)
  pages : (int * int64) list;  (** (chunk index, FNV-1a digest), sorted *)
}

type mismatch =
  | Reg of { r : int; got : int64; want : int64 }
  | Pc of { got : int; want : int }
  | Output of { got : string; want : string }
      (** divergent suffixes of the PAL output (common prefix stripped) *)
  | Mem of { addr : int; got : int; want : int }
      (** first mismatching byte of a written page *)
  | Page of { chunk : int; got : int64 option; want : int64 option }
      (** digest-level page mismatch ([None] = page never written) *)
  | Retire of { got : int; want : int }
      (** the reference ended (halt/trap) before reaching the DBT's
          retirement point — a control-flow divergence *)
  | Outcome of { got : string; want : string }  (** final outcome differs *)

val capture : ?is_private:(int -> bool) -> Alpha.Interp.t -> t
(** Snapshot the architected state. Pages for which [is_private] holds
    (VM-internal memory such as the dispatch table) are not digested. *)

val diff : got:t -> want:t -> mismatch list
(** Compare two snapshots; memory at page-digest granularity. Empty when
    the states agree. *)

val diff_live :
  ?except:int list ->
  ?is_private:(int -> bool) ->
  ?pc:bool ->
  mem:[ `None | `Dirty | `Full ] ->
  got:Alpha.Interp.t ->
  want:Alpha.Interp.t ->
  unit ->
  mismatch list
(** Compare two live interpreter states. [got] is the DBT VM's state,
    [want] the reference. [except] (default AT and GP) lists registers to
    skip. [mem] selects no memory comparison, only pages marked dirty
    (requires {!Machine.Memory.set_dirty_tracking} on both), or every
    mapped page; a memory divergence is reported as the first mismatching
    byte. [pc] (default false) also compares the PC — only meaningful
    where the VM's interpreter PC is up to date, i.e. not at segment
    boundaries, where the exit has not been applied yet. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
val mismatch_to_string : mismatch -> string
val pp : Format.formatter -> t -> unit
(** Human-readable snapshot: nonzero registers, PC, page digests. *)
