(* Classic ddmin: split into n chunks, try each complement; on success
   recurse on the smaller list, otherwise double the granularity. *)

let minimize ?(max_tests = 400) ~still_fails xs =
  let tests = ref 0 in
  let fails l =
    if !tests >= max_tests then false
    else begin
      incr tests;
      still_fails l
    end
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else begin
      let n = min n len in
      let chunk = len / n in
      let complement i =
        let lo = i * chunk and hi = if i = n - 1 then len else (i + 1) * chunk in
        List.filteri (fun j _ -> j < lo || j >= hi) xs
      in
      let rec try_at i =
        if i >= n then None
        else
          let c = complement i in
          if List.length c < len && fails c then Some c else try_at (i + 1)
      in
      match try_at 0 with
      | Some c -> go c (max (n - 1) 2)
      | None -> if n >= len then xs else go xs (min len (2 * n))
    end
  in
  if fails xs then go xs 2 else xs
