module Memory = Machine.Memory

(* Lockstep differential oracle. See the interface for the comparison
   protocol and the boundary-granularity soundness argument. *)

type mode = {
  kind : Core.Vm.kind;
  isa : Core.Config.isa;
  chaining : Core.Config.chaining;
  fuse_mem : bool;
}

let chainings = Core.Config.[ No_pred; Sw_pred_no_ras; Sw_pred_ras ]

let all_modes =
  List.concat_map
    (fun chaining ->
      [
        { kind = Core.Vm.Acc; isa = Core.Config.Basic; chaining; fuse_mem = false };
        { kind = Core.Vm.Acc; isa = Core.Config.Modified; chaining; fuse_mem = false };
      ])
    chainings
  @ [
      (* Section 4.5's fused addressing, both ISAs, baseline chaining *)
      { kind = Core.Vm.Acc; isa = Core.Config.Basic;
        chaining = Core.Config.Sw_pred_ras; fuse_mem = true };
      { kind = Core.Vm.Acc; isa = Core.Config.Modified;
        chaining = Core.Config.Sw_pred_ras; fuse_mem = true };
    ]
  @ List.map
      (fun chaining ->
        { kind = Core.Vm.Straight_only; isa = Core.Config.Modified; chaining;
          fuse_mem = false })
      chainings

let mode_name m =
  match m.kind with
  | Core.Vm.Straight_only ->
    Printf.sprintf "straight/%s" (Core.Config.chaining_name m.chaining)
  | Core.Vm.Acc ->
    Printf.sprintf "acc/%s/%s%s"
      (Core.Config.isa_name m.isa)
      (Core.Config.chaining_name m.chaining)
      (if m.fuse_mem then "+fuse" else "")

let mode_of_name s = List.find_opt (fun m -> mode_name m = s) all_modes

type granularity = Boundary | Per_insn

type coverage = {
  retired : int;
  boundaries : int;
  insn_checks : int;
  superblocks : int;
  branch_exits : int;
  pal_exits : int;
  dispatch_misses : int;
  trap_recoveries : int;
  flushes : int;
  dras_hits : int;
  dras_misses : int;
  outcome : string;
  trap : string option;
}

type divergence = {
  d_mode : string;
  where : string;
  retired : int;
  mismatches : Snapshot.mismatch list;
  frag_disasm : string option;
  v_range : (int * int) option;
}

type result = Agree of coverage | Diverge of divergence

exception Diverged of divergence

let trap_kind = function
  | Alpha.Interp.Mem_fault _ -> "mem_fault"
  | Alpha.Interp.Unaligned _ -> "unaligned"
  | Alpha.Interp.Illegal _ -> "illegal"

(* VM-private memory, excluded from guest-state comparison: the in-memory
   dispatch table and the scratch page the straightening backend spills
   borrowed registers to. *)
let is_private =
  let cb = Memory.chunk_bits in
  let scratch = Alpha.Program.vm_scratch lsr cb in
  let t0 = Core.Translate.table_base lsr cb in
  let t1 = (Core.Translate.table_base + Core.Translate.table_bytes - 1) lsr cb in
  fun c -> c = scratch || (c >= t0 && c <= t1)

(* Disassemble the fragment whose translated code contains I-address
   [i_pc], for the divergence report. *)
let fragment_at vm i_pc =
  let dump_frag addr_of get (f : Core.Tcache.frag) =
    let b = Buffer.create 256 in
    Printf.bprintf b
      "fragment #%d @%#x (V %#x, %d V-insns, entered %d times):\n" f.id
      (addr_of f.entry_slot) f.v_start f.v_insns f.exec_count;
    for s = f.entry_slot to f.entry_slot + f.n_slots - 1 do
      Printf.bprintf b "  %5d: %s\n" s (get s)
    done;
    (Buffer.contents b, (f.v_start, f.v_insns))
  in
  let find addr_of frags =
    List.find_opt
      (fun (f : Core.Tcache.frag) ->
        let start = addr_of f.entry_slot in
        i_pc >= start && i_pc < start + f.i_bytes)
      frags
  in
  if i_pc < 0 then None
  else
    match (Core.Vm.acc_ctx vm, Core.Vm.straight_ctx vm) with
    | Some ctx, _ ->
      let addr_of = Core.Tcache.Acc.addr_of ctx.tc in
      find addr_of (Core.Tcache.Acc.fragments ctx.tc)
      |> Option.map
           (dump_frag addr_of (fun s ->
                Accisa.Disasm.to_string (Core.Tcache.Acc.get ctx.tc s)))
    | None, Some ctx ->
      let addr_of = Core.Tcache.Straight.addr_of ctx.tc in
      find addr_of (Core.Tcache.Straight.fragments ctx.tc)
      |> Option.map
           (dump_frag addr_of (fun s ->
                Alpha.Disasm.to_string (Core.Tcache.Straight.get ctx.tc s)))
    | None, None -> None

let run ?(granularity = Boundary) ?(threaded = false) ?(region = false)
    ?(superops = false) ?(flush_every = 0) ?(fuel = 50_000_000)
    ?(hot_threshold = 10) ?(tcache_max_slots = max_int) ?(warm_start = false)
    ?corrupt ~mode prog =
  (* [superops] subsumes [region] (fusion only happens at region promote)
     and [region] subsumes [threaded]: all run sink-less so the VM takes a
     non-instrumented engine. [region] alone pins cfg.superops off so the
     slot-granular tier-2 arm stays covered even though the config default
     is fused. *)
  let region = region || superops in
  let threaded = threaded || region in
  (* per-instruction comparison is unsound mid-fragment for accumulator
     backends (deferred state copies); restrict it to straightened code.
     The threaded-code engine emits no events at all, so under [threaded]
     everything degrades to boundary granularity. *)
  let granularity =
    match mode.kind with
    | Core.Vm.Acc -> Boundary
    | Core.Vm.Straight_only -> if threaded then Boundary else granularity
  in
  let golden = Alpha.Interp.create prog in
  let cfg =
    { Core.Config.default with
      isa = mode.isa; chaining = mode.chaining; fuse_mem = mode.fuse_mem;
      hot_threshold; tcache_max_slots;
      engine = (if region then Core.Config.Region else Core.Config.Threaded);
      superops;
      (* aggressive promotion so oracle-sized programs actually tier up;
         exercises region compile/run/invalidate on nearly every seed *)
      region_threshold = (if region then 4 else Core.Config.default.region_threshold)
    }
  in
  (* Warm start under test: run a throwaway VM of the same configuration
     cold to completion, snapshot its translation cache, push the snapshot
     through the full byte encoding (codec + CRC, exactly what a file sees),
     and build the VM under comparison from that. The oracle then proves a
     snapshot-loaded VM observationally identical to a cold one. *)
  let snapshot =
    if not warm_start then None
    else begin
      let seed = Core.Vm.create ~cfg ~kind:mode.kind prog in
      ignore (Core.Vm.run ~fuel seed : Core.Vm.outcome);
      Some
        (Persist.Snapshot.of_string
           (Persist.Snapshot.to_string (Core.Vm.save_snapshot seed)))
    end
  in
  let vm = Core.Vm.create ~cfg ?snapshot ~kind:mode.kind prog in
  (* dirty tracking from here on: the loaded images are identical, so the
     write sets alone bound where the states can differ before the final
     full-image comparison *)
  Memory.set_dirty_tracking golden.mem true;
  Memory.set_dirty_tracking vm.interp.mem true;
  let mode_str = mode_name mode in
  let retired () =
    vm.interp.icount
    + (match Core.Vm.acc_exec vm with
      | Some ex -> ex.stats.alpha_retired
      | None -> (Option.get (Core.Vm.straight_exec vm)).stats.alpha_retired)
  in
  let boundaries = ref 0 in
  let insn_checks = ref 0 in
  let last_i_pc = ref (-1) in
  (* golden termination reached while advancing (None while running) *)
  let golden_end = ref None in
  let fail ~where mismatches =
    let frag = fragment_at vm !last_i_pc in
    raise
      (Diverged
         {
           d_mode = mode_str;
           where;
           retired = retired ();
           mismatches;
           frag_disasm = Option.map fst frag;
           v_range = Option.map snd frag;
         })
  in
  let golden_running () =
    match !golden_end with None -> true | Some _ -> false
  in
  (* Single-step the reference to the VM's retirement count. *)
  let advance ~where target =
    while golden.icount < target && golden_running () do
      match Alpha.Interp.step golden with
      | Step _ -> ()
      | Halted c -> golden_end := Some (Core.Vm.Exit c)
      | Trapped tr -> golden_end := Some (Core.Vm.Fault tr)
    done;
    if golden.icount < target then
      fail ~where [ Snapshot.Retire { got = target; want = golden.icount } ]
  in
  let check ~where ~mem =
    advance ~where (retired ());
    let ms =
      Snapshot.diff_live ~is_private ~mem ~got:vm.interp ~want:golden ()
    in
    if ms <> [] then fail ~where ms
  in
  let seg_name () =
    match vm.last_seg with
    | Some (Core.Vm.Seg_branch _) -> "branch exit"
    | Some (Core.Vm.Seg_pal _) -> "pal exit"
    | Some Core.Vm.Seg_dispatch_miss -> "dispatch miss"
    | Some Core.Vm.Seg_trap_recovered -> "trap recovery"
    | Some Core.Vm.Seg_fuel -> "fuel"
    | None -> "?"
  in
  let boundary () =
    match vm.last_seg with
    | Some Core.Vm.Seg_fuel ->
      (* the budget can run out mid-fragment, where architected state
         legitimately lags — nothing sound to compare here *)
      ()
    | _ ->
      incr boundaries;
      check
        ~where:(Printf.sprintf "boundary %d (%s)" !boundaries (seg_name ()))
        ~mem:`Dirty;
      (match corrupt with Some f -> f !boundaries vm | None -> ());
      if flush_every > 0 && !boundaries mod flush_every = 0 then
        Core.Vm.flush vm
  in
  let sink (ev : Machine.Ev.t) =
    last_i_pc := ev.pc;
    match granularity with
    | Per_insn when ev.alpha_count > 0 ->
      incr insn_checks;
      check ~where:(Printf.sprintf "insn @%#x" ev.pc) ~mem:`None
    | Per_insn | Boundary -> ()
  in
  try
    (* [threaded] runs sink-less so the VM takes the threaded-code engine:
       the oracle then validates that engine, at the cost of losing the
       fragment-disassembly context in divergence reports *)
    let sink = if threaded then None else Some sink in
    let outcome = Core.Vm.run ?sink ~boundary ~fuel vm in
    let outcome_str, trap =
      match outcome with
      | Core.Vm.Exit c -> (Printf.sprintf "exit:%d" c, None)
      | Core.Vm.Fault tr -> ("trap:" ^ trap_kind tr, Some (trap_kind tr))
      | Core.Vm.Out_of_fuel -> ("fuel", None)
    in
    (match outcome with
    | Core.Vm.Out_of_fuel ->
      (* the VM may have stopped mid-fragment; no final state to compare *)
      ()
    | vm_end ->
      check ~where:"final" ~mem:`Full;
      let golden_outcome =
        match !golden_end with
        | Some o -> o
        | None -> (
          match Alpha.Interp.step golden with
          | Halted c -> Core.Vm.Exit c
          | Trapped tr -> Core.Vm.Fault tr
          | Step _ -> Core.Vm.Out_of_fuel (* still running: mismatch below *))
      in
      if golden_outcome <> vm_end then begin
        let show = function
          | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
          | Core.Vm.Fault tr ->
            Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
          | Core.Vm.Out_of_fuel -> "still running"
        in
        fail ~where:"final outcome"
          [ Snapshot.Outcome { got = show vm_end; want = show golden_outcome } ]
      end);
    let dras_hits, dras_misses =
      match Core.Vm.acc_exec vm with
      | Some ex -> (ex.stats.ret_dras_hits, ex.stats.ret_dras_misses)
      | None ->
        let ex = Option.get (Core.Vm.straight_exec vm) in
        (ex.stats.ret_dras_hits, ex.stats.ret_dras_misses)
    in
    Agree
      {
        retired = retired ();
        boundaries = !boundaries;
        insn_checks = !insn_checks;
        superblocks = vm.superblocks;
        branch_exits = vm.segs.branch_exits;
        pal_exits = vm.segs.pal_exits;
        dispatch_misses = vm.segs.dispatch_misses;
        trap_recoveries = vm.segs.trap_recoveries;
        flushes = vm.segs.flushes;
        dras_hits;
        dras_misses;
        outcome = outcome_str;
        trap;
      }
  with Diverged d -> Diverge d

let pp_divergence fmt d =
  Format.fprintf fmt "DIVERGENCE [%s] at %s (retired=%d)@\n" d.d_mode d.where
    d.retired;
  List.iter
    (fun m -> Format.fprintf fmt "  %a@\n" Snapshot.pp_mismatch m)
    d.mismatches;
  (match d.v_range with
  | Some (v, n) ->
    Format.fprintf fmt "  offending V-range: %#x..%#x (%d V-insns)@\n" v
      (v + (4 * n)) n
  | None -> ());
  match d.frag_disasm with
  | Some s -> Format.fprintf fmt "%s" s
  | None -> Format.fprintf fmt "  (no fragment contains the last I-PC)@\n"
