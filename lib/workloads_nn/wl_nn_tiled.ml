(* Blocked (systolic-style) tiled matmul inference: two chained 18x18
   fixed-point matrix multiplies, each computed tile-by-tile (6x6 blocks
   over i/j/k, the classical cache-blocking schedule a systolic array
   maps to), then requantized and ReLU'd in Q8 like the MLP kernel. The
   output of layer 1 feeds layer 2, and layer 2's output is folded back
   into the next pass's input matrix so every pass computes fresh data.

   Per-layer running checksums are the verified guest output. The hot
   code is a 3-deep blocked loop nest of multiply-accumulates over
   strided rows/columns — dense ALU pressure with a strided (rather than
   pointer-chasing) memory signature. *)

let name = "nn_tiled"

let description =
  "blocked/systolic-style tiled matmul, two chained quantized layers"

let source ~scale =
  Printf.sprintf
    {|
int a[324];
int b[324];
int bb[324];
int cmat[324];
int emat[324];
int rng = 2463534242110081;
int c1 = 0;
int c2 = 0;

int next8() {
  rng ^= rng << 13;
  rng ^= rng >>> 7;
  rng ^= rng << 17;
  return (rng & 255) - 128;
}

int main() {
  int passes = %d;
  int p;
  int i0;
  int j0;
  int k0;
  int i;
  int j;
  int k;
  int ib;
  int acc;
  int v;
  for (i = 0; i < 324; i += 1) { a[i] = next8(); }
  for (i = 0; i < 324; i += 1) { b[i] = next8(); }
  for (i = 0; i < 324; i += 1) { bb[i] = next8(); }
  for (p = 0; p < passes; p += 1) {
    for (i = 0; i < 324; i += 1) { cmat[i] = 0; }
    for (i = 0; i < 324; i += 1) { emat[i] = 0; }
    // layer 1: C = A * B, 6x6x6 tiles
    for (i0 = 0; i0 < 18; i0 += 6) {
      for (j0 = 0; j0 < 18; j0 += 6) {
        for (k0 = 0; k0 < 18; k0 += 6) {
          for (i = i0; i < i0 + 6; i += 1) {
            ib = i * 18;
            for (j = j0; j < j0 + 6; j += 1) {
              acc = cmat[ib + j];
              for (k = k0; k < k0 + 6; k += 1) {
                acc += a[ib + k] * b[k * 18 + j];
              }
              cmat[ib + j] = acc;
            }
          }
        }
      }
    }
    // requantize + ReLU layer 1, fold checksum
    for (i = 0; i < 324; i += 1) {
      v = (cmat[i] + 128) >> 8;
      v = sel(v > 0, v, 0);
      cmat[i] = v;
      c1 = (c1 * 33 + v) & 0xffffff;
    }
    // layer 2: E = C * BB, same schedule
    for (i0 = 0; i0 < 18; i0 += 6) {
      for (j0 = 0; j0 < 18; j0 += 6) {
        for (k0 = 0; k0 < 18; k0 += 6) {
          for (i = i0; i < i0 + 6; i += 1) {
            ib = i * 18;
            for (j = j0; j < j0 + 6; j += 1) {
              acc = emat[ib + j];
              for (k = k0; k < k0 + 6; k += 1) {
                acc += cmat[ib + k] * bb[k * 18 + j];
              }
              emat[ib + j] = acc;
            }
          }
        }
      }
    }
    for (i = 0; i < 324; i += 1) {
      v = (emat[i] + 128) >> 8;
      v = sel(v > 0, v, 0);
      c2 = (c2 * 33 + v) & 0xffffff;
      // feed layer-2 output back as the next pass's input
      a[i] = (v & 255) - 128;
    }
  }
  print c1;
  print c2;
  print rng & 0xffffff;
  return 0;
}
|}
    (min 40 (max 1 scale))
