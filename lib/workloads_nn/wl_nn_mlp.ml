(* Quantized MLP inference: 3 dense layers (24 -> 16 -> 12 -> 8) in Q8
   fixed point. Weights, biases and per-pass inputs come from a
   deterministic xorshift64 PRNG clipped to int8 range; each layer is a
   fixed-point matmul, a rounding requantize (arithmetic shift by the Q8
   scale) and a ReLU (compiled to CMOVNE via [sel]). A running checksum
   per layer is the verified guest output, so the lockstep oracle and
   cross-engine verification cover the kernel like any SPEC analogue.

   The shape is the dense-ALU-strand / strided-memory workload the SPEC
   set barely covers: long multiply-accumulate chains over contiguous
   weight rows, a call per activation, and no data-dependent control
   flow inside the hot loops. *)

let name = "nn_mlp"

let description =
  "quantized 3-layer MLP inference (Q8 matmul + requantize + ReLU)"

let source ~scale =
  Printf.sprintf
    {|
int w1[384];
int w2[192];
int w3[96];
int b1[16];
int b2[12];
int b3[8];
int x[24];
int h1[16];
int h2[12];
int y[8];
int rng = 88172645463325252;
int c1 = 0;
int c2 = 0;
int c3 = 0;

// xorshift64, clipped to int8 range; >>> keeps the shift logical on
// negative 64-bit states
int next8() {
  rng ^= rng << 13;
  rng ^= rng >>> 7;
  rng ^= rng << 17;
  return (rng & 255) - 128;
}

// requantize from Q16 back to Q8 (round to nearest) + ReLU
int rq(int acc) {
  int v = (acc + 128) >> 8;
  return sel(v > 0, v, 0);
}

int main() {
  int passes = %d;
  int p;
  int i;
  int j;
  int acc;
  int base;
  for (i = 0; i < 384; i += 1) { w1[i] = next8(); }
  for (i = 0; i < 192; i += 1) { w2[i] = next8(); }
  for (i = 0; i < 96; i += 1) { w3[i] = next8(); }
  for (i = 0; i < 16; i += 1) { b1[i] = next8() << 4; }
  for (i = 0; i < 12; i += 1) { b2[i] = next8() << 4; }
  for (i = 0; i < 8; i += 1) { b3[i] = next8() << 4; }
  for (p = 0; p < passes; p += 1) {
    for (i = 0; i < 24; i += 1) { x[i] = next8(); }
    for (j = 0; j < 16; j += 1) {
      acc = b1[j];
      base = j * 24;
      for (i = 0; i < 24; i += 1) { acc += w1[base + i] * x[i]; }
      h1[j] = rq(acc);
      c1 = (c1 * 31 + h1[j]) & 0xffffff;
    }
    for (j = 0; j < 12; j += 1) {
      acc = b2[j];
      base = j * 16;
      for (i = 0; i < 16; i += 1) { acc += w2[base + i] * h1[i]; }
      h2[j] = rq(acc);
      c2 = (c2 * 31 + h2[j]) & 0xffffff;
    }
    for (j = 0; j < 8; j += 1) {
      acc = b3[j];
      base = j * 12;
      for (i = 0; i < 12; i += 1) { acc += w3[base + i] * h2[i]; }
      y[j] = rq(acc);
      c3 = (c3 * 31 + y[j]) & 0xffffff;
    }
  }
  print c1;
  print c2;
  print c3;
  print rng & 0xffffff;
  return 0;
}
|}
    (min 2000 (60 * scale))
