(** Trace-driven out-of-order superscalar timing model (Table 1, left
    column): 4-wide fetch/decode/retire, 128-entry ROB with an equally
    large issue window, oldest-first issue over 4 symmetric function units,
    g-share + BTB + RAS front end with 3-cycle redirects, 32KB L1I/L1D and
    a 1MB unified L2.

    Event-ordered: each committed instruction is scheduled greedily in
    program order against bandwidth slots and dependence ready times (which
    realises oldest-first issue without a cycle-by-cycle window scan); the
    fetch stage models per-cycle width, the 3-sequential-basic-block limit,
    taken-branch group breaks, I-cache misses and redirect latencies;
    dispatch stalls when the ROB fills; commit is in order. *)

type params = {
  width : int;
  rob : int;
  depth : int;  (** fetch-to-dispatch stages *)
  redirect : int;
  mul_lat : int;
  max_blocks : int;  (** sequential basic blocks per fetch cycle *)
  icache_size : int;
  icache_line : int;
  mem : Machine.Memhier.cfg;
}

val default_params : params

type t = {
  p : params;
  pred : Pred.t;
  icache : Machine.Cache.t;
  dmem : Machine.Memhier.t;
  reg_ready : int array;
  issue : Slots.t;
  commit : Slots.t;
  rob_ring : int array;
  mutable fetch_cycle : int;
  mutable fetch_insns : int;
  mutable fetch_blocks : int;
  mutable last_line : int;
  mutable next_fetch_min : int;
  mutable prev_open_bb : bool;
  mutable last_commit : int;
  mutable n : int;  (** instructions committed *)
  mutable alpha : int;  (** V-ISA instructions retired *)
  mutable start_cycle : int;
}

val create : ?params:params -> ?use_ras:bool -> unit -> t

val feed : t -> Machine.Ev.t -> unit
(** Charge one committed instruction. *)

val warm : t -> Machine.Ev.t -> unit
(** Functional warming: update caches and branch predictor without
    simulating cycles (see {!Ildp.warm}). *)

val boundary : t -> unit
(** Mode-switch boundary: drain the pipeline (paper Section 4.1: "timing
    simulation starts with an initially empty pipeline"). *)

val cycles : t -> int
val ipc : t -> float
val v_ipc : t -> float
(** V-ISA instructions per cycle — the paper's headline metric. *)

val publish_obs : t -> unit
(** Fold the run's totals (cycles, committed instructions, predictor
    outcomes) into the {!Obs} registry; no-op while telemetry is off. *)
