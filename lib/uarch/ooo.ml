open Machine

(* Trace-driven out-of-order superscalar timing model (Table 1, left
   column): 4-wide fetch/decode/retire, 128-entry ROB with an equally large
   issue window, oldest-first issue over 4 symmetric function units, g-share
   + BTB + RAS front end with 3-cycle redirects, 32KB L1I/L1D and a 1MB
   unified L2.

   The model is event-ordered: each committed instruction is scheduled
   greedily in program order against bandwidth slots and dependence ready
   times, which realises oldest-first issue without a cycle-by-cycle window
   scan. The fetch stage models 4 instructions per cycle across at most 3
   sequential basic blocks, taken-branch group breaks, I-cache misses and
   redirect latencies; dispatch stalls when the ROB is full; commit is
   4-wide and in order. *)

type params = {
  width : int;
  rob : int;
  depth : int; (* fetch-to-dispatch stages *)
  redirect : int;
  mul_lat : int;
  max_blocks : int; (* sequential basic blocks per fetch cycle *)
  icache_size : int;
  icache_line : int;
  mem : Memhier.cfg;
}

let default_params =
  {
    width = 4;
    rob = 128;
    depth = 3;
    redirect = 3;
    mul_lat = 7;
    max_blocks = 3;
    icache_size = 32 * 1024;
    icache_line = 128;
    mem = Memhier.default_cfg;
  }

type t = {
  p : params;
  pred : Pred.t;
  icache : Cache.t;
  dmem : Memhier.t;
  reg_ready : int array;
  issue : Slots.t;
  commit : Slots.t;
  rob_ring : int array; (* commit cycle of instruction (n - rob) *)
  (* fetch state *)
  mutable fetch_cycle : int;
  mutable fetch_insns : int;
  mutable fetch_blocks : int;
  mutable last_line : int;
  mutable next_fetch_min : int;
  mutable prev_open_bb : bool; (* previous event was a not-taken branch *)
  (* commit state *)
  mutable last_commit : int;
  mutable n : int; (* instructions committed *)
  mutable alpha : int; (* V-ISA instructions retired *)
  mutable start_cycle : int;
}

let create ?(params = default_params) ?(use_ras = true) () =
  {
    p = params;
    pred = Pred.create ~use_ras ();
    icache =
      Cache.create ~name:"L1I" ~size:params.icache_size ~line:params.icache_line
        ~ways:1 ~policy:Cache.Lru;
    dmem = Memhier.create params.mem;
    reg_ready = Array.make Ev.token_count 0;
    issue = Slots.create ~width:params.width;
    commit = Slots.create ~width:params.width;
    rob_ring = Array.make params.rob (-1);
    fetch_cycle = 0;
    fetch_insns = 0;
    fetch_blocks = 0;
    last_line = -1;
    next_fetch_min = 0;
    prev_open_bb = false;
    last_commit = 0;
    n = 0;
    alpha = 0;
    start_cycle = 0;
  }

let new_fetch_group t cycle =
  t.fetch_cycle <- cycle;
  t.fetch_insns <- 0;
  t.fetch_blocks <- 0

let fetch_line t pc =
  let line = pc / t.p.icache_line in
  if line <> t.last_line then begin
    t.last_line <- line;
    if not (Cache.access t.icache pc) then begin
      let penalty =
        if Cache.access t.dmem.Memhier.l2 pc then t.p.mem.l2_lat
        else t.p.mem.l2_lat + t.p.mem.mem_lat
      in
      new_fetch_group t (t.fetch_cycle + penalty)
    end
  end

(* Feed one committed instruction. *)
let feed t (ev : Ev.t) =
  (* ---- fetch ---- *)
  if t.next_fetch_min > t.fetch_cycle then new_fetch_group t t.next_fetch_min;
  fetch_line t ev.pc;
  if t.prev_open_bb then begin
    t.fetch_blocks <- t.fetch_blocks + 1;
    if t.fetch_blocks >= t.p.max_blocks then new_fetch_group t (t.fetch_cycle + 1)
  end;
  t.prev_open_bb <- false;
  if t.fetch_insns >= t.p.width then new_fetch_group t (t.fetch_cycle + 1);
  let f = t.fetch_cycle in
  t.fetch_insns <- t.fetch_insns + 1;
  (* ---- dispatch (ROB capacity) ---- *)
  let rob_slot = t.n mod t.p.rob in
  let d = max (f + t.p.depth) (t.rob_ring.(rob_slot) + 1) in
  (* ---- issue ---- *)
  let ready r acc = if r >= 0 then max acc t.reg_ready.(r) else acc in
  let r = ready ev.src1 (ready ev.src2 (ready ev.src3 (d + 1))) in
  let issue = Slots.book t.issue r in
  let lat =
    match ev.cls with
    | Alu | Cond_br | Jump | Call | Ret -> 1
    | Mul -> t.p.mul_lat
    | Load -> Memhier.load t.dmem ~pe:0 ev.ea
    | Store -> Memhier.store t.dmem ev.ea
  in
  let complete = issue + lat in
  if ev.dst >= 0 then t.reg_ready.(ev.dst) <- complete;
  if ev.dst2 >= 0 then t.reg_ready.(ev.dst2) <- complete;
  (* ---- commit (in order, width-limited) ---- *)
  let c = Slots.book t.commit (max (complete + 1) t.last_commit) in
  t.last_commit <- c;
  t.rob_ring.(rob_slot) <- c;
  t.n <- t.n + 1;
  t.alpha <- t.alpha + ev.alpha_count;
  (* ---- control outcome drives later fetch ---- *)
  (match Pred.classify t.pred ev with
  | `Seq -> if ev.cls = Cond_br then t.prev_open_bb <- true
  | `Taken_ok -> new_fetch_group t (t.fetch_cycle + 1)
  | `Misfetch -> t.next_fetch_min <- max t.next_fetch_min (f + t.p.redirect)
  | `Mispredict -> t.next_fetch_min <- max t.next_fetch_min (complete + t.p.redirect))

(* Functional warming (SMARTS-style): keep the long-lived history state —
   caches, branch predictor — fed during a sampling controller's fast
   window while the cycle simulation is skipped. See {!Ildp.warm}. *)
let warm t (ev : Ev.t) =
  let line = ev.pc / t.p.icache_line in
  if line <> t.last_line then begin
    t.last_line <- line;
    if not (Cache.access t.icache ev.pc) then
      ignore (Cache.access t.dmem.Memhier.l2 ev.pc : bool)
  end;
  (match ev.cls with
  | Load -> ignore (Memhier.load t.dmem ~pe:0 ev.ea : int)
  | Store -> ignore (Memhier.store t.dmem ev.ea : int)
  | Alu | Cond_br | Jump | Call | Ret | Mul -> ());
  ignore (Pred.classify t.pred ev)

(* Telemetry: drain events are counted live (they are segment-rate), the
   cumulative totals are folded in once per run via [publish_obs]. *)
let c_boundaries = Obs.counter "uarch.ooo.boundaries"
let c_cycles = Obs.counter "uarch.ooo.cycles"
let c_insns = Obs.counter "uarch.ooo.insns"
let c_alpha = Obs.counter "uarch.ooo.alpha"
let c_mispredicts = Obs.counter "uarch.ooo.mispredicts"
let c_misfetches = Obs.counter "uarch.ooo.misfetches"

(* Mode-switch boundary: the pipeline drains and restarts empty. *)
let boundary t =
  Obs.bump c_boundaries 1;
  t.next_fetch_min <- max t.next_fetch_min t.last_commit;
  t.prev_open_bb <- false

let cycles t = max 1 (t.last_commit - t.start_cycle)

let ipc t = float_of_int t.n /. float_of_int (cycles t)

(* V-ISA instructions per cycle — the paper's headline metric. *)
let v_ipc t = float_of_int t.alpha /. float_of_int (cycles t)

(* Fold this model's run totals into the telemetry registry (one call per
   finished simulation; the harness runners own that call). *)
let publish_obs t =
  if Obs.on () then begin
    Obs.bump c_cycles (cycles t);
    Obs.bump c_insns t.n;
    Obs.bump c_alpha t.alpha;
    Obs.bump c_mispredicts t.pred.Pred.mispredicts;
    Obs.bump c_misfetches t.pred.Pred.misfetches
  end
