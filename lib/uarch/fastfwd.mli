(** Fast-forward timing tier: static fragment cycle annotation plus a
    SMARTS-style interval-sampling controller.

    The detailed models ({!Ooo}, {!Ildp}) charge every committed
    instruction through full cache/predictor/scheduling simulation. This
    module offers two cheaper operating points:

    - {!annotate} prices a fragment's straight-line event sequence once,
      at translation time, under both models; the execution engines then
      charge those static per-slot costs in bulk, giving a cycle estimate
      at threaded/region speed with no event stream at all;
    - the sampling controller wraps a live model as a drop-in
      [feed]/[boundary] sink but forwards only a warm-up + detail window
      out of every interval, back-charging the skipped remainder at the
      detail window's measured cycles-per-instruction rate. *)

val per_event_costs :
  feed:(Machine.Ev.t -> unit) ->
  boundary:(unit -> unit) ->
  last_commit:(unit -> int) ->
  Machine.Ev.t array ->
  int array
(** Per-event commit-horizon increments of a model fed the sequence twice:
    the first pass warms caches and predictors, [boundary] drains, and the
    second pass records each event's delta of [last_commit]. Deltas are
    non-negative and sum to the warmed steady-state cost of the sequence. *)

val annotate :
  ?ooo_params:Ooo.params ->
  ?ildp_params:Ildp.params ->
  Machine.Ev.t array ->
  int array * int array
(** [(ooo_costs, ildp_costs)] for one fragment's synthesized straight-line
    events, each from a fresh model instance — deterministic in the event
    array alone. *)

(** {2 Interval-sampling controller} *)

type t

val default_interval : int
val default_warmup : int
val default_detail : int

val create :
  ?interval:int ->
  ?warmup:int ->
  ?detail:int ->
  ?warm:(Machine.Ev.t -> unit) ->
  feed:(Machine.Ev.t -> unit) ->
  boundary:(unit -> unit) ->
  cycles:(unit -> int) ->
  unit ->
  t
(** Wrap a detailed model's sink. Each [interval] committed instructions
    open with [warmup] instructions fed to the model purely to reheat its
    pipeline-timing state (their measured cycles are discarded — the
    reference run never pays the reheat burst), then [detail] instructions
    fed, measured and calibrated, then a fast window that skips [feed] and
    calls [warm] instead — the model's functional-warming hook (e.g.
    {!Ildp.warm}), which keeps caches and predictors hot at a fraction of
    the cost; omitting [warm] leaves fast-window state stale and degrades
    accuracy on memory-bound code. [interval = 0] disables sampling: every
    instruction is fed and {!cycles} equals the wrapped model's count
    exactly. Raises [Invalid_argument] if the windows are negative or do
    not leave a fast window. *)

val feed : t -> Machine.Ev.t -> unit

val boundary : t -> unit
(** Forwards the drain to the wrapped model and cuts short any fast
    window in flight, so instructions after a mode switch (interpreter
    re-entry, warm start) are simulated in full fidelity. *)

val cycles : t -> int
(** Cycles measured in detail windows plus the unmeasured (warm-up and
    fast-window) share extrapolated at the detail windows' measured
    rate. *)

val ipc : t -> float
val v_ipc : t -> float

val skip_ratio : t -> float
(** Fraction of committed instructions that skipped the detailed model. *)

val publish_obs : t -> unit
(** Fold the run's totals into the {!Obs} registry under
    [uarch.fastfwd.*]; no-op while telemetry is off. *)
