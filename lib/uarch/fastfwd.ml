open Machine

(* Fast-forward timing tier: static fragment cycle annotation plus an
   interval-sampling controller (cf. "Cycle Accurate Binary Translation for
   Simulation Acceleration" and SMARTS-style systematic sampling).

   Two independent mechanisms live here:

   - {!annotate} computes, at translation time, the per-slot static cycle
     cost of a fragment under both detailed models (Ooo and Ildp). The
     execution engines charge these costs in bulk exactly where they charge
     V-ISA retirement, which yields a cycle estimate for sink-less runs at
     threaded/region speed — no events, no model feed;
   - {!create} wraps a detailed model's [feed]/[boundary]/[cycles] as a
     sampling sink: each interval opens with a warm-up window that feeds
     the model to reheat its stale state, then a detail window whose
     measured cycle deltas are charged and calibrated, then a fast window
     that skips the model feed entirely; warm-up and fast instructions are
     back-charged at the detail windows' measured rate. With
     [interval = 0] every instruction is a detail instruction, so the
     controller's total equals the wrapped model's cycle count exactly —
     the sampling-off exactness invariant the bench gate asserts. *)

(* ---------- static per-slot cycle annotation ---------- *)

(* Per-event cost under one model: feed the straight-line event sequence
   twice through a fresh model. The first pass warms the I-cache, the
   predictors and the dependence state; the drain boundary then aligns the
   fetch front to the commit horizon, and the second pass records each
   event's increment of the in-order commit horizon. The increments are
   non-negative (commit is in order) and telescope to the warmed total, so
   bulk-charging a fragment's slots reproduces the per-instruction model's
   steady-state cost on straight-line code. Branch events are synthesized
   not-taken and loads with a constant address, so the annotation is the
   warmed, well-predicted cost; cold misses, mispredicts and inter-fragment
   effects are dynamic corrections, not static ones. *)
let per_event_costs ~feed ~boundary ~last_commit (evs : Ev.t array) =
  Array.iter feed evs;
  boundary ();
  let costs = Array.make (Array.length evs) 0 in
  let prev = ref (last_commit ()) in
  Array.iteri
    (fun i ev ->
      feed ev;
      let c = last_commit () in
      costs.(i) <- c - !prev;
      prev := c)
    evs;
  costs

(* Annotate one fragment's synthesized straight-line event sequence with
   its static cycle cost under both models: (ooo costs, ildp costs).
   Deterministic in the event array alone, so every engine sharing a
   translation cache sees identical annotations. *)
let annotate ?ooo_params ?ildp_params (evs : Ev.t array) =
  let ooo = Ooo.create ?params:ooo_params () in
  let ooo_costs =
    per_event_costs ~feed:(Ooo.feed ooo)
      ~boundary:(fun () -> Ooo.boundary ooo)
      ~last_commit:(fun () -> ooo.Ooo.last_commit)
      evs
  in
  let ildp = Ildp.create ?params:ildp_params () in
  let ildp_costs =
    per_event_costs ~feed:(Ildp.feed ildp)
      ~boundary:(fun () -> Ildp.boundary ildp)
      ~last_commit:(fun () -> ildp.Ildp.last_commit)
      evs
  in
  (ooo_costs, ildp_costs)

(* ---------- interval-sampling controller ---------- *)

type t = {
  interval : int; (* committed instructions per sampling interval; 0 =
                     every instruction is detailed (sampling off) *)
  warmup : int; (* interval prefix fed to the model but excluded from the
                   fast-window calibration (stale-state reheat) *)
  detail : int; (* calibration window after warm-up *)
  model_feed : Ev.t -> unit;
  model_warm : Ev.t -> unit; (* functional warming for fast-window insns *)
  model_boundary : unit -> unit;
  model_cycles : unit -> int;
  mutable pos : int; (* position inside the current interval *)
  mutable last_model_cycles : int;
  mutable det_insns : int;
  mutable det_cycles : int;
  mutable warm_insns : int;
  mutable fast_insns : int;
  mutable n : int; (* instructions seen (fed or skipped) *)
  mutable alpha : int; (* V-ISA instructions retired *)
}

let default_interval = 3_000
let default_warmup = 150
let default_detail = 300

let create ?(interval = default_interval) ?(warmup = default_warmup)
    ?(detail = default_detail) ?(warm = fun (_ : Ev.t) -> ()) ~feed ~boundary
    ~cycles () =
  if interval < 0 || warmup < 0 || detail <= 0 then
    invalid_arg "Fastfwd.create: negative window";
  if interval > 0 && warmup + detail >= interval then
    invalid_arg "Fastfwd.create: warmup + detail must leave a fast window";
  {
    interval;
    warmup;
    detail;
    model_feed = feed;
    model_warm = warm;
    model_boundary = boundary;
    model_cycles = cycles;
    pos = 0;
    last_model_cycles = cycles ();
    det_insns = 0;
    det_cycles = 0;
    warm_insns = 0;
    fast_insns = 0;
    n = 0;
    alpha = 0;
  }

(* Feed one committed instruction. Warm-up and detail windows both forward
   to the model; only detail deltas are charged and calibrated. Warm-up
   deltas are *discarded*: they contain the model's stale-state reheat (the
   mispredict and miss burst after a skipped window) which the reference
   full-fidelity run never pays, so charging them would bias the estimate
   high — warm-up instructions are instead re-estimated at the detail rate,
   like the fast window. The fast window skips the model feed entirely —
   the expensive part: cache simulation, predictor updates, per-PE
   scheduling — and only counts. *)
let feed t (ev : Ev.t) =
  t.n <- t.n + 1;
  t.alpha <- t.alpha + ev.alpha_count;
  if t.interval = 0 then t.model_feed ev
  else begin
    let p = t.pos in
    if p < t.warmup + t.detail then begin
      t.model_feed ev;
      let c = t.model_cycles () in
      let dc = c - t.last_model_cycles in
      t.last_model_cycles <- c;
      if p >= t.warmup then begin
        t.det_insns <- t.det_insns + 1;
        t.det_cycles <- t.det_cycles + dc
      end
      else t.warm_insns <- t.warm_insns + 1
    end
    else begin
      t.model_warm ev;
      t.fast_insns <- t.fast_insns + 1
    end;
    t.pos <- (if p + 1 >= t.interval then 0 else p + 1)
  end

(* Mode-switch boundary (interpreter re-entry, snapshot warm start): the
   wrapped model drains, and a fast window in flight is cut short so the
   instructions that follow the switch are simulated in full fidelity —
   re-entry segments are exactly where the steady-state calibration is
   least trustworthy. *)
let boundary t =
  t.model_boundary ();
  if t.interval > 0 then begin
    t.pos <- 0;
    t.last_model_cycles <- t.model_cycles ()
  end

(* Cycles the unmeasured instructions (fast window + warm-up) are estimated
   to have cost, at the detail windows' measured rate. Before any detail
   window completes there is nothing to extrapolate from. *)
let fast_est t =
  let unmeasured = t.fast_insns + t.warm_insns in
  if unmeasured = 0 || t.det_insns = 0 then 0
  else
    int_of_float
      (Float.round
         (float_of_int unmeasured
         *. (float_of_int t.det_cycles /. float_of_int t.det_insns)))

let cycles t =
  if t.interval = 0 then max 1 (t.model_cycles ())
  else max 1 (t.det_cycles + fast_est t)

let ipc t = float_of_int t.n /. float_of_int (cycles t)
let v_ipc t = float_of_int t.alpha /. float_of_int (cycles t)

(* Fraction of committed instructions that skipped the detailed model. *)
let skip_ratio t =
  if t.n = 0 then 0.0 else float_of_int t.fast_insns /. float_of_int t.n

(* Telemetry: totals folded in once per run, mirroring the models. *)
let c_insns = Obs.counter "uarch.fastfwd.insns"
let c_fast_insns = Obs.counter "uarch.fastfwd.fast_insns"
let c_det_insns = Obs.counter "uarch.fastfwd.detail_insns"
let c_cycles = Obs.counter "uarch.fastfwd.cycles"

let publish_obs t =
  if Obs.on () then begin
    Obs.bump c_insns t.n;
    Obs.bump c_fast_insns t.fast_insns;
    Obs.bump c_det_insns t.det_insns;
    Obs.bump c_cycles (cycles t)
  end
