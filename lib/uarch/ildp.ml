open Machine

(* Trace-driven ILDP distributed-microarchitecture timing model (Table 1,
   right column, and Section 1.1):

   - 4-wide fetch/decode front end shared in structure with the superscalar
     model (g-share, BTB, dual-address-RAS outcomes, I-cache, 3-cycle
     redirects);
   - instructions are steered by accumulator number to one of 4/6/8
     processing elements; a strand-starting instruction picks the
     least-loaded PE; accumulator-less instructions likewise;
   - each PE issues at most one instruction per cycle, in order, from the
     head of its FIFO; accumulator values are PE-local, while GPR values
     produced on another PE incur the global communication latency;
   - the L1 D-cache is replicated per PE (stores broadcast);
   - a 128-entry ROB commits up to 4 instructions per cycle in order.

   Modified-ISA architected-file updates ([lazy_dst2] on events) drain off
   the critical path: a consumer reading one pays the communication latency
   on top of completion. *)

type params = {
  n_pe : int;
  comm : int; (* inter-PE global communication latency, cycles *)
  fifo_depth : int;
  width : int; (* fetch/decode/retire bandwidth *)
  rob : int;
  depth : int;
  redirect : int;
  mul_lat : int;
  max_blocks : int;
  icache_size : int;
  icache_line : int;
  mem : Memhier.cfg; (* per-PE replicated L1 + shared L2 *)
}

let default_params =
  {
    n_pe = 8;
    comm = 0;
    fifo_depth = 16;
    width = 4;
    rob = 128;
    depth = 3;
    redirect = 3;
    mul_lat = 7;
    max_blocks = 3;
    icache_size = 32 * 1024;
    icache_line = 128;
    mem = Memhier.default_cfg;
  }

type t = {
  p : params;
  pred : Pred.t;
  icache : Cache.t;
  dmem : Memhier.t;
  reg_ready : int array;
  reg_pe : int array; (* PE that produced each register token *)
  reg_lazy : bool array; (* value drains lazily (architected-file update) *)
  pe_last_issue : int array;
  pe_fifo : int array array; (* per-PE ring of issue cycles *)
  pe_count : int array; (* instructions ever steered to this PE *)
  pe_of_acc : int array;
  commit : Slots.t;
  rob_ring : int array;
  mutable fetch_cycle : int;
  mutable fetch_insns : int;
  mutable fetch_blocks : int;
  mutable last_line : int;
  mutable next_fetch_min : int;
  mutable prev_open_bb : bool;
  mutable last_commit : int;
  mutable n : int;
  mutable alpha : int;
  mutable comm_stalls : int; (* instructions delayed by remote operands *)
  mutable comm_cycles : int; (* total cycles of such delay *)
}

let create ?(params = default_params) ?(use_ras = true) () =
  {
    p = params;
    pred = Pred.create ~use_ras ();
    icache =
      Cache.create ~name:"L1I" ~size:params.icache_size ~line:params.icache_line
        ~ways:1 ~policy:Cache.Lru;
    dmem = Memhier.create ~replicas:params.n_pe params.mem;
    reg_ready = Array.make Ev.token_count 0;
    reg_pe = Array.make Ev.token_count 0;
    reg_lazy = Array.make Ev.token_count false;
    pe_last_issue = Array.make params.n_pe 0;
    pe_fifo = Array.init params.n_pe (fun _ -> Array.make params.fifo_depth (-1));
    pe_count = Array.make params.n_pe 0;
    pe_of_acc = Array.make 8 0;
    commit = Slots.create ~width:params.width;
    rob_ring = Array.make params.rob (-1);
    fetch_cycle = 0;
    fetch_insns = 0;
    fetch_blocks = 0;
    last_line = -1;
    next_fetch_min = 0;
    prev_open_bb = false;
    last_commit = 0;
    n = 0;
    alpha = 0;
    comm_stalls = 0;
    comm_cycles = 0;
  }

let new_fetch_group t cycle =
  t.fetch_cycle <- cycle;
  t.fetch_insns <- 0;
  t.fetch_blocks <- 0

let fetch_line t pc =
  let line = pc / t.p.icache_line in
  if line <> t.last_line then begin
    t.last_line <- line;
    if not (Cache.access t.icache pc) then begin
      let penalty =
        if Cache.access t.dmem.Memhier.l2 pc then t.p.mem.l2_lat
        else t.p.mem.l2_lat + t.p.mem.mem_lat
      in
      new_fetch_group t (t.fetch_cycle + penalty)
    end
  end

(* Least-loaded PE: fewest in-flight by last-issue horizon, with steered
   counts as tie-break. *)
let least_loaded t =
  let best = ref 0 in
  for pe = 1 to t.p.n_pe - 1 do
    if
      t.pe_last_issue.(pe) < t.pe_last_issue.(!best)
      || (t.pe_last_issue.(pe) = t.pe_last_issue.(!best)
          && t.pe_count.(pe) < t.pe_count.(!best))
    then best := pe
  done;
  !best

(* Steering for a strand-starting instruction: accumulator renaming prefers
   the PE that produced a GPR source value (the strand's input stays local,
   which is what lets the machine tolerate global wire latency), unless that
   PE is clearly more loaded than the best alternative. *)
let pick_pe t (ev : Ev.t) =
  let ll = least_loaded t in
  if t.p.comm = 0 then ll
  else begin
    let affinity tok =
      if tok >= 0 && tok < 64 then Some t.reg_pe.(tok) else None
    in
    match
      (match affinity ev.src1 with Some p -> Some p | None -> affinity ev.src2)
    with
    | Some p when t.pe_last_issue.(p) <= t.pe_last_issue.(ll) + (2 * t.p.comm) -> p
    | _ -> ll
  end

let feed t (ev : Ev.t) =
  (* ---- fetch ---- *)
  if t.next_fetch_min > t.fetch_cycle then new_fetch_group t t.next_fetch_min;
  fetch_line t ev.pc;
  if t.prev_open_bb then begin
    t.fetch_blocks <- t.fetch_blocks + 1;
    if t.fetch_blocks >= t.p.max_blocks then new_fetch_group t (t.fetch_cycle + 1)
  end;
  t.prev_open_bb <- false;
  if t.fetch_insns >= t.p.width then new_fetch_group t (t.fetch_cycle + 1);
  let f = t.fetch_cycle in
  t.fetch_insns <- t.fetch_insns + 1;
  (* ---- steer ---- *)
  let pe =
    if ev.acc < 0 then least_loaded t
    else if ev.strand_start then begin
      let pe = pick_pe t ev in
      t.pe_of_acc.(ev.acc) <- pe;
      pe
    end
    else t.pe_of_acc.(ev.acc)
  in
  t.pe_count.(pe) <- t.pe_count.(pe) + 1;
  (* ---- dispatch: ROB and FIFO capacity ---- *)
  let rob_slot = t.n mod t.p.rob in
  let fifo = t.pe_fifo.(pe) in
  let fifo_slot = t.pe_count.(pe) mod t.p.fifo_depth in
  let d =
    max (f + t.p.depth) (max (t.rob_ring.(rob_slot) + 1) (fifo.(fifo_slot) + 1))
  in
  (* ---- operand readiness (communication latency for remote GPRs) ---- *)
  let ready tok acc =
    if tok < 0 then acc
    else begin
      let base = t.reg_ready.(tok) in
      let remote = t.reg_pe.(tok) <> pe || t.reg_lazy.(tok) in
      max acc (if remote then base + t.p.comm else base)
    end
  in
  let ready_local tok acc =
    if tok < 0 then acc else max acc t.reg_ready.(tok)
  in
  let r = ready ev.src1 (ready ev.src2 (ready ev.src3 (d + 1))) in
  let r0 = ready_local ev.src1 (ready_local ev.src2 (ready_local ev.src3 (d + 1))) in
  (* ---- in-order single-issue per PE ---- *)
  let issue = max r (t.pe_last_issue.(pe) + 1) in
  let issue0 = max r0 (t.pe_last_issue.(pe) + 1) in
  if issue > issue0 then begin
    t.comm_stalls <- t.comm_stalls + 1;
    t.comm_cycles <- t.comm_cycles + (issue - issue0)
  end;
  t.pe_last_issue.(pe) <- issue;
  fifo.(fifo_slot) <- issue;
  let lat =
    match ev.cls with
    | Alu | Cond_br | Jump | Call | Ret -> 1
    | Mul -> t.p.mul_lat
    | Load -> Memhier.load t.dmem ~pe ev.ea
    | Store -> Memhier.store t.dmem ev.ea
  in
  let complete = issue + lat in
  if ev.dst >= 0 then begin
    t.reg_ready.(ev.dst) <- complete;
    t.reg_pe.(ev.dst) <- pe;
    t.reg_lazy.(ev.dst) <- false
  end;
  if ev.dst2 >= 0 then begin
    t.reg_ready.(ev.dst2) <- complete;
    t.reg_pe.(ev.dst2) <- pe;
    t.reg_lazy.(ev.dst2) <- ev.lazy_dst2
  end;
  (* ---- commit ---- *)
  let c = Slots.book t.commit (max (complete + 1) t.last_commit) in
  t.last_commit <- c;
  t.rob_ring.(rob_slot) <- c;
  t.n <- t.n + 1;
  t.alpha <- t.alpha + ev.alpha_count;
  (* ---- control ---- *)
  match Pred.classify t.pred ev with
  | `Seq -> if ev.cls = Cond_br then t.prev_open_bb <- true
  | `Taken_ok -> new_fetch_group t (t.fetch_cycle + 1)
  | `Misfetch -> t.next_fetch_min <- max t.next_fetch_min (f + t.p.redirect)
  | `Mispredict -> t.next_fetch_min <- max t.next_fetch_min (complete + t.p.redirect)

(* Functional warming (SMARTS-style): a sampling controller's fast window
   skips the cycle simulation but must keep the long-lived history state —
   I-cache, D-cache hierarchy, branch predictor, accumulator→PE steering
   map — seeing every instruction, or the next detail window measures cold
   state the reference run never has. No cycle counter moves here; only
   structures whose contents persist across thousands of instructions. *)
let warm t (ev : Ev.t) =
  let line = ev.pc / t.p.icache_line in
  if line <> t.last_line then begin
    t.last_line <- line;
    if not (Cache.access t.icache ev.pc) then
      ignore (Cache.access t.dmem.Memhier.l2 ev.pc : bool)
  end;
  let pe =
    if ev.acc < 0 then 0
    else if ev.strand_start then begin
      let pe = pick_pe t ev in
      t.pe_of_acc.(ev.acc) <- pe;
      pe
    end
    else t.pe_of_acc.(ev.acc)
  in
  (match ev.cls with
  | Load -> ignore (Memhier.load t.dmem ~pe ev.ea : int)
  | Store -> ignore (Memhier.store t.dmem ev.ea : int)
  | Alu | Cond_br | Jump | Call | Ret | Mul -> ());
  ignore (Pred.classify t.pred ev)

(* Telemetry (cf. Ooo): drains live, totals folded in via [publish_obs]. *)
let c_boundaries = Obs.counter "uarch.ildp.boundaries"
let c_cycles = Obs.counter "uarch.ildp.cycles"
let c_insns = Obs.counter "uarch.ildp.insns"
let c_alpha = Obs.counter "uarch.ildp.alpha"
let c_mispredicts = Obs.counter "uarch.ildp.mispredicts"
let c_misfetches = Obs.counter "uarch.ildp.misfetches"
let c_comm_stalls = Obs.counter "uarch.ildp.comm_stalls"
let c_comm_cycles = Obs.counter "uarch.ildp.comm_cycles"

let boundary t =
  Obs.bump c_boundaries 1;
  t.next_fetch_min <- max t.next_fetch_min t.last_commit;
  t.prev_open_bb <- false

let cycles t = max 1 t.last_commit

(* Native I-ISA instructions per cycle (last bar of Fig. 8). *)
let ipc t = float_of_int t.n /. float_of_int (cycles t)

(* V-ISA instructions per cycle — the paper's headline metric. *)
let v_ipc t = float_of_int t.alpha /. float_of_int (cycles t)

(* Fold this model's run totals into the telemetry registry (one call per
   finished simulation; the harness runners own that call). *)
let publish_obs t =
  if Obs.on () then begin
    Obs.bump c_cycles (cycles t);
    Obs.bump c_insns t.n;
    Obs.bump c_alpha t.alpha;
    Obs.bump c_mispredicts t.pred.Pred.mispredicts;
    Obs.bump c_misfetches t.pred.Pred.misfetches;
    Obs.bump c_comm_stalls t.comm_stalls;
    Obs.bump c_comm_cycles t.comm_cycles
  end
