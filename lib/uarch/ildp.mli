(** Trace-driven ILDP distributed-microarchitecture timing model (Table 1,
    right column, and Section 1.1): 4-wide front end; instructions steered
    by accumulator number to one of 4/6/8 processing elements (a
    strand-starting instruction prefers the PE that produced its GPR input
    when communication latency is non-zero, else the least-loaded PE); each
    PE issues at most one instruction per cycle in order from its FIFO;
    accumulator values are PE-local while GPR values produced on another PE
    pay the global communication latency; replicated per-PE L1 D-cache;
    128-entry ROB committing 4 per cycle in order.

    Modified-ISA architected-file updates ([lazy_dst2] on events) drain off
    the critical path: a consumer reading one pays the communication
    latency on top of completion. *)

type params = {
  n_pe : int;
  comm : int;  (** inter-PE global communication latency, cycles *)
  fifo_depth : int;
  width : int;
  rob : int;
  depth : int;
  redirect : int;
  mul_lat : int;
  max_blocks : int;
  icache_size : int;
  icache_line : int;
  mem : Machine.Memhier.cfg;  (** per-PE replicated L1 + shared L2 *)
}

val default_params : params
(** 8 PEs, 0-cycle communication, 32KB L1 (the Fig. 8 configuration). *)

type t = {
  p : params;
  pred : Pred.t;
  icache : Machine.Cache.t;
  dmem : Machine.Memhier.t;
  reg_ready : int array;
  reg_pe : int array;  (** PE that produced each register token *)
  reg_lazy : bool array;  (** value drains lazily (architected update) *)
  pe_last_issue : int array;
  pe_fifo : int array array;
  pe_count : int array;
  pe_of_acc : int array;
  commit : Slots.t;
  rob_ring : int array;
  mutable fetch_cycle : int;
  mutable fetch_insns : int;
  mutable fetch_blocks : int;
  mutable last_line : int;
  mutable next_fetch_min : int;
  mutable prev_open_bb : bool;
  mutable last_commit : int;
  mutable n : int;
  mutable alpha : int;
  mutable comm_stalls : int;  (** instructions delayed by remote operands *)
  mutable comm_cycles : int;  (** total cycles of such delay *)
}

val create : ?params:params -> ?use_ras:bool -> unit -> t
val feed : t -> Machine.Ev.t -> unit

val warm : t -> Machine.Ev.t -> unit
(** Functional warming: update the long-lived history state (caches,
    branch predictor, steering map) without simulating cycles. A sampling
    controller calls this for fast-window instructions so detail windows
    resume against warm state. *)

val boundary : t -> unit
val cycles : t -> int

val ipc : t -> float
(** Native I-ISA instructions per cycle (last bar of Fig. 8). *)

val v_ipc : t -> float
(** V-ISA instructions per cycle — the paper's headline metric. *)

val publish_obs : t -> unit
(** Fold the run's totals (cycles, committed instructions, predictor and
    communication outcomes) into the {!Obs} registry; no-op while
    telemetry is off. *)
