module Rng = Machine.Rng
module Gen = Oracle.Gen

(* Adversarial generators aimed at the translator. See the interface. *)

type arm = Flush_storm | Megamorphic | Call_tower

let all_arms = [ Flush_storm; Megamorphic; Call_tower ]

let arm_name = function
  | Flush_storm -> "flush-storm"
  | Megamorphic -> "megamorphic"
  | Call_tower -> "call-tower"

(* Phase-switching storm: the selector [(t8 >> 4) & 7] holds each of the
   eight phases for 16 consecutive iterations, long enough to get the
   phase's trace translated (and, at a low region threshold, promoted)
   before control migrates to the next phase and grows the cache again.
   Phases are fat (8–12 ALU lines) so each one costs real slots. *)
let flush_storm rng k : Gen.block =
  let n_phases = 8 in
  let phase i = Printf.sprintf "stf%dp%d" k i in
  let join = Printf.sprintf "stf%dj" k in
  let tab = Printf.sprintf "stf%dt" k in
  let text =
    [ "srl t8, 4, t10";
      Printf.sprintf "and t10, %d, t10" (n_phases - 1);
      Printf.sprintf "la t9, %s" tab;
      "s8addq t10, t9, t10";
      "ldq t10, 0(t10)";
      "jmp (t10)" ]
    @ List.concat
        (List.init n_phases (fun i ->
             [ phase i ^ ":" ]
             @ Gen.alu_lines rng (8 + Rng.int rng 5)
             @ [ Printf.sprintf "br %s" join ]))
    @ [ join ^ ":" ]
  in
  let data =
    [ "  .align 8"; tab ^ ":" ]
    @ List.init n_phases (fun i -> Printf.sprintf "  .quad %s" (phase i))
  in
  { Gen.text; procs = []; data }

(* Megamorphic indirect jump: the target cycles through all 16 cases, one
   per iteration, so whichever single target the translator predicted is
   wrong 15 times out of 16 and the transfer falls through to dispatch. *)
let megamorphic rng k : Gen.block =
  let n_cases = 16 in
  let case i = Printf.sprintf "stm%dc%d" k i in
  let join = Printf.sprintf "stm%dj" k in
  let tab = Printf.sprintf "stm%dt" k in
  let text =
    [ Printf.sprintf "and t8, %d, t10" (n_cases - 1);
      Printf.sprintf "la t9, %s" tab;
      "s8addq t10, t9, t10";
      "ldq t10, 0(t10)";
      "jmp (t10)" ]
    @ List.concat
        (List.init n_cases (fun i ->
             [ case i ^ ":" ]
             @ Gen.alu_lines rng (1 + Rng.int rng 2)
             @ [ Printf.sprintf "br %s" join ]))
    @ [ join ^ ":" ]
  in
  let data =
    [ "  .align 8"; tab ^ ":" ]
    @ List.init n_cases (fun i -> Printf.sprintf "  .quad %s" (case i))
  in
  { Gen.text; procs = []; data }

(* Call tower: a straight chain of calls 16–24 deep. The dual RAS holds 8
   entries, so by the bottom of the tower the outer return addresses have
   all been evicted — every iteration the 8 innermost returns hit and the
   rest miss, verifying through the dispatch path. *)
let call_tower rng k : Gen.block =
  let d = 16 + Rng.int rng 9 in
  let fn i = Printf.sprintf "stc%df%d" k i in
  let procs =
    List.concat
      (List.init d (fun i ->
           [ fn i ^ ":"; "subq sp, 16, sp"; "stq ra, 8(sp)" ]
           @ Gen.alu_lines rng (1 + Rng.int rng 2)
           @ (if i + 1 < d then [ Printf.sprintf "bsr ra, %s" (fn (i + 1)) ]
              else [])
           @ [ "ldq ra, 8(sp)"; "addq sp, 16, sp"; "ret" ]))
  in
  { Gen.text = [ Printf.sprintf "bsr ra, %s" (fn 0) ]; procs; data = [] }

let block arm rng k =
  match arm with
  | Flush_storm -> flush_storm rng k
  | Megamorphic -> megamorphic rng k
  | Call_tower -> call_tower rng k

let single ?(iters = 256) arm ~seed : Gen.program =
  let rng = Rng.create seed in
  { Gen.seed; iters; blocks = [ block arm rng 0 ] }

let generate ~seed : Gen.program =
  let rng = Rng.create seed in
  let iters = 192 + Rng.int rng 128 in
  let n_blocks = 1 + Rng.int rng 3 in
  let blocks =
    List.init n_blocks (fun k ->
        match Rng.int rng 3 with
        | 0 -> flush_storm rng k
        | 1 -> megamorphic rng k
        | _ -> call_tower rng k)
  in
  { Gen.seed; iters; blocks }

let workloads =
  [ ("stress_flush", Flush_storm);
    ("stress_mega", Megamorphic);
    ("stress_tower", Call_tower) ]

let workload_names = List.map fst workloads

let find_workload name =
  List.assoc_opt name workloads
  |> Option.map (fun arm ->
         fun ~scale -> Gen.assemble (single ~iters:(256 * max 1 scale) arm ~seed:7))
