(** Adversarial guest-program generators targeting the translator itself.

    Where {!Oracle.Gen} samples broadly over guest behaviours, this module
    aims three narrow arms at the DBT machinery's weak points:

    - {e flush-storm}: a phase-switching loop whose control flow migrates
      to a fresh trace every 16 iterations, growing the translation cache
      without bound. Under a finite [Config.tcache_max_slots] it forces
      repeated Dynamo-style whole-cache flushes, killing promoted regions
      and fused blocks mid-flight (the invalidation counters in
      [Core.Vm]'s segment stats record the carnage).
    - {e megamorphic}: indirect jumps whose target changes every single
      iteration, cycling through 16 cases. Software target prediction
      (translation-time compare-and-branch chaining) predicts one target,
      so nearly every transfer falls through the chain to the dispatch
      path — chain-class instruction share and dispatch misses balloon
      versus well-behaved code.
    - {e call-tower}: call chains 16–24 deep against the 8-entry dual
      RAS. Every iteration overflows the stack, so the majority of
      returns miss the RAS and must verify architecturally
      ([Machine.Dual_ras] counts the overflows).

    All arms build {!Oracle.Gen.block} values and programs are plain
    {!Oracle.Gen.program}s, so the oracle's renderer, assembler and
    delta-debugging shrinker work on them unchanged, and every stress
    program is a valid lockstep-verifiable guest (deterministic in the
    seed, terminating, checksum-printing). *)

type arm = Flush_storm | Megamorphic | Call_tower

val all_arms : arm list
val arm_name : arm -> string
(** ["flush-storm"], ["megamorphic"], ["call-tower"]. *)

val block : arm -> Machine.Rng.t -> int -> Oracle.Gen.block
(** One instance of the arm, labels made unique by the block id. *)

val single : ?iters:int -> arm -> seed:int -> Oracle.Gen.program
(** A one-block program exercising just [arm] (default 256 iterations —
    enough for the flush-storm phase selector to cycle through all eight
    phases repeatedly). Deterministic in [seed]. *)

val generate : seed:int -> Oracle.Gen.program
(** A mixed stress program: 1–3 blocks drawn uniformly from the three
    arms, 192–319 loop iterations. Deterministic in [seed] — the fuzzer's
    [--stress] mode swaps this in for {!Oracle.Gen.generate}. *)

val workload_names : string list
(** ["stress_flush"; "stress_mega"; "stress_tower"] — the fixed-seed
    named workloads [ildp_run] accepts alongside the MiniC suite. *)

val find_workload : string -> (scale:int -> Alpha.Program.t) option
(** Assembled program for a workload name; [scale] multiplies the
    iteration count (256 per unit). *)
