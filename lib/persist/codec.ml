(* Instruction codecs for the snapshot format.

   Translated code is what a snapshot preserves, and the VM extension
   instructions (LTA, PUSH-DRAS, RET-DRAS, CALL-XLATE, SET-VBASE) have no
   32-bit memory encoding — they exist only inside the translation cache —
   so both cached instruction types get an explicit tagged encoding here
   rather than reusing {!Alpha.Encode}. Tag values and enum orders are part
   of the on-disk format: changing any of them requires bumping
   {!Snapshot.version}. *)

module B = Bin_io

let enum_encoder name (all : 'a array) : 'a -> int =
  let tbl = Hashtbl.create (Array.length all) in
  Array.iteri (fun i v -> Hashtbl.replace tbl v i) all;
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Codec: unregistered %s" name)

let enum_decoder name (all : 'a array) r i =
  if i < 0 || i >= Array.length all then
    B.error r "invalid %s code %d (max %d)" name i (Array.length all - 1)
  else all.(i)

(* ---------- shared Alpha enums ---------- *)

let op3_all : Alpha.Insn.op3 array =
  [|
    Addl; Addq; Subl; Subq;
    S4addl; S4addq; S8addl; S8addq; S4subl; S4subq; S8subl; S8subq;
    Cmpeq; Cmplt; Cmple; Cmpult; Cmpule; Cmpbge;
    And_; Bic; Bis; Ornot; Xor; Eqv;
    Sll; Srl; Sra;
    Extbl; Extwl; Extll; Extql; Extwh; Extlh; Extqh;
    Insbl; Inswl; Insll; Insql;
    Mskbl; Mskwl; Mskll; Mskql;
    Zap; Zapnot;
    Mull; Mulq; Umulh;
    Sextb; Sextw;
    Ctpop; Ctlz; Cttz;
    Cmoveq; Cmovne; Cmovlt; Cmovge; Cmovle; Cmovgt; Cmovlbs; Cmovlbc;
  |]

let cond_all : Alpha.Insn.cond array = [| Eq; Ne; Lt; Ge; Le; Gt; Lbc; Lbs |]

let mem_op_all : Alpha.Insn.mem_op array =
  [| Ldq; Ldl; Ldwu; Ldbu; Stq; Stl; Stw; Stb; Lda; Ldah |]

let jkind_all : Alpha.Insn.jkind array = [| Jmp; Jsr; Ret |]
let width_all : Accisa.Insn.width array = [| W1; W2; W4; W8 |]

let op3_code = enum_encoder "op3" op3_all
let cond_code = enum_encoder "cond" cond_all
let mem_op_code = enum_encoder "mem_op" mem_op_all
let jkind_code = enum_encoder "jkind" jkind_all
let width_code = enum_encoder "width" width_all

let put_op3 w v = B.u8 w (op3_code v)
let get_op3 r = enum_decoder "op3" op3_all r (B.read_u8 r)
let put_cond w v = B.u8 w (cond_code v)
let get_cond r = enum_decoder "cond" cond_all r (B.read_u8 r)
let put_mem_op w v = B.u8 w (mem_op_code v)
let get_mem_op r = enum_decoder "mem_op" mem_op_all r (B.read_u8 r)
let put_jkind w v = B.u8 w (jkind_code v)
let get_jkind r = enum_decoder "jkind" jkind_all r (B.read_u8 r)
let put_width w v = B.u8 w (width_code v)
let get_width r = enum_decoder "width" width_all r (B.read_u8 r)

(* ---------- accumulator-ISA operands ---------- *)

let put_src w : Accisa.Insn.src -> unit = function
  | Sacc a ->
    B.u8 w 0;
    B.int w a
  | Sgpr g ->
    B.u8 w 1;
    B.int w g
  | Simm v ->
    B.u8 w 2;
    B.i64 w v

let get_src r : Accisa.Insn.src =
  match B.read_u8 r with
  | 0 -> Sacc (B.read_int r)
  | 1 -> Sgpr (B.read_int r)
  | 2 -> Simm (B.read_i64 r)
  | t -> B.error r "invalid src tag %d" t

let put_dst w (d : Accisa.Insn.dst) =
  B.int w d.dacc;
  (match d.gdst with
  | None -> B.u8 w 0
  | Some g ->
    B.u8 w 1;
    B.int w g);
  B.bool w d.gopr

let get_dst r : Accisa.Insn.dst =
  let dacc = B.read_int r in
  let gdst =
    match B.read_u8 r with
    | 0 -> None
    | 1 -> Some (B.read_int r)
    | t -> B.error r "invalid gdst tag %d" t
  in
  let gopr = B.read_bool r in
  { dacc; gdst; gopr }

(* ---------- accumulator-ISA instructions ---------- *)

let put_acc_insn w : Accisa.Insn.t -> unit = function
  | Alu { op; d; a; b } ->
    B.u8 w 0;
    put_op3 w op;
    put_dst w d;
    put_src w a;
    put_src w b
  | Cmov_test { cond; d; cv; old } ->
    B.u8 w 1;
    put_cond w cond;
    put_dst w d;
    put_src w cv;
    put_src w old
  | Cmov_sel { d; p; nv } ->
    B.u8 w 2;
    put_dst w d;
    put_src w p;
    put_src w nv
  | Load { width; signed; d; base; disp } ->
    B.u8 w 3;
    put_width w width;
    B.bool w signed;
    put_dst w d;
    put_src w base;
    B.int w disp
  | Store { width; value; base; disp } ->
    B.u8 w 4;
    put_width w width;
    put_src w value;
    put_src w base;
    B.int w disp
  | Copy_to_gpr { g; a } ->
    B.u8 w 5;
    B.int w g;
    B.int w a
  | Copy_from_gpr { d; g } ->
    B.u8 w 6;
    put_dst w d;
    B.int w g
  | Br { target } ->
    B.u8 w 7;
    B.int w target
  | Bc { cond; v; target } ->
    B.u8 w 8;
    put_cond w cond;
    put_src w v;
    B.int w target
  | Jmp_ind { v } ->
    B.u8 w 9;
    put_src w v
  | Lta { d; value } ->
    B.u8 w 10;
    put_dst w d;
    B.i64 w value
  | Set_vbase { vaddr } ->
    B.u8 w 11;
    B.int w vaddr
  | Push_dras { g; v_ret; i_ret } ->
    B.u8 w 12;
    B.int w g;
    B.int w v_ret;
    B.int w i_ret
  | Ret_dras { v } ->
    B.u8 w 13;
    put_src w v
  | Call_xlate { exit_id } ->
    B.u8 w 14;
    B.int w exit_id
  | Call_xlate_cond { cond; v; exit_id } ->
    B.u8 w 15;
    put_cond w cond;
    put_src w v;
    B.int w exit_id

let get_acc_insn r : Accisa.Insn.t =
  match B.read_u8 r with
  | 0 ->
    let op = get_op3 r in
    let d = get_dst r in
    let a = get_src r in
    let b = get_src r in
    Alu { op; d; a; b }
  | 1 ->
    let cond = get_cond r in
    let d = get_dst r in
    let cv = get_src r in
    let old = get_src r in
    Cmov_test { cond; d; cv; old }
  | 2 ->
    let d = get_dst r in
    let p = get_src r in
    let nv = get_src r in
    Cmov_sel { d; p; nv }
  | 3 ->
    let width = get_width r in
    let signed = B.read_bool r in
    let d = get_dst r in
    let base = get_src r in
    let disp = B.read_int r in
    Load { width; signed; d; base; disp }
  | 4 ->
    let width = get_width r in
    let value = get_src r in
    let base = get_src r in
    let disp = B.read_int r in
    Store { width; value; base; disp }
  | 5 ->
    let g = B.read_int r in
    let a = B.read_int r in
    Copy_to_gpr { g; a }
  | 6 ->
    let d = get_dst r in
    let g = B.read_int r in
    Copy_from_gpr { d; g }
  | 7 -> Br { target = B.read_int r }
  | 8 ->
    let cond = get_cond r in
    let v = get_src r in
    let target = B.read_int r in
    Bc { cond; v; target }
  | 9 -> Jmp_ind { v = get_src r }
  | 10 ->
    let d = get_dst r in
    let value = B.read_i64 r in
    Lta { d; value }
  | 11 -> Set_vbase { vaddr = B.read_int r }
  | 12 ->
    let g = B.read_int r in
    let v_ret = B.read_int r in
    let i_ret = B.read_int r in
    Push_dras { g; v_ret; i_ret }
  | 13 -> Ret_dras { v = get_src r }
  | 14 -> Call_xlate { exit_id = B.read_int r }
  | 15 ->
    let cond = get_cond r in
    let v = get_src r in
    let exit_id = B.read_int r in
    Call_xlate_cond { cond; v; exit_id }
  | t -> B.error r "invalid accumulator-ISA instruction tag %d" t

(* ---------- Alpha instructions (straightening backend) ---------- *)

let put_operand w : Alpha.Insn.operand -> unit = function
  | Rb reg ->
    B.u8 w 0;
    B.int w reg
  | Imm v ->
    B.u8 w 1;
    B.int w v

let get_operand r : Alpha.Insn.operand =
  match B.read_u8 r with
  | 0 -> Rb (B.read_int r)
  | 1 -> Imm (B.read_int r)
  | t -> B.error r "invalid operand tag %d" t

let put_alpha_insn w : Alpha.Insn.t -> unit = function
  | Mem (op, ra, disp, rb) ->
    B.u8 w 0;
    put_mem_op w op;
    B.int w ra;
    B.int w disp;
    B.int w rb
  | Opr (op, ra, rb, rc) ->
    B.u8 w 1;
    put_op3 w op;
    B.int w ra;
    put_operand w rb;
    B.int w rc
  | Br (ra, disp) ->
    B.u8 w 2;
    B.int w ra;
    B.int w disp
  | Bsr (ra, disp) ->
    B.u8 w 3;
    B.int w ra;
    B.int w disp
  | Bc (cond, ra, disp) ->
    B.u8 w 4;
    put_cond w cond;
    B.int w ra;
    B.int w disp
  | Jump (jk, ra, rb) ->
    B.u8 w 5;
    put_jkind w jk;
    B.int w ra;
    B.int w rb
  | Call_pal n ->
    B.u8 w 6;
    B.int w n
  | Lta (ra, addr) ->
    B.u8 w 7;
    B.int w ra;
    B.int w addr
  | Push_dras (ra, v_ret, i_ret) ->
    B.u8 w 8;
    B.int w ra;
    B.int w v_ret;
    B.int w i_ret
  | Ret_dras rb ->
    B.u8 w 9;
    B.int w rb
  | Call_xlate exit_id ->
    B.u8 w 10;
    B.int w exit_id
  | Call_xlate_cond (cond, ra, exit_id) ->
    B.u8 w 11;
    put_cond w cond;
    B.int w ra;
    B.int w exit_id
  | Set_vbase vaddr ->
    B.u8 w 12;
    B.int w vaddr

let get_alpha_insn r : Alpha.Insn.t =
  match B.read_u8 r with
  | 0 ->
    let op = get_mem_op r in
    let ra = B.read_int r in
    let disp = B.read_int r in
    let rb = B.read_int r in
    Mem (op, ra, disp, rb)
  | 1 ->
    let op = get_op3 r in
    let ra = B.read_int r in
    let rb = get_operand r in
    let rc = B.read_int r in
    Opr (op, ra, rb, rc)
  | 2 ->
    let ra = B.read_int r in
    let disp = B.read_int r in
    Br (ra, disp)
  | 3 ->
    let ra = B.read_int r in
    let disp = B.read_int r in
    Bsr (ra, disp)
  | 4 ->
    let cond = get_cond r in
    let ra = B.read_int r in
    let disp = B.read_int r in
    Bc (cond, ra, disp)
  | 5 ->
    let jk = get_jkind r in
    let ra = B.read_int r in
    let rb = B.read_int r in
    Jump (jk, ra, rb)
  | 6 -> Call_pal (B.read_int r)
  | 7 ->
    let ra = B.read_int r in
    let addr = B.read_int r in
    Lta (ra, addr)
  | 8 ->
    let ra = B.read_int r in
    let v_ret = B.read_int r in
    let i_ret = B.read_int r in
    Push_dras (ra, v_ret, i_ret)
  | 9 -> Ret_dras (B.read_int r)
  | 10 -> Call_xlate (B.read_int r)
  | 11 ->
    let cond = get_cond r in
    let ra = B.read_int r in
    let exit_id = B.read_int r in
    Call_xlate_cond (cond, ra, exit_id)
  | 12 -> Set_vbase (B.read_int r)
  | t -> B.error r "invalid Alpha instruction tag %d" t
