(** Persistent translation-cache snapshots.

    A snapshot captures everything needed to warm-start the VM on the same
    program under the same configuration: the translated instruction
    slots, fragment metadata (including per-fragment execution counts,
    which double as the hotness profile for prewarming), PEI tables, the
    exit-reason table, per-slot retirement/class metadata, and the set of
    V-addresses translated so far.

    The container format is [magic | version | payload-length | CRC-32 |
    payload]. The payload opens with a {!fingerprint} covering backend,
    ISA, chaining, engine, every translation-relevant configuration knob,
    and an MD5 digest of the workload image — a snapshot taken under any
    other configuration or program is {e rejected} at load with a clean
    {!Error}, never silently mis-loaded.

    This library depends only on the instruction-set definitions
    ({!Alpha}, {!Accisa}); the conversion to and from live VM state lives
    in {!Core.Vm.save_snapshot} / [Core.Vm.create ~snapshot]. *)

exception Error of string
(** Raised on any malformed, corrupted, truncated, version-skewed or
    fingerprint-relevant decoding failure. *)

type fingerprint = {
  fp_backend : string;  (** ["acc"] or ["straight"] *)
  fp_isa : string;
  fp_chaining : string;
  fp_engine : string;
  fp_n_accs : int;
  fp_hot_threshold : int;
  fp_max_superblock : int;
  fp_stop_at_translated : bool;
  fp_fuse_mem : bool;
  fp_region_threshold : int;
  fp_region_max_slots : int;
  fp_superops : bool;
  fp_tcache_max_slots : int;
  fp_image_digest : string;  (** hex MD5 of the program image + entry *)
}

val fingerprint_mismatches : got:fingerprint -> want:fingerprint -> string list
(** Human-readable field-by-field differences, empty when compatible. *)

type frag = {
  f_id : int;
  f_entry_slot : int;
  f_v_start : int;
  f_n_slots : int;
  f_v_insns : int;
  f_v_bytes : int;
  f_i_bytes : int;
  f_exec_count : int;  (** the hotness profile driving warm-start prewarm *)
  f_cat_count : int array;
}

type pei = { p_slot : int; p_v_pc : int; p_acc_map : (int * int) array }

type exit_reason = X_branch of int | X_pal of int | X_dispatch_miss

type 'insn cache = {
  slots : ('insn * bool) array;  (** instruction, starts-strand flag *)
  frags : frag array;
  peis : pei array;
  exits : exit_reason array;
  slot_alpha : int array;
  slot_class : int array;
  slot_cyc_ooo : int array;
      (** per-slot static cycle cost under the wide OoO model *)
  slot_cyc_ildp : int array;
      (** per-slot static cycle cost under the ILDP model *)
  dispatch_slot : int;
  unique_vpcs : int array;  (** sorted, for deterministic encodings *)
  idioms : (int array * int) array;
      (** ranked superop idiom table, hottest first: (shape-code n-gram,
          dynamic weight) rows as produced by [Core.Superop.encode_table].
          Codes are validated at load by [Core.Vm]; empty means "mine on
          demand". *)
}

type body =
  | B_acc of Accisa.Insn.t cache
  | B_straight of Alpha.Insn.t cache

type t = { fingerprint : fingerprint; body : body }

val version : int
(** Current container version; bumped whenever any encoding changes. *)

val to_string : t -> string
val of_string : string -> t
(** Raises {!Error} on bad magic, unsupported version, length or CRC
    mismatch, or any payload decoding failure. *)

val write_file : string -> t -> unit
val read_file : string -> t
(** Raises {!Error} (including for an unreadable file). *)
