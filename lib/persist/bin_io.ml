(* Binary writer/reader for the snapshot format. Little-endian throughout;
   see the interface for the error contract. *)

exception Error of string

(* ---------- writer ---------- *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents w = Buffer.contents w

let u8 w v =
  if v < 0 || v > 0xff then invalid_arg "Bin_io.u8";
  Buffer.add_char w (Char.chr v)

let u32 w v =
  if v < 0 || v > 0xffffffff then invalid_arg "Bin_io.u32";
  Buffer.add_char w (Char.chr (v land 0xff));
  Buffer.add_char w (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char w (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char w (Char.chr ((v lsr 24) land 0xff))

let i64 w v =
  for i = 0 to 7 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let int w v = i64 w (Int64.of_int v)
let bool w v = u8 w (if v then 1 else 0)

let str w s =
  u32 w (String.length s);
  Buffer.add_string w s

let raw w s = Buffer.add_string w s

(* ---------- reader ---------- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let pos r = r.pos
let eof r = r.pos >= String.length r.data

let error r fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "byte %d: %s" r.pos s))) fmt

let need r n =
  if r.pos + n > String.length r.data then
    error r "truncated input (need %d bytes, %d left)" n
      (String.length r.data - r.pos)

let read_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_u32 r =
  need r 4;
  let b i = Char.code r.data.[r.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let read_i64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !v

let read_int r = Int64.to_int (read_i64 r)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> error r "invalid boolean byte %#x" v

let read_bytes r n =
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_str r =
  let n = read_u32 r in
  read_bytes r n

(* ---------- CRC-32 (IEEE 802.3, reflected) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff
