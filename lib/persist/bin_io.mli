(** Dependency-free binary serialization primitives for the snapshot
    format: little-endian fixed-width integers, length-prefixed strings,
    and a table-driven CRC-32 over the encoded payload.

    The reader raises {!Error} with the byte position on any malformed
    input — a truncated or corrupted snapshot must fail loudly, never
    deliver garbage into the translation cache. *)

exception Error of string

(** {2 Writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
(** 32-bit unsigned little-endian; [Invalid_argument] outside [0, 2^32). *)

val i64 : writer -> int64 -> unit
val int : writer -> int -> unit
(** Any OCaml int, encoded as its 64-bit two's-complement image. *)

val bool : writer -> bool -> unit
val str : writer -> string -> unit
(** [u32] length prefix followed by the raw bytes. *)

val raw : writer -> string -> unit
(** The bytes with no length prefix (container magic and payload). *)

(** {2 Reader} *)

type reader

val reader : string -> reader
val pos : reader -> int
val eof : reader -> bool
val read_u8 : reader -> int
val read_u32 : reader -> int
val read_i64 : reader -> int64
val read_int : reader -> int
val read_bool : reader -> bool
val read_str : reader -> string
val read_bytes : reader -> int -> string

val error : reader -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Error} with the current position prepended. *)

(** {2 Checksum} *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3 polynomial) of the whole string, in [0, 2^32). *)
