(* Snapshot container: magic/version/CRC framing around a fingerprint +
   translation-cache payload. See the interface for the format contract. *)

module B = Bin_io

exception Error of string

let magic = "ILDPSNAP"

(* version 2: fingerprint gained the region tier-up knobs
   (fp_region_threshold / fp_region_max_slots).
   version 3: the cache gained per-slot static cycle annotations
   (slot_cyc_ooo / slot_cyc_ildp) for the fast-forward timing tier —
   annotation happens only at translation time, so a warm start must
   carry the costs or restored fragments would execute unpriced.
   version 4: the cache gained the ranked superop idiom table (mined
   slot-shape n-grams, see {!Core.Superop}) and the fingerprint gained
   fp_superops — a warm start fuses promoted blocks with the profile's
   idioms immediately instead of re-mining from a cold cache.
   version 5: the fingerprint gained fp_tcache_max_slots — a cache
   persisted under one capacity bound must not warm-start a VM whose
   bound (and hence flush points) differs. *)
let version = 5

type fingerprint = {
  fp_backend : string;
  fp_isa : string;
  fp_chaining : string;
  fp_engine : string;
  fp_n_accs : int;
  fp_hot_threshold : int;
  fp_max_superblock : int;
  fp_stop_at_translated : bool;
  fp_fuse_mem : bool;
  fp_region_threshold : int;
  fp_region_max_slots : int;
  fp_superops : bool;
  fp_tcache_max_slots : int;
  fp_image_digest : string;
}

let fingerprint_mismatches ~got ~want =
  let s name a b =
    if a = b then None else Some (Printf.sprintf "%s: snapshot %S, VM %S" name a b)
  in
  let i name a b =
    if a = b then None else Some (Printf.sprintf "%s: snapshot %d, VM %d" name a b)
  in
  let b name a b_ =
    if a = b_ then None else Some (Printf.sprintf "%s: snapshot %b, VM %b" name a b_)
  in
  List.filter_map Fun.id
    [
      s "backend" got.fp_backend want.fp_backend;
      s "isa" got.fp_isa want.fp_isa;
      s "chaining" got.fp_chaining want.fp_chaining;
      s "engine" got.fp_engine want.fp_engine;
      i "n_accs" got.fp_n_accs want.fp_n_accs;
      i "hot_threshold" got.fp_hot_threshold want.fp_hot_threshold;
      i "max_superblock" got.fp_max_superblock want.fp_max_superblock;
      b "stop_at_translated" got.fp_stop_at_translated want.fp_stop_at_translated;
      b "fuse_mem" got.fp_fuse_mem want.fp_fuse_mem;
      i "region_threshold" got.fp_region_threshold want.fp_region_threshold;
      i "region_max_slots" got.fp_region_max_slots want.fp_region_max_slots;
      b "superops" got.fp_superops want.fp_superops;
      i "tcache_max_slots" got.fp_tcache_max_slots want.fp_tcache_max_slots;
      s "image_digest" got.fp_image_digest want.fp_image_digest;
    ]

type frag = {
  f_id : int;
  f_entry_slot : int;
  f_v_start : int;
  f_n_slots : int;
  f_v_insns : int;
  f_v_bytes : int;
  f_i_bytes : int;
  f_exec_count : int;
  f_cat_count : int array;
}

type pei = { p_slot : int; p_v_pc : int; p_acc_map : (int * int) array }

type exit_reason = X_branch of int | X_pal of int | X_dispatch_miss

type 'insn cache = {
  slots : ('insn * bool) array;
  frags : frag array;
  peis : pei array;
  exits : exit_reason array;
  slot_alpha : int array;
  slot_class : int array;
  slot_cyc_ooo : int array;
  slot_cyc_ildp : int array;
  dispatch_slot : int;
  unique_vpcs : int array;
  idioms : (int array * int) array;
      (* ranked superop idiom table: (shape-code n-gram, dynamic weight)
         rows, hottest first. Codes are validated by the loader
         (Core.Vm.check_cache), not here — persist cannot see the shape
         alphabet. Empty means "mine on demand". *)
}

type body =
  | B_acc of Accisa.Insn.t cache
  | B_straight of Alpha.Insn.t cache

type t = { fingerprint : fingerprint; body : body }

(* ---------- payload encoding ---------- *)

let put_array w put xs =
  B.u32 w (Array.length xs);
  Array.iter (put w) xs

let get_array r get =
  let n = B.read_u32 r in
  Array.init n (fun _ -> get r)

let put_fingerprint w fp =
  B.str w fp.fp_backend;
  B.str w fp.fp_isa;
  B.str w fp.fp_chaining;
  B.str w fp.fp_engine;
  B.int w fp.fp_n_accs;
  B.int w fp.fp_hot_threshold;
  B.int w fp.fp_max_superblock;
  B.bool w fp.fp_stop_at_translated;
  B.bool w fp.fp_fuse_mem;
  B.int w fp.fp_region_threshold;
  B.int w fp.fp_region_max_slots;
  B.bool w fp.fp_superops;
  B.int w fp.fp_tcache_max_slots;
  B.str w fp.fp_image_digest

let get_fingerprint r =
  let fp_backend = B.read_str r in
  let fp_isa = B.read_str r in
  let fp_chaining = B.read_str r in
  let fp_engine = B.read_str r in
  let fp_n_accs = B.read_int r in
  let fp_hot_threshold = B.read_int r in
  let fp_max_superblock = B.read_int r in
  let fp_stop_at_translated = B.read_bool r in
  let fp_fuse_mem = B.read_bool r in
  let fp_region_threshold = B.read_int r in
  let fp_region_max_slots = B.read_int r in
  let fp_superops = B.read_bool r in
  let fp_tcache_max_slots = B.read_int r in
  let fp_image_digest = B.read_str r in
  { fp_backend; fp_isa; fp_chaining; fp_engine; fp_n_accs; fp_hot_threshold;
    fp_max_superblock; fp_stop_at_translated; fp_fuse_mem;
    fp_region_threshold; fp_region_max_slots; fp_superops;
    fp_tcache_max_slots; fp_image_digest }

let put_frag w f =
  B.int w f.f_id;
  B.int w f.f_entry_slot;
  B.int w f.f_v_start;
  B.int w f.f_n_slots;
  B.int w f.f_v_insns;
  B.int w f.f_v_bytes;
  B.int w f.f_i_bytes;
  B.int w f.f_exec_count;
  put_array w B.int f.f_cat_count

let get_frag r =
  let f_id = B.read_int r in
  let f_entry_slot = B.read_int r in
  let f_v_start = B.read_int r in
  let f_n_slots = B.read_int r in
  let f_v_insns = B.read_int r in
  let f_v_bytes = B.read_int r in
  let f_i_bytes = B.read_int r in
  let f_exec_count = B.read_int r in
  let f_cat_count = get_array r B.read_int in
  { f_id; f_entry_slot; f_v_start; f_n_slots; f_v_insns; f_v_bytes; f_i_bytes;
    f_exec_count; f_cat_count }

let put_pei w p =
  B.int w p.p_slot;
  B.int w p.p_v_pc;
  put_array w
    (fun w (a, g) ->
      B.int w a;
      B.int w g)
    p.p_acc_map

let get_pei r =
  let p_slot = B.read_int r in
  let p_v_pc = B.read_int r in
  let p_acc_map =
    get_array r (fun r ->
        let a = B.read_int r in
        let g = B.read_int r in
        (a, g))
  in
  { p_slot; p_v_pc; p_acc_map }

let put_exit w = function
  | X_branch v ->
    B.u8 w 0;
    B.int w v
  | X_pal v ->
    B.u8 w 1;
    B.int w v
  | X_dispatch_miss -> B.u8 w 2

let get_exit r =
  match B.read_u8 r with
  | 0 -> X_branch (B.read_int r)
  | 1 -> X_pal (B.read_int r)
  | 2 -> X_dispatch_miss
  | t -> B.error r "invalid exit-reason tag %d" t

let put_cache w put_insn c =
  put_array w
    (fun w (insn, strand_start) ->
      put_insn w insn;
      B.bool w strand_start)
    c.slots;
  put_array w put_frag c.frags;
  put_array w put_pei c.peis;
  put_array w put_exit c.exits;
  put_array w B.int c.slot_alpha;
  put_array w B.int c.slot_class;
  put_array w B.int c.slot_cyc_ooo;
  put_array w B.int c.slot_cyc_ildp;
  B.int w c.dispatch_slot;
  put_array w B.int c.unique_vpcs;
  put_array w
    (fun w (codes, weight) ->
      put_array w B.int codes;
      B.int w weight)
    c.idioms

let get_cache r get_insn =
  let slots =
    get_array r (fun r ->
        let insn = get_insn r in
        let strand_start = B.read_bool r in
        (insn, strand_start))
  in
  let frags = get_array r get_frag in
  let peis = get_array r get_pei in
  let exits = get_array r get_exit in
  let slot_alpha = get_array r B.read_int in
  let slot_class = get_array r B.read_int in
  let slot_cyc_ooo = get_array r B.read_int in
  let slot_cyc_ildp = get_array r B.read_int in
  let dispatch_slot = B.read_int r in
  let unique_vpcs = get_array r B.read_int in
  let idioms =
    get_array r (fun r ->
        let codes = get_array r B.read_int in
        let weight = B.read_int r in
        (codes, weight))
  in
  { slots; frags; peis; exits; slot_alpha; slot_class; slot_cyc_ooo;
    slot_cyc_ildp; dispatch_slot; unique_vpcs; idioms }

let put_body w = function
  | B_acc c ->
    B.u8 w 0;
    put_cache w Codec.put_acc_insn c
  | B_straight c ->
    B.u8 w 1;
    put_cache w Codec.put_alpha_insn c

let get_body r =
  match B.read_u8 r with
  | 0 -> B_acc (get_cache r Codec.get_acc_insn)
  | 1 -> B_straight (get_cache r Codec.get_alpha_insn)
  | t -> B.error r "invalid backend tag %d" t

(* ---------- container framing ---------- *)

let to_string t =
  let w = B.writer () in
  put_fingerprint w t.fingerprint;
  put_body w t.body;
  let payload = B.contents w in
  let out = B.writer () in
  B.raw out magic;
  B.u32 out version;
  B.u32 out (String.length payload);
  B.u32 out (B.crc32 payload);
  B.raw out payload;
  B.contents out

let of_string s =
  try
    let r = B.reader s in
    let m = B.read_bytes r (String.length magic) in
    if m <> magic then
      raise (Error (Printf.sprintf "bad magic %S (not a snapshot file)" m));
    let v = B.read_u32 r in
    if v <> version then
      raise
        (Error
           (Printf.sprintf "unsupported snapshot version %d (this build reads %d)"
              v version));
    let len = B.read_u32 r in
    let crc = B.read_u32 r in
    let payload = B.read_bytes r len in
    if not (B.eof r) then
      raise
        (Error
           (Printf.sprintf "trailing garbage: %d bytes after the payload"
              (String.length s - B.pos r)));
    let actual = B.crc32 payload in
    if actual <> crc then
      raise
        (Error
           (Printf.sprintf "CRC mismatch (stored %#x, computed %#x): corrupted snapshot"
              crc actual));
    let r = B.reader payload in
    let fingerprint = get_fingerprint r in
    let body = get_body r in
    if not (B.eof r) then
      raise
        (Error
           (Printf.sprintf "payload has %d undecoded trailing bytes"
              (String.length payload - B.pos r)));
    { fingerprint; body }
  with B.Error msg -> raise (Error ("malformed snapshot: " ^ msg))

let write_file path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> raise (Error msg)
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
