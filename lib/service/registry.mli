(** Content-addressed warm-cache registry with single-flight builds.

    The registry maps snapshot {!Persist.Snapshot.fingerprint}s (config
    fingerprint + workload image digest) to published translation-cache
    snapshots. The first session to {!acquire} a fingerprint is told to
    {!val-admission.Build}; every concurrent session for the same
    fingerprint blocks until the builder {!publish}es (and then
    warm-starts from the shared snapshot) or {!abandon}s (and then one of
    the waiters becomes the new builder). A fingerprint is therefore
    translated at most once per successful run — never concurrently, and
    never re-translated after a publish.

    Deadlock-freedom contract: callers must [acquire] from the job that
    will itself perform the build, so a [Building] slot only ever exists
    while its builder is actively running; waiters always wait on live
    progress. Builders must call exactly one of [publish]/[abandon]. *)

type t

type admission =
  | Warm of Persist.Snapshot.t
      (** A published snapshot: warm-start from it; no translation. *)
  | Build
      (** Caller owns the build: translate cold, then [publish] the
          resulting snapshot on success or [abandon] on failure. *)

val create : ?dir:string -> unit -> t
(** In-memory registry; with [~dir], published snapshots are also spilled
    to [dir] (created if missing) and cache misses consult it first, so a
    restarted daemon warm-starts from the previous run's publishes. *)

val acquire : t -> Persist.Snapshot.fingerprint -> admission
(** Blocks while another session is building the same fingerprint. *)

val publish : t -> Persist.Snapshot.t -> unit
(** Install a built snapshot and wake all waiters. First publish wins:
    a fingerprint already [Ready] is never replaced, so readers can
    never observe a torn or superseded snapshot. *)

val abandon : t -> Persist.Snapshot.fingerprint -> unit
(** Give up a build (guest faulted, quota killed it, ...). The slot is
    cleared and waiters re-race: exactly one becomes the next builder.
    Abandoned builds never seed warm starts — partially-populated caches
    are discarded with the VM that built them. *)

type stats = {
  warm_hits : int;  (** [acquire] calls answered [Warm] *)
  cold_builds : int;  (** [acquire] calls answered [Build] *)
  build_waits : int;  (** [acquire] calls that blocked on a builder *)
  abandons : int;
  disk_loads : int;  (** misses satisfied from [~dir] spill files *)
  ready : int;  (** fingerprints currently published *)
}

val stats : t -> stats
