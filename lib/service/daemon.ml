(* Translation service: bounded admission over a shared worker pool plus
   the single-flight snapshot registry. See daemon.mli for the contract.

   Locking order: the service lock [m] is never held while running a
   session or touching the registry/pool, and the registry never calls
   back into the service, so there is a strict service -> registry ->
   future lock hierarchy and no cycle.

   Deadlock-freedom of warm waits: [Registry.acquire] runs inside the
   session job, and the job that is told [Build] performs the build
   itself before returning. A [Building] slot therefore only exists while
   its builder occupies a worker, so jobs blocked in [acquire] always
   wait on live progress; the builder never waits on anything. *)

type tenant_quota = { q_fuel : int; q_image_bytes : int }

type request = {
  rq_tenant : string;
  rq_label : string;
  rq_prog : Alpha.Program.t;
  rq_fuel : int;
}

type reason =
  | S_exit of int
  | S_fault of string
  | S_fuel
  | S_quota
  | S_cancelled

type result = {
  s_label : string;
  s_tenant : string;
  s_reason : reason;
  s_warm : bool;
  s_fuel_used : int;
  s_output : string;
  s_checksum : int64;
  s_superblocks : int;
  s_translate_units : int;
  s_latency_ms : float;
}

type tenant = {
  tn_quota : tenant_quota;
  mutable tn_fuel_left : int;
}

type t = {
  cfg : Core.Config.t;
  pool : Taskpool.Pool.t;
  registry : Registry.t;
  tenants : (string, tenant) Hashtbl.t;
  capacity : int;
  m : Mutex.t;
  not_full : Condition.t;
  mutable in_flight : int;  (* admitted but not yet completed *)
  mutable accepting : bool;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable quota_kills : int;
  mutable cancelled : int;
}

type session = {
  sq_service : t;
  sq_request : request;
  sq_reserve : int;  (* fuel debited at admission, for cancel refunds *)
  sq_fut : result Taskpool.Pool.future;
  mutable sq_refunded : bool;  (* guarded by the service lock: [wait] is
                                  repeatable, the refund must not be *)
}

type stats = {
  admitted : int;
  rejected : int;
  completed : int;
  quota_kills : int;
  cancelled : int;
  registry : Registry.stats;
  tenant_fuel_left : (string * int) list;
}

(* Telemetry; all dormant unless [Obs.set_enabled true]. *)
let c_admitted = Obs.counter "service.sessions_admitted"
let c_rejected = Obs.counter "service.sessions_rejected"
let c_warm = Obs.counter "service.warm_hits"
let c_cold = Obs.counter "service.cold_builds"
let c_quota = Obs.counter "service.quota_kills"
let g_depth = Obs.max_gauge "service.queue_depth"

let h_latency =
  Obs.histogram "service.session_latency_ms"
    ~bounds:[| 1; 3; 10; 30; 100; 300; 1000; 3000; 10000 |]

let create ?(cfg = Core.Config.default) ?jobs ?capacity ?spill_dir ~tenants ()
    =
  let pool = Taskpool.Pool.create ?jobs () in
  let capacity =
    match capacity with
    | Some c -> max 1 c
    | None -> 4 * Taskpool.Pool.size pool
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, q) ->
      Hashtbl.replace tbl name { tn_quota = q; tn_fuel_left = q.q_fuel })
    tenants;
  {
    cfg;
    pool;
    registry = Registry.create ?dir:spill_dir ();
    tenants = tbl;
    capacity;
    m = Mutex.create ();
    not_full = Condition.create ();
    in_flight = 0;
    accepting = true;
    admitted = 0;
    rejected = 0;
    completed = 0;
    quota_kills = 0;
    cancelled = 0;
  }

let image_bytes (prog : Alpha.Program.t) =
  String.length prog.text.bytes + String.length prog.data.bytes

(* Exact fuel consumed by a VM run: instructions interpreted plus V-ISA
   instructions retired in translated fragments. Every fuel decrement in
   [Core.Vm] is one of these two, so this reproduces the VM's own
   accounting to the instruction (asserted by test_service). *)
let fuel_used vm =
  Core.Vm.(
    vm.interp_insns
    + match acc_exec vm with Some ex -> ex.stats.alpha_retired | None -> 0)

(* Runs on a pool worker. [reserve] fuel was debited at admission; the
   difference against actual use is settled here, under the service
   lock, together with the backpressure bookkeeping. *)
let run_session t (rq : request) ~reserve ~admitted_at =
  let fp =
    Core.Config.fingerprint t.cfg ~backend:"acc"
      ~image_digest:(Core.Vm.image_digest rq.rq_prog)
  in
  let admission = Registry.acquire t.registry fp in
  let snapshot, warm =
    match admission with
    | Registry.Warm snap ->
      Obs.bump c_warm 1;
      (Some snap, true)
    | Registry.Build ->
      Obs.bump c_cold 1;
      (None, false)
  in
  let vm = Core.Vm.create ~cfg:t.cfg ?snapshot ~kind:Core.Vm.Acc rq.rq_prog in
  let outcome =
    try Core.Vm.run ~fuel:reserve vm
    with e ->
      if not warm then Registry.abandon t.registry fp;
      (* settle before re-raising so the tenant is still charged *)
      let used = fuel_used vm in
      Mutex.lock t.m;
      (match Hashtbl.find_opt t.tenants rq.rq_tenant with
      | Some tn -> tn.tn_fuel_left <- tn.tn_fuel_left + reserve - used
      | None -> ());
      t.in_flight <- t.in_flight - 1;
      t.completed <- t.completed + 1;
      Condition.broadcast t.not_full;
      Mutex.unlock t.m;
      raise e
  in
  let reason =
    match outcome with
    | Core.Vm.Exit code -> S_exit code
    | Core.Vm.Fault tr ->
      S_fault (Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr)
    | Core.Vm.Out_of_fuel ->
      if reserve < rq.rq_fuel then S_quota else S_fuel
  in
  (* Only a successful cold run publishes: a fault/fuel-killed VM holds a
     partial translation cache that must never seed warm starts. *)
  if not warm then begin
    match reason with
    | S_exit _ -> Registry.publish t.registry (Core.Vm.save_snapshot vm)
    | S_fault _ | S_fuel | S_quota | S_cancelled ->
      Registry.abandon t.registry fp
  end;
  let used = fuel_used vm in
  let latency_ms = (Unix.gettimeofday () -. admitted_at) *. 1000. in
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.tenants rq.rq_tenant with
  | Some tn -> tn.tn_fuel_left <- tn.tn_fuel_left + reserve - used
  | None -> ());
  t.in_flight <- t.in_flight - 1;
  t.completed <- t.completed + 1;
  if reason = S_quota then begin
    t.quota_kills <- t.quota_kills + 1;
    Obs.bump c_quota 1
  end;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m;
  Obs.observe h_latency (int_of_float latency_ms);
  {
    s_label = rq.rq_label;
    s_tenant = rq.rq_tenant;
    s_reason = reason;
    s_warm = warm;
    s_fuel_used = used;
    s_output = Core.Vm.output vm;
    s_checksum = Core.Vm.reg_checksum vm;
    s_superblocks = vm.Core.Vm.superblocks;
    s_translate_units = (Core.Vm.cost vm).Core.Cost.translate_units;
    s_latency_ms = latency_ms;
  }

let submit t (rq : request) =
  Mutex.lock t.m;
  let reject msg =
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.m;
    Obs.bump c_rejected 1;
    Error msg
  in
  if not t.accepting then reject "service is shutting down"
  else
    match Hashtbl.find_opt t.tenants rq.rq_tenant with
    | None -> reject (Printf.sprintf "unknown tenant %S" rq.rq_tenant)
    | Some tn ->
      let bytes = image_bytes rq.rq_prog in
      if bytes > tn.tn_quota.q_image_bytes then
        reject
          (Printf.sprintf "image %d bytes exceeds tenant quota %d" bytes
             tn.tn_quota.q_image_bytes)
      else if rq.rq_fuel <= 0 then reject "non-positive fuel request"
      else if tn.tn_fuel_left <= 0 then reject "tenant fuel quota exhausted"
      else begin
        (* Backpressure: hold the caller until a slot frees up. Shutdown
           broadcasts [not_full], so blocked submitters re-check
           [accepting] and reject instead of hanging. *)
        while t.in_flight >= t.capacity && t.accepting do
          Condition.wait t.not_full t.m
        done;
        if not t.accepting then reject "service is shutting down"
        else begin
          let reserve = min rq.rq_fuel tn.tn_fuel_left in
          tn.tn_fuel_left <- tn.tn_fuel_left - reserve;
          t.in_flight <- t.in_flight + 1;
          t.admitted <- t.admitted + 1;
          Obs.bump c_admitted 1;
          Obs.set_max g_depth t.in_flight;
          Mutex.unlock t.m;
          let admitted_at = Unix.gettimeofday () in
          let fut =
            Taskpool.Pool.submit t.pool (fun () ->
                run_session t rq ~reserve ~admitted_at)
          in
          Ok
            {
              sq_service = t;
              sq_request = rq;
              sq_reserve = reserve;
              sq_fut = fut;
              sq_refunded = false;
            }
        end
      end

(* A cancelled session never started: refund its reservation in full so
   drain-less shutdown leaves tenant accounts exactly as if the session
   had been rejected at admission. *)
let cancelled_result session =
  let t = session.sq_service in
  let rq = session.sq_request in
  Mutex.lock t.m;
  if not session.sq_refunded then begin
    session.sq_refunded <- true;
    (match Hashtbl.find_opt t.tenants rq.rq_tenant with
    | Some tn -> tn.tn_fuel_left <- tn.tn_fuel_left + session.sq_reserve
    | None -> ());
    t.in_flight <- t.in_flight - 1;
    t.cancelled <- t.cancelled + 1;
    Condition.broadcast t.not_full
  end;
  Mutex.unlock t.m;
  {
    s_label = rq.rq_label;
    s_tenant = rq.rq_tenant;
    s_reason = S_cancelled;
    s_warm = false;
    s_fuel_used = 0;
    s_output = "";
    s_checksum = 0L;
    s_superblocks = 0;
    s_translate_units = 0;
    s_latency_ms = 0.;
  }

let wait session =
  try Taskpool.Pool.await session.sq_fut
  with Taskpool.Pool.Cancelled -> cancelled_result session

let run t rq =
  match submit t rq with
  | Ok session -> wait session
  | Error msg ->
    {
      s_label = rq.rq_label;
      s_tenant = rq.rq_tenant;
      s_reason = S_fault ("rejected: " ^ msg);
      s_warm = false;
      s_fuel_used = 0;
      s_output = "";
      s_checksum = 0L;
      s_superblocks = 0;
      s_translate_units = 0;
      s_latency_ms = 0.;
    }

let shutdown ?(drain = true) t =
  Mutex.lock t.m;
  t.accepting <- false;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m;
  Taskpool.Pool.shutdown ~reject_queued:(not drain) t.pool

let stats (t : t) =
  let registry = Registry.stats t.registry in
  Mutex.lock t.m;
  let tenant_fuel_left =
    Hashtbl.fold (fun name tn acc -> (name, tn.tn_fuel_left) :: acc) t.tenants
      []
    |> List.sort compare
  in
  let s =
    {
      admitted = t.admitted;
      rejected = t.rejected;
      completed = t.completed;
      quota_kills = t.quota_kills;
      cancelled = t.cancelled;
      registry;
      tenant_fuel_left;
    }
  in
  Mutex.unlock t.m;
  s
