(** Translation-as-a-service daemon core.

    A service schedules N concurrent guest sessions over a shared
    {!Taskpool.Pool}, warm-starting every session whose configuration +
    image fingerprint is already published in the shared {!Registry}:
    the first session per image pays translation and publishes its
    translation-cache snapshot; every later session restores it and
    forms zero new superblocks.

    Admission control is synchronous and bounded: {!submit} blocks the
    caller while [capacity] sessions are already admitted-but-unfinished
    (backpressure), and rejects — never queues — requests from unknown
    tenants, over-sized images, exhausted fuel quotas, or a draining
    service. Per-tenant fuel is reserved at admission ([min] of the
    request's fuel and the tenant's remaining quota) and settled exactly
    at completion, so a tenant can never run the shared workers past its
    quota: a session stopped by the quota ends with a clean {!S_quota}
    result, not a crash. *)

type tenant_quota = {
  q_fuel : int;  (** total guest instructions across all sessions *)
  q_image_bytes : int;  (** max text+data bytes of a single image *)
}

type request = {
  rq_tenant : string;
  rq_label : string;  (** session label, echoed in the result *)
  rq_prog : Alpha.Program.t;
  rq_fuel : int;  (** per-session fuel cap, clamped by the tenant quota *)
}

type reason =
  | S_exit of int  (** guest exited normally with this code *)
  | S_fault of string  (** guest trapped *)
  | S_fuel  (** the request's own [rq_fuel] cap ran out *)
  | S_quota  (** the tenant fuel quota ran out mid-run *)
  | S_cancelled  (** queued session rejected by a non-draining shutdown *)

type result = {
  s_label : string;
  s_tenant : string;
  s_reason : reason;
  s_warm : bool;  (** warm-started from a registry snapshot *)
  s_fuel_used : int;  (** exact: interpreted + translated-retired insns *)
  s_output : string;  (** guest console output *)
  s_checksum : int64;  (** final register-file checksum *)
  s_superblocks : int;  (** superblocks formed (0 for warm sessions) *)
  s_translate_units : int;
      (** deterministic cost-model translation work this session paid;
          near zero for warm sessions *)
  s_latency_ms : float;  (** admission to completion, wall clock *)
}

type t

val create :
  ?cfg:Core.Config.t ->
  ?jobs:int ->
  ?capacity:int ->
  ?spill_dir:string ->
  tenants:(string * tenant_quota) list ->
  unit ->
  t
(** [capacity] bounds admitted-but-unfinished sessions (default
    [4 * jobs]); [spill_dir] persists published snapshots across daemon
    restarts (see {!Registry.create}). *)

type session
(** Handle for one admitted session; redeem with {!wait}. *)

val submit : t -> request -> (session, string) Stdlib.result
(** Admit (blocking under backpressure) or reject with a reason. *)

val wait : session -> result
(** Block until the session completes. Never raises for guest-side
    failures — faults, fuel and quota exhaustion, and shutdown
    cancellation all come back as {!type-result} values. *)

val run : t -> request -> result
(** [submit] + [wait], with admission rejections folded into a result
    whose [s_reason] is {!S_fault}[ ("rejected: " ^ reason)]. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop admitting and shut the worker pool down. With [~drain:true]
    (default) every admitted session runs to completion first; with
    [~drain:false] queued-but-unstarted sessions complete immediately as
    {!S_cancelled} (their tenant fuel reservation is refunded in full).
    Idempotent. *)

type stats = {
  admitted : int;
  rejected : int;
  completed : int;
  quota_kills : int;
  cancelled : int;
  registry : Registry.stats;
  tenant_fuel_left : (string * int) list;  (** sorted by tenant name *)
}

val stats : t -> stats
