(* Single-flight snapshot registry. One mutex + condition; slots move
   [absent -> Building -> Ready] (or back to absent on abandon), and the
   condition is broadcast on every transition out of [Building]. *)

type slot = Building | Ready of Persist.Snapshot.t

type admission = Warm of Persist.Snapshot.t | Build

type t = {
  m : Mutex.t;
  changed : Condition.t;
  slots : (Persist.Snapshot.fingerprint, slot) Hashtbl.t;
  dir : string option;
  mutable warm_hits : int;
  mutable cold_builds : int;
  mutable build_waits : int;
  mutable abandons : int;
  mutable disk_loads : int;
}

type stats = {
  warm_hits : int;
  cold_builds : int;
  build_waits : int;
  abandons : int;
  disk_loads : int;
  ready : int;
}

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  {
    m = Mutex.create ();
    changed = Condition.create ();
    slots = Hashtbl.create 16;
    dir;
    warm_hits = 0;
    cold_builds = 0;
    build_waits = 0;
    abandons = 0;
    disk_loads = 0;
  }

(* Spill filename: image digest (already hex MD5) plus a digest of every
   other fingerprint field, so distinct configurations of one image never
   collide and the name stays filesystem-safe. *)
let spill_name (fp : Persist.Snapshot.fingerprint) =
  let cfg_tag =
    Printf.sprintf "%s/%s/%s/%s/%d/%d/%d/%b/%b/%d/%d/%b" fp.fp_backend
      fp.fp_isa fp.fp_chaining fp.fp_engine fp.fp_n_accs fp.fp_hot_threshold
      fp.fp_max_superblock fp.fp_stop_at_translated fp.fp_fuse_mem
      fp.fp_region_threshold fp.fp_region_max_slots fp.fp_superops
  in
  Printf.sprintf "%s-%s.snap" fp.fp_image_digest
    (Digest.to_hex (Digest.string cfg_tag))

(* Called under [t.m]. A stale or corrupt spill file is treated as a
   miss (the caller builds and re-publishes over it), never an error. *)
let try_disk_load t fp =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = Filename.concat dir (spill_name fp) in
    if not (Sys.file_exists path) then None
    else
      match Persist.Snapshot.read_file path with
      | snap when snap.Persist.Snapshot.fingerprint = fp -> Some snap
      | _ | (exception Persist.Snapshot.Error _) | (exception Sys_error _)
        -> None)

let acquire t fp =
  Mutex.lock t.m;
  let waited = ref false in
  let rec go () =
    match Hashtbl.find_opt t.slots fp with
    | Some (Ready snap) ->
      t.warm_hits <- t.warm_hits + 1;
      if !waited then t.build_waits <- t.build_waits + 1;
      Mutex.unlock t.m;
      Warm snap
    | Some Building ->
      waited := true;
      Condition.wait t.changed t.m;
      go ()
    | None -> (
      match try_disk_load t fp with
      | Some snap ->
        Hashtbl.replace t.slots fp (Ready snap);
        t.disk_loads <- t.disk_loads + 1;
        t.warm_hits <- t.warm_hits + 1;
        if !waited then t.build_waits <- t.build_waits + 1;
        Condition.broadcast t.changed;
        Mutex.unlock t.m;
        Warm snap
      | None ->
        Hashtbl.replace t.slots fp Building;
        t.cold_builds <- t.cold_builds + 1;
        if !waited then t.build_waits <- t.build_waits + 1;
        Mutex.unlock t.m;
        Build)
  in
  go ()

let publish t (snap : Persist.Snapshot.t) =
  let fp = snap.Persist.Snapshot.fingerprint in
  Mutex.lock t.m;
  let fresh =
    match Hashtbl.find_opt t.slots fp with
    | Some (Ready _) -> false (* first publish wins *)
    | Some Building | None ->
      Hashtbl.replace t.slots fp (Ready snap);
      true
  in
  Condition.broadcast t.changed;
  Mutex.unlock t.m;
  if fresh then
    match t.dir with
    | None -> ()
    | Some dir -> (
      try Persist.Snapshot.write_file (Filename.concat dir (spill_name fp)) snap
      with Sys_error _ -> () (* spill is best-effort; memory copy stands *))

let abandon t fp =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.slots fp with
  | Some Building ->
    Hashtbl.remove t.slots fp;
    t.abandons <- t.abandons + 1
  | Some (Ready _) | None -> ());
  Condition.broadcast t.changed;
  Mutex.unlock t.m

let stats t =
  Mutex.lock t.m;
  let ready =
    Hashtbl.fold
      (fun _ slot n -> match slot with Ready _ -> n + 1 | Building -> n)
      t.slots 0
  in
  let s =
    {
      warm_hits = t.warm_hits;
      cold_builds = t.cold_builds;
      build_waits = t.build_waits;
      abandons = t.abandons;
      disk_loads = t.disk_loads;
      ready;
    }
  in
  Mutex.unlock t.m;
  s
