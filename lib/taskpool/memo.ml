(* Single-flight memo table: one mutex guards the key->cell map; each cell
   has its own mutex/condition so waiters of one flight don't contend with
   lookups of other keys. *)

type 'v state =
  | Running
  | Done of 'v
  | Failed of exn * Printexc.raw_backtrace

type 'v cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable state : 'v state;
}

type ('k, 'v) t = {
  tm : Mutex.t;
  tbl : ('k, 'v cell) Hashtbl.t;
}

let create n = { tm = Mutex.create (); tbl = Hashtbl.create n }

let wait cell =
  Mutex.lock cell.cm;
  while cell.state = Running do
    Condition.wait cell.cc cell.cm
  done;
  let st = cell.state in
  Mutex.unlock cell.cm;
  match st with
  | Running -> assert false
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let settle cell st =
  Mutex.lock cell.cm;
  cell.state <- st;
  Condition.broadcast cell.cc;
  Mutex.unlock cell.cm

let find_or_compute t key f =
  Mutex.lock t.tm;
  match Hashtbl.find_opt t.tbl key with
  | Some cell ->
    Mutex.unlock t.tm;
    wait cell
  | None ->
    let cell =
      { cm = Mutex.create (); cc = Condition.create (); state = Running }
    in
    Hashtbl.replace t.tbl key cell;
    Mutex.unlock t.tm;
    (match f () with
    | v ->
      settle cell (Done v);
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (* waiters of this flight share the failure, but the key is removed
         so a later request retries rather than caching the error *)
      Mutex.lock t.tm;
      Hashtbl.remove t.tbl key;
      Mutex.unlock t.tm;
      settle cell (Failed (e, bt));
      Printexc.raise_with_backtrace e bt)

let mem t key =
  Mutex.lock t.tm;
  let r = Hashtbl.mem t.tbl key in
  Mutex.unlock t.tm;
  r

let length t =
  Mutex.lock t.tm;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.tm;
  n

let clear t =
  Mutex.lock t.tm;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.tm
