(** Fixed-size worker pool over stdlib [Domain]s.

    Jobs submitted with [submit] are executed by [size t] worker domains in
    FIFO order; [await] blocks until the job's result (or exception) is
    available. Exceptions raised by a job are re-raised, with their
    original backtrace, in every domain that awaits its future.

    A pool of size 1 still runs jobs on a single dedicated worker domain,
    so the execution environment is identical at every [--jobs] setting;
    determinism of results must come from the jobs themselves (all
    simulation runs here are deterministic and share no mutable state). *)

type t

type 'a future

exception Cancelled
(** Raised by [await] on a future whose job was rejected — still queued,
    never started — when the pool was shut down with [~reject_queued:true]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [max 1 jobs] worker domains.
    Default: [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job. Raises [Invalid_argument] on a shut-down pool. *)

val await : 'a future -> 'a
(** Block until the job completes; returns its value or re-raises its
    exception. May be called from any domain, any number of times. *)

val shutdown : ?reject_queued:bool -> t -> unit
(** Stop the pool and join the workers. Idempotent.

    By default every queued job still runs to completion before the
    workers exit (drain semantics). With [~reject_queued:true], jobs that
    have not yet been picked up by a worker are removed from the queue and
    their futures fail with {!Cancelled}; jobs already running always
    finish. Either way, every future ever returned by [submit] completes —
    no awaiter is left hanging. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    also on exception. *)
