(* Fixed-size worker pool over stdlib Domains.

   One mutex/condition pair guards the job queue; each future carries its
   own pair so awaiting never contends with submission. Workers block on
   [nonempty] until a job or shutdown arrives; [shutdown] lets the queue
   drain before joining, so every submitted future completes — or, with
   [~reject_queued:true], fills every queued-but-unstarted future with
   [Cancelled] before joining, so a drain path that must stop *now* still
   leaves no awaiter hanging. *)

exception Cancelled

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

(* A queued job knows how to run and how to be rejected without running:
   [cancel] fills the job's future with [Cancelled], which is the only
   way a submitted future can complete without its closure executing. *)
type job = { run : unit -> unit; cancel : unit -> unit }

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let fill fut st =
  Mutex.lock fut.fm;
  fut.state <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let await fut =
  Mutex.lock fut.fm;
  while fut.state = Pending do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with
  | Pending -> assert false
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping, queue drained *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    job.run ();
    worker_loop t
  end

let create ?jobs () =
  let n =
    max 1 (match jobs with Some j -> j | None -> Domain.recommended_domain_count ())
  in
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = Array.length t.workers

let submit t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  let run () =
    match f () with
    | v -> fill fut (Done v)
    | exception e -> fill fut (Failed (e, Printexc.get_raw_backtrace ()))
  in
  let cancel () = fill fut (Failed (Cancelled, Printexc.get_callstack 0)) in
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push { run; cancel } t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.m;
  fut

let shutdown ?(reject_queued = false) t =
  Mutex.lock t.m;
  let was_stopping = t.stopping in
  t.stopping <- true;
  (* With [reject_queued], unstarted jobs are popped under the pool lock —
     before any worker can race for them — and their futures are filled
     outside it (each future has its own lock). In-flight jobs always run
     to completion; the deterministic split is started/not-started. *)
  let rejected = ref [] in
  if reject_queued then
    while not (Queue.is_empty t.queue) do
      rejected := Queue.pop t.queue :: !rejected
    done;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  List.iter (fun job -> job.cancel ()) (List.rev !rejected);
  if not was_stopping then Array.iter Domain.join t.workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
