(** Domain-safe single-flight memoisation table.

    [find_or_compute t key f] returns the cached value for [key], or runs
    [f ()] exactly once even when many domains request the same key
    concurrently: the first requester computes while the others block on
    the entry's condition variable and receive the same value. If [f]
    raises, every domain waiting on that flight receives the exception and
    the key is removed, so a later request retries the computation. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create n] — [n] is the initial size hint. Keys are compared with
    structural equality; do not use keys containing functional values. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val mem : ('k, 'v) t -> 'k -> bool
(** Whether [key] has a completed or in-flight entry. *)

val length : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
(** Drop all completed entries (for tests). Must not be called while
    computations are in flight. *)
