(* Workload registry: twelve SPEC CPU2000 INT analogues plus the
   quantized NN inference kernels from [workloads_nn].

   Each workload is MiniC source parameterised by [scale] (default 1 sizes
   a run at a few hundred thousand dynamic V-ISA instructions — small
   enough that the full evaluation sweep runs in minutes, large enough
   that every hot region is translated and re-executed many times).
   [program] compiles and caches the Alpha image; [expected_output] runs
   the reference interpreter once so integration tests can compare every
   execution mode against it. *)

type t = {
  name : string;
  description : string;
  source : scale:int -> string;
}

let all : t list =
  [
    { name = Wl_gzip.name; description = Wl_gzip.description; source = Wl_gzip.source };
    { name = Wl_vpr.name; description = Wl_vpr.description; source = Wl_vpr.source };
    { name = Wl_gcc.name; description = Wl_gcc.description; source = Wl_gcc.source };
    { name = Wl_mcf.name; description = Wl_mcf.description; source = Wl_mcf.source };
    { name = Wl_crafty.name; description = Wl_crafty.description; source = Wl_crafty.source };
    { name = Wl_parser.name; description = Wl_parser.description; source = Wl_parser.source };
    { name = Wl_eon.name; description = Wl_eon.description; source = Wl_eon.source };
    { name = Wl_perlbmk.name; description = Wl_perlbmk.description; source = Wl_perlbmk.source };
    { name = Wl_gap.name; description = Wl_gap.description; source = Wl_gap.source };
    { name = Wl_vortex.name; description = Wl_vortex.description; source = Wl_vortex.source };
    { name = Wl_bzip2.name; description = Wl_bzip2.description; source = Wl_bzip2.source };
    { name = Wl_twolf.name; description = Wl_twolf.description; source = Wl_twolf.source };
    { name = Workloads_nn.Wl_nn_mlp.name;
      description = Workloads_nn.Wl_nn_mlp.description;
      source = Workloads_nn.Wl_nn_mlp.source };
    { name = Workloads_nn.Wl_nn_tiled.name;
      description = Workloads_nn.Wl_nn_tiled.description;
      source = Workloads_nn.Wl_nn_tiled.source };
  ]

let find name = List.find_opt (fun w -> w.name = name) all

let cache : (string * int, Alpha.Program.t) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

(* Compile (and memoise) the workload at the given scale. The cache is
   shared by every harness worker domain, so lookup and compile run under
   a mutex; compilation is cheap next to a simulation run, and holding the
   lock across it keeps the compile single-flight. The compiled program
   image itself is immutable (each interpreter/VM maps its own memory), so
   sharing the cached value across domains is safe. *)
let program ?(scale = 1) w =
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match Hashtbl.find_opt cache (w.name, scale) with
      | Some p -> p
      | None ->
        let p = Minic.compile (w.source ~scale) in
        Hashtbl.replace cache (w.name, scale) p;
        p)

(* Reference run under the plain interpreter: exit code, output, dynamic
   V-ISA instruction count. *)
let reference ?(scale = 1) ?(fuel = 200_000_000) w =
  let st = Alpha.Interp.create (program ~scale w) in
  match Alpha.Interp.run ~fuel st with
  | Alpha.Interp.Exit code -> (code, Alpha.Interp.output st, st.icount)
  | Fault tr ->
    failwith
      (Format.asprintf "workload %s faulted: %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (Printf.sprintf "workload %s: out of fuel" w.name)
