(** The versioned export envelope shared by every machine-readable
    artifact this repo emits: the telemetry JSON ([--telemetry-json]),
    the throughput baseline ([BENCH_exec.json]) and the harness timing
    record ([BENCH_harness.json]).

    Each document is an object whose first fields are the envelope:

    {v
    "schema":  "<family>/<version>",   e.g. "ildp-dbt-exec-bench/2"
    "envelope": 1,                     envelope format itself
    "git_rev": "<commit or unknown>",
    "date":    "YYYY-MM-DDTHH:MM:SSZ" (UTC),
    "host":    "<hostname>",
    "jobs":    <worker domains used>
    v}

    followed by schema-specific payload fields. The CI regression
    checker ([bench --check]) dispatches on ["schema"], so any consumer
    can parse any of the three files with the same preamble code. *)

val envelope_version : int

val git_rev : unit -> string
(** [GITHUB_SHA] when set (CI), else [git rev-parse --short HEAD], else
    ["unknown"]. Never raises. *)

val host : unit -> string
val date : unit -> string
(** Current UTC time, ISO-8601. *)

val fields : schema:string -> jobs:int -> (string * Json.t) list
(** The envelope fields, in canonical order. *)

val wrap : schema:string -> jobs:int -> (string * Json.t) list -> Json.t
(** [wrap ~schema ~jobs payload] is an object of envelope fields followed
    by [payload]. *)

val schema_of : Json.t -> string option
(** The ["schema"] field of a parsed document (old pre-envelope
    documents have it too). *)

val telemetry_schema : string

val write_telemetry : string -> jobs:int -> Telemetry.snapshot -> unit
(** Write one telemetry document: envelope + {!Telemetry.to_json} body. *)
