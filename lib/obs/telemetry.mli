(** Unified telemetry: a process-wide registry of named monotonic
    counters, fixed-bucket histograms and wall-clock span timers.

    Design constraints, in order:

    - {b compiled-out-cheap when disabled.} Every observation site first
      reads one [bool ref]; when telemetry is off (the default) the only
      cost at an instrumentation point is that load-and-branch, no
      allocation, no time syscalls, and the simulation results are
      byte-identical to an uninstrumented build;
    - {b domain-local, merge-on-collect.} Each domain accumulates into
      its own plain [int array] slab (registered once, on the domain's
      first observation), so worker domains of the experiment harness
      never contend; {!collect} merges every slab under one lock. Sums
      merge by addition, high-water marks by [max];
    - {b stable identity.} Metrics are registered by name, at module
      initialisation time, and handles are plain [int] indices. The same
      name always yields the same handle, so the exported name set is
      independent of which code paths actually ran.

    The VM's hand-rolled per-run statistics structs remain the source of
    truth on the hot paths (they are what the lockstep oracle's exact
    accounting validates); {!bump} folds them into the registry at
    run-publish time, so the telemetry export inherits those invariants
    rather than duplicating per-instruction work. *)

val enabled : bool ref
(** The master switch (also exposed as [Core.Config.telemetry]). Flip it
    before the work you want observed; observation sites read it on
    every event. *)

val on : unit -> bool
val set_enabled : bool -> unit

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Register (or look up) a monotonic sum counter. *)

val max_gauge : string -> counter
(** Register a high-water-mark metric: {!set_max} keeps the maximum
    observed value, and slabs merge by [max] rather than [+]. *)

val bump : counter -> int -> unit
(** Add [n] to the current domain's slab. No-op while disabled. *)

val set_max : counter -> int -> unit
(** Raise the high-water mark to at least [v]. No-op while disabled. *)

(** {2 Histograms} *)

type histogram

val histogram : string -> bounds:int array -> histogram
(** Fixed buckets: a sample [v] lands in the first bucket whose bound is
    [>= v], or in the overflow bucket past the last bound. [bounds] must
    be strictly increasing. Registration also creates a companion
    ["<name>.saturated"] sum counter, bumped once per overflow-bucket
    sample, so top-bucket clipping is visible in the counter export
    instead of silently flattening the distribution. *)

val observe : histogram -> int -> unit

(** {2 Spans} *)

type span

val span : string -> span

val with_span : span -> (unit -> 'a) -> 'a
(** Time [f]'s wall clock into the span (count + total seconds).
    Exception-safe; when disabled it is exactly [f ()]. *)

(** {2 Collection} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name; merged over slabs *)
  histograms : (string * int array * int array) list;
      (** (name, bucket bounds, counts); counts has one overflow bucket *)
  spans : (string * int * float) list;  (** (name, count, total seconds) *)
}

val collect : unit -> snapshot
(** Merge every domain's slab. Safe to call while workers run, but the
    caller sees a consistent snapshot only once they are quiescent. *)

val reset : unit -> unit
(** Zero every slab (metric registrations are kept). *)

val find : snapshot -> string -> int option
(** Counter value by name. *)

val to_json : snapshot -> Json.t
(** [{ "counters": {..}, "histograms": {..}, "spans": {..} }] — the body
    of the telemetry export; {!Envelope} wraps it with run metadata. *)
