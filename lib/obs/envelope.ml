let envelope_version = 1

let run_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with _ -> None

let git_rev () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
    match run_line "git rev-parse --short HEAD 2>/dev/null" with
    | Some rev -> rev
    | None -> "unknown")

let host () = try Unix.gethostname () with _ -> "unknown"

let date () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.tm_year + 1900)
    (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec

let fields ~schema ~jobs =
  [
    ("schema", Json.String schema);
    ("envelope", Json.Int envelope_version);
    ("git_rev", Json.String (git_rev ()));
    ("date", Json.String (date ()));
    ("host", Json.String (host ()));
    ("jobs", Json.Int jobs);
  ]

let wrap ~schema ~jobs payload = Json.Obj (fields ~schema ~jobs @ payload)

let schema_of doc = Option.bind (Json.member "schema" doc) Json.to_str

let telemetry_schema = "ildp-dbt-telemetry/1"

let write_telemetry path ~jobs snapshot =
  let body =
    match Telemetry.to_json snapshot with Json.Obj f -> f | _ -> assert false
  in
  Json.write_file path (wrap ~schema:telemetry_schema ~jobs body)
