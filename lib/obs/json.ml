type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- parsing ---------- *)

exception Err of int * string

let err pos msg = raise (Err (pos, msg))

type st = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> err st.pos (Printf.sprintf "expected %C" c)

let lit st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else err st.pos ("expected " ^ word)

let parse_string_lit st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then err st.pos "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if st.pos >= String.length st.s then err st.pos "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        if st.pos + 4 > String.length st.s then err st.pos "short \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> err (st.pos - 4) "bad \\u escape"
        in
        (* UTF-8 encode the BMP code point (no surrogate pairing: the
           writers below only ever emit ASCII escapes) *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> err (st.pos - 1) "bad escape");
      go ())
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  let is_float =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
  in
  if is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> err start "bad number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      (* integer too wide for OCaml's int: degrade to float *)
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> err start "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> err st.pos "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws st;
        let k = parse_string_lit st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> expect st ','; go ()
        | _ -> expect st '}'
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> expect st ','; go ()
        | _ -> expect st ']'
      in
      go ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_lit st)
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some _ -> parse_number st

let parse_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
    else Ok v
  | exception Err (pos, msg) ->
    Error (Printf.sprintf "parse error at byte %d: %s" pos msg)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse_string s

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        emit buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        escape buf k;
        Buffer.add_string buf ": ";
        emit buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_buffer buf v =
  emit buf 0 v;
  Buffer.add_char buf '\n'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* ---------- accessors ---------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
