(** Minimal JSON tree, parser and printer.

    The telemetry export, the benchmark baselines ([BENCH_exec.json],
    [BENCH_harness.json]) and the CI regression checker ([--check]) all
    speak JSON; the environment deliberately has no third-party JSON
    dependency, so this is the one shared implementation. It covers the
    full JSON grammar except that numbers without a fraction or exponent
    are parsed as OCaml [int]s (every schema we read fits). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse_string : string -> (t, string) result
(** Parse a complete JSON document; the error string carries a byte
    offset. Trailing whitespace is allowed, trailing garbage is not. *)

val parse_file : string -> (t, string) result

val to_buffer : Buffer.t -> t -> unit
(** Pretty-print with two-space indentation and a trailing newline, the
    layout of the committed baseline files. *)

val to_string : t -> string
val write_file : string -> t -> unit

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts [Int] too (JSON does not distinguish). *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
