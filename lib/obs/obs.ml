(* Library root: the registry API at [Obs.*] plus the serialization
   companions at [Obs.Json] / [Obs.Envelope]. *)

include Telemetry
module Json = Json
module Envelope = Envelope
