(* See obs.mli for the design constraints. The implementation keeps three
   kinds of metric in one registry:

   - the name tables (counter/histogram/span names, counter merge kinds,
     histogram bounds) are global, append-only, and mutex-protected; they
     are only written at module-initialisation time of the instrumented
     libraries, before any worker domain exists;
   - the observations live in per-domain slabs (plain arrays) reached
     through Domain.DLS, so the hot path after the enabled check is an
     array store with no synchronisation;
   - [collect]/[reset] take the lock, walk every slab ever created
     (slabs of finished domains are kept — their counts must survive the
     Pool's worker shutdown), and merge. *)

let enabled = ref false
let on () = !enabled
let set_enabled b = enabled := b

type counter = int
type histogram = int
type span = int

type kind = Sum | Max

let mu = Mutex.create ()

(* name tables (all guarded by [mu]) *)
let c_names : (string, int) Hashtbl.t = Hashtbl.create 64
let c_list : (string * kind) array ref = ref [||] (* index = handle *)
let h_names : (string, int) Hashtbl.t = Hashtbl.create 16

(* name, bucket bounds, and the id of the companion saturation counter
   (bumped whenever a sample lands in the overflow bucket, so clipping at
   the top bound is visible in the counter export rather than silent). *)
let h_list : (string * int array * int) array ref = ref [||]
let s_names : (string, int) Hashtbl.t = Hashtbl.create 16
let s_list : string array ref = ref [||]

type slab = {
  mutable c : int array;
  mutable h : int array array;
  mutable sp_n : int array;
  mutable sp_s : float array;
}

let slabs : slab list ref = ref []

let fresh_slab () =
  let s = { c = [||]; h = [||]; sp_n = [||]; sp_s = [||] } in
  Mutex.lock mu;
  slabs := s :: !slabs;
  Mutex.unlock mu;
  s

let slab_key = Domain.DLS.new_key fresh_slab
let my_slab () = Domain.DLS.get slab_key

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let append arr x =
  let n = Array.length !arr in
  let grown = Array.make (n + 1) x in
  Array.blit !arr 0 grown 0 n;
  arr := grown;
  n

let register_counter kind name =
  locked (fun () ->
      match Hashtbl.find_opt c_names name with
      | Some id -> id
      | None ->
        let id = append c_list (name, kind) in
        Hashtbl.replace c_names name id;
        id)

let counter name = register_counter Sum name
let max_gauge name = register_counter Max name

let histogram name ~bounds =
  let ok =
    let r = ref true in
    Array.iteri (fun i b -> if i > 0 && b <= bounds.(i - 1) then r := false)
      bounds;
    !r
  in
  if not ok then invalid_arg "Obs.histogram: bounds must be increasing";
  (* registered before taking the lock below: [register_counter] locks
     [mu] itself and the mutex is not reentrant *)
  let sat = register_counter Sum (name ^ ".saturated") in
  locked (fun () ->
      match Hashtbl.find_opt h_names name with
      | Some id -> id
      | None ->
        let id = append h_list (name, Array.copy bounds, sat) in
        Hashtbl.replace h_names name id;
        id)

let span name =
  locked (fun () ->
      match Hashtbl.find_opt s_names name with
      | Some id -> id
      | None ->
        let id = append s_list name in
        Hashtbl.replace s_names name id;
        id)

(* Slab growth is per-domain and unsynchronised: only the owning domain
   writes its slab, and [collect] under the lock reads whichever array
   version it sees (counts race benignly by at most the event in flight;
   callers collect at quiescence). *)
let grow_int a n =
  let g = Array.make n 0 in
  Array.blit a 0 g 0 (Array.length a);
  g

let ensure_c s id =
  if id >= Array.length s.c then
    s.c <- grow_int s.c (max 64 (2 * (id + 1)))

let bump id n =
  if !enabled then begin
    let s = my_slab () in
    ensure_c s id;
    s.c.(id) <- s.c.(id) + n
  end

let set_max id v =
  if !enabled then begin
    let s = my_slab () in
    ensure_c s id;
    if v > s.c.(id) then s.c.(id) <- v
  end

let observe id v =
  if !enabled then begin
    let s = my_slab () in
    if id >= Array.length s.h then begin
      let n = max 16 (2 * (id + 1)) in
      let g = Array.make n [||] in
      Array.blit s.h 0 g 0 (Array.length s.h);
      s.h <- g
    end;
    (* the name tables are append-only and fully populated at module-init
       time, so this unlocked read sees a complete entry *)
    let _, bounds, sat = !h_list.(id) in
    if Array.length s.h.(id) = 0 then
      s.h.(id) <- Array.make (Array.length bounds + 1) 0;
    let b = ref 0 in
    while !b < Array.length bounds && bounds.(!b) < v do
      incr b
    done;
    s.h.(id).(!b) <- s.h.(id).(!b) + 1;
    if !b = Array.length bounds then begin
      ensure_c s sat;
      s.c.(sat) <- s.c.(sat) + 1
    end
  end

let with_span id f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        let s = my_slab () in
        if id >= Array.length s.sp_n then begin
          let n = max 16 (2 * (id + 1)) in
          s.sp_n <- grow_int s.sp_n n;
          let g = Array.make n 0.0 in
          Array.blit s.sp_s 0 g 0 (Array.length s.sp_s);
          s.sp_s <- g
        end;
        s.sp_n.(id) <- s.sp_n.(id) + 1;
        s.sp_s.(id) <- s.sp_s.(id) +. dt)
      f
  end

(* ---------- collection ---------- *)

type snapshot = {
  counters : (string * int) list;
  histograms : (string * int array * int array) list;
  spans : (string * int * float) list;
}

let collect () =
  locked (fun () ->
      let cl = !c_list and hl = !h_list and sl = !s_list in
      let cs = Array.make (Array.length cl) 0 in
      let hs =
        Array.map (fun (_, b, _) -> Array.make (Array.length b + 1) 0) hl
      in
      let sn = Array.make (Array.length sl) 0 in
      let ss = Array.make (Array.length sl) 0.0 in
      List.iter
        (fun slab ->
          Array.iteri
            (fun id (_, kind) ->
              if id < Array.length slab.c then
                match kind with
                | Sum -> cs.(id) <- cs.(id) + slab.c.(id)
                | Max -> cs.(id) <- max cs.(id) slab.c.(id))
            cl;
          Array.iteri
            (fun id buckets ->
              if id < Array.length slab.h && Array.length slab.h.(id) > 0
              then
                Array.iteri
                  (fun b n -> buckets.(b) <- buckets.(b) + n)
                  slab.h.(id))
            hs;
          Array.iteri
            (fun id _ ->
              if id < Array.length slab.sp_n then begin
                sn.(id) <- sn.(id) + slab.sp_n.(id);
                ss.(id) <- ss.(id) +. slab.sp_s.(id)
              end)
            sl)
        !slabs;
      let sort_by_name l = List.sort compare l in
      {
        counters =
          sort_by_name
            (Array.to_list (Array.mapi (fun i (n, _) -> (n, cs.(i))) cl));
        histograms =
          sort_by_name
            (Array.to_list
               (Array.mapi (fun i (n, b, _) -> (n, Array.copy b, hs.(i))) hl));
        spans =
          sort_by_name
            (Array.to_list (Array.mapi (fun i n -> (n, sn.(i), ss.(i))) sl));
      })

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.c 0 (Array.length s.c) 0;
          Array.iter (fun b -> Array.fill b 0 (Array.length b) 0) s.h;
          Array.fill s.sp_n 0 (Array.length s.sp_n) 0;
          Array.fill s.sp_s 0 (Array.length s.sp_s) 0.0)
        !slabs)

let find snap name = List.assoc_opt name snap.counters

let to_json snap =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) snap.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, bounds, counts) ->
               ( n,
                 Json.Obj
                   [
                     ( "bounds",
                       Json.List
                         (Array.to_list (Array.map (fun b -> Json.Int b) bounds))
                     );
                     ( "counts",
                       Json.List
                         (Array.to_list (Array.map (fun c -> Json.Int c) counts))
                     );
                   ] ))
             snap.histograms) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (n, count, secs) ->
               ( n,
                 Json.Obj
                   [ ("count", Json.Int count); ("seconds", Json.Float secs) ]
               ))
             snap.spans) );
    ]
