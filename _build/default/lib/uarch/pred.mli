(** Front-end prediction bundle shared by both timing models: g-share
    direction predictor, BTB, conventional RAS, and the dual-address-RAS
    outcomes carried on events by the functional simulator. *)

type t = {
  gshare : Machine.Gshare.t;
  btb : Machine.Btb.t;
  ras : Machine.Ras.t;
  use_ras : bool;
      (** when false, returns fall back to the BTB (Fig. 6's no-RAS
          configurations) *)
  mutable control : int;  (** control-transfer instructions seen *)
  mutable mispredicts : int;
  mutable misfetches : int;
}

val create : ?use_ras:bool -> unit -> t

type outcome =
  [ `Seq  (** no transfer, or correctly predicted not-taken *)
  | `Taken_ok  (** taken, direction and target both predicted *)
  | `Misfetch
    (** direction right but the target was not fetchable (BTB miss on a
        direct transfer): refetch after the redirect latency *)
  | `Mispredict
    (** direction or target wrong: restart after the instruction resolves *)
  ]

val classify : t -> Machine.Ev.t -> outcome
(** Classify (and train on) one committed control event. *)

val mpki : t -> insns:int -> float
(** Mispredictions per 1000 committed instructions (Fig. 4's metric). *)
