lib/uarch/ooo.mli: Machine Pred Slots
