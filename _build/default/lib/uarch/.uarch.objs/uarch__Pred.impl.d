lib/uarch/pred.ml: Btb Ev Gshare Machine Ras
