lib/uarch/ildp.ml: Array Cache Ev Machine Memhier Pred Slots
