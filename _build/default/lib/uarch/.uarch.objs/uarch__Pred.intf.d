lib/uarch/pred.mli: Machine
