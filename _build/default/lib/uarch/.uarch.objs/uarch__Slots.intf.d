lib/uarch/slots.mli:
