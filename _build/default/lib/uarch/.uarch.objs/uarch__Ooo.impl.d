lib/uarch/ooo.ml: Array Cache Ev Machine Memhier Pred Slots
