lib/uarch/slots.ml: Array
