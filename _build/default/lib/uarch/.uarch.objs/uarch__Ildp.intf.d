lib/uarch/ildp.mli: Machine Pred Slots
