(* Per-cycle resource-slot booking.

   The trace-driven pipeline models book bandwidth-limited resources (issue
   ports, commit ports) by finding the first cycle at or after a request
   with a free slot. Bookings are always within a bounded window of the
   advancing commit horizon (at most ROB-size instructions times the worst
   memory latency), far smaller than the ring, so stale entries are
   harmlessly overwritten. *)

type t = {
  cyc : int array; (* cycle owning this ring entry *)
  cnt : int array; (* slots used in that cycle *)
  mask : int;
  width : int;
}

let window_bits = 17

let create ~width =
  let n = 1 lsl window_bits in
  { cyc = Array.make n (-1); cnt = Array.make n 0; mask = n - 1; width }

(* Book one slot at the first cycle >= [c] with spare capacity; returns the
   booked cycle. *)
let rec book t c =
  let i = c land t.mask in
  if t.cyc.(i) <> c then begin
    t.cyc.(i) <- c;
    t.cnt.(i) <- 1;
    c
  end
  else if t.cnt.(i) < t.width then begin
    t.cnt.(i) <- t.cnt.(i) + 1;
    c
  end
  else book t (c + 1)
