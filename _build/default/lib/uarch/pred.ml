open Machine

(* Front-end prediction bundle shared by both timing models: g-share
   direction predictor, BTB, conventional RAS, and the dual-address RAS
   outcome carried on events by the functional simulator (the functional
   and timing dual-RAS behaviours are identical by construction: both pop
   the same stream).

   Each committed control event is classified into:
   - [`Seq]        no transfer (or correctly predicted not-taken)
   - [`Taken_ok]   taken, direction and target both predicted
   - [`Misfetch]   direction right but the target was not fetchable (BTB
                   miss/stale): the front end refetches after the redirect
                   latency
   - [`Mispredict] direction or target wrong: the front end restarts after
                   the instruction resolves *)

type t = {
  gshare : Gshare.t;
  btb : Btb.t;
  ras : Ras.t;
  use_ras : bool; (* false: returns fall back to the BTB (Fig. 6 no-RAS) *)
  mutable control : int; (* control-transfer instructions seen *)
  mutable mispredicts : int;
  mutable misfetches : int;
}

let create ?(use_ras = true) () =
  {
    gshare = Gshare.create ();
    btb = Btb.create ();
    ras = Ras.create ();
    use_ras;
    control = 0;
    mispredicts = 0;
    misfetches = 0;
  }

type outcome = [ `Seq | `Taken_ok | `Misfetch | `Mispredict ]

let btb_target_ok t (ev : Ev.t) =
  let hit = Btb.lookup t.btb ev.pc = Some ev.target in
  Btb.update t.btb ev.pc ~target:ev.target;
  hit

let classify t (ev : Ev.t) : outcome =
  match ev.pred with
  | Not_control -> `Seq
  | P_dras_call -> `Seq (* the push itself transfers nothing *)
  | P_cond ->
    t.control <- t.control + 1;
    let dir_ok = Gshare.predict_update t.gshare ev.pc ~taken:ev.taken in
    if not dir_ok then begin
      t.mispredicts <- t.mispredicts + 1;
      if ev.taken then Btb.update t.btb ev.pc ~target:ev.target;
      `Mispredict
    end
    else if not ev.taken then `Seq
    else if btb_target_ok t ev then `Taken_ok
    else begin
      t.misfetches <- t.misfetches + 1;
      `Misfetch
    end
  | P_direct ->
    t.control <- t.control + 1;
    if btb_target_ok t ev then `Taken_ok
    else begin
      t.misfetches <- t.misfetches + 1;
      `Misfetch
    end
  | P_indirect ->
    t.control <- t.control + 1;
    if btb_target_ok t ev then `Taken_ok
    else begin
      t.mispredicts <- t.mispredicts + 1;
      `Mispredict
    end
  | P_ras_call ->
    (* direct call: the decoder can compute the target, so a BTB miss only
       costs a misfetch *)
    t.control <- t.control + 1;
    Ras.push t.ras (ev.pc + ev.size);
    if btb_target_ok t ev then `Taken_ok
    else begin
      t.misfetches <- t.misfetches + 1;
      `Misfetch
    end
  | P_ras_call_ind ->
    t.control <- t.control + 1;
    Ras.push t.ras (ev.pc + ev.size);
    if btb_target_ok t ev then `Taken_ok
    else begin
      t.mispredicts <- t.mispredicts + 1;
      `Mispredict
    end
  | P_ras_ret when t.use_ras ->
    t.control <- t.control + 1;
    if Ras.pop t.ras = Some ev.target then `Taken_ok
    else begin
      t.mispredicts <- t.mispredicts + 1;
      `Mispredict
    end
  | P_ras_ret ->
    (* RAS disabled: predict the return through the BTB like any other
       register-indirect jump *)
    t.control <- t.control + 1;
    if btb_target_ok t ev then `Taken_ok
    else begin
      t.mispredicts <- t.mispredicts + 1;
      `Mispredict
    end
  | P_dras_ret hit ->
    t.control <- t.control + 1;
    if hit then `Taken_ok
    else begin
      t.mispredicts <- t.mispredicts + 1;
      `Mispredict
    end

(* Mispredictions per 1000 committed instructions (Fig. 4's metric). *)
let mpki t ~insns =
  if insns = 0 then 0.0
  else 1000.0 *. float_of_int t.mispredicts /. float_of_int insns
