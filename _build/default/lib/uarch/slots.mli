(** Per-cycle resource-slot booking for the trace-driven pipeline models
    (issue ports, commit ports): find the first cycle at or after a request
    with a free slot. Bookings stay within a bounded window of the
    advancing commit horizon, far smaller than the backing ring. *)

type t

val create : width:int -> t
val book : t -> int -> int
(** [book t c] books one slot at the first cycle [>= c] with spare
    capacity and returns that cycle. *)
