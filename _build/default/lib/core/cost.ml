(* Translation-overhead accounting (paper Section 4.2).

   The paper measured its C-language DBT with Atom on real Alpha hardware
   and reported ~1,125 Alpha instructions executed per translated
   instruction — noting that ~20% went into field-by-field copying of the
   high-level instruction structures into the translation cache, and that
   interpretation costs ~20 instructions per interpreted instruction.

   We cannot run Atom, so the translator is instrumented with an explicit
   work-unit counter where one unit models one host instruction. The
   per-phase constants below are calibrated to the cost structure the paper
   describes (analysis passes, emission with structure copying dominant,
   chaining bookkeeping); what the experiment then reproduces is the
   per-benchmark *relative* overhead shape and its order of magnitude.
   Wall-clock translation throughput of this OCaml implementation is
   measured separately by the Bechamel bench. *)

type t = {
  mutable translate_units : int;
  mutable interp_units : int;
  mutable translated_insns : int; (* V-ISA instructions translated *)
  mutable interp_insns : int; (* V-ISA instructions interpreted *)
}

let create () =
  {
    translate_units = 0;
    interp_units = 0;
    translated_insns = 0;
    interp_insns = 0;
  }

(* Units per interpreted V-ISA instruction: decode-dispatch interpreter
   (paper: "each interpretation takes about 20 instructions"). *)
let interp_step = 20

(* Analysis cost per node and per operand examined. *)
let usage_per_node = 45
let strand_per_node = 60

(* Emission cost per emitted I-ISA instruction: building the instruction and
   copying it "field by field" into the translation cache structure. *)
let emit_per_insn = 260

(* Chaining/exit bookkeeping per superblock exit point. *)
let chain_per_exit = 240

(* Fragment installation per instruction (cache bookkeeping, PEI table). *)
let install_per_insn = 110

(* Profiling counter maintenance per candidate lookup. *)
let profile_lookup = 30

let tick t n = t.translate_units <- t.translate_units + n

let tick_interp t n = t.interp_units <- t.interp_units + n

let per_translated_insn t =
  if t.translated_insns = 0 then 0.0
  else float_of_int t.translate_units /. float_of_int t.translated_insns
