lib/core/cost.ml:
