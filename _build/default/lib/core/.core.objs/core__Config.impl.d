lib/core/config.ml:
