lib/core/config.mli:
