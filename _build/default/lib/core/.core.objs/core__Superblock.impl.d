lib/core/superblock.ml: Alpha Array Format Hashtbl List
