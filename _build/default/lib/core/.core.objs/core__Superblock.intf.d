lib/core/superblock.mli: Alpha Format
