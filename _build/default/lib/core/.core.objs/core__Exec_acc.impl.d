lib/core/exec_acc.ml: Accisa Alpha Array Config Exitr Int64 Machine Option Tcache Translate
