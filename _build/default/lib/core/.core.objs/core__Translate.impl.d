lib/core/translate.ml: Accisa Alpha Array Config Cost Exitr Hashtbl Int64 List Machine Node Superblock Tcache Usage
