lib/core/exitr.mli:
