lib/core/tcache.ml: Accisa Alpha Array Hashtbl List Machine Option Usage
