lib/core/usage.mli: Node
