lib/core/usage.ml: Array Hashtbl List Node
