lib/core/exitr.ml:
