lib/core/node.ml: Accisa Alpha Array Int64 List Superblock
