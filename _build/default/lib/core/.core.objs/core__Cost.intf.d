lib/core/cost.mli:
