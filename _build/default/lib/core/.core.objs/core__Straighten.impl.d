lib/core/straighten.ml: Alpha Array Config Cost Exitr Hashtbl Int64 List Machine Superblock Tcache Translate
