lib/core/vm.ml: Alpha Config Cost Exec_acc Exec_straight Exitr Hashtbl Machine Option Straighten Superblock Tcache Translate
