lib/core/exec_straight.ml: Alpha Array Config Exitr Int64 Machine Option Straighten Tcache Translate
