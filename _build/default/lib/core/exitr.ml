(* Reasons translated code exits back to the VM runtime.

   Every [call-translator] instruction carries an exit id indexing a table
   of these records. *)

type reason =
  | R_branch of int
    (* control wants to continue at this (untranslated) V-address; the
       address is also a trace-start candidate ("exit targets of existing
       fragments", paper Section 3.1) *)
  | R_pal of int
    (* a CALL_PAL at this V-address: the VM executes it by interpretation *)
  | R_dispatch_miss
    (* the shared dispatch code missed its table: the dynamic target
       V-address is in the VM argument register *)
