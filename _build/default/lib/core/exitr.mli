(** Reasons translated code exits back to the VM runtime. Every
    call-translator instruction carries an exit id indexing a table of
    these. *)

type reason =
  | R_branch of int
      (** control continues at this (untranslated) V-address, which is also
          a trace-start candidate ("exit targets of existing fragments") *)
  | R_pal of int
      (** a CALL_PAL at this V-address: the VM executes it by
          interpretation *)
  | R_dispatch_miss
      (** the shared dispatch code missed its table; the dynamic target
          V-address is in the VM argument register *)
