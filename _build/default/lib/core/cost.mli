(** Translation-overhead accounting (paper Section 4.2).

    The paper measured its C-language DBT with Atom on real Alpha hardware
    (~1,125 instructions per translated instruction, ~20%% of it structure
    copying). We cannot run Atom, so the translator is instrumented with an
    explicit work-unit counter — one unit models one host instruction —
    with per-phase constants calibrated to the cost structure the paper
    describes. The experiment reproduces the per-benchmark {e relative}
    shape and the order of magnitude; real wall-clock throughput of this
    implementation is measured separately by the Bechamel bench. *)

type t = {
  mutable translate_units : int;
  mutable interp_units : int;
  mutable translated_insns : int;  (** V-ISA instructions translated *)
  mutable interp_insns : int;  (** V-ISA instructions interpreted *)
}

val create : unit -> t

val interp_step : int
(** Units per interpreted instruction (paper: "about 20 instructions"). *)

val usage_per_node : int
val strand_per_node : int
val emit_per_insn : int
val chain_per_exit : int
val install_per_insn : int
val profile_lookup : int

val tick : t -> int -> unit
val tick_interp : t -> int -> unit

val per_translated_insn : t -> float
(** Average work units per translated V-ISA instruction (Table 2 column). *)
