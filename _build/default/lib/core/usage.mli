(** Dependence and usage identification (paper Section 3.3, first phase).

    A forward scan resolves every node source to its in-block producing
    node and classifies every produced value by "globalness". The two
    [_global] variants of dead/local values are Fig. 7's "no user → global"
    and "local → global" bars: they cost an extra copy-to-GPR in the basic
    ISA and only an off-critical-path architected write in the modified
    ISA. Exit points for the save analysis are conditional-branch fragment
    exits (PEI recoverability is handled separately through accumulator
    maps and copy-before-overwrite). *)

type category =
  | Temp  (** decomposition temps (address calcs, cmov predicates) *)
  | No_user  (** dead before redefinition, no exit in between *)
  | Local  (** used once, not live at any exit point in between *)
  | No_user_global  (** dead, but live at an exit before redefinition *)
  | Local_global  (** used once, but live at an exit in between *)
  | Comm_global  (** used more than once before redefinition *)
  | Liveout_global  (** not redefined within the superblock *)

val category_name : category -> string

type def_info = {
  def_node : int;
  category : category;
  users : int list;  (** node ids reading this def, in program order *)
  save_needed : bool;  (** value must reach the architected GPR file *)
}

type t = {
  defs : def_info option array;  (** indexed by node id *)
  src_defs : int option array array;  (** [node].[src] → producing node *)
  live_in : bool array;  (** per architected register *)
}

val acc_linked : def_info -> bool
(** Is the def consumed through an accumulator by its (single) user?
    Values used more than once communicate through GPRs. *)

val needs_operational : def_info -> bool
(** Modified ISA: does this value need a latency-critical operational-GPR
    write (vs only the off-critical-path architected update)? *)

val analyze : Node.t array -> t
