(* Decomposition of superblock instructions into translation nodes.

   The translator works over a flat RTL-like node list in original program
   order (the DBT never reorders, paper Section 1.3):

   - memory instructions with a non-zero displacement split into an
     address-calculation node and an access node linked by a temp (the
     I-ISA's addressing modes perform no address computation, Section 2.1);
   - conditional moves split into two 2-source nodes linked by a
     predicate-carrying temp (the "temp" usage class of Section 3.3);
   - reads of r31 are normalised to the immediate 0;
   - LDA/LDAH become ALU nodes.

   Each node writes at most one value (an architected register or a temp)
   and reads at most two values, matching the I-ISA operand budget. *)

type value = Vreg of int | Vtmp of int | Vimm of int64

type dest = Dreg of int | Dtmp of int | Dnone

type br_kind =
  | B_cond of {
      cond : Alpha.Insn.cond;
      taken : bool; (* direction observed at formation time *)
      v_taken : int; (* V-address of the taken target *)
      v_fall : int; (* V-address of the fall-through *)
      ends : bool; (* block-ending backward taken branch *)
    }
  | B_uncond of { v_target : int } (* direct branch, no return address *)
  | B_call of { v_target : int; v_ret : int; ret_reg : int } (* BSR *)
  | B_jmp of { v_ret : (int * int) option; v_actual : int }
    (* JMP/JSR; [v_ret = Some (addr, reg)] for JSR. [v_actual] is the target
       observed at formation time — the software-prediction embed. *)
  | B_ret of { v_actual : int }

type kind =
  | K_op of Alpha.Insn.op3
  | K_cmov_test of Alpha.Insn.cond (* srcs: condition value, old dest *)
  | K_cmov_sel (* srcs: predicate temp, new value *)
  | K_load of Accisa.Insn.width * bool * int (* signed, displacement *)
  | K_store of Accisa.Insn.width * int (* srcs: value, address; displacement *)
  | K_br of br_kind (* src: condition / indirect target *)
  | K_pal of int

type t = {
  id : int;
  kind : kind;
  srcs : value array;
  dst : dest;
  v_pc : int; (* originating V-ISA instruction *)
  last_of_insn : bool; (* this node retires the V-ISA instruction *)
}

(* Can this node raise a precise V-ISA trap? (Memory accesses fault on
   unmapped/unaligned addresses; PAL enters the system.) *)
let is_pei t =
  match t.kind with K_load _ | K_store _ | K_pal _ -> true | _ -> false

(* Is this node a mid-block fragment exit at which architected GPR state
   must be materialised? Only conditional-branch exits count here: at a PEI
   the architected state may still live in accumulators, recovered through
   the PEI table's accumulator map (paper Section 2.2). *)
let is_exit_point t = match t.kind with K_br (B_cond _) -> true | _ -> false

let reg v = if v = 31 then Vimm 0L else Vreg v

let load_kind disp : Alpha.Insn.mem_op -> kind = function
  | Ldq -> K_load (W8, false, disp)
  | Ldl -> K_load (W4, true, disp)
  | Ldwu -> K_load (W2, false, disp)
  | Ldbu -> K_load (W1, false, disp)
  | _ -> invalid_arg "load_kind"

let store_width : Alpha.Insn.mem_op -> Accisa.Insn.width = function
  | Stq -> W8
  | Stl -> W4
  | Stw -> W2
  | Stb -> W1
  | _ -> invalid_arg "store_width"

(* Decompose one superblock into nodes. With [fuse_mem] (the Section 4.5
   option) memory displacements stay inside the access node instead of
   splitting into an address-calculation temp. *)
let decompose ?(fuse_mem = false) (sb : Superblock.t) : t array =
  let nodes = ref [] in
  let count = ref 0 in
  let tmps = ref 0 in
  let fresh_tmp () =
    incr tmps;
    !tmps - 1
  in
  let push ?(last = false) ~v_pc kind srcs dst =
    nodes := { id = !count; kind; srcs; dst; v_pc; last_of_insn = last } :: !nodes;
    incr count
  in
  Array.iter
    (fun (e : Superblock.entry) ->
      if not (Superblock.is_nop e.insn) then begin
        let v_pc = e.pc in
        let push = push ~v_pc in
        match e.insn with
        | Mem (Lda, ra, disp, rb) ->
          push ~last:true (K_op Addq) [| reg rb; Vimm (Int64.of_int disp) |] (Dreg ra)
        | Mem (Ldah, ra, disp, rb) ->
          push ~last:true (K_op Addq)
            [| reg rb; Vimm (Int64.of_int (disp * 65536)) |]
            (Dreg ra)
        | Mem (((Ldq | Ldl | Ldwu | Ldbu) as m), ra, disp, rb) ->
          let addr, k_disp =
            if disp = 0 || fuse_mem then (reg rb, disp)
            else begin
              let t = fresh_tmp () in
              push (K_op Addq) [| reg rb; Vimm (Int64.of_int disp) |] (Dtmp t);
              (Vtmp t, 0)
            end
          in
          push ~last:true (load_kind k_disp m) [| addr |] (Dreg ra)
        | Mem (((Stq | Stl | Stw | Stb) as m), ra, disp, rb) ->
          let addr, k_disp =
            if disp = 0 || fuse_mem then (reg rb, disp)
            else begin
              let t = fresh_tmp () in
              push (K_op Addq) [| reg rb; Vimm (Int64.of_int disp) |] (Dtmp t);
              (Vtmp t, 0)
            end
          in
          push ~last:true (K_store (store_width m, k_disp)) [| reg ra; addr |] Dnone
        | Opr (op, ra, operand, rc) when Alpha.Insn.is_cmov e.insn ->
          let b =
            match operand with Rb r -> reg r | Imm i -> Vimm (Int64.of_int i)
          in
          let t = fresh_tmp () in
          push (K_cmov_test (Alpha.Insn.cmov_cond op)) [| reg ra; reg rc |] (Dtmp t);
          push ~last:true K_cmov_sel [| Vtmp t; b |] (Dreg rc)
        | Opr (op, ra, operand, rc) ->
          let b =
            match operand with Rb r -> reg r | Imm i -> Vimm (Int64.of_int i)
          in
          push ~last:true (K_op op) [| reg ra; b |] (Dreg rc)
        | Bc (cond, ra, disp) ->
          let v_taken = e.pc + 4 + (4 * disp) and v_fall = e.pc + 4 in
          let ends = e.taken && e.next_pc <= e.pc in
          push ~last:true
            (K_br (B_cond { cond; taken = e.taken; v_taken; v_fall; ends }))
            [| reg ra |] Dnone
        | Br (31, disp) ->
          push ~last:true
            (K_br (B_uncond { v_target = e.pc + 4 + (4 * disp) }))
            [||] Dnone
        | Br (ra, disp) | Bsr (ra, disp) ->
          push ~last:true
            (K_br
               (B_call
                  { v_target = e.pc + 4 + (4 * disp); v_ret = e.pc + 4; ret_reg = ra }))
            [||] (Dreg ra)
        | Jump (Ret, _, rb) ->
          push ~last:true (K_br (B_ret { v_actual = e.next_pc })) [| reg rb |] Dnone
        | Jump (Jsr, ra, rb) ->
          push ~last:true
            (K_br (B_jmp { v_ret = Some (e.pc + 4, ra); v_actual = e.next_pc }))
            [| reg rb |] (Dreg ra)
        | Jump (Jmp, _, rb) ->
          push ~last:true
            (K_br (B_jmp { v_ret = None; v_actual = e.next_pc }))
            [| reg rb |] Dnone
        | Call_pal f -> push ~last:true (K_pal f) [||] Dnone
        | Lta _ | Push_dras _ | Ret_dras _ | Call_xlate _ | Call_xlate_cond _
        | Set_vbase _ ->
          invalid_arg "decompose: VM instruction in V-ISA code"
      end)
    sb.entries;
  Array.of_list (List.rev !nodes)
