(* Superblock formation: Most-Recently-Executed-Tail (paper Section 3.1).

   When a trace-start candidate becomes hot, interpretation continues from
   it while recording each executed instruction; the recorded path is the
   superblock. Ending conditions (paper):

   - register-indirect jumps (JMP/JSR/RET) or trap/PAL instructions,
   - backward taken conditional branches,
   - a cycle (an already-collected address is reached),
   - the maximum superblock size,

   plus one documented addition: reaching the entry of an already-translated
   fragment ends the trace (Dynamo-style fragment linking), which bounds
   tail duplication.

   Formation executes the program forward, exactly as the paper's system
   does: the instructions recorded are also the instructions whose effects
   have happened. *)

type entry = {
  pc : int;
  insn : Alpha.Insn.t;
  taken : bool; (* branch direction observed during formation *)
  next_pc : int; (* address executed after this instruction *)
}

type t = {
  start_pc : int;
  entries : entry array;
}

(* Why formation stopped; [Stop_end] means a normal ending condition, the
   others propagate program termination out of the forming trace. *)
type stop = Stop_end | Stop_halt of int | Stop_trap of Alpha.Interp.trap

let length t = Array.length t.entries

(* Count of V-ISA instructions, excluding NOPs, used as the Table 2
   denominator (the paper excludes NOPs from program characteristics). *)
let is_nop (i : Alpha.Insn.t) =
  match i with
  | Opr (Bis, 31, Rb 31, 31) -> true
  | _ -> false

let form ?(on_step = fun (_ : Alpha.Interp.exec_info) -> ())
    ~(interp : Alpha.Interp.t) ~(max_size : int)
    ~(is_translated : int -> bool) () : t * stop =
  let start_pc = interp.pc in
  let seen = Hashtbl.create 64 in
  let entries = ref [] in
  let n = ref 0 in
  let rec go () =
    if !n >= max_size then Stop_end
    else if !n > 0 && (Hashtbl.mem seen interp.pc || is_translated interp.pc)
    then Stop_end
    else begin
      let pc = interp.pc in
      match Alpha.Interp.step interp with
      | Halted c -> Stop_halt c
      | Trapped tr -> Stop_trap tr
      | Step info ->
        on_step info;
        Hashtbl.replace seen pc ();
        entries :=
          { pc; insn = info.insn; taken = info.taken; next_pc = info.next_pc }
          :: !entries;
        incr n;
        let ends =
          match info.insn with
          | Jump _ | Call_pal _ -> true
          | Bc _ when info.taken && info.next_pc <= pc -> true
          | _ -> false
        in
        if ends then Stop_end else go ()
    end
  in
  let stop = go () in
  ({ start_pc; entries = Array.of_list (List.rev !entries) }, stop)

let pp fmt t =
  Format.fprintf fmt "superblock @%#x (%d insns):@." t.start_pc (length t);
  Array.iter
    (fun e ->
      Format.fprintf fmt "  %#x: %s%s@." e.pc
        (Alpha.Disasm.to_string e.insn)
        (if e.taken then "  [taken]" else ""))
    t.entries
