(** Superblock formation: Most-Recently-Executed-Tail (paper Section 3.1).

    When a trace-start candidate becomes hot, interpretation continues from
    it while recording each executed instruction; the recorded path is the
    superblock. Formation {e executes} the program forward, exactly as the
    paper's system does. *)

type entry = {
  pc : int;
  insn : Alpha.Insn.t;
  taken : bool;  (** branch direction observed during formation *)
  next_pc : int;  (** address executed after this instruction *)
}

type t = { start_pc : int; entries : entry array }

(** Why formation stopped: [Stop_end] is a normal ending condition
    (indirect jump / PAL, backward taken branch, cycle, size limit); the
    others propagate program termination out of the forming trace. *)
type stop = Stop_end | Stop_halt of int | Stop_trap of Alpha.Interp.trap

val length : t -> int

val is_nop : Alpha.Insn.t -> bool
(** NOPs are excluded from V-ISA program characteristics (Section 4.4). *)

val form :
  ?on_step:(Alpha.Interp.exec_info -> unit) ->
  interp:Alpha.Interp.t ->
  max_size:int ->
  is_translated:(int -> bool) ->
  unit ->
  t * stop
(** Form one superblock starting at the interpreter's current PC, advancing
    the interpreter. [on_step] observes each executed instruction (the VM
    maintains the dual-address RAS through it); [is_translated] optionally
    ends formation at existing fragment entries. *)

val pp : Format.formatter -> t -> unit
