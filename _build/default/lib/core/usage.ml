(* Dependence and usage identification (paper Section 3.3, first phase).

   A single forward scan resolves every node source to its in-block
   producing node (reaching definition) and classifies every produced value
   by "globalness":

   - [Temp]            decomposition temps (address calcs, cmov predicates)
   - [No_user]         dead before redefinition, no exit in between
   - [Local]           used once, not live at any exit point in between
   - [No_user_global]  dead, but live at an exit/PEI before redefinition
   - [Local_global]    used once, but live at an exit/PEI in between
   - [Comm_global]     used more than once before redefinition
   - [Liveout_global]  not redefined within the superblock

   The two [_global] variants of dead/local values are exactly the Fig. 7
   "no user -> global" and "local -> global" bars: they cost an extra
   copy-to-GPR in the basic ISA and only an off-critical-path architected
   write in the modified ISA. Exit points are conditional-branch fragment
   exits and potentially-excepting instructions. *)

type category =
  | Temp
  | No_user
  | Local
  | No_user_global
  | Local_global
  | Comm_global
  | Liveout_global

let category_name = function
  | Temp -> "temp"
  | No_user -> "no user"
  | Local -> "local"
  | No_user_global -> "no user -> global"
  | Local_global -> "local -> global"
  | Comm_global -> "communication"
  | Liveout_global -> "liveout"

type def_info = {
  def_node : int;
  category : category;
  users : int list; (* node ids reading this def, in program order *)
  save_needed : bool; (* value must reach the architected GPR file *)
}

type t = {
  defs : def_info option array; (* indexed by node id *)
  src_defs : int option array array; (* [node].[src] -> producing node *)
  live_in : bool array; (* per architected register *)
}

(* A def is consumed through an accumulator by its (single) user; values
   used more than once communicate through GPRs (paper Section 3.3). *)
let acc_linked (d : def_info) =
  match d.category with
  | Temp | No_user | Local | No_user_global | Local_global -> true
  | Liveout_global -> List.length d.users <= 1
  | Comm_global -> false

(* Modified ISA: does this value need a latency-critical operational-GPR
   write (vs only the off-critical-path architected update)? *)
let needs_operational (d : def_info) =
  match d.category with
  | Comm_global | Liveout_global -> true
  | _ -> false

let analyze (nodes : Node.t array) : t =
  let n = Array.length nodes in
  let defs = Array.make n None in
  let src_defs = Array.map (fun (nd : Node.t) -> Array.make (Array.length nd.srcs) None) nodes in
  let live_in = Array.make 32 false in
  (* reaching definitions *)
  let cur_reg = Array.make 32 (-1) in
  let cur_tmp = Hashtbl.create 16 in
  (* accumulated per-def facts *)
  let users : int list array = Array.make n [] in
  let redef_at = Array.make n (-1) in
  (* forward scan *)
  Array.iteri
    (fun i (nd : Node.t) ->
      Array.iteri
        (fun k src ->
          match src with
          | Node.Vimm _ -> ()
          | Node.Vreg r ->
            if cur_reg.(r) >= 0 then begin
              src_defs.(i).(k) <- Some cur_reg.(r);
              users.(cur_reg.(r)) <- i :: users.(cur_reg.(r))
            end
            else live_in.(r) <- true
          | Node.Vtmp t ->
            let d = Hashtbl.find cur_tmp t in
            src_defs.(i).(k) <- Some d;
            users.(d) <- i :: users.(d))
        nd.srcs;
      match nd.dst with
      | Dreg r ->
        if cur_reg.(r) >= 0 then redef_at.(cur_reg.(r)) <- i;
        cur_reg.(r) <- i
      | Dtmp t -> Hashtbl.replace cur_tmp t i
      | Dnone -> ())
    nodes;
  (* prefix counts of exit points for O(1) "exit in range" queries *)
  let exits = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    exits.(i + 1) <- exits.(i) + if Node.is_exit_point nodes.(i) then 1 else 0
  done;
  let exit_between ~lo ~hi (* nodes k with lo < k <= hi *) =
    exits.(hi + 1) - exits.(lo + 1) > 0
  in
  Array.iteri
    (fun i (nd : Node.t) ->
      match nd.dst with
      | Dnone -> ()
      | Dtmp _ ->
        defs.(i) <-
          Some
            {
              def_node = i;
              category = Temp;
              users = List.rev users.(i);
              save_needed = false;
            }
      | Dreg _ ->
        let u = List.rev users.(i) in
        let nuses = List.length u in
        let category, save_needed =
          if redef_at.(i) < 0 then (Liveout_global, true)
          else begin
            let save = exit_between ~lo:i ~hi:redef_at.(i) in
            match (nuses, save) with
            | 0, false -> (No_user, false)
            | 0, true -> (No_user_global, true)
            | 1, false -> (Local, false)
            | 1, true -> (Local_global, true)
            | _ -> (Comm_global, true)
          end
        in
        defs.(i) <- Some { def_node = i; category; users = u; save_needed })
    nodes;
  { defs; src_defs; live_in }
