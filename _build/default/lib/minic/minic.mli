(** MiniC: the workload-authoring compiler.

    A small C-like language — 64-bit integers, global int/byte arrays,
    functions (up to six parameters, mutual recursion without forward
    declarations), [if]/[while]/[for]/[switch] (dense switches compile to
    jump tables), function-pointer tables, short-circuit logic, a [sel]
    conditional-move builtin, [print]/[putc] PAL output — compiled to the
    Alpha subset of {!Alpha.Insn}. Division and modulo call a runtime
    shift-subtract routine (Alpha has no divide instruction). *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Codegen = Codegen
module Runtime = Runtime

exception Error of string
(** Lexing, parsing or code-generation failure, with position/context. *)

val to_asm : string -> string
(** Compile MiniC source text to Alpha assembly. Raises {!Error}. *)

val compile : string -> Alpha.Program.t
(** Compile MiniC source text to a loadable program image. Raises {!Error}. *)
