(* MiniC runtime support, in Alpha assembly.

   [startup] calls main and halts with its return value as the exit code.
   Alpha has no integer divide instruction, so [/] and [%] compile to calls
   into the shift-subtract routines below (64 iterations), exactly as a C
   compiler without hardware divide would emit a millicode call. *)

let startup = {|
  .text
_start:
  bsr   ra, main
  call_pal 0
|}

let divide = {|
; unsigned 64-bit divide/modulo: a0 / a1 -> v0 quotient, t0 remainder.
; Division by zero yields quotient 0 and remainder a0 (no trap).
__udivmodq:
  clr   v0
  clr   t0
  beq   a1, __udm_done
  ldiq  t1, 64
__udm_loop:
  sll   t0, 1, t0
  srl   a0, 63, t2
  bis   t0, t2, t0
  sll   a0, 1, a0
  sll   v0, 1, v0
  cmpult t0, a1, t3
  bne   t3, __udm_skip
  subq  t0, a1, t0
  addq  v0, 1, v0
__udm_skip:
  subq  t1, 1, t1
  bne   t1, __udm_loop
__udm_done:
  ret

; signed divide, C truncation semantics
__divq:
  lda   sp, -16(sp)
  stq   ra, 0(sp)
  clr   t5
  bge   a0, __dv_1
  subq  zero, a0, a0
  xor   t5, 1, t5
__dv_1:
  bge   a1, __dv_2
  subq  zero, a1, a1
  xor   t5, 1, t5
__dv_2:
  stq   t5, 8(sp)
  bsr   ra, __udivmodq
  ldq   t5, 8(sp)
  beq   t5, __dv_3
  subq  zero, v0, v0
__dv_3:
  ldq   ra, 0(sp)
  lda   sp, 16(sp)
  ret

; signed remainder: sign follows the dividend
__remq:
  lda   sp, -16(sp)
  stq   ra, 0(sp)
  clr   t5
  bge   a0, __rm_1
  subq  zero, a0, a0
  ldiq  t5, 1
__rm_1:
  bge   a1, __rm_2
  subq  zero, a1, a1
__rm_2:
  stq   t5, 8(sp)
  bsr   ra, __udivmodq
  ldq   t5, 8(sp)
  mov   t0, v0
  beq   t5, __rm_3
  subq  zero, v0, v0
__rm_3:
  ldq   ra, 0(sp)
  lda   sp, 16(sp)
  ret
|}
