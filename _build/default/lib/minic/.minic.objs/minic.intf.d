lib/minic/minic.mli: Alpha Ast Codegen Lexer Parser Runtime
