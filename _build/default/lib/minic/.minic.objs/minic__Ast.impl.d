lib/minic/ast.ml:
