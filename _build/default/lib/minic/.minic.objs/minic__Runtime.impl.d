lib/minic/runtime.ml:
