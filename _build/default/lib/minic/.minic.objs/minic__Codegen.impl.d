lib/minic/codegen.ml: Alpha Array Ast Buffer Hashtbl Int64 List Option Printf Runtime String
