lib/minic/minic.ml: Alpha Ast Codegen Lexer Parser Printf Runtime
