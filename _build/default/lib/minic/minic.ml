(* MiniC driver: source -> Alpha assembly -> assembled program. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Codegen = Codegen
module Runtime = Runtime

exception Error of string

(* Compile MiniC source text to Alpha assembly. *)
let to_asm src =
  try Codegen.compile (Parser.parse src) with
  | Lexer.Error { line; msg } ->
    raise (Error (Printf.sprintf "lexing error at line %d: %s" line msg))
  | Parser.Error { line; msg } ->
    raise (Error (Printf.sprintf "parse error at line %d: %s" line msg))
  | Codegen.Error msg -> raise (Error (Printf.sprintf "codegen error: %s" msg))

(* Compile MiniC source text to a loadable Alpha program image. *)
let compile src =
  let asm = to_asm src in
  try Alpha.Assembler.assemble asm with
  | Alpha.Assembler.Error { line; msg } ->
    raise
      (Error
         (Printf.sprintf
            "internal: generated assembly rejected at line %d: %s" line msg))
