(* Data-side memory hierarchy timing: L1 D-cache -> L2 -> memory.

   Latencies follow the paper's Table 1: 2-cycle L1D, 8-cycle L2, 72-cycle
   memory (the 64-bit wide 4-cycle burst is folded into the flat memory
   latency, as the simulated machines never exceed one outstanding refill in
   this first-order model). The ILDP machine replicates the L1 across
   processing elements; [replicate] builds the extra copies and [store_all]
   keeps them coherent the way the paper assumes (free store broadcast). *)

type cfg = {
  l1_size : int;
  l1_ways : int;
  l1_line : int;
  l1_lat : int;
  l2_size : int;
  l2_ways : int;
  l2_line : int;
  l2_lat : int;
  mem_lat : int;
}

let default_cfg =
  {
    l1_size = 32 * 1024;
    l1_ways = 4;
    l1_line = 64;
    l1_lat = 2;
    l2_size = 1024 * 1024;
    l2_ways = 4;
    l2_line = 128;
    l2_lat = 8;
    mem_lat = 72;
  }

(* 8 KiB 2-way replicated L1, the alternative ILDP configuration of Table 1. *)
let small_l1 cfg = { cfg with l1_size = 8 * 1024; l1_ways = 2 }

type t = { cfg : cfg; l1s : Cache.t array; l2 : Cache.t }

let create ?(replicas = 1) cfg =
  {
    cfg;
    l1s =
      Array.init replicas (fun i ->
          Cache.create
            ~name:(Printf.sprintf "L1D.%d" i)
            ~size:cfg.l1_size ~line:cfg.l1_line ~ways:cfg.l1_ways
            ~policy:Cache.Random);
    l2 =
      Cache.create ~name:"L2" ~size:cfg.l2_size ~line:cfg.l2_line
        ~ways:cfg.l2_ways ~policy:Cache.Random;
  }

let replicas t = Array.length t.l1s

(* Latency of a load issued from replica [pe]. *)
let load t ~pe addr =
  if Cache.access t.l1s.(pe) addr then t.cfg.l1_lat
  else if Cache.access t.l2 addr then t.cfg.l1_lat + t.cfg.l2_lat
  else t.cfg.l1_lat + t.cfg.l2_lat + t.cfg.mem_lat

(* Stores update every replica (write-allocate broadcast). Store latency is
   hidden by the store buffer in both machines, so we return only the L1
   access time for accounting purposes. *)
let store t addr =
  let missed_all = ref true in
  Array.iter (fun c -> if Cache.access c addr then missed_all := false) t.l1s;
  ignore (Cache.access t.l2 addr);
  if !missed_all then t.cfg.l1_lat + t.cfg.l2_lat else t.cfg.l1_lat
