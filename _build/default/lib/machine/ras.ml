(* Conventional hardware return address stack, 8 entries (Table 1).

   A circular stack: pushes past the capacity overwrite the oldest entry;
   pops from empty return [None]. Used by the superscalar model when running
   native or straightened Alpha code with ordinary BSR/JSR..RET pairs. *)

type t = { buf : int array; mutable top : int; mutable depth : int }

let create ?(entries = 8) () = { buf = Array.make entries 0; top = 0; depth = 0 }

let clear t =
  t.top <- 0;
  t.depth <- 0

let push t addr =
  t.buf.(t.top) <- addr;
  t.top <- (t.top + 1) mod Array.length t.buf;
  t.depth <- min (t.depth + 1) (Array.length t.buf)

let pop t =
  if t.depth = 0 then None
  else begin
    t.top <- (t.top + Array.length t.buf - 1) mod Array.length t.buf;
    t.depth <- t.depth - 1;
    Some t.buf.(t.top)
  end
