(** Generic set-associative cache timing model.

    Tracks tags only — data flows through the functional simulator. Both
    replacement policies of the paper's Table 1 are provided: LRU
    (instruction caches) and random (data and L2 caches). *)

type policy = Lru | Random

type t = {
  name : string;
  line_bits : int;
  sets : int;
  ways : int;
  policy : policy;
  tags : int array;
  stamp : int array;
  rng : Rng.t;
  mutable tick : int;
  mutable accesses : int;  (** total accesses *)
  mutable misses : int;  (** total misses *)
}

val create :
  name:string -> size:int -> line:int -> ways:int -> policy:policy -> t
(** [create ~name ~size ~line ~ways ~policy] builds a cache of [size] bytes
    with [line]-byte lines; the set count must come out a power of two. *)

val clear : t -> unit

val probe : t -> int -> bool
(** Tag check without installing or counting. *)

val access : t -> int -> bool
(** Access the line containing the address: [true] on hit; on miss the line
    is installed, evicting per policy. *)

val miss_rate : t -> float
