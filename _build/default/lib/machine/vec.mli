(** Minimal growable array (OCaml 5.1 predates stdlib [Dynarray]).

    Backs the translation cache's code and metadata arrays, which grow
    monotonically as fragments are installed and support in-place
    patching. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
(** Reset to length zero (capacity retained). *)

val push : 'a t -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
