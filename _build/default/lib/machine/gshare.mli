(** G-share conditional-branch direction predictor (Table 1: 16K entries of
    2-bit saturating counters, 12-bit global history). *)

type t = {
  table : Bytes.t;
  mask : int;
  hist_bits : int;
  mutable hist : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

val create : ?entries:int -> ?hist_bits:int -> unit -> t

val predict : t -> int -> bool
(** Predicted direction for the branch at a PC, with no state change. *)

val predict_update : t -> int -> taken:bool -> bool
(** Predict, then train with the outcome (counter + global history).
    Returns [true] when the prediction matched [taken]. *)
