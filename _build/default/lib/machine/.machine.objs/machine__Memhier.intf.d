lib/machine/memhier.mli: Cache
