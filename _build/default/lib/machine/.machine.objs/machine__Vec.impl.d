lib/machine/vec.ml: Array List
