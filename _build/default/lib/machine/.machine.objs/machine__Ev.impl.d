lib/machine/ev.ml:
