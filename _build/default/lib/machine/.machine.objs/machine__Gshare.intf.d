lib/machine/gshare.mli: Bytes
