lib/machine/ras.mli:
