lib/machine/btb.mli:
