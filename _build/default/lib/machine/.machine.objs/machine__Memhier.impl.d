lib/machine/memhier.ml: Array Cache Printf
