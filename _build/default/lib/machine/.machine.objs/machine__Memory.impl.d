lib/machine/memory.ml: Bytes Char Hashtbl Int32 Int64 String
