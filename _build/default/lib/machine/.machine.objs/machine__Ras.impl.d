lib/machine/ras.ml: Array
