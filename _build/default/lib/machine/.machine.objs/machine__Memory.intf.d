lib/machine/memory.mli: Bytes Hashtbl
