lib/machine/rng.mli:
