lib/machine/dual_ras.ml: Array
