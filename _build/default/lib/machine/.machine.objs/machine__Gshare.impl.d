lib/machine/gshare.ml: Bytes Char
