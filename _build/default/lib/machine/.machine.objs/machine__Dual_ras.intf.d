lib/machine/dual_ras.mli:
