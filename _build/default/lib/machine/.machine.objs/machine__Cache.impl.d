lib/machine/cache.ml: Array Rng
