lib/machine/cache.mli: Rng
