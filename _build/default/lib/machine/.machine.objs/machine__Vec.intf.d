lib/machine/vec.mli:
