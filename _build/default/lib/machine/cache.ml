(* Generic set-associative cache timing model.

   Tracks tags only (data flows through the functional simulator); an access
   returns whether it hit, and installs the line on miss. Supports the two
   replacement policies used in the paper's Table 1: LRU (instruction caches)
   and random (data and L2 caches). *)

type policy = Lru | Random

type t = {
  name : string;
  line_bits : int;        (* log2 line size in bytes *)
  sets : int;             (* number of sets, power of two *)
  ways : int;
  policy : policy;
  tags : int array;       (* sets*ways, -1 = invalid *)
  stamp : int array;      (* LRU timestamps, parallel to [tags] *)
  rng : Rng.t;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

(* [create ~name ~size ~line ~ways ~policy] builds a cache of [size] bytes
   total with [line]-byte lines. [size], [line] and [ways] must divide into a
   power-of-two number of sets. *)
let create ~name ~size ~line ~ways ~policy =
  let sets = size / (line * ways) in
  assert (sets > 0 && sets land (sets - 1) = 0);
  {
    name;
    line_bits = log2 line;
    sets;
    ways;
    policy;
    tags = Array.make (sets * ways) (-1);
    stamp = Array.make (sets * ways) 0;
    rng = Rng.create 0x5eed;
    tick = 0;
    accesses = 0;
    misses = 0;
  }

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.tick <- 0;
  t.accesses <- 0;
  t.misses <- 0

let line_addr t addr = addr lsr t.line_bits

(* Probe without installing or updating statistics (used by multi-level
   lookups that want to ask "would this hit?"). *)
let probe t addr =
  let l = line_addr t addr in
  let set = l land (t.sets - 1) in
  let base = set * t.ways in
  let rec go w = w < t.ways && (t.tags.(base + w) = l || go (w + 1)) in
  go 0

(* Access a line: returns [true] on hit. On miss the line is installed,
   evicting per policy. *)
let access t addr =
  t.accesses <- t.accesses + 1;
  t.tick <- t.tick + 1;
  let l = line_addr t addr in
  let set = l land (t.sets - 1) in
  let base = set * t.ways in
  let hit_way = ref (-1) in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = l then hit_way := w
  done;
  if !hit_way >= 0 then begin
    t.stamp.(base + !hit_way) <- t.tick;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* choose victim: an invalid way if any, else per policy *)
    let victim = ref (-1) in
    for w = 0 to t.ways - 1 do
      if !victim < 0 && t.tags.(base + w) = -1 then victim := w
    done;
    if !victim < 0 then begin
      match t.policy with
      | Random -> victim := Rng.int t.rng t.ways
      | Lru ->
        let best = ref 0 in
        for w = 1 to t.ways - 1 do
          if t.stamp.(base + w) < t.stamp.(base + !best) then best := w
        done;
        victim := !best
    end;
    t.tags.(base + !victim) <- l;
    t.stamp.(base + !victim) <- t.tick;
    false
  end

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses
