(** Conventional hardware return address stack, 8 entries (Table 1).

    A circular stack: pushes past capacity overwrite the oldest entry; pops
    from empty return [None]. Used by the superscalar model for native and
    straightened Alpha code with ordinary BSR/JSR..RET pairs. *)

type t = { buf : int array; mutable top : int; mutable depth : int }

val create : ?entries:int -> unit -> t
val clear : t -> unit
val push : t -> int -> unit
val pop : t -> int option
