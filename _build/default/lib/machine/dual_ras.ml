(* Dual-address return address stack — the paper's proposed co-designed VM
   hardware feature (Section 3.2).

   Each entry pairs a V-ISA (source) return address with the I-ISA
   (translated-code) address at which execution should resume. A
   [push-dual-RAS] instruction pushes the pair; a dual-RAS return pops it,
   compares the predicted V-address against the architected return-address
   register, and on a match jumps straight to the popped I-address. On a
   mismatch control falls through to chaining code that reaches the shared
   dispatch. *)

type entry = { v_addr : int; i_addr : int }

type t = {
  buf : entry array;
  mutable top : int;
  mutable depth : int;
  mutable pushes : int;
  mutable pops : int;
  mutable hits : int;
}

let create ?(entries = 8) () =
  {
    buf = Array.make entries { v_addr = 0; i_addr = 0 };
    top = 0;
    depth = 0;
    pushes = 0;
    pops = 0;
    hits = 0;
  }

let clear t =
  t.top <- 0;
  t.depth <- 0

let push t ~v_addr ~i_addr =
  t.pushes <- t.pushes + 1;
  t.buf.(t.top) <- { v_addr; i_addr };
  t.top <- (t.top + 1) mod Array.length t.buf;
  t.depth <- min (t.depth + 1) (Array.length t.buf)

(* Pop and verify against the actual V-ISA return address held in the return
   register. Returns [Some i_addr] when the prediction verifies (the common
   case), [None] when the stack was empty or the pair is stale. *)
let pop_verify t ~v_actual =
  t.pops <- t.pops + 1;
  if t.depth = 0 then None
  else begin
    t.top <- (t.top + Array.length t.buf - 1) mod Array.length t.buf;
    t.depth <- t.depth - 1;
    let e = t.buf.(t.top) in
    if e.v_addr = v_actual then begin
      t.hits <- t.hits + 1;
      Some e.i_addr
    end
    else None
  end

let hit_rate t =
  if t.pops = 0 then 1.0 else float_of_int t.hits /. float_of_int t.pops
