(* ISA-agnostic committed-instruction events.

   The functional side of the simulator (the Alpha interpreter, or the DBT
   runtime executing translated code) emits one event per committed
   instruction. Timing models (uarch.Ooo, uarch.Ildp) consume the stream and
   charge cycles; they never re-execute semantics. Register identity is
   encoded as small integer tokens so dependence tracking is a flat array
   lookup:

     0..63        general-purpose registers (0..31 architected Alpha state,
                  32..63 VM scratch registers in translated code)
     64..64+k     accumulators (ILDP I-ISA)

   [-1] means "no register". *)

type cls =
  | Alu        (* single-cycle integer op *)
  | Mul        (* integer multiply *)
  | Load
  | Store
  | Cond_br
  | Jump       (* unconditional direct or register-indirect jump *)
  | Call       (* call that pushes a return address *)
  | Ret

(* How the front end predicts this instruction, driving the misprediction
   accounting in the timing models. *)
type pred =
  | Not_control
  | P_cond            (* direction: g-share; target: embedded/BTB *)
  | P_direct          (* unconditional direct: BTB (misfetch when absent) *)
  | P_indirect        (* register indirect: BTB *)
  | P_ras_call        (* direct call: pushes the conventional RAS *)
  | P_ras_call_ind    (* register-indirect call (JSR): RAS push + BTB target *)
  | P_ras_ret         (* pops the conventional RAS *)
  | P_dras_call       (* pushes the dual-address RAS *)
  | P_dras_ret of bool (* dual-address RAS return; payload = pair verified *)

type t = {
  pc : int;            (* byte address of this instruction (I- or V-space) *)
  size : int;          (* encoded size in bytes, for I-cache modelling *)
  cls : cls;
  src1 : int;          (* register tokens, -1 if unused *)
  src2 : int;
  src3 : int;
  dst : int;
  dst2 : int;          (* second destination (e.g. accumulator + GPR), -1 *)
  lazy_dst2 : bool;    (* dst2 is an off-critical-path architected-file
                          update that drains lazily (modified-ISA gdst
                          without an operational write) *)
  acc : int;           (* ILDP steering id (accumulator/strand), -1 if none *)
  strand_start : bool; (* first instruction of a strand: steer to a new PE *)
  ea : int;            (* effective address for Load/Store *)
  taken : bool;        (* control outcome *)
  target : int;        (* actual next pc *)
  pred : pred;
  alpha_count : int;   (* V-ISA instructions retired by this event *)
}

let gpr r = r
let acc_token a = 64 + a

(* Total distinct register tokens; sized for 64 GPRs + 8 accumulators. *)
let token_count = 64 + 8

let default =
  {
    pc = 0;
    size = 4;
    cls = Alu;
    src1 = -1;
    src2 = -1;
    src3 = -1;
    dst = -1;
    dst2 = -1;
    lazy_dst2 = false;
    acc = -1;
    strand_start = false;
    ea = 0;
    taken = false;
    target = 0;
    pred = Not_control;
    alpha_count = 1;
  }

let is_mem e = match e.cls with Load | Store -> true | _ -> false

let is_control e =
  match e.cls with Cond_br | Jump | Call | Ret -> true | _ -> false
