(** Branch target buffer: 512 entries, 4-way set-associative (Table 1).

    Predicts taken-transfer targets; a taken branch with an absent or stale
    entry costs the front end a fetch redirect. *)

type t = {
  sets : int;
  ways : int;
  tags : int array;
  targets : int array;
  stamp : int array;
  mutable tick : int;
}

val create : ?entries:int -> ?ways:int -> unit -> t

val lookup : t -> int -> int option
(** Predicted target for the control instruction at a PC, if present. *)

val update : t -> int -> target:int -> unit
(** Record that the instruction transferred to [target] (LRU install). *)
