(* Branch target buffer: 512-entry, 4-way set-associative (Table 1).

   Predicts the target address of taken control transfers. A taken branch
   whose target is absent or stale is a "misfetch": the front end loses the
   fetch-redirect latency even when the direction prediction was right. *)

type t = {
  sets : int;
  ways : int;
  tags : int array;
  targets : int array;
  stamp : int array;
  mutable tick : int;
}

let create ?(entries = 512) ?(ways = 4) () =
  let sets = entries / ways in
  assert (sets > 0 && sets land (sets - 1) = 0);
  {
    sets;
    ways;
    tags = Array.make entries (-1);
    targets = Array.make entries 0;
    stamp = Array.make entries 0;
    tick = 0;
  }

let set_of t pc = (pc lsr 2) land (t.sets - 1)

(* Predicted target for the control instruction at [pc], if present. *)
let lookup t pc =
  let base = set_of t pc * t.ways in
  let rec go w =
    if w >= t.ways then None
    else if t.tags.(base + w) = pc then Some t.targets.(base + w)
    else go (w + 1)
  in
  go 0

(* Record that [pc] transferred to [target], installing/refreshing a line. *)
let update t pc ~target =
  t.tick <- t.tick + 1;
  let base = set_of t pc * t.ways in
  let way = ref (-1) in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = pc then way := w
  done;
  if !way < 0 then begin
    (* evict LRU *)
    let best = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.stamp.(base + w) < t.stamp.(base + !best) then best := w
    done;
    way := !best;
    t.tags.(base + !way) <- pc
  end;
  t.targets.(base + !way) <- target;
  t.stamp.(base + !way) <- t.tick
