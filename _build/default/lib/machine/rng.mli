(** Deterministic splitmix64 PRNG.

    Simulation components needing randomness (random cache replacement,
    workload generation, differential-test programs) use this instead of
    [Random] so every experiment is exactly reproducible. *)

type t = { mutable s : int64 }

val create : int -> t
val next : t -> int64
val int : t -> int -> int
(** Uniform integer in [0, bound). *)

val bool : t -> bool
val i64 : t -> int64
