(* G-share conditional branch direction predictor.

   Table 1 configuration: 16K-entry table of 2-bit saturating counters
   indexed by PC xor a 12-bit global history register. *)

type t = {
  table : Bytes.t;          (* 2-bit counters, one byte each *)
  mask : int;
  hist_bits : int;
  mutable hist : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(entries = 16 * 1024) ?(hist_bits = 12) () =
  assert (entries land (entries - 1) = 0);
  {
    table = Bytes.make entries '\002' (* weakly taken *);
    mask = entries - 1;
    hist_bits;
    hist = 0;
    lookups = 0;
    mispredicts = 0;
  }

let index t pc = (pc lsr 2) lxor t.hist land t.mask

(* Predict direction for the branch at [pc] without updating any state. *)
let predict t pc = Char.code (Bytes.get t.table (index t pc)) >= 2

(* Predict and train in one step: returns [true] if the prediction matched
   [taken]. Updates the counter and the global history with the outcome. *)
let predict_update t pc ~taken =
  t.lookups <- t.lookups + 1;
  let i = index t pc in
  let c = Char.code (Bytes.get t.table i) in
  let pred = c >= 2 in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.table i (Char.chr c');
  t.hist <- ((t.hist lsl 1) lor if taken then 1 else 0) land ((1 lsl t.hist_bits) - 1);
  if pred <> taken then t.mispredicts <- t.mispredicts + 1;
  pred = taken
