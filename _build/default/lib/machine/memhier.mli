(** Data-side memory-hierarchy timing: L1 D-cache(s) → L2 → memory, with
    Table 1 latencies. The ILDP machine replicates the L1 per processing
    element; stores broadcast to all replicas. *)

type cfg = {
  l1_size : int;
  l1_ways : int;
  l1_line : int;
  l1_lat : int;
  l2_size : int;
  l2_ways : int;
  l2_line : int;
  l2_lat : int;
  mem_lat : int;
}

val default_cfg : cfg
(** 32KB 4-way 64B L1 (2 cycles), 1MB 4-way 128B L2 (8), memory (72). *)

val small_l1 : cfg -> cfg
(** The 8KB 2-way replicated-L1 alternative of Table 1. *)

type t = { cfg : cfg; l1s : Cache.t array; l2 : Cache.t }

val create : ?replicas:int -> cfg -> t
val replicas : t -> int

val load : t -> pe:int -> int -> int
(** Latency of a load issued from replica [pe]. *)

val store : t -> int -> int
(** Store: updates every replica (write-allocate broadcast); returns the L1
    access time (store latency hides behind the store buffer). *)
