(* Shared experiment runners.

   Each runner executes one workload under one system configuration and
   collects the statistics the experiments need. Results are memoised per
   (workload, configuration, scale) so experiments that share a
   configuration (e.g. the Fig. 6 and Fig. 8 baselines) reuse runs within
   one process. *)

type timing = {
  cycles : int;
  insns : int; (* instructions committed by the timing model *)
  alpha : int; (* V-ISA instructions those represent *)
  v_ipc : float;
  ipc : float;
  mpki : float; (* mispredictions per 1000 committed instructions *)
  misfetch_pki : float;
}

let fuel = 100_000_000

(* ---------- original (native Alpha on the superscalar model) ---------- *)

let original_raw ~use_ras w ~scale =
  let prog = Workloads.program ~scale w in
  let st = Alpha.Interp.create prog in
  let m = Uarch.Ooo.create ~use_ras () in
  (match Alpha.Interp.run_ev ~fuel st ~sink:(Uarch.Ooo.feed m) with
  | Alpha.Interp.Exit _ -> ()
  | Fault tr ->
    failwith (Format.asprintf "%s (original): %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (w.name ^ ": out of fuel"));
  let cycles = Uarch.Ooo.cycles m in
  {
    cycles;
    insns = m.n;
    alpha = m.alpha;
    v_ipc = Uarch.Ooo.v_ipc m;
    ipc = Uarch.Ooo.ipc m;
    mpki = Uarch.Pred.mpki m.pred ~insns:m.n;
    misfetch_pki = 1000.0 *. float_of_int m.pred.misfetches /. float_of_int (max 1 m.n);
  }

(* ---------- code-straightening-only DBT on the superscalar model ------- *)

type straight_out = {
  s_t : timing;
  s_i_exec : int; (* translated instructions executed *)
  s_alpha : int; (* V-ISA instructions retired in translated mode *)
  s_interp : int; (* instructions interpreted instead *)
  s_frags : int;
  s_dbt_work : float;
}

let straight_raw ~chaining w ~scale =
  let prog = Workloads.program ~scale w in
  let cfg = { Core.Config.default with chaining } in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Straight_only prog in
  let m = Uarch.Ooo.create () in
  (match
     Core.Vm.run ~sink:(Uarch.Ooo.feed m)
       ~boundary:(fun () -> Uarch.Ooo.boundary m)
       ~fuel vm
   with
  | Core.Vm.Exit _ -> ()
  | Fault tr ->
    failwith (Format.asprintf "%s (straight): %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (w.name ^ ": out of fuel"));
  let ex = Option.get (Core.Vm.straight_exec vm) in
  let ctx = Option.get (Core.Vm.straight_ctx vm) in
  {
    s_t =
      {
        cycles = Uarch.Ooo.cycles m;
        insns = m.n;
        alpha = m.alpha;
        v_ipc = Uarch.Ooo.v_ipc m;
        ipc = Uarch.Ooo.ipc m;
        mpki = Uarch.Pred.mpki m.pred ~insns:m.n;
        misfetch_pki =
          1000.0 *. float_of_int m.pred.misfetches /. float_of_int (max 1 m.n);
      };
    s_i_exec = ex.stats.i_exec;
    s_alpha = ex.stats.alpha_retired;
    s_interp = vm.interp_insns;
    s_frags = List.length (Core.Tcache.Straight.fragments ctx.tc);
    s_dbt_work = Core.Cost.per_translated_insn ctx.cost;
  }

(* ---------- accumulator-ISA DBT, optionally on the ILDP model ---------- *)

type acc_out = {
  a_t : timing option;
  a_i_exec : int;
  a_alpha : int;
  a_interp : int;
  a_copies : int; (* copy-class instructions executed *)
  a_chain : int; (* chain-class instructions executed *)
  a_i_bytes : int; (* static translated bytes *)
  a_v_bytes : int; (* static V-ISA bytes of distinct translated insns *)
  a_dbt_work : float;
  a_frags : int;
  a_spills : int;
  a_splits : int;
  a_dras_hit : float;
  a_cat_dyn : float array; (* dynamic usage-category distribution *)
}

let acc_raw ?(isa = Core.Config.Modified) ?(chaining = Core.Config.Sw_pred_ras)
    ?(n_accs = 4) ?(fuse_mem = false) ?(stop_at_translated = false)
    ?(max_superblock = 200) ?(hot_threshold = 50) ?ildp w ~scale =
  let prog = Workloads.program ~scale w in
  let cfg =
    {
      Core.Config.isa;
      chaining;
      n_accs;
      fuse_mem;
      stop_at_translated;
      max_superblock;
      hot_threshold;
    }
  in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let m = Option.map (fun params -> Uarch.Ildp.create ~params ()) ildp in
  let sink = Option.map (fun m -> Uarch.Ildp.feed m) m in
  let boundary = Option.map (fun m () -> Uarch.Ildp.boundary m) m in
  (match Core.Vm.run ?sink ?boundary ~fuel vm with
  | Core.Vm.Exit _ -> ()
  | Fault tr ->
    failwith (Format.asprintf "%s (acc): %a" w.name Alpha.Interp.pp_trap tr)
  | Out_of_fuel -> failwith (w.name ^ ": out of fuel"));
  let ex = Option.get (Core.Vm.acc_exec vm) in
  let ctx = Option.get (Core.Vm.acc_ctx vm) in
  let frags = Core.Tcache.Acc.fragments ctx.tc in
  (* dynamic usage-category distribution: per-fragment static counts
     weighted by execution counts *)
  let cat = Array.make Core.Tcache.n_categories 0.0 in
  List.iter
    (fun (f : Core.Tcache.frag) ->
      Array.iteri
        (fun i c -> cat.(i) <- cat.(i) +. float_of_int (c * f.exec_count))
        f.cat_count)
    frags;
  let total_cat = Array.fold_left ( +. ) 0.0 cat in
  let cat_dyn =
    Array.map (fun c -> if total_cat > 0.0 then c /. total_cat else 0.0) cat
  in
  {
    a_t =
      Option.map
        (fun m ->
          {
            cycles = Uarch.Ildp.cycles m;
            insns = m.Uarch.Ildp.n;
            alpha = m.alpha;
            v_ipc = Uarch.Ildp.v_ipc m;
            ipc = Uarch.Ildp.ipc m;
            mpki = Uarch.Pred.mpki m.pred ~insns:m.n;
            misfetch_pki =
              1000.0 *. float_of_int m.pred.misfetches /. float_of_int (max 1 m.n);
          })
        m;
    a_i_exec = ex.stats.i_exec;
    a_alpha = ex.stats.alpha_retired;
    a_interp = vm.interp_insns;
    a_copies = ex.stats.by_class.(1);
    a_chain = ex.stats.by_class.(2);
    a_i_bytes = Core.Tcache.Acc.total_i_bytes ctx.tc;
    a_v_bytes = 4 * Hashtbl.length ctx.unique_vpcs;
    a_dbt_work = Core.Cost.per_translated_insn ctx.cost;
    a_frags = List.length frags;
    a_spills = ctx.n_spills;
    a_splits = ctx.n_splits;
    a_dras_hit =
      (let h = ex.stats.ret_dras_hits and m' = ex.stats.ret_dras_misses in
       if h + m' = 0 then 1.0 else float_of_int h /. float_of_int (h + m'));
    a_cat_dyn = cat_dyn;
  }

(* ---------- memoisation ---------- *)

let orig_cache : (string * bool * int, timing) Hashtbl.t = Hashtbl.create 64
let straight_cache : (string * Core.Config.chaining * int, straight_out) Hashtbl.t =
  Hashtbl.create 64
let acc_cache : (string, acc_out) Hashtbl.t = Hashtbl.create 64

let memo cache key f =
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.replace cache key v;
    v

let original ?(use_ras = true) ?(scale = 1) w =
  memo orig_cache (w.Workloads.name, use_ras, scale) (fun () ->
      original_raw ~use_ras w ~scale)

let straight ?(chaining = Core.Config.Sw_pred_ras) ?(scale = 1) w =
  memo straight_cache (w.Workloads.name, chaining, scale) (fun () ->
      straight_raw ~chaining w ~scale)

let acc ?(isa = Core.Config.Modified) ?(chaining = Core.Config.Sw_pred_ras)
    ?(n_accs = 4) ?(fuse_mem = false) ?(stop_at_translated = false)
    ?(max_superblock = 200) ?(hot_threshold = 50) ?ildp ?(scale = 1) w =
  let key =
    Printf.sprintf "%s/%s/%s/%d/%b/%b/%d/%d/%s/%d" w.Workloads.name
      (Core.Config.isa_name isa)
      (Core.Config.chaining_name chaining)
      n_accs fuse_mem stop_at_translated max_superblock hot_threshold
      (match ildp with
      | None -> "none"
      | Some (p : Uarch.Ildp.params) ->
        Printf.sprintf "pe%d.c%d.l1%d" p.n_pe p.comm p.mem.l1_size)
      scale
  in
  memo acc_cache key (fun () ->
      acc_raw ~isa ~chaining ~n_accs ~fuse_mem ~stop_at_translated
        ~max_superblock ~hot_threshold ?ildp w ~scale)

(* geometric mean, the usual summary for IPC-like ratios *)
let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
         /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
