lib/harness/runner.ml: Alpha Array Core Format Hashtbl List Option Printf Uarch Workloads
