lib/harness/experiments.ml: Array Core Format List Machine Option Printf Runner String Uarch Workloads
