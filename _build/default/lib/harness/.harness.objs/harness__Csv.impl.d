lib/harness/csv.ml: Core Filename List Machine Option Printf Runner String Uarch Unix Workloads
