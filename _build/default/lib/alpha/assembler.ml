(* Two-pass Alpha assembler.

   Accepts the conventional Alpha assembly syntax produced by {!Disasm} and
   by the MiniC code generator, plus a small set of directives and
   pseudo-instructions:

   - directives: [.text .data .align .quad .long .word .byte .space .ascii
     .asciz .globl]
   - pseudos: [mov], [clr], [nop], [ldiq rc, imm64] (expands to the shortest
     LDA/LDAH/SLL sequence), [la rc, label] (absolute address via LDAH+LDA),
     [beq ra, label] and friends, [br label], [bsr label], [jsr (rb)], [ret].

   Comments run from [;] or [//] to end of line. Pass 1 sizes statements and
   assigns label addresses; pass 2 resolves and encodes. *)

exception Error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

(* ---------- tokens ---------- *)

type tok = Id of string | Int of int64 | Str of string | Comma | LPar | RPar | Colon

let is_id_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let tokenize lineno s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  (try
     while !i < n do
       let c = s.[!i] in
       if c = ' ' || c = '\t' || c = '\r' then incr i
       else if c = ';' then raise Exit
       else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then raise Exit
       else if c = ',' then (push Comma; incr i)
       else if c = '(' then (push LPar; incr i)
       else if c = ')' then (push RPar; incr i)
       else if c = ':' then (push Colon; incr i)
       else if c = '"' then begin
         let b = Buffer.create 16 in
         incr i;
         while !i < n && s.[!i] <> '"' do
           if s.[!i] = '\\' && !i + 1 < n then begin
             (match s.[!i + 1] with
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | '0' -> Buffer.add_char b '\000'
             | c -> Buffer.add_char b c);
             i := !i + 2
           end
           else begin
             Buffer.add_char b s.[!i];
             incr i
           end
         done;
         if !i >= n then fail lineno "unterminated string";
         incr i;
         push (Str (Buffer.contents b))
       end
       else if c = '\'' then begin
         if !i + 2 >= n || s.[!i + 2] <> '\'' then fail lineno "bad char literal";
         push (Int (Int64.of_int (Char.code s.[!i + 1])));
         i := !i + 3
       end
       else if c = '-' || (c >= '0' && c <= '9') then begin
         let start = !i in
         if c = '-' then incr i;
         while !i < n && (is_id_char s.[!i]) do incr i done;
         let text = String.sub s start (!i - start) in
         match Int64.of_string_opt text with
         | Some v -> push (Int v)
         | None -> fail lineno "bad number %S" text
       end
       else if c = '#' then incr i (* literal marker, optional *)
       else if is_id_char c then begin
         let start = !i in
         while !i < n && is_id_char s.[!i] do incr i done;
         push (Id (String.sub s start (!i - start)))
       end
       else fail lineno "unexpected character %C" c
     done
   with Exit -> ());
  List.rev !toks

(* ---------- parsed statements ---------- *)

type operand =
  | O_reg of int
  | O_imm of int64
  | O_mem of int64 * int (* disp(rb) *)
  | O_sym of string * int (* label+offset *)

type stmt =
  | S_label of string
  | S_insn of string * operand list
  | S_dir of string * operand list
  | S_str_dir of string * string (* .ascii/.asciz *)

let parse_operand lineno toks =
  match toks with
  | Id x :: rest when Reg.of_string x <> None ->
    (O_reg (Option.get (Reg.of_string x)), rest)
  | Int d :: LPar :: Id r :: RPar :: rest -> (
    match Reg.of_string r with
    | Some r -> (O_mem (d, r), rest)
    | None -> fail lineno "bad base register %S" r)
  | LPar :: Id r :: RPar :: rest -> (
    match Reg.of_string r with
    | Some r -> (O_mem (0L, r), rest)
    | None -> fail lineno "bad base register %S" r)
  | Int v :: rest -> (O_imm v, rest)
  | Id x :: Int off :: rest when Int64.compare off 0L < 0 ->
    (* label-123 tokenizes as Id, negative Int *)
    (O_sym (x, Int64.to_int off), rest)
  | Id x :: rest -> (O_sym (x, 0), rest)
  | _ -> fail lineno "cannot parse operand"

let parse_operands lineno toks =
  let rec go acc toks =
    let op, rest = parse_operand lineno toks in
    match rest with
    | Comma :: rest -> go (op :: acc) rest
    | [] -> List.rev (op :: acc)
    | _ -> fail lineno "junk after operand"
  in
  match toks with [] -> [] | _ -> go [] toks

let parse_line lineno s : stmt list =
  let toks = tokenize lineno s in
  let rec go acc toks =
    match toks with
    | [] -> List.rev acc
    | Id name :: Colon :: rest -> go (S_label name :: acc) rest
    | Id d :: rest when d.[0] = '.' -> (
      match (d, rest) with
      | (".ascii" | ".asciz"), [ Str s ] -> List.rev (S_str_dir (d, s) :: acc)
      | _ -> List.rev (S_dir (d, parse_operands lineno rest) :: acc))
    | Id op :: rest ->
      List.rev (S_insn (String.lowercase_ascii op, parse_operands lineno rest) :: acc)
    | _ -> fail lineno "cannot parse line"
  in
  go [] toks

(* ---------- instruction templates ----------

   Pass 1 needs only the *count* of machine instructions a statement expands
   to; pass 2 emits them with resolved symbols. We therefore expand each
   statement into a closure producing [Insn.t list] given the symbol table,
   with a size known up front. *)

let mem_ops =
  [ ("ldq", Insn.Ldq); ("ldl", Ldl); ("ldwu", Ldwu); ("ldbu", Ldbu);
    ("stq", Stq); ("stl", Stl); ("stw", Stw); ("stb", Stb); ("lda", Lda);
    ("ldah", Ldah) ]

let opr_ops =
  [ ("addl", Insn.Addl); ("addq", Addq); ("subl", Subl); ("subq", Subq);
    ("s4addl", S4addl); ("s4addq", S4addq); ("s8addl", S8addl);
    ("s8addq", S8addq); ("s4subl", S4subl); ("s4subq", S4subq);
    ("s8subl", S8subl); ("s8subq", S8subq); ("cmpeq", Cmpeq);
    ("cmplt", Cmplt); ("cmple", Cmple); ("cmpult", Cmpult); ("cmpule", Cmpule);
    ("and", And_); ("bic", Bic); ("bis", Bis); ("or", Bis); ("ornot", Ornot);
    ("xor", Xor); ("eqv", Eqv); ("sll", Sll); ("srl", Srl); ("sra", Sra);
    ("extbl", Extbl); ("extwl", Extwl); ("extll", Extll); ("extql", Extql);
    ("extwh", Extwh); ("extlh", Extlh); ("extqh", Extqh);
    ("insbl", Insbl); ("inswl", Inswl); ("insll", Insll); ("insql", Insql);
    ("mskbl", Mskbl); ("mskwl", Mskwl); ("mskll", Mskll); ("mskql", Mskql);
    ("zap", Zap); ("zapnot", Zapnot); ("cmpbge", Cmpbge); ("mull", Mull);
    ("mulq", Mulq); ("umulh", Umulh); ("cmoveq", Cmoveq); ("cmovne", Cmovne);
    ("cmovlt", Cmovlt); ("cmovge", Cmovge); ("cmovle", Cmovle);
    ("cmovgt", Cmovgt); ("cmovlbs", Cmovlbs); ("cmovlbc", Cmovlbc);
    ("sextb", Sextb); ("sextw", Sextw); ("ctpop", Ctpop); ("ctlz", Ctlz);
    ("cttz", Cttz) ]

let bc_ops =
  [ ("beq", Insn.Eq); ("bne", Ne); ("blt", Lt); ("bge", Ge); ("ble", Le);
    ("bgt", Gt); ("blbc", Lbc); ("blbs", Lbs) ]

(* Shortest LDA/LDAH/SLL sequence materializing [v] into [rc].
   The decomposition below is verified by construction: each step's
   contribution is subtracted exactly, and qcheck tests reconstruct random
   values. *)
let rec expand_ldiq rc v : Insn.t list =
  let sext16 x = Int64.shift_right (Int64.shift_left x 48) 48 in
  let fits16 x = Int64.equal (sext16 x) x in
  let sext32 x = Int64.of_int32 (Int64.to_int32 x) in
  let fits32 x = Int64.equal (sext32 x) x in
  let lo_hi v =
    (* v = (hi <<16) + lo with lo,hi signed 16-bit, assuming v fits 32+1... *)
    let lo = sext16 (Int64.logand v 0xffffL) in
    let hi = Int64.shift_right (Int64.sub v lo) 16 in
    (Int64.to_int lo, Int64.to_int hi)
  in
  if fits16 v then [ Insn.Mem (Lda, rc, Int64.to_int v, Reg.zero) ]
  else if fits32 v && snd (lo_hi v) >= -32768 && snd (lo_hi v) <= 32767 then
    let lo, hi = lo_hi v in
    [ Insn.Mem (Ldah, rc, hi, Reg.zero); Insn.Mem (Lda, rc, lo, rc) ]
  else begin
    (* 64-bit: materialize the upper 48 bits shifted down, shift left 16,
       then add the low 16 via LDA. Repeat recursively. *)
    let lo = sext16 (Int64.logand v 0xffffL) in
    let upper = Int64.shift_right (Int64.sub v lo) 16 in
    expand_ldiq rc upper
    @ [ Insn.Opr (Sll, rc, Imm 16, rc); Insn.Mem (Lda, rc, Int64.to_int lo, rc) ]
  end

(* One statement expanded: [size] machine instructions; [emit] is given the
   statement's own address and the symbol resolver. *)
type expansion = { size : int; emit : addr:int -> (string -> int) -> Insn.t list }

let fixed insns = { size = List.length insns; emit = (fun ~addr:_ _ -> insns) }

let expand_insn lineno op (args : operand list) : expansion =
  let reg = function
    | O_reg r -> r
    | _ -> fail lineno "expected register operand for %s" op
  in
  let imm_or_reg = function
    | O_reg r -> Insn.Rb r
    | O_imm v ->
      if Int64.compare v 0L < 0 || Int64.compare v 255L > 0 then
        fail lineno "literal out of range for %s" op
      else Insn.Imm (Int64.to_int v)
    | _ -> fail lineno "expected register or literal for %s" op
  in
  let branch_disp ~addr resolve = function
    | O_sym (s, off) -> ((resolve s + off - (addr + 4)) asr 2)
    | O_imm v -> Int64.to_int v
    | _ -> fail lineno "expected branch target for %s" op
  in
  match (op, args) with
  | _, _ when List.mem_assoc op mem_ops -> (
    let m = List.assoc op mem_ops in
    match args with
    | [ ra; O_mem (d, rb) ] ->
      fixed [ Insn.Mem (m, reg ra, Int64.to_int d, rb) ]
    | [ ra; O_imm d ] when op = "lda" || op = "ldah" ->
      fixed [ Insn.Mem (m, reg ra, Int64.to_int d, Reg.zero) ]
    | [ ra; O_imm d; O_reg rb ] ->
      (* "lda ra, d, rb" alternative syntax *)
      fixed [ Insn.Mem (m, reg ra, Int64.to_int d, rb) ]
    | _ -> fail lineno "bad operands for %s" op)
  | _, _ when List.mem_assoc op opr_ops -> (
    let o = List.assoc op opr_ops in
    match (o, args) with
    | (Sextb | Sextw | Ctpop | Ctlz | Cttz), [ b; rc ] ->
      fixed [ Insn.Opr (o, Reg.zero, imm_or_reg b, reg rc) ]
    | _, [ ra; b; rc ] -> fixed [ Insn.Opr (o, reg ra, imm_or_reg b, reg rc) ]
    | _ -> fail lineno "bad operands for %s" op)
  | "sextb", [ b; rc ] | "sextw", [ b; rc ] ->
    let o = if op = "sextb" then Insn.Sextb else Insn.Sextw in
    fixed [ Insn.Opr (o, Reg.zero, imm_or_reg b, reg rc) ]
  | _, _ when List.mem_assoc op bc_ops ->
    let c = List.assoc op bc_ops in
    (match args with
    | [ ra; target ] ->
      let ra = reg ra in
      {
        size = 1;
        emit =
          (fun ~addr resolve ->
            [ Insn.Bc (c, ra, branch_disp ~addr resolve target) ]);
      }
    | _ -> fail lineno "bad operands for %s" op)
  | "br", [ target ] | "br", [ O_reg 31; target ] ->
    { size = 1;
      emit = (fun ~addr resolve ->
          [ Insn.Br (Reg.zero, branch_disp ~addr resolve target) ]) }
  | "br", [ ra; target ] ->
    let ra = reg ra in
    { size = 1;
      emit = (fun ~addr resolve ->
          [ Insn.Br (ra, branch_disp ~addr resolve target) ]) }
  | "bsr", [ target ] ->
    { size = 1;
      emit = (fun ~addr resolve ->
          [ Insn.Bsr (Reg.ra, branch_disp ~addr resolve target) ]) }
  | "bsr", [ ra; target ] ->
    let ra = reg ra in
    { size = 1;
      emit = (fun ~addr resolve ->
          [ Insn.Bsr (ra, branch_disp ~addr resolve target) ]) }
  | "jmp", [ O_mem (0L, rb) ] -> fixed [ Insn.Jump (Jmp, Reg.zero, rb) ]
  | "jmp", [ ra; O_mem (0L, rb) ] -> fixed [ Insn.Jump (Jmp, reg ra, rb) ]
  | "jsr", [ O_mem (0L, rb) ] -> fixed [ Insn.Jump (Jsr, Reg.ra, rb) ]
  | "jsr", [ ra; O_mem (0L, rb) ] -> fixed [ Insn.Jump (Jsr, reg ra, rb) ]
  | "ret", [] -> fixed [ Insn.Jump (Ret, Reg.zero, Reg.ra) ]
  | "ret", [ O_mem (0L, rb) ] -> fixed [ Insn.Jump (Ret, Reg.zero, rb) ]
  | "ret", [ ra; O_mem (0L, rb) ] -> fixed [ Insn.Jump (Ret, reg ra, rb) ]
  | "call_pal", [ O_imm f ] -> fixed [ Insn.Call_pal (Int64.to_int f) ]
  | "nop", [] -> fixed [ Insn.Opr (Bis, Reg.zero, Rb Reg.zero, Reg.zero) ]
  | "clr", [ rc ] -> fixed [ Insn.Opr (Bis, Reg.zero, Rb Reg.zero, reg rc) ]
  | "mov", [ O_reg rs; rc ] ->
    fixed [ Insn.Opr (Bis, rs, Rb rs, reg rc) ]
  | "mov", [ O_imm v; rc ] | "ldiq", [ rc; O_imm v ] ->
    fixed (expand_ldiq (reg rc) v)
  | "la", [ rc; O_sym (s, off) ] ->
    let rc = reg rc in
    {
      size = 2;
      emit =
        (fun ~addr:_ resolve ->
          let v = Int64.of_int (resolve s + off) in
          let lo = Int64.shift_right (Int64.shift_left (Int64.logand v 0xffffL) 48) 48 in
          let hi = Int64.shift_right (Int64.sub v lo) 16 in
          [ Insn.Mem (Ldah, rc, Int64.to_int hi, Reg.zero);
            Insn.Mem (Lda, rc, Int64.to_int lo, rc) ]);
    }
  | _ -> fail lineno "unknown instruction %S (%d operands)" op (List.length args)

(* ---------- two-pass assembly ---------- *)

type item =
  | I_insns of int * expansion (* line, expansion *)
  | I_bytes of string
  | I_align of int
  | I_space of int
  | I_quad_sym of string * int (* .quad label+off *)
  | I_word of int * int64 (* width in bytes, value *)

let assemble ?(text_base = Program.text_base) ?(data_base = Program.data_base)
    source : Program.t =
  let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let text_items = ref [] and data_items = ref [] in
  let in_text = ref true in
  let text_pc = ref text_base and data_pc = ref data_base in
  let add item =
    let size =
      match item with
      | I_insns (_, e) -> 4 * e.size
      | I_bytes s -> String.length s
      | I_align a ->
        let pc = if !in_text then !text_pc else !data_pc in
        (a - (pc mod a)) mod a
      | I_space n -> n
      | I_quad_sym _ -> 8
      | I_word (w, _) -> w
    in
    if !in_text then begin
      text_items := (item, !text_pc) :: !text_items;
      text_pc := !text_pc + size
    end
    else begin
      data_items := (item, !data_pc) :: !data_items;
      data_pc := !data_pc + size
    end
  in
  (* pass 1 *)
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      List.iter
        (function
          | S_label name ->
            if Hashtbl.mem symbols name then fail lineno "duplicate label %S" name;
            Hashtbl.replace symbols name (if !in_text then !text_pc else !data_pc)
          | S_insn (op, args) -> add (I_insns (lineno, expand_insn lineno op args))
          | S_str_dir (".ascii", s) -> add (I_bytes s)
          | S_str_dir (".asciz", s) -> add (I_bytes (s ^ "\000"))
          | S_str_dir (d, _) -> fail lineno "unknown string directive %S" d
          | S_dir (".text", _) -> in_text := true
          | S_dir (".data", _) -> in_text := false
          | S_dir (".globl", _) | S_dir (".ent", _) | S_dir (".end", _) -> ()
          | S_dir (".align", [ O_imm a ]) -> add (I_align (Int64.to_int a))
          | S_dir (".space", [ O_imm n ]) -> add (I_space (Int64.to_int n))
          | S_dir (".quad", args) ->
            List.iter
              (function
                | O_imm v -> add (I_word (8, v))
                | O_sym (s, off) -> add (I_quad_sym (s, off))
                | _ -> fail lineno "bad .quad operand")
              args
          | S_dir (".long", args) ->
            List.iter
              (function
                | O_imm v -> add (I_word (4, v))
                | _ -> fail lineno "bad .long operand")
              args
          | S_dir (".word", args) ->
            List.iter
              (function
                | O_imm v -> add (I_word (2, v))
                | _ -> fail lineno "bad .word operand")
              args
          | S_dir (".byte", args) ->
            List.iter
              (function
                | O_imm v -> add (I_word (1, v))
                | _ -> fail lineno "bad .byte operand")
              args
          | S_dir (d, _) -> fail lineno "unknown directive %S" d)
        (parse_line lineno line))
    lines;
  (* pass 2 *)
  let resolve_at lineno name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> fail lineno "undefined symbol %S" name
  in
  let emit_section items =
    let b = Buffer.create 4096 in
    List.iter
      (fun (item, addr) ->
        match item with
        | I_insns (lineno, e) ->
          let insns = e.emit ~addr (resolve_at lineno) in
          List.iteri
            (fun i insn ->
              let w =
                try Encode.encode insn
                with Encode.Unencodable msg -> fail lineno "%s" msg
              in
              ignore i;
              Buffer.add_char b (Char.chr (w land 0xff));
              Buffer.add_char b (Char.chr ((w lsr 8) land 0xff));
              Buffer.add_char b (Char.chr ((w lsr 16) land 0xff));
              Buffer.add_char b (Char.chr ((w lsr 24) land 0xff)))
            insns
        | I_bytes s -> Buffer.add_string b s
        | I_align a ->
          let pad = (a - (addr mod a)) mod a in
          Buffer.add_string b (String.make pad '\000')
        | I_space n -> Buffer.add_string b (String.make n '\000')
        | I_quad_sym (s, off) ->
          let v = Int64.of_int (resolve_at 0 s + off) in
          for i = 0 to 7 do
            Buffer.add_char b
              (Char.chr
                 (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
          done
        | I_word (w, v) ->
          for i = 0 to w - 1 do
            Buffer.add_char b
              (Char.chr
                 (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
          done)
      (List.rev items);
    Buffer.contents b
  in
  let text = emit_section !text_items in
  let data = emit_section !data_items in
  let entry =
    match
      (Hashtbl.find_opt symbols "_start", Hashtbl.find_opt symbols "main")
    with
    | Some a, _ -> a
    | None, Some a -> a
    | None, None -> text_base
  in
  {
    Program.text = { base = text_base; bytes = text };
    data = { base = data_base; bytes = data };
    entry;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
  }
