(* Alpha 32-bit instruction encoder.

   Uses the genuine Alpha AXP opcode and function-code assignments for the
   implemented integer subset, so encoded images are bit-compatible with real
   Alpha tools for these instructions. The co-designed VM extension
   instructions exist only inside the translation cache and are rejected
   here. *)

exception Unencodable of string

let mem_opcode : Insn.mem_op -> int = function
  | Lda -> 0x08
  | Ldah -> 0x09
  | Ldbu -> 0x0a
  | Ldwu -> 0x0c
  | Stw -> 0x0d
  | Stb -> 0x0e
  | Ldl -> 0x28
  | Ldq -> 0x29
  | Stl -> 0x2c
  | Stq -> 0x2d

(* (major opcode, function code) for each operate-format instruction. *)
let opr_code : Insn.op3 -> int * int = function
  | Addl -> (0x10, 0x00)
  | S4addl -> (0x10, 0x02)
  | Subl -> (0x10, 0x09)
  | S4subl -> (0x10, 0x0b)
  | S8addl -> (0x10, 0x12)
  | S8subl -> (0x10, 0x1b)
  | Cmpult -> (0x10, 0x1d)
  | Cmpbge -> (0x10, 0x0f)
  | Addq -> (0x10, 0x20)
  | S4addq -> (0x10, 0x22)
  | Subq -> (0x10, 0x29)
  | S4subq -> (0x10, 0x2b)
  | Cmpeq -> (0x10, 0x2d)
  | S8addq -> (0x10, 0x32)
  | S8subq -> (0x10, 0x3b)
  | Cmpule -> (0x10, 0x3d)
  | Cmplt -> (0x10, 0x4d)
  | Cmple -> (0x10, 0x6d)
  | And_ -> (0x11, 0x00)
  | Bic -> (0x11, 0x08)
  | Cmovlbs -> (0x11, 0x14)
  | Cmovlbc -> (0x11, 0x16)
  | Bis -> (0x11, 0x20)
  | Cmoveq -> (0x11, 0x24)
  | Cmovne -> (0x11, 0x26)
  | Ornot -> (0x11, 0x28)
  | Xor -> (0x11, 0x40)
  | Cmovlt -> (0x11, 0x44)
  | Cmovge -> (0x11, 0x46)
  | Eqv -> (0x11, 0x48)
  | Cmovle -> (0x11, 0x64)
  | Cmovgt -> (0x11, 0x66)
  | Mskbl -> (0x12, 0x02)
  | Extbl -> (0x12, 0x06)
  | Insbl -> (0x12, 0x0b)
  | Mskwl -> (0x12, 0x12)
  | Extwl -> (0x12, 0x16)
  | Inswl -> (0x12, 0x1b)
  | Mskll -> (0x12, 0x22)
  | Extll -> (0x12, 0x26)
  | Insll -> (0x12, 0x2b)
  | Zap -> (0x12, 0x30)
  | Zapnot -> (0x12, 0x31)
  | Mskql -> (0x12, 0x32)
  | Srl -> (0x12, 0x34)
  | Extql -> (0x12, 0x36)
  | Sll -> (0x12, 0x39)
  | Insql -> (0x12, 0x3b)
  | Sra -> (0x12, 0x3c)
  | Extwh -> (0x12, 0x5a)
  | Extlh -> (0x12, 0x6a)
  | Extqh -> (0x12, 0x7a)
  | Mull -> (0x13, 0x00)
  | Mulq -> (0x13, 0x20)
  | Umulh -> (0x13, 0x30)
  | Sextb -> (0x1c, 0x00)
  | Sextw -> (0x1c, 0x01)
  | Ctpop -> (0x1c, 0x30)
  | Ctlz -> (0x1c, 0x32)
  | Cttz -> (0x1c, 0x33)

let bc_opcode : Insn.cond -> int = function
  | Lbc -> 0x38
  | Eq -> 0x39
  | Lt -> 0x3a
  | Le -> 0x3b
  | Lbs -> 0x3c
  | Ne -> 0x3d
  | Ge -> 0x3e
  | Gt -> 0x3f

let jump_hint : Insn.jkind -> int = function Jmp -> 0 | Jsr -> 1 | Ret -> 2

let check_disp16 d =
  if d < -32768 || d > 32767 then
    raise (Unencodable (Printf.sprintf "16-bit displacement out of range: %d" d))

let check_disp21 d =
  if d < -(1 lsl 20) || d >= 1 lsl 20 then
    raise (Unencodable (Printf.sprintf "21-bit displacement out of range: %d" d))

(* Encode one instruction to its 32-bit word. Raises {!Unencodable} for VM
   extension instructions and out-of-range displacements/literals. *)
let encode : Insn.t -> int = function
  | Mem (op, ra, disp, rb) ->
    check_disp16 disp;
    (mem_opcode op lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (disp land 0xffff)
  | Opr (op, ra, operand, rc) ->
    let opc, func = opr_code op in
    let base = (opc lsl 26) lor (ra lsl 21) lor (func lsl 5) lor rc in
    (match operand with
    | Rb rb -> base lor (rb lsl 16)
    | Imm lit ->
      if lit < 0 || lit > 255 then
        raise (Unencodable (Printf.sprintf "literal out of range: %d" lit));
      base lor (lit lsl 13) lor (1 lsl 12))
  | Br (ra, disp) ->
    check_disp21 disp;
    (0x30 lsl 26) lor (ra lsl 21) lor (disp land 0x1fffff)
  | Bsr (ra, disp) ->
    check_disp21 disp;
    (0x34 lsl 26) lor (ra lsl 21) lor (disp land 0x1fffff)
  | Bc (c, ra, disp) ->
    check_disp21 disp;
    (bc_opcode c lsl 26) lor (ra lsl 21) lor (disp land 0x1fffff)
  | Jump (k, ra, rb) ->
    (0x1a lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (jump_hint k lsl 14)
  | Call_pal f ->
    if f < 0 || f >= 1 lsl 26 then raise (Unencodable "CALL_PAL function");
    f
  | (Lta _ | Push_dras _ | Ret_dras _ | Call_xlate _ | Call_xlate_cond _
    | Set_vbase _) as i ->
    raise
      (Unencodable
         (Printf.sprintf "VM extension instruction has no V-ISA encoding: %s"
            (match i with
            | Lta _ -> "lta"
            | Push_dras _ -> "push_dras"
            | Ret_dras _ -> "ret_dras"
            | Call_xlate _ -> "call_xlate"
            | Call_xlate_cond _ -> "call_xlate_cond"
            | _ -> "set_vbase")))
