(* Alpha 32-bit instruction decoder (inverse of {!Encode}). *)

type error = { word : int; reason : string }

let err word reason = Error { word; reason }

let sext ~bits v =
  let shift = 64 - bits in
  Int64.to_int (Int64.shift_right (Int64.shift_left (Int64.of_int v) shift) shift)

let mem_op_of_opcode : int -> Insn.mem_op option = function
  | 0x08 -> Some Lda
  | 0x09 -> Some Ldah
  | 0x0a -> Some Ldbu
  | 0x0c -> Some Ldwu
  | 0x0d -> Some Stw
  | 0x0e -> Some Stb
  | 0x28 -> Some Ldl
  | 0x29 -> Some Ldq
  | 0x2c -> Some Stl
  | 0x2d -> Some Stq
  | _ -> None

let opr_of_codes opc func : Insn.op3 option =
  match (opc, func) with
  | 0x10, 0x00 -> Some Addl
  | 0x10, 0x02 -> Some S4addl
  | 0x10, 0x09 -> Some Subl
  | 0x10, 0x0b -> Some S4subl
  | 0x10, 0x12 -> Some S8addl
  | 0x10, 0x1b -> Some S8subl
  | 0x10, 0x0f -> Some Cmpbge
  | 0x10, 0x1d -> Some Cmpult
  | 0x10, 0x20 -> Some Addq
  | 0x10, 0x22 -> Some S4addq
  | 0x10, 0x29 -> Some Subq
  | 0x10, 0x2b -> Some S4subq
  | 0x10, 0x2d -> Some Cmpeq
  | 0x10, 0x32 -> Some S8addq
  | 0x10, 0x3b -> Some S8subq
  | 0x10, 0x3d -> Some Cmpule
  | 0x10, 0x4d -> Some Cmplt
  | 0x10, 0x6d -> Some Cmple
  | 0x11, 0x00 -> Some And_
  | 0x11, 0x08 -> Some Bic
  | 0x11, 0x14 -> Some Cmovlbs
  | 0x11, 0x16 -> Some Cmovlbc
  | 0x11, 0x20 -> Some Bis
  | 0x11, 0x24 -> Some Cmoveq
  | 0x11, 0x26 -> Some Cmovne
  | 0x11, 0x28 -> Some Ornot
  | 0x11, 0x40 -> Some Xor
  | 0x11, 0x44 -> Some Cmovlt
  | 0x11, 0x46 -> Some Cmovge
  | 0x11, 0x48 -> Some Eqv
  | 0x11, 0x64 -> Some Cmovle
  | 0x11, 0x66 -> Some Cmovgt
  | 0x12, 0x02 -> Some Mskbl
  | 0x12, 0x06 -> Some Extbl
  | 0x12, 0x0b -> Some Insbl
  | 0x12, 0x12 -> Some Mskwl
  | 0x12, 0x16 -> Some Extwl
  | 0x12, 0x1b -> Some Inswl
  | 0x12, 0x22 -> Some Mskll
  | 0x12, 0x26 -> Some Extll
  | 0x12, 0x2b -> Some Insll
  | 0x12, 0x30 -> Some Zap
  | 0x12, 0x31 -> Some Zapnot
  | 0x12, 0x32 -> Some Mskql
  | 0x12, 0x34 -> Some Srl
  | 0x12, 0x36 -> Some Extql
  | 0x12, 0x39 -> Some Sll
  | 0x12, 0x3b -> Some Insql
  | 0x12, 0x3c -> Some Sra
  | 0x12, 0x5a -> Some Extwh
  | 0x12, 0x6a -> Some Extlh
  | 0x12, 0x7a -> Some Extqh
  | 0x13, 0x00 -> Some Mull
  | 0x13, 0x20 -> Some Mulq
  | 0x13, 0x30 -> Some Umulh
  | 0x1c, 0x00 -> Some Sextb
  | 0x1c, 0x01 -> Some Sextw
  | 0x1c, 0x30 -> Some Ctpop
  | 0x1c, 0x32 -> Some Ctlz
  | 0x1c, 0x33 -> Some Cttz
  | _ -> None

let bc_of_opcode : int -> Insn.cond option = function
  | 0x38 -> Some Lbc
  | 0x39 -> Some Eq
  | 0x3a -> Some Lt
  | 0x3b -> Some Le
  | 0x3c -> Some Lbs
  | 0x3d -> Some Ne
  | 0x3e -> Some Ge
  | 0x3f -> Some Gt
  | _ -> None

(* Decode a 32-bit instruction word. *)
let decode word : (Insn.t, error) result =
  let opc = (word lsr 26) land 0x3f in
  let ra = (word lsr 21) land 0x1f in
  let rb = (word lsr 16) land 0x1f in
  match opc with
  | 0x00 -> Ok (Call_pal (word land 0x3ffffff))
  | 0x1a -> (
    match (word lsr 14) land 3 with
    | 0 -> Ok (Jump (Jmp, ra, rb))
    | 1 -> Ok (Jump (Jsr, ra, rb))
    | 2 -> Ok (Jump (Ret, ra, rb))
    | _ -> err word "JSR_COROUTINE not supported")
  | 0x30 -> Ok (Br (ra, sext ~bits:21 (word land 0x1fffff)))
  | 0x34 -> Ok (Bsr (ra, sext ~bits:21 (word land 0x1fffff)))
  | _ when opc >= 0x38 -> (
    match bc_of_opcode opc with
    | Some c -> Ok (Bc (c, ra, sext ~bits:21 (word land 0x1fffff)))
    | None -> err word "unknown branch opcode")
  | 0x10 | 0x11 | 0x12 | 0x13 | 0x1c -> (
    let func = (word lsr 5) land 0x7f in
    let rc = word land 0x1f in
    match opr_of_codes opc func with
    | None -> err word (Printf.sprintf "unknown operate %x.%02x" opc func)
    | Some op ->
      if (word lsr 12) land 1 = 1 then
        Ok (Opr (op, ra, Imm ((word lsr 13) land 0xff), rc))
      else Ok (Opr (op, ra, Rb rb, rc)))
  | _ -> (
    match mem_op_of_opcode opc with
    | Some m -> Ok (Mem (m, ra, sext ~bits:16 (word land 0xffff), rb))
    | None -> err word (Printf.sprintf "unknown opcode %#x" opc))
