(** Two-pass Alpha assembler.

    Accepts the conventional syntax produced by {!Disasm} and the MiniC
    code generator, plus directives ([.text .data .align .quad .long .word
    .byte .space .ascii .asciz .globl]) and pseudo-instructions ([mov],
    [clr], [nop], [ldiq] — shortest LDA/LDAH/SLL expansion — [la], branch
    mnemonics with label targets, [jsr (rb)], [ret]). Comments run from
    [;] or [//] to end of line. *)

exception Error of { line : int; msg : string }

val expand_ldiq : int -> int64 -> Insn.t list
(** The shortest LDA/LDAH/SLL sequence materialising a 64-bit constant into
    a register (exposed for tests). *)

val assemble : ?text_base:int -> ?data_base:int -> string -> Program.t
(** Assemble a source text into a loadable program image.
    Raises {!Error} with a line number on any problem. *)
