(** Alpha 32-bit instruction encoder, using the genuine Alpha AXP opcode
    and function-code assignments for the implemented integer subset. *)

exception Unencodable of string
(** Raised for VM-extension instructions (which have no V-ISA encoding) and
    out-of-range displacements or literals. *)

val mem_opcode : Insn.mem_op -> int
val opr_code : Insn.op3 -> int * int
(** (major opcode, function code) of an operate-format instruction. *)

val bc_opcode : Insn.cond -> int

val encode : Insn.t -> int
(** The instruction's 32-bit word. Raises {!Unencodable}. *)
