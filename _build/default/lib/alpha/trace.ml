module Ev = Machine.Ev

(* Conversion from executed Alpha instructions to the ISA-agnostic
   {!Machine.Ev.t} events consumed by the timing models.

   Used both for native ("original") Alpha runs and for straightened-Alpha
   translated code; in the latter case the caller passes the translation-
   cache byte address as [pc] and fills in the dual-RAS outcome. *)

let cls_of (insn : Insn.t) : Ev.cls =
  match insn with
  | Mem ((Ldq | Ldl | Ldwu | Ldbu), _, _, _) -> Load
  | Mem ((Stq | Stl | Stw | Stb), _, _, _) -> Store
  | Mem ((Lda | Ldah), _, _, _) -> Alu
  | Opr ((Mull | Mulq | Umulh), _, _, _) -> Mul
  | Opr _ -> Alu
  | Br (ra, _) -> if ra = Reg.zero then Jump else Call
  | Bsr _ -> Call
  | Bc _ -> Cond_br
  | Jump (Ret, _, _) -> Ret
  | Jump (Jsr, _, _) -> Call
  | Jump (Jmp, _, _) -> Jump
  | Call_pal _ -> Alu
  | Lta _ -> Alu
  | Push_dras _ -> Alu
  | Ret_dras _ -> Ret
  | Call_xlate _ -> Jump
  | Call_xlate_cond _ -> Cond_br
  | Set_vbase _ -> Alu

let pred_of (insn : Insn.t) ~dras_hit : Ev.pred =
  match insn with
  | Bc _ | Call_xlate_cond _ -> P_cond
  | Br (ra, _) -> if ra = Reg.zero then P_direct else P_ras_call
  | Bsr _ -> P_ras_call
  | Jump (Ret, _, _) -> P_ras_ret
  | Jump (Jsr, _, _) -> P_ras_call_ind
  | Jump (Jmp, _, _) -> P_indirect
  | Push_dras _ -> P_dras_call
  | Ret_dras _ -> P_dras_ret dras_hit
  | Call_xlate _ -> P_direct
  | _ -> Not_control

(* Build the event for one committed instruction.

   [gpr_base] offsets register tokens: 0 for architected Alpha registers.
   Events from translated code use the same mapping (architected registers
   0..31, VM scratch 32..63). *)
let ev_of_exec ?(dras_hit = false) ?(size = 4) ?(alpha_count = 1) ~pc
    ~(insn : Insn.t) ~taken ~target ~ea () =
  let srcs = Insn.srcs insn in
  let nth n = match List.nth_opt srcs n with Some r when r <> Reg.zero -> r | _ -> -1 in
  let dst = match Insn.dest insn with Some r when r <> Reg.zero -> r | _ -> -1 in
  {
    Ev.pc;
    size;
    cls = cls_of insn;
    src1 = nth 0;
    src2 = nth 1;
    src3 = nth 2;
    dst;
    dst2 = -1;
    lazy_dst2 = false;
    acc = -1;
    strand_start = false;
    ea;
    taken;
    target;
    pred = pred_of insn ~dras_hit;
    alpha_count;
  }
