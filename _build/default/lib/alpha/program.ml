module Memory = Machine.Memory

(* Assembled Alpha program images and the memory layout of the simulated
   machine.

   The address-space layout is fixed and simple (this is a co-designed VM
   study, not an OS): text at [text_base], data at [data_base] followed by a
   mapped heap, a 1 MiB stack below [stack_top], and one VM-private scratch
   page used by translated code for register spills. Anything outside the
   mapped regions faults, which is the precise-trap source used by the trap
   experiments. *)

let text_base = 0x10000
let data_base = 0x200000
let heap_size = 4 * 1024 * 1024
let stack_top = 0x7f0000
let stack_size = 1024 * 1024

(* Scratch page owned by the VM runtime; straightened-Alpha chaining code
   spills/reloads the registers it borrows here. Never visible to guest
   semantics. *)
let vm_scratch = 0xe0000

type section = { base : int; bytes : string }

type t = {
  text : section;
  data : section;
  entry : int;
  symbols : (string * int) list;
}

let symbol t name = List.assoc_opt name t.symbols

(* Map all regions and install the program image into [mem]. *)
let load t mem =
  Memory.map mem ~addr:t.text.base ~len:(max 1 (String.length t.text.bytes));
  Memory.map mem ~addr:t.data.base
    ~len:(String.length t.data.bytes + heap_size);
  Memory.map mem ~addr:(stack_top - stack_size) ~len:stack_size;
  Memory.map mem ~addr:vm_scratch ~len:4096;
  Memory.blit_string mem ~addr:t.text.base t.text.bytes;
  Memory.blit_string mem ~addr:t.data.base t.data.bytes

(* Address of the first unused data byte: workloads use this as the heap
   start when they need dynamic-looking storage. *)
let heap_base t = t.data.base + ((String.length t.data.bytes + 15) land lnot 15)

let text_size t = String.length t.text.bytes

(* Decode the full text section once; the interpreter executes from this
   predecoded array (indexed by [(pc - text_base) / 4]) rather than decoding
   at every fetch. *)
let predecode t =
  let n = String.length t.text.bytes / 4 in
  Array.init n (fun i ->
      let w =
        Char.code t.text.bytes.[(4 * i) + 0]
        lor (Char.code t.text.bytes.[(4 * i) + 1] lsl 8)
        lor (Char.code t.text.bytes.[(4 * i) + 2] lsl 16)
        lor (Char.code t.text.bytes.[(4 * i) + 3] lsl 24)
      in
      match Decode.decode w with
      | Ok insn -> insn
      | Error e ->
        failwith
          (Printf.sprintf "predecode: bad word %#x at %#x: %s" e.word
             (t.text.base + (4 * i))
             e.reason))
