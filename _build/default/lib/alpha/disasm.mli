(** Alpha (and VM-extension) pretty-printer.

    Output for conventional instructions follows the assembly syntax that
    {!Assembler} accepts, so it re-assembles to the same encoding (tested
    as a property). *)

val mem_name : Insn.mem_op -> string
val opr_name : Insn.op3 -> string
val cond_name : Insn.cond -> string
val to_string : Insn.t -> string
val pp : Format.formatter -> Insn.t -> unit
