(* Alpha (and VM-extension) instruction pretty-printer.

   Output follows the conventional Alpha assembly syntax the {!Assembler}
   accepts, so `to_string` output for conventional instructions re-assembles
   to the same encoding (tested as a property). *)

let mem_name : Insn.mem_op -> string = function
  | Ldq -> "ldq"
  | Ldl -> "ldl"
  | Ldwu -> "ldwu"
  | Ldbu -> "ldbu"
  | Stq -> "stq"
  | Stl -> "stl"
  | Stw -> "stw"
  | Stb -> "stb"
  | Lda -> "lda"
  | Ldah -> "ldah"

let opr_name : Insn.op3 -> string = function
  | Addl -> "addl" | Addq -> "addq" | Subl -> "subl" | Subq -> "subq"
  | S4addl -> "s4addl" | S4addq -> "s4addq" | S8addl -> "s8addl"
  | S8addq -> "s8addq" | S4subl -> "s4subl" | S4subq -> "s4subq"
  | S8subl -> "s8subl" | S8subq -> "s8subq"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple"
  | Cmpult -> "cmpult" | Cmpule -> "cmpule" | Cmpbge -> "cmpbge"
  | And_ -> "and" | Bic -> "bic" | Bis -> "bis" | Ornot -> "ornot"
  | Xor -> "xor" | Eqv -> "eqv"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Extbl -> "extbl" | Extwl -> "extwl" | Extll -> "extll" | Extql -> "extql"
  | Extwh -> "extwh" | Extlh -> "extlh" | Extqh -> "extqh"
  | Insbl -> "insbl" | Inswl -> "inswl" | Insll -> "insll" | Insql -> "insql"
  | Mskbl -> "mskbl" | Mskwl -> "mskwl" | Mskll -> "mskll" | Mskql -> "mskql"
  | Zap -> "zap" | Zapnot -> "zapnot"
  | Mull -> "mull" | Mulq -> "mulq" | Umulh -> "umulh"
  | Sextb -> "sextb" | Sextw -> "sextw"
  | Ctpop -> "ctpop" | Ctlz -> "ctlz" | Cttz -> "cttz"
  | Cmoveq -> "cmoveq" | Cmovne -> "cmovne" | Cmovlt -> "cmovlt"
  | Cmovge -> "cmovge" | Cmovle -> "cmovle" | Cmovgt -> "cmovgt"
  | Cmovlbs -> "cmovlbs" | Cmovlbc -> "cmovlbc"

let cond_name : Insn.cond -> string = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge"
  | Le -> "le" | Gt -> "gt" | Lbc -> "lbc" | Lbs -> "lbs"

let reg = Reg.to_string

let to_string : Insn.t -> string = function
  | Mem (op, ra, disp, rb) ->
    Printf.sprintf "%s %s, %d(%s)" (mem_name op) (reg ra) disp (reg rb)
  | Opr (op, ra, Rb rb, rc) when Insn.is_cmov (Opr (op, ra, Rb rb, rc)) ->
    Printf.sprintf "%s %s, %s, %s" (opr_name op) (reg ra) (reg rb) (reg rc)
  | Opr ((Sextb | Sextw) as op, _, operand, rc) ->
    (match operand with
    | Rb rb -> Printf.sprintf "%s %s, %s" (opr_name op) (reg rb) (reg rc)
    | Imm i -> Printf.sprintf "%s #%d, %s" (opr_name op) i (reg rc))
  | Opr (op, ra, Rb rb, rc) ->
    Printf.sprintf "%s %s, %s, %s" (opr_name op) (reg ra) (reg rb) (reg rc)
  | Opr (op, ra, Imm i, rc) ->
    Printf.sprintf "%s %s, #%d, %s" (opr_name op) (reg ra) i (reg rc)
  | Br (ra, disp) -> Printf.sprintf "br %s, .%+d" (reg ra) disp
  | Bsr (ra, disp) -> Printf.sprintf "bsr %s, .%+d" (reg ra) disp
  | Bc (c, ra, disp) ->
    Printf.sprintf "b%s %s, .%+d" (cond_name c) (reg ra) disp
  | Jump (Jmp, ra, rb) -> Printf.sprintf "jmp %s, (%s)" (reg ra) (reg rb)
  | Jump (Jsr, ra, rb) -> Printf.sprintf "jsr %s, (%s)" (reg ra) (reg rb)
  | Jump (Ret, ra, rb) -> Printf.sprintf "ret %s, (%s)" (reg ra) (reg rb)
  | Call_pal f -> Printf.sprintf "call_pal %#x" f
  | Lta (ra, a) -> Printf.sprintf "lta %s, %#x" (reg ra) a
  | Push_dras (ra, v, i) ->
    Printf.sprintf "push_dras %s, v:%#x, i:%d" (reg ra) v i
  | Ret_dras rb -> Printf.sprintf "ret_dras (%s)" (reg rb)
  | Call_xlate e -> Printf.sprintf "call_xlate %d" e
  | Call_xlate_cond (c, ra, e) ->
    Printf.sprintf "call_xlate_%s %s, %d" (cond_name c) (reg ra) e
  | Set_vbase v -> Printf.sprintf "set_vbase %#x" v

let pp fmt i = Format.pp_print_string fmt (to_string i)
