(** Assembled Alpha program images and the simulated machine's fixed
    address-space layout: text at {!text_base}, data + heap at
    {!data_base}, a 1 MiB stack below {!stack_top}, one VM-private scratch
    page. Anything outside the mapped regions faults (the precise-trap
    source used by the trap experiments). *)

val text_base : int
val data_base : int
val heap_size : int
val stack_top : int
val stack_size : int

val vm_scratch : int
(** Scratch page owned by the VM runtime; straightened-Alpha chaining code
    spills the registers it borrows here. *)

type section = { base : int; bytes : string }

type t = {
  text : section;
  data : section;
  entry : int;
  symbols : (string * int) list;
}

val symbol : t -> string -> int option

val load : t -> Machine.Memory.t -> unit
(** Map all regions and install the image. *)

val heap_base : t -> int
(** First unused data address — workloads treat it as the heap start. *)

val text_size : t -> int

val predecode : t -> Insn.t array
(** Decode the whole text section once; the interpreter executes from this
    array rather than decoding at every fetch. *)
