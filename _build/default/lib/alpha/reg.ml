(* Alpha integer register file: names and calling convention.

   Registers are plain ints 0..31; [zero] (r31) reads as zero and discards
   writes. The OSF/Tru64 calling convention names are accepted by the
   assembler and used by the MiniC code generator. *)

type t = int

let count = 32
let zero = 31
let v0 = 0
let ra = 26
let pv = 27 (* procedure value for indirect calls; also t12 *)
let at = 28
let gp = 29
let sp = 30
let fp = 15

(* Argument registers a0..a5 = r16..r21. *)
let arg i =
  assert (i >= 0 && i < 6);
  16 + i

(* Caller-saved temporaries in allocation order: t0..t7, t8..t11. *)
let temps = [| 1; 2; 3; 4; 5; 6; 7; 8; 22; 23; 24; 25 |]

(* Callee-saved s0..s5 = r9..r14. *)
let saved = [| 9; 10; 11; 12; 13; 14 |]

let names =
  [|
    "v0"; "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "s0"; "s1"; "s2";
    "s3"; "s4"; "s5"; "fp"; "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "t8"; "t9";
    "t10"; "t11"; "ra"; "pv"; "at"; "gp"; "sp"; "zero";
  |]

let to_string r =
  if r >= 0 && r < 32 then names.(r) else Printf.sprintf "r?%d" r

let of_string s =
  let s = String.lowercase_ascii s in
  let numbered prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      int_of_string_opt (String.sub s n (String.length s - n))
    else None
  in
  match numbered "$" with
  | Some n when n >= 0 && n < 32 -> Some n
  | _ -> (
    match numbered "r" with
    | Some n when n >= 0 && n < 32 -> Some n
    | _ ->
      let rec find i =
        if i >= 32 then None else if names.(i) = s then Some i else find (i + 1)
      in
      find 0)
