(** Alpha 32-bit instruction decoder (inverse of {!Encode}). *)

type error = { word : int; reason : string }

val decode : int -> (Insn.t, error) result
(** Decode one 32-bit instruction word. *)
