lib/alpha/assembler.mli: Insn Program
