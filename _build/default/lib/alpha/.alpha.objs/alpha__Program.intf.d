lib/alpha/program.mli: Insn Machine
