lib/alpha/trace.ml: Insn List Machine Reg
