lib/alpha/decode.mli: Insn
