lib/alpha/interp.ml: Array Buffer Char Format Insn Int64 Machine Program Reg Trace
