lib/alpha/insn.ml: Int64 Reg
