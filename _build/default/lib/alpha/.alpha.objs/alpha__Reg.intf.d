lib/alpha/reg.mli:
