lib/alpha/disasm.ml: Format Insn Printf Reg
