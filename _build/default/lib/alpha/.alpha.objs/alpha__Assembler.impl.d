lib/alpha/assembler.ml: Buffer Char Encode Hashtbl Insn Int64 List Option Printf Program Reg String
