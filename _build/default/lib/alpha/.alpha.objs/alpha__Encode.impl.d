lib/alpha/encode.ml: Insn Printf
