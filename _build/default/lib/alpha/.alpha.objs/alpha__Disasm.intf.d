lib/alpha/disasm.mli: Format Insn
