lib/alpha/decode.ml: Insn Int64 Printf
