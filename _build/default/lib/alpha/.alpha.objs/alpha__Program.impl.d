lib/alpha/program.ml: Array Char Decode List Machine Printf String
