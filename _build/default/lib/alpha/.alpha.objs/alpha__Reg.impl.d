lib/alpha/reg.ml: Array Printf String
