lib/alpha/encode.mli: Insn
