module Memory = Machine.Memory
module Ev = Machine.Ev

(* Alpha functional interpreter with precise trap semantics.

   This is both the reference executor (architected results that every other
   execution mode must match) and the interpretation stage of the DBT system.
   One [step] executes exactly one instruction and reports what happened; the
   DBT profiler and superblock builder drive it step by step, while [run]
   drives it to completion.

   PALcode provides a minimal deterministic "OS": HALT, PUTC and PUTINT. *)

type trap =
  | Mem_fault of { pc : int; addr : int; is_store : bool }
  | Unaligned of { pc : int; addr : int; width : int }
  | Illegal of { pc : int }

let pp_trap fmt = function
  | Mem_fault { pc; addr; is_store } ->
    Format.fprintf fmt "memory fault at pc=%#x addr=%#x (%s)" pc addr
      (if is_store then "store" else "load")
  | Unaligned { pc; addr; width } ->
    Format.fprintf fmt "unaligned %d-byte access at pc=%#x addr=%#x" width pc addr
  | Illegal { pc } -> Format.fprintf fmt "illegal instruction at pc=%#x" pc

(* PAL function codes of the simulated system. *)
let pal_halt = 0
let pal_putc = 1
let pal_putint = 2

type t = {
  regs : int64 array; (* 32 architected registers; r31 pinned to zero *)
  mutable pc : int;
  mem : Memory.t;
  out : Buffer.t;
  mutable icount : int; (* dynamic V-ISA instructions executed *)
  code : Insn.t array; (* predecoded text section *)
  text_base : int;
  text_limit : int;
}

type exec_info = {
  xpc : int; (* address of the executed instruction *)
  insn : Insn.t;
  taken : bool; (* control transfer taken (false for non-control) *)
  next_pc : int;
  ea : int; (* effective address, 0 for non-memory *)
}

type step_result = Step of exec_info | Halted of int | Trapped of trap

let create prog =
  let mem = Memory.create () in
  Program.load prog mem;
  let code = Program.predecode prog in
  let regs = Array.make 32 0L in
  regs.(Reg.sp) <- Int64.of_int Program.stack_top;
  {
    regs;
    pc = prog.entry;
    mem;
    out = Buffer.create 256;
    icount = 0;
    code;
    text_base = prog.text.base;
    text_limit = prog.text.base + (4 * Array.length code);
  }

let get t r = if r = Reg.zero then 0L else t.regs.(r)

let set t r v = if r <> Reg.zero then t.regs.(r) <- v

let output t = Buffer.contents t.out

let fetch t pc =
  if pc < t.text_base || pc >= t.text_limit || pc land 3 <> 0 then None
  else Some t.code.((pc - t.text_base) lsr 2)

let addr_mask = 0x3fffffffffff (* keep effective addresses positive ints *)

let ea_of t rb disp = (Int64.to_int (get t rb) + disp) land addr_mask

let align_ok addr width = addr land (width - 1) = 0

(* Execute the instruction [insn] sitting at [pc] against the architected
   state, returning the outcome. Shared with the DBT runtime, which needs to
   execute individual V-ISA instructions during trap recovery. *)
let exec_insn t pc (insn : Insn.t) : step_result =
  let info ?(taken = false) ?(ea = 0) next_pc =
    Step { xpc = pc; insn; taken; next_pc; ea }
  in
  let seq = pc + 4 in
  match insn with
  | Mem (Lda, ra, disp, rb) ->
    set t ra (Int64.add (get t rb) (Int64.of_int disp));
    info seq
  | Mem (Ldah, ra, disp, rb) ->
    set t ra (Int64.add (get t rb) (Int64.of_int (disp * 65536)));
    info seq
  | Mem (op, ra, disp, rb) -> (
    let addr = ea_of t rb disp in
    let width =
      match op with
      | Ldq | Stq -> 8
      | Ldl | Stl -> 4
      | Ldwu | Stw -> 2
      | _ -> 1
    in
    if not (align_ok addr width) then
      Trapped (Unaligned { pc; addr; width })
    else
      try
        (match op with
        | Ldq -> set t ra (Memory.get_i64 t.mem addr)
        | Ldl ->
          set t ra (Int64.of_int32 (Int64.to_int32 (Int64.of_int (Memory.get_u32 t.mem addr))))
        | Ldwu -> set t ra (Int64.of_int (Memory.get_u16 t.mem addr))
        | Ldbu -> set t ra (Int64.of_int (Memory.get_u8 t.mem addr))
        | Stq -> Memory.set_i64 t.mem addr (get t ra)
        | Stl -> Memory.set_u32 t.mem addr (Int64.to_int (Int64.logand (get t ra) 0xffffffffL))
        | Stw -> Memory.set_u16 t.mem addr (Int64.to_int (Int64.logand (get t ra) 0xffffL))
        | Stb -> Memory.set_u8 t.mem addr (Int64.to_int (Int64.logand (get t ra) 0xffL))
        | Lda | Ldah -> assert false);
        info ~ea:addr seq
      with Memory.Fault a ->
        Trapped (Mem_fault { pc; addr = a; is_store = Insn.is_store insn }))
  | Opr (op, ra, operand, rc) ->
    let b = match operand with Insn.Rb r -> get t r | Imm i -> Int64.of_int i in
    if Insn.is_cmov insn then begin
      if Insn.cond_true (Insn.cmov_cond op) (get t ra) then set t rc b;
      info seq
    end
    else begin
      set t rc (Insn.eval_op op (get t ra) b);
      info seq
    end
  | Br (ra, disp) ->
    set t ra (Int64.of_int seq);
    info ~taken:true (seq + (4 * disp))
  | Bsr (ra, disp) ->
    set t ra (Int64.of_int seq);
    info ~taken:true (seq + (4 * disp))
  | Bc (c, ra, disp) ->
    if Insn.cond_true c (get t ra) then info ~taken:true (seq + (4 * disp))
    else info seq
  | Jump (_, ra, rb) ->
    let target = Int64.to_int (get t rb) land addr_mask land lnot 3 in
    set t ra (Int64.of_int seq);
    info ~taken:true target
  | Call_pal f -> (
    match f with
    | _ when f = pal_halt -> Halted (Int64.to_int (get t Reg.v0) land 0xff)
    | _ when f = pal_putc ->
      Buffer.add_char t.out (Char.chr (Int64.to_int (get t (Reg.arg 0)) land 0xff));
      info seq
    | _ when f = pal_putint ->
      Buffer.add_string t.out (Int64.to_string (get t (Reg.arg 0)));
      Buffer.add_char t.out '\n';
      info seq
    | _ -> Trapped (Illegal { pc }))
  | Lta _ | Push_dras _ | Ret_dras _ | Call_xlate _ | Call_xlate_cond _
  | Set_vbase _ ->
    (* VM extensions never appear in V-ISA memory *)
    Trapped (Illegal { pc })

(* Execute one instruction at the current pc, advancing the state. *)
let step t : step_result =
  match fetch t t.pc with
  | None -> Trapped (Illegal { pc = t.pc })
  | Some insn -> (
    match exec_insn t t.pc insn with
    | Step i as r ->
      t.icount <- t.icount + 1;
      t.pc <- i.next_pc;
      r
    | r -> r)

type outcome = Exit of int | Fault of trap | Out_of_fuel

(* Run to completion (or [fuel] instructions). *)
let run ?(fuel = max_int) t =
  let rec go n =
    if n <= 0 then Out_of_fuel
    else
      match step t with
      | Step _ -> go (n - 1)
      | Halted c -> Exit c
      | Trapped tr -> Fault tr
  in
  go fuel

(* Run while emitting one {!Machine.Ev.t} per committed instruction — the
   trace source for the "original" out-of-order superscalar simulations. *)
let run_ev ?(fuel = max_int) t ~(sink : Ev.t -> unit) =
  let rec go n =
    if n <= 0 then Out_of_fuel
    else
      match step t with
      | Halted c -> Exit c
      | Trapped tr -> Fault tr
      | Step i ->
        sink (Trace.ev_of_exec ~pc:i.xpc ~insn:i.insn ~taken:i.taken
                ~target:i.next_pc ~ea:i.ea ());
        go (n - 1)
  in
  go fuel

(* FNV-1a hash over the architected registers; used with the memory checksum
   to compare final states across execution modes. AT (r28) and GP (r29)
   are excluded: the OSF ABI reserves them between calls and the
   code-straightening DBT borrows them for chaining code, so no conforming
   guest holds live values there. *)
let reg_checksum t =
  let h = ref 0xcbf29ce484222325L in
  for r = 0 to 30 do
    if r <> Reg.at && r <> Reg.gp then begin
      h := Int64.logxor !h t.regs.(r);
      h := Int64.mul !h 0x100000001b3L
    end
  done;
  !h
