(** Alpha integer registers: names and OSF calling convention.

    Registers are plain ints 0..31; {!zero} (r31) reads as zero and
    discards writes. *)

type t = int

val count : int
val zero : t
val v0 : t (** return value, r0 *)

val ra : t (** return address, r26 *)

val pv : t (** procedure value for indirect calls, r27 *)

val at : t (** assembler temporary, r28 — borrowed by the straightening DBT *)

val gp : t (** global pointer, r29 — borrowed by the straightening DBT *)

val sp : t (** stack pointer, r30 *)

val fp : t (** frame pointer, r15 *)

val arg : int -> t
(** [arg i] is a0..a5 (r16..r21) for [i] in 0..5. *)

val temps : t array
(** Caller-saved temporaries in allocation order: t0..t7, t8..t11. *)

val saved : t array
(** Callee-saved s0..s5. *)

val names : string array

val to_string : t -> string

val of_string : string -> t option
(** Accepts ABI names ([t3], [sp]), [rN] and [$N]. *)
