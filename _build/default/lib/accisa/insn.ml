(* The accumulator-oriented implementation ISA (I-ISA).

   One instruction type covers both of the paper's formats:

   - the {e basic} ISA (Section 2.1): each instruction reads/writes at most
     one accumulator and names at most one GPR; architected register state is
     maintained with explicit copy-to-GPR instructions;
   - the {e modified} ISA (Section 2.3): result-producing instructions carry
     an embedded destination GPR ([gdst]) that updates the architected
     register file off the critical path, making copy instructions
     unnecessary. When the output value is also needed for inter-strand
     communication, [gopr] marks a latency-critical operational-GPR write.

   Basic-ISA instructions simply have [gdst = None].

   GPR numbering: 0..31 are the architected Alpha registers; 32..63 are
   VM-private scratch registers used by chaining and dispatch code (the
   I-ISA has "a larger GPR file" than the V-ISA, paper Section 1.1).

   Control-flow targets are translation-cache slot indices, not byte
   addresses (see core.Tcache); the byte-accurate positions used for
   I-cache modelling are carried by the cache's address table.

   The Alpha operate vocabulary {!Alpha.Insn.op3} is reused as the ALU
   operation set: the translator re-maps operands but never changes value
   semantics, which keeps the "same architected results" invariant testable
   against {!Alpha.Insn.eval_op}. *)

type acc = int (* accumulator / strand identifier *)
type gpr = int (* 0..63 *)

(* Operand: at most one [Sacc] and at most one [Sgpr] may appear among an
   instruction's sources — checked by {!well_formed}. *)
type src = Sacc of acc | Sgpr of gpr | Simm of int64

(* Destination bundle of a result-producing instruction.

   [dacc = -1] with [gdst = Some g] is the basic ISA's GPR-destination
   form: the one GPR specifier names the destination (legal only when no
   source is a GPR), no accumulator is written, and the strand ends — used
   for values with no accumulator-linked consumers, avoiding an explicit
   copy-to-GPR (paper Section 2.1: "one GPR, either as a source or a
   destination"). *)
type dst = {
  dacc : acc; (* accumulator written (strand id), -1 for GPR-dest form *)
  gdst : gpr option; (* destination GPR (modified ISA embedded update, or
                        the basic ISA GPR-destination form) *)
  gopr : bool; (* modified ISA: value is also written to the
                  latency-critical operational GPR file *)
}

type width = W1 | W2 | W4 | W8

type t =
  | Alu of { op : Alpha.Insn.op3; d : dst; a : src; b : src }
  | Cmov_test of { cond : Alpha.Insn.cond; d : dst; cv : src; old : src }
    (* d.acc <- old, with predicate flag <- cond(cv) *)
  | Cmov_sel of { d : dst; p : src; nv : src }
    (* d.acc <- pred(p) ? nv : value(p); p must be an accumulator *)
  | Load of { width : width; signed : bool; d : dst; base : src; disp : int }
    (* [disp] is 0 under the paper's base ISAs (addressing modes perform no
       computation, Section 2.1); the Section 4.5 fused-addressing option
       re-introduces a displacement field *)
  | Store of { width : width; value : src; base : src; disp : int }
  | Copy_to_gpr of { g : gpr; a : acc } (* R <- A (basic ISA state copy) *)
  | Copy_from_gpr of { d : dst; g : gpr } (* A <- R (starts a strand) *)
  | Br of { target : int } (* P <- slot *)
  | Bc of { cond : Alpha.Insn.cond; v : src; target : int }
  | Jmp_ind of { v : src } (* P <- register value (I-addresses) *)
  | Lta of { d : dst; value : int64 } (* load-embedded-target-address *)
  | Set_vbase of { vaddr : int } (* first insn of a translation group *)
  | Push_dras of { g : gpr; v_ret : int; i_ret : int }
    (* R[g] <- v_ret; dual-RAS push (v_ret, i_ret slot) *)
  | Ret_dras of { v : src }
    (* pop dual-RAS; if popped V-address = value(v) jump to popped I-slot,
       else fall through (to chaining code) *)
  | Call_xlate of { exit_id : int } (* exit to the VM runtime *)
  | Call_xlate_cond of { cond : Alpha.Insn.cond; v : src; exit_id : int }
    (* patchable conditional exit: becomes [Bc] once the target is hot *)

let width_of_mem : Alpha.Insn.mem_op -> width = function
  | Ldq | Stq -> W8
  | Ldl | Stl -> W4
  | Ldwu | Stw -> W2
  | Ldbu | Stb -> W1
  | Lda | Ldah -> invalid_arg "width_of_mem: not a memory access"

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

(* ---------- structure helpers ---------- *)

let srcs : t -> src list = function
  | Alu { a; b; _ } -> [ a; b ]
  | Cmov_test { cv; old; _ } -> [ cv; old ]
  | Cmov_sel { p; nv; _ } -> [ p; nv ]
  | Load { base; _ } -> [ base ]
  | Store { value; base; _ } -> [ value; base ]
  | Copy_to_gpr { a; _ } -> [ Sacc a ]
  | Copy_from_gpr { g; _ } -> [ Sgpr g ]
  | Bc { v; _ } -> [ v ]
  | Jmp_ind { v } -> [ v ]
  | Ret_dras { v } -> [ v ]
  | Call_xlate_cond { v; _ } -> [ v ]
  | Br _ | Lta _ | Set_vbase _ | Push_dras _ | Call_xlate _ -> []

let dst_of : t -> dst option = function
  | Alu { d; _ } | Cmov_test { d; _ } | Cmov_sel { d; _ } | Load { d; _ }
  | Copy_from_gpr { d; _ } | Lta { d; _ } ->
    Some d
  | _ -> None

let acc_read i =
  List.find_map (function Sacc a -> Some a | _ -> None) (srcs i)

let gpr_read i =
  List.find_map (function Sgpr g -> Some g | _ -> None) (srcs i)

let acc_written i =
  match dst_of i with Some d when d.dacc >= 0 -> Some d.dacc | _ -> None

let is_control = function
  | Br _ | Bc _ | Jmp_ind _ | Ret_dras _ | Call_xlate _ | Call_xlate_cond _ ->
    true
  | _ -> false

(* Potentially excepting instruction in translated code. *)
let is_pei = function Load _ | Store _ -> true | _ -> false

(* ---------- the ISA's well-formedness constraints ----------

   Checked by tests over every translation the DBT produces:
   - at most one accumulator among the sources,
   - at most one GPR among the sources (basic ISA also allows at most one
     GPR *named*, i.e. sources + copy destination),
   - Cmov_sel's predicate source is an accumulator. *)
let well_formed i =
  let ss = srcs i in
  let n_acc =
    List.length
      (List.sort_uniq compare
         (List.filter_map (function Sacc a -> Some a | _ -> None) ss))
  in
  let n_gpr =
    List.length
      (List.sort_uniq compare
         (List.filter_map (function Sgpr g -> Some g | _ -> None) ss))
  in
  let cmov_ok =
    match i with Cmov_sel { p = Sacc _; _ } -> true | Cmov_sel _ -> false | _ -> true
  in
  n_acc <= 1 && n_gpr <= 1 && cmov_ok

(* A basic-ISA instruction must not use the modified-ISA destination fields;
   the GPR-destination form (dacc = -1) is legal only when no source names
   a GPR (one-GPR rule). *)
let basic_formed i =
  match dst_of i with
  | Some { gopr = true; _ } -> false
  | Some { dacc; gdst = Some _; _ } ->
    dacc < 0
    && (not (List.exists (function Sgpr _ -> true | _ -> false) (srcs i)))
    && well_formed i
  | _ -> well_formed i
