(** Encoded-size model for the I-ISA (16- vs 32-bit formats).

    The accumulator ISA of [28] encodes most instructions in 16 bits; wide
    immediates, branch offsets, fused displacements and a destination-GPR
    specifier that cannot share the single GPR slot force 32 bits; the
    special chaining instructions embedding full addresses count 64 bits.
    Feeds the "relative static instruction bytes" columns of Table 2. *)

val imm_fits_small : int64 -> bool

val gdst_needs_slot : Insn.dst -> Insn.src list -> bool
(** Does the destination-GPR specifier need its own field? [false] when no
    source names a GPR (the slot is free) or when the destination {e is}
    the GPR source (the shared-specifier shape of Fig. 2d). *)

val bytes : Insn.t -> int
(** Encoded size in bytes of one instruction. *)

val total : Insn.t list -> int
