(* Encoded-size model for the I-ISA (16- vs 32-bit instruction formats).

   The paper's ISA ([28], Section 2.1) encodes many instructions in 16 bits:
   one accumulator specifier, at most one GPR specifier, and small
   immediates. Instructions needing a 16-bit immediate, a branch offset, or
   (in the modified ISA) a destination-GPR specifier on top of a full
   operand set take 32 bits. The special chaining instructions embed full
   target addresses and are modelled at 64 bits (instruction + address
   word).

   These constants feed the "relative static instruction bytes" columns of
   Table 2; what matters for reproduction is that the basic ISA enjoys more
   16-bit encodings per instruction while the modified ISA wins on
   instruction count. *)

let imm_fits_small v = Int64.compare v (-16L) >= 0 && Int64.compare v 15L <= 0

let src_small = function
  | Insn.Simm v -> imm_fits_small v
  | Insn.Sacc _ | Insn.Sgpr _ -> true

(* Does the destination-GPR specifier of a modified-ISA instruction need
   its own field? The format has one GPR slot: an instruction whose sources
   use no GPR gives the slot to [gdst]; and when the destination register
   *is* the GPR source (the common `R3 <- A0 xor R3` shape of Fig. 2d) the
   single specifier is shared. Only a gdst different from a present GPR
   source forces the wide format. *)
let gdst_needs_slot (d : Insn.dst) srcs =
  match d.gdst with
  | None -> false
  | Some g ->
    List.exists (function Insn.Sgpr g' -> g' <> g | _ -> false) srcs

(* Size in bytes of one I-ISA instruction under the given format. *)
let bytes (i : Insn.t) =
  match i with
  | Alu { d; a; b; _ } | Cmov_test { d; cv = a; old = b; _ } ->
    let base = if src_small a && src_small b then 2 else 4 in
    if gdst_needs_slot d [ a; b ] then 4 else base
  | Cmov_sel { d; p; nv } -> if gdst_needs_slot d [ p; nv ] then 4 else 2
  | Load { d; base; disp; _ } ->
    if disp <> 0 || gdst_needs_slot d [ base ] then 4 else 2
  | Store { disp; _ } -> if disp <> 0 then 4 else 2
  | Copy_to_gpr _ | Copy_from_gpr _ -> 2
  | Br _ | Bc _ -> 4
  | Jmp_ind _ | Ret_dras _ -> 2
  | Lta _ | Set_vbase _ | Push_dras _ -> 8
  | Call_xlate _ -> 4
  | Call_xlate_cond _ -> 4 (* same size as the Bc that patches over it *)

let total insns = List.fold_left (fun n i -> n + bytes i) 0 insns
