(* I-ISA pretty-printer, in the paper's RTL-flavoured notation.

   Basic ISA:      A0 <- mem[R16]
   Modified ISA:   R3 (A0) <- mem[R16]        (Fig. 2 of the paper) *)

let gpr g = if g < 32 then Printf.sprintf "R%d" g else Printf.sprintf "V%d" (g - 32)

let src = function
  | Insn.Sacc a -> Printf.sprintf "A%d" a
  | Insn.Sgpr g -> gpr g
  | Insn.Simm v -> Int64.to_string v

let dst (d : Insn.dst) =
  match d.gdst with
  | None -> Printf.sprintf "A%d" d.dacc
  | Some g ->
    Printf.sprintf "%s%s(A%d)" (gpr g) (if d.gopr then "!" else " ") d.dacc

let cond_name = Alpha.Disasm.cond_name

let op_name = Alpha.Disasm.opr_name

let to_string : Insn.t -> string = function
  | Alu { op; d; a; b } ->
    Printf.sprintf "%s <- %s %s, %s" (dst d) (op_name op) (src a) (src b)
  | Cmov_test { cond; d; cv; old } ->
    Printf.sprintf "%s <- cmtest.%s %s ? %s" (dst d) (cond_name cond) (src cv)
      (src old)
  | Cmov_sel { d; p; nv } ->
    Printf.sprintf "%s <- cmsel %s : %s" (dst d) (src p) (src nv)
  | Load { width; d; base; disp; _ } ->
    if disp = 0 then
      Printf.sprintf "%s <- mem%d[%s]" (dst d) (Insn.bytes_of_width width) (src base)
    else
      Printf.sprintf "%s <- mem%d[%s + %d]" (dst d) (Insn.bytes_of_width width)
        (src base) disp
  | Store { width; value; base; disp } ->
    if disp = 0 then
      Printf.sprintf "mem%d[%s] <- %s" (Insn.bytes_of_width width) (src base)
        (src value)
    else
      Printf.sprintf "mem%d[%s + %d] <- %s" (Insn.bytes_of_width width)
        (src base) disp (src value)
  | Copy_to_gpr { g; a } -> Printf.sprintf "%s <- A%d" (gpr g) a
  | Copy_from_gpr { d; g } -> Printf.sprintf "%s <- %s" (dst d) (gpr g)
  | Br { target } -> Printf.sprintf "P <- @%d" target
  | Bc { cond; v; target } ->
    Printf.sprintf "P <- @%d, if (%s %s)" target (src v) (cond_name cond)
  | Jmp_ind { v } -> Printf.sprintf "P <- %s" (src v)
  | Lta { d; value } -> Printf.sprintf "%s <- lta %#Lx" (dst d) value
  | Set_vbase { vaddr } -> Printf.sprintf "vbase <- %#x" vaddr
  | Push_dras { g; v_ret; i_ret } ->
    Printf.sprintf "%s <- %#x; dras.push(%#x, @%d)" (gpr g) v_ret v_ret i_ret
  | Ret_dras { v } -> Printf.sprintf "P <- dras.pop ? %s" (src v)
  | Call_xlate { exit_id } -> Printf.sprintf "call-translator #%d" exit_id
  | Call_xlate_cond { cond; v; exit_id } ->
    Printf.sprintf "call-translator #%d, if (%s %s)" exit_id (src v)
      (cond_name cond)

let pp fmt i = Format.pp_print_string fmt (to_string i)
