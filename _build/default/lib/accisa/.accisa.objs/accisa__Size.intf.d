lib/accisa/size.mli: Insn
