lib/accisa/trace.ml: Insn List Machine Option Size
