lib/accisa/disasm.ml: Alpha Format Insn Int64 Printf
