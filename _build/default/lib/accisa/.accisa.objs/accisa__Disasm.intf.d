lib/accisa/disasm.mli: Format Insn
