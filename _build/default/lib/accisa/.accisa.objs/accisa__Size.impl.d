lib/accisa/size.ml: Insn Int64 List
