lib/accisa/insn.ml: Alpha List
