module Ev = Machine.Ev

(* Conversion from executed I-ISA instructions to {!Machine.Ev.t} events.

   The DBT execution engine (core.Exec) calls [ev] for every committed
   instruction with the dynamic facts only it knows: the instruction's
   byte address in the translation cache, branch outcome and target (also
   as byte addresses), effective address, dual-RAS verification outcome,
   and how many V-ISA instructions this event retires. *)

let cls_of : Insn.t -> Ev.cls = function
  | Alu { op = Mull | Mulq | Umulh; _ } -> Mul
  | Alu _ | Cmov_test _ | Cmov_sel _ | Copy_to_gpr _ | Copy_from_gpr _
  | Lta _ | Set_vbase _ -> Alu
  | Load _ -> Load
  | Store _ -> Store
  | Bc _ | Call_xlate_cond _ -> Cond_br
  | Br _ | Jmp_ind _ | Call_xlate _ -> Jump
  | Push_dras _ -> Alu
  | Ret_dras _ -> Ret

let pred_of (i : Insn.t) ~dras_hit : Ev.pred =
  match i with
  | Bc _ | Call_xlate_cond _ -> P_cond
  | Br _ | Call_xlate _ -> P_direct
  | Jmp_ind _ -> P_indirect
  | Push_dras _ -> P_dras_call
  | Ret_dras _ -> P_dras_ret dras_hit
  | _ -> Not_control

let token = function
  | Insn.Sacc a -> Ev.acc_token a
  | Insn.Sgpr g -> g
  | Insn.Simm _ -> -1

(* Destination tokens: (primary, secondary, secondary-is-lazy). The
   accumulator write is the primary dependence-bearing destination; a second
   token appears for GPR updates. A modified-ISA [gdst] without [gopr]
   updates only the off-critical-path architected file and drains lazily —
   marked lazy so the ILDP timing model charges the drain latency to any
   (cross-fragment) consumer. *)
let dst_tokens (i : Insn.t) =
  match i with
  | Copy_to_gpr { g; _ } -> (g, -1, false)
  | Push_dras { g; _ } -> (g, -1, false)
  | _ -> (
    match Insn.dst_of i with
    | None -> (-1, -1, false)
    | Some d when d.dacc < 0 ->
      (* basic-ISA GPR-destination form: a plain GPR write *)
      (Option.value ~default:(-1) d.gdst, -1, false)
    | Some d ->
      let second = Option.value ~default:(-1) d.gdst in
      (Ev.acc_token d.dacc, second, (second >= 0 && not d.gopr)))

(* Steering identifier: the accumulator this instruction belongs to. *)
let steer_acc (i : Insn.t) =
  match Insn.acc_written i with
  | Some a -> a
  | None -> ( match Insn.acc_read i with Some a -> a | None -> -1)

let ev ?(dras_hit = false) ?(strand_start = false) ?(alpha_count = 0) ~pc ~ea
    ~taken ~target (i : Insn.t) : Ev.t =
  let ss = Insn.srcs i in
  let nth n = match List.nth_opt ss n with Some s -> token s | None -> -1 in
  let dst, dst2, lazy_dst2 = dst_tokens i in
  {
    pc;
    size = Size.bytes i;
    cls = cls_of i;
    src1 = nth 0;
    src2 = nth 1;
    src3 = -1;
    dst;
    dst2;
    lazy_dst2;
    acc = steer_acc i;
    strand_start;
    ea;
    taken;
    target;
    pred = pred_of i ~dras_hit;
    alpha_count;
  }
