(** I-ISA pretty-printer in the paper's RTL-flavoured notation:
    basic ISA [A0 <- mem8[R16]], modified ISA [R3 (A0) <- A0 and 255]
    (cf. the paper's Fig. 2c/2d). *)

val gpr : int -> string
val src : Insn.src -> string
val dst : Insn.dst -> string
val to_string : Insn.t -> string
val pp : Format.formatter -> Insn.t -> unit
