(* 164.gzip analogue: LZ77-style rolling-hash match search over a byte
   stream — byte loads, short dependence chains, the paper's Fig. 2 code
   shape. Input bytes come from a deterministic LCG with planted
   redundancy so both match and literal paths stay hot. *)

let name = "gzip"
let description = "byte-stream rolling-hash match search (LZ77-like)"

let source ~scale =
  Printf.sprintf
    {|
int head[4096];
int matches = 0;
int literals = 0;
int checksum = 0;
byte input[16384];

int main() {
  int n = %d;
  int rounds = %d;
  int seed = 12345;
  int i;
  int r;
  for (i = 0; i < n; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    input[i] = (seed >> 16) & 255;
    if ((i & 31) < 12) { input[i] = 65 + (i & 3); }
  }
  for (r = 0; r < rounds; r = r + 1) {
    for (i = 0; i < 4096; i = i + 1) { head[i] = 0; }
    int h = 0;
    i = 0;
    while (i + 8 < n) {
      h = ((input[i] << 7) ^ (input[i + 1] << 3) ^ input[i + 2]) & 4095;
      int j = head[h];
      head[h] = i;
      int len = 0;
      if (j > 0 && j < i) {
        while (len < 8 && input[j + len] == input[i + len]) { len = len + 1; }
      }
      if (len >= 3) { matches = matches + 1; i = i + len; }
      else { literals = literals + 1; i = i + 1; }
      checksum = (checksum + input[i] + len) & 0xffffff;
    }
  }
  print matches;
  print literals;
  print checksum;
  return 0;
}
|}
    (min 16000 (4000 * scale))
    (max 1 scale)
