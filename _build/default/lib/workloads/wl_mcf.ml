(* 181.mcf analogue: network-simplex-flavoured pointer chasing — nodes as
   parallel arrays linked by index "pointers"; the hot loop walks successor
   chains (serial dependence through loads) relaxing costs. Low ILP, memory
   latency bound. *)

let name = "mcf"
let description = "linked-list pointer chasing with cost relaxation"

let source ~scale =
  Printf.sprintf
    {|
int next[4096];
int cost[4096];
int pot[4096];
int relaxed = 0;
int total = 0;

int main() {
  int n = 4096;
  int rounds = %d;
  int seed = 31337;
  int i;
  // a pseudo-random single cycle through all nodes
  for (i = 0; i < n; i = i + 1) {
    next[i] = (i * 1021 + 517) & 4095;
    seed = seed * 1103515245 + 12345;
    cost[i] = (seed >> 20) & 255;
    pot[i] = 0;
  }
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    int u = r & 4095;
    int steps = 400;
    while (steps > 0) {
      int v = next[u];
      int c = pot[u] + cost[u];
      if (c < pot[v] || pot[v] == 0) { pot[v] = c; relaxed = relaxed + 1; }
      u = v;
      steps = steps - 1;
    }
    total = total + pot[u];
  }
  print relaxed;
  print total & 0xffffff;
  return 0;
}
|}
    (max 1 (25 * scale))
