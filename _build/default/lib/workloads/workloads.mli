(** The twelve SPEC CPU2000 INT analogue workloads.

    Each is MiniC source parameterised by [scale]; scale 1 sizes a run at a
    few hundred thousand dynamic V-ISA instructions — small enough that the
    full evaluation sweep takes seconds, large enough that every hot region
    is translated and re-executed many times. See each [wl_*.ml] for the
    control-flow/ILP signature its namesake motivates. *)

type t = {
  name : string;  (** SPEC CPU2000 INT benchmark it mimics, e.g. "gzip" *)
  description : string;
  source : scale:int -> string;  (** MiniC source at the given scale *)
}

val all : t list
(** The twelve analogues, in the customary SPEC INT order. *)

val find : string -> t option

val program : ?scale:int -> t -> Alpha.Program.t
(** Compile (and memoise) the workload. *)

val reference : ?scale:int -> ?fuel:int -> t -> int * string * int
(** Run under the plain interpreter: (exit code, PAL output, dynamic V-ISA
    instruction count). Raises [Failure] if the workload faults. *)
