(* 176.gcc analogue: a token-stream "compiler front end" — one large dense
   switch (compiled to a jump table, i.e. register-indirect jumps) over a
   synthetic token stream, with branchy per-case processing and a growing
   symbol-ish table. *)

let name = "gcc"
let description = "token-stream processing through a 16-way jump table"

let source ~scale =
  Printf.sprintf
    {|
int toks[8192];
int symtab[512];
int emitted = 0;
int errors = 0;
int depth = 0;

int main() {
  int n = %d;
  int seed = 424242;
  int i;
  for (i = 0; i < n; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    toks[i] = (seed >> 18) & 15;
  }
  for (i = 0; i < 512; i = i + 1) { symtab[i] = 0; }
  int state = 0;
  for (i = 0; i < n; i = i + 1) {
    int t = toks[i];
    switch (t) {
      case 0: state = state + 1; emitted = emitted + 1; break;
      case 1: state = state - 1; break;
      case 2: symtab[(state + i) & 511] = i; emitted = emitted + 2; break;
      case 3: if (symtab[i & 511] != 0) { emitted = emitted + 1; } break;
      case 4: depth = depth + 1; break;
      case 5: if (depth > 0) { depth = depth - 1; } else { errors = errors + 1; } break;
      case 6: state = state ^ t; break;
      case 7: state = (state << 1) & 0xffff; break;
      case 8: state = state | 1; emitted = emitted + 1; break;
      case 9: if (state & 1) { emitted = emitted + 1; } else { errors = errors + 1; } break;
      case 10: symtab[state & 511] = symtab[(state + 7) & 511] + 1; break;
      case 11: state = symtab[i & 511] + depth; break;
      case 12: emitted = emitted + (state & 3); break;
      case 13: if (i & 1) { state = state + 3; } break;
      case 14: state = state * 5 + 1; break;
      default: errors = errors + 1; break;
    }
  }
  print emitted;
  print errors;
  print state & 0xffff;
  print depth;
  return 0;
}
|}
    (min 8000 (5000 * scale))
