(* 252.eon analogue: fixed-point (16.16) ray-sphere intersection tests —
   multiply-heavy straight-line math inside small functions, plus an
   indirect "shader" dispatch through a function table (eon is C++: its
   virtual calls are indirect). *)

let name = "eon"
let description = "fixed-point ray tracing kernels with shader dispatch"

let source ~scale =
  Printf.sprintf
    {|
int hits = 0;
int misses = 0;
int shade_acc = 0;

int fxmul(int a, int b) { return (a * b) >> 16; }

int dot(int ax, int ay, int az, int bx, int by, int bz) {
  return fxmul(ax, bx) + fxmul(ay, by) + fxmul(az, bz);
}

int shade_flat(int d) { return d >> 2; }
int shade_diffuse(int d) { return fxmul(d, d) + (d >> 4); }
int shade_spec(int d) { return fxmul(fxmul(d, d), d); }
func shaders[] = { shade_flat, shade_diffuse, shade_spec };

int main() {
  int rounds = %d;
  int one = 65536;
  int seed = 99;
  int sh = 0;
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    int dx = (seed >> 40) & 0xffff;
    int dy = (seed >> 24) & 0xffff;
    int dz = one - ((dx + dy) >> 1);
    int cx = one >> 1;
    int cy = one >> 2;
    int cz = one;
    int radius2 = one >> 1;
    // |C|^2 - (C.D)^2 <= r^2  (D approximately unit)
    int cd = dot(cx, cy, cz, dx, dy, dz);
    int cc = dot(cx, cy, cz, cx, cy, cz);
    int disc = radius2 - (cc - fxmul(cd, cd));
    if (disc > 0) {
      hits = hits + 1;
      shade_acc = (shade_acc + shaders[sh](cd)) & 0xffffff;
    } else {
      misses = misses + 1;
    }
    sh = sh + 1;
    sh = sel(sh == 3, 0, sh);
  }
  print hits;
  print misses;
  print shade_acc;
  return 0;
}
|}
    (max 1 (900 * scale))
