(* 255.vortex analogue: an object-database kernel — hash-table insert,
   lookup and delete with collision chains in index arrays, driven by a
   deterministic operation stream through small functions. Call + memory
   reference heavy. *)

let name = "vortex"
let description = "hash-table database: insert/lookup/delete streams"

let source ~scale =
  Printf.sprintf
    {|
int bucket[1024];   // head index + 1, 0 = empty
int keys[4096];
int vals[4096];
int chain[4096];    // next index + 1
int free_top = 1;
int found = 0;
int missing = 0;
int inserted = 0;
int deleted = 0;

int hash(int k) {
  int h = k * 2654435761;
  return (h >> 8) & 1023;
}

int insert(int k, int v) {
  if (free_top >= 4096) { return 0; }
  int h = hash(k);
  int idx = free_top;
  free_top = free_top + 1;
  keys[idx] = k;
  vals[idx] = v;
  chain[idx] = bucket[h];
  bucket[h] = idx + 1;
  inserted = inserted + 1;
  return idx;
}

int lookup(int k) {
  int cur = bucket[hash(k)];
  while (cur != 0) {
    if (keys[cur - 1] == k) { found = found + 1; return vals[cur - 1]; }
    cur = chain[cur - 1];
  }
  missing = missing + 1;
  return 0 - 1;
}

int remove(int k) {
  int h = hash(k);
  int cur = bucket[h];
  int prev = 0;
  while (cur != 0) {
    if (keys[cur - 1] == k) {
      if (prev == 0) { bucket[h] = chain[cur - 1]; }
      else { chain[prev - 1] = chain[cur - 1]; }
      deleted = deleted + 1;
      return 1;
    }
    prev = cur;
    cur = chain[cur - 1];
  }
  return 0;
}

int main() {
  int ops = %d;
  int seed = 404;
  int i;
  for (i = 0; i < 1024; i = i + 1) { bucket[i] = 0; }
  int acc = 0;
  for (i = 0; i < ops; i = i + 1) {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    int k = (seed >> 30) & 2047;
    int op = (seed >> 20) & 3;
    if (op == 0) { insert(k, i); }
    else { if (op == 3) { remove(k); } else { acc = acc + lookup(k); } }
    if (free_top >= 4000) {
      // compact: drop everything (a "commit") and start refilling
      int b;
      for (b = 0; b < 1024; b = b + 1) { bucket[b] = 0; }
      free_top = 1;
    }
  }
  print inserted;
  print found;
  print missing;
  print deleted;
  print acc & 0xffffff;
  return 0;
}
|}
    (max 1 (1800 * scale))
