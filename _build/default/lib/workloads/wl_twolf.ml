(* 300.twolf analogue: simulated-annealing placement — cells on a grid,
   random pair swaps accepted when half-perimeter wirelength improves (or
   with decaying "temperature"). Heavy on [sel] (CMOV) absolute values and
   data-dependent branches. *)

let name = "twolf"
let description = "annealing-style cell placement with wirelength costs"

let source ~scale =
  Printf.sprintf
    {|
int cx[256];
int cy[256];
int net_a[256];
int net_b[256];
int accepted = 0;
int rejected = 0;
int cost_now = 0;

int absd(int d) { return sel(d < 0, 0 - d, d); }

int net_cost(int n) {
  int a = net_a[n];
  int b = net_b[n];
  return absd(cx[a] - cx[b]) + absd(cy[a] - cy[b]);
}

int total_cost() {
  int s = 0;
  int n;
  for (n = 0; n < 256; n = n + 1) { s = s + net_cost(n); }
  return s;
}

int main() {
  int moves = %d;
  int seed = 2718281;
  int i;
  for (i = 0; i < 256; i = i + 1) {
    cx[i] = (i * 7) & 63;
    cy[i] = (i * 13) & 63;
    net_a[i] = i;
    net_b[i] = (i * 57 + 3) & 255;
  }
  cost_now = total_cost();
  int temp = 8;
  int step = (moves >> 3) + 1;
  int next_drop = step;
  int m;
  for (m = 0; m < moves; m = m + 1) {
    if (m == next_drop) { temp = temp - 1; next_drop = next_drop + step; }
    seed = seed * 6364136223846793005 + 1442695040888963407;
    int a = (seed >> 32) & 255;
    int b = (seed >> 24) & 255;
    int before = net_cost(a) + net_cost(b);
    // swap the two cells' coordinates
    int tx = cx[a]; cx[a] = cx[b]; cx[b] = tx;
    int ty = cy[a]; cy[a] = cy[b]; cy[b] = ty;
    int after = net_cost(a) + net_cost(b);
    if (after - before <= temp) {
      accepted = accepted + 1;
      cost_now = cost_now + after - before;
    } else {
      rejected = rejected + 1;
      tx = cx[a]; cx[a] = cx[b]; cx[b] = tx;
      ty = cy[a]; cy[a] = cy[b]; cy[b] = ty;
    }
  }
  print accepted;
  print rejected;
  print cost_now;
  return 0;
}
|}
    (max 1 (700 * scale))
