lib/workloads/wl_parser.ml: Printf
