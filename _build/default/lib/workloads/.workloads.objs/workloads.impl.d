lib/workloads/workloads.ml: Alpha Format Hashtbl List Minic Printf Wl_bzip2 Wl_crafty Wl_eon Wl_gap Wl_gcc Wl_gzip Wl_mcf Wl_parser Wl_perlbmk Wl_twolf Wl_vortex Wl_vpr
