lib/workloads/wl_bzip2.ml: Printf
