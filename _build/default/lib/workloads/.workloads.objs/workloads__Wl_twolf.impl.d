lib/workloads/wl_twolf.ml: Printf
