lib/workloads/wl_gap.ml: Printf
