lib/workloads/wl_gcc.ml: Printf
