lib/workloads/workloads.mli: Alpha
