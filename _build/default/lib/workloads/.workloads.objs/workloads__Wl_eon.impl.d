lib/workloads/wl_eon.ml: Printf
