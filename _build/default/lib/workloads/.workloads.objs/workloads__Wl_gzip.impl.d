lib/workloads/wl_gzip.ml: Printf
