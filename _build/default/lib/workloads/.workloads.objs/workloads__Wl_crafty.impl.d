lib/workloads/wl_crafty.ml: Printf
