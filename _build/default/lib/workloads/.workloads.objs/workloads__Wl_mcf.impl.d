lib/workloads/wl_mcf.ml: Printf
