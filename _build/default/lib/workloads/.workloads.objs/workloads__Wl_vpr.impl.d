lib/workloads/wl_vpr.ml: Printf
