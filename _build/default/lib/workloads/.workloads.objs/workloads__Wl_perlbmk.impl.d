lib/workloads/wl_perlbmk.ml: Printf
