(* 186.crafty analogue: bitboard manipulation — 64-bit logical operations,
   shift-based attack-mask generation and population counts, with [sel]
   (CMOV) min/max in the evaluation. Logical-op dominated, high ILP. *)

let name = "crafty"
let description = "bitboard attack masks and popcounts (64-bit logical ops)"

let source ~scale =
  Printf.sprintf
    {|
int boards[256];
int best = 0;
int nodes = 0;

int popcount(int b) {
  int m1 = 0x5555555555555555;
  int m2 = 0x3333333333333333;
  int m4 = 0x0f0f0f0f0f0f0f0f;
  b = b - ((b >> 1) & m1);
  b = (b & m2) + ((b >> 2) & m2);
  b = (b + (b >> 4)) & m4;
  return (b * 0x0101010101010101) >> 56;
}

int king_attacks(int sq) {
  int b = 1 << sq;
  int notA = ~0x0101010101010101;
  int notH = ~0x8080808080808080;
  int a = ((b << 1) & notA) | ((b >> 1) & notH);
  a = a | (b << 8) | (b >> 8);
  a = a | (((b << 9) | (b >> 7)) & notA);
  a = a | (((b << 7) | (b >> 9)) & notH);
  return a;
}

int main() {
  int rounds = %d;
  int seed = 0x9e3779b9;
  int i;
  for (i = 0; i < 256; i = i + 1) {
    seed = seed * 6364136223846793005 + 1442695040888963407;
    boards[i] = seed;
  }
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    int sq;
    for (sq = 0; sq < 64; sq = sq + 1) {
      int occ = boards[(r + sq) & 255];
      int att = king_attacks(sq);
      int hits = popcount(att & occ);
      int score = hits * 3 - popcount(att & ~occ);
      best = sel(score > best, score, best);
      nodes = nodes + 1;
      boards[(r + sq) & 255] = occ ^ (att & (occ >> 1));
    }
  }
  print best;
  print nodes;
  print boards[13] & 0xffffff;
  return 0;
}
|}
    (max 1 (35 * scale))
