(* 253.perlbmk analogue: a bytecode interpreter — the canonical
   indirect-jump workload. A threaded dispatch loop runs a generated
   bytecode program through a dense switch; string-ish byte-array ops mimic
   Perl's text processing. *)

let name = "perlbmk"
let description = "bytecode interpreter with switch dispatch"

let source ~scale =
  Printf.sprintf
    {|
int code[2048];
int stack[256];
int vars[64];
byte text[2048];
int executed = 0;
int output = 0;

int main() {
  int rounds = %d;
  int codelen = 600;
  int seed = 271828;
  int i;
  for (i = 0; i < codelen; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    code[i] = (seed >> 17) & 7;
  }
  for (i = 0; i < 2048; i = i + 1) { text[i] = 97 + (i & 15); }
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    int pc = 0;
    int sp = 0;
    int steps = 0;
    while (pc < codelen && steps < 4000) {
      int op = code[pc];
      steps = steps + 1;
      switch (op) {
        case 0:  // push pc
          stack[sp & 255] = pc; sp = sp + 1; pc = pc + 1; break;
        case 1:  // add top two
          if (sp >= 2) { stack[(sp - 2) & 255] = stack[(sp - 2) & 255] + stack[(sp - 1) & 255]; sp = sp - 1; }
          pc = pc + 1; break;
        case 2:  // store var
          if (sp >= 1) { vars[pc & 63] = stack[(sp - 1) & 255]; sp = sp - 1; }
          pc = pc + 1; break;
        case 3:  // load var
          stack[sp & 255] = vars[pc & 63]; sp = sp + 1; pc = pc + 1; break;
        case 4:  // text match step
          output = output + text[(stack[sp & 255] + pc) & 2047];
          pc = pc + 1; break;
        case 5:  // conditional skip
          if (vars[pc & 63] & 1) { pc = pc + 2; } else { pc = pc + 1; }
          break;
        case 6:  // backward hop (bounded)
          if ((steps & 63) == 0) { pc = (pc >> 1) + 1; } else { pc = pc + 1; }
          break;
        default: // nop-ish text churn
          text[pc & 2047] = (text[pc & 2047] + 1) & 255;
          pc = pc + 1;
          break;
      }
      executed = executed + 1;
    }
  }
  print executed;
  print output & 0xffffff;
  return 0;
}
|}
    (max 1 (10 * scale))
