(* 254.gap analogue: computational group theory in miniature —
   permutation composition, cycle-order computation and small modular
   arithmetic over word arrays. Multiply and array-index dominated. *)

let name = "gap"
let description = "permutation composition and cycle orders"

let source ~scale =
  Printf.sprintf
    {|
int p[64];
int q[64];
int r[64];
int orders = 0;
int checksum = 0;

int compose() {
  int i;
  for (i = 0; i < 64; i = i + 1) { r[i] = p[q[i]]; }
  for (i = 0; i < 64; i = i + 1) { p[i] = r[i]; }
  return 0;
}

int cycle_order(int start) {
  int x = p[start];
  int len = 1;
  while (x != start && len < 64) { x = p[x]; len = len + 1; }
  return len;
}

int main() {
  int rounds = %d;
  int seed = 5;
  int i;
  for (i = 0; i < 64; i = i + 1) { p[i] = i; }
  // q: a fixed full-cycle permutation with multiplicative stride
  for (i = 0; i < 64; i = i + 1) { q[i] = (i * 37 + 11) & 63; }
  int rr;
  for (rr = 0; rr < rounds; rr = rr + 1) {
    compose();
    seed = seed * 1103515245 + 12345;
    int s = (seed >> 16) & 63;
    orders = orders + cycle_order(s);
    checksum = (checksum * 131 + p[s]) & 0xffffff;
  }
  print orders;
  print checksum;
  return 0;
}
|}
    (max 1 (180 * scale))
