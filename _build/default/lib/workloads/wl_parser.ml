(* 197.parser analogue: recursive-descent evaluation of generated
   expression streams — deep call/return chains, the workload that
   stresses return-address prediction (the dual-address RAS experiments). *)

let name = "parser"
let description = "recursive-descent expression evaluation (call/return heavy)"

let source ~scale =
  Printf.sprintf
    {|
// token codes: 0 num, 1 '+', 2 '*', 3 '(', 4 ')', 5 end
int tk[4096];
int tv[4096];
int pos = 0;
int parsed = 0;

int gen(int i, int depth, int seed) {
  // deterministically fill tk/tv with a nest of parenthesised sums
  if (depth > 6 || i > 3800) {
    tk[i] = 0; tv[i] = seed & 63;
    return i + 1;
  }
  int s2 = seed * 1103515245 + 12345;
  int choice = (s2 >> 16) & 3;
  if (choice == 0) {
    tk[i] = 0; tv[i] = s2 & 63;
    return i + 1;
  }
  if (choice == 1) {
    tk[i] = 3;
    int j = gen(i + 1, depth + 1, s2);
    tk[j] = 4;
    return j + 1;
  }
  int k = gen(i, depth + 1, s2);
  tk[k] = sel(choice == 2, 1, 2);
  return gen(k + 1, depth + 1, s2 * 3 + 1);
}

// (all functions are pre-registered: mutual recursion needs no forward decl)
int parse_factor() {
  int t = tk[pos];
  if (t == 3) {
    pos = pos + 1;
    int v = parse_expr();
    pos = pos + 1;  // ')'
    return v;
  }
  pos = pos + 1;
  return tv[pos - 1];
}

int parse_term() {
  int v = parse_factor();
  while (tk[pos] == 2) {
    pos = pos + 1;
    v = (v * parse_factor()) & 0xffff;
  }
  return v;
}

int parse_expr() {
  int v = parse_term();
  while (tk[pos] == 1) {
    pos = pos + 1;
    v = (v + parse_term()) & 0xffff;
  }
  parsed = parsed + 1;
  return v;
}

int main() {
  int rounds = %d;
  int total = 0;
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    int end = gen(0, 0, r * 2654435761 + 17);
    tk[end] = 5;
    pos = 0;
    total = (total + parse_expr()) & 0xffffff;
  }
  print total;
  print parsed;
  return 0;
}
|}
    (max 1 (220 * scale))
