(* 175.vpr analogue: FPGA-style maze routing — breadth-first wave expansion
   over a grid with obstacles, queue in an int array, per-neighbour bounds
   checks. Branchy with irregular memory access. *)

let name = "vpr"
let description = "maze routing: BFS wave expansion over an obstructed grid"

let source ~scale =
  Printf.sprintf
    {|
int grid[4096];   // 64x64: 0 free, 1 blocked, >=2 visited-mark
int queue[4096];
int routed = 0;
int failed = 0;
int touched = 0;

int route(int src, int dst, int mark) {
  int head = 0;
  int tail = 0;
  queue[tail] = src;
  tail = tail + 1;
  grid[src] = mark;
  while (head < tail) {
    int cur = queue[head];
    head = head + 1;
    if (cur == dst) { return 1; }
    int x = cur & 63;
    int y = cur >> 6;
    // four neighbours with bounds checks
    if (x > 0 && grid[cur - 1] == 0) { grid[cur - 1] = mark; queue[tail] = cur - 1; tail = tail + 1; }
    if (x < 63 && grid[cur + 1] == 0) { grid[cur + 1] = mark; queue[tail] = cur + 1; tail = tail + 1; }
    if (y > 0 && grid[cur - 64] == 0) { grid[cur - 64] = mark; queue[tail] = cur - 64; tail = tail + 1; }
    if (y < 63 && grid[cur + 64] == 0) { grid[cur + 64] = mark; queue[tail] = cur + 64; tail = tail + 1; }
    touched = touched + 1;
    if (tail > 4090) { return 0; }
  }
  return 0;
}

int main() {
  int nets = %d;
  int seed = 31415926;
  int n;
  for (n = 0; n < nets; n = n + 1) {
    // rebuild obstacles each net, deterministic per net
    int i;
    int s = seed + n * 97;
    for (i = 0; i < 4096; i = i + 1) {
      s = s * 1103515245 + 12345;
      grid[i] = sel(((s >> 16) & 3) == 0, 1, 0);
    }
    int src = ((n * 167) & 4095);
    int dst = ((n * 331 + 2048) & 4095);
    grid[src] = 0;
    grid[dst] = 0;
    if (route(src, dst, 2)) { routed = routed + 1; } else { failed = failed + 1; }
  }
  print routed;
  print failed;
  print touched;
  return 0;
}
|}
    (max 1 (2 * scale))
