(* ildp_asm: assemble an Alpha source file and dump the image, or
   disassemble its text section back.

     ildp_asm prog.s            # assemble, print section summary
     ildp_asm prog.s --disasm   # assemble + disassemble the text section *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run file disasm =
  match Alpha.Assembler.assemble (read_file file) with
  | exception Alpha.Assembler.Error { line; msg } ->
    Printf.eprintf "%s:%d: %s\n" file line msg;
    exit 1
  | prog ->
    Printf.printf "text: %#x..%#x (%d bytes)\n" prog.text.base
      (prog.text.base + String.length prog.text.bytes)
      (String.length prog.text.bytes);
    Printf.printf "data: %#x..%#x (%d bytes)\n" prog.data.base
      (prog.data.base + String.length prog.data.bytes)
      (String.length prog.data.bytes);
    Printf.printf "entry: %#x\n" prog.entry;
    List.iter
      (fun (name, addr) -> Printf.printf "  %#08x %s\n" addr name)
      (List.sort (fun (_, a) (_, b) -> compare a b) prog.symbols);
    if disasm then begin
      print_newline ();
      Array.iteri
        (fun i insn ->
          Printf.printf "%#08x: %s\n" (prog.text.base + (4 * i))
            (Alpha.Disasm.to_string insn))
        (Alpha.Program.predecode prog)
    end

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Alpha assembly source file.")
  in
  let disasm = Arg.(value & flag & info [ "disasm"; "d" ] ~doc:"Disassemble.") in
  Cmd.v (Cmd.info "ildp_asm" ~doc:"Two-pass Alpha assembler")
    Term.(const run $ file $ disasm)

let () = exit (Cmd.eval cmd)
