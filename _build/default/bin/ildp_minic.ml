(* ildp_minic: compile a MiniC source file to Alpha assembly (stdout), or
   run it directly under the reference interpreter.

     ildp_minic prog.mc          # emit assembly
     ildp_minic prog.mc --run    # compile, assemble and interpret *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let go file run_it =
  match Minic.to_asm (read_file file) with
  | exception Minic.Error msg ->
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
  | asm ->
    if not run_it then print_string asm
    else begin
      let prog = Alpha.Assembler.assemble asm in
      let st = Alpha.Interp.create prog in
      match Alpha.Interp.run ~fuel:2_000_000_000 st with
      | Alpha.Interp.Exit c ->
        print_string (Alpha.Interp.output st);
        Printf.eprintf "[exit %d after %d instructions]\n" c st.icount;
        exit c
      | Fault tr ->
        print_string (Alpha.Interp.output st);
        Format.eprintf "trap: %a@." Alpha.Interp.pp_trap tr;
        exit 1
      | Out_of_fuel ->
        Printf.eprintf "out of fuel\n";
        exit 1
    end

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MiniC source file.")
  in
  let run_it = Arg.(value & flag & info [ "run"; "r" ] ~doc:"Compile and run.") in
  Cmd.v (Cmd.info "ildp_minic" ~doc:"MiniC to Alpha compiler")
    Term.(const go $ file $ run_it)

let () = exit (Cmd.eval cmd)
