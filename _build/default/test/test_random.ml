(* Differential testing with randomly generated Alpha programs.

   A structured generator emits terminating programs — a counted hot loop
   whose body mixes ALU operations, conditional moves, masked in-bounds
   memory accesses, forward branch diamonds, and (optionally) a helper
   call — then every program is executed under the plain interpreter and
   under the DBT VM in all ISA/chaining modes; exit status, PAL output and
   the architected register checksum must agree everywhere.

   This is the test that hunts for translator bookkeeping bugs: strand
   takeover, spill copies, dirty-value recoverability, chaining patches. *)

module Rng = Machine.Rng

(* registers the generator plays with (never sp/ra/at/gp) *)
let pool = [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 16; 17; 18; 19 |]

let reg rng = Alpha.Reg.to_string pool.(Rng.int rng (Array.length pool))

let ops2 =
  [| "addq"; "subq"; "addl"; "subl"; "xor"; "and"; "bis"; "bic"; "s4addq";
     "s8addq"; "cmpeq"; "cmplt"; "cmpule"; "cmpbge"; "sll"; "srl"; "sra";
     "zap"; "zapnot"; "extbl"; "extwl"; "insbl"; "mskbl"; "eqv"; "ornot" |]

let cmovs = [| "cmoveq"; "cmovne"; "cmovlt"; "cmovge" |]

let gen_body rng buf =
  let n = 6 + Rng.int rng 22 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  let skip = ref 0 (* pending forward-branch label *) in
  let label_id = ref 0 in
  for _ = 1 to n do
    if !skip > 0 then decr skip;
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      (* plain ALU, register or literal second operand *)
      let op = ops2.(Rng.int rng (Array.length ops2)) in
      if Rng.bool rng then line "%s %s, %s, %s" op (reg rng) (reg rng) (reg rng)
      else line "%s %s, %d, %s" op (reg rng) (Rng.int rng 64) (reg rng)
    | 4 ->
      (* multiply (long latency path) *)
      line "mulq %s, %d, %s" (reg rng) (1 + Rng.int rng 100) (reg rng)
    | 5 ->
      if Rng.bool rng then begin
        (* conditional move *)
        let op = cmovs.(Rng.int rng (Array.length cmovs)) in
        line "%s %s, %s, %s" op (reg rng) (reg rng) (reg rng)
      end
      else begin
        (* unary count/extend op *)
        let u = [| "ctpop"; "ctlz"; "cttz"; "sextb"; "sextw" |] in
        line "%s %s, %s" u.(Rng.int rng 5) (reg rng) (reg rng)
      end
    | 6 ->
      (* masked in-bounds load: buf is 1024 bytes *)
      line "and %s, 127, t10" (reg rng);
      line "s8addq t10, fp, t10";
      line "ldq %s, 0(t10)" (reg rng)
    | 7 ->
      (* masked in-bounds store *)
      line "and %s, 127, t10" (reg rng);
      line "s8addq t10, fp, t10";
      line "stq %s, 0(t10)" (reg rng)
    | 8 ->
      (* byte access *)
      line "and %s, 255, t10" (reg rng);
      line "addq t10, fp, t10";
      if Rng.bool rng then line "ldbu %s, 0(t10)" (reg rng)
      else line "stb %s, 0(t10)" (reg rng)
    | _ ->
      (* forward diamond: conditionally skip the next few instructions *)
      incr label_id;
      let l = Printf.sprintf "fwd_%d_%d" (Buffer.length buf) !label_id in
      let cond = [| "beq"; "bne"; "blt"; "bge"; "blbc"; "blbs" |] in
      line "%s %s, %s" cond.(Rng.int rng 6) (reg rng) l;
      let k = 1 + Rng.int rng 3 in
      for _ = 1 to k do
        let op = ops2.(Rng.int rng (Array.length ops2)) in
        line "%s %s, %d, %s" op (reg rng) (Rng.int rng 32) (reg rng)
      done;
      Buffer.add_string buf (l ^ ":\n"));
    ()
  done

let gen_program seed =
  let rng = Rng.create seed in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "  .text\n_start:\n";
  Buffer.add_string buf "  la fp, buf\n";
  (* seed the register pool deterministically *)
  Array.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "  ldiq %s, %d\n" (Alpha.Reg.to_string r) ((i * 77) + 13)))
    pool;
  let iters = 80 + Rng.int rng 150 in
  Buffer.add_string buf (Printf.sprintf "  ldiq t8, %d\n" iters);
  (* a helper procedure, called from inside the loop in half the programs *)
  let with_call = Rng.bool rng in
  Buffer.add_string buf "loop:\n";
  gen_body rng buf;
  if with_call then begin
    Buffer.add_string buf "  bsr ra, helper\n";
    gen_body rng buf
  end;
  Buffer.add_string buf "  subq t8, 1, t8\n";
  Buffer.add_string buf "  bne t8, loop\n";
  (* fold the register pool into a checksum and print it *)
  Buffer.add_string buf "  clr t11\n";
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  xor t11, %s, t11\n" (Alpha.Reg.to_string r)))
    pool;
  Buffer.add_string buf "  mov t11, a0\n  call_pal 2\n  clr v0\n  call_pal 0\n";
  if with_call then begin
    Buffer.add_string buf "helper:\n";
    gen_body rng buf;
    Buffer.add_string buf "  ret\n"
  end;
  Buffer.add_string buf "  .data\n  .align 8\nbuf:\n  .space 2304\n";
  Buffer.contents buf

(* fp/t8/t10/t11 (r15/r22/r24/r25) are reserved by the generator's own
   scaffolding: buffer base, loop counter and address/checksum scratch. *)
let () = assert (not (Array.exists (fun r -> r = 15 || r = 22 || r = 24 || r = 25) pool))

let modes =
  [
    (Core.Config.Basic, Core.Config.No_pred);
    (Core.Config.Basic, Core.Config.Sw_pred_no_ras);
    (Core.Config.Basic, Core.Config.Sw_pred_ras);
    (Core.Config.Modified, Core.Config.No_pred);
    (Core.Config.Modified, Core.Config.Sw_pred_no_ras);
    (Core.Config.Modified, Core.Config.Sw_pred_ras);
  ]

let run_one seed =
  let src = gen_program seed in
  let prog =
    try Alpha.Assembler.assemble src
    with Alpha.Assembler.Error { line; msg } ->
      QCheck.Test.fail_reportf "seed %d: generated bad assembly (%d: %s)" seed
        line msg
  in
  let reference = Alpha.Interp.create prog in
  let ref_out =
    match Alpha.Interp.run ~fuel:2_000_000 reference with
    | Alpha.Interp.Exit c -> c
    | Fault tr ->
      QCheck.Test.fail_reportf "seed %d: reference faulted: %a" seed
        Alpha.Interp.pp_trap tr
    | Out_of_fuel -> QCheck.Test.fail_reportf "seed %d: reference diverged" seed
  in
  let ref_text = Alpha.Interp.output reference in
  let ref_regs = Alpha.Interp.reg_checksum reference in
  List.for_all
    (fun (isa, chaining) ->
      (* a low threshold makes even short random programs hot *)
      let cfg = { Core.Config.default with isa; chaining; hot_threshold = 10 } in
      let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
      (match Core.Vm.run ~fuel:4_000_000 vm with
      | Core.Vm.Exit c when c = ref_out -> ()
      | outcome ->
        QCheck.Test.fail_reportf "seed %d (%s/%s): wrong outcome %s" seed
          (Core.Config.isa_name isa)
          (Core.Config.chaining_name chaining)
          (match outcome with
          | Core.Vm.Exit c -> Printf.sprintf "exit %d" c
          | Fault _ -> "fault"
          | Out_of_fuel -> "fuel"));
      if Core.Vm.output vm <> ref_text then
        QCheck.Test.fail_reportf "seed %d (%s/%s): output %S <> %S" seed
          (Core.Config.isa_name isa)
          (Core.Config.chaining_name chaining)
          (Core.Vm.output vm) ref_text;
      if not (Int64.equal (Core.Vm.reg_checksum vm) ref_regs) then
        QCheck.Test.fail_reportf "seed %d (%s/%s): register state differs" seed
          (Core.Config.isa_name isa)
          (Core.Config.chaining_name chaining);
      (* straightened backend too, one chaining mode per seed *)
      true)
    modes
  && begin
       let chaining =
         match seed mod 3 with
         | 0 -> Core.Config.No_pred
         | 1 -> Core.Config.Sw_pred_no_ras
         | _ -> Core.Config.Sw_pred_ras
       in
       let cfg = { Core.Config.default with chaining; hot_threshold = 10 } in
       let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Straight_only prog in
       (match Core.Vm.run ~fuel:4_000_000 vm with
       | Core.Vm.Exit c when c = ref_out -> ()
       | _ -> QCheck.Test.fail_reportf "seed %d (straight): wrong outcome" seed);
       Core.Vm.output vm = ref_text
       && Int64.equal (Core.Vm.reg_checksum vm) ref_regs
     end
  && begin
       (* fused-addressing variant (Section 4.5 option) *)
       let isa = if seed land 1 = 0 then Core.Config.Basic else Core.Config.Modified in
       let cfg =
         { Core.Config.default with isa; fuse_mem = true; hot_threshold = 10 }
       in
       let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
       (match Core.Vm.run ~fuel:4_000_000 vm with
       | Core.Vm.Exit c when c = ref_out -> ()
       | _ -> QCheck.Test.fail_reportf "seed %d (fused): wrong outcome" seed);
       Core.Vm.output vm = ref_text
       && Int64.equal (Core.Vm.reg_checksum vm) ref_regs
     end

let prop_differential =
  QCheck.Test.make ~name:"random programs: interpreter = DBT (all modes)"
    ~count:25
    QCheck.(make Gen.(int_range 1 1_000_000))
    run_one

(* a fixed set of seeds that always runs, immune to qcheck sampling *)
let test_differential_fixed_seeds () =
  List.iter
    (fun seed ->
      if not (run_one seed) then Alcotest.failf "seed %d failed" seed)
    [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233 ]

let suite =
  [
    ("fixed-seed differential battery", `Slow, test_differential_fixed_seeds);
    QCheck_alcotest.to_alcotest prop_differential;
  ]
