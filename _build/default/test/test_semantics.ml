(* Property tests pinning {!Alpha.Insn.eval_op} against independent
   reference implementations and algebraic identities. These are the value
   semantics shared between the interpreter and the translated I-ISA code,
   so a bug here would corrupt every execution mode identically — the
   differential tests cannot catch it, these can. *)

open Alpha.Insn

let qtest = QCheck_alcotest.to_alcotest

let pair64 = QCheck.(pair int64 int64)

let mk name count law = QCheck.Test.make ~name ~count pair64 law

(* ---------- counts (independent reference formulas) ---------- *)

let popcount64 v =
  (* Hamming weight via the SWAR algorithm — independent of eval_op's loop *)
  let open Int64 in
  let v = sub v (logand (shift_right_logical v 1) 0x5555555555555555L) in
  let v =
    add (logand v 0x3333333333333333L)
      (logand (shift_right_logical v 2) 0x3333333333333333L)
  in
  let v = logand (add v (shift_right_logical v 4)) 0x0f0f0f0f0f0f0f0fL in
  shift_right_logical (mul v 0x0101010101010101L) 56

let prop_ctpop =
  mk "ctpop = SWAR popcount" 1000 (fun (_, b) ->
      Int64.equal (eval_op Ctpop 0L b) (popcount64 b))

let prop_ctlz_cttz =
  mk "ctlz/cttz characterise the extreme set bits" 1000 (fun (_, b) ->
      let lz = Int64.to_int (eval_op Ctlz 0L b) in
      let tz = Int64.to_int (eval_op Cttz 0L b) in
      if Int64.equal b 0L then lz = 64 && tz = 64
      else
        lz >= 0 && lz < 64 && tz >= 0 && tz < 64
        (* the bit below the leading-zero count is set *)
        && Int64.logand (Int64.shift_right_logical b (63 - lz)) 1L = 1L
        && Int64.logand (Int64.shift_right_logical b tz) 1L = 1L
        && (tz = 0 || Int64.logand b (Int64.sub (Int64.shift_left 1L tz) 1L) = 0L))

(* ---------- byte manipulation identities ---------- *)

let prop_zap_zapnot_complement =
  mk "zap m + zapnot m partition the bytes" 500 (fun (a, b) ->
      let z = eval_op Zap a b and zn = eval_op Zapnot a b in
      Int64.equal (Int64.logor z zn) a && Int64.equal (Int64.logand z zn) 0L)

let prop_ext_ins_roundtrip =
  mk "insbl . extbl is masking" 500 (fun (a, b) ->
      (* extract byte k then re-insert it at k = isolate byte k *)
      let k = Int64.logand b 7L in
      let e = eval_op Extbl a k in
      let i = eval_op Insbl e k in
      let isolated =
        Int64.logand a (Int64.shift_left 0xffL (8 * Int64.to_int k))
      in
      Int64.equal i isolated)

let prop_msk_clears =
  mk "mskbl clears exactly the extracted byte" 500 (fun (a, b) ->
      let k = Int64.logand b 7L in
      let m = eval_op Mskbl a k in
      let e = eval_op Insbl (eval_op Extbl a k) k in
      Int64.equal (Int64.logor m e) a && Int64.equal (Int64.logand m e) 0L)

let prop_extq_shift =
  mk "extql is a logical right shift by bytes" 500 (fun (a, b) ->
      let k = Int64.to_int (Int64.logand b 7L) in
      Int64.equal (eval_op Extql a b) (Int64.shift_right_logical a (8 * k)))

let prop_extqh_extql_concat =
  mk "extqh/extql reassemble an unaligned quadword" 500 (fun (a, b) ->
      (* the classic Alpha unaligned-load idiom: for a byte offset k,
         extql(lo, k) | extqh(hi, k) = the quadword at offset k of hi:lo *)
      let k = Int64.to_int (Int64.logand b 7L) in
      let lo = a and hi = Int64.lognot a in
      let got =
        Int64.logor
          (eval_op Extql lo (Int64.of_int k))
          (eval_op Extqh hi (Int64.of_int k))
      in
      let expect =
        if k = 0 then
          (* both LDQ_U of the idiom read the same aligned quadword, and
             EXTQH's (64 - 0) mod 64 shift passes it through whole *)
          Int64.logor lo hi
        else
          Int64.logor
            (Int64.shift_right_logical lo (8 * k))
            (Int64.shift_left hi (8 * (8 - k)))
      in
      Int64.equal got expect)

(* ---------- comparisons ---------- *)

let prop_cmp_total_order =
  mk "cmplt/cmple/cmpeq form a total order" 1000 (fun (a, b) ->
      let lt = eval_op Cmplt a b and le = eval_op Cmple a b in
      let eq = eval_op Cmpeq a b and gt_ba = eval_op Cmplt b a in
      (* exactly one of lt, eq, gt *)
      Int64.add (Int64.add lt eq) gt_ba = 1L
      && Int64.equal le (Int64.logor lt eq |> fun x -> if Int64.equal x 0L then 0L else 1L))

let prop_cmpult_unsigned =
  mk "cmpult is unsigned" 1000 (fun (a, b) ->
      Int64.equal (eval_op Cmpult a b)
        (if Int64.unsigned_compare a b < 0 then 1L else 0L))

let prop_cmpbge_bytes =
  mk "cmpbge bit i = byte i comparison" 500 (fun (a, b) ->
      let m = Int64.to_int (eval_op Cmpbge a b) in
      let ok = ref true in
      for i = 0 to 7 do
        let ba = Int64.to_int (Int64.logand (Int64.shift_right_logical a (8 * i)) 0xffL) in
        let bb = Int64.to_int (Int64.logand (Int64.shift_right_logical b (8 * i)) 0xffL) in
        if (m land (1 lsl i) <> 0) <> (ba >= bb) then ok := false
      done;
      !ok)

(* ---------- arithmetic ---------- *)

let prop_umulh_reference =
  mk "umulh: (a*b) as 128 bits, high half" 500 (fun (a, b) ->
      (* reference via arbitrary-precision decomposition in 16-bit limbs *)
      let limbs x =
        Array.init 4 (fun i ->
            Int64.to_int (Int64.logand (Int64.shift_right_logical x (16 * i)) 0xffffL))
      in
      let la = limbs a and lb = limbs b in
      let acc = Array.make 8 0 in
      for i = 0 to 3 do
        for j = 0 to 3 do
          acc.(i + j) <- acc.(i + j) + (la.(i) * lb.(j))
        done
      done;
      (* carry propagate in 16-bit limbs *)
      let carry = ref 0 in
      for k = 0 to 7 do
        let v = acc.(k) + !carry in
        acc.(k) <- v land 0xffff;
        carry := v lsr 16
      done;
      let hi =
        Int64.logor
          (Int64.of_int acc.(4))
          (Int64.logor
             (Int64.shift_left (Int64.of_int acc.(5)) 16)
             (Int64.logor
                (Int64.shift_left (Int64.of_int acc.(6)) 32)
                (Int64.shift_left (Int64.of_int acc.(7)) 48)))
      in
      Int64.equal (eval_op Umulh a b) hi)

let prop_longword_ops_sign_extend =
  mk "addl/subl/mull produce canonical longwords" 1000 (fun (a, b) ->
      List.for_all
        (fun op ->
          let r = eval_op op a b in
          Int64.equal r (Int64.of_int32 (Int64.to_int32 r)))
        [ Addl; Subl; Mull; S4addl; S8addl; S4subl; S8subl ])

let prop_scaled_adds =
  mk "s4addq/s8addq = shift-and-add" 1000 (fun (a, b) ->
      Int64.equal (eval_op S4addq a b) (Int64.add (Int64.shift_left a 2) b)
      && Int64.equal (eval_op S8addq a b) (Int64.add (Int64.shift_left a 3) b)
      && Int64.equal (eval_op S4subq a b) (Int64.sub (Int64.shift_left a 2) b)
      && Int64.equal (eval_op S8subq a b) (Int64.sub (Int64.shift_left a 3) b))

(* ---------- logic ---------- *)

let prop_logic_de_morgan =
  mk "bic/ornot/eqv against De Morgan forms" 1000 (fun (a, b) ->
      Int64.equal (eval_op Bic a b) (Int64.logand a (Int64.lognot b))
      && Int64.equal (eval_op Ornot a b) (Int64.logor a (Int64.lognot b))
      && Int64.equal (eval_op Eqv a b) (Int64.lognot (Int64.logxor a b)))

let prop_shifts_use_low_six_bits =
  mk "shift amounts use b<5:0>" 1000 (fun (a, b) ->
      let k = Int64.logand b 63L in
      Int64.equal (eval_op Sll a b) (eval_op Sll a k)
      && Int64.equal (eval_op Srl a b) (eval_op Srl a k)
      && Int64.equal (eval_op Sra a b) (eval_op Sra a k))

let prop_sext =
  mk "sextb/sextw agree with shifts" 1000 (fun (_, b) ->
      Int64.equal (eval_op Sextb 0L b)
        Int64.(shift_right (shift_left b 56) 56)
      && Int64.equal (eval_op Sextw 0L b)
           Int64.(shift_right (shift_left b 48) 48))

(* conditions *)
let prop_cond_negations =
  QCheck.Test.make ~name:"branch conditions pair into negations" ~count:1000
    QCheck.int64 (fun v ->
      cond_true Eq v <> cond_true Ne v
      && cond_true Lt v <> cond_true Ge v
      && cond_true Le v <> cond_true Gt v
      && cond_true Lbc v <> cond_true Lbs v)

let suite =
  List.map qtest
    [
      prop_ctpop;
      prop_ctlz_cttz;
      prop_zap_zapnot_complement;
      prop_ext_ins_roundtrip;
      prop_msk_clears;
      prop_extq_shift;
      prop_extqh_extql_concat;
      prop_cmp_total_order;
      prop_cmpult_unsigned;
      prop_cmpbge_bytes;
      prop_umulh_reference;
      prop_longword_ops_sign_extend;
      prop_scaled_adds;
      prop_logic_de_morgan;
      prop_shifts_use_low_six_bits;
      prop_sext;
      prop_cond_negations;
    ]
