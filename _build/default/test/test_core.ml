(* Tests for the DBT core: superblock formation, usage analysis, translation
   invariants, and the central correctness property — every program computes
   the same architected results under the VM (both I-ISAs, every chaining
   mode) as under the plain interpreter. *)

open Core

let check = Alcotest.check

(* ---------- helpers ---------- *)

let all_modes =
  [
    (Config.Basic, Config.No_pred);
    (Config.Basic, Config.Sw_pred_no_ras);
    (Config.Basic, Config.Sw_pred_ras);
    (Config.Modified, Config.No_pred);
    (Config.Modified, Config.Sw_pred_no_ras);
    (Config.Modified, Config.Sw_pred_ras);
  ]

let mode_name (isa, ch) =
  Printf.sprintf "%s/%s" (Config.isa_name isa) (Config.chaining_name ch)

type run_result = {
  outcome : string;
  output : string;
  regs : int64;
}

let run_interp prog =
  let st = Alpha.Interp.create prog in
  let outcome =
    match Alpha.Interp.run ~fuel:10_000_000 st with
    | Alpha.Interp.Exit c -> Printf.sprintf "exit %d" c
    | Fault tr -> Format.asprintf "fault %a" Alpha.Interp.pp_trap tr
    | Out_of_fuel -> "fuel"
  in
  { outcome; output = Alpha.Interp.output st; regs = Alpha.Interp.reg_checksum st }

let run_vm ?(kind = Vm.Acc) ~isa ~chaining prog =
  let cfg = { Config.default with isa; chaining } in
  let vm = Vm.create ~cfg ~kind prog in
  let outcome =
    match Vm.run ~fuel:10_000_000 vm with
    | Vm.Exit c -> Printf.sprintf "exit %d" c
    | Fault tr -> Format.asprintf "fault %a" Alpha.Interp.pp_trap tr
    | Out_of_fuel -> "fuel"
  in
  ({ outcome; output = Vm.output vm; regs = Vm.reg_checksum vm }, vm)

(* Assert interpreter/VM equivalence for one program across all modes. *)
let assert_equivalent ?(also_straight = true) name src =
  let prog = Alpha.Assembler.assemble src in
  let reference = run_interp prog in
  List.iter
    (fun (isa, chaining) ->
      let got, vm = run_vm ~isa ~chaining prog in
      let label = name ^ " " ^ mode_name (isa, chaining) in
      check Alcotest.string (label ^ " outcome") reference.outcome got.outcome;
      check Alcotest.string (label ^ " output") reference.output got.output;
      check Alcotest.int64 (label ^ " regs") reference.regs got.regs;
      (* the program must actually exercise translated code *)
      (match Vm.acc_exec vm with
      | Some ex ->
        if ex.stats.alpha_retired = 0 then
          Alcotest.failf "%s: no instructions retired in translated mode" label
      | None -> ()))
    all_modes;
  if also_straight then
    List.iter
      (fun chaining ->
        let got, vm =
          run_vm ~kind:Vm.Straight_only ~isa:Config.Modified ~chaining prog
        in
        let label = name ^ " straight/" ^ Config.chaining_name chaining in
        check Alcotest.string (label ^ " outcome") reference.outcome got.outcome;
        check Alcotest.string (label ^ " output") reference.output got.output;
        check Alcotest.int64 (label ^ " regs") reference.regs got.regs;
        match Vm.straight_exec vm with
        | Some ex ->
          if ex.stats.alpha_retired = 0 then
            Alcotest.failf "%s: no instructions retired in translated mode" label
        | None -> ())
      [ Config.No_pred; Config.Sw_pred_no_ras; Config.Sw_pred_ras ]

(* ---------- test programs (loops iterate past the hot threshold) ---------- *)

let prog_counted_loop =
  {|
  .text
_start:
  clr   t0
  ldiq  t1, 500
loop:
  addq  t0, t1, t0
  subq  t1, 1, t1
  bne   t1, loop
  mov   t0, a0
  call_pal 2
  clr   v0
  call_pal 0
  |}

(* the paper's Fig. 2 inner loop (gzip hash loop) over a byte table *)
let prog_gzip_fig2 =
  {|
  .text
_start:
  la    a0, buf          ; r16: pointer
  ldiq  a1, 300          ; r17: count
  clr   v0               ; r0: table base substitute
  clr   t0               ; r1: rolling hash
L1:
  ldbu  t2, 0(a0)        ; r3 <- mem[r16]
  subq  a1, 1, a1
  lda   a0, 1(a0)
  xor   t0, t2, t2
  srl   t0, 8, t0
  and   t2, 0xff, t2
  s8addq t2, v0, t2
  addq  t2, t0, t0       ; fold (stand-in for the dependent load)
  bne   a1, L1
  mov   t0, a0
  call_pal 2
  clr   v0
  call_pal 0
  .data
buf:
  .space 512
  |}

let prog_nested_calls =
  {|
  .text
_start:
  ldiq  s0, 80
  clr   s1
outer:
  mov   s0, a0
  bsr   ra, work
  addq  s1, v0, s1
  subq  s0, 1, s0
  bne   s0, outer
  mov   s1, a0
  call_pal 2
  clr   v0
  call_pal 0
work:
  lda   sp, -16(sp)
  stq   ra, 0(sp)
  addq  a0, a0, a0
  bsr   ra, leaf
  ldq   ra, 0(sp)
  lda   sp, 16(sp)
  ret
leaf:
  addq  a0, 3, v0
  ret
  |}

let prog_jump_table =
  {|
  .text
_start:
  clr   s0               ; i
  clr   s1               ; acc
  ldiq  s2, 240
loop:
  and   s0, 3, t0
  la    t1, jtab
  s8addq t0, t1, t1
  ldq   t2, 0(t1)
  jmp   (t2)
case0:
  addq  s1, 1, s1
  br    next
case1:
  addq  s1, 10, s1
  br    next
case2:
  subq  s1, 2, s1
  br    next
case3:
  sll   s1, 1, s1
  and   s1, 0xff, s1
next:
  addq  s0, 1, s0
  cmplt s0, s2, t3
  bne   t3, loop
  mov   s1, a0
  call_pal 2
  clr   v0
  call_pal 0
  .data
  .align 8
jtab:
  .quad case0, case1, case2, case3
  |}

let prog_memory_churn =
  {|
  .text
_start:
  la    s0, arr
  ldiq  s1, 128
  clr   t0
init:
  mulq  t0, 17, t1
  addq  t1, 5, t1
  s8addq t0, s0, t2
  stq   t1, 0(t2)
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, init
  clr   t0
  clr   s2
sum:
  s8addq t0, s0, t2
  ldq   t1, 0(t2)
  addq  s2, t1, s2
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, sum
  mov   s2, a0
  call_pal 2
  clr   v0
  call_pal 0
  .data
  .align 8
arr:
  .space 1024
  |}

let prog_cmov =
  {|
  .text
_start:
  clr   t0
  clr   s0              ; max
  ldiq  t1, 200
  ldiq  s3, 2654435761
loop:
  mulq  t1, s3, t2
  srl   t2, 13, t2
  and   t2, 0xff, t2
  cmplt s0, t2, t3
  cmovne t3, t2, s0     ; s0 = max(s0, t2)
  subq  t1, 1, t1
  bne   t1, loop
  mov   s0, a0
  call_pal 2
  clr   v0
  call_pal 0
  |}

let prog_byte_stores =
  {|
  .text
_start:
  la    s0, buf
  ldiq  s1, 200
  clr   t0
fill:
  and   t0, 0xff, t1
  addq  s0, t0, t2
  stb   t1, 0(t2)
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, fill
  clr   t0
  clr   s2
rd:
  addq  s0, t0, t2
  ldbu  t1, 0(t2)
  xor   s2, t1, s2
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, rd
  mov   s2, a0
  call_pal 2
  clr   v0
  call_pal 0
  .data
buf:
  .space 256
  |}

(* deep strand pressure: long dependence chains plus many live values *)
let prog_acc_pressure =
  {|
  .text
_start:
  ldiq  t0, 1
  ldiq  t1, 2
  ldiq  t2, 3
  ldiq  t3, 4
  ldiq  t4, 5
  ldiq  t5, 6
  ldiq  s0, 100
loop:
  addq  t0, t1, t0
  addq  t1, t2, t1
  addq  t2, t3, t2
  addq  t3, t4, t3
  addq  t4, t5, t4
  addq  t5, t0, t5
  mulq  t0, 3, t6
  xor   t6, t4, t6
  addq  t6, t2, t6
  subq  s0, 1, s0
  bne   s0, loop
  addq  t0, t5, a0
  call_pal 2
  clr   v0
  call_pal 0
  |}

let equivalence_cases =
  [
    ("counted loop", prog_counted_loop);
    ("fig2 gzip loop", prog_gzip_fig2);
    ("nested calls", prog_nested_calls);
    ("jump table", prog_jump_table);
    ("memory churn", prog_memory_churn);
    ("cmov max", prog_cmov);
    ("byte stores", prog_byte_stores);
    ("accumulator pressure", prog_acc_pressure);
  ]

(* ---------- superblock formation ---------- *)

let form_first_hot src =
  (* run the VM until the first fragment exists; return its superblock-ish
     info via the fragments list *)
  let prog = Alpha.Assembler.assemble src in
  let vm = Vm.create ~kind:Vm.Acc prog in
  ignore (Vm.run ~fuel:1_000_000 vm);
  let ctx = Option.get (Vm.acc_ctx vm) in
  (Tcache.Acc.fragments ctx.tc, ctx, vm)

let test_superblock_formed () =
  let frags, _, _ = form_first_hot prog_counted_loop in
  check Alcotest.bool "at least one fragment" true (List.length frags >= 1);
  let f = List.hd frags in
  (* the loop body is 3 instructions *)
  check Alcotest.int "loop fragment covers 3 V-insns" 3 f.Tcache.v_insns

let test_superblock_execution_counts () =
  let frags, _, _ = form_first_hot prog_counted_loop in
  let f = List.hd frags in
  (* 500 iterations, minus 49 interpreted before hot, minus 1 consumed by
     formation: the fragment runs the rest *)
  check Alcotest.bool "fragment executed many times" true (f.Tcache.exec_count > 400)

let test_formation_ends_at_indirect_jump () =
  let frags, _, _ = form_first_hot prog_nested_calls in
  (* a fragment formed from `work` must stop at the bsr-inlined leaf's ret *)
  List.iter
    (fun (f : Tcache.frag) ->
      check Alcotest.bool "fragment nonempty" true (f.Tcache.v_insns > 0))
    frags

(* ---------- usage classification ---------- *)

let mk_superblock src =
  (* interpret until hot formation by hand: just form from entry *)
  let prog = Alpha.Assembler.assemble src in
  let interp = Alpha.Interp.create prog in
  Superblock.form ~interp ~max_size:200 ~is_translated:(fun _ -> false) ()

let test_usage_categories () =
  let sb, _ =
    mk_superblock
      {|
      .text
  _start:
      ldiq  t0, 7      ; local: one use, redefined below before any branch
      addq  t0, 1, t1  ; t1: liveout (never redefined in the block)
      clr   t0         ; dead across the branch -> no user -> global
      beq   t1, skip
  skip:
      ldiq  t2, 10
      addq  t2, t2, t3
      clr   t0         ; final redefinition of t0
      call_pal 0
      |}
  in
  let nodes = Node.decompose sb in
  let u = Usage.analyze nodes in
  let cat_of_node i =
    match u.defs.(i) with Some d -> Some d.category | None -> None
  in
  check Alcotest.bool "t0 local" true (cat_of_node 0 = Some Usage.Local);
  check Alcotest.bool "t1 liveout" true (cat_of_node 1 = Some Usage.Liveout_global);
  check Alcotest.bool "t0 redef no-user-global" true
    (cat_of_node 2 = Some Usage.No_user_global)

let test_usage_comm_global () =
  let sb, _ =
    mk_superblock
      {|
      .text
  _start:
      ldiq  t0, 3
      addq  t0, 1, t1
      addq  t0, 2, t2
      addq  t0, 3, t0
      call_pal 0
      |}
  in
  let nodes = Node.decompose sb in
  let u = Usage.analyze nodes in
  (match u.defs.(0) with
  | Some d ->
    check Alcotest.bool "t0 communication" true (d.category = Usage.Comm_global);
    check Alcotest.int "three users" 3 (List.length d.users)
  | None -> Alcotest.fail "no def")

let test_usage_temp () =
  let sb, _ =
    mk_superblock
      {|
      .text
  _start:
      la   t0, d
      ldq  t1, 8(t0)    ; decomposes into addr-calc temp + load
      call_pal 0
      .data
      .align 8
  d:  .quad 1, 2
      |}
  in
  let nodes = Node.decompose sb in
  let u = Usage.analyze nodes in
  let temps =
    Array.to_list u.defs
    |> List.filter_map (fun d ->
           Option.bind d (fun (d : Usage.def_info) ->
               if d.category = Usage.Temp then Some d else None))
  in
  check Alcotest.int "one temp def (addr calc)" 1 (List.length temps)

(* ---------- translation invariants ---------- *)

let test_translation_well_formed () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (isa, chaining) ->
          let prog = Alpha.Assembler.assemble src in
          let cfg = { Config.default with isa; chaining } in
          let vm = Vm.create ~cfg ~kind:Vm.Acc prog in
          ignore (Vm.run ~fuel:1_000_000 vm);
          let ctx = Option.get (Vm.acc_ctx vm) in
          for s = 0 to Tcache.Acc.n_slots ctx.tc - 1 do
            let insn = Tcache.Acc.get ctx.tc s in
            if not (Accisa.Insn.well_formed insn) then
              Alcotest.failf "%s %s: ill-formed insn at slot %d: %s" name
                (mode_name (isa, chaining)) s
                (Accisa.Disasm.to_string insn);
            (match Accisa.Insn.dst_of insn with
            | Some d ->
              if d.dacc >= cfg.n_accs then
                Alcotest.failf "%s: accumulator out of range at slot %d" name s;
              if d.dacc < 0 && d.gdst = None then
                Alcotest.failf "%s: destination-less producer at slot %d" name s
            | None -> ());
            if isa = Config.Basic && not (Accisa.Insn.basic_formed insn) then
              (* the only legal gdst carriers in basic-ISA code are the VM's
                 own special instructions; plain ALU must not have one *)
              Alcotest.failf "%s basic: gdst on slot %d: %s" name s
                (Accisa.Disasm.to_string insn)
          done)
        all_modes)
    equivalence_cases

let test_modified_isa_fewer_insns () =
  let prog = Alpha.Assembler.assemble prog_gzip_fig2 in
  let count isa =
    let cfg = { Config.default with isa } in
    let vm = Vm.create ~cfg ~kind:Vm.Acc prog in
    ignore (Vm.run ~fuel:1_000_000 vm);
    let ex = Option.get (Vm.acc_exec vm) in
    (ex.stats.i_exec, ex.stats.alpha_retired)
  in
  let basic_i, basic_a = count Config.Basic in
  let mod_i, mod_a = count Config.Modified in
  check Alcotest.bool "same V-ISA work" true (abs (basic_a - mod_a) < 5);
  check Alcotest.bool
    (Printf.sprintf "modified executes fewer I-ISA insns (%d < %d)" mod_i basic_i)
    true (mod_i < basic_i)

let test_basic_isa_has_copies () =
  let prog = Alpha.Assembler.assemble prog_gzip_fig2 in
  let copies isa =
    let cfg = { Config.default with isa } in
    let vm = Vm.create ~cfg ~kind:Vm.Acc prog in
    ignore (Vm.run ~fuel:1_000_000 vm);
    let ex = Option.get (Vm.acc_exec vm) in
    let total = float_of_int ex.stats.i_exec in
    float_of_int ex.stats.by_class.(1) /. total
  in
  let b = copies Config.Basic and m = copies Config.Modified in
  check Alcotest.bool
    (Printf.sprintf "basic copy fraction (%.3f) > modified (%.3f)" b m)
    true (b > m);
  check Alcotest.bool "basic has substantial copies" true (b > 0.05)

(* ---------- equivalence (the central invariant) ---------- *)

let test_equivalence () =
  List.iter (fun (name, src) -> assert_equivalent name src) equivalence_cases

(* ---------- precise traps ---------- *)

let prog_trap_in_hot_loop =
  {|
  .text
_start:
  la    s0, arr
  ldiq  s1, 2000         ; walks far past the mapped data+heap region
  clr   t0
loop:
  sll   t0, 16, t1       ; stride 64KB to leave the heap quickly
  addq  t1, s0, t1
  ldq   t2, 0(t1)
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, loop
  clr  v0
  call_pal 0
  .data
  .align 8
arr:
  .space 64
  |}

let test_precise_trap_recovery () =
  let prog = Alpha.Assembler.assemble prog_trap_in_hot_loop in
  let reference = run_interp prog in
  check Alcotest.bool "reference faults" true
    (String.length reference.outcome >= 5 && String.sub reference.outcome 0 5 = "fault");
  List.iter
    (fun (isa, chaining) ->
      let got, vm = run_vm ~isa ~chaining prog in
      let label = "trap " ^ mode_name (isa, chaining) in
      check Alcotest.string (label ^ " outcome") reference.outcome got.outcome;
      check Alcotest.int64 (label ^ " regs") reference.regs got.regs;
      match Vm.acc_exec vm with
      | Some ex ->
        check Alcotest.bool (label ^ " trapped inside translated code") true
          (ex.stats.alpha_retired > 0)
      | None -> ())
    all_modes

(* dirty-accumulator recovery: a value whose only copy is in an accumulator
   at the faulting load (basic ISA) must be restored by the PEI map *)
let prog_trap_dirty_acc =
  {|
  .text
_start:
  la    s0, arr
  clr   t0
  ldiq  s1, 600
loop:
  addq  t0, 7, t5        ; t5 dies at the next iteration (local-ish)
  sll   t0, 14, t1
  addq  t1, s0, t1
  ldq   t2, 0(t1)        ; eventually faults
  addq  t5, t2, t0
  zapnot t0, 3, t0       ; keep the low 16 bits
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, loop
  clr  v0
  call_pal 0
  .data
  .align 8
arr:
  .space 64
  |}

let test_trap_dirty_accumulator_state () =
  let prog = Alpha.Assembler.assemble prog_trap_dirty_acc in
  let reference = run_interp prog in
  List.iter
    (fun (isa, chaining) ->
      let got, _ = run_vm ~isa ~chaining prog in
      let label = "dirty trap " ^ mode_name (isa, chaining) in
      check Alcotest.string (label ^ " outcome") reference.outcome got.outcome;
      check Alcotest.int64 (label ^ " regs") reference.regs got.regs)
    all_modes

(* ---------- translation cache flush (paper Section 4.1) ---------- *)

let test_flush_mid_run () =
  List.iter
    (fun (name, src) ->
      let prog = Alpha.Assembler.assemble src in
      let reference = run_interp prog in
      List.iter
        (fun kind ->
          let vm = Vm.create ~kind prog in
          (* run a slice, flush everything, continue to completion *)
          (match Vm.run ~fuel:2_000 vm with
          | Vm.Out_of_fuel -> ()
          | Vm.Exit _ -> () (* too short to interrupt; fine *)
          | Fault _ -> Alcotest.fail "unexpected fault in slice");
          Vm.flush vm;
          let outcome =
            match Vm.run ~fuel:10_000_000 vm with
            | Vm.Exit c -> Printf.sprintf "exit %d" c
            | Fault tr -> Format.asprintf "fault %a" Alpha.Interp.pp_trap tr
            | Out_of_fuel -> "fuel"
          in
          check Alcotest.string (name ^ " outcome after flush")
            reference.outcome outcome;
          check Alcotest.string (name ^ " output after flush") reference.output
            (Vm.output vm);
          check Alcotest.int64 (name ^ " regs after flush") reference.regs
            (Vm.reg_checksum vm))
        [ Vm.Acc; Vm.Straight_only ])
    [ ("counted loop", prog_counted_loop); ("nested calls", prog_nested_calls);
      ("jump table", prog_jump_table) ]

let test_flush_retranslates () =
  let prog = Alpha.Assembler.assemble prog_counted_loop in
  let vm = Vm.create ~kind:Vm.Acc prog in
  (match Vm.run ~fuel:800 vm with
  | Vm.Out_of_fuel -> ()
  | _ -> Alcotest.fail "slice should stop mid-loop");
  let ctx = Option.get (Vm.acc_ctx vm) in
  check Alcotest.bool "fragments exist" true
    (List.length (Tcache.Acc.fragments ctx.tc) > 0);
  Vm.flush vm;
  check Alcotest.int "cache empty after flush" 0
    (List.length (Tcache.Acc.fragments ctx.tc));
  ignore (Vm.run ~fuel:10_000_000 vm);
  check Alcotest.bool "fragments re-formed" true
    (List.length (Tcache.Acc.fragments ctx.tc) > 0)

let suite =
  [
    ("superblock formed for hot loop", `Quick, test_superblock_formed);
    ("fragment re-executed", `Quick, test_superblock_execution_counts);
    ("formation ends at indirect jumps", `Quick, test_formation_ends_at_indirect_jump);
    ("usage: local/liveout/no-user-global", `Quick, test_usage_categories);
    ("usage: communication global", `Quick, test_usage_comm_global);
    ("usage: decomposition temp", `Quick, test_usage_temp);
    ("translated code well-formed (all modes)", `Slow, test_translation_well_formed);
    ("modified ISA executes fewer instructions", `Quick, test_modified_isa_fewer_insns);
    ("basic ISA pays for copies", `Quick, test_basic_isa_has_copies);
    ("interpreter/VM equivalence (all modes)", `Slow, test_equivalence);
    ("precise trap recovery", `Quick, test_precise_trap_recovery);
    ("trap with dirty accumulator state", `Quick, test_trap_dirty_accumulator_state);
    ("cache flush mid-run preserves semantics", `Quick, test_flush_mid_run);
    ("cache flush empties and re-forms", `Quick, test_flush_retranslates);
  ]
