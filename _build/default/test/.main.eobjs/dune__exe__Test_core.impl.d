test/test_core.ml: Accisa Alcotest Alpha Array Config Core Format List Node Option Printf String Superblock Tcache Usage Vm
