test/test_random.ml: Alcotest Alpha Array Buffer Core Gen Int64 List Machine Printf QCheck QCheck_alcotest
