test/test_workloads.ml: Alcotest Alpha Core Hashtbl List Machine Option Printf String Workloads
