test/test_minic.ml: Alcotest Alpha Core Int64 List Minic Printf QCheck QCheck_alcotest
