test/test_uarch.ml: Alcotest Alpha Core Ev Machine Printf Uarch
