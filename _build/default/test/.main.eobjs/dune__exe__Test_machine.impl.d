test/test_machine.ml: Alcotest Btb Cache Dual_ras Gen Gshare Int64 List Machine Memhier Memory Printf QCheck QCheck_alcotest Ras Rng
