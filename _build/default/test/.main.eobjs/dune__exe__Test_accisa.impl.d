test/test_accisa.ml: Accisa Alcotest Disasm Insn List Machine Printf Size Trace
