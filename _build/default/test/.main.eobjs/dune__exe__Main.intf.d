test/main.mli:
