test/test_harness.ml: Alcotest Array Buffer Format Harness List Option String Uarch Workloads
