test/test_semantics.ml: Alpha Array Int64 List QCheck QCheck_alcotest
