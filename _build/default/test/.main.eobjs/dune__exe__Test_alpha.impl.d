test/test_alpha.ml: Alcotest Alpha Array Char Int32 Int64 List Machine Printf QCheck QCheck_alcotest
