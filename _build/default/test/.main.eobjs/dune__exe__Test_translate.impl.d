test/test_translate.ml: Accisa Alcotest Alpha Array Config Core List Option Printf Straighten Tcache Vm
