(* Tests for the Alpha substrate: encoder/decoder, assembler, interpreter. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- generators ---------- *)

let gen_reg = QCheck.Gen.int_bound 31

let all_mem_ops =
  [ Alpha.Insn.Ldq; Ldl; Ldwu; Ldbu; Stq; Stl; Stw; Stb; Lda; Ldah ]

let all_op3 =
  [ Alpha.Insn.Addl; Addq; Subl; Subq; S4addl; S4addq; S8addl; S8addq;
    S4subl; S4subq; S8subl; S8subq; Cmpeq; Cmplt; Cmple; Cmpult; Cmpule;
    Cmpbge; And_; Bic; Bis; Ornot; Xor; Eqv; Sll; Srl; Sra; Extbl; Extwl;
    Extll; Extql; Extwh; Extlh; Extqh; Insbl; Inswl; Insll; Insql; Mskbl;
    Mskwl; Mskll; Mskql; Zap; Zapnot; Mull; Mulq; Umulh; Sextb; Sextw;
    Ctpop; Ctlz; Cttz; Cmoveq; Cmovne; Cmovlt; Cmovge; Cmovle; Cmovgt;
    Cmovlbs; Cmovlbc ]

let all_conds = [ Alpha.Insn.Eq; Ne; Lt; Ge; Le; Gt; Lbc; Lbs ]

(* Random conventional (encodable) instruction. *)
let gen_insn : Alpha.Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Alpha.Insn in
  frequency
    [
      ( 3,
        let* op = oneofl all_mem_ops in
        let* ra = gen_reg and* rb = gen_reg in
        let* disp = int_range (-32768) 32767 in
        return (Mem (op, ra, disp, rb)) );
      ( 4,
        let* op = oneofl all_op3 in
        let* ra = gen_reg and* rc = gen_reg in
        let* operand =
          oneof [ map (fun r -> Rb r) gen_reg; map (fun i -> Imm i) (int_bound 255) ]
        in
        let ra =
          match op with Sextb | Sextw | Ctpop | Ctlz | Cttz -> 31 | _ -> ra
        in
        return (Opr (op, ra, operand, rc)) );
      ( 1,
        let* ra = gen_reg and* disp = int_range (-(1 lsl 20)) ((1 lsl 20) - 1) in
        oneofl [ Br (ra, disp); Bsr (ra, disp) ] );
      ( 1,
        let* c = oneofl all_conds
        and* ra = gen_reg
        and* disp = int_range (-(1 lsl 20)) ((1 lsl 20) - 1) in
        return (Bc (c, ra, disp)) );
      ( 1,
        let* k = oneofl [ Jmp; Jsr; Ret ] and* ra = gen_reg and* rb = gen_reg in
        return (Jump (k, ra, rb)) );
      (1, map (fun f -> Call_pal f) (int_bound 0x3ff));
    ]

let arb_insn = QCheck.make ~print:Alpha.Disasm.to_string gen_insn

(* ---------- encode/decode ---------- *)

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode . decode = id" ~count:2000 arb_insn (fun i ->
      match Alpha.Decode.decode (Alpha.Encode.encode i) with
      | Ok i' -> i = i'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.reason)

let prop_encode_32bit =
  QCheck.Test.make ~name:"encodings fit in 32 bits" ~count:1000 arb_insn
    (fun i ->
      let w = Alpha.Encode.encode i in
      w >= 0 && w < 1 lsl 32)

let test_known_encodings () =
  (* cross-checked against the Alpha Architecture Handbook *)
  let cases =
    [
      (* ldq r3, 8(r16) : opcode 29, ra=3, rb=16, disp=8 *)
      (Alpha.Insn.Mem (Ldq, 3, 8, 16), 0xa4700008);
      (* addq r1, r2, r3 : opcode 10, func 20 *)
      (Alpha.Insn.Opr (Addq, 1, Rb 2, 3), 0x40220403);
      (* addq r1, #255, r3 *)
      (Alpha.Insn.Opr (Addq, 1, Imm 255, 3), 0x403ff403);
      (* bne r17, +1 : opcode 3d *)
      (Alpha.Insn.Bc (Ne, 17, 1), 0xf6200001);
      (* ret zero, (ra) : opcode 1a, hint 2 *)
      (Alpha.Insn.Jump (Ret, 31, 26), 0x6bfa8000);
    ]
  in
  List.iter
    (fun (insn, want) ->
      check Alcotest.int (Alpha.Disasm.to_string insn) want
        (Alpha.Encode.encode insn))
    cases

let test_vm_insn_unencodable () =
  Alcotest.check_raises "lta rejected"
    (Alpha.Encode.Unencodable "VM extension instruction has no V-ISA encoding: lta")
    (fun () -> ignore (Alpha.Encode.encode (Alpha.Insn.Lta (1, 0x1000))))

let prop_disasm_reassembles =
  (* Disassembled operate/memory instructions re-assemble to the same word. *)
  QCheck.Test.make ~name:"disasm output reassembles" ~count:500
    (QCheck.make ~print:Alpha.Disasm.to_string
       QCheck.Gen.(
         let open Alpha.Insn in
         let* op = oneofl all_op3 in
         let* ra = gen_reg and* rc = gen_reg in
         let* operand =
           oneof [ map (fun r -> Rb r) gen_reg; map (fun i -> Imm i) (int_bound 255) ]
         in
         (* unary operates canonically encode ra = r31 *)
         let ra =
           match op with Sextb | Sextw | Ctpop | Ctlz | Cttz -> 31 | _ -> ra
         in
         return (Opr (op, ra, operand, rc))))
    (fun i ->
      let src = Printf.sprintf " .text\nx:\n %s\n" (Alpha.Disasm.to_string i) in
      let prog = Alpha.Assembler.assemble src in
      let code = Alpha.Program.predecode prog in
      Array.length code = 1 && code.(0) = i)

(* ---------- assembler ---------- *)

let assemble_run ?(fuel = 1_000_000) src =
  let prog = Alpha.Assembler.assemble src in
  let st = Alpha.Interp.create prog in
  let outcome = Alpha.Interp.run ~fuel st in
  (st, outcome)

let test_asm_basic_program () =
  let st, outcome =
    assemble_run
      {|
      .text
  _start:
      ldiq  t0, 40
      addq  t0, 2, v0
      call_pal 0        ; halt with v0
      |}
  in
  check Alcotest.bool "halted 42" true (outcome = Alpha.Interp.Exit 42);
  check Alcotest.int64 "t0" 40L (Alpha.Interp.get st 1)

let test_asm_labels_and_branches () =
  let _, outcome =
    assemble_run
      {|
      .text
  _start:
      clr   t0
      ldiq  t1, 10
  loop:
      addq  t0, t1, t0
      subq  t1, 1, t1
      bne   t1, loop
      mov   t0, v0
      call_pal 0
      |}
  in
  (* 10+9+...+1 = 55 *)
  check Alcotest.bool "sum 55" true (outcome = Alpha.Interp.Exit 55)

let test_asm_data_section () =
  let st, outcome =
    assemble_run
      {|
      .text
  _start:
      la    t0, table
      ldq   t1, 8(t0)
      ldq   t2, 16(t0)
      addq  t1, t2, v0
      la    t3, msg
      ldbu  t4, 0(t3)
      call_pal 0
      .data
      .align 8
  table:
      .quad 1, 20, 22, 3
  msg:
      .asciz "Hi"
      |}
  in
  check Alcotest.bool "sum of table" true (outcome = Alpha.Interp.Exit 42);
  check Alcotest.int64 "'H' loaded" (Int64.of_int (Char.code 'H'))
    (Alpha.Interp.get st 5)

let test_asm_call_ret () =
  let _, outcome =
    assemble_run
      {|
      .text
  _start:
      ldiq  a0, 5
      bsr   ra, double
      mov   v0, a0
      bsr   ra, double
      call_pal 0
  double:
      addq  a0, a0, v0
      ret
      |}
  in
  check Alcotest.bool "double twice" true (outcome = Alpha.Interp.Exit 20)

let test_asm_jump_table () =
  let _, outcome =
    assemble_run
      {|
      .text
  _start:
      ldiq  t0, 2          ; selector
      la    t1, jtab
      s8addq t0, t1, t1
      ldq   t2, 0(t1)
      jmp   (t2)
  case0:
      ldiq v0, 10
      br   done
  case1:
      ldiq v0, 20
      br   done
  case2:
      ldiq v0, 30
      br   done
  done:
      call_pal 0
      .data
      .align 8
  jtab:
      .quad case0, case1, case2
      |}
  in
  check Alcotest.bool "case2 selected" true (outcome = Alpha.Interp.Exit 30)

let test_asm_duplicate_label_rejected () =
  match Alpha.Assembler.assemble ".text\nx:\nx:\n" with
  | exception Alpha.Assembler.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-label error"

let test_asm_undefined_symbol_rejected () =
  match Alpha.Assembler.assemble " .text\n_start:\n br nowhere\n" with
  | exception Alpha.Assembler.Error _ -> ()
  | _ -> Alcotest.fail "expected undefined-symbol error"

let prop_ldiq_materializes =
  QCheck.Test.make ~name:"ldiq materializes any 64-bit value" ~count:500
    QCheck.int64 (fun v ->
      let src =
        Printf.sprintf " .text\n_start:\n ldiq t0, %Ld\n call_pal 0\n" v
      in
      let st, outcome = assemble_run src in
      outcome = Alpha.Interp.Exit 0 && Int64.equal (Alpha.Interp.get st 1) v)

(* ---------- interpreter semantics ---------- *)

let run_opr op a b =
  (* build a 3-instruction program computing [op a b] into v0 *)
  let src =
    Printf.sprintf
      " .text\n_start:\n ldiq t0, %Ld\n ldiq t1, %Ld\n %s t0, t1, v0\n call_pal 0\n"
      a b op
  in
  let st, outcome = assemble_run src in
  check Alcotest.bool (op ^ " halts") true (outcome = Alpha.Interp.Exit (Int64.to_int (Int64.logand (Alpha.Interp.get st 0) 0xffL)));
  Alpha.Interp.get st 0

let test_interp_arith () =
  check Alcotest.int64 "addq" 7L (run_opr "addq" 3L 4L);
  check Alcotest.int64 "subq" (-1L) (run_opr "subq" 3L 4L);
  check Alcotest.int64 "s8addq" 28L (run_opr "s8addq" 3L 4L);
  check Alcotest.int64 "mulq" 12L (run_opr "mulq" 3L 4L);
  check Alcotest.int64 "addl wraps" (Int64.of_int32 (Int32.add Int32.max_int 1l))
    (run_opr "addl" (Int64.of_int32 Int32.max_int) 1L);
  check Alcotest.int64 "umulh" 1L (run_opr "umulh" 0x8000000000000000L 2L)

let test_interp_compare () =
  check Alcotest.int64 "cmplt signed" 1L (run_opr "cmplt" (-1L) 0L);
  check Alcotest.int64 "cmpult unsigned" 0L (run_opr "cmpult" (-1L) 0L);
  check Alcotest.int64 "cmpeq" 1L (run_opr "cmpeq" 5L 5L);
  check Alcotest.int64 "cmple" 1L (run_opr "cmple" 5L 5L);
  check Alcotest.int64 "cmpule" 1L (run_opr "cmpule" 1L 2L)

let test_interp_logic_shift () =
  check Alcotest.int64 "and" 4L (run_opr "and" 6L 12L);
  check Alcotest.int64 "bis" 14L (run_opr "bis" 6L 12L);
  check Alcotest.int64 "xor" 10L (run_opr "xor" 6L 12L);
  check Alcotest.int64 "bic" 2L (run_opr "bic" 6L 12L);
  check Alcotest.int64 "ornot" (-9L) (run_opr "ornot" 6L 12L);
  check Alcotest.int64 "sll" 24L (run_opr "sll" 6L 2L);
  check Alcotest.int64 "srl" 1L (run_opr "srl" 6L 2L);
  check Alcotest.int64 "sra sign" (-1L) (run_opr "sra" (-2L) 1L);
  check Alcotest.int64 "extbl" 0x12L (run_opr "extbl" 0x1234L 1L);
  check Alcotest.int64 "zapnot" 0x34L (run_opr "zapnot" 0x1234L 1L)

let test_interp_cmov () =
  let src =
    {|
    .text
_start:
    ldiq t0, 0
    ldiq t1, 111
    ldiq t2, 7
    cmoveq t0, t1, t2   ; t0==0 so t2 <- 111
    ldiq t3, 5
    cmoveq t3, t1, t2   ; t3!=0, t2 unchanged
    mov  t2, v0
    call_pal 0
    |}
  in
  let _, outcome = assemble_run src in
  check Alcotest.bool "cmov select" true (outcome = Alpha.Interp.Exit 111)

let test_interp_byte_memory () =
  let src =
    {|
    .text
_start:
    la   t0, buf
    ldiq t1, 0x1ff
    stb  t1, 0(t0)      ; stores 0xff
    ldbu v0, 0(t0)
    call_pal 0
    .data
buf:
    .space 16
    |}
  in
  let _, outcome = assemble_run src in
  check Alcotest.bool "byte store truncates" true (outcome = Alpha.Interp.Exit 0xff)

let test_interp_output () =
  let st, outcome =
    assemble_run
      {|
      .text
  _start:
      ldiq a0, 'H'
      call_pal 1
      ldiq a0, 'i'
      call_pal 1
      ldiq a0, 42
      call_pal 2
      clr v0
      call_pal 0
      |}
  in
  check Alcotest.bool "halts" true (outcome = Alpha.Interp.Exit 0);
  check Alcotest.string "output" "Hi42\n" (Alpha.Interp.output st)

let test_interp_mem_fault_is_precise () =
  let st, outcome =
    assemble_run
      {|
      .text
  _start:
      ldiq t0, 1
      ldiq t1, 0x4000000
      ldq  t2, 0(t1)     ; unmapped -> fault here
      ldiq t0, 2
      call_pal 0
      |}
  in
  (match outcome with
  | Alpha.Interp.Fault (Alpha.Interp.Mem_fault { addr; is_store; _ }) ->
    check Alcotest.int "fault addr" 0x4000000 addr;
    check Alcotest.bool "is load" false is_store
  | _ -> Alcotest.fail "expected memory fault");
  (* instruction after the fault must not have executed *)
  check Alcotest.int64 "precise: t0 still 1" 1L (Alpha.Interp.get st 1)

let test_interp_unaligned_fault () =
  let _, outcome =
    assemble_run
      {|
      .text
  _start:
      la   t0, buf
      ldq  t1, 1(t0)
      call_pal 0
      .data
      .align 8
  buf:
      .space 16
      |}
  in
  match outcome with
  | Alpha.Interp.Fault (Alpha.Interp.Unaligned { width = 8; _ }) -> ()
  | _ -> Alcotest.fail "expected unaligned fault"

let test_interp_r31_discards () =
  let st, outcome =
    assemble_run
      {|
      .text
  _start:
      ldiq t0, 5
      addq t0, t0, zero  ; write to r31 discarded
      mov  zero, v0
      call_pal 0
      |}
  in
  check Alcotest.bool "r31 reads zero" true (outcome = Alpha.Interp.Exit 0);
  check Alcotest.int64 "r31 is 0" 0L (Alpha.Interp.get st 31)

let test_run_ev_emits_events () =
  let prog =
    Alpha.Assembler.assemble
      {|
      .text
  _start:
      clr   t0
      ldiq  t1, 3
  loop:
      addq  t0, t1, t0
      subq  t1, 1, t1
      bne   t1, loop
      call_pal 0
      |}
  in
  let st = Alpha.Interp.create prog in
  let evs = ref [] in
  let outcome = Alpha.Interp.run_ev st ~sink:(fun e -> evs := e :: !evs) in
  check Alcotest.bool "halts" true (outcome = Alpha.Interp.Exit (Int64.to_int (Alpha.Interp.get st 0) land 0xff));
  let evs = List.rev !evs in
  (* 2 setup + 3 iterations of 3 insns + final call_pal is not committed as
     an event... it halts before sink: count = 2 + 9 *)
  check Alcotest.int "event count" 11 (List.length evs);
  let branches = List.filter (fun e -> e.Machine.Ev.cls = Machine.Ev.Cond_br) evs in
  check Alcotest.int "three branch events" 3 (List.length branches);
  let taken = List.filter (fun (e : Machine.Ev.t) -> e.taken) branches in
  check Alcotest.int "two taken" 2 (List.length taken)

let suite =
  [
    ("known encodings vs handbook", `Quick, test_known_encodings);
    ("VM instructions have no encoding", `Quick, test_vm_insn_unencodable);
    ("assemble+run: basic", `Quick, test_asm_basic_program);
    ("assemble+run: loop", `Quick, test_asm_labels_and_branches);
    ("assemble+run: data section", `Quick, test_asm_data_section);
    ("assemble+run: call/ret", `Quick, test_asm_call_ret);
    ("assemble+run: jump table", `Quick, test_asm_jump_table);
    ("assembler rejects duplicate labels", `Quick, test_asm_duplicate_label_rejected);
    ("assembler rejects undefined symbols", `Quick, test_asm_undefined_symbol_rejected);
    ("interp arithmetic", `Quick, test_interp_arith);
    ("interp comparisons", `Quick, test_interp_compare);
    ("interp logic and shifts", `Quick, test_interp_logic_shift);
    ("interp conditional move", `Quick, test_interp_cmov);
    ("interp byte memory ops", `Quick, test_interp_byte_memory);
    ("interp PAL output", `Quick, test_interp_output);
    ("interp precise memory fault", `Quick, test_interp_mem_fault_is_precise);
    ("interp unaligned fault", `Quick, test_interp_unaligned_fault);
    ("interp r31 hardwired zero", `Quick, test_interp_r31_discards);
    ("run_ev emits branch events", `Quick, test_run_ev_emits_events);
    qtest prop_encode_decode_roundtrip;
    qtest prop_encode_32bit;
    qtest prop_disasm_reassembles;
    qtest prop_ldiq_materializes;
  ]
