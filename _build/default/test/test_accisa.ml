(* Unit tests for the I-ISA definitions: well-formedness predicates, the
   encoded-size model, structure helpers and the pretty-printer. *)

open Accisa

let check = Alcotest.check

let d ?(gdst = None) ?(gopr = false) a : Insn.dst = { dacc = a; gdst; gopr }

let test_well_formed_accepts () =
  let ok =
    [
      Insn.Alu { op = Addq; d = d 0; a = Sacc 0; b = Sgpr 5 };
      Insn.Alu { op = Xor; d = d 1; a = Sacc 1; b = Sacc 1 } (* same acc twice *);
      Insn.Load { width = W8; signed = false; d = d 2; base = Sgpr 3; disp = 0 };
      Insn.Store { width = W1; value = Sacc 0; base = Sgpr 9; disp = 0 };
      Insn.Copy_to_gpr { g = 17; a = 3 };
      Insn.Bc { cond = Ne; v = Sacc 1; target = 4 };
      Insn.Bc { cond = Eq; v = Sgpr 8; target = 4 } (* branch on a GPR *);
    ]
  in
  List.iteri
    (fun i insn ->
      check Alcotest.bool (Printf.sprintf "ok %d" i) true (Insn.well_formed insn))
    ok

let test_well_formed_rejects () =
  let bad =
    [
      (* two distinct accumulators *)
      Insn.Alu { op = Addq; d = d 0; a = Sacc 0; b = Sacc 1 };
      (* two GPRs *)
      Insn.Alu { op = Addq; d = d 0; a = Sgpr 1; b = Sgpr 2 };
      Insn.Store { width = W8; value = Sgpr 1; base = Sgpr 2; disp = 0 };
      (* cmov predicate must be an accumulator *)
      Insn.Cmov_sel { d = d 0; p = Sgpr 1; nv = Simm 0L };
    ]
  in
  List.iteri
    (fun i insn ->
      check Alcotest.bool (Printf.sprintf "bad %d" i) false (Insn.well_formed insn))
    bad

let test_basic_formed_gpr_dest () =
  (* GPR-destination form: legal without GPR sources, illegal with one *)
  let gpr_dest =
    Insn.Alu { op = Addq; d = d ~gdst:(Some 7) (-1); a = Sacc 0; b = Simm 1L }
  in
  check Alcotest.bool "gpr-dest ok" true (Insn.basic_formed gpr_dest);
  let with_gpr_src =
    Insn.Alu { op = Addq; d = d ~gdst:(Some 7) (-1); a = Sgpr 3; b = Simm 1L }
  in
  check Alcotest.bool "gpr-dest with gpr source rejected" false
    (Insn.basic_formed with_gpr_src);
  let modified_style =
    Insn.Alu { op = Addq; d = d ~gdst:(Some 7) 0; a = Sacc 0; b = Simm 1L }
  in
  check Alcotest.bool "acc+gdst rejected in basic" false
    (Insn.basic_formed modified_style)

let test_structure_helpers () =
  let i = Insn.Alu { op = Subq; d = d 2; a = Sacc 2; b = Sgpr 17 } in
  check Alcotest.(option int) "acc read" (Some 2) (Insn.acc_read i);
  check Alcotest.(option int) "gpr read" (Some 17) (Insn.gpr_read i);
  check Alcotest.(option int) "acc written" (Some 2) (Insn.acc_written i);
  let copy = Insn.Copy_to_gpr { g = 4; a = 1 } in
  check Alcotest.(option int) "copy reads acc" (Some 1) (Insn.acc_read copy);
  check Alcotest.bool "copy produces no acc" true (Insn.acc_written copy = None);
  check Alcotest.bool "store is pei" true
    (Insn.is_pei (Insn.Store { width = W8; value = Sacc 0; base = Sgpr 1; disp = 0 }));
  check Alcotest.bool "alu is not pei" false (Insn.is_pei i);
  check Alcotest.bool "bc is control" true
    (Insn.is_control (Insn.Bc { cond = Eq; v = Sacc 0; target = 0 }))

(* ---------- size model ---------- *)

let test_sizes_16_bit () =
  let small =
    [
      Insn.Alu { op = Addq; d = d 0; a = Sacc 0; b = Simm 4L };
      Insn.Alu { op = Xor; d = d 0; a = Sacc 0; b = Sgpr 9 };
      Insn.Load { width = W8; signed = false; d = d 0; base = Sacc 0; disp = 0 };
      Insn.Store { width = W4; value = Sacc 0; base = Sgpr 2; disp = 0 };
      Insn.Copy_to_gpr { g = 1; a = 0 };
      Insn.Copy_from_gpr { d = d 0; g = 1 };
    ]
  in
  List.iteri
    (fun i insn ->
      check Alcotest.int (Printf.sprintf "16-bit %d" i) 2 (Size.bytes insn))
    small

let test_sizes_32_bit () =
  check Alcotest.int "big immediate" 4
    (Size.bytes (Insn.Alu { op = Addq; d = d 0; a = Sacc 0; b = Simm 4096L }));
  check Alcotest.int "branch" 4
    (Size.bytes (Insn.Bc { cond = Eq; v = Sacc 0; target = 9 }));
  check Alcotest.int "embedded address" 8
    (Size.bytes (Insn.Lta { d = d 0; value = 0x10000L }));
  check Alcotest.int "fused displacement widens" 4
    (Size.bytes
       (Insn.Load { width = W8; signed = false; d = d 0; base = Sacc 0; disp = 16 }))

let test_sizes_modified_sharing () =
  (* Fig. 2d: `R3 (A0) <- A0 xor R3` shares the single GPR specifier *)
  let shared =
    Insn.Alu { op = Xor; d = d ~gdst:(Some 3) 0; a = Sacc 0; b = Sgpr 3 }
  in
  check Alcotest.int "dst = src GPR stays 16-bit" 2 (Size.bytes shared);
  (* no GPR source at all: the slot is free for the destination *)
  let free_slot =
    Insn.Alu { op = And_; d = d ~gdst:(Some 3) 0; a = Sacc 0; b = Simm 15L }
  in
  check Alcotest.int "free slot stays 16-bit" 2 (Size.bytes free_slot);
  (* different source and destination GPRs force the wide format *)
  let two_gprs =
    Insn.Alu { op = Subq; d = d ~gdst:(Some 17) 1; a = Sgpr 17; b = Simm 1L }
  in
  check Alcotest.int "same reg shares" 2 (Size.bytes two_gprs);
  let really_two =
    Insn.Alu { op = Subq; d = d ~gdst:(Some 5) 1; a = Sgpr 17; b = Simm 1L }
  in
  check Alcotest.int "distinct regs widen" 4 (Size.bytes really_two)

let test_patch_size_stability () =
  (* patching a call-translator exit into a branch must not change layout *)
  let cx = Insn.Call_xlate_cond { cond = Eq; v = Sacc 0; exit_id = 3 } in
  let bc = Insn.Bc { cond = Eq; v = Sacc 0; target = 100 } in
  check Alcotest.int "cond exit size = branch size" (Size.bytes cx) (Size.bytes bc);
  let cu = Insn.Call_xlate { exit_id = 3 } in
  let br = Insn.Br { target = 100 } in
  check Alcotest.int "uncond exit size = branch size" (Size.bytes cu) (Size.bytes br)

(* ---------- disassembler ---------- *)

let test_disasm_notation () =
  check Alcotest.string "basic alu" "A0 <- xor A0, R1"
    (Disasm.to_string (Insn.Alu { op = Xor; d = d 0; a = Sacc 0; b = Sgpr 1 }));
  check Alcotest.string "modified alu" "R3 (A0) <- and A0, 255"
    (Disasm.to_string
       (Insn.Alu { op = And_; d = d ~gdst:(Some 3) 0; a = Sacc 0; b = Simm 255L }));
  check Alcotest.string "copy" "R17 <- A1"
    (Disasm.to_string (Insn.Copy_to_gpr { g = 17; a = 1 }));
  check Alcotest.string "load" "A0 <- mem8[R16]"
    (Disasm.to_string
       (Insn.Load { width = W8; signed = false; d = d 0; base = Sgpr 16; disp = 0 }))

(* ---------- event conversion ---------- *)

let test_trace_tokens () =
  let ev =
    Trace.ev ~pc:0x100 ~ea:0 ~taken:false ~target:0x102
      (Insn.Alu { op = Addq; d = d ~gdst:(Some 9) ~gopr:true 2; a = Sacc 2; b = Sgpr 5 })
  in
  check Alcotest.int "src1 acc token" (Machine.Ev.acc_token 2) ev.src1;
  check Alcotest.int "src2 gpr token" 5 ev.src2;
  check Alcotest.int "dst acc token" (Machine.Ev.acc_token 2) ev.dst;
  check Alcotest.int "dst2 operational gpr" 9 ev.dst2;
  check Alcotest.bool "gopr write is not lazy" false ev.lazy_dst2;
  let lazy_ev =
    Trace.ev ~pc:0x100 ~ea:0 ~taken:false ~target:0x102
      (Insn.Alu { op = Addq; d = d ~gdst:(Some 9) 2; a = Sacc 2; b = Simm 0L })
  in
  check Alcotest.bool "architected-only write is lazy" true lazy_ev.lazy_dst2;
  let gpr_dest =
    Trace.ev ~pc:0x100 ~ea:0 ~taken:false ~target:0x102
      (Insn.Alu { op = Addq; d = d ~gdst:(Some 9) (-1); a = Sacc 2; b = Simm 0L })
  in
  check Alcotest.int "gpr-dest primary token" 9 gpr_dest.dst;
  check Alcotest.int "gpr-dest no second token" (-1) gpr_dest.dst2

let test_trace_steering () =
  let ev =
    Trace.ev ~pc:0 ~ea:0 ~taken:false ~target:4 ~strand_start:true
      (Insn.Copy_from_gpr { d = d 3; g = 11 })
  in
  check Alcotest.int "steered by written acc" 3 ev.acc;
  check Alcotest.bool "strand start flows through" true ev.strand_start;
  let store =
    Trace.ev ~pc:0 ~ea:8 ~taken:false ~target:4
      (Insn.Store { width = W8; value = Sgpr 1; base = Sacc 2; disp = 0 })
  in
  check Alcotest.int "store steered by read acc" 2 store.acc

let suite =
  [
    ("well-formed instructions accepted", `Quick, test_well_formed_accepts);
    ("operand-budget violations rejected", `Quick, test_well_formed_rejects);
    ("basic-ISA GPR-destination form", `Quick, test_basic_formed_gpr_dest);
    ("structure helpers", `Quick, test_structure_helpers);
    ("16-bit encodings", `Quick, test_sizes_16_bit);
    ("32-bit encodings", `Quick, test_sizes_32_bit);
    ("modified-ISA specifier sharing", `Quick, test_sizes_modified_sharing);
    ("patches preserve layout", `Quick, test_patch_size_stability);
    ("disassembler notation", `Quick, test_disasm_notation);
    ("event tokens", `Quick, test_trace_tokens);
    ("event steering", `Quick, test_trace_steering);
  ]
