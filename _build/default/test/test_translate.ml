(* White-box tests of the translator and translation cache: dispatch code
   shape, exit patching, PEI tables, strand/accumulator invariants over
   emitted fragments, and the straightening backend's register discipline. *)

open Core

let check = Alcotest.check

let vm_for ?(isa = Config.Modified) ?(chaining = Config.Sw_pred_ras)
    ?(n_accs = 4) ?(hot_threshold = 50) src =
  let prog = Alpha.Assembler.assemble src in
  let cfg = { Config.default with isa; chaining; n_accs; hot_threshold } in
  let vm = Vm.create ~cfg ~kind:Vm.Acc prog in
  (match Vm.run ~fuel:5_000_000 vm with
  | Vm.Exit _ -> ()
  | Fault tr -> Alcotest.failf "fault: %a" Alpha.Interp.pp_trap tr
  | Out_of_fuel -> Alcotest.fail "fuel");
  (vm, Option.get (Vm.acc_ctx vm), Option.get (Vm.acc_exec vm))

let simple_loop =
  {|
  .text
_start:
  clr   t0
  ldiq  t1, 400
loop:
  addq  t0, t1, t0
  subq  t1, 1, t1
  bne   t1, loop
  mov   t0, a0
  call_pal 2
  clr   v0
  call_pal 0
  |}

(* ---------- dispatch code ---------- *)

let test_dispatch_shape () =
  let _, ctx, _ = vm_for simple_loop in
  (* the dispatch occupies the first slots, ends in call-translator, and is
     on the scale of the paper's "20 instructions" *)
  check Alcotest.bool "dispatch at slot 0" true (ctx.dispatch_slot = 0);
  let rec find_miss s =
    match Tcache.Acc.get ctx.tc s with
    | Accisa.Insn.Call_xlate _ -> s
    | _ -> find_miss (s + 1)
  in
  let miss = find_miss 0 in
  check Alcotest.bool
    (Printf.sprintf "dispatch length %d in [15,30]" (miss + 1))
    true
    (miss + 1 >= 15 && miss + 1 <= 30);
  (* it contains the two probe loads and the two indirect jumps *)
  let loads = ref 0 and jumps = ref 0 in
  for s = 0 to miss do
    match Tcache.Acc.get ctx.tc s with
    | Accisa.Insn.Load _ -> incr loads
    | Accisa.Insn.Jmp_ind _ -> incr jumps
    | _ -> ()
  done;
  check Alcotest.bool "probe loads" true (!loads >= 4);
  check Alcotest.int "two hit jumps" 2 !jumps

(* ---------- patching ---------- *)

let test_loop_back_edge_patched () =
  (* the loop fragment's backward branch must be a direct Bc to its own
     entry (installed before emission, so patched immediately) *)
  let _, ctx, _ = vm_for simple_loop in
  let frag =
    List.find (fun (f : Tcache.frag) -> f.exec_count > 100)
      (Tcache.Acc.fragments ctx.tc)
  in
  let self_branch = ref false in
  for s = frag.entry_slot to frag.entry_slot + frag.n_slots - 1 do
    match Tcache.Acc.get ctx.tc s with
    | Accisa.Insn.Bc { target; _ } when target = frag.entry_slot ->
      self_branch := true
    | _ -> ()
  done;
  check Alcotest.bool "self loop branch patched" true !self_branch

let test_cold_exits_stay_call_translator () =
  (* the loop's fall-through exit goes to code executed once (not hot), so
     it must remain a call-translator exit *)
  let _, ctx, _ = vm_for simple_loop in
  let frag =
    List.find (fun (f : Tcache.frag) -> f.exec_count > 100)
      (Tcache.Acc.fragments ctx.tc)
  in
  let cold_exit = ref false in
  for s = frag.entry_slot to frag.entry_slot + frag.n_slots - 1 do
    match Tcache.Acc.get ctx.tc s with
    | Accisa.Insn.Call_xlate _ | Accisa.Insn.Call_xlate_cond _ ->
      cold_exit := true
    | _ -> ()
  done;
  check Alcotest.bool "cold exit unpatched" true !cold_exit

(* ---------- PEI tables ---------- *)

let test_pei_tables_cover_memory_ops () =
  let _, ctx, _ =
    vm_for
      {|
      .text
  _start:
      la    s0, arr
      ldiq  s1, 300
      clr   t0
  loop:
      s8addq t0, s0, t1
      ldq   t2, 0(t1)
      addq  t2, 1, t2
      stq   t2, 0(t1)
      addq  t0, 1, t0
      and   t0, 63, t0
      subq  s1, 1, s1
      bne   s1, loop
      clr   v0
      call_pal 0
      .data
      .align 8
  arr:
      .space 512
      |}
  in
  (* every Load/Store slot must have a PEI record with the right V-PC *)
  List.iter
    (fun (f : Tcache.frag) ->
      for s = f.entry_slot to f.entry_slot + f.n_slots - 1 do
        match Tcache.Acc.get ctx.tc s with
        | Accisa.Insn.Load _ | Accisa.Insn.Store _ -> (
          match Tcache.Acc.pei_at ctx.tc s with
          | None -> Alcotest.failf "memory op at slot %d has no PEI entry" s
          | Some pei ->
            check Alcotest.bool "pei v_pc in text" true
              (pei.pei_v_pc >= Alpha.Program.text_base))
        | _ -> ()
      done)
    (Tcache.Acc.fragments ctx.tc)

(* ---------- strand invariants over emitted code ---------- *)

let test_strand_continuity () =
  (* walking any fragment: an instruction reading accumulator A must be
     preceded (within the fragment) by a write of A with no intervening
     write of A by a different strand — i.e. the accumulator is live *)
  let _, ctx, _ = vm_for ~isa:Config.Basic simple_loop in
  List.iter
    (fun (f : Tcache.frag) ->
      let live = Array.make 8 false in
      for s = f.entry_slot to f.entry_slot + f.n_slots - 1 do
        let insn = Tcache.Acc.get ctx.tc s in
        (match Accisa.Insn.acc_read insn with
        | Some a ->
          if not live.(a) then
            Alcotest.failf "slot %d reads dead accumulator A%d: %s" s a
              (Accisa.Disasm.to_string insn)
        | None -> ());
        match Accisa.Insn.acc_written insn with
        | Some a -> live.(a) <- true
        | None -> ()
      done)
    (Tcache.Acc.fragments ctx.tc)

let test_accumulator_pressure_spills () =
  (* with 2 accumulators, the accumulator-pressure kernel must spill *)
  let src =
    {|
    .text
_start:
    ldiq t0, 1
    ldiq t1, 2
    ldiq t2, 3
    ldiq t3, 4
    ldiq s0, 200
loop:
    addq t0, t1, t0
    addq t1, t2, t1
    addq t2, t3, t2
    addq t3, t0, t3
    mulq t0, 3, t4
    xor  t4, t2, t4
    subq s0, 1, s0
    bne  s0, loop
    addq t0, t4, a0
    call_pal 2
    clr  v0
    call_pal 0
    |}
  in
  let _, ctx2, _ = vm_for ~n_accs:2 src in
  let _, ctx8, _ = vm_for ~n_accs:8 src in
  check Alcotest.bool
    (Printf.sprintf "2 accs spill more (%d > %d)" ctx2.n_spills ctx8.n_spills)
    true
    (ctx2.n_spills >= ctx8.n_spills)

(* ---------- chaining code volume by mode ---------- *)

let test_chaining_mode_costs () =
  let call_heavy =
    {|
    .text
_start:
    ldiq s0, 300
    clr  s1
loop:
    mov  s0, a0
    bsr  ra, f
    addq s1, v0, s1
    subq s0, 1, s0
    bne  s0, loop
    mov  s1, a0
    call_pal 2
    clr  v0
    call_pal 0
f:
    addq a0, 3, v0
    ret
    |}
  in
  let chain_frac chaining =
    let _, _, ex = vm_for ~chaining call_heavy in
    float_of_int ex.stats.by_class.(2) /. float_of_int ex.stats.i_exec
  in
  let np = chain_frac Config.No_pred in
  let sw = chain_frac Config.Sw_pred_no_ras in
  let ras = chain_frac Config.Sw_pred_ras in
  check Alcotest.bool
    (Printf.sprintf "chain volume no_pred %.3f > sw_pred %.3f > ras %.3f" np sw ras)
    true
    (np > sw && sw > ras)

(* ---------- straightening backend register discipline ---------- *)

let test_straighten_rejects_reserved_registers () =
  let prog =
    Alpha.Assembler.assemble
      {|
      .text
  _start:
      clr   at        ; guest uses the VM-reserved assembler temp
      ldiq  t1, 200
  loop:
      addq  at, t1, at
      subq  t1, 1, t1
      bne   t1, loop
      clr   v0
      call_pal 0
      |}
  in
  let vm = Vm.create ~kind:Vm.Straight_only prog in
  match Vm.run ~fuel:1_000_000 vm with
  | exception Straighten.Reserved_register _ -> ()
  | _ -> Alcotest.fail "expected Reserved_register"

let suite =
  [
    ("dispatch code shape", `Quick, test_dispatch_shape);
    ("loop back edge patched to Bc", `Quick, test_loop_back_edge_patched);
    ("cold exits stay call-translator", `Quick, test_cold_exits_stay_call_translator);
    ("PEI tables cover memory ops", `Quick, test_pei_tables_cover_memory_ops);
    ("accumulator liveness in fragments", `Quick, test_strand_continuity);
    ("pressure forces spills", `Quick, test_accumulator_pressure_spills);
    ("chaining cost ordering", `Quick, test_chaining_mode_costs);
    ("straightener rejects reserved regs", `Quick, test_straighten_rejects_reserved_registers);
  ]
