examples/chaining_demo.mli:
