examples/quickstart.mli:
