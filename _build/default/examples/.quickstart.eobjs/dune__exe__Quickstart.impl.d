examples/quickstart.ml: Alpha Core Minic Option Printf String Uarch
