examples/chaining_demo.ml: Array Core List Minic Option Printf Uarch
