examples/gzip_strands.ml: Accisa Alpha Core Format List Machine Option Printf String
