examples/gzip_strands.mli:
