examples/trap_demo.mli:
