examples/trap_demo.ml: Alpha Core Format List Option Printf
