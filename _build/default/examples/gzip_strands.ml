(* The paper's Fig. 2 walk-through: translate the 164.gzip inner loop into
   both accumulator ISAs and print them side by side with the source.

     dune exec examples/gzip_strands.exe

   Shows dependence/usage identification, strand formation and accumulator
   assignment exactly as Section 3.3 describes: chains of dependent
   instructions share an accumulator; inter-strand values go through GPRs;
   the basic ISA needs explicit copy-to-GPR instructions where the modified
   ISA embeds the destination register. *)

(* Fig. 2(a), with a hash-table base in r0 standing in for the original's
   global; the displacement-free loads/stores show decomposition too. *)
let fig2 =
  {|
  .text
_start:
  la    a0, buf
  ldiq  a1, 120
  clr   v0
  clr   t0
L1:
  ldbu  t2, 0(a0)
  subq  a1, 1, a1
  lda   a0, 1(a0)
  xor   t0, t2, t2
  srl   t0, 8, t0
  and   t2, 0xff, t2
  s8addq t2, v0, t2
  ldq   t2, 0(t2)
  xor   t2, t0, t0
  bne   a1, L1
  clr   v0
  call_pal 0
  .data
buf:
  .space 1024
  |}

let translate_and_dump isa =
  let prog = Alpha.Assembler.assemble fig2 in
  (* map a little of the zero page so the hash-table load (base r0 = 0 +
     8*byte) stays inside simulated memory *)
  let cfg = { Core.Config.default with isa; hot_threshold = 5 } in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  Machine.Memory.map (Core.Vm.memory vm) ~addr:0 ~len:4096;
  (match Core.Vm.run vm with
  | Core.Vm.Exit _ -> ()
  | Fault tr -> Format.printf "unexpected trap: %a@." Alpha.Interp.pp_trap tr
  | Out_of_fuel -> ());
  let ctx = Option.get (Core.Vm.acc_ctx vm) in
  Printf.printf "\n=== %s ISA ===\n" (Core.Config.isa_name isa);
  List.iter
    (fun (f : Core.Tcache.frag) ->
      if f.v_insns > 4 then begin
        Printf.printf "fragment @%#x: %d V-insns -> %d I-insns (%d bytes)\n"
          f.v_start f.v_insns f.n_slots f.i_bytes;
        for s = f.entry_slot to f.entry_slot + f.n_slots - 1 do
          Printf.printf "  %s\n" (Accisa.Disasm.to_string (Core.Tcache.Acc.get ctx.tc s))
        done
      end)
    (Core.Tcache.Acc.fragments ctx.tc)

let () =
  print_endline "Source (the paper's Fig. 2 gzip loop):";
  String.split_on_char '\n' fig2
  |> List.iter (fun l -> if String.trim l <> "" then Printf.printf "  %s\n" l);
  translate_and_dump Core.Config.Basic;
  translate_and_dump Core.Config.Modified;
  print_endline
    "\nNote the explicit 'Rn <- An' state copies in the basic ISA that the\n\
     modified ISA folds into 'Rn (An) <- ...' destination specifiers."
