(* Quickstart: compile a small program, run it three ways, compare.

     dune exec examples/quickstart.exe

   Walks the whole public API surface once:
   1. compile MiniC to an Alpha program image,
   2. run it under the reference interpreter,
   3. run it under the DBT co-designed VM (modified accumulator ISA),
   4. attach the ILDP timing model and report V-ISA IPC. *)

let source =
  {|
  int checksum = 0;

  int step(int x) { return (x * 1103515245 + 12345) & 0xffffff; }

  int main() {
    int i;
    int v = 1;
    for (i = 0; i < 2000; i = i + 1) {
      v = step(v);
      checksum = (checksum + v) & 0xffffff;
    }
    print checksum;
    return 0;
  }
|}

let () =
  (* 1. compile *)
  let prog = Minic.compile source in
  Printf.printf "compiled: %d bytes of Alpha text at %#x\n"
    (Alpha.Program.text_size prog) prog.text.base;

  (* 2. reference interpretation *)
  let st = Alpha.Interp.create prog in
  (match Alpha.Interp.run st with
  | Alpha.Interp.Exit 0 -> ()
  | _ -> failwith "interpreter run failed");
  Printf.printf "interpreter  : output=%s (%d instructions)\n"
    (String.trim (Alpha.Interp.output st))
    st.icount;

  (* 3. the DBT virtual machine *)
  let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
  (match Core.Vm.run vm with
  | Core.Vm.Exit 0 -> ()
  | _ -> failwith "VM run failed");
  let ex = Option.get (Core.Vm.acc_exec vm) in
  Printf.printf "DBT VM       : output=%s\n" (String.trim (Core.Vm.output vm));
  Printf.printf
    "               %d V-insns interpreted, %d retired in translated code\n"
    vm.interp_insns ex.stats.alpha_retired;
  Printf.printf "               %d I-ISA instructions executed (expansion %.2fx)\n"
    ex.stats.i_exec
    (float_of_int ex.stats.i_exec /. float_of_int ex.stats.alpha_retired);

  (* 4. with the ILDP timing model attached *)
  let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
  let m = Uarch.Ildp.create () in
  (match
     Core.Vm.run ~sink:(Uarch.Ildp.feed m)
       ~boundary:(fun () -> Uarch.Ildp.boundary m)
       vm
   with
  | Core.Vm.Exit 0 -> ()
  | _ -> failwith "timed VM run failed");
  Printf.printf "ILDP timing  : %d cycles, V-ISA IPC %.3f (8 PEs, 0-cycle comm)\n"
    (Uarch.Ildp.cycles m) (Uarch.Ildp.v_ipc m);
  print_endline "ok."
