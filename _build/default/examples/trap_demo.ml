(* Precise trap recovery in translated code (paper Section 2.2).

     dune exec examples/trap_demo.exe

   A hot loop walks an array past the end of mapped memory, faulting deep
   inside a translated fragment while some architected values still live
   only in accumulators (basic ISA). The VM looks up the PEI table, applies
   the accumulator map, re-executes the instruction by interpretation, and
   delivers an architecturally precise trap — identical to what plain
   interpretation produces. *)

let source =
  {|
  .text
_start:
  la    s0, arr
  clr   t0               ; index
  ldiq  s1, 100000
loop:
  addq  t0, 7, t5        ; t5 lives only in an accumulator at the load
  sll   t0, 13, t1
  addq  t1, s0, t1
  ldq   t2, 0(t1)        ; strides 8KB per iteration; eventually faults
  addq  t5, t2, t0
  zapnot t0, 3, t0
  addq  t0, 1, t0
  cmplt t0, s1, t3
  bne   t3, loop
  clr   v0
  call_pal 0
  .data
  .align 8
arr:
  .quad 1, 2, 3, 4
  |}

let show name outcome regs =
  Printf.printf "%-22s: %s\n" name outcome;
  Printf.printf "%-22s  register checksum %Lx\n" "" regs

let () =
  let prog = Alpha.Assembler.assemble source in

  (* reference: pure interpretation *)
  let st = Alpha.Interp.create prog in
  let ref_outcome =
    match Alpha.Interp.run st with
    | Alpha.Interp.Fault tr -> Format.asprintf "%a" Alpha.Interp.pp_trap tr
    | _ -> "unexpected: no trap"
  in
  show "interpreter" ref_outcome (Alpha.Interp.reg_checksum st);

  (* DBT, basic ISA: state recovery needs the PEI accumulator map *)
  List.iter
    (fun isa ->
      let cfg = { Core.Config.default with isa } in
      let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
      let outcome =
        match Core.Vm.run vm with
        | Core.Vm.Fault tr -> Format.asprintf "%a" Alpha.Interp.pp_trap tr
        | _ -> "unexpected: no trap"
      in
      let ex = Option.get (Core.Vm.acc_exec vm) in
      show
        (Printf.sprintf "DBT VM (%s ISA)" (Core.Config.isa_name isa))
        outcome (Core.Vm.reg_checksum vm);
      Printf.printf "%-22s  (%d V-insns retired in translated code before the trap)\n"
        "" ex.stats.alpha_retired;
      assert (outcome = ref_outcome))
    [ Core.Config.Basic; Core.Config.Modified ];
  print_endline
    "\nAll three agree on the faulting V-PC, the faulting address and the\n\
     architected register state: the trap is precise."
