(* Fragment chaining methods compared (paper Section 3.2 / Fig. 4).

     dune exec examples/chaining_demo.exe

   Runs a call/return-heavy program under the three chaining
   implementations and shows what each costs: dynamic instruction
   expansion from chaining code, dual-RAS behaviour, and the misprediction
   rates a superscalar front end would see. *)

let source =
  {|
  int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  int main() {
    int r = 0;
    int i;
    for (i = 0; i < 40; i = i + 1) { r = (r + fib(12)) & 0xffff; }
    print r;
    return 0;
  }
|}

let run chaining =
  let prog = Minic.compile source in
  let cfg = { Core.Config.default with chaining } in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let m = Uarch.Ildp.create () in
  (match
     Core.Vm.run ~sink:(Uarch.Ildp.feed m)
       ~boundary:(fun () -> Uarch.Ildp.boundary m)
       vm
   with
  | Core.Vm.Exit 0 -> ()
  | _ -> failwith "run failed");
  let ex = Option.get (Core.Vm.acc_exec vm) in
  let expansion =
    float_of_int ex.stats.i_exec /. float_of_int ex.stats.alpha_retired
  in
  let chain_pct =
    100.0 *. float_of_int ex.stats.by_class.(2) /. float_of_int ex.stats.i_exec
  in
  Printf.printf "%-14s | expansion %.3f | chain insns %5.1f%% | "
    (Core.Config.chaining_name chaining)
    expansion chain_pct;
  (match chaining with
  | Core.Config.Sw_pred_ras ->
    Printf.printf "dual-RAS %d hits / %d misses | " ex.stats.ret_dras_hits
      ex.stats.ret_dras_misses
  | _ -> Printf.printf "dual-RAS unused              | ");
  Printf.printf "mpki %.2f | V-IPC %.3f\n"
    (Uarch.Pred.mpki m.pred ~insns:m.n)
    (Uarch.Ildp.v_ipc m)

let () =
  Printf.printf
    "Recursive fib under three fragment-chaining implementations:\n\n";
  List.iter run
    [ Core.Config.No_pred; Core.Config.Sw_pred_no_ras; Core.Config.Sw_pred_ras ];
  print_endline
    "\nno_pred routes every indirect transfer through the 20-instruction\n\
     shared dispatch; sw_pred adds translation-time compare-and-branch\n\
     target prediction; sw_pred.ras adds the dual-address return address\n\
     stack, which both removes return chaining code and predicts return\n\
     targets almost perfectly (paper Figs. 4-5)."
