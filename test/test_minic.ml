(* MiniC compiler tests: compiled programs run on the Alpha interpreter and
   must produce the expected outputs; div/mod are checked against OCaml
   semantics by property; compiled workloads must also survive the DBT. *)

let check = Alcotest.check

let run ?(fuel = 20_000_000) src =
  let prog = Minic.compile src in
  let st = Alpha.Interp.create prog in
  match Alpha.Interp.run ~fuel st with
  | Alpha.Interp.Exit c -> (c, Alpha.Interp.output st)
  | Fault tr -> Alcotest.failf "fault: %a" Alpha.Interp.pp_trap tr
  | Out_of_fuel -> Alcotest.fail "out of fuel"

let expect ?(code = 0) name src out =
  let c, o = run src in
  check Alcotest.int (name ^ " exit") code c;
  check Alcotest.string (name ^ " output") out o

let test_arith () =
  expect "arith"
    {|
    int main() {
      print 2 + 3 * 4;
      print (2 + 3) * 4;
      print 10 - 7;
      print 5 << 2;
      print -40 >> 3;
      print 12 & 10;
      print 12 | 10;
      print 12 ^ 10;
      print ~0;
      print -(5);
      return 0;
    }
    |}
    "14\n20\n3\n20\n-5\n8\n14\n6\n-1\n-5\n"

let test_compare_logic () =
  expect "compare"
    {|
    int main() {
      print 3 < 4;
      print 4 < 3;
      print 3 <= 3;
      print 4 > 3;
      print 3 >= 4;
      print 3 == 3;
      print 3 != 3;
      print !5;
      print !0;
      print 1 && 2;
      print 1 && 0;
      print 0 || 3;
      print 0 || 0;
      return 0;
    }
    |}
    "1\n0\n1\n1\n0\n1\n0\n0\n1\n1\n0\n1\n0\n"

let test_short_circuit () =
  (* the right operand must not execute when short-circuited *)
  expect "short circuit"
    {|
    int g = 0;
    int touch() { g = g + 1; return 1; }
    int main() {
      int a = 0 && touch();
      int b = 1 || touch();
      print g;
      print a + b;
      return 0;
    }
    |}
    "0\n1\n"

let test_control_flow () =
  expect "control flow"
    {|
    int main() {
      int s = 0;
      int i;
      for (i = 1; i <= 10; i = i + 1) { s = s + i; }
      print s;
      while (s > 40) { s = s - 7; }
      print s;
      if (s == 34) { print 111; } else { print 222; }
      int k = 0;
      while (1) {
        k = k + 1;
        if (k == 5) { break; }
      }
      print k;
      return 0;
    }
    |}
    "55\n34\n111\n5\n"

let test_functions_recursion () =
  expect "fib"
    {|
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      print fib(15);
      return 0;
    }
    |}
    "610\n"

let test_args_and_saves () =
  (* six arguments, call inside expression with live temporaries *)
  expect "args"
    {|
    int six(int a, int b, int c, int d, int e, int f) {
      return a + 2*b + 3*c + 4*d + 5*e + 6*f;
    }
    int two(int x, int y) { return x * 10 + y; }
    int main() {
      print six(1, 2, 3, 4, 5, 6);
      print 1000 + two(3, 7) * 2;
      print two(two(1, 2), two(3, 4));
      return 0;
    }
    |}
    "91\n1074\n154\n"

let test_globals_arrays () =
  expect "arrays"
    {|
    int total = 0;
    int a[10];
    byte msg[16] = "hi\n";
    int main() {
      int i;
      for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
      for (i = 0; i < 10; i = i + 1) { total = total + a[i]; }
      print total;
      putc msg[0]; putc msg[1]; putc msg[2];
      return 0;
    }
    |}
    "285\nhi\n"

let test_switch_jump_table () =
  expect "switch"
    {|
    int classify(int x) {
      switch (x) {
        case 0: return 100;
        case 1: return 200;
        case 2: return 300;
        case 3: return 400;
        default: return 999;
      }
      return 0;
    }
    int main() {
      print classify(0);
      print classify(2);
      print classify(3);
      print classify(7);
      return 0;
    }
    |}
    "100\n300\n400\n999\n"

let test_function_table () =
  expect "functab"
    {|
    int inc(int x) { return x + 1; }
    int dbl(int x) { return x * 2; }
    int sqr(int x) { return x * x; }
    func ops[] = { inc, dbl, sqr };
    int main() {
      int i;
      int v = 3;
      for (i = 0; i < 3; i = i + 1) {
        v = ops[i](v);
      }
      print v;
      return 0;
    }
    |}
    "64\n"

let test_div_mod_basic () =
  expect "divmod"
    {|
    int main() {
      print 17 / 5;
      print 17 % 5;
      print -17 / 5;
      print -17 % 5;
      print 17 / -5;
      print 17 % -5;
      print 0 / 3;
      print 100 % 10;
      return 0;
    }
    |}
    "3\n2\n-3\n-2\n-3\n2\n0\n0\n"

let prop_div_matches_ocaml =
  QCheck.Test.make ~name:"minic / and % match OCaml Int64 semantics" ~count:40
    QCheck.(pair (int_range (-100000) 100000) (int_range 1 999))
    (fun (a, b) ->
      let src =
        Printf.sprintf
          "int main() { print %d / %d; print %d %% %d; return 0; }" a b a b
      in
      let _, out = run src in
      out
      = Printf.sprintf "%Ld\n%Ld\n"
          (Int64.div (Int64.of_int a) (Int64.of_int b))
          (Int64.rem (Int64.of_int a) (Int64.of_int b)))

let test_exit_code () =
  let c, _ = run "int main() { return 42; }" in
  check Alcotest.int "exit code" 42 c

let test_locals_overflow_to_stack () =
  expect "many locals"
    {|
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
      int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
      print a + b + c + d + e + f + g + h + i + j + k + l;
      l = l * 2;
      print l;
      return 0;
    }
    |}
    "78\n24\n"

let test_logical_shift () =
  expect "logical shift"
    {|
    int main() {
      print -8 >> 1;
      print -8 >>> 1;
      print -8 >>> 60;
      print (1 << 63) >>> 63;
      print -1 >>> 1;
      print 5 + 3 >>> 1;
      return 0;
    }
    |}
    "-4\n9223372036854775804\n15\n1\n9223372036854775807\n4\n"

let test_compound_assign () =
  expect "compound assignment"
    {|
    int g = 10;
    int a[4];
    int main() {
      int x = 7;
      x += 5; print x;
      x -= 2; print x;
      x *= 3; print x;
      x /= 4; print x;
      x %= 5; print x;
      x |= 9; print x;
      x &= 13; print x;
      x ^= 3; print x;
      x <<= 2; print x;
      x >>= 1; print x;
      x = -x; x >>>= 60; print x;
      g += 5; print g;
      a[1] = 6; a[1] += a[1]; print a[1];
      a[2] -= 3; print a[2];
      a[2] *= a[1]; print a[2];
      return 0;
    }
    |}
    "12\n10\n30\n7\n2\n11\n9\n10\n40\n20\n15\n15\n12\n-3\n-36\n"

let test_errors_rejected () =
  let reject src =
    match Minic.compile src with
    | exception Minic.Error _ -> ()
    | _ -> Alcotest.failf "expected rejection of %S" src
  in
  reject "int main() { return x; }" (* undefined var *);
  reject "int main() { return f(1); }" (* undefined function *);
  reject "int f(int a) { return a; } int main() { return f(); }" (* arity *);
  reject "int main() { int a = 1; int a = 2; return a; }" (* dup local *);
  reject "int f() { return 0; }" (* missing main *)

(* compiled code must also run correctly under the DBT, all modes *)
let test_minic_through_dbt () =
  let src =
    {|
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int hash(int x) { return (x * 2654435761) % 1000003; }
    int main() {
      int i;
      int acc = 0;
      for (i = 0; i < 50; i = i + 1) {
        switch (i % 4) {
          case 0: acc = acc + hash(i); break;
          case 1: acc = acc - i; break;
          case 2: acc = acc ^ (i << 3); break;
          case 3: acc = acc + fib(i % 10); break;
        }
      }
      print acc;
      return 0;
    }
    |}
  in
  let prog = Minic.compile src in
  let ref_st = Alpha.Interp.create prog in
  (match Alpha.Interp.run ~fuel:20_000_000 ref_st with
  | Alpha.Interp.Exit 0 -> ()
  | _ -> Alcotest.fail "reference run failed");
  let expected = Alpha.Interp.output ref_st in
  List.iter
    (fun (isa, chaining) ->
      let cfg = { Core.Config.default with isa; chaining } in
      let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
      (match Core.Vm.run ~fuel:20_000_000 vm with
      | Core.Vm.Exit 0 -> ()
      | _ -> Alcotest.failf "VM run failed");
      check Alcotest.string
        (Printf.sprintf "dbt output %s/%s" (Core.Config.isa_name isa)
           (Core.Config.chaining_name chaining))
        expected (Core.Vm.output vm))
    [
      (Core.Config.Basic, Core.Config.Sw_pred_ras);
      (Core.Config.Modified, Core.Config.Sw_pred_ras);
      (Core.Config.Modified, Core.Config.No_pred);
    ]

let suite =
  [
    ("arithmetic and bitwise", `Quick, test_arith);
    ("comparisons and logic", `Quick, test_compare_logic);
    ("short-circuit evaluation", `Quick, test_short_circuit);
    ("control flow", `Quick, test_control_flow);
    ("recursion (fib)", `Quick, test_functions_recursion);
    ("six args + nested calls", `Quick, test_args_and_saves);
    ("globals, arrays, byte arrays", `Quick, test_globals_arrays);
    ("switch compiles to jump table", `Quick, test_switch_jump_table);
    ("function tables (indirect calls)", `Quick, test_function_table);
    ("division and modulo", `Quick, test_div_mod_basic);
    ("exit code", `Quick, test_exit_code);
    ("locals overflow to stack", `Quick, test_locals_overflow_to_stack);
    ("logical shift right", `Quick, test_logical_shift);
    ("compound assignment", `Quick, test_compound_assign);
    ("bad programs rejected", `Quick, test_errors_rejected);
    ("minic through the DBT", `Quick, test_minic_through_dbt);
    QCheck_alcotest.to_alcotest prop_div_matches_ocaml;
  ]
